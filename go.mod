module stark

go 1.24
