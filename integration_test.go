// Integration tests exercising the full stack across module
// boundaries: the paper's Figure-2 workflow (load raw data →
// spatially partition → index → persist → query) driven through the
// public fluent DSL, the Piglet scripting path, the web front end,
// and cross-strategy result agreement on the Figure-4 workload.
package stark_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"

	"stark"
	"stark/internal/baselines"
	"stark/internal/piglet"
	"stark/internal/server"
	"stark/internal/workload"
)

// TestFigure2Workflow walks the paper's internal workflow end to end:
// raw data on (simulated) HDFS → load → spatial partitioning →
// persistent indexing → store index to HDFS → reuse in a "second
// program" → query with partition pruning — all through the DSL.
func TestFigure2Workflow(t *testing.T) {
	ctx := stark.NewContext(4)
	fs := stark.NewDFS(0, 0)

	// Raw data lands on the DFS.
	raw := workload.Events(workload.Config{
		N: 5_000, Seed: 3, Dist: workload.Skewed, Width: 1000, Height: 1000, TimeRange: 1000,
	})
	if err := workload.WriteEventsCSV(fs, "/raw/events.csv", raw); err != nil {
		t.Fatal(err)
	}

	// Program 1: load, partition, index, persist, and already query.
	loaded, err := workload.ReadEventsCSV(fs, "/raw/events.csv")
	if err != nil {
		t.Fatal(err)
	}
	tuples, dropped := workload.EventTuples(loaded)
	if dropped != 0 {
		t.Fatalf("%d events dropped", dropped)
	}
	parted := stark.Parallelize(ctx, tuples, 4).PartitionBy(stark.BSP(500))
	idx := parted.Index(stark.Persistent(8))
	if err := idx.SaveIndex(fs, "/indexes/events"); err != nil {
		t.Fatal(err)
	}
	q := stark.NewSTObjectWithInterval(
		stark.NewEnvelope(200, 200, 600, 600).ToPolygon(),
		stark.MustInterval(0, 400))
	hits1, err := idx.ContainedBy(q).Collect()
	if err != nil {
		t.Fatal(err)
	}

	// Program 2: same data and partitioning, index loaded from DFS.
	hits2, err := stark.LoadIndex(parted, fs, "/indexes/events").ContainedBy(q).Collect()
	if err != nil {
		t.Fatal(err)
	}

	// Reference: unindexed scan.
	hits3, err := parted.ContainedBy(q).Collect()
	if err != nil {
		t.Fatal(err)
	}
	ids := func(ts []stark.Tuple[workload.Event]) []int {
		out := make([]int, len(ts))
		for i, kv := range ts {
			out[i] = kv.Value.ID
		}
		sort.Ints(out)
		return out
	}
	a, b, c := ids(hits1), ids(hits2), ids(hits3)
	if len(a) == 0 {
		t.Fatal("query matched nothing — bad test setup")
	}
	if len(a) != len(b) || len(a) != len(c) {
		t.Fatalf("result sizes: %d/%d/%d", len(a), len(b), len(c))
	}
	for i := range a {
		if a[i] != b[i] || a[i] != c[i] {
			t.Fatalf("strategies disagree at %d", i)
		}
	}
}

// TestFigure4ResultAgreement checks that every join strategy in the
// benchmark returns the identical pair count at integration scale.
func TestFigure4ResultAgreement(t *testing.T) {
	ctx := stark.NewContext(4)
	tuples := workload.SpatialTuples(workload.Config{
		N: 4_000, Seed: 4, Dist: workload.Skewed, Clusters: 5, Spread: 6,
		Width: 1000, Height: 1000,
	})
	const eps = 1.5
	want := baselines.STARKSelfJoinCount(tuples, eps)
	if want <= int64(len(tuples)) {
		t.Fatalf("reference count %d too small", want)
	}

	geo, err := baselines.GeoSparkSelfJoin(ctx, tuples, baselines.SelfJoinConfig{
		Eps: eps, Partitioner: baselines.VoronoiPartitioner, NumSeeds: 16, Dedupe: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ssNone, err := baselines.SpatialSparkSelfJoin(ctx, tuples, baselines.SelfJoinConfig{
		Eps: eps, Partitioner: baselines.NoPartitioner,
	})
	if err != nil {
		t.Fatal(err)
	}
	ssTile, err := baselines.SpatialSparkSelfJoin(ctx, tuples, baselines.SelfJoinConfig{
		Eps: eps, Partitioner: baselines.TilePartitioner, PPD: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	ds := stark.Parallelize(ctx, tuples, 4)
	starkCount, err := stark.SelfJoinWithinDistanceCount(ds, eps, -1)
	if err != nil {
		t.Fatal(err)
	}
	starkBSP, err := stark.SelfJoinWithinDistanceCount(ds.PartitionBy(stark.BSP(500)), eps, -1)
	if err != nil {
		t.Fatal(err)
	}
	for name, got := range map[string]int64{
		"geospark-voronoi": geo, "spatialspark-none": ssNone,
		"spatialspark-tile": ssTile, "stark-none": starkCount, "stark-bsp": starkBSP,
	} {
		if got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
}

// TestPigletPipelineAgainstAPI cross-checks a Piglet filter against
// the same query through the public DSL.
func TestPigletPipelineAgainstAPI(t *testing.T) {
	fs := stark.NewDFS(0, 0)
	events := workload.Events(workload.Config{
		N: 2_000, Seed: 8, Width: 1000, Height: 1000, TimeRange: 1000,
	})
	if err := workload.WriteEventsCSV(fs, "data/events.csv", events); err != nil {
		t.Fatal(err)
	}
	ctx := stark.NewContext(4)
	out, err := piglet.Run(`
e = LOAD 'data/events.csv';
w = FILTER e BY CONTAINEDBY('POLYGON ((100 100, 500 100, 500 500, 100 500, 100 100))', 200, 800);
`, &piglet.Env{Ctx: ctx, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	// Same query through the DSL.
	tuples, _ := workload.EventTuples(events)
	q := stark.NewSTObjectWithInterval(
		stark.NewEnvelope(100, 100, 500, 500).ToPolygon(),
		stark.MustInterval(200, 800))
	hits, err := stark.Parallelize(ctx, tuples, 4).ContainedBy(q).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(out.Relations["w"].Rows()); got != len(hits) {
		t.Errorf("piglet %d vs API %d", got, len(hits))
	}
	if len(hits) == 0 {
		t.Error("degenerate comparison")
	}
}

// TestServerAgainstAPI round-trips a query through the HTTP layer and
// compares with the direct DSL result.
func TestServerAgainstAPI(t *testing.T) {
	ctx := stark.NewContext(4)
	events := workload.Events(workload.Config{
		N: 1_000, Seed: 9, Width: 1000, Height: 1000, TimeRange: 1000,
	})
	srv, err := server.New(ctx, events)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(server.QueryRequest{
		Predicate: "intersects",
		WKT:       "POLYGON ((0 0, 500 0, 500 500, 0 500, 0 0))",
		HasTime:   true, Begin: 0, End: 1000,
	})
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/api/query", bytes.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var resp struct {
		Count int `json:"count"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}

	tuples, _ := workload.EventTuples(events)
	q := stark.NewSTObjectWithInterval(
		stark.NewEnvelope(0, 0, 500, 500).ToPolygon(),
		stark.MustInterval(0, 1000))
	hits, err := stark.Parallelize(ctx, tuples, 4).Intersects(q).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if resp.Count != len(hits) {
		t.Errorf("server %d vs API %d", resp.Count, len(hits))
	}
	if len(hits) == 0 {
		t.Error("degenerate comparison")
	}
}
