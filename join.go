package stark

// This file provides the join operators of the DSL. Because Go
// methods cannot introduce type parameters, joins are package
// functions over two Datasets; the spatio-temporal join is itself
// chainable (it returns a Dataset keyed by the left record), so
// load → partition → filter → join → collect reads as one pipeline.

import (
	"fmt"

	"stark/internal/core"
	"stark/internal/engine"
	"stark/internal/plan"
)

// JoinOptions configures a spatial join: the predicate (nil selects
// Intersects), the per-partition-pair R-tree order (0 = nested loop,
// negative = default order), the probe expansion for distance
// predicates, and a pruning kill switch for ablations.
type JoinOptions = core.JoinOptions

// JoinRow is one result row of Join: the right record folded into the
// left record's payload. The row's key is the left key.
type JoinRow[V, W any] struct {
	Left     V
	RightKey STObject
	Right    W
}

// Join computes the spatio-temporal join of l and r: every pair of
// records whose keys satisfy the predicate. When both sides are
// spatially partitioned, partition pairs with disjoint extents are
// pruned — the execution strategy of the paper's Figure 4. The result
// is a Dataset keyed by the left record's STObject, so further
// operators chain; errors from either input surface at the action
// (the left input's error wins when both failed).
func Join[V, W any](l *Dataset[V], r *Dataset[W], opts JoinOptions) *Dataset[JoinRow[V, W]] {
	return newDataset(l.ctx, func() (state[JoinRow[V, W]], error) {
		ls, err := l.forceFlushed()
		if err != nil {
			return state[JoinRow[V, W]]{}, err
		}
		rs, err := r.forceFlushed()
		if err != nil {
			return state[JoinRow[V, W]]{}, err
		}
		pairs, err := core.Join(ls.sds, rs.sds, opts)
		if err != nil {
			return state[JoinRow[V, W]]{}, fmt.Errorf("stark: join: %w", err)
		}
		rows := make([]Tuple[JoinRow[V, W]], len(pairs))
		for i, jp := range pairs {
			rows[i] = NewTuple(jp.LeftKey, JoinRow[V, W]{
				Left: jp.LeftVal, RightKey: jp.RightKey, Right: jp.RightVal,
			})
		}
		node := plan.NewNode("Join", "spatio-temporal")
		node.ActRows = int64(len(rows))
		node.Add(ls.base, rs.base)
		return state[JoinRow[V, W]]{
			sds:  core.Wrap(engine.Parallelize(l.ctx, rows, 0)),
			base: node,
		}, nil
	})
}

// SelfJoin joins the dataset with itself (identity pairs included,
// matching rdd.join(rdd)).
func SelfJoin[V any](d *Dataset[V], opts JoinOptions) *Dataset[JoinRow[V, V]] {
	return Join(d, d, opts)
}

// SelfJoinWithinDistanceCount counts the unordered within-eps pairs
// (self pairs included) of the dataset — the workload and result
// convention of the paper's Figure 4 micro-benchmark, executed with
// the symmetric, streaming strategy. order <= 0 selects the default
// R-tree order.
func SelfJoinWithinDistanceCount[V any](d *Dataset[V], eps float64, order int) (int64, error) {
	st, err := d.forceFlushed()
	if err != nil {
		return 0, err
	}
	n, err := core.SelfJoinWithinDistanceCount(st.sds, eps, order)
	if err != nil {
		return 0, fmt.Errorf("stark: selfJoinWithinDistanceCount: %w", err)
	}
	return n, nil
}

// KNNJoinRow is one kNN-join result row: a left payload, one of its k
// nearest right payloads, and their distance.
type KNNJoinRow[V, W any] = core.KNNJoinRow[V, W]

// KNNJoin returns, for every left record, its k nearest right records
// by planar distance — k consecutive rows per left record, ascending
// by distance.
func KNNJoin[V, W any](l *Dataset[V], r *Dataset[W], k int) ([]KNNJoinRow[V, W], error) {
	ls, err := l.forceFlushed()
	if err != nil {
		return nil, err
	}
	rs, err := r.forceFlushed()
	if err != nil {
		return nil, err
	}
	rows, err := core.KNNJoin(ls.sds, rs.sds, k)
	if err != nil {
		return nil, fmt.Errorf("stark: kNNJoin: %w", err)
	}
	return rows, nil
}
