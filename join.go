package stark

// This file provides the join operators of the DSL. Because Go
// methods cannot introduce type parameters, joins are package
// functions over two Datasets; the spatio-temporal join is itself
// chainable (it returns a Dataset keyed by the left record), so
// load → partition → filter → join → collect reads as one pipeline.

import (
	"fmt"

	"stark/internal/core"
	"stark/internal/engine"
	"stark/internal/plan"
)

// JoinOptions configures a spatial join: the predicate (nil selects
// Intersects), the build-side R-tree order (0 = nested loop,
// negative = default order), the probe expansion for distance
// predicates, the physical Strategy hint (JoinAuto, the zero value,
// lets the cost model choose), the BroadcastBudget row cap, an
// optional Report out-parameter, and a pruning kill switch for
// ablations.
type JoinOptions = core.JoinOptions

// JoinStrategy selects the physical join execution strategy; the
// cost model chooses one on JoinAuto (the default).
type JoinStrategy = core.JoinStrategy

// Join strategy values: JoinAuto defers to the cost model;
// JoinBroadcast materialises the smaller side into one R-tree and
// streams the other side against it; JoinCoPartition replicates the
// smaller side onto the other side's spatial partitioner so each
// task joins one aligned pair; JoinPairs is the pruned
// partition-pair enumeration of the paper's Figure 4.
const (
	JoinAuto        = core.JoinAuto
	JoinPairs       = core.JoinPairs
	JoinBroadcast   = core.JoinBroadcast
	JoinCoPartition = core.JoinCoPartition
)

// JoinReport describes how a join actually executed: the chosen
// strategy, the cost-model decision behind it, and the actual task /
// pair / tree / shuffle counters EXPLAIN renders.
type JoinReport = core.JoinReport

// JoinRow is one result row of Join: the right record folded into the
// left record's payload. The row's key is the left key.
type JoinRow[V, W any] struct {
	Left     V
	RightKey STObject
	Right    W
}

// Join computes the spatio-temporal join of l and r: every pair of
// records whose keys satisfy the predicate. The physical strategy —
// broadcast, co-partitioned, or the pruned partition-pair join of
// the paper's Figure 4 — is chosen by the cost model from dataset
// statistics unless opts.Strategy forces one; Explain() on the
// result renders the decision as Join[broadcast|copartition|pairs]
// with estimated vs actual pair counts. The result is a Dataset
// keyed by the left record's STObject, so further operators chain;
// errors from either input surface at the action (the left input's
// error wins when both failed).
func Join[V, W any](l *Dataset[V], r *Dataset[W], opts JoinOptions) *Dataset[JoinRow[V, W]] {
	return newDataset(l.ctx, func() (state[JoinRow[V, W]], error) {
		ls, err := l.forceFlushed()
		if err != nil {
			return state[JoinRow[V, W]]{}, err
		}
		rs, err := r.forceFlushed()
		if err != nil {
			return state[JoinRow[V, W]]{}, err
		}
		if opts.Report == nil {
			opts.Report = &JoinReport{}
		}
		pairs, err := core.Join(ls.sds, rs.sds, opts)
		if err != nil {
			return state[JoinRow[V, W]]{}, fmt.Errorf("stark: join: %w", err)
		}
		rows := make([]Tuple[JoinRow[V, W]], len(pairs))
		for i, jp := range pairs {
			rows[i] = NewTuple(jp.LeftKey, JoinRow[V, W]{
				Left: jp.LeftVal, RightKey: jp.RightKey, Right: jp.RightVal,
			})
		}
		node := joinPlanNode(opts, ls.base, rs.base)
		node.ActRows = int64(len(rows))
		return state[JoinRow[V, W]]{
			sds:  core.Wrap(engine.Parallelize(l.ctx, rows, 0)),
			base: node,
		}, nil
	})
}

// joinPlanNode builds the EXPLAIN node of an executed join from its
// report: the cost-model decision (when the strategy was chosen
// automatically) plus the actual execution counters.
func joinPlanNode(opts JoinOptions, left, right *plan.Node) *plan.Node {
	rep := opts.Report
	dec := rep.Decision
	if dec == nil {
		// Forced strategy: no cost-model verdict to render.
		dec = &plan.JoinDecision{Strategy: rep.Strategy, BuildRight: !rep.Swapped, EstRows: -1}
	}
	pred := plan.Pred{Kind: plan.Custom, Expand: opts.ProbeExpansion}
	node := plan.JoinNode(*dec, pred, rep.Swapped, left, right)
	node.Prop("actual: %s", rep.Summary())
	return node
}

// SelfJoin joins the dataset with itself (identity pairs included,
// matching rdd.join(rdd)).
func SelfJoin[V any](d *Dataset[V], opts JoinOptions) *Dataset[JoinRow[V, V]] {
	return Join(d, d, opts)
}

// SelfJoinWithinDistanceCount counts the unordered within-eps pairs
// (self pairs included) of the dataset — the workload and result
// convention of the paper's Figure 4 micro-benchmark, executed with
// the symmetric, streaming strategy. order <= 0 selects the default
// R-tree order.
func SelfJoinWithinDistanceCount[V any](d *Dataset[V], eps float64, order int) (int64, error) {
	st, err := d.forceFlushed()
	if err != nil {
		return 0, err
	}
	n, err := core.SelfJoinWithinDistanceCount(st.sds, eps, order)
	if err != nil {
		return 0, fmt.Errorf("stark: selfJoinWithinDistanceCount: %w", err)
	}
	return n, nil
}

// KNNJoinRow is one kNN-join result row: a left payload, one of its k
// nearest right payloads, and their distance.
type KNNJoinRow[V, W any] = core.KNNJoinRow[V, W]

// KNNJoin returns, for every left record, its k nearest right records
// by planar distance — k consecutive rows per left record, ascending
// by distance.
func KNNJoin[V, W any](l *Dataset[V], r *Dataset[W], k int) ([]KNNJoinRow[V, W], error) {
	ls, err := l.forceFlushed()
	if err != nil {
		return nil, err
	}
	rs, err := r.forceFlushed()
	if err != nil {
		return nil, err
	}
	rows, err := core.KNNJoin(ls.sds, rs.sds, k)
	if err != nil {
		return nil, fmt.Errorf("stark: kNNJoin: %w", err)
	}
	return rows, nil
}
