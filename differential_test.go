package stark_test

// The differential oracle: randomized datasets × randomized predicate
// chains, asserting that every execution strategy agrees
// element-for-element. The planner (predicate reordering, stats-based
// pruning, scan-vs-index selection) is pure optimisation — it must
// never change a result — so planned execution (Optimize(true), the
// default) is checked against naive caller-order execution
// (Optimize(false)) over plain, spatially partitioned and live-indexed
// layouts. The cached-vs-uncached counterpart lives in
// internal/server's service tests, where the result cache sits.

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"stark"
)

// diffTuples generates n timed points in [0,1000)² with intervals in
// [0, 1000).
func diffTuples(rng *rand.Rand, n int) []stark.Tuple[int] {
	tuples := make([]stark.Tuple[int], n)
	for i := range tuples {
		x, y := rng.Float64()*1000, rng.Float64()*1000
		begin := rng.Int63n(900)
		iv, err := stark.NewInterval(stark.Instant(begin), stark.Instant(begin+1+rng.Int63n(99)))
		if err != nil {
			panic(err)
		}
		tuples[i] = stark.NewTuple(stark.NewSTObjectWithInterval(stark.NewPoint(x, y), iv), i)
	}
	return tuples
}

// diffPred is one randomized predicate application.
type diffPred struct {
	name  string
	apply func(d *stark.Dataset[int]) *stark.Dataset[int]
}

// randPred draws a random predicate with a random window. Queries
// always carry a time window: the records are all timed, and mixed
// timed/untimed pairs never match by definition.
func randPred(t *testing.T, rng *rand.Rand) diffPred {
	t.Helper()
	w := 50 + rng.Float64()*400
	h := 50 + rng.Float64()*400
	x := rng.Float64() * (1000 - w)
	y := rng.Float64() * (1000 - h)
	begin := rng.Int63n(800)
	end := begin + rng.Int63n(1000-begin)
	iv, err := stark.NewInterval(stark.Instant(begin), stark.Instant(end))
	if err != nil {
		t.Fatal(err)
	}
	poly, err := stark.ParseWKT(fmt.Sprintf("POLYGON ((%f %f, %f %f, %f %f, %f %f, %f %f))",
		x, y, x+w, y, x+w, y+h, x, y+h, x, y))
	if err != nil {
		t.Fatal(err)
	}
	q := stark.NewSTObjectWithInterval(poly, iv)
	switch rng.Intn(4) {
	case 0:
		return diffPred{"intersects", func(d *stark.Dataset[int]) *stark.Dataset[int] { return d.Intersects(q) }}
	case 1:
		return diffPred{"containedby", func(d *stark.Dataset[int]) *stark.Dataset[int] { return d.ContainedBy(q) }}
	case 2:
		return diffPred{"coveredby", func(d *stark.Dataset[int]) *stark.Dataset[int] { return d.CoveredBy(q) }}
	default:
		dist := 20 + rng.Float64()*150
		pt := stark.NewSTObjectWithInterval(stark.NewPoint(x+w/2, y+h/2), iv)
		return diffPred{"withindistance", func(d *stark.Dataset[int]) *stark.Dataset[int] {
			return d.WithinDistance(pt, dist, nil)
		}}
	}
}

func collectIDs(t *testing.T, d *stark.Dataset[int]) []int {
	t.Helper()
	rows, err := d.Collect()
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]int, len(rows))
	for i, kv := range rows {
		ids[i] = kv.Value
	}
	sort.Ints(ids)
	return ids
}

func equalIDs(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestDifferentialPlannedVsNaive(t *testing.T) {
	totalMatched := 0
	for seed := int64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			ctx := stark.NewContext(4)
			tuples := diffTuples(rng, 600)
			layouts := []struct {
				name string
				base *stark.Dataset[int]
			}{
				{"plain", stark.Parallelize(ctx, tuples, 5)},
				{"grid", stark.Parallelize(ctx, tuples, 5).PartitionBy(stark.Grid(4))},
				{"live", stark.Parallelize(ctx, tuples, 5).Index(stark.Live(8))},
			}
			for trial := 0; trial < 5; trial++ {
				nPreds := 1 + rng.Intn(3)
				preds := make([]diffPred, nPreds)
				names := ""
				for i := range preds {
					preds[i] = randPred(t, rng)
					names += preds[i].name + " "
				}
				for _, layout := range layouts {
					planned := layout.base
					naive := layout.base.Optimize(false)
					for _, p := range preds {
						planned = p.apply(planned)
						naive = p.apply(naive)
					}
					want := collectIDs(t, naive)
					got := collectIDs(t, planned)
					if !equalIDs(got, want) {
						t.Errorf("layout=%s preds=[%s]: planned %d rows, naive %d rows — results diverge",
							layout.name, names, len(got), len(want))
					}
					totalMatched += len(got)
				}
			}
		})
	}
	// The oracle is vacuous if every random chain selects nothing.
	if totalMatched == 0 {
		t.Error("differential suite never matched a single row — queries are degenerate")
	}
}
