package stark

// This file provides the partitioner constructors of the DSL. A
// Partitioner value is a recipe — Grid(4), BSP(1024), Voronoi(64, 7)
// — that Dataset.PartitionBy turns into a concrete spatial
// partitioner over the dataset's keys when the chain resolves, so
// partitioning composes fluently without the caller collecting keys
// or handling construction errors mid-chain.

import (
	"fmt"

	"stark/internal/partition"
)

// Partitioner is a deferred spatial-partitioner recipe consumed by
// Dataset.PartitionBy. Construct values with Grid, BSP, Voronoi or
// WithPartitioner.
type Partitioner struct {
	name string
	// build receives a lazy key loader so recipes that do not need
	// the data (WithPartitioner) skip the collect.
	build func(keys func() ([]STObject, error)) (partition.SpatialPartitioner, error)
}

// String names the recipe for diagnostics.
func (p Partitioner) String() string { return p.name }

func dataPartitioner(name string, mk func(objs []STObject) (partition.SpatialPartitioner, error)) Partitioner {
	return Partitioner{name: name, build: func(keys func() ([]STObject, error)) (partition.SpatialPartitioner, error) {
		objs, err := keys()
		if err != nil {
			return nil, err
		}
		return mk(objs)
	}}
}

// Grid partitions the data space into ppd × ppd equal cells with
// centroid assignment — fast to build, skew-sensitive.
func Grid(ppd int) Partitioner {
	return dataPartitioner(fmt.Sprintf("grid(%d)", ppd),
		func(objs []STObject) (partition.SpatialPartitioner, error) {
			return partition.NewGrid(ppd, objs)
		})
}

// BSP builds the cost-based binary space partitioner: regions are
// recursively split until they hold at most maxCost objects, so dense
// areas are finely divided and sparse areas stay coarse — the paper's
// skew-robust choice.
func BSP(maxCost int) Partitioner {
	return dataPartitioner(fmt.Sprintf("bsp(%d)", maxCost),
		func(objs []STObject) (partition.SpatialPartitioner, error) {
			return partition.NewBSP(partition.BSPConfig{MaxCost: maxCost}, objs)
		})
}

// BSPWithMinSide is BSP with a granularity floor: regions whose sides
// are both <= minSide are never split further.
func BSPWithMinSide(maxCost int, minSide float64) Partitioner {
	return dataPartitioner(fmt.Sprintf("bsp(%d,%g)", maxCost, minSide),
		func(objs []STObject) (partition.SpatialPartitioner, error) {
			return partition.NewBSP(partition.BSPConfig{MaxCost: maxCost, MinSide: minSide}, objs)
		})
}

// Voronoi partitions by nearest of numSeeds sample seeds drawn with
// the given random seed.
func Voronoi(numSeeds int, seed int64) Partitioner {
	return dataPartitioner(fmt.Sprintf("voronoi(%d)", numSeeds),
		func(objs []STObject) (partition.SpatialPartitioner, error) {
			return partition.NewVoronoi(numSeeds, seed, objs)
		})
}

// Build materialises the recipe over the given sample keys — the
// out-of-chain constructor for callers that must fix a spatial layout
// before a dataset exists. A mutable dataset is the canonical case:
// its partitioning cannot be derived from data that has not been
// ingested yet, so the layout is built up front from seed keys (or
// from the corners of the intended data space).
func (p Partitioner) Build(keys []STObject) (SpatialPartitioner, error) {
	if p.build == nil {
		return nil, fmt.Errorf("stark: zero Partitioner recipe (use Grid, BSP, Voronoi or WithPartitioner)")
	}
	return p.build(func() ([]STObject, error) { return keys, nil })
}

// HilbertOrdered wraps the recipe so the built partitioner's IDs run
// in Hilbert-curve order of the partitions' cell centers: consecutive
// partition IDs are spatially adjacent regions. Assignment and bounds
// are unchanged — only the numbering moves — so pruning semantics are
// identical, while partition-ID range scans (and the columnar sidecar,
// which lays partitions out in ID order) walk the data space
// coherently. Compose it with any recipe: Grid(8).HilbertOrdered().
func (p Partitioner) HilbertOrdered() Partitioner {
	inner := p.build
	return Partitioner{name: p.name + ".hilbert", build: func(keys func() ([]STObject, error)) (partition.SpatialPartitioner, error) {
		if inner == nil {
			return nil, fmt.Errorf("stark: zero Partitioner recipe (use Grid, BSP, Voronoi or WithPartitioner)")
		}
		sp, err := inner(keys)
		if err != nil {
			return nil, err
		}
		return partition.HilbertOrder(sp), nil
	}}
}

// WithPartitioner adapts an already-built spatial partitioner, for
// callers that construct or tune one outside the chain.
func WithPartitioner(sp SpatialPartitioner) Partitioner {
	return Partitioner{name: "prebuilt", build: func(func() ([]STObject, error)) (partition.SpatialPartitioner, error) {
		if sp == nil {
			return nil, fmt.Errorf("nil partitioner")
		}
		return sp, nil
	}}
}
