// Tests for the public fluent DSL: the quickstart round trip
// (load → partition → index → filter → join → collect), agreement of
// the three indexing modes, and deferred-error propagation — the
// first failed step is the error the terminal action reports, without
// panicking.
package stark_test

import (
	"strings"
	"testing"

	"stark"
	"stark/internal/workload"
)

func apiTuples(t testing.TB, n int) []stark.Tuple[int] {
	t.Helper()
	return workload.Tuples(workload.Config{
		N: n, Seed: 11, Dist: workload.Skewed, Width: 1000, Height: 1000, TimeRange: 1000,
	})
}

// apiSpatialTuples returns tuples without a temporal component, for
// spatial-only queries (the combined semantics reject timed/untimed
// mixes).
func apiSpatialTuples(t testing.TB, n int) []stark.Tuple[int] {
	t.Helper()
	return workload.SpatialTuples(workload.Config{
		N: n, Seed: 11, Dist: workload.Skewed, Width: 1000, Height: 1000,
	})
}

// TestFluentRoundTrip drives the full pipeline through the DSL and
// cross-checks every stage against a brute-force reference.
func TestFluentRoundTrip(t *testing.T) {
	ctx := stark.NewContext(4)
	tuples := apiTuples(t, 5_000)

	q := stark.NewSTObjectWithInterval(
		stark.NewEnvelope(200, 200, 600, 600).ToPolygon(),
		stark.MustInterval(0, 400))

	// Brute-force reference for the filter.
	var want []stark.Tuple[int]
	for _, kv := range tuples {
		if kv.Key.ContainedBy(q) {
			want = append(want, kv)
		}
	}
	if len(want) == 0 {
		t.Fatal("degenerate query")
	}

	// load → partition → index → filter → collect, one chain.
	events := stark.Parallelize(ctx, tuples, 8).
		PartitionBy(stark.BSP(500)).
		Index(stark.Live(8))
	filtered := events.ContainedBy(q)
	got, err := filtered.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("filter: got %d records, want %d", len(got), len(want))
	}
	n, err := filtered.Count()
	if err != nil {
		t.Fatal(err)
	}
	if int(n) != len(want) {
		t.Fatalf("count: got %d, want %d", n, len(want))
	}

	// join: regions of interest × filtered events. The regions carry
	// no time, so the events are re-keyed spatially first (mixed
	// timed/untimed pairs never match under the combined semantics).
	regions := workload.Regions(workload.Config{Seed: 5, Width: 1000, Height: 1000}, 200)
	regionTuples := make([]stark.Tuple[int], len(regions))
	for i, r := range regions {
		regionTuples[i] = stark.NewTuple(r, i)
	}
	regionDS := stark.Parallelize(ctx, regionTuples, 2)
	spatial := stark.ReKey(filtered, func(key stark.STObject, _ int) stark.STObject {
		return stark.NewSTObject(key.Geo())
	})
	joined, err := stark.Join(regionDS, spatial, stark.JoinOptions{IndexOrder: -1}).Collect()
	if err != nil {
		t.Fatal(err)
	}
	wantJoin := 0
	for _, r := range regionTuples {
		for _, kv := range want {
			if r.Key.Intersects(stark.NewSTObject(kv.Key.Geo())) {
				wantJoin++
			}
		}
	}
	if len(joined) != wantJoin {
		t.Fatalf("join: got %d pairs, want %d", len(joined), wantJoin)
	}
	if wantJoin == 0 {
		t.Fatal("degenerate join")
	}

	// The headline chain: filter then kNN off the same builder.
	ref := stark.NewSTObject(stark.NewPoint(400, 400))
	nbrs, err := events.Intersects(q).KNN(ref, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(nbrs) != 5 {
		t.Fatalf("kNN returned %d neighbours, want 5", len(nbrs))
	}
	for i := 1; i < len(nbrs); i++ {
		if nbrs[i].Distance < nbrs[i-1].Distance {
			t.Fatal("kNN results not sorted by distance")
		}
	}
}

// TestIndexModesAgree runs one query under all three indexing modes
// and demands identical results — the unified Index(mode) surface
// must not change semantics.
func TestIndexModesAgree(t *testing.T) {
	ctx := stark.NewContext(4)
	tuples := apiSpatialTuples(t, 4_000)
	q := stark.NewSTObject(stark.NewEnvelope(300, 300, 700, 700).ToPolygon())

	base := stark.Parallelize(ctx, tuples, 8).PartitionBy(stark.Grid(4)).Cache()
	ids := func(mode stark.IndexMode) map[int]bool {
		t.Helper()
		rows, err := base.Index(mode).Intersects(q).Collect()
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		out := make(map[int]bool, len(rows))
		for _, kv := range rows {
			out[kv.Value] = true
		}
		return out
	}
	none := ids(stark.NoIndexing)
	live := ids(stark.Live(8))
	persistent := ids(stark.Persistent(8))
	if len(none) == 0 {
		t.Fatal("degenerate query")
	}
	if len(live) != len(none) || len(persistent) != len(none) {
		t.Fatalf("result sizes differ: none=%d live=%d persistent=%d",
			len(none), len(live), len(persistent))
	}
	for id := range none {
		if !live[id] || !persistent[id] {
			t.Fatalf("record %d missing from an indexed mode", id)
		}
	}
}

// TestDeferredErrorPropagation checks that a mid-chain failure is
// carried to the action — and that the FIRST failed step wins even
// when later steps would also fail.
func TestDeferredErrorPropagation(t *testing.T) {
	ctx := stark.NewContext(2)
	tuples := apiTuples(t, 100)
	q := stark.NewSTObject(stark.NewEnvelope(0, 0, 10, 10).ToPolygon())

	// Grid(0) is invalid; Live(1) would be invalid too — the grid
	// error must be the one reported, from every action, sans panic.
	chain := stark.Parallelize(ctx, tuples).
		PartitionBy(stark.Grid(0)).
		Index(stark.Live(1)).
		Intersects(q)

	if _, err := chain.Collect(); err == nil {
		t.Fatal("Collect on failed chain returned nil error")
	} else {
		if !strings.Contains(err.Error(), "partitionBy") {
			t.Errorf("error %q does not name the failing step", err)
		}
		if !strings.Contains(err.Error(), "ppd") {
			t.Errorf("error %q lost the underlying cause", err)
		}
		if strings.Contains(err.Error(), "index order") {
			t.Errorf("error %q reports a later failure, not the first", err)
		}
	}
	if _, err := chain.Count(); err == nil {
		t.Error("Count on failed chain returned nil error")
	}
	if _, err := chain.KNN(q, 3); err == nil {
		t.Error("KNN on failed chain returned nil error")
	}
	if err := chain.Run(); err == nil {
		t.Error("Run on failed chain returned nil error")
	}

	// A failed input poisons a join the same way.
	if _, err := stark.Join(chain, stark.Parallelize(ctx, tuples), stark.JoinOptions{}).Count(); err == nil {
		t.Error("Join with failed left input returned nil error")
	}

	// Errors born in the middle of an otherwise healthy chain.
	if _, err := stark.Parallelize(ctx, tuples).Index(stark.Live(1)).Collect(); err == nil {
		t.Error("invalid index order not reported")
	}
	if _, err := stark.Parallelize(ctx, tuples).Intersects(stark.STObject{}).Collect(); err == nil {
		t.Error("empty query object not reported")
	}

	// A healthy chain still works after all that.
	if _, err := stark.Parallelize(ctx, tuples).Intersects(q).Collect(); err != nil {
		t.Fatalf("healthy chain failed: %v", err)
	}
}

// TestPartitionPruningAtAction verifies that a lazily filtered,
// spatially partitioned chain skips non-overlapping partitions at the
// action — the paper's pruning, preserved through the DSL.
func TestPartitionPruningAtAction(t *testing.T) {
	ctx := stark.NewContext(4)
	tuples := apiSpatialTuples(t, 4_000)
	// A small window around one known record: data to find, but far
	// from most of the skewed clusters, so pruning has partitions to
	// skip.
	c := tuples[0].Key.Centroid()
	q := stark.NewSTObject(stark.NewEnvelope(c.X-40, c.Y-40, c.X+40, c.Y+40).ToPolygon())

	parted := stark.Parallelize(ctx, tuples, 8).PartitionBy(stark.Grid(4))
	if err := parted.Run(); err != nil {
		t.Fatal(err)
	}
	before := ctx.Metrics().Snapshot().TasksSkipped
	got, err := parted.Intersects(q).Collect()
	if err != nil {
		t.Fatal(err)
	}
	after := ctx.Metrics().Snapshot().TasksSkipped
	if after <= before {
		t.Errorf("no partitions pruned (skipped %d -> %d)", before, after)
	}
	var want int
	for _, kv := range tuples {
		if kv.Key.Intersects(q) {
			want++
		}
	}
	if len(got) != want || want == 0 {
		t.Fatalf("pruned collect returned %d records, want %d", len(got), want)
	}
}

// TestStreamingActions exercises the streaming / short-circuiting
// action surface of the DSL: Exists, First, Reduce, Stream and Take
// must agree with Collect on the same chain — with and without a
// spatial partitioner (i.e. with partition pruning pending).
func TestStreamingActions(t *testing.T) {
	ctx := stark.NewContext(4)
	tuples := apiSpatialTuples(t, 3_000)
	q := stark.NewSTObject(stark.NewEnvelope(100, 100, 700, 700).ToPolygon())

	for _, mode := range []string{"plain", "partitioned"} {
		ds := stark.Parallelize(ctx, tuples, 6)
		if mode == "partitioned" {
			ds = ds.PartitionBy(stark.Grid(4))
		}
		filtered := ds.Intersects(q)

		want, err := filtered.Collect()
		if err != nil {
			t.Fatal(err)
		}
		if len(want) == 0 {
			t.Fatal("degenerate query")
		}

		// Stream sees exactly the Collect rows, in partition order.
		var streamed []stark.Tuple[int]
		if err := filtered.Stream(func(kv stark.Tuple[int]) bool {
			streamed = append(streamed, kv)
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if len(streamed) != len(want) {
			t.Fatalf("%s: stream saw %d rows, collect %d", mode, len(streamed), len(want))
		}
		for i := range streamed {
			if streamed[i].Value != want[i].Value {
				t.Fatalf("%s: stream row %d differs from collect", mode, i)
			}
		}

		// Early stop.
		n := 0
		if err := filtered.Stream(func(stark.Tuple[int]) bool {
			n++
			return n < 7
		}); err != nil {
			t.Fatal(err)
		}
		if n != 7 {
			t.Errorf("%s: stream stop saw %d rows, want 7", mode, n)
		}

		// First matches the head of Collect.
		first, ok, err := filtered.First()
		if err != nil || !ok {
			t.Fatalf("%s: first ok=%v err=%v", mode, ok, err)
		}
		if first.Value != want[0].Value {
			t.Errorf("%s: first = %v, want %v", mode, first.Value, want[0].Value)
		}

		// Take short-circuits but returns the same prefix.
		head, err := filtered.Take(5)
		if err != nil {
			t.Fatal(err)
		}
		if len(head) != 5 {
			t.Fatalf("%s: take = %d rows", mode, len(head))
		}
		for i := range head {
			if head[i].Value != want[i].Value {
				t.Errorf("%s: take row %d differs from collect", mode, i)
			}
		}

		// Exists: a present payload and an impossible one.
		found, err := filtered.Exists(func(kv stark.Tuple[int]) bool { return kv.Value == want[0].Value })
		if err != nil || !found {
			t.Errorf("%s: exists(present) = %v err=%v", mode, found, err)
		}
		found, err = filtered.Exists(func(kv stark.Tuple[int]) bool { return kv.Value < 0 })
		if err != nil || found {
			t.Errorf("%s: exists(absent) = %v err=%v", mode, found, err)
		}

		// Reduce streams to the same sum Collect gives.
		wantSum := 0
		for _, kv := range want {
			wantSum += kv.Value
		}
		total, ok, err := filtered.Reduce(func(a, b stark.Tuple[int]) stark.Tuple[int] {
			a.Value += b.Value
			return a
		})
		if err != nil || !ok {
			t.Fatalf("%s: reduce ok=%v err=%v", mode, ok, err)
		}
		if total.Value != wantSum {
			t.Errorf("%s: reduce sum = %d, want %d", mode, total.Value, wantSum)
		}
	}
}

// TestStreamingActionErrors checks that deferred chain errors and nil
// arguments surface through the new actions.
func TestStreamingActionErrors(t *testing.T) {
	ctx := stark.NewContext(2)
	tuples := apiSpatialTuples(t, 100)
	bad := stark.Parallelize(ctx, tuples).Intersects(stark.STObject{})

	if _, _, err := bad.First(); err == nil {
		t.Error("First on failed chain must error")
	}
	if _, err := bad.Exists(func(stark.Tuple[int]) bool { return true }); err == nil {
		t.Error("Exists on failed chain must error")
	}
	if err := bad.Stream(func(stark.Tuple[int]) bool { return true }); err == nil {
		t.Error("Stream on failed chain must error")
	}

	good := stark.Parallelize(ctx, tuples)
	if _, err := good.Exists(nil); err == nil {
		t.Error("Exists(nil) must error")
	}
	if err := good.Stream(nil); err == nil {
		t.Error("Stream(nil) must error")
	}
	if _, _, err := good.Reduce(nil); err == nil {
		t.Error("Reduce(nil) must error")
	}
}

// TestStreamParallelAgrees pins the parallel ordered stream against
// Collect on plain and partitioned chains.
func TestStreamParallelAgrees(t *testing.T) {
	ctx := stark.NewContext(4)
	tuples := apiSpatialTuples(t, 2_000)
	q := stark.NewSTObject(stark.NewEnvelope(100, 100, 700, 700).ToPolygon())

	for _, mode := range []string{"plain", "partitioned"} {
		ds := stark.Parallelize(ctx, tuples, 6)
		if mode == "partitioned" {
			ds = ds.PartitionBy(stark.Grid(4))
		}
		filtered := ds.Intersects(q)
		want, err := filtered.Collect()
		if err != nil {
			t.Fatal(err)
		}
		var got []stark.Tuple[int]
		if err := filtered.StreamParallel(func(kv stark.Tuple[int]) bool {
			got = append(got, kv)
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: streamParallel %d rows, collect %d", mode, len(got), len(want))
		}
		for i := range got {
			if got[i].Value != want[i].Value {
				t.Fatalf("%s: row %d differs", mode, i)
			}
		}
		if _, err := stark.Parallelize(ctx, tuples).Intersects(stark.STObject{}).Collect(); err == nil {
			t.Fatal("sanity: failed chain must error")
		}
		if err := filtered.StreamParallel(nil); err == nil {
			t.Error("StreamParallel(nil) must error")
		}
	}
}
