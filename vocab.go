package stark

// This file re-exports the user-facing vocabulary of the framework —
// the data types, predicates and constructors queries are written
// with — so that callers of the public DSL never import an
// stark/internal/... package. All names are aliases (not copies): a
// stark.STObject IS a stobject.STObject, so values flow freely
// between the public surface and the engine.

import (
	"stark/internal/cluster"
	"stark/internal/core"
	"stark/internal/dfs"
	"stark/internal/engine"
	"stark/internal/geom"
	"stark/internal/partition"
	"stark/internal/stobject"
	"stark/internal/temporal"
)

// ---- Core vocabulary types ----

type (
	// STObject is the spatio-temporal data type: a geometry plus an
	// optional validity interval, with the paper's combined predicate
	// semantics.
	STObject = stobject.STObject
	// Predicate is a binary spatio-temporal predicate.
	Predicate = stobject.Predicate

	// Geometry is the geometry kernel interface (points, lines,
	// polygons, multipoints).
	Geometry = geom.Geometry
	// Point is a 2D point geometry.
	Point = geom.Point
	// LineString is a polyline geometry.
	LineString = geom.LineString
	// Polygon is a polygon geometry with optional holes.
	Polygon = geom.Polygon
	// Envelope is an axis-aligned bounding rectangle.
	Envelope = geom.Envelope
	// DistanceFunc is a pluggable point-distance metric; nil selects
	// the exact planar geometry distance.
	DistanceFunc = geom.DistanceFunc

	// Instant is a point in time.
	Instant = temporal.Instant
	// Interval is a half-open validity interval [Start, End).
	Interval = temporal.Interval

	// Context coordinates job execution — the SparkContext stand-in
	// owning the executor pool and metrics.
	Context = engine.Context
	// MetricsSnapshot is a point-in-time copy of the execution
	// counters (tasks launched/pruned, elements scanned, probes).
	MetricsSnapshot = engine.MetricsSnapshot

	// Tuple is the record type of all datasets: the spatio-temporal
	// key plus the user payload.
	Tuple[V any] = core.Tuple[V]

	// SpatialPartitioner is the partitioner contract: assignment by
	// centroid plus per-partition bounds and data-adjusted extents.
	SpatialPartitioner = partition.SpatialPartitioner

	// DFS is the simulated HDFS block store used for CSV staging and
	// index persistence.
	DFS = dfs.FileSystem

	// ClusterResult holds DBSCAN labels with summary helpers
	// (ClusterSizes, NoiseCount).
	ClusterResult = cluster.Result
)

// ClusterNoise is the label DBSCAN assigns to noise points.
const ClusterNoise = cluster.Noise

// ---- Canonical predicates ----

// The named predicates, usable wherever a Predicate is expected
// (Where, joins). The Dataset methods of the same names are the
// fluent shorthand for filtering with them.
var (
	Intersects  = stobject.Intersects
	Contains    = stobject.Contains
	ContainedBy = stobject.ContainedBy
	Covers      = stobject.Covers
	CoveredBy   = stobject.CoveredBy
	Touches     = stobject.Touches
	Overlaps    = stobject.Overlaps
)

// WithinDistancePredicate returns a predicate testing whether two
// objects lie within maxDist under df (nil = planar distance).
func WithinDistancePredicate(maxDist float64, df DistanceFunc) Predicate {
	return stobject.WithinDistancePredicate(maxDist, df)
}

// ---- Constructors ----

// NewContext returns an execution context with the given parallelism;
// <= 0 selects GOMAXPROCS.
func NewContext(parallelism int) *Context { return engine.NewContext(parallelism) }

// NewDFS returns a simulated HDFS with the given block size and
// replication factor (0 selects the defaults).
func NewDFS(blockSize, replication int) *DFS { return dfs.New(blockSize, replication) }

// NewSTObject builds a purely spatial STObject.
func NewSTObject(g Geometry) STObject { return stobject.New(g) }

// NewSTObjectWithInterval builds an STObject valid during iv.
func NewSTObjectWithInterval(g Geometry, iv Interval) STObject {
	return stobject.NewWithInterval(g, iv)
}

// NewSTObjectWithTime builds an STObject valid at the instant t.
func NewSTObjectWithTime(g Geometry, t Instant) STObject { return stobject.NewWithTime(g, t) }

// FromWKT parses a WKT geometry into a purely spatial STObject.
func FromWKT(wkt string) (STObject, error) { return stobject.FromWKT(wkt) }

// FromWKTWithInterval parses a WKT geometry valid during
// [begin, end).
func FromWKTWithInterval(wkt string, begin, end Instant) (STObject, error) {
	return stobject.FromWKTWithInterval(wkt, begin, end)
}

// FromWKTWithTime parses a WKT geometry valid at the instant t.
func FromWKTWithTime(wkt string, t Instant) (STObject, error) {
	return stobject.FromWKTWithTime(wkt, t)
}

// MustFromWKT is FromWKT panicking on parse errors — for literals.
func MustFromWKT(wkt string) STObject { return stobject.MustFromWKT(wkt) }

// ParseWKT parses a WKT string into a Geometry.
func ParseWKT(wkt string) (Geometry, error) { return geom.ParseWKT(wkt) }

// NewPoint builds a Point.
func NewPoint(x, y float64) Point { return geom.NewPoint(x, y) }

// NewEnvelope builds an Envelope from two corners in any order.
func NewEnvelope(x1, y1, x2, y2 float64) Envelope { return geom.NewEnvelope(x1, y1, x2, y2) }

// NewInterval builds a validity interval, rejecting end < start.
func NewInterval(start, end Instant) (Interval, error) { return temporal.NewInterval(start, end) }

// MustInterval is NewInterval panicking on invalid bounds — for
// literals.
func MustInterval(start, end Instant) Interval { return temporal.MustInterval(start, end) }

// NewTuple pairs a spatio-temporal key with a payload.
func NewTuple[V any](key STObject, value V) Tuple[V] { return engine.NewPair(key, value) }

// Simplify reduces a polyline with Douglas–Peucker at the given
// tolerance.
func Simplify(l LineString, tolerance float64) LineString { return geom.Simplify(l, tolerance) }

// ---- Clustering summary helpers ----

// ClusterCentroids returns the centroid of every cluster.
func ClusterCentroids(points []Point, r ClusterResult) []Point { return cluster.Centroids(points, r) }

// SortClustersBySize returns cluster IDs ordered by descending size.
func SortClustersBySize(r ClusterResult) []int { return cluster.SortBySize(r) }
