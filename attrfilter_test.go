package stark_test

// Tests for typed attribute predicates: the differential battery
// (typed filters must equal the equivalent opaque closures
// element-for-element across every layout), fingerprint behaviour
// (attr predicates are canonical and cacheable where closures are
// not), EXPLAIN access paths, and a -race hammer mixing live ingest
// with concurrent attribute queries.

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"

	"stark"
)

// ride is the attribute-test payload: a typed record with numeric,
// string and boolean fields.
type ride struct {
	ID    int
	Fare  float64
	City  string
	Stops int64
	Pool  bool
}

func rideSchema() *stark.AttrSchema[ride] {
	return stark.NewAttrSchema[ride]().
		Int64("id", func(r ride) int64 { return int64(r.ID) }).
		Float64("fare", func(r ride) float64 { return r.Fare }).
		String("city", func(r ride) string { return r.City }).
		Int64("stops", func(r ride) int64 { return r.Stops }).
		Bool("pool", func(r ride) bool { return r.Pool })
}

var rideCities = []string{"berlin", "boston", "lima", "osaka", "quito"}

// rideTuples generates n rides at random points in [0,100)².
func rideTuples(rng *rand.Rand, n int) []stark.Tuple[ride] {
	tuples := make([]stark.Tuple[ride], n)
	for i := range tuples {
		r := ride{
			ID:    i,
			Fare:  rng.Float64() * 100,
			City:  rideCities[rng.Intn(len(rideCities))],
			Stops: rng.Int63n(6),
			Pool:  rng.Intn(3) == 0,
		}
		key := stark.NewSTObject(stark.NewPoint(rng.Float64()*100, rng.Float64()*100))
		tuples[i] = stark.NewTuple(key, r)
	}
	return tuples
}

func collectRideIDs(t *testing.T, d *stark.Dataset[ride]) []int {
	t.Helper()
	rows, err := d.Collect()
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]int, len(rows))
	for i, kv := range rows {
		ids[i] = kv.Value.ID
	}
	sort.Ints(ids)
	return ids
}

// attrCase pairs a typed attribute chain with the opaque closure
// chain it must be equivalent to.
type attrCase struct {
	name   string
	typed  func(d *stark.Dataset[ride]) *stark.Dataset[ride]
	opaque func(d *stark.Dataset[ride]) *stark.Dataset[ride]
}

func attrCases() []attrCase {
	return []attrCase{
		{
			name:  "eq_string",
			typed: func(d *stark.Dataset[ride]) *stark.Dataset[ride] { return d.FilterEq("city", "berlin") },
			opaque: func(d *stark.Dataset[ride]) *stark.Dataset[ride] {
				return d.FilterValues(func(r ride) bool { return r.City == "berlin" })
			},
		},
		{
			name:  "range_float",
			typed: func(d *stark.Dataset[ride]) *stark.Dataset[ride] { return d.FilterRange("fare", 20.0, 60.0) },
			opaque: func(d *stark.Dataset[ride]) *stark.Dataset[ride] {
				return d.FilterValues(func(r ride) bool { return r.Fare >= 20 && r.Fare <= 60 })
			},
		},
		{
			name:  "gt_int",
			typed: func(d *stark.Dataset[ride]) *stark.Dataset[ride] { return d.FilterOp("stops", "gt", 2) },
			opaque: func(d *stark.Dataset[ride]) *stark.Dataset[ride] {
				return d.FilterValues(func(r ride) bool { return r.Stops > 2 })
			},
		},
		{
			name:  "in_string",
			typed: func(d *stark.Dataset[ride]) *stark.Dataset[ride] { return d.FilterIn("city", "lima", "osaka") },
			opaque: func(d *stark.Dataset[ride]) *stark.Dataset[ride] {
				return d.FilterValues(func(r ride) bool { return r.City == "lima" || r.City == "osaka" })
			},
		},
		{
			name:  "eq_bool",
			typed: func(d *stark.Dataset[ride]) *stark.Dataset[ride] { return d.FilterEq("pool", true) },
			opaque: func(d *stark.Dataset[ride]) *stark.Dataset[ride] {
				return d.FilterValues(func(r ride) bool { return r.Pool })
			},
		},
		{
			name: "conjunction",
			typed: func(d *stark.Dataset[ride]) *stark.Dataset[ride] {
				return d.FilterRange("fare", 10.0, 80.0).FilterEq("city", "boston")
			},
			opaque: func(d *stark.Dataset[ride]) *stark.Dataset[ride] {
				return d.FilterValues(func(r ride) bool {
					return r.Fare >= 10 && r.Fare <= 80 && r.City == "boston"
				})
			},
		},
	}
}

// TestAttrFilterDifferential: typed attribute filters must select
// exactly the rows the equivalent opaque closures select, across
// every layout, with and without a spatial predicate in the chain.
func TestAttrFilterDifferential(t *testing.T) {
	ctx := stark.NewContext(4)
	rng := rand.New(rand.NewSource(7))
	tuples := rideTuples(rng, 800)
	schema := rideSchema()
	window := stark.NewSTObject(stark.NewEnvelope(20, 20, 80, 80).ToPolygon())

	layouts := []struct {
		name string
		base *stark.Dataset[ride]
	}{
		{"plain", stark.Parallelize(ctx, tuples, 5)},
		{"grid", stark.Parallelize(ctx, tuples, 5).PartitionBy(stark.Grid(4))},
		{"grid_hilbert", stark.Parallelize(ctx, tuples, 5).PartitionBy(stark.Grid(4).HilbertOrdered())},
		{"bsp", stark.Parallelize(ctx, tuples, 5).PartitionBy(stark.BSP(100))},
		{"live", stark.Parallelize(ctx, tuples, 5).Index(stark.Live(8))},
	}
	totalMatched := 0
	for _, layout := range layouts {
		for _, tc := range attrCases() {
			for _, spatial := range []bool{false, true} {
				name := fmt.Sprintf("%s/%s/spatial=%v", layout.name, tc.name, spatial)
				typed := layout.base.WithSchema(schema)
				opaque := layout.base
				if spatial {
					typed = typed.Intersects(window)
					opaque = opaque.Intersects(window)
				}
				typed = tc.typed(typed)
				opaque = tc.opaque(opaque)
				want := collectRideIDs(t, opaque)
				got := collectRideIDs(t, typed)
				if len(got) != len(want) {
					t.Errorf("%s: typed %d rows, opaque %d rows", name, len(got), len(want))
					continue
				}
				for i := range got {
					if got[i] != want[i] {
						t.Errorf("%s: results diverge at %d: %d != %d", name, i, got[i], want[i])
						break
					}
				}
				totalMatched += len(got)
			}
		}
	}
	if totalMatched == 0 {
		t.Error("attr differential suite never matched a single row — cases are degenerate")
	}
}

// TestAttrFilterNeedsSchema: attribute filters without a registered
// schema, or naming an unknown field, fail with a diagnosable error.
func TestAttrFilterNeedsSchema(t *testing.T) {
	ctx := stark.NewContext(2)
	base := stark.Parallelize(ctx, rideTuples(rand.New(rand.NewSource(1)), 50), 2)
	if _, err := base.FilterEq("fare", 10.0).Collect(); err == nil ||
		!strings.Contains(err.Error(), "schema") {
		t.Errorf("missing schema: err = %v, want schema error", err)
	}
	if _, err := base.WithSchema(rideSchema()).FilterEq("tip", 1.0).Collect(); err == nil ||
		!strings.Contains(err.Error(), "tip") {
		t.Errorf("unknown field: err = %v, want error naming the field", err)
	}
	// A type mismatch that cannot coerce losslessly is refused.
	if _, err := base.WithSchema(rideSchema()).FilterEq("city", 3).Collect(); err == nil {
		t.Error("int literal against string field accepted")
	}
}

// TestAttrFingerprint: mixed spatial+attribute chains fingerprint —
// identically for identical chains, canonically for reordered IN
// sets — while opaque closures still refuse with the position of the
// offending operator.
func TestAttrFingerprint(t *testing.T) {
	ctx := stark.NewContext(2)
	base := stark.Parallelize(ctx, rideTuples(rand.New(rand.NewSource(3)), 200), 4)
	schema := rideSchema()
	window := stark.NewSTObject(stark.NewEnvelope(10, 10, 90, 90).ToPolygon())

	chain := func() *stark.Dataset[ride] {
		return base.WithSchema(schema).Intersects(window).FilterRange("fare", 5.0, 50.0)
	}
	a, err := chain().Fingerprint()
	if err != nil {
		t.Fatalf("mixed spatial+attr chain refused to fingerprint: %v", err)
	}
	b, err := chain().Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("identical mixed chains fingerprint differently: %s vs %s", a, b)
	}
	c, err := base.WithSchema(schema).Intersects(window).FilterRange("fare", 5.0, 60.0).Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Error("different attr bounds share a fingerprint")
	}

	// IN sets canonicalize: value order must not matter.
	in1, err := base.WithSchema(schema).FilterIn("city", "osaka", "lima", "berlin").Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	in2, err := base.WithSchema(schema).FilterIn("city", "berlin", "osaka", "lima", "osaka").Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if in1 != in2 {
		t.Errorf("reordered IN sets fingerprint differently: %s vs %s", in1, in2)
	}

	// Opaque closures still refuse, and the error names the operator
	// and its position in the chain.
	_, err = base.WithSchema(schema).Intersects(window).
		FilterValues(func(r ride) bool { return r.Fare > 1 }).
		FilterEq("city", "lima").Fingerprint()
	if err == nil {
		t.Fatal("opaque closure in an attr chain fingerprinted without error")
	}
	if !strings.Contains(err.Error(), "operator") || !strings.Contains(err.Error(), "of") {
		t.Errorf("opaque refusal does not locate the operator: %v", err)
	}
}

// TestAttrExplainShowsAccessPath: EXPLAIN renders AttrScan/AttrIndex
// nodes with estimated selectivities and, after execution, actual
// tested/passed counters.
func TestAttrExplainShowsAccessPath(t *testing.T) {
	ctx := stark.NewContext(4)
	tuples := rideTuples(rand.New(rand.NewSource(5)), 600)
	schema := rideSchema()
	window := stark.NewSTObject(stark.NewEnvelope(10, 10, 90, 90).ToPolygon())

	chain := stark.Parallelize(ctx, tuples, 4).PartitionBy(stark.Grid(3)).
		WithSchema(schema).Intersects(window).FilterEq("city", "quito")
	out, err := chain.Explain()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"AttrScan[", // access path node for the typed predicate
		"city=",     // canonical predicate text
		"est_sel=",  // estimated selectivity from collected stats
		"actual:",   // executed: actual counters attached
		"tested=",
		"passed=",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("EXPLAIN missing %q:\n%s", want, out)
		}
	}

	// A pure attribute query (no spatial predicate) also explains,
	// with the attribute access path as the filter's strategy.
	pure, err := stark.Parallelize(ctx, tuples, 4).WithSchema(schema).
		FilterRange("fare", 90.0, 100.0).Explain()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(pure, "Attr") {
		t.Errorf("pure attr EXPLAIN has no attribute access path:\n%s", pure)
	}
}

// TestAttrLiveIngestQueryHammer mixes live mutations with concurrent
// typed attribute queries over pinned snapshots; run with -race this
// exercises the generation-tagged postings under churn, and every
// query's result must exactly match a sequential filter of the
// snapshot it pinned.
func TestAttrLiveIngestQueryHammer(t *testing.T) {
	ctx := stark.NewContext(4)
	md := stark.NewMutableDataset[ride](ctx, "rides", liveGridFor(t), 8)
	schema := rideSchema()
	md.SetAttrFields(schema)

	rng := rand.New(rand.NewSource(9))
	seed := rideTuples(rng, 400)
	var batch []stark.LiveRecord[ride]
	for _, tu := range seed {
		batch = append(batch, stark.LiveRecord[ride]{ID: int64(tu.Value.ID), Key: tu.Key, Value: tu.Value})
	}
	if _, err := md.Insert(batch...); err != nil {
		t.Fatal(err)
	}

	const writers, readers, rounds = 2, 4, 25
	var wg sync.WaitGroup
	errs := make(chan error, writers+readers)
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			wrng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < rounds; i++ {
				id := int64(1000 + w*rounds + i)
				r := ride{ID: int(id), Fare: wrng.Float64() * 100, City: rideCities[wrng.Intn(len(rideCities))], Stops: wrng.Int63n(6)}
				key := stark.NewSTObject(stark.NewPoint(wrng.Float64()*100, wrng.Float64()*100))
				if _, err := md.Upsert(stark.LiveRecord[ride]{ID: id, Key: key, Value: r}); err != nil {
					errs <- err
					return
				}
				if i%3 == 2 {
					if _, err := md.Delete(id); err != nil {
						errs <- err
						return
					}
				}
			}
		}()
	}
	for r := 0; r < readers; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				snap := md.Snapshot().WithSchema(schema)
				var typed, opaque *stark.Dataset[ride]
				if (r+i)%2 == 0 {
					typed = snap.FilterRange("fare", 25.0, 75.0)
					opaque = snap.FilterValues(func(v ride) bool { return v.Fare >= 25 && v.Fare <= 75 })
				} else {
					typed = snap.FilterEq("city", "lima")
					opaque = snap.FilterValues(func(v ride) bool { return v.City == "lima" })
				}
				got, err := typed.Collect()
				if err != nil {
					errs <- err
					return
				}
				want, err := opaque.Collect()
				if err != nil {
					errs <- err
					return
				}
				if len(got) != len(want) {
					errs <- fmt.Errorf("reader %d round %d: typed %d rows, opaque %d rows", r, i, len(got), len(want))
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// liveGridFor builds a concrete grid partitioner covering [0,100)².
func liveGridFor(t testing.TB) stark.SpatialPartitioner {
	t.Helper()
	corners := []stark.Tuple[int]{
		stark.NewTuple(stark.NewSTObject(stark.NewPoint(0, 0)), 0),
		stark.NewTuple(stark.NewSTObject(stark.NewPoint(100, 100)), 1),
	}
	ctx := stark.NewContext(1)
	sp, err := stark.Parallelize(ctx, corners).PartitionBy(stark.Grid(3)).Partitioner()
	if err != nil {
		t.Fatal(err)
	}
	if sp == nil {
		t.Fatal("grid partitioner resolved to nil")
	}
	return sp
}
