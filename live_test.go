package stark

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
)

func livePoint(x, y float64) STObject { return NewSTObject(NewPoint(x, y)) }

func liveGrid(t testing.TB, ppd int) SpatialPartitioner {
	t.Helper()
	sp, err := Grid(ppd).build(func() ([]STObject, error) {
		return []STObject{livePoint(0, 0), livePoint(100, 100)}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

func TestMutableDatasetQueryAfterMutations(t *testing.T) {
	ctx := NewContext(4)
	md := NewMutableDataset[int](ctx, "fleet", liveGrid(t, 3), 8)

	rng := rand.New(rand.NewSource(42))
	type rec struct{ x, y float64 }
	recs := make(map[int64]rec)
	var batch []LiveRecord[int]
	for i := int64(0); i < 800; i++ {
		r := rec{rng.Float64() * 100, rng.Float64() * 100}
		recs[i] = r
		batch = append(batch, LiveRecord[int]{ID: i, Key: livePoint(r.x, r.y), Value: int(i)})
	}
	if _, err := md.Insert(batch...); err != nil {
		t.Fatal(err)
	}
	// Mutate: move some, delete some.
	var ups []LiveRecord[int]
	for i := int64(0); i < 100; i++ {
		r := rec{rng.Float64() * 100, rng.Float64() * 100}
		recs[i] = r
		ups = append(ups, LiveRecord[int]{ID: i, Key: livePoint(r.x, r.y), Value: int(i)})
	}
	if _, err := md.Upsert(ups...); err != nil {
		t.Fatal(err)
	}
	var dels []int64
	for i := int64(100); i < 200; i++ {
		delete(recs, i)
		dels = append(dels, i)
	}
	if _, err := md.Delete(dels...); err != nil {
		t.Fatal(err)
	}
	if md.Generation() != 3 {
		t.Fatalf("generation = %d, want 3", md.Generation())
	}
	if int(md.Count()) != len(recs) {
		t.Fatalf("count = %d, want %d", md.Count(), len(recs))
	}

	q := NewSTObject(NewEnvelope(25, 25, 75, 60).ToPolygon())
	got, err := md.Snapshot().Intersects(q).Collect()
	if err != nil {
		t.Fatal(err)
	}
	var gotIDs []int64
	for _, kv := range got {
		gotIDs = append(gotIDs, int64(kv.Value))
	}
	var wantIDs []int64
	for id, r := range recs {
		if r.x >= 25 && r.x <= 75 && r.y >= 25 && r.y <= 60 {
			wantIDs = append(wantIDs, id)
		}
	}
	sort.Slice(gotIDs, func(i, j int) bool { return gotIDs[i] < gotIDs[j] })
	sort.Slice(wantIDs, func(i, j int) bool { return wantIDs[i] < wantIDs[j] })
	if len(gotIDs) != len(wantIDs) {
		t.Fatalf("query matched %d records, want %d", len(gotIDs), len(wantIDs))
	}
	for i := range gotIDs {
		if gotIDs[i] != wantIDs[i] {
			t.Fatalf("result diverges at %d: %d != %d", i, gotIDs[i], wantIDs[i])
		}
	}

	// Differential gate: the mutated dataset must equal one built from
	// scratch over the surviving records.
	var tuples []Tuple[int]
	for id, r := range recs {
		tuples = append(tuples, NewTuple(livePoint(r.x, r.y), int(id)))
	}
	want2, err := Parallelize(ctx, tuples).Intersects(q).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(want2) != len(got) {
		t.Fatalf("mutated snapshot matched %d, rebuilt-from-scratch %d", len(got), len(want2))
	}
}

func TestMutableDatasetExplainShowsGenerationAndLivePath(t *testing.T) {
	ctx := NewContext(2)
	md := NewMutableDataset[int](ctx, "live-ds", liveGrid(t, 2), 8)
	var batch []LiveRecord[int]
	for i := int64(0); i < 200; i++ {
		batch = append(batch, LiveRecord[int]{ID: i, Key: livePoint(float64(i%20)*5, float64(i/20)*10), Value: int(i)})
	}
	if _, err := md.Insert(batch...); err != nil {
		t.Fatal(err)
	}

	q := NewSTObject(NewEnvelope(0, 0, 50, 50).ToPolygon())
	out, err := md.Snapshot().Intersects(q).Explain()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"LiveScan[live-ds gen=1]",
		"concurrent R-link tree",
		"index=probe (existing partition trees)",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("explain output missing %q:\n%s", want, out)
		}
	}

	if _, err := md.Delete(0); err != nil {
		t.Fatal(err)
	}
	out, err = md.Snapshot().Intersects(q).Explain()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "LiveScan[live-ds gen=2]") {
		t.Fatalf("explain after mutation does not show new generation:\n%s", out)
	}
}

func TestMutableDatasetFingerprintTracksGeneration(t *testing.T) {
	ctx := NewContext(2)
	md := NewMutableDataset[int](ctx, "fp", nil, 8)
	if _, err := md.Insert(LiveRecord[int]{ID: 1, Key: livePoint(5, 5), Value: 1}); err != nil {
		t.Fatal(err)
	}
	q := NewSTObject(NewEnvelope(0, 0, 10, 10).ToPolygon())

	fp1, err := md.Snapshot().Intersects(q).Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	fp2, err := md.Snapshot().Intersects(q).Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fp1 != fp2 {
		t.Fatalf("same generation, different fingerprints: %s vs %s (cache could never hit)", fp1, fp2)
	}

	if _, err := md.Insert(LiveRecord[int]{ID: 2, Key: livePoint(6, 6), Value: 2}); err != nil {
		t.Fatal(err)
	}
	fp3, err := md.Snapshot().Intersects(q).Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fp3 == fp1 {
		t.Fatalf("generation bump kept fingerprint %s (stale cache hits possible)", fp1)
	}
}

func TestMutableDatasetSnapshotPinned(t *testing.T) {
	ctx := NewContext(2)
	md := NewMutableDataset[int](ctx, "pin", nil, 8)
	if _, err := md.Insert(
		LiveRecord[int]{ID: 1, Key: livePoint(1, 1), Value: 1},
		LiveRecord[int]{ID: 2, Key: livePoint(2, 2), Value: 2},
	); err != nil {
		t.Fatal(err)
	}
	pinned := md.Snapshot()
	if _, err := md.Delete(1, 2); err != nil {
		t.Fatal(err)
	}
	n, err := pinned.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("pinned snapshot counts %d after delete, want 2", n)
	}
	n, err = md.Snapshot().Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("fresh snapshot counts %d, want 0", n)
	}
}

func TestMutableDatasetEmptyAndChaining(t *testing.T) {
	ctx := NewContext(2)
	md := NewMutableDataset[int](ctx, "empty", liveGrid(t, 2), 8)
	q := NewSTObject(NewEnvelope(0, 0, 100, 100).ToPolygon())
	n, err := md.Snapshot().Intersects(q).Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("empty dataset matched %d records", n)
	}

	var batch []LiveRecord[int]
	for i := int64(0); i < 50; i++ {
		batch = append(batch, LiveRecord[int]{ID: i, Key: livePoint(float64(i), float64(i)), Value: int(i % 5)})
	}
	if _, err := md.Insert(batch...); err != nil {
		t.Fatal(err)
	}
	// Snapshot composes with the rest of the DSL (payload filter after
	// the spatial filter drops the live probe path safely).
	got, err := md.Snapshot().Intersects(q).FilterValues(func(v int) bool { return v == 0 }).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("chained query matched %d, want 10", len(got))
	}

	// Error surfaces, dataset unchanged.
	if _, err := md.Insert(LiveRecord[int]{ID: 3, Key: livePoint(1, 1), Value: 9}); err == nil {
		t.Fatal("insert of live ID did not error")
	}
	if md.Generation() != 1 || md.Count() != 50 {
		t.Fatalf("rejected batch mutated state: gen=%d count=%d", md.Generation(), md.Count())
	}
}
