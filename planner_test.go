package stark_test

// Acceptance tests for the cost-based planner: a filter over
// clustered data with no caller-specified partitioner or index must
// scan fewer elements planned than naive (stats-based partition
// pruning), EXPLAIN must surface the decisions, and results must be
// identical either way.

import (
	"strings"
	"testing"

	"stark"
)

// clusteredTuples builds n records in 8 tight spatial clusters laid
// out in input order, so contiguous-range partitions are spatially
// coherent — the layout ingest order gives real-world event data.
func clusteredTuples(n int) []stark.Tuple[int] {
	tuples := make([]stark.Tuple[int], 0, n)
	perCluster := n / 8
	for c := 0; c < 8; c++ {
		cx := float64(c%4)*250 + 50
		cy := float64(c/4)*500 + 100
		for i := 0; i < perCluster; i++ {
			x := cx + float64(i%20)
			y := cy + float64(i/20%20)
			tuples = append(tuples, stark.NewTuple(
				stark.NewSTObject(stark.Point{X: x, Y: y}), c*perCluster+i))
		}
	}
	return tuples
}

func TestPlannerPrunesWithoutPartitioner(t *testing.T) {
	tuples := clusteredTuples(4000)
	// A window inside cluster 0 only.
	q := stark.NewSTObject(stark.NewEnvelope(45, 95, 75, 125).ToPolygon())

	naiveCtx := stark.NewContext(4)
	naive, err := stark.Parallelize(naiveCtx, tuples, 8).
		Optimize(false).
		Intersects(q).
		Collect()
	if err != nil {
		t.Fatal(err)
	}
	naiveScanned := naiveCtx.Metrics().Snapshot().ElementsScanned
	if naiveScanned != 4000 {
		t.Fatalf("naive run scanned %d elements, want the full 4000", naiveScanned)
	}

	planCtx := stark.NewContext(4)
	planned, err := stark.Parallelize(planCtx, tuples, 8).
		Intersects(q).
		Collect()
	if err != nil {
		t.Fatal(err)
	}
	snap := planCtx.Metrics().Snapshot()
	if snap.ElementsScanned >= naiveScanned {
		t.Errorf("planned run scanned %d elements, naive %d — no pruning win",
			snap.ElementsScanned, naiveScanned)
	}
	if snap.TasksSkipped == 0 {
		t.Error("planned run skipped no partitions")
	}
	if len(planned) == 0 || len(planned) != len(naive) {
		t.Fatalf("planned returned %d records, naive %d", len(planned), len(naive))
	}
}

func TestExplainShowsDecisions(t *testing.T) {
	tuples := clusteredTuples(2000)
	q := stark.NewSTObject(stark.NewEnvelope(45, 95, 75, 125).ToPolygon())

	ctx := stark.NewContext(4)
	out, err := stark.Parallelize(ctx, tuples, 8).Intersects(q).Explain()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Filter[intersects",
		"index=",     // the chosen index mode
		"pruned ",    // pruned-partition count
		"est_rows=",  // estimated cardinality
		"act_rows=",  // actual cardinality
		"scan_cost=", // the cost comparison behind the choice
		"Scan[parallelize]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("EXPLAIN missing %q in:\n%s", want, out)
		}
	}

	// The naive variant announces the optimizer is off.
	off, err := stark.Parallelize(ctx, tuples, 8).Optimize(false).Intersects(q).Explain()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(off, "optimizer=off") {
		t.Errorf("Optimize(false) EXPLAIN missing marker:\n%s", off)
	}
}

func TestPlannerReordersPredicates(t *testing.T) {
	tuples := clusteredTuples(2000)
	wide := stark.NewSTObject(stark.NewEnvelope(-10, -10, 1100, 1100).ToPolygon())
	narrow := stark.NewSTObject(stark.NewEnvelope(45, 95, 75, 125).ToPolygon())

	ctx := stark.NewContext(4)
	chain := stark.Parallelize(ctx, tuples, 8).
		Intersects(wide). // unselective, listed first
		Intersects(narrow)
	out, err := chain.Explain()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "pred_order=[1") {
		t.Errorf("selective predicate not moved first:\n%s", out)
	}
	got, err := chain.Collect()
	if err != nil {
		t.Fatal(err)
	}
	want, err := stark.Parallelize(ctx, tuples, 8).
		Optimize(false).Intersects(wide).Intersects(narrow).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) || len(got) == 0 {
		t.Fatalf("reordered result %d records, naive %d", len(got), len(want))
	}
}

func TestPlannerMatchesNaiveAcrossModes(t *testing.T) {
	tuples := clusteredTuples(2000)
	q := stark.NewSTObject(stark.NewEnvelope(40, 90, 320, 640).ToPolygon())
	ctx := stark.NewContext(4)

	base := func() *stark.Dataset[int] { return stark.Parallelize(ctx, tuples, 8) }
	want, err := base().Optimize(false).Intersects(q).Count()
	if err != nil {
		t.Fatal(err)
	}
	if want == 0 {
		t.Fatal("query selects nothing; test is vacuous")
	}
	for name, d := range map[string]*stark.Dataset[int]{
		"planned-scan":        base().Intersects(q),
		"planned-partitioned": base().PartitionBy(stark.Grid(4)).Intersects(q),
		"planned-live":        base().Index(stark.Live(8)).Intersects(q),
		"planned-persistent":  base().Index(stark.Persistent(8)).Intersects(q),
		"planned-distance":    base().WithinDistance(stark.NewSTObject(stark.Point{X: 55, Y: 105}), 20, nil),
	} {
		n, err := d.Count()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if name == "planned-distance" {
			naive, err := base().Optimize(false).
				WithinDistance(stark.NewSTObject(stark.Point{X: 55, Y: 105}), 20, nil).Count()
			if err != nil {
				t.Fatal(err)
			}
			if n != naive {
				t.Errorf("%s: planned %d != naive %d", name, n, naive)
			}
			continue
		}
		if n != want {
			t.Errorf("%s: planned count %d != naive %d", name, n, want)
		}
	}
}

func TestDatasetStats(t *testing.T) {
	tuples := clusteredTuples(2000)
	ctx := stark.NewContext(4)
	sum, err := stark.Parallelize(ctx, tuples, 8).Stats()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Count != 2000 || len(sum.Parts) != 8 {
		t.Fatalf("stats = %s", sum)
	}
	if sum.Grid == nil {
		t.Fatal("no histogram collected")
	}
	// Filters fold before stats: the summary describes the result.
	q := stark.NewSTObject(stark.NewEnvelope(45, 95, 75, 125).ToPolygon())
	filtered, err := stark.Parallelize(ctx, tuples, 8).Intersects(q).Stats()
	if err != nil {
		t.Fatal(err)
	}
	if filtered.Count == 0 || filtered.Count >= sum.Count {
		t.Errorf("filtered stats count = %d (base %d)", filtered.Count, sum.Count)
	}
}

// TestJoinExplainShowsStrategy: the acceptance shape of the join
// engine — with one side far under the broadcast budget and both
// sides overlapping, EXPLAIN must render Join[broadcast] with the
// cost comparison and the actual task counters, and the report must
// prove fewer tasks than the L×R pair enumeration.
func TestJoinExplainShowsStrategy(t *testing.T) {
	ctx := stark.NewContext(4)
	left := stark.Parallelize(ctx, clusteredTuples(4000), 8)
	right := stark.Parallelize(ctx, clusteredTuples(160), 4)
	var rep stark.JoinReport
	joined := stark.Join(left, right, stark.JoinOptions{
		IndexOrder: -1,
		Report:     &rep,
	})
	text, err := joined.Explain()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Join[broadcast]",
		"costs: pairs=",
		"actual: strategy=broadcast",
		"build_side=right",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("EXPLAIN missing %q:\n%s", want, text)
		}
	}
	if rep.Strategy != stark.JoinBroadcast {
		t.Fatalf("strategy = %v, want broadcast", rep.Strategy)
	}
	if rep.Tasks >= rep.TotalPairs {
		t.Errorf("tasks = %d, want fewer than the %d-pair enumeration", rep.Tasks, rep.TotalPairs)
	}

	// Forcing each strategy returns identical results.
	want, err := stark.Join(left, right, stark.JoinOptions{IndexOrder: -1, Strategy: stark.JoinPairs}).Count()
	if err != nil {
		t.Fatal(err)
	}
	if want == 0 {
		t.Fatal("degenerate test: no join results")
	}
	for _, s := range []stark.JoinStrategy{stark.JoinBroadcast, stark.JoinCoPartition, stark.JoinAuto} {
		got, err := stark.Join(left, right, stark.JoinOptions{IndexOrder: -1, Strategy: s}).Count()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("strategy %v: count = %d, want %d", s, got, want)
		}
	}
}
