package stark_test

import (
	"context"
	"testing"

	"stark"
)

func fpTestBase(t *testing.T, ctx *stark.Context) *stark.Dataset[int] {
	t.Helper()
	var tuples []stark.Tuple[int]
	for i := 0; i < 100; i++ {
		tuples = append(tuples, stark.NewTuple(pointAt(float64(i%10), float64(i/10)), i))
	}
	return stark.Parallelize(ctx, tuples, 4)
}

func pointAt(x, y float64) stark.STObject {
	return stark.NewSTObject(stark.NewPoint(x, y))
}

func mustFingerprint(t *testing.T, d *stark.Dataset[int]) string {
	t.Helper()
	fp, err := d.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	return fp
}

func TestFingerprintStableForRepeatedQuery(t *testing.T) {
	ctx := stark.NewContext(2)
	base := fpTestBase(t, ctx)
	g, err := stark.ParseWKT("POLYGON ((0 0, 5 0, 5 5, 0 5, 0 0))")
	if err != nil {
		t.Fatal(err)
	}
	q := stark.NewSTObject(g)
	a := mustFingerprint(t, base.Intersects(q))
	b := mustFingerprint(t, base.Intersects(q))
	if a != b {
		t.Errorf("repeated identical chains fingerprint differently: %s vs %s", a, b)
	}
	if c := mustFingerprint(t, base.Contains(q)); c == a {
		t.Error("different predicates share a fingerprint")
	}
	if d := mustFingerprint(t, base.Intersects(q).Optimize(false)); d == a {
		t.Error("optimizer setting not part of the fingerprint")
	}
}

func TestFingerprintChangesAcrossGenerations(t *testing.T) {
	ctx := stark.NewContext(2)
	q := stark.NewSTObject(stark.NewPoint(3, 3))
	a := mustFingerprint(t, fpTestBase(t, ctx).Intersects(q))
	// The same logical data, re-built: a new generation, so every old
	// fingerprint is invalid by construction.
	b := mustFingerprint(t, fpTestBase(t, ctx).Intersects(q))
	if a == b {
		t.Error("re-built base dataset did not change the fingerprint")
	}
}

func TestFingerprintRejectsOpaqueChains(t *testing.T) {
	ctx := stark.NewContext(2)
	base := fpTestBase(t, ctx)
	q := stark.NewSTObject(stark.NewPoint(3, 3))
	if _, err := base.Where(q, stark.Intersects, 0).Fingerprint(); err == nil {
		t.Error("custom Where predicate fingerprinted without error")
	}
	if _, err := base.FilterValues(func(v int) bool { return v > 10 }).Fingerprint(); err == nil {
		t.Error("FilterValues chain fingerprinted without error")
	}
	// A custom predicate already folded into the lineage (here by
	// Cache) is just as opaque as a pending one.
	if _, err := base.Where(q, stark.Intersects, 0).Cache().Fingerprint(); err == nil {
		t.Error("flushed custom Where predicate fingerprinted without error")
	}
	// A custom distance function is an opaque closure; the built-in
	// planar distance is not.
	manhattan := func(a, b stark.Point) float64 {
		dx, dy := a.X-b.X, a.Y-b.Y
		if dx < 0 {
			dx = -dx
		}
		if dy < 0 {
			dy = -dy
		}
		return dx + dy
	}
	if _, err := base.WithinDistance(q, 10, manhattan).Fingerprint(); err == nil {
		t.Error("custom DistanceFunc fingerprinted without error")
	}
	if _, err := base.WithinDistance(q, 10, nil).Fingerprint(); err != nil {
		t.Errorf("built-in distance refused to fingerprint: %v", err)
	}
}

func TestFingerprintDistinguishesSameEnvelopeGeometries(t *testing.T) {
	ctx := stark.NewContext(2)
	base := fpTestBase(t, ctx)
	// A rectangle and a triangle sharing the same bounding envelope
	// are different queries and must not share a cache key.
	rect, err := stark.ParseWKT("POLYGON ((0 0, 5 0, 5 5, 0 5, 0 0))")
	if err != nil {
		t.Fatal(err)
	}
	tri, err := stark.ParseWKT("POLYGON ((0 0, 5 0, 0 5, 0 0))")
	if err != nil {
		t.Fatal(err)
	}
	a := mustFingerprint(t, base.Intersects(stark.NewSTObject(rect)))
	b := mustFingerprint(t, base.Intersects(stark.NewSTObject(tri)))
	if a == b {
		t.Errorf("same-envelope, different-shape queries share fingerprint %s", a)
	}
}

func TestStreamParallelContextCancels(t *testing.T) {
	ctx := stark.NewContext(2)
	base := fpTestBase(t, ctx)
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := base.StreamParallelContext(cctx, func(stark.Tuple[int]) bool { return true })
	if err != context.Canceled {
		t.Errorf("cancelled stream returned %v, want context.Canceled", err)
	}
	// A background context streams everything.
	n := 0
	if err := base.StreamParallelContext(context.Background(), func(stark.Tuple[int]) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Errorf("streamed %d rows, want 100", n)
	}
}
