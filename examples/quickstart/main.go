// Quickstart: the paper's running example in Go, written against the
// public fluent DSL.
//
// Raw input with schema (id: Int, category: String, time: Long,
// wkt: String) is mapped to (STObject, payload) pairs, lifted into a
// stark.Dataset, and queried with spatio-temporal predicates —
// including live indexing, exactly like the Scala snippet in
// Section 2.3 of the paper:
//
//	val events   = rawInput.map { case (id, ctgry, time, wkt) => (STObject(wkt, time), (id, ctgry)) }
//	val qry      = STObject("POLYGON((...))", begin, end)
//	val contain  = events.containedBy(qry)
//	val intersect = events.liveIndex(order = 5).intersect(qry)
package main

import (
	"fmt"
	"log"

	"stark"
	"stark/internal/workload"
)

func main() {
	ctx := stark.NewContext(0)

	// Raw input: (id, category, time, wkt) rows.
	raw := workload.Events(workload.Config{
		N: 10_000, Seed: 7, Dist: workload.Skewed,
		Width: 1000, Height: 1000, TimeRange: 1_000_000,
	})

	// Pre-processing map step: build the STObject key from the WKT
	// string and the time of occurrence, then lift into the DSL.
	tuples, dropped := workload.EventTuples(raw)
	if dropped > 0 {
		log.Fatalf("%d rows had invalid WKT", dropped)
	}
	events := stark.Parallelize(ctx, tuples)

	// Query object: a spatial polygon plus a temporal window.
	qry, err := stark.FromWKTWithInterval(
		"POLYGON ((200 200, 600 200, 600 600, 200 600, 200 200))",
		0, 500_000)
	if err != nil {
		log.Fatal(err)
	}

	// events.containedBy(qry) — errors surface at Collect.
	contain, err := events.ContainedBy(qry).Collect()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("containedBy: %d of %d events in the window\n", len(contain), len(tuples))

	// events.liveIndex(order = 5).intersect(qry), one chain.
	intersect, err := events.Index(stark.Live(5)).Intersects(qry).Collect()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("intersects (live index, order 5): %d events\n", len(intersect))

	// The two predicates agree on this workload (points have no
	// boundary-contact subtleties).
	if len(intersect) != len(contain) {
		fmt.Println("note: intersects and containedBy differ on boundary contact")
	}

	// Show a few results.
	for i, kv := range contain {
		if i == 5 {
			break
		}
		fmt.Printf("  event %d (%s) at %s\n", kv.Value.ID, kv.Value.Category, kv.Key)
	}
}
