// Hotspots: density-based clustering of event data with DBSCAN and a
// kNN drill-down — the data-mining workload the paper motivates
// ("find groups of similar events").
//
// The pipeline clusters skewed event locations, reports the largest
// hotspots with their centroids, and runs a k nearest neighbour query
// around the biggest hotspot using the partitioned, indexed path.
package main

import (
	"fmt"
	"log"

	"stark/internal/cluster"
	"stark/internal/core"
	"stark/internal/engine"
	"stark/internal/geom"
	"stark/internal/partition"
	"stark/internal/stobject"
	"stark/internal/workload"
)

func main() {
	ctx := engine.NewContext(0)

	tuples := workload.Tuples(workload.Config{
		N: 30_000, Seed: 13, Dist: workload.Skewed, Clusters: 8, Spread: 10,
		Width: 1000, Height: 1000, TimeRange: 1_000_000,
	})
	events := core.Wrap(engine.Parallelize(ctx, tuples, ctx.Parallelism()))

	// DBSCAN over the event locations. The operator derives a BSP
	// partitioning, replicates the ε halo, clusters each partition in
	// parallel and merges across borders.
	recs, n, err := events.Cluster(core.ClusterOptions{Eps: 8, MinPts: 10})
	if err != nil {
		log.Fatal(err)
	}
	labels := make([]int, len(recs))
	points := make([]geom.Point, len(recs))
	for i, r := range recs {
		labels[i] = r.Cluster
		points[i] = r.Key.Centroid()
	}
	res := cluster.Result{Labels: labels, NumClusters: n}
	fmt.Printf("DBSCAN found %d hotspots (%d noise points of %d events)\n",
		n, res.NoiseCount(), len(recs))

	centroids := cluster.Centroids(points, res)
	sizes := res.ClusterSizes()
	fmt.Println("largest hotspots:")
	var biggest geom.Point
	for i, id := range cluster.SortBySize(res) {
		if i == 0 {
			biggest = centroids[id]
		}
		if i == 5 {
			break
		}
		fmt.Printf("  hotspot %2d: %6d events around (%.1f, %.1f)\n",
			id, sizes[id], centroids[id].X, centroids[id].Y)
	}

	// Drill down: the 10 events nearest to the biggest hotspot's
	// centroid, via grid partitioning + persistent indexing.
	objs := make([]stobject.STObject, len(tuples))
	for i, kv := range tuples {
		objs[i] = kv.Key
	}
	grid, err := partition.NewGrid(6, objs)
	if err != nil {
		log.Fatal(err)
	}
	parted, err := events.PartitionBy(grid)
	if err != nil {
		log.Fatal(err)
	}
	idx, err := parted.Index(10, nil)
	if err != nil {
		log.Fatal(err)
	}
	q := stobject.New(biggest)
	nbrs, err := idx.KNN(q, 10, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("10 events nearest to the main hotspot (%.1f, %.1f):\n", biggest.X, biggest.Y)
	for _, nb := range nbrs {
		fmt.Printf("  event %6d at distance %6.2f\n", nb.Value, nb.Distance)
	}

	// Execution statistics: the pruning effect of the partitioner.
	snap := ctx.Metrics().Snapshot()
	fmt.Printf("engine: %d tasks run, %d pruned, %d index probes\n",
		snap.TasksLaunched, snap.TasksSkipped, snap.IndexProbes)
}
