// Hotspots: density-based clustering of event data with DBSCAN and a
// kNN drill-down — the data-mining workload the paper motivates
// ("find groups of similar events") — written against the public
// fluent DSL.
//
// The pipeline clusters skewed event locations, reports the largest
// hotspots with their centroids, and runs a k nearest neighbour query
// around the biggest hotspot using the partitioned, persistently
// indexed path.
package main

import (
	"fmt"
	"log"

	"stark"
	"stark/internal/workload"
)

func main() {
	ctx := stark.NewContext(0)

	tuples := workload.Tuples(workload.Config{
		N: 30_000, Seed: 13, Dist: workload.Skewed, Clusters: 8, Spread: 10,
		Width: 1000, Height: 1000, TimeRange: 1_000_000,
	})
	events := stark.Parallelize(ctx, tuples)

	// DBSCAN over the event locations. The operator derives a BSP
	// partitioning, replicates the ε halo, clusters each partition in
	// parallel and merges across borders.
	recs, n, err := events.Cluster(stark.ClusterOptions{Eps: 8, MinPts: 10})
	if err != nil {
		log.Fatal(err)
	}
	labels := make([]int, len(recs))
	points := make([]stark.Point, len(recs))
	for i, r := range recs {
		labels[i] = r.Cluster
		points[i] = r.Key.Centroid()
	}
	res := stark.ClusterResult{Labels: labels, NumClusters: n}
	fmt.Printf("DBSCAN found %d hotspots (%d noise points of %d events)\n",
		n, res.NoiseCount(), len(recs))

	centroids := stark.ClusterCentroids(points, res)
	sizes := res.ClusterSizes()
	fmt.Println("largest hotspots:")
	var biggest stark.Point
	for i, id := range stark.SortClustersBySize(res) {
		if i == 0 {
			biggest = centroids[id]
		}
		if i == 5 {
			break
		}
		fmt.Printf("  hotspot %2d: %6d events around (%.1f, %.1f)\n",
			id, sizes[id], centroids[id].X, centroids[id].Y)
	}

	// Drill down: the 10 events nearest to the biggest hotspot's
	// centroid, via grid partitioning + persistent indexing — one
	// fluent chain from raw tuples to neighbours.
	q := stark.NewSTObject(biggest)
	nbrs, err := events.
		PartitionBy(stark.Grid(6)).
		Index(stark.Persistent(10)).
		KNN(q, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("10 events nearest to the main hotspot (%.1f, %.1f):\n", biggest.X, biggest.Y)
	for _, nb := range nbrs {
		fmt.Printf("  event %6d at distance %6.2f\n", nb.Value, nb.Distance)
	}

	// Execution statistics: the pruning effect of the partitioner.
	snap := ctx.Metrics().Snapshot()
	fmt.Printf("engine: %d tasks run, %d pruned, %d index probes\n",
		snap.TasksLaunched, snap.TasksSkipped, snap.IndexProbes)
}
