// Trajectories: moving-object analysis — the "location aware devices
// that periodically report their position" scenario from the paper's
// introduction — written against the public fluent DSL.
//
// The pipeline generates correlated random walks, then answers three
// questions with STARK operators:
//  1. which objects passed through a restricted zone during a time
//     window (spatio-temporal filter),
//  2. which pairs of objects came close to each other at the same
//     time (spatio-temporal withinDistance self join), and
//  3. compressed trajectory polylines for rendering (Douglas–Peucker
//     simplification).
package main

import (
	"fmt"
	"log"
	"sort"

	"stark"
	"stark/internal/workload"
)

func main() {
	ctx := stark.NewContext(0)

	reports := workload.Trajectories(workload.TrajectoryConfig{
		Objects: 200, Ticks: 120, Seed: 31,
	})
	ds := stark.Parallelize(ctx, reports).Cache()
	fmt.Printf("generated %d position reports from 200 objects\n", len(reports))

	// 1. Restricted zone during a window: reports inside the zone
	// while it was active.
	zone := stark.NewSTObjectWithInterval(
		stark.NewEnvelope(400, 400, 600, 600).ToPolygon(),
		stark.MustInterval(30*60, 80*60)) // ticks 30..80
	inZone, err := ds.ContainedBy(zone).Collect()
	if err != nil {
		log.Fatal(err)
	}
	violators := make(map[int]int)
	for _, kv := range inZone {
		violators[kv.Value.ObjectID]++
	}
	fmt.Printf("restricted zone: %d reports from %d distinct objects during the window\n",
		len(inZone), len(violators))

	// 2. Co-location: pairs of distinct objects within distance 5 at
	// the same report instant. The combined semantics make the
	// temporal intersection part of the predicate.
	pairs, err := stark.SelfJoin(ds, stark.JoinOptions{
		Predicate:      stark.WithinDistancePredicate(5, nil),
		IndexOrder:     -1,
		ProbeExpansion: 5,
	}).Collect()
	if err != nil {
		log.Fatal(err)
	}
	contacts := make(map[[2]int]int)
	for _, kv := range pairs {
		a, b := kv.Value.Left.ObjectID, kv.Value.Right.ObjectID
		if a >= b {
			continue // keep unordered distinct-object pairs
		}
		contacts[[2]int{a, b}]++
	}
	fmt.Printf("co-location: %d object pairs met within distance 5\n", len(contacts))
	type contact struct {
		pair  [2]int
		ticks int
	}
	top := make([]contact, 0, len(contacts))
	for p, n := range contacts {
		top = append(top, contact{p, n})
	}
	sort.Slice(top, func(i, j int) bool { return top[i].ticks > top[j].ticks })
	for i, c := range top {
		if i == 5 {
			break
		}
		fmt.Printf("  objects %3d and %3d: %d co-located ticks\n", c.pair[0], c.pair[1], c.ticks)
	}

	// 3. Trajectory compression for rendering.
	lines := workload.TrajectoryLines(reports)
	before, after := 0, 0
	for _, ls := range lines {
		s := stark.Simplify(ls, 8)
		before += ls.NumPoints()
		after += s.NumPoints()
	}
	fmt.Printf("simplification: %d vertices -> %d (%.0f%% saved)\n",
		before, after, 100*(1-float64(after)/float64(before)))
}
