// Event analysis: a spatio-temporal join + aggregation pipeline, the
// kind of workload the paper's demonstration section runs over
// Wikipedia event data.
//
// The pipeline:
//  1. load raw events from the simulated HDFS (CSV, paper schema),
//  2. spatially partition them with the cost-based BSP partitioner,
//  3. join them with a set of "regions of interest" (intersects),
//  4. aggregate matches per region and per category,
//  5. store a report back to the DFS.
package main

import (
	"fmt"
	"log"
	"sort"

	"stark/internal/core"
	"stark/internal/dfs"
	"stark/internal/engine"
	"stark/internal/partition"
	"stark/internal/stobject"
	"stark/internal/workload"
)

func main() {
	ctx := engine.NewContext(0)
	fs := dfs.New(0, 0)

	// Stage the raw data in the DFS, as the paper's workflow does.
	raw := workload.Events(workload.Config{
		N: 50_000, Seed: 21, Dist: workload.Skewed,
		Width: 1000, Height: 1000, TimeRange: 1_000_000,
	})
	if err := workload.WriteEventsCSV(fs, "/data/events.csv", raw); err != nil {
		log.Fatal(err)
	}

	// Load and key by STObject.
	loaded, err := workload.ReadEventsCSV(fs, "/data/events.csv")
	if err != nil {
		log.Fatal(err)
	}
	tuples, _ := workload.EventTuples(loaded)
	events := core.Wrap(engine.Parallelize(ctx, tuples, ctx.Parallelism()))

	// Spatially partition with BSP (the skew-robust partitioner).
	objs := make([]stobject.STObject, len(tuples))
	for i, kv := range tuples {
		objs[i] = kv.Key
	}
	bsp, err := partition.NewBSP(partition.BSPConfig{MaxCost: 2000}, objs)
	if err != nil {
		log.Fatal(err)
	}
	parted, err := events.PartitionBy(bsp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("partitioned %d events into %d BSP regions\n", len(tuples), bsp.NumPartitions())

	// Regions of interest (e.g. administrative areas).
	regions := workload.Regions(workload.Config{Seed: 5, Width: 1000, Height: 1000}, 40)
	regionTuples := make([]core.Tuple[int], len(regions))
	for i, r := range regions {
		regionTuples[i] = engine.NewPair(r, i)
	}
	regionDS := core.Wrap(engine.Parallelize(ctx, regionTuples, 4))

	// Spatio-temporal join: events inside each region. The events
	// carry time and the regions do not, so the events are re-keyed
	// spatially for the join (the paper's semantics reject mixed
	// timed/untimed pairs).
	spatialEvents := core.Wrap(engine.Map(parted.Dataset(),
		func(kv core.Tuple[workload.Event]) core.Tuple[workload.Event] {
			return engine.NewPair(stobject.New(kv.Key.Geo()), kv.Value)
		}))
	joined, err := core.Join(regionDS, spatialEvents, core.JoinOptions{
		Predicate:  stobject.Intersects,
		IndexOrder: -1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("join produced %d (region, event) matches\n", len(joined))

	// Aggregate: events per region, and category histogram over all
	// matches.
	perRegion := make(map[int]int)
	perCategory := make(map[string]int)
	for _, jp := range joined {
		perRegion[jp.LeftVal]++
		perCategory[jp.RightVal.Category]++
	}

	// Report the top regions.
	type rc struct{ region, count int }
	tops := make([]rc, 0, len(perRegion))
	for r, c := range perRegion {
		tops = append(tops, rc{r, c})
	}
	sort.Slice(tops, func(i, j int) bool { return tops[i].count > tops[j].count })
	fmt.Println("busiest regions:")
	for i, t := range tops {
		if i == 5 {
			break
		}
		fmt.Printf("  region %2d: %5d events (%s)\n", t.region, t.count, regions[t.region].Geo().Envelope())
	}

	// Store the per-category report.
	cats := make([]string, 0, len(perCategory))
	for c := range perCategory {
		cats = append(cats, c)
	}
	sort.Strings(cats)
	lines := []string{"category,matches"}
	fmt.Println("matches per category:")
	for _, c := range cats {
		fmt.Printf("  %-10s %6d\n", c, perCategory[c])
		lines = append(lines, fmt.Sprintf("%s,%d", c, perCategory[c]))
	}
	if err := fs.WriteLines("/out/category_report.csv", lines); err != nil {
		log.Fatal(err)
	}
	size, _ := fs.Size("/out/category_report.csv")
	fmt.Printf("stored /out/category_report.csv (%d bytes)\n", size)
}
