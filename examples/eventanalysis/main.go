// Event analysis: a spatio-temporal join + aggregation pipeline, the
// kind of workload the paper's demonstration section runs over
// Wikipedia event data — written against the public fluent DSL.
//
// The pipeline:
//  1. load raw events from the simulated HDFS (CSV, paper schema),
//  2. spatially partition them with the cost-based BSP partitioner,
//  3. join them with a set of "regions of interest" (intersects),
//  4. aggregate matches per region and per category,
//  5. store a report back to the DFS.
package main

import (
	"fmt"
	"log"
	"sort"

	"stark"
	"stark/internal/workload"
)

func main() {
	ctx := stark.NewContext(0)
	fs := stark.NewDFS(0, 0)

	// Stage the raw data in the DFS, as the paper's workflow does.
	raw := workload.Events(workload.Config{
		N: 50_000, Seed: 21, Dist: workload.Skewed,
		Width: 1000, Height: 1000, TimeRange: 1_000_000,
	})
	if err := workload.WriteEventsCSV(fs, "/data/events.csv", raw); err != nil {
		log.Fatal(err)
	}

	// Load, key by STObject, and spatially partition with BSP (the
	// skew-robust partitioner) in one chain.
	loaded, err := workload.ReadEventsCSV(fs, "/data/events.csv")
	if err != nil {
		log.Fatal(err)
	}
	tuples, _ := workload.EventTuples(loaded)
	parted := stark.Parallelize(ctx, tuples).PartitionBy(stark.BSP(2000))
	nparts, err := parted.NumPartitions()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("partitioned %d events into %d BSP regions\n", len(tuples), nparts)

	// Regions of interest (e.g. administrative areas).
	regions := workload.Regions(workload.Config{Seed: 5, Width: 1000, Height: 1000}, 40)
	regionTuples := make([]stark.Tuple[int], len(regions))
	for i, r := range regions {
		regionTuples[i] = stark.NewTuple(r, i)
	}
	regionDS := stark.Parallelize(ctx, regionTuples, 4)

	// Spatio-temporal join: events inside each region. The events
	// carry time and the regions do not, so the events are re-keyed
	// spatially for the join (the paper's semantics reject mixed
	// timed/untimed pairs).
	spatialEvents := stark.ReKey(parted, func(key stark.STObject, _ workload.Event) stark.STObject {
		return stark.NewSTObject(key.Geo())
	})
	joined, err := stark.Join(regionDS, spatialEvents, stark.JoinOptions{
		Predicate:  stark.Intersects,
		IndexOrder: -1,
	}).Collect()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("join produced %d (region, event) matches\n", len(joined))

	// Aggregate: events per region, and category histogram over all
	// matches.
	perRegion := make(map[int]int)
	perCategory := make(map[string]int)
	for _, kv := range joined {
		perRegion[kv.Value.Left]++
		perCategory[kv.Value.Right.Category]++
	}

	// Report the top regions.
	type rc struct{ region, count int }
	tops := make([]rc, 0, len(perRegion))
	for r, c := range perRegion {
		tops = append(tops, rc{r, c})
	}
	sort.Slice(tops, func(i, j int) bool { return tops[i].count > tops[j].count })
	fmt.Println("busiest regions:")
	for i, t := range tops {
		if i == 5 {
			break
		}
		fmt.Printf("  region %2d: %5d events (%s)\n", t.region, t.count, regions[t.region].Geo().Envelope())
	}

	// Store the per-category report.
	cats := make([]string, 0, len(perCategory))
	for c := range perCategory {
		cats = append(cats, c)
	}
	sort.Strings(cats)
	lines := []string{"category,matches"}
	fmt.Println("matches per category:")
	for _, c := range cats {
		fmt.Printf("  %-10s %6d\n", c, perCategory[c])
		lines = append(lines, fmt.Sprintf("%s,%d", c, perCategory[c]))
	}
	if err := fs.WriteLines("/out/category_report.csv", lines); err != nil {
		log.Fatal(err)
	}
	size, _ := fs.Size("/out/category_report.csv")
	fmt.Printf("stored /out/category_report.csv (%d bytes)\n", size)
}
