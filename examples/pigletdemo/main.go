// Piglet demo: the scripting path of the demonstration. A complete
// spatio-temporal pipeline — load, partition, filter with a
// spatio-temporal window, cluster, aggregate, kNN, store — expressed
// in STARK's Pig Latin derivative and executed on the engine.
package main

import (
	"fmt"
	"log"

	"stark"
	"stark/internal/piglet"
	"stark/internal/workload"
)

const script = `
-- Load the raw event data (paper schema: id, category, time, wkt).
events  = LOAD 'data/events.csv';

-- Spatially partition with the cost-based binary space partitioner.
parted  = PARTITION events BY BSP 1000;

-- Spatio-temporal window: a region during the first quarter of the
-- time range.
window  = FILTER parted BY CONTAINEDBY('POLYGON ((100 100, 700 100, 700 700, 100 700, 100 100))', 0, 250000);

-- Density-based clustering of the windowed events.
spots   = CLUSTER window EPS 12 MINPTS 8;
sizes   = GROUPCOUNT spots BY cluster;

-- Category histogram over the window.
cats    = GROUPCOUNT window BY category;

-- The five events nearest to the map centre.
near    = KNN events QUERY 'POINT (500 500)' K 5;

DUMP sizes;
DUMP cats;
DUMP near;
STORE window INTO 'out/window.csv';
`

func main() {
	fs := stark.NewDFS(0, 0)
	events := workload.Events(workload.Config{
		N: 20_000, Seed: 99, Dist: workload.Skewed,
		Width: 1000, Height: 1000, TimeRange: 1_000_000,
	})
	if err := workload.WriteEventsCSV(fs, "data/events.csv", events); err != nil {
		log.Fatal(err)
	}

	out, err := piglet.Run(script, &piglet.Env{Ctx: stark.NewContext(0), FS: fs})
	if err != nil {
		log.Fatal(err)
	}
	for _, line := range out.Dumped {
		fmt.Println(line)
	}
	for _, path := range out.Stored {
		size, _ := fs.Size(path)
		fmt.Printf("stored %s (%d bytes)\n", path, size)
	}
	fmt.Printf("pipeline relations: %d\n", len(out.Relations))
}
