package stark

// This file unifies the paper's three indexing modes — none, live,
// persistent — behind one IndexMode configuration consumed by
// Dataset.Index, plus the DFS round trip for persisted indexes.

import (
	"fmt"

	"stark/internal/core"
	"stark/internal/index"
	"stark/internal/plan"
)

const (
	modeNone = iota
	modeLive
	modePersistent
)

// IndexMode selects how filter and kNN operators execute: by scanning
// (NoIndexing), by building per-partition R-trees on every query
// (Live), or by materialising the trees once and reusing them across
// queries (Persistent). Construct values with those three names.
type IndexMode struct {
	kind  int
	order int
}

// NoIndexing disables indexing: operators scan every record of every
// relevant partition. The zero IndexMode.
var NoIndexing = IndexMode{}

// Live returns the live indexing mode: each query builds a transient
// R-tree of the given order per partition, probes it, and discards it
// — index build time traded per query for zero memory retention.
// order <= 0 selects the default R-tree order.
func Live(order int) IndexMode { return IndexMode{kind: modeLive, order: normOrder(order)} }

// Persistent returns the persistent indexing mode: per-partition
// R-trees of the given order are built once, kept in memory, and
// reused by every subsequent query; SaveIndex can write them to a DFS
// for reuse by later programs. order <= 0 selects the default order.
func Persistent(order int) IndexMode { return IndexMode{kind: modePersistent, order: normOrder(order)} }

func normOrder(order int) int {
	if order <= 0 {
		return index.DefaultOrder
	}
	return order
}

// String names the mode for diagnostics.
func (m IndexMode) String() string {
	switch m.kind {
	case modeLive:
		return fmt.Sprintf("live(%d)", m.order)
	case modePersistent:
		return fmt.Sprintf("persistent(%d)", m.order)
	default:
		return "none"
	}
}

func (m IndexMode) validate() error {
	if m.kind != modeNone && m.order < 2 {
		return fmt.Errorf("index order must be >= 2, got %d", m.order)
	}
	return nil
}

// SaveIndex writes the materialised partition trees to the DFS under
// pathPrefix ("<prefix>/part-<i>.idx") — the persistent half of the
// paper's Figure-2 workflow. The dataset must have an index
// configured (Live or Persistent); the data itself is not written,
// only the trees, so re-attaching via LoadIndex requires the same
// data partitioned the same way.
func (d *Dataset[V]) SaveIndex(fs *DFS, pathPrefix string) error {
	st, err := d.forceFlushed()
	if err != nil {
		return err
	}
	if st.idx == nil {
		return fmt.Errorf("stark: saveIndex: no index configured; call Index(Live(n)) or Index(Persistent(n)) first")
	}
	if err := st.idx.Persist(fs, pathPrefix); err != nil {
		return fmt.Errorf("stark: saveIndex: %w", err)
	}
	return nil
}

// LoadIndex re-attaches trees written by SaveIndex to a dataset with
// the same partition layout, skipping the index build. The returned
// dataset behaves as if Index(Persistent(order)) had run, with the
// persisted order. Like every transformation the load is deferred:
// errors (missing files, partition mismatch) surface at the action.
func LoadIndex[V any](d *Dataset[V], fs *DFS, pathPrefix string) *Dataset[V] {
	return d.chain("loadIndex", func(st state[V]) (state[V], error) {
		st, err := st.flush(d.ctx)
		if err != nil {
			return state[V]{}, err
		}
		idx, err := core.LoadIndex(st.sds, fs, pathPrefix)
		if err != nil {
			return state[V]{}, err
		}
		st.idx = idx
		st.mode = Persistent(idx.Order())
		st.base = plan.NewNode("Index", st.mode.String()+" loaded").Add(st.base)
		return st, nil
	})
}
