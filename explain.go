package stark

// This file wires the cost-based planner (internal/plan, fed by
// internal/stats) into the fluent DSL. Scan filters accumulate on the
// chain as pending predicates; the first record-enumerating action
// compiles them: statistics are collected in one streaming pass
// (cached per dataset), predicates are reordered most selective
// first, partitions are pruned from the collected per-partition MBRs
// and temporal extents, and a cost model picks the fused scan or a
// live R-tree probe. Explain renders the resulting plan — with
// estimated and, after execution, actual cardinalities — and
// Optimize(false) opts a chain out of all of it.

import (
	"fmt"
	"strings"
	"sync/atomic"

	"stark/internal/attr"
	"stark/internal/colstore"
	"stark/internal/core"
	"stark/internal/engine"
	"stark/internal/geom"
	"stark/internal/index"
	"stark/internal/plan"
	"stark/internal/stats"
)

// DatasetStats is the planner's statistics bundle: record counts,
// per-partition MBRs and temporal extents, and the spatial grid
// histogram (see Dataset.Stats).
type DatasetStats = stats.Summary

// PartitionStats summarises one partition inside DatasetStats.
type PartitionStats = stats.PartitionStats

// PlanNode is one operator of an EXPLAIN tree (see Dataset.Explain
// and the server's /api/explain endpoint).
type PlanNode = plan.Node

// compiled is the executable form of a resolved chain: the engine
// dataset to drive, the partitions to visit (nil = all), and the
// EXPLAIN tree describing the decisions taken.
type compiled[V any] struct {
	ds    *engine.Dataset[Tuple[V]]
	visit []int
	root  *plan.Node
	// attrActs holds the runtime counters of the compiled attribute
	// predicates, so Explain can attach per-node actual selectivities
	// after execution.
	attrActs []*attrActual
}

// attrActual counts one compiled attribute predicate's evaluations.
// probe marks the postings-probe driver, whose candidates are
// enumerated rather than tested.
type attrActual struct {
	detail string
	probe  bool
	tested atomic.Int64
	passed atomic.Int64
}

// compiled memoises the compilation of the resolved state, so
// repeated actions on one Dataset plan (and count pruned partitions)
// exactly once.
func (d *Dataset[V]) compiled() (compiled[V], error) {
	d.compileOnce.Do(func() {
		st, err := d.resolve()
		if err != nil {
			d.compErr = err
			return
		}
		rec := d.jobRecorder()
		m := d.beginPhase()
		d.comp, d.compErr = compileState(d.ctx, rec, st.withRecorder(rec))
		if d.compErr == nil {
			d.comp.ds = d.comp.ds.WithRecorder(rec)
		}
		d.endPhase("plan", m, 0)
	})
	return d.comp, d.compErr
}

// compileState turns a resolved state into an executable plan,
// charging planning metrics (pruned partitions, eager index probes)
// to rec.
func compileState[V any](ctx *Context, rec *engine.Recorder, st state[V]) (compiled[V], error) {
	if len(st.pending) == 0 {
		if st.enumerateViaIndex() {
			return compiled[V]{ds: st.idx.Flat(), root: st.base}, nil
		}
		if visit, ok := st.prunedVisit(rec); ok {
			return compiled[V]{ds: st.sds.Dataset(), visit: visit, root: st.base}, nil
		}
		return compiled[V]{ds: st.sds.Dataset(), root: st.base}, nil
	}

	// Split the pendings: spatial predicates feed the planner's
	// spatio-temporal cost model, typed attribute predicates its
	// attribute access-path choice.
	var spatial, attrPend []pendingPred
	for _, p := range st.pending {
		if p.attr != nil {
			attrPend = append(attrPend, p)
		} else {
			spatial = append(spatial, p)
		}
	}
	preds := make([]plan.Pred, len(spatial))
	for i, p := range spatial {
		preds[i] = p.info
	}
	attrPreds := make([]attr.Pred, len(attrPend))
	for i, p := range attrPend {
		attrPreds[i] = *p.attr
	}

	if st.noOpt {
		// Optimizer off: fold in caller order; pruning falls back to
		// partitioner extents (the pre-planner behaviour).
		fl, err := st.flush(ctx)
		if err != nil {
			return compiled[V]{}, err
		}
		node := plan.NaiveFilterNode(preds, st.base)
		if len(attrPreds) > 0 {
			node.Add(plan.NaiveAttrNodes(attrPreds)...)
			if len(preds) == 0 {
				node.Detail = attrDetail(attrPreds)
			}
		}
		fl.base = node
		return compileState(ctx, rec, fl)
	}

	if len(attrPreds) > 0 {
		if st.schema == nil {
			return compiled[V]{}, fmt.Errorf("stark: plan: attribute filter without a schema (WithSchema must precede it)")
		}
		// Hand the schema to the dataset instance so Stats collects
		// per-field statistics (memoised: one extra sweep per base at
		// most) and the postings sidecar can build.
		st.sds.SetSchema(st.schema)
	}

	sum, err := st.sds.Stats(0)
	if err != nil {
		return compiled[V]{}, fmt.Errorf("stark: plan: stats: %w", err)
	}
	attrIndexed := len(attrPreds) > 0
	for _, ap := range attrPreds {
		if st.liveAttrProbe != nil {
			if st.liveAttrHas == nil || st.liveAttrHas(ap.Field) {
				continue
			}
		} else if st.sds.HasAttrIndex(ap.Field) {
			continue
		}
		attrIndexed = false
		break
	}
	dec := plan.PlanFilter(sum, preds, plan.FilterOptions{
		// A mutable-dataset snapshot counts as already indexed: its
		// concurrent partition trees exist and probing them is free of
		// build cost, exactly like a persistent index.
		AlreadyIndexed: st.idx != nil || st.liveProbe != nil,
		IndexOrder:     st.autoIndexOrder(),
		Columnar:       st.sds.HasColumnar(),
		Attr:           attrPreds,
		AttrIndexed:    attrIndexed,
	})

	// Partitioner-extent pruning composes with stats pruning: both
	// are safe over-approximations of where matches can live, so the
	// visit list is their intersection.
	visit := dec.Visit
	if sp := st.sds.Partitioner(); sp != nil {
		envs := make([]geom.Envelope, 0, len(preds)+len(st.pruneEnvs))
		for _, p := range preds {
			envs = append(envs, p.PruneEnv())
		}
		envs = append(envs, st.pruneEnvs...)
		kept := visit[:0:0]
		for _, pi := range visit {
			ext := sp.Extent(pi)
			hit := true
			for _, env := range envs {
				if !ext.Intersects(env) {
					hit = false
					break
				}
			}
			if hit {
				kept = append(kept, pi)
			}
		}
		visit = kept
	}
	dec.Visit = visit
	dec.Pruned = st.sds.NumPartitions() - len(visit)
	dec.InputRows = sum.RowsIn(visit)
	if dec.Pruned > 0 {
		rec.TasksSkipped(int64(dec.Pruned))
	}

	if len(attrPreds) > 0 {
		return compileAttr(ctx, rec, st, spatial, attrPreds, preds, dec, visit)
	}

	if dec.UseColumnar {
		// Columnar kernel scan: the coarse envelope/interval kernels
		// sweep the sidecar columns in planned predicate order, and only
		// the surviving rows are refined with the exact predicates.
		kps := make([]core.KernelPred, len(dec.Order))
		for i, pi := range dec.Order {
			kps[i] = kernelPred(st.pending[pi])
		}
		colDS := st.sds.ColumnarFilter(kps)
		if colDS == nil {
			return compiled[V]{}, fmt.Errorf("stark: plan: columnar sidecar vanished")
		}
		scan := plan.ColumnarScanNode(st.sds.NumPartitions(), dec.InputRows, st.sds.ColumnarHilbert(), st.base)
		root := plan.FilterNode(dec, preds, false, scan)
		return compiled[V]{ds: colDS, visit: visit, root: root}, nil
	}

	root := plan.FilterNode(dec, preds, st.idx != nil || st.liveProbe != nil, st.base)

	if st.idx != nil || st.liveProbe != nil || dec.UseIndex {
		// Index probe: an existing index (persistent trees or the
		// concurrent trees of a mutable-dataset snapshot) is reused;
		// otherwise a live R-tree is built because the cost model
		// priced build+probe below the scan. The trees are probed with
		// the most selective predicate's envelope and candidates are
		// refined with every predicate, cheapest-surviving order.
		idx := st.idx
		if idx == nil && st.liveProbe == nil {
			live, err := st.sds.LiveIndex(dec.IndexOrder, nil)
			if err != nil {
				return compiled[V]{}, fmt.Errorf("stark: plan: live index: %w", err)
			}
			idx = live
		}
		ordered := make([]pendingPred, len(dec.Order))
		for i, pi := range dec.Order {
			ordered[i] = st.pending[pi]
		}
		refineAll := func(key, _ STObject) bool {
			for _, p := range ordered {
				if !p.pred(key, p.q) {
					return false
				}
			}
			return true
		}
		first := ordered[0]
		before := rec.Snapshot()
		var rows []Tuple[V]
		var err error
		if st.liveProbe != nil {
			rows, err = st.liveProbe(rec, first.info.PruneEnv(), func(key STObject, _ V) bool {
				return refineAll(key, first.q)
			}, visit)
		} else {
			rows, err = idx.FilterPartitions(first.q, first.info.PruneEnv(), refineAll, visit)
		}
		if err != nil {
			return compiled[V]{}, fmt.Errorf("stark: plan: index probe: %w", err)
		}
		after := rec.Snapshot()
		root.ActRows = int64(len(rows))
		root.Prop("probe: index_probes=%d candidates_refined=%d",
			after.IndexProbes-before.IndexProbes,
			after.CandidatesRefined-before.CandidatesRefined)
		return compiled[V]{ds: engine.Parallelize(ctx, rows, 0), root: root}, nil
	}

	// Fused scan in planned predicate order.
	cur := st.sds
	for _, pi := range dec.Order {
		p := spatial[pi]
		cur = cur.Where(p.q, p.pred)
	}
	return compiled[V]{ds: cur.Dataset(), visit: visit, root: root}, nil
}

// attrDetail joins attribute predicates into a Filter node detail for
// plans with no spatial predicate at all.
func attrDetail(preds []attr.Pred) string {
	details := make([]string, len(preds))
	for i, p := range preds {
		details[i] = p.String()
	}
	return strings.Join(details, " AND ")
}

// compileAttr turns a planned filter with typed attribute predicates
// into its executable form, dispatching on the planner's chosen
// attribute access path:
//
//   - AttrInline: the spatial access path (fused scan, R-tree probe or
//     columnar kernels) runs as usual, with the compiled attribute
//     checks fused in as cheap typed compares;
//   - AttrIndexProbe: the most selective attribute predicate's
//     per-partition postings enumerate candidates, everything else
//     refines them;
//   - AttrIntersect: attribute postings bitsets are ANDed with the
//     columnar kernels' survivor bitset before exact refinement.
//
// Every compiled attribute predicate counts its evaluations, so
// Explain can attach actual selectivities to the AttrScan/AttrIndex
// nodes after execution.
func compileAttr[V any](ctx *Context, rec *engine.Recorder, st state[V], spatial []pendingPred, attrPreds []attr.Pred, preds []plan.Pred, dec plan.FilterDecision, visit []int) (compiled[V], error) {
	acts := make([]*attrActual, len(attrPreds))
	matchers := make([]func(V) bool, len(attrPreds))
	for i, ap := range attrPreds {
		fld, ok := st.schema.Field(ap.Field)
		if !ok {
			return compiled[V]{}, fmt.Errorf("stark: plan: no field %q in schema", ap.Field)
		}
		act := &attrActual{detail: ap.String()}
		acts[i] = act
		p, get := ap, fld.Get
		matchers[i] = func(v V) bool {
			act.tested.Add(1)
			if p.Matches(get(v)) {
				act.passed.Add(1)
				return true
			}
			return false
		}
	}
	// attrAll evaluates every attribute predicate in planned order
	// (most selective first, so later checks see fewer records).
	attrAll := func(v V) bool {
		for _, i := range dec.AttrOrder {
			if !matchers[i](v) {
				return false
			}
		}
		return true
	}
	// newRoot builds the filter node with the attribute annotations:
	// the access-path prop plus one AttrIndex/AttrScan child per
	// predicate.
	newRoot := func(child *plan.Node, alreadyIndexed bool) *plan.Node {
		root := plan.FilterNode(dec, preds, alreadyIndexed, child)
		if len(preds) == 0 {
			root.Detail = attrDetail(attrPreds)
		}
		if p := dec.AttrProp(); p != "" {
			root.Prop("%s", p)
		}
		return root.Add(plan.AttrNodes(dec, attrPreds)...)
	}
	// refineSpatial evaluates every spatial predicate exactly, planned
	// order.
	refineSpatial := func(key STObject) bool {
		for _, pi := range dec.Order {
			p := spatial[pi]
			if !p.pred(key, p.q) {
				return false
			}
		}
		return true
	}

	switch dec.AttrStrategy {
	case plan.AttrIndexProbe:
		first := attrPreds[dec.AttrFirst]
		driver := acts[dec.AttrFirst]
		driver.probe = true
		keep := func(kv Tuple[V]) bool {
			driver.passed.Add(1)
			for _, i := range dec.AttrOrder {
				if i != dec.AttrFirst && !matchers[i](kv.Value) {
					return false
				}
			}
			return refineSpatial(kv.Key)
		}
		root := newRoot(st.base, false)
		if st.liveAttrProbe != nil && (st.liveAttrHas == nil || st.liveAttrHas(first.Field)) {
			// The mutable dataset maintains generation-tagged field
			// postings across batches; probe them eagerly like the
			// spatial live probe.
			before := rec.Snapshot()
			rows, err := st.liveAttrProbe(rec, first, func(key STObject, v V) bool {
				return keep(Tuple[V]{Key: key, Value: v})
			}, visit)
			if err != nil {
				return compiled[V]{}, fmt.Errorf("stark: plan: attr probe: %w", err)
			}
			after := rec.Snapshot()
			root.ActRows = int64(len(rows))
			root.Prop("probe: index_probes=%d candidates_refined=%d",
				after.IndexProbes-before.IndexProbes,
				after.CandidatesRefined-before.CandidatesRefined)
			return compiled[V]{ds: engine.Parallelize(ctx, rows, 0), root: root, attrActs: acts}, nil
		}
		ds, err := st.sds.AttrFilter(first, keep)
		if err != nil {
			return compiled[V]{}, fmt.Errorf("stark: plan: attr index: %w", err)
		}
		return compiled[V]{ds: ds, visit: visit, root: root, attrActs: acts}, nil

	case plan.AttrIntersect:
		kps := make([]core.KernelPred, len(dec.Order))
		for i, pi := range dec.Order {
			kps[i] = kernelPred(spatial[pi])
		}
		colDS, err := st.sds.ColumnarFilterIntersect(kps, attrPreds)
		if err != nil {
			return compiled[V]{}, fmt.Errorf("stark: plan: attr intersect: %w", err)
		}
		scan := plan.ColumnarScanNode(st.sds.NumPartitions(), dec.InputRows, st.sds.ColumnarHilbert(), st.base)
		root := newRoot(scan, false)
		return compiled[V]{ds: colDS, visit: visit, root: root, attrActs: acts}, nil
	}

	// AttrInline over whichever spatial access path won.
	if dec.UseColumnar {
		kps := make([]core.KernelPred, len(dec.Order))
		for i, pi := range dec.Order {
			kps[i] = kernelPred(spatial[pi])
		}
		colDS := st.sds.ColumnarFilter(kps)
		if colDS == nil {
			return compiled[V]{}, fmt.Errorf("stark: plan: columnar sidecar vanished")
		}
		filtered := colDS.Filter(func(kv Tuple[V]) bool { return attrAll(kv.Value) })
		scan := plan.ColumnarScanNode(st.sds.NumPartitions(), dec.InputRows, st.sds.ColumnarHilbert(), st.base)
		root := newRoot(scan, false)
		return compiled[V]{ds: filtered, visit: visit, root: root, attrActs: acts}, nil
	}

	if len(spatial) > 0 && (st.idx != nil || st.liveProbe != nil || dec.UseIndex) {
		idx := st.idx
		if idx == nil && st.liveProbe == nil {
			live, err := st.sds.LiveIndex(dec.IndexOrder, nil)
			if err != nil {
				return compiled[V]{}, fmt.Errorf("stark: plan: live index: %w", err)
			}
			idx = live
		}
		first := spatial[dec.Order[0]]
		root := newRoot(st.base, st.idx != nil || st.liveProbe != nil)
		before := rec.Snapshot()
		var rows []Tuple[V]
		var err error
		if st.liveProbe != nil {
			rows, err = st.liveProbe(rec, first.info.PruneEnv(), func(key STObject, v V) bool {
				return attrAll(v) && refineSpatial(key)
			}, visit)
		} else {
			rows, err = idx.FilterPartitionsRows(first.q, first.info.PruneEnv(), func(kv Tuple[V]) bool {
				return attrAll(kv.Value) && refineSpatial(kv.Key)
			}, visit)
		}
		if err != nil {
			return compiled[V]{}, fmt.Errorf("stark: plan: index probe: %w", err)
		}
		after := rec.Snapshot()
		root.ActRows = int64(len(rows))
		root.Prop("probe: index_probes=%d candidates_refined=%d",
			after.IndexProbes-before.IndexProbes,
			after.CandidatesRefined-before.CandidatesRefined)
		return compiled[V]{ds: engine.Parallelize(ctx, rows, 0), root: root, attrActs: acts}, nil
	}

	// Fused scan: the cheap typed attribute compares run first, the
	// spatial cascade on their survivors.
	cur := st.sds.WhereRows(func(_ STObject, v V) bool { return attrAll(v) })
	for _, pi := range dec.Order {
		p := spatial[pi]
		cur = cur.Where(p.q, p.pred)
	}
	root := newRoot(st.base, false)
	return compiled[V]{ds: cur.Dataset(), visit: visit, root: root, attrActs: acts}, nil
}

// kernelPred compiles one pending predicate into its columnar form:
// the coarse kernel query plus the exact predicate for refinement.
// Built-in predicates map to their envelope necessary condition and
// the combined-semantics temporal mode; opaque ones fall back to the
// pruning-envelope sweep (an opaque distance function keeps the
// temporal overlap mode — WithinDistance always combines with
// interval intersection — but its spatial test is only the prune
// contract, because the envelope-gap bound is unsound under a custom
// metric; a fully custom predicate gets no temporal kernel at all).
func kernelPred(p pendingPred) core.KernelPred {
	kp := core.KernelPred{Q: p.q, Pred: p.pred}
	switch {
	case p.info.Kind == plan.Intersects && !p.opaque:
		kp.Query = core.KernelQueryFor(colstore.OpIntersects, colstore.TimeOverlap, p.q, 0)
	case p.info.Kind == plan.Contains && !p.opaque:
		kp.Query = core.KernelQueryFor(colstore.OpContains, colstore.TimeContains, p.q, 0)
	case (p.info.Kind == plan.ContainedBy || p.info.Kind == plan.CoveredBy) && !p.opaque:
		kp.Query = core.KernelQueryFor(colstore.OpContainedBy, colstore.TimeWithin, p.q, 0)
	case p.info.Kind == plan.WithinDistance && !p.opaque:
		kp.Query = core.KernelQueryFor(colstore.OpWithinDistance, colstore.TimeOverlap, p.q, p.info.Expand)
	case p.info.Kind == plan.WithinDistance:
		env := p.info.PruneEnv()
		kp.Query = core.KernelPrune(env.MinX, env.MinY, env.MaxX, env.MaxY, colstore.TimeOverlap, p.q)
	default:
		env := p.info.PruneEnv()
		kp.Query = core.KernelPrune(env.MinX, env.MinY, env.MaxX, env.MaxY, colstore.TimeNone, p.q)
	}
	return kp
}

// autoIndexOrder returns the R-tree order an auto-built live index
// would use: the configured mode's order, or the default.
func (st *state[V]) autoIndexOrder() int {
	if st.mode.kind != modeNone {
		return st.mode.order
	}
	return index.DefaultOrder
}

// Optimize enables (true, the default) or disables (false) the
// cost-based planner for this chain. With the planner off, filters
// run in caller order as fused scans, partitions are pruned from
// partitioner extents only, and no statistics pass runs — the
// behaviour before the planner existed, kept as an opt-out and for
// A/B measurements (the optimizer bench uses it).
func (d *Dataset[V]) Optimize(enabled bool) *Dataset[V] {
	return d.chain("optimize", func(st state[V]) (state[V], error) {
		st.noOpt = !enabled
		return st, nil
	})
}

// Explain compiles the chain, executes it, and returns the rendered
// plan tree: one line per operator with estimated cost/cardinality,
// the decisions taken (chosen index mode, pruned partitions,
// predicate order), actual cardinality, and the engine metrics the
// execution generated.
func (d *Dataset[V]) Explain() (string, error) {
	n, err := d.ExplainNode()
	if err != nil {
		return "", err
	}
	return n.Render(), nil
}

// ExplainNode is Explain returning the plan tree itself (the
// /api/explain endpoint serialises it as JSON).
func (d *Dataset[V]) ExplainNode() (*PlanNode, error) {
	c, err := d.compiled()
	if err != nil {
		return nil, err
	}
	rec := d.jobRecorder()
	before := rec.Snapshot()
	var n int64
	if c.visit != nil {
		n, err = c.ds.CountPartitions(c.visit)
	} else {
		n, err = c.ds.Count()
	}
	if err != nil {
		return nil, fmt.Errorf("stark: explain: %w", err)
	}
	after := rec.Snapshot()
	root := c.root.Clone()
	if root == nil {
		root = plan.NewNode("Scan", "dataset")
	}
	if root.ActRows < 0 {
		root.ActRows = n
	}
	root.Prop("actual: rows=%d elements_scanned=%d index_probes=%d candidates_refined=%d",
		n,
		after.ElementsScanned-before.ElementsScanned,
		after.IndexProbes-before.IndexProbes,
		after.CandidatesRefined-before.CandidatesRefined)
	if kb := after.KernelBatches - before.KernelBatches; kb > 0 {
		// Kernel actuals only when a columnar sweep actually ran, so
		// non-columnar plans (and their golden files) are unchanged.
		attachColumnarActuals(root,
			after.ElementsScanned-before.ElementsScanned,
			kb,
			after.KernelSurvivors-before.KernelSurvivors)
	}
	if len(c.attrActs) > 0 {
		attachAttrActuals(root, c.attrActs)
	}
	return root, nil
}

// attachAttrActuals annotates the AttrScan/AttrIndex nodes of the tree
// with the counters their compiled predicates accumulated during
// execution: actual selectivity for evaluated predicates, enumerated
// candidate count for the postings-probe driver.
func attachAttrActuals(n *PlanNode, acts []*attrActual) {
	if n == nil {
		return
	}
	if n.Op == "AttrScan" || n.Op == "AttrIndex" {
		for _, act := range acts {
			if act.detail != n.Detail {
				continue
			}
			passed := act.passed.Load()
			if act.probe {
				n.ActRows = passed
				n.Prop("actual: postings_candidates=%d", passed)
			} else if tested := act.tested.Load(); tested > 0 {
				n.ActRows = passed
				n.Prop("actual: sel=%.4f tested=%d passed=%d",
					float64(passed)/float64(tested), tested, passed)
			}
			break
		}
	}
	for _, c := range n.Children {
		attachAttrActuals(c, acts)
	}
}

// attachColumnarActuals annotates every ColumnarScan node of the tree
// with the executed kernel counters.
func attachColumnarActuals(n *PlanNode, scanned, batches, survivors int64) {
	if n == nil {
		return
	}
	if n.Op == "ColumnarScan" {
		n.Prop("actual: elements_scanned=%d kernel_batches=%d kernel_survivors=%d",
			scanned, batches, survivors)
	}
	for _, c := range n.Children {
		attachColumnarActuals(c, scanned, batches, survivors)
	}
}

// Stats resolves the chain (folding any pending filters) and returns
// the planner statistics of the resulting dataset, collected in one
// streaming pass and cached per dataset instance.
func (d *Dataset[V]) Stats() (*DatasetStats, error) {
	st, err := d.forceFlushed()
	if err != nil {
		return nil, err
	}
	return st.sds.Stats(0)
}
