package stark

// This file is the public surface of mutable live datasets
// (internal/live): MutableDataset accepts Insert/Upsert/Delete
// batches while queries run, and Snapshot() pins one published
// generation as an ordinary, fully plannable Dataset. The snapshot
// view is memoised per generation, so:
//
//   - while the data does not change, repeated snapshots share one
//     engine dataset and every query fingerprints identically —
//     result caches keep hitting;
//   - the moment a batch publishes a new generation, the next
//     Snapshot materialises a fresh view with a fresh lineage ID and
//     a LiveScan plan leaf carrying the new generation, so every
//     fingerprint minted against older data can never match again.
//     Cache invalidation is structural, not timed.

import (
	"sync"

	"stark/internal/attr"
	"stark/internal/core"
	"stark/internal/engine"
	"stark/internal/geom"
	"stark/internal/live"
	"stark/internal/plan"
)

type (
	// LiveRecord is one mutable-dataset record: a caller-chosen ID,
	// the spatio-temporal key, and the payload.
	LiveRecord[V any] = live.Record[V]
	// LiveOp is one mutation in a batch (build with LiveInsert,
	// LiveUpsert, LiveDelete).
	LiveOp[V any] = live.Op[V]
	// BatchResult reports what one mutation batch did and the
	// generation it published.
	BatchResult = live.BatchResult
)

// LiveInsert builds an insert op; the ID must not be live.
func LiveInsert[V any](id int64, key STObject, v V) LiveOp[V] { return live.Insert(id, key, v) }

// LiveUpsert builds an upsert op: replace the record with the same
// ID, or insert it.
func LiveUpsert[V any](id int64, key STObject, v V) LiveOp[V] { return live.Upsert(id, key, v) }

// LiveDelete builds a delete-by-ID op; a missing ID is counted in the
// batch result, not an error.
func LiveDelete[V any](id int64) LiveOp[V] { return live.Delete[V](id) }

// MutableDataset is a spatio-temporal dataset that accepts mutation
// batches while queries run. Each batch publishes a new generation
// atomically; Snapshot pins the latest generation as an ordinary
// Dataset whose reads are repeatable no matter how many batches land
// afterwards.
type MutableDataset[V any] struct {
	ctx *Context
	d   *live.Dataset[V]

	// view memoises the DSL snapshot per generation, keeping engine
	// lineage IDs — and with them plan fingerprints — stable while
	// the data does not change.
	mu      sync.Mutex
	viewGen uint64
	view    *Dataset[V]
}

// NewMutableDataset returns an empty mutable dataset. sp fixes the
// spatial layout up front (nil = a single partition) — a mutable
// dataset cannot derive its layout from data it does not have yet.
// order is the node capacity of the concurrent partition trees
// (<= 0 selects the default).
func NewMutableDataset[V any](ctx *Context, name string, sp SpatialPartitioner, order int) *MutableDataset[V] {
	return &MutableDataset[V]{ctx: ctx, d: live.NewDataset[V](ctx, name, sp, order)}
}

// Name returns the dataset name.
func (m *MutableDataset[V]) Name() string { return m.d.Name() }

// Context returns the execution context.
func (m *MutableDataset[V]) Context() *Context { return m.ctx }

// Generation returns the latest published generation; 0 means no
// batch has been applied yet.
func (m *MutableDataset[V]) Generation() uint64 { return m.d.Generation() }

// Count returns the live record count at the latest generation,
// maintained incrementally (no scan).
func (m *MutableDataset[V]) Count() int64 { return m.d.Count() }

// NumPartitions returns the partition count of the fixed layout.
func (m *MutableDataset[V]) NumPartitions() int { return m.d.NumPartitions() }

// Apply validates and applies one mutation batch atomically: a
// rejected batch (duplicate IDs, insert of a live ID, empty
// geometry) changes nothing, and an accepted batch becomes visible
// all at once when its generation publishes.
func (m *MutableDataset[V]) Apply(ops []LiveOp[V]) (BatchResult, error) { return m.d.Apply(ops) }

// Insert applies one batch of inserts.
func (m *MutableDataset[V]) Insert(records ...LiveRecord[V]) (BatchResult, error) {
	ops := make([]LiveOp[V], len(records))
	for i, r := range records {
		ops[i] = live.Op[V]{Kind: live.OpInsert, Rec: r}
	}
	return m.d.Apply(ops)
}

// Upsert applies one batch of upserts.
func (m *MutableDataset[V]) Upsert(records ...LiveRecord[V]) (BatchResult, error) {
	ops := make([]LiveOp[V], len(records))
	for i, r := range records {
		ops[i] = live.Op[V]{Kind: live.OpUpsert, Rec: r}
	}
	return m.d.Apply(ops)
}

// Delete applies one batch of deletes by ID.
func (m *MutableDataset[V]) Delete(ids ...int64) (BatchResult, error) {
	ops := make([]LiveOp[V], len(ids))
	for i, id := range ids {
		ops[i] = live.Delete[V](id)
	}
	return m.d.Apply(ops)
}

// Stats returns the incrementally maintained planner statistics of
// the latest generation. Counts are exact; MBRs and temporal extents
// are grow-only over-approximations.
func (m *MutableDataset[V]) Stats() *DatasetStats { return m.d.Snapshot().Stats() }

// SetAttrFields registers the attribute schema whose field postings
// the dataset maintains incrementally across mutation batches,
// backfilling from the records already live. Attribute filters on
// snapshots taken afterwards answer index-eligible predicates
// straight from the generation-tagged postings instead of scanning.
// The memoised snapshot view is invalidated, so the next Snapshot
// (and its fingerprints) reflects the new access paths.
func (m *MutableDataset[V]) SetAttrFields(schema *AttrSchema[V]) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.d.SetAttrFields(schema.Fields())
	m.view = nil
}

// OnCommit installs a hook that runs inside Apply's critical section
// after a batch validates and before any record mutates; an error
// from the hook aborts the batch with nothing applied. This is the
// write-ahead point: with a WAL append + fsync as the hook, every
// acknowledged batch is durable before it is visible. Install before
// the dataset takes writes; the hook must not call back into the
// dataset.
func (m *MutableDataset[V]) OnCommit(fn func(gen uint64, ops []LiveOp[V]) error) { m.d.OnCommit(fn) }

// ReplayBatch re-applies one durably logged batch during recovery
// without invoking the commit hook. Batches at or below the current
// generation are skipped (already captured by the checkpoint the
// dataset was restored from); a generation gap is an error.
func (m *MutableDataset[V]) ReplayBatch(gen uint64, ops []LiveOp[V]) (bool, error) {
	return m.d.ReplayBatch(gen, ops)
}

// Restore bulk-loads checkpointed records into an empty dataset and
// publishes them at gen, so subsequent ReplayBatch calls line up with
// the log suffix.
func (m *MutableDataset[V]) Restore(gen uint64, recs []LiveRecord[V]) error {
	return m.d.Restore(gen, recs)
}

// EachRecord streams every record live at the latest published
// generation (ID, key, value), stopping early when fn returns false,
// and returns the generation the enumeration was pinned to. The pin
// is a writer barrier (live.Dataset.SnapshotBarrier): any batch whose
// commit hook already ran — i.e. any batch the WAL holds — is
// guaranteed visible. Checkpointing uses it to serialise the dataset
// consistently while writes continue, without ever missing a batch
// that was logged before the checkpoint rotated the WAL.
func (m *MutableDataset[V]) EachRecord(fn func(LiveRecord[V]) bool) uint64 {
	snap := m.d.SnapshotBarrier()
	snap.Each(fn)
	return snap.Gen()
}

// Snapshot pins the latest published generation as an ordinary
// Dataset: actions stream a consistent view (later batches are
// invisible, including structural replacement by vacuum), filters
// compile through the cost-based planner with the incrementally
// maintained statistics, and index-eligible predicates probe the
// concurrent partition trees directly. Snapshots of the same
// generation share one view, so their plan fingerprints are stable;
// a new generation yields a fresh view and fresh fingerprints.
func (m *MutableDataset[V]) Snapshot() *Dataset[V] {
	m.mu.Lock()
	defer m.mu.Unlock()
	snap := m.d.Snapshot()
	if m.view != nil && m.viewGen == snap.Gen() {
		return m.view
	}
	m.view = newLiveView(m.ctx, m.d.Name(), m.d.Order(), snap)
	m.viewGen = snap.Gen()
	return m.view
}

// newLiveView builds the DSL dataset over one pinned live snapshot.
func newLiveView[V any](ctx *Context, name string, order int, snap *live.Snapshot[V]) *Dataset[V] {
	return newDataset(ctx, func() (state[V], error) {
		sds := core.Wrap(snap.Tuples())
		// The planner never rescans a live snapshot: the incrementally
		// maintained summary is seeded into the stats cache up front.
		sds.SeedStats(snap.Stats())
		base := plan.LiveScanNode(name, snap.Gen(), snap.NumPartitions(), order, snap.Count())
		probe := func(rec *engine.Recorder, pruneEnv geom.Envelope, refine func(key STObject, v V) bool, visit []int) ([]Tuple[V], error) {
			parts, err := snap.FilterPartitionsRecorder(rec, pruneEnv, refine, visit)
			if err != nil {
				return nil, err
			}
			var rows []Tuple[V]
			for _, p := range parts {
				rows = append(rows, p...)
			}
			return rows, nil
		}
		attrProbe := func(rec *engine.Recorder, pred attr.Pred, refine func(key STObject, v V) bool, visit []int) ([]Tuple[V], error) {
			parts, err := snap.AttrProbeRecorder(rec, pred, refine, visit)
			if err != nil {
				return nil, err
			}
			var rows []Tuple[V]
			for _, p := range parts {
				rows = append(rows, p...)
			}
			return rows, nil
		}
		return state[V]{sds: sds, base: base, liveProbe: probe, liveAttrProbe: attrProbe, liveAttrHas: snap.HasAttrField}, nil
	})
}
