// Package stark is a from-scratch Go reproduction of STARK, the
// spatio-temporal data processing framework for Apache Spark
// presented in "Efficient spatio-temporal event processing with
// STARK" (Hagedorn & Räth, EDBT 2017) — and, like the original, it
// leads with a seamlessly integrated DSL.
//
// Where the Scala original uses an implicit conversion to lift any
// RDD[(STObject, V)] into the spatial operator surface, this package
// lifts a slice of (STObject, V) tuples into a fluent, lazily
// evaluated Dataset[V]. Transformations chain without error plumbing;
// the first failed step is the error the terminal action reports:
//
//	events := stark.Parallelize(ctx, pairs)
//	hits, err := events.
//		PartitionBy(stark.BSP(1024)).     // cost-based spatial partitioning
//		Index(stark.Live(5)).             // per-query partition R-trees
//		Intersects(qry).                  // spatio-temporal filter
//		Collect()                         // errors surface here
//
// The paper's three indexing modes are one configuration instead of
// three call paths: Index(stark.NoIndexing) scans,
// Index(stark.Live(order)) builds transient per-partition R-trees on
// every query, Index(stark.Persistent(order)) materialises them once
// for reuse — and SaveIndex/LoadIndex round-trip them through the
// simulated HDFS, reproducing the Figure-2 workflow.
//
// The user-facing vocabulary — STObject, Envelope, Interval, the
// named predicates, partitioner recipes (Grid, BSP, Voronoi), joins
// and clustering — is exported here, so programs against the DSL
// never import an stark/internal package.
//
// The implementation below the DSL lives in internal/ and is not part
// of the API:
//
//   - internal/engine    — a Spark-core stand-in: partitioned, lazily
//     evaluated datasets with a parallel task scheduler and shuffle;
//   - internal/dfs       — a simulated HDFS block store;
//   - internal/geom      — the JTS-subset geometry kernel (WKT,
//     predicates, distances);
//   - internal/temporal  — instants, intervals and temporal predicates;
//   - internal/stobject  — the STObject data type with the paper's
//     combined spatio-temporal predicate semantics;
//   - internal/partition — grid, cost-based BSP, tile and Voronoi
//     spatial partitioners with extent bookkeeping;
//   - internal/index     — the STR-packed R-tree with kNN and
//     persistence;
//   - internal/core      — the eager operator layer the DSL drives
//     (filters, joins, kNN, the indexing modes, DBSCAN entry point);
//   - internal/cluster   — sequential and MR-DBSCAN-style distributed
//     DBSCAN;
//   - internal/baselines — GeoSpark- and SpatialSpark-style join
//     strategies for the Figure 4 comparison;
//   - internal/piglet    — the Pig Latin derivative of the demo;
//   - internal/server    — the web front end;
//   - internal/bench     — the experiment harness regenerating the
//     paper's evaluation.
//
// See README.md for the DSL tour and the Scala-vs-Go comparison, and
// the examples/ directory for complete programs.
package stark
