// Package stark is a from-scratch Go reproduction of STARK, the
// spatio-temporal data processing framework for Apache Spark
// presented in "Efficient spatio-temporal event processing with
// STARK" (Hagedorn & Räth, EDBT 2017) — and, like the original, it
// leads with a seamlessly integrated DSL.
//
// Where the Scala original uses an implicit conversion to lift any
// RDD[(STObject, V)] into the spatial operator surface, this package
// lifts a slice of (STObject, V) tuples into a fluent, lazily
// evaluated Dataset[V]. Transformations chain without error plumbing;
// the first failed step is the error the terminal action reports:
//
//	events := stark.Parallelize(ctx, pairs)
//	hits, err := events.
//		PartitionBy(stark.BSP(1024)).     // cost-based spatial partitioning
//		Index(stark.Live(5)).             // per-query partition R-trees
//		Intersects(qry).                  // spatio-temporal filter
//		Collect()                         // errors surface here
//
// The paper's three indexing modes are one configuration instead of
// three call paths: Index(stark.NoIndexing) scans,
// Index(stark.Live(order)) builds transient per-partition R-trees on
// every query, Index(stark.Persistent(order)) materialises them once
// for reuse — and SaveIndex/LoadIndex round-trip them through the
// simulated HDFS, reproducing the Figure-2 workflow.
//
// The user-facing vocabulary — STObject, Envelope, Interval, the
// named predicates, partitioner recipes (Grid, BSP, Voronoi), joins
// and clustering — is exported here, so programs against the DSL
// never import an stark/internal package.
//
// # Execution model: fused partition pipelines
//
// Like Spark executing a chain of narrow transformations as one
// iterator per partition, the engine compiles a chain of filters and
// maps into a single pull-based loop per partition — no intermediate
// collection is materialised between steps. Fusion breaks only at
// explicit materialisation points: Cache (partitions are computed
// once and retained), shuffles (PartitionBy), and indexed partitions
// (the R-trees need the records in memory). Everything else streams:
//
//   - Count, Reduce and Foreach consume the pipeline without building
//     slices;
//   - Take, First and Exists short-circuit — they stop the pipeline
//     mid-partition as soon as the answer is known, so Take(10) on a
//     hundred-million-row chain touches a few dozen records;
//   - Stream drives rows sequentially, in partition order, into a
//     consumer (the web front end encodes GeoJSON straight off it);
//   - Collect materialises, but runs the whole fused chain into a
//     single output slice per partition.
//
// Partition pruning composes with fusion: a pruned partition's
// pipeline is never started at all.
//
// # Cost-based planning and EXPLAIN
//
// Filters do not execute where they appear in the chain. They join a
// pending set that the cost-based planner compiles at the first
// record-enumerating action:
//
//   - Statistics are collected in ONE streaming pass per dataset —
//     per-partition MBRs, record counts, temporal extents and a
//     coarse grid histogram of centroids — and cached on the dataset
//     (repartitioning or filtering yields a new dataset, so a summary
//     can never describe a stale layout).
//   - Conjunctive predicates are reordered most selective first,
//     selectivity estimated from the histogram (times a temporal
//     overlap factor for timed queries), so expensive predicates see
//     few records.
//   - Partitions are pruned from the collected per-partition MBRs and
//     temporal extents — no spatial partitioner required: data with
//     ingest-order locality prunes out of the box. Partitioner
//     extents, when present, intersect with the stats-based list.
//   - A cost model compares the fused scan against building
//     transient per-partition R-trees (live indexing) and probes
//     whichever is cheaper; a dataset that already carries trees is
//     always probed.
//
// # Columnar scan engine
//
// Dataset.Columnar builds a per-partition struct-of-arrays sidecar —
// envelope bounds and time intervals as flat float64/int64 columns,
// rows sorted by the Hilbert key of their envelope — that branch-free
// kernels sweep in 4096-row batches, ANDing coarse spatio-temporal
// survivors into a bitset; only survivors reach the exact predicate.
// Like Cache, it marks a point in the chain and materialises at the
// first action, and transformations return fresh instances without
// the sidecar, so it can never describe stale data (mutable datasets
// rebuild it lazily per published generation). The planner costs the
// kernel sweep against the plain scan and any index and uses it only
// when cheapest — Optimize(false) opts out — and EXPLAIN shows the
// path as a ColumnarScan leaf with actual kernel_batches and
// kernel_survivors counts. ColumnarLayout(false) skips the Hilbert
// sort (the layout bench's A/B knob), and Partitioner.HilbertOrdered
// renumbers any recipe's partitions along the same curve so
// consecutive partition IDs are spatially adjacent. The kernels
// implement the paper's combined predicate semantics exactly (a
// timed query never matches an untimed record); opaque closures fall
// back to their pruning-envelope contract.
//
// # Attribute filters
//
// Payload fields join the planner's world through typed attribute
// predicates. NewAttrSchema names fields with typed accessors
// (Int64/Float64/String/Bool); WithSchema registers the schema on a
// chain, and FilterEq, FilterRange, FilterIn and FilterOp defer
// typed comparisons that compile alongside the spatial predicates:
// per-field statistics (min/max, distinct-count estimate, histogram)
// come from the same one-pass stats sweep, and the planner chooses
// between inline evaluation on the spatial path's rows, an
// attribute-first probe of lazily built, memoised per-partition
// postings (sorted column + row ids — the most selective predicate
// enumerates candidates, everything else refines), and a postings
// bitset ANDed with the columnar kernels' survivor set. EXPLAIN
// renders each predicate as an AttrScan or AttrIndex node with
// estimated and actual selectivities. Dataset.AttrIndex prebuilds
// postings so even one-shot queries price the probe without build
// cost; MutableDataset.SetAttrFields maintains generation-tagged
// postings incrementally across mutations, so live snapshots probe
// without rebuilding. Typed predicates render canonically
// (fare>f:40; IN sets sorted and deduplicated) and therefore
// fingerprint and result-cache — opaque FilterValues closures are
// refused with the offending operator's position in the chain. The
// server's query endpoints accept the same predicates as a `where`
// clause (attribute-only queries may omit the geometry), and the
// Piglet dialect accepts field comparisons in FILTER.
//
// # Join execution
//
// Join picks one of three physical strategies per join, costed from
// both sides' statistics (JoinOptions.Strategy forces one; JoinAuto,
// the default, lets the model choose — read the verdict back via
// JoinOptions.Report):
//
//   - JoinBroadcast: a side whose estimated cardinality fits the
//     broadcast row budget is materialised once into a single live
//     R-tree; the other side's fused pipelines stream against it,
//     one task per stream partition, no pair enumeration. Stream
//     partitions that cannot reach the broadcast envelope are
//     skipped.
//   - JoinCoPartition: when the sides are partitioned differently
//     (or one is unpartitioned), the smaller side is replicated onto
//     the larger side's SpatialPartitioner by extent overlap
//     (expanded by the probe distance), so every task joins exactly
//     one aligned partition pair.
//   - JoinPairs: the paper's partitioned join — pairs enumerated,
//     disjoint extents pruned, the right partition of each surviving
//     pair materialised and indexed exactly once behind a shared
//     sync.Once slot that is released when its last task completes.
//
// Under JoinAuto the executor builds the smaller input (swapping
// sides internally and swapping result rows back); a forced strategy
// skips planning and builds the right input as given — force
// JoinBroadcast with the side to materialise on the right. EXPLAIN
// renders the decision as Join[broadcast|copartition|pairs] with
// estimated and actual pair/task counts, through the DSL, Piglet
// EXPLAIN and the server's explain endpoints alike.
//
// Explain returns the plan as an indented tree: each operator with
// estimated cost and cardinality, the decisions taken (chosen index
// mode, pruned-partition count, predicate order) and, because Explain
// executes the chain, the actual cardinality and engine metrics:
//
//	Filter[containedby env=[15 15 35 35] ...] est_rows=2.6 cost=433.1 act_rows=8
//	  · index=none scan chosen (scan_cost=433.1 index_cost=840.2)
//	  · pruned 3/4 partitions (stats MBR/time), input_rows=75
//	  · pred_order=[1(sel=0.0312) 0(sel=0.2776)]
//	  · actual: rows=8 elements_scanned=83 index_probes=0 candidates_refined=0
//	  Scan[parallelize] est_rows=300 act_rows=300
//
// Optimize(false) opts a chain out: filters run in caller order as
// fused scans with partitioner-extent pruning only, exactly the
// pre-planner behaviour (the `optimizer` bench measures the gap).
// Dataset.Stats exposes the collected summary; the web front end
// serves the plan as JSON via POST /api/explain, and the Piglet
// dialect gains an EXPLAIN statement whose output is pinned by
// golden-file tests.
//
// # Plan fingerprints and the query service
//
// Every chain built from named predicates has a plan fingerprint
// (Dataset.Fingerprint): 16 hex digits hashing the canonical plan
// lineage, the pending predicates, the optimizer and index settings,
// and the engine generation of the resolved base dataset. Equal
// fingerprint means "the same logical query over the same physical
// data", so a fingerprint can key a result cache; because a re-built
// base carries a fresh generation, re-registering a dataset
// invalidates every old entry by construction rather than by
// explicit purge. Chains through opaque closures (Where,
// FilterValues, MapValues, ReKey) refuse to fingerprint — a key that
// ignored a closure could alias two different queries.
//
// internal/server builds the serving stack on top: a catalog of named
// datasets (register/list/drop over HTTP, each with its own
// partitioner recipe, index mode and statistics), an LRU result cache
// keyed by fingerprint with a byte budget, an admission-controlled
// worker pool (bounded slots, bounded deadline-limited queue, HTTP
// 429/503 on overload), and NDJSON streaming straight off the fused
// pipelines via Dataset.StreamParallelContext, which cancels the scan
// when the client disconnects. A cache hit is served from stored
// bytes with zero engine work. A "join" clause on /api/v1/query
// joins the (optionally filtered) dataset against another catalog
// dataset with any strategy hint and streams the pairs; join results
// bypass the cache, since each run materialises a fresh result
// dataset whose fingerprint could never repeat. cmd/starkd is the
// executable; stark-bench's `service` experiment measures p50/p99
// latency and hit rate through real HTTP, and its `join` experiment
// sweeps strategy × layout × selectivity into BENCH_join.json.
//
// # Mutable live datasets
//
// MutableDataset (backed by internal/live) lifts the
// immutable-after-registration restriction: Insert, Upsert and
// Delete batches land while queries run. Each partition holds a
// concurrency-safe R-tree in the R-link style — per-node locks with
// right-sibling pointers, so a reader that arrives mid-split chases
// the sibling pointer instead of restarting — and every entry
// carries the generations it was added and deleted at, so a reader
// pinned to generation G sees exactly the records live at G.
//
// The mutation lifecycle:
//
//   - a batch is validated first (duplicate IDs, inserting a live ID,
//     empty geometry reject the whole batch with nothing applied),
//     then applied and published atomically as the next generation;
//   - Snapshot() pins the latest generation as an ordinary Dataset:
//     repeatable reads regardless of later batches, planner-driven
//     filters over incrementally maintained statistics (exact counts,
//     grow-only MBR/temporal extents — no rescan per batch), direct
//     probes of the concurrent trees for index-eligible predicates,
//     and a LiveScan[name gen=N] leaf in EXPLAIN;
//   - snapshots of one generation share one view, so plan
//     fingerprints are stable and result caches keep hitting; a new
//     generation yields a fresh lineage, making every older
//     fingerprint unmatchable. Cache and statistics invalidation are
//     structural, never timed.
//
// Deletes are tombstones; a vacuum rebuilds a partition tree when
// dead entries outweigh live ones, invisibly to pinned snapshots.
// The server exposes the whole lifecycle over HTTP: register with
// "mutable": true, POST NDJSON mutation batches to /api/v1/ingest
// (one request = one atomic batch = one generation; a bad line
// rejects the whole batch), DELETE single records by ID, and read
// generation-fresh statistics from the catalog endpoints. The
// `mutation` bench experiment measures ingest throughput, the
// ingest+query blend and batched deletes into BENCH_mutation.json.
//
// # Durability
//
// starkd -data-dir makes the service crash-safe (internal/wal plus
// the server's checkpoint machinery). Registrations, drops and ingest
// batches are appended to a CRC32C-framed write-ahead log and fsync'd
// before they are acknowledged — an ingest ack is a durability
// receipt for exactly that generation. Checkpoints (periodic and at
// graceful shutdown) rotate the log and snapshot every dataset — a
// mutable dataset becomes a checksummed rows segment plus a
// serialized R-tree whose entry count cross-checks the rows on
// restore, captured through a writer barrier so no logged batch is
// missed, a generated dataset just its spec — behind atomic
// temp+fsync+rename manifests. The newest two checkpoints and the
// WAL suffix of the older are retained, so one rotted manifest
// degrades to recovering from the previous checkpoint. Recovery
// loads the newest valid manifest (corrupt ones are skipped) and
// replays the WAL suffix through the same validation and generation
// paths as live ingest: idempotent by generation number, stopping
// cleanly at a torn tail of the newest segment, erroring loudly on
// damage anywhere older (acknowledged records would be lost), never
// resurrecting an unacknowledged batch, and erroring on generation
// gaps. The torn-write and bit-flip batteries
// in internal/wal and internal/server cut the log at every byte
// boundary and flip random bits; recovery must always come back with
// exactly the acknowledged prefix. The `durability` bench experiment
// prices the fsync per batch (WAL on vs off) and times replay vs
// checkpoint recovery into BENCH_durability.json.
//
// # Observability
//
// Engine counters are attributed per query: every Dataset chain
// carries a job recorder that charges the work it causes — elements
// scanned, index probes, tasks launched and skipped, shuffle volume —
// to that query exactly, and to the context totals as well. The
// attribution stays exact under concurrency (a -race regression test
// pins solo runs against concurrent ones); work shared across
// queries by design (statistics collection, columnar layout builds,
// index construction, live ingestion) is charged to the context
// totals only.
//
// Dataset.Trace() returns the chain's execution trace as a
// plan.TraceNode tree: one child per executed phase (plan, collect,
// stream, count, knn, ...) with wall time, rows and the per-query
// counter deltas, and the executed plan tree grafted under the first
// phase so the operators the planner chose appear with their actual
// cardinalities. Trace().Render() prints an indented tree; phase
// recording is always on and costs two counter snapshots per action,
// so EXPLAIN output and untraced behaviour are unchanged.
//
// The query service exposes the same at the HTTP layer: a query with
// "trace": true returns the trace in its NDJSON summary line
// (bypassing the result cache in both directions, so the trace
// always describes a real execution); GET /metrics serves a
// Prometheus text exposition (internal/obs, stdlib-only) with
// per-route latency histograms, cache, admission and engine
// counters; GET /api/service reports the same as JSON. Every
// response carries an X-Request-Id, requests log through log/slog,
// and starkd's -slow-query-ms flag warns on slow requests with the
// offending query's trace one-liner attached (-pprof mounts
// net/http/pprof).
//
// The implementation below the DSL lives in internal/ and is not part
// of the API:
//
//   - internal/engine    — a Spark-core stand-in: partitioned, lazily
//     evaluated datasets with a parallel task scheduler and shuffle;
//   - internal/dfs       — a simulated HDFS block store;
//   - internal/geom      — the JTS-subset geometry kernel (WKT,
//     predicates, distances);
//   - internal/temporal  — instants, intervals and temporal predicates;
//   - internal/stobject  — the STObject data type with the paper's
//     combined spatio-temporal predicate semantics;
//   - internal/partition — grid, cost-based BSP, tile and Voronoi
//     spatial partitioners with extent bookkeeping;
//   - internal/index     — the STR-packed R-tree with kNN and
//     persistence;
//   - internal/wal       — the append-only CRC32C-framed write-ahead
//     log and the checksummed/atomic file-write primitives under the
//     durability layer;
//   - internal/colstore  — the columnar scan sidecar: SoA
//     envelope/interval columns, Hilbert row order, batched
//     branch-free filter kernels over survivor bitsets;
//   - internal/live      — the mutable-dataset substrate: concurrent
//     R-link trees, generation-tagged visibility, snapshots and
//     batch application;
//   - internal/core      — the eager operator layer the DSL drives
//     (filters, joins, kNN, the indexing modes, DBSCAN entry point);
//   - internal/stats     — one-pass dataset statistics for the
//     planner (per-partition MBRs, counts, temporal extents, grid
//     histogram);
//   - internal/plan      — the cost-based planner: predicate algebra,
//     cost model, rewrite decisions and the EXPLAIN tree;
//   - internal/cluster   — sequential and MR-DBSCAN-style distributed
//     DBSCAN;
//   - internal/baselines — GeoSpark- and SpatialSpark-style join
//     strategies for the Figure 4 comparison;
//   - internal/piglet    — the Pig Latin derivative of the demo;
//   - internal/obs       — the dependency-free metrics kernel:
//     counters, gauges, quantile-estimating histograms and the
//     Prometheus text exposition behind GET /metrics;
//   - internal/server    — the multi-dataset query service (catalog,
//     result cache, admission control, NDJSON streaming, telemetry)
//     and the demo web front end;
//   - internal/bench     — the experiment harness regenerating the
//     paper's evaluation.
//
// See README.md for the DSL tour and the Scala-vs-Go comparison, and
// the examples/ directory for complete programs.
package stark
