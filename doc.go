// Package stark is a from-scratch Go reproduction of STARK, the
// spatio-temporal data processing framework for Apache Spark
// presented in "Efficient spatio-temporal event processing with
// STARK" (Hagedorn & Räth, EDBT 2017).
//
// The repository contains the full stack the paper builds on or
// evaluates against, re-implemented on the Go standard library:
//
//   - internal/engine    — a Spark-core stand-in: partitioned, lazily
//     evaluated datasets with a parallel task scheduler and shuffle;
//   - internal/dfs       — a simulated HDFS block store;
//   - internal/geom      — the JTS-subset geometry kernel (WKT,
//     predicates, distances);
//   - internal/temporal  — instants, intervals and temporal predicates;
//   - internal/stobject  — the STObject data type with the paper's
//     combined spatio-temporal predicate semantics;
//   - internal/partition — grid, cost-based BSP, tile and Voronoi
//     spatial partitioners with extent bookkeeping;
//   - internal/index     — the STR-packed R-tree with kNN and
//     persistence;
//   - internal/core      — the STARK operator surface (filters, joins,
//     kNN, the three indexing modes, DBSCAN entry point);
//   - internal/cluster   — sequential and MR-DBSCAN-style distributed
//     DBSCAN;
//   - internal/baselines — GeoSpark- and SpatialSpark-style join
//     strategies for the Figure 4 comparison;
//   - internal/piglet    — the Pig Latin derivative of the demo;
//   - internal/server    — the web front end;
//   - internal/bench     — the experiment harness regenerating the
//     paper's evaluation.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// substitutions, and EXPERIMENTS.md for the reproduced evaluation.
package stark
