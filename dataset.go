package stark

// This file implements the fluent query builder of the public DSL:
// Dataset[V], the Go equivalent of STARK's implicit conversion from
// RDD[(STObject, V)] to the spatial operator surface.
//
// Every transformation returns a new *Dataset[V] immediately and
// defers its work (and its errors) into a resolve thunk; nothing runs
// until a terminal action (Collect, Count, KNN, Run, ...). The first
// step that fails is the error the action reports, annotated with the
// step name — so chains read exactly like the Scala DSL without
// per-step error plumbing:
//
//	hits, err := stark.Parallelize(ctx, pairs).
//		PartitionBy(stark.BSP(1024)).
//		Index(stark.Live(5)).
//		Intersects(q).
//		Collect()
//
// Resolution is memoised: a Dataset resolves at most once, so a
// shared upstream (a partitioned, indexed base serving many queries)
// pays its shuffle and index build a single time.

import (
	"fmt"
	"sync"

	"stark/internal/core"
	"stark/internal/engine"
	"stark/internal/geom"
)

// state is the resolved form of a Dataset: the engine-level spatial
// dataset, the optional partition indexes, the configured index mode,
// and the pruning envelopes accumulated by lazy filters.
type state[V any] struct {
	sds  *core.SpatialDataset[V]   // always set on success
	idx  *core.IndexedDataset[V]   // set when mode is live/persistent
	mode IndexMode
	// pruneEnvs are the envelopes of pending scan filters; a
	// partition whose extent misses any of them cannot contribute to
	// the result, so actions skip it (the paper's partition pruning).
	pruneEnvs []geom.Envelope
}

// Dataset is a lazily evaluated spatio-temporal query over records of
// (STObject, V). Build one with Parallelize, derive new ones with the
// transformation methods, and execute with an action.
//
// A Dataset carries any error produced while building the chain and
// surfaces it at the action; transformations on a failed Dataset are
// no-ops that preserve the first error.
type Dataset[V any] struct {
	ctx     *Context
	resolve func() (state[V], error)
}

// newDataset wraps a resolve step with memoisation.
func newDataset[V any](ctx *Context, step func() (state[V], error)) *Dataset[V] {
	var (
		once sync.Once
		st   state[V]
		err  error
	)
	return &Dataset[V]{ctx: ctx, resolve: func() (state[V], error) {
		once.Do(func() { st, err = step() })
		return st, err
	}}
}

// chain derives a Dataset whose resolution applies step to the
// receiver's resolved state. Errors from upstream pass through
// untouched (they already carry their own step annotation); errors
// from this step are annotated with name.
func (d *Dataset[V]) chain(name string, step func(st state[V]) (state[V], error)) *Dataset[V] {
	parent := d.resolve
	return newDataset(d.ctx, func() (state[V], error) {
		st, err := parent()
		if err != nil {
			return state[V]{}, err
		}
		out, err := step(st)
		if err != nil {
			return state[V]{}, fmt.Errorf("stark: %s: %w", name, err)
		}
		return out, nil
	})
}

// Parallelize lifts in-memory records into a Dataset — the DSL's
// entry point, standing in for the Scala implicit conversion. The
// optional numPartitions overrides the context parallelism. The slice
// is not copied; do not mutate it while queries run.
func Parallelize[V any](ctx *Context, records []Tuple[V], numPartitions ...int) *Dataset[V] {
	n := 0
	if len(numPartitions) > 0 {
		n = numPartitions[0]
	}
	return newDataset(ctx, func() (state[V], error) {
		return state[V]{sds: core.Wrap(engine.Parallelize(ctx, records, n))}, nil
	})
}

// Context returns the execution context of the dataset.
func (d *Dataset[V]) Context() *Context { return d.ctx }

// ---- Transformations ----

// PartitionBy shuffles the dataset with a spatial partitioner built
// by the given constructor (Grid, BSP, Voronoi, or WithPartitioner
// for a pre-built one). The configured index mode, if any, is
// re-applied after the shuffle so PartitionBy and Index compose in
// either order.
func (d *Dataset[V]) PartitionBy(p Partitioner) *Dataset[V] {
	return d.chain("partitionBy", func(st state[V]) (state[V], error) {
		// Data-driven recipes (Grid, BSP, Voronoi) need the keys; in
		// that case materialise the upstream once — honouring pending
		// partition pruning — and shuffle the materialised rows, so
		// the lineage is not computed a second time by the shuffle.
		var rows []Tuple[V]
		collected := false
		sp, err := p.build(func() ([]STObject, error) {
			var err error
			if visit, ok := st.prunedVisit(d.ctx); ok {
				rows, err = st.sds.Dataset().CollectPartitions(visit)
			} else {
				rows, err = st.sds.Collect()
			}
			if err != nil {
				return nil, err
			}
			collected = true
			keys := make([]STObject, len(rows))
			for i, kv := range rows {
				keys[i] = kv.Key
			}
			return keys, nil
		})
		if err != nil {
			return state[V]{}, err
		}
		base := st.sds
		if collected {
			base = core.Wrap(engine.Parallelize(d.ctx, rows, st.sds.NumPartitions()))
		}
		parted, err := base.PartitionBy(sp)
		if err != nil {
			return state[V]{}, err
		}
		return applyMode(d.ctx, state[V]{sds: parted, mode: st.mode})
	})
}

// Index configures the dataset's indexing mode — the paper's three
// modes behind one call: NoIndexing scans, Live(order) builds
// per-partition R-trees on every query, Persistent(order)
// materialises them once and reuses them across queries. Subsequent
// filter and kNN operators use whatever mode is configured.
func (d *Dataset[V]) Index(m IndexMode) *Dataset[V] {
	return d.chain("index", func(st state[V]) (state[V], error) {
		if err := m.validate(); err != nil {
			return state[V]{}, err
		}
		st.mode = m
		return applyMode(d.ctx, st)
	})
}

// applyMode (re)builds the partition indexes demanded by st.mode.
func applyMode[V any](ctx *Context, st state[V]) (state[V], error) {
	switch st.mode.kind {
	case modeNone:
		st.idx = nil
	case modeLive:
		idx, err := st.sds.LiveIndex(st.mode.order, nil)
		if err != nil {
			return state[V]{}, err
		}
		st.idx = idx
	case modePersistent:
		idx, err := st.sds.Index(st.mode.order, nil)
		if err != nil {
			return state[V]{}, err
		}
		st.idx = idx
	}
	return st, nil
}

// Cache marks the underlying data for in-memory materialisation, so
// repeated actions on the same chain compute each partition once.
func (d *Dataset[V]) Cache() *Dataset[V] {
	return d.chain("cache", func(st state[V]) (state[V], error) {
		st.sds.Cache()
		return st, nil
	})
}

// Where keeps the records whose key satisfies pred against q. With an
// index configured, the partition trees are probed with q's envelope
// (expanded by pruneExpand) and candidates refined exactly; without
// one the filter is folded into the scan lineage and q's envelope is
// remembered for partition pruning at the action. pruneExpand must
// cover how far a matching record's envelope can lie outside q's
// (pass the distance for distance predicates, 0 otherwise).
func (d *Dataset[V]) Where(q STObject, pred Predicate, pruneExpand float64) *Dataset[V] {
	return d.where("where", q, pred, pruneExpand)
}

func (d *Dataset[V]) where(name string, q STObject, pred Predicate, pruneExpand float64) *Dataset[V] {
	return d.chain(name, func(st state[V]) (state[V], error) {
		if q.IsEmpty() {
			return state[V]{}, fmt.Errorf("empty query object")
		}
		if pred == nil {
			return state[V]{}, fmt.Errorf("nil predicate")
		}
		pruneEnv := q.Envelope().ExpandBy(pruneExpand)
		if st.idx != nil {
			// Indexed probe + exact refinement. The result is a plain
			// in-memory dataset: like the Scala DSL, an indexed
			// operator yields an unindexed RDD.
			rows, err := st.idx.Filter(q, pruneEnv, pred)
			if err != nil {
				return state[V]{}, err
			}
			return state[V]{sds: core.Wrap(engine.Parallelize(d.ctx, rows, 0))}, nil
		}
		st.sds = st.sds.Where(q, pred)
		st.pruneEnvs = append(st.pruneEnvs[:len(st.pruneEnvs):len(st.pruneEnvs)], pruneEnv)
		st.mode = NoIndexing
		return st, nil
	})
}

// Intersects keeps the records whose key intersects q in the combined
// spatio-temporal semantics.
func (d *Dataset[V]) Intersects(q STObject) *Dataset[V] {
	return d.where("intersects", q, Intersects, 0)
}

// Contains keeps the records whose key completely contains q.
func (d *Dataset[V]) Contains(q STObject) *Dataset[V] {
	return d.where("contains", q, Contains, 0)
}

// ContainedBy keeps the records whose key is completely contained by
// q — the paper's events.containedBy(qry).
func (d *Dataset[V]) ContainedBy(q STObject) *Dataset[V] {
	return d.where("containedBy", q, ContainedBy, 0)
}

// CoveredBy is ContainedBy with boundary tolerance.
func (d *Dataset[V]) CoveredBy(q STObject) *Dataset[V] {
	return d.where("coveredBy", q, CoveredBy, 0)
}

// WithinDistance keeps the records whose key lies within maxDist of q
// under df (nil selects the exact planar distance).
func (d *Dataset[V]) WithinDistance(q STObject, maxDist float64, df DistanceFunc) *Dataset[V] {
	return d.where("withinDistance", q, WithinDistancePredicate(maxDist, df), maxDist)
}

// FilterValues keeps the records whose payload satisfies keep. The
// spatial partitioner and any pending pruning survive: a payload
// filter never moves a record between partitions.
func (d *Dataset[V]) FilterValues(keep func(V) bool) *Dataset[V] {
	return d.chain("filterValues", func(st state[V]) (state[V], error) {
		if keep == nil {
			return state[V]{}, fmt.Errorf("nil filter")
		}
		filtered := st.sds.Dataset().Filter(func(kv Tuple[V]) bool { return keep(kv.Value) })
		wrapped, err := core.WrapPartitioned(filtered, st.sds.Partitioner())
		if err != nil {
			return state[V]{}, err
		}
		st.sds = wrapped
		st.mode = NoIndexing
		st.idx = nil
		return st, nil
	})
}

// Sample keeps each record with the given probability,
// deterministically derived from seed. Partitioning and pending
// pruning survive: sampling never moves a record.
func (d *Dataset[V]) Sample(fraction float64, seed int64) *Dataset[V] {
	return d.chain("sample", func(st state[V]) (state[V], error) {
		if fraction < 0 || fraction > 1 {
			return state[V]{}, fmt.Errorf("fraction %v outside [0, 1]", fraction)
		}
		sampled, err := core.WrapPartitioned(st.sds.Dataset().Sample(fraction, seed), st.sds.Partitioner())
		if err != nil {
			return state[V]{}, err
		}
		st.sds = sampled
		st.mode = NoIndexing
		st.idx = nil
		return st, nil
	})
}

// MapValues transforms the payloads, preserving keys, partitioning
// and pending pruning.
func MapValues[V, W any](d *Dataset[V], f func(V) W) *Dataset[W] {
	parent := d.resolve
	return newDataset(d.ctx, func() (state[W], error) {
		st, err := parent()
		if err != nil {
			return state[W]{}, err
		}
		return state[W]{
			sds:       core.MapDatasetValues(st.sds, f),
			pruneEnvs: st.pruneEnvs,
		}, nil
	})
}

// ReKey replaces the spatio-temporal key of every record. The
// partitioner, indexes and pending pruning are dropped: new keys need
// not respect the old layout. Repartition afterwards if needed.
func ReKey[V any](d *Dataset[V], f func(key STObject, v V) STObject) *Dataset[V] {
	return d.chain("reKey", func(st state[V]) (state[V], error) {
		return state[V]{sds: core.ReKey(st.sds, f)}, nil
	})
}

// ---- Actions ----

// force resolves the chain, reporting the first deferred error.
func (d *Dataset[V]) force() (state[V], error) {
	return d.resolve()
}

// Run executes the chain for its side effects (shuffles, index
// builds, caching) and reports the first deferred error. Useful to
// warm a shared base dataset or to surface chain errors eagerly.
func (d *Dataset[V]) Run() error {
	_, err := d.force()
	return err
}

// enumerateViaIndex reports whether record-enumerating actions
// (Collect, Count, Take, Foreach) should read through the index.
// Only worthwhile for Persistent mode, where the materialised
// partitions spare recomputing the base lineage; in Live mode the
// index is rebuilt per job, so enumerating through it would pay a
// full R-tree build for a plain scan result — sds holds the identical
// records tree-free.
func (st *state[V]) enumerateViaIndex() bool {
	return st.idx != nil && st.mode.kind == modePersistent
}

// prunedVisit returns the partitions an action must visit once the
// pending filter envelopes are applied, or ok=false when no pruning
// applies.
func (st *state[V]) prunedVisit(ctx *Context) (visit []int, ok bool) {
	sp := st.sds.Partitioner()
	if sp == nil || len(st.pruneEnvs) == 0 {
		return nil, false
	}
	n := st.sds.NumPartitions()
	for i := 0; i < n; i++ {
		ext := sp.Extent(i)
		hit := true
		for _, env := range st.pruneEnvs {
			if !ext.Intersects(env) {
				hit = false
				break
			}
		}
		if hit {
			visit = append(visit, i)
		}
	}
	if pruned := n - len(visit); pruned > 0 {
		ctx.Metrics().TasksSkipped.Add(int64(pruned))
	}
	return visit, true
}

// Collect materialises the query result.
func (d *Dataset[V]) Collect() ([]Tuple[V], error) {
	st, err := d.force()
	if err != nil {
		return nil, err
	}
	if st.enumerateViaIndex() {
		return st.idx.Collect()
	}
	if visit, ok := st.prunedVisit(d.ctx); ok {
		return st.sds.Dataset().CollectPartitions(visit)
	}
	return st.sds.Collect()
}

// Count returns the number of result records.
func (d *Dataset[V]) Count() (int64, error) {
	st, err := d.force()
	if err != nil {
		return 0, err
	}
	if st.enumerateViaIndex() {
		return st.idx.Count()
	}
	if visit, ok := st.prunedVisit(d.ctx); ok {
		return st.sds.Dataset().CountPartitions(visit)
	}
	return st.sds.Count()
}

// Take returns up to n result records, scanning partitions in order.
// The scan is fused and short-circuiting: partition pipelines stop
// mid-stream once n records are gathered, partitions pruned by
// pending filters are never touched, and later partitions are not
// scheduled at all.
func (d *Dataset[V]) Take(n int) ([]Tuple[V], error) {
	st, err := d.force()
	if err != nil {
		return nil, err
	}
	if st.enumerateViaIndex() {
		return st.idx.Flat().Take(n)
	}
	if n <= 0 {
		return nil, nil
	}
	if visit, ok := st.prunedVisit(d.ctx); ok {
		return st.sds.Dataset().TakePartitions(visit, n)
	}
	return st.sds.Dataset().Take(n)
}

// First returns the first result record in partition order, ok=false
// when the result is empty. The pipeline stops at the very first
// record produced.
func (d *Dataset[V]) First() (Tuple[V], bool, error) {
	out, err := d.Take(1)
	if err != nil || len(out) == 0 {
		var zero Tuple[V]
		return zero, false, err
	}
	return out[0], true, nil
}

// Exists reports whether any result record satisfies pred. Partitions
// are scanned in parallel and every task stops mid-stream as soon as
// one finds a match; pruned partitions are never touched.
func (d *Dataset[V]) Exists(pred func(Tuple[V]) bool) (bool, error) {
	if pred == nil {
		return false, fmt.Errorf("stark: exists: nil predicate")
	}
	st, err := d.force()
	if err != nil {
		return false, err
	}
	if st.enumerateViaIndex() {
		return st.idx.Flat().Exists(pred)
	}
	if visit, ok := st.prunedVisit(d.ctx); ok {
		return st.sds.Dataset().ExistsPartitions(visit, pred)
	}
	return st.sds.Dataset().Exists(pred)
}

// Reduce combines all result records with f, streaming each partition
// through a local accumulator; ok is false when the result is empty.
// Pruned partitions are skipped. f must be associative and
// commutative.
func (d *Dataset[V]) Reduce(f func(a, b Tuple[V]) Tuple[V]) (Tuple[V], bool, error) {
	var zero Tuple[V]
	if f == nil {
		return zero, false, fmt.Errorf("stark: reduce: nil reducer")
	}
	st, err := d.force()
	if err != nil {
		return zero, false, err
	}
	if st.enumerateViaIndex() {
		return st.idx.Flat().Reduce(f)
	}
	if visit, ok := st.prunedVisit(d.ctx); ok {
		return st.sds.Dataset().ReducePartitions(visit, f)
	}
	return st.sds.Dataset().Reduce(f)
}

// Foreach runs fn on every result record, partition-parallel,
// streaming straight off the fused pipeline. Pruned partitions are
// skipped.
func (d *Dataset[V]) Foreach(fn func(Tuple[V])) error {
	if fn == nil {
		return fmt.Errorf("stark: foreach: nil fn")
	}
	st, err := d.force()
	if err != nil {
		return err
	}
	if st.enumerateViaIndex() {
		return st.idx.Flat().Foreach(fn)
	}
	if visit, ok := st.prunedVisit(d.ctx); ok {
		return st.sds.Dataset().ForeachPartitions(visit, fn)
	}
	return st.sds.Dataset().Foreach(fn)
}

// Stream drives every result record through fn sequentially, in
// partition order, without materialising the result; fn returning
// false stops the scan. Pruned partitions are skipped. This is the
// action behind streaming consumers such as the GeoJSON HTTP
// endpoint, which encodes rows onto the socket as they leave the
// pipeline.
func (d *Dataset[V]) Stream(fn func(Tuple[V]) bool) error {
	if fn == nil {
		return fmt.Errorf("stark: stream: nil consumer")
	}
	st, err := d.force()
	if err != nil {
		return err
	}
	if st.enumerateViaIndex() {
		return st.idx.Flat().Stream(fn)
	}
	if visit, ok := st.prunedVisit(d.ctx); ok {
		return st.sds.Dataset().StreamPartitions(visit, fn)
	}
	return st.sds.Dataset().Stream(fn)
}

// StreamParallel is Stream with partition-parallel compute: rows
// still reach fn sequentially in partition order, but the partition
// pipelines run as parallel jobs in bounded windows, buffering at
// most one window of partitions. Prefer it when the consumer is
// cheap relative to the scan (the GeoJSON endpoint encodes rows onto
// the socket this way); prefer Stream when nothing may be buffered.
func (d *Dataset[V]) StreamParallel(fn func(Tuple[V]) bool) error {
	if fn == nil {
		return fmt.Errorf("stark: streamParallel: nil consumer")
	}
	st, err := d.force()
	if err != nil {
		return err
	}
	if st.enumerateViaIndex() {
		return st.idx.Flat().StreamParallel(fn)
	}
	if visit, ok := st.prunedVisit(d.ctx); ok {
		return st.sds.Dataset().StreamPartitionsParallel(visit, 0, fn)
	}
	return st.sds.Dataset().StreamParallel(fn)
}

// NumPartitions resolves the chain and returns the partition count.
func (d *Dataset[V]) NumPartitions() (int, error) {
	st, err := d.force()
	if err != nil {
		return 0, err
	}
	return st.sds.NumPartitions(), nil
}

// Partitioner resolves the chain and returns the spatial partitioner,
// or nil when the data is not spatially partitioned.
func (d *Dataset[V]) Partitioner() (SpatialPartitioner, error) {
	st, err := d.force()
	if err != nil {
		return nil, err
	}
	return st.sds.Partitioner(), nil
}

// CountBy counts the result records per key derived by key —
// partition-parallel, the DSL's GROUP ... COUNT.
func CountBy[V any, K comparable](d *Dataset[V], key func(Tuple[V]) K) (map[K]int64, error) {
	st, err := d.force()
	if err != nil {
		return nil, err
	}
	pairs := engine.Map(st.sds.Dataset(), func(kv Tuple[V]) engine.Pair[K, int64] {
		return engine.NewPair(key(kv), int64(1))
	})
	counts, err := engine.CountByKey(pairs)
	if err != nil {
		return nil, fmt.Errorf("stark: countBy: %w", err)
	}
	return counts, nil
}

// Neighbor is one kNN result record with its distance to the query.
type Neighbor[V any] = core.NeighborResult[V]

// KNN returns the k records nearest to q, sorted by ascending
// distance, under the optional df (omitted = exact planar distance).
// With an index configured the partition trees answer the search;
// either way partitions provably farther than the current k-th
// neighbour are pruned.
func (d *Dataset[V]) KNN(q STObject, k int, df ...DistanceFunc) ([]Neighbor[V], error) {
	var dist DistanceFunc
	if len(df) > 0 {
		dist = df[0]
	}
	st, err := d.force()
	if err != nil {
		return nil, err
	}
	if st.idx != nil {
		nbrs, err := st.idx.KNN(q, k, dist)
		if err != nil {
			return nil, fmt.Errorf("stark: kNN: %w", err)
		}
		return nbrs, nil
	}
	nbrs, err := st.sds.KNN(q, k, dist)
	if err != nil {
		return nil, fmt.Errorf("stark: kNN: %w", err)
	}
	return nbrs, nil
}

// ClusterOptions configures the Cluster action.
type ClusterOptions = core.ClusterOptions

// ClusteredRecord pairs an input record with its DBSCAN label
// (ClusterNoise for noise points).
type ClusteredRecord[V any] = core.ClusteredRecord[V]

// Cluster runs distributed DBSCAN over the query result and returns
// one labelled record per input record plus the number of clusters.
func (d *Dataset[V]) Cluster(opts ClusterOptions) ([]ClusteredRecord[V], int, error) {
	st, err := d.force()
	if err != nil {
		return nil, 0, err
	}
	recs, n, err := st.sds.Cluster(opts)
	if err != nil {
		return nil, 0, fmt.Errorf("stark: cluster: %w", err)
	}
	return recs, n, nil
}
