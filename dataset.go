package stark

// This file implements the fluent query builder of the public DSL:
// Dataset[V], the Go equivalent of STARK's implicit conversion from
// RDD[(STObject, V)] to the spatial operator surface.
//
// Every transformation returns a new *Dataset[V] immediately and
// defers its work (and its errors) into a resolve thunk; nothing runs
// until a terminal action (Collect, Count, KNN, Run, ...). The first
// step that fails is the error the action reports, annotated with the
// step name — so chains read exactly like the Scala DSL without
// per-step error plumbing:
//
//	hits, err := stark.Parallelize(ctx, pairs).
//		PartitionBy(stark.BSP(1024)).
//		Index(stark.Live(5)).
//		Intersects(q).
//		Collect()
//
// Resolution is memoised: a Dataset resolves at most once, so a
// shared upstream (a partitioned, indexed base serving many queries)
// pays its shuffle and index build a single time.

import (
	"context"
	"fmt"
	"sync"

	"stark/internal/attr"
	"stark/internal/core"
	"stark/internal/engine"
	"stark/internal/geom"
	"stark/internal/plan"
)

// state is the resolved form of a Dataset: the engine-level spatial
// dataset, the optional partition indexes, the configured index mode,
// the scan filters still awaiting compilation, and the pruning
// envelopes of filters already folded into the lineage.
type state[V any] struct {
	sds  *core.SpatialDataset[V] // always set on success
	idx  *core.IndexedDataset[V] // set when mode is live/persistent
	mode IndexMode
	// pruneEnvs are the envelopes of folded scan filters; a partition
	// whose extent misses any of them cannot contribute to the
	// result, so actions skip it (the paper's partition pruning).
	pruneEnvs []geom.Envelope
	// pending are the scan filters not yet folded into the lineage.
	// Record-enumerating actions hand them to the cost-based planner
	// (predicate reordering, stats-based pruning, index-mode choice);
	// every other consumer folds them in caller order via flush.
	pending []pendingPred
	// noOpt disables the planner (Optimize(false)): pending filters
	// fold in caller order with partitioner-extent pruning only.
	noOpt bool
	// schema is the registered attribute schema (WithSchema): the typed
	// field extractors attribute filters compile against.
	schema *attr.Schema[V]
	// base is the EXPLAIN lineage of everything below the pending
	// filters.
	base *plan.Node
	// liveProbe, when set, probes the concurrent R-link trees of a
	// mutable-dataset snapshot (see MutableDataset.Snapshot): the
	// planner treats the chain as already indexed and answers filters
	// straight from the live trees instead of building a transient
	// R-tree over the streamed rows. It describes the UNFILTERED
	// snapshot, so flush drops it as soon as a predicate is folded
	// into the lineage. The refine callback sees the payload too, so
	// typed attribute predicates can refine candidates inline.
	liveProbe func(rec *engine.Recorder, pruneEnv geom.Envelope, refine func(key STObject, v V) bool, visit []int) ([]Tuple[V], error)
	// liveAttrProbe, when set, answers an attribute-first probe from
	// the generation-tagged field postings a mutable dataset maintains
	// across mutation batches. Like liveProbe it describes the
	// unfiltered snapshot and is dropped by flush.
	liveAttrProbe func(rec *engine.Recorder, pred attr.Pred, refine func(key STObject, v V) bool, visit []int) ([]Tuple[V], error)
	// liveAttrHas reports whether the snapshot maintains postings for
	// a field; the planner treats fields it returns false for as
	// unindexed and compileAttr falls back to the sidecar build.
	liveAttrHas func(field string) bool
}

// withRecorder returns the state with recorder views of its spatial
// and indexed datasets, so every metric the chain's operators charge
// lands on rec (in addition to the context totals). The views share
// partitions, caches, statistics and sidecars with the originals.
func (st state[V]) withRecorder(rec *engine.Recorder) state[V] {
	if st.sds != nil {
		st.sds = st.sds.WithRecorder(rec)
	}
	if st.idx != nil {
		st.idx = st.idx.WithRecorder(rec)
	}
	return st
}

// pendingPred is one deferred scan filter: the execution closure plus
// the planner's description of it. opaque marks predicates whose
// behaviour is not fully described by (kind, query object) — a custom
// predicate or distance function — which therefore cannot be
// fingerprinted for result caching. attr, when non-nil, marks a typed
// attribute predicate instead of a spatial one: q/pred/info are unset
// and the predicate is fully described by its canonical text form.
type pendingPred struct {
	name   string
	q      STObject
	pred   Predicate
	info   plan.Pred
	opaque bool
	attr   *attr.Pred
}

// Dataset is a lazily evaluated spatio-temporal query over records of
// (STObject, V). Build one with Parallelize, derive new ones with the
// transformation methods, and execute with an action.
//
// A Dataset carries any error produced while building the chain and
// surfaces it at the action; transformations on a failed Dataset are
// no-ops that preserve the first error.
type Dataset[V any] struct {
	ctx     *Context
	resolve func() (state[V], error)

	// compileOnce memoises the planner's compilation of the resolved
	// state, so repeated actions on one Dataset plan (and count
	// pruned partitions) once.
	compileOnce sync.Once
	comp        compiled[V]
	compErr     error

	// flushOnce memoises the caller-order fold of pending filters, so
	// consumers that need the concrete filtered dataset (joins, kNN,
	// Stats) never execute an eager index probe or filter fold twice.
	flushOnce sync.Once
	flushed   state[V]
	flushErr  error

	// recOnce memoises the per-job recorder: every metric an action on
	// this Dataset generates is attributed to it (and rolled into the
	// context totals), so Explain actuals, execution traces and the
	// query service report per-query counters that are exact even when
	// many queries share the context. See Context.NewJobRecorder.
	recOnce sync.Once
	jobRec  *engine.Recorder

	// phases are the recorded execution phases of this Dataset (plan
	// compilation plus every action run), assembled by Trace().
	traceMu sync.Mutex
	phases  []tracePhase
}

// jobRecorder returns the Dataset's per-job metrics recorder,
// creating it on first use.
func (d *Dataset[V]) jobRecorder() *engine.Recorder {
	d.recOnce.Do(func() { d.jobRec = d.ctx.NewJobRecorder() })
	return d.jobRec
}

// newDataset wraps a resolve step with memoisation.
func newDataset[V any](ctx *Context, step func() (state[V], error)) *Dataset[V] {
	var (
		once sync.Once
		st   state[V]
		err  error
	)
	return &Dataset[V]{ctx: ctx, resolve: func() (state[V], error) {
		once.Do(func() { st, err = step() })
		return st, err
	}}
}

// chain derives a Dataset whose resolution applies step to the
// receiver's resolved state. Errors from upstream pass through
// untouched (they already carry their own step annotation); errors
// from this step are annotated with name.
func (d *Dataset[V]) chain(name string, step func(st state[V]) (state[V], error)) *Dataset[V] {
	parent := d.resolve
	return newDataset(d.ctx, func() (state[V], error) {
		st, err := parent()
		if err != nil {
			return state[V]{}, err
		}
		out, err := step(st)
		if err != nil {
			return state[V]{}, fmt.Errorf("stark: %s: %w", name, err)
		}
		return out, nil
	})
}

// Parallelize lifts in-memory records into a Dataset — the DSL's
// entry point, standing in for the Scala implicit conversion. The
// optional numPartitions overrides the context parallelism. The slice
// is not copied; do not mutate it while queries run.
func Parallelize[V any](ctx *Context, records []Tuple[V], numPartitions ...int) *Dataset[V] {
	n := 0
	if len(numPartitions) > 0 {
		n = numPartitions[0]
	}
	return newDataset(ctx, func() (state[V], error) {
		sds := core.Wrap(engine.Parallelize(ctx, records, n))
		scan := plan.NewNode("Scan", "parallelize")
		scan.EstRows = float64(len(records))
		scan.ActRows = int64(len(records))
		scan.Prop("partitions=%d", sds.NumPartitions())
		return state[V]{sds: sds, base: scan}, nil
	})
}

// Context returns the execution context of the dataset.
func (d *Dataset[V]) Context() *Context { return d.ctx }

// ---- Transformations ----

// PartitionBy shuffles the dataset with a spatial partitioner built
// by the given constructor (Grid, BSP, Voronoi, or WithPartitioner
// for a pre-built one). The configured index mode, if any, is
// re-applied after the shuffle so PartitionBy and Index compose in
// either order.
func (d *Dataset[V]) PartitionBy(p Partitioner) *Dataset[V] {
	return d.chain("partitionBy", func(st state[V]) (state[V], error) {
		st, err := st.flush(d.ctx)
		if err != nil {
			return state[V]{}, err
		}
		// Data-driven recipes (Grid, BSP, Voronoi) need the keys; in
		// that case materialise the upstream once — honouring pending
		// partition pruning — and shuffle the materialised rows, so
		// the lineage is not computed a second time by the shuffle.
		var rows []Tuple[V]
		collected := false
		sp, err := p.build(func() ([]STObject, error) {
			var err error
			if visit, ok := st.prunedVisit(d.ctx.Recorder()); ok {
				rows, err = st.sds.Dataset().CollectPartitions(visit)
			} else {
				rows, err = st.sds.Collect()
			}
			if err != nil {
				return nil, err
			}
			collected = true
			keys := make([]STObject, len(rows))
			for i, kv := range rows {
				keys[i] = kv.Key
			}
			return keys, nil
		})
		if err != nil {
			return state[V]{}, err
		}
		base := st.sds
		if collected {
			base = core.Wrap(engine.Parallelize(d.ctx, rows, st.sds.NumPartitions()))
		}
		parted, err := base.PartitionBy(sp)
		if err != nil {
			return state[V]{}, err
		}
		node := plan.NewNode("Partition", p.String()).
			Prop("partitions=%d", parted.NumPartitions()).
			Add(st.base)
		return applyMode(d.ctx, state[V]{sds: parted, mode: st.mode, noOpt: st.noOpt, schema: st.schema, base: node})
	})
}

// Index configures the dataset's indexing mode — the paper's three
// modes behind one call: NoIndexing scans, Live(order) builds
// per-partition R-trees on every query, Persistent(order)
// materialises them once and reuses them across queries. Subsequent
// filter and kNN operators use whatever mode is configured.
func (d *Dataset[V]) Index(m IndexMode) *Dataset[V] {
	return d.chain("index", func(st state[V]) (state[V], error) {
		if err := m.validate(); err != nil {
			return state[V]{}, err
		}
		st, err := st.flush(d.ctx)
		if err != nil {
			return state[V]{}, err
		}
		st.mode = m
		st.base = plan.NewNode("Index", m.String()).Add(st.base)
		return applyMode(d.ctx, st)
	})
}

// applyMode (re)builds the partition indexes demanded by st.mode.
func applyMode[V any](ctx *Context, st state[V]) (state[V], error) {
	switch st.mode.kind {
	case modeNone:
		st.idx = nil
	case modeLive:
		idx, err := st.sds.LiveIndex(st.mode.order, nil)
		if err != nil {
			return state[V]{}, err
		}
		st.idx = idx
	case modePersistent:
		idx, err := st.sds.Index(st.mode.order, nil)
		if err != nil {
			return state[V]{}, err
		}
		st.idx = idx
	}
	return st, nil
}

// Cache marks the underlying data for in-memory materialisation, so
// repeated actions on the same chain compute each partition once.
func (d *Dataset[V]) Cache() *Dataset[V] {
	return d.chain("cache", func(st state[V]) (state[V], error) {
		st, err := st.flush(d.ctx)
		if err != nil {
			return state[V]{}, err
		}
		st.sds.Cache()
		return st, nil
	})
}

// Columnar builds the columnar scan sidecar with Hilbert row ordering
// — shorthand for ColumnarLayout(true), the layout the benchmarks
// favour for clustered data.
func (d *Dataset[V]) Columnar() *Dataset[V] { return d.ColumnarLayout(true) }

// ColumnarLayout extracts per-partition SoA envelope/interval columns
// so subsequent filters can run as batched coarse kernels with exact
// refinement of survivors only — the ColumnarScan access path in
// EXPLAIN, chosen by cost (Optimize(false) disables it along with the
// rest of the planner). hilbertSort additionally orders each
// partition's rows along a Hilbert curve of their envelope centers,
// making survivors of small-window queries contiguous in memory; pass
// false only to A/B the layout (the bench harness does).
//
// Like Cache, the sidecar describes the dataset at this point in the
// chain: pending filters are folded first, and later transformations
// return fresh datasets without a sidecar. For mutable datasets build
// it per snapshot — each generation is a new Dataset (the server
// catalog does this lazily per generation).
func (d *Dataset[V]) ColumnarLayout(hilbertSort bool) *Dataset[V] {
	return d.chain("columnar", func(st state[V]) (state[V], error) {
		st, err := st.flush(d.ctx)
		if err != nil {
			return state[V]{}, err
		}
		if err := st.sds.BuildColumnar(hilbertSort); err != nil {
			return state[V]{}, err
		}
		return st, nil
	})
}

// Where keeps the records whose key satisfies pred against q. The
// filter is deferred: at the action the cost-based planner orders
// pending predicates by estimated selectivity, prunes partitions from
// collected statistics, and picks scan vs index probe (see Explain;
// Optimize(false) restores caller order). pruneExpand must cover how
// far a matching record's envelope can lie outside q's (pass the
// distance for distance predicates, 0 otherwise).
func (d *Dataset[V]) Where(q STObject, pred Predicate, pruneExpand float64) *Dataset[V] {
	return d.where("where", plan.Custom, q, pred, pruneExpand, true)
}

func (d *Dataset[V]) where(name string, kind plan.PredKind, q STObject, pred Predicate, pruneExpand float64, opaque bool) *Dataset[V] {
	return d.chain(name, func(st state[V]) (state[V], error) {
		if q.IsEmpty() {
			return state[V]{}, fmt.Errorf("empty query object")
		}
		if pred == nil {
			return state[V]{}, fmt.Errorf("nil predicate")
		}
		pp := pendingPred{name: name, q: q, pred: pred, info: planPred(kind, q, pruneExpand), opaque: opaque}
		st.pending = append(st.pending[:len(st.pending):len(st.pending)], pp)
		return st, nil
	})
}

// planPred builds the planner's description of a predicate.
func planPred(kind plan.PredKind, q STObject, pruneExpand float64) plan.Pred {
	p := plan.Pred{
		Kind:     kind,
		Env:      q.Envelope(),
		Expand:   pruneExpand,
		Vertices: vertexCount(q.Geo()),
	}
	if iv, ok := q.Time(); ok {
		p.HasTime = true
		p.Begin, p.End = int64(iv.Start), int64(iv.End)
	}
	return p
}

// vertexCount returns the vertex count of a geometry — the planner's
// refinement-cost proxy.
func vertexCount(g Geometry) int {
	switch t := g.(type) {
	case Point:
		return 1
	case geom.MultiPoint:
		return t.NumPoints()
	case LineString:
		return t.NumPoints()
	case Polygon:
		n := t.Shell().NumPoints()
		for h := 0; h < t.NumHoles(); h++ {
			n += t.HoleAt(h).NumPoints()
		}
		return n
	default:
		return 1
	}
}

// flush folds the pending scan filters into the lineage in caller
// order — the pre-planner execution strategy, used by every consumer
// that needs the concrete filtered dataset (repartitioning, payload
// transforms, joins, clustering) rather than a plannable scan. An
// existing index is probed eagerly, exactly as Where executed before
// the planner existed.
func (st state[V]) flush(ctx *Context) (state[V], error) {
	pending := st.pending
	st.pending = nil
	if len(pending) > 0 {
		// The probe hooks describe the unfiltered snapshot; once a
		// predicate folds into the lineage they would answer with too
		// many rows.
		st.liveProbe = nil
		st.liveAttrProbe = nil
		st.liveAttrHas = nil
	}
	for _, p := range pending {
		if p.attr != nil {
			// A typed attribute filter never moves a record between
			// partitions, but like FilterValues it invalidates any
			// partition trees; fold it as a fused payload-aware scan
			// stage. The plan node keeps the predicate's canonical text,
			// so flushed attribute filters stay fingerprintable.
			if st.schema == nil {
				return state[V]{}, fmt.Errorf("stark: %s: no attribute schema registered", p.name)
			}
			fld, ok := st.schema.Field(p.attr.Field)
			if !ok {
				return state[V]{}, fmt.Errorf("stark: %s: no field %q in schema", p.name, p.attr.Field)
			}
			ap := *p.attr
			get := fld.Get
			st.sds = st.sds.WhereRows(func(_ STObject, v V) bool { return ap.Matches(get(v)) })
			st.mode = NoIndexing
			st.idx = nil
			st.base = plan.NewNode("AttrFilter", ap.String()).Add(st.base)
			continue
		}
		pruneEnv := p.info.PruneEnv()
		if st.idx != nil {
			// Indexed probe + exact refinement. The result is a plain
			// in-memory dataset: like the Scala DSL, an indexed
			// operator yields an unindexed RDD.
			rows, err := st.idx.Filter(p.q, pruneEnv, p.pred)
			if err != nil {
				return state[V]{}, fmt.Errorf("stark: %s: %w", p.name, err)
			}
			node := plan.NewNode("Filter", p.info.String()).
				Prop("index=probe (existing partition trees)").
				Add(st.base)
			node.ActRows = int64(len(rows))
			st = state[V]{
				sds:    core.Wrap(engine.Parallelize(ctx, rows, 0)),
				noOpt:  st.noOpt,
				schema: st.schema,
				base:   node,
			}
			continue
		}
		st.sds = st.sds.Where(p.q, p.pred)
		st.pruneEnvs = append(st.pruneEnvs[:len(st.pruneEnvs):len(st.pruneEnvs)], pruneEnv)
		st.mode = NoIndexing
		st.base = plan.NewNode("Filter", p.info.String()).Add(st.base)
	}
	return st, nil
}

// Intersects keeps the records whose key intersects q in the combined
// spatio-temporal semantics.
func (d *Dataset[V]) Intersects(q STObject) *Dataset[V] {
	return d.where("intersects", plan.Intersects, q, Intersects, 0, false)
}

// Contains keeps the records whose key completely contains q.
func (d *Dataset[V]) Contains(q STObject) *Dataset[V] {
	return d.where("contains", plan.Contains, q, Contains, 0, false)
}

// ContainedBy keeps the records whose key is completely contained by
// q — the paper's events.containedBy(qry).
func (d *Dataset[V]) ContainedBy(q STObject) *Dataset[V] {
	return d.where("containedBy", plan.ContainedBy, q, ContainedBy, 0, false)
}

// CoveredBy is ContainedBy with boundary tolerance.
func (d *Dataset[V]) CoveredBy(q STObject) *Dataset[V] {
	return d.where("coveredBy", plan.CoveredBy, q, CoveredBy, 0, false)
}

// WithinDistance keeps the records whose key lies within maxDist of q
// under df (nil selects the exact planar distance). A custom df is an
// opaque closure: the chain still plans and executes normally, but it
// refuses to fingerprint, so results under a custom metric are never
// result-cached.
func (d *Dataset[V]) WithinDistance(q STObject, maxDist float64, df DistanceFunc) *Dataset[V] {
	return d.where("withinDistance", plan.WithinDistance, q, WithinDistancePredicate(maxDist, df), maxDist, df != nil)
}

// FilterValues keeps the records whose payload satisfies keep. The
// spatial partitioner and any pending pruning survive: a payload
// filter never moves a record between partitions.
func (d *Dataset[V]) FilterValues(keep func(V) bool) *Dataset[V] {
	return d.chain("filterValues", func(st state[V]) (state[V], error) {
		if keep == nil {
			return state[V]{}, fmt.Errorf("nil filter")
		}
		st, err := st.flush(d.ctx)
		if err != nil {
			return state[V]{}, err
		}
		filtered := st.sds.Dataset().Filter(func(kv Tuple[V]) bool { return keep(kv.Value) })
		wrapped, err := core.WrapPartitioned(filtered, st.sds.Partitioner())
		if err != nil {
			return state[V]{}, err
		}
		st.sds = wrapped
		st.mode = NoIndexing
		st.idx = nil
		st.base = plan.NewNode("FilterValues", "").Add(st.base)
		return st, nil
	})
}

// Sample keeps each record with the given probability,
// deterministically derived from seed. Partitioning and pending
// pruning survive: sampling never moves a record.
func (d *Dataset[V]) Sample(fraction float64, seed int64) *Dataset[V] {
	return d.chain("sample", func(st state[V]) (state[V], error) {
		if fraction < 0 || fraction > 1 {
			return state[V]{}, fmt.Errorf("fraction %v outside [0, 1]", fraction)
		}
		st, err := st.flush(d.ctx)
		if err != nil {
			return state[V]{}, err
		}
		sampled, err := core.WrapPartitioned(st.sds.Dataset().Sample(fraction, seed), st.sds.Partitioner())
		if err != nil {
			return state[V]{}, err
		}
		st.sds = sampled
		st.mode = NoIndexing
		st.idx = nil
		st.base = plan.NewNode("Sample", fmt.Sprintf("fraction=%g seed=%d", fraction, seed)).Add(st.base)
		return st, nil
	})
}

// MapValues transforms the payloads, preserving keys, partitioning
// and pending pruning.
func MapValues[V, W any](d *Dataset[V], f func(V) W) *Dataset[W] {
	parent := d.resolve
	return newDataset(d.ctx, func() (state[W], error) {
		st, err := parent()
		if err != nil {
			return state[W]{}, err
		}
		st, err = st.flush(d.ctx)
		if err != nil {
			return state[W]{}, err
		}
		return state[W]{
			sds:       core.MapDatasetValues(st.sds, f),
			pruneEnvs: st.pruneEnvs,
			noOpt:     st.noOpt,
			base:      plan.NewNode("MapValues", "").Add(st.base),
		}, nil
	})
}

// ReKey replaces the spatio-temporal key of every record. The
// partitioner, indexes and pending pruning are dropped: new keys need
// not respect the old layout. Repartition afterwards if needed.
func ReKey[V any](d *Dataset[V], f func(key STObject, v V) STObject) *Dataset[V] {
	return d.chain("reKey", func(st state[V]) (state[V], error) {
		st, err := st.flush(d.ctx)
		if err != nil {
			return state[V]{}, err
		}
		return state[V]{
			sds:    core.ReKey(st.sds, f),
			noOpt:  st.noOpt,
			schema: st.schema,
			base:   plan.NewNode("ReKey", "").Add(st.base),
		}, nil
	})
}

// ---- Actions ----

// force resolves the chain, reporting the first deferred error.
func (d *Dataset[V]) force() (state[V], error) {
	return d.resolve()
}

// forceFlushed resolves the chain and folds any pending scan filters
// into the lineage in caller order — for consumers that need the
// concrete filtered dataset rather than a plannable scan. The fold is
// memoised: an indexed chain probes its R-trees at most once no
// matter how many consumers flush, and the flushed dataset instance
// is stable so its statistics cache can hit.
func (d *Dataset[V]) forceFlushed() (state[V], error) {
	d.flushOnce.Do(func() {
		st, err := d.resolve()
		if err != nil {
			d.flushErr = err
			return
		}
		rec := d.jobRecorder()
		d.flushed, d.flushErr = st.withRecorder(rec).flush(d.ctx)
		if d.flushErr == nil {
			d.flushed = d.flushed.withRecorder(rec)
		}
	})
	return d.flushed, d.flushErr
}

// Run executes the chain for its side effects (shuffles, index
// builds, caching, plan compilation) and reports the first deferred
// error. Useful to warm a shared base dataset or to surface chain and
// planning errors eagerly, before a streaming consumer commits to a
// response.
func (d *Dataset[V]) Run() error {
	_, err := d.compiled()
	return err
}

// enumerateViaIndex reports whether record-enumerating actions
// (Collect, Count, Take, Foreach) should read through the index.
// Only worthwhile for Persistent mode, where the materialised
// partitions spare recomputing the base lineage; in Live mode the
// index is rebuilt per job, so enumerating through it would pay a
// full R-tree build for a plain scan result — sds holds the identical
// records tree-free.
func (st *state[V]) enumerateViaIndex() bool {
	return st.idx != nil && st.mode.kind == modePersistent
}

// prunedVisit returns the partitions an action must visit once the
// pending filter envelopes are applied, or ok=false when no pruning
// applies.
func (st *state[V]) prunedVisit(rec *engine.Recorder) (visit []int, ok bool) {
	sp := st.sds.Partitioner()
	if sp == nil || len(st.pruneEnvs) == 0 {
		return nil, false
	}
	n := st.sds.NumPartitions()
	for i := 0; i < n; i++ {
		ext := sp.Extent(i)
		hit := true
		for _, env := range st.pruneEnvs {
			if !ext.Intersects(env) {
				hit = false
				break
			}
		}
		if hit {
			visit = append(visit, i)
		}
	}
	if pruned := n - len(visit); pruned > 0 {
		rec.TasksSkipped(int64(pruned))
	}
	return visit, true
}

// Collect materialises the query result.
func (d *Dataset[V]) Collect() ([]Tuple[V], error) {
	c, err := d.compiled()
	if err != nil {
		return nil, err
	}
	m := d.beginPhase()
	var out []Tuple[V]
	if c.visit != nil {
		out, err = c.ds.CollectPartitions(c.visit)
	} else {
		out, err = c.ds.Collect()
	}
	d.endPhase("collect", m, int64(len(out)))
	return out, err
}

// Count returns the number of result records.
func (d *Dataset[V]) Count() (int64, error) {
	c, err := d.compiled()
	if err != nil {
		return 0, err
	}
	m := d.beginPhase()
	var n int64
	if c.visit != nil {
		n, err = c.ds.CountPartitions(c.visit)
	} else {
		n, err = c.ds.Count()
	}
	d.endPhase("count", m, n)
	return n, err
}

// Take returns up to n result records, scanning partitions in order.
// The scan is fused and short-circuiting: partition pipelines stop
// mid-stream once n records are gathered, partitions pruned by
// pending filters are never touched, and later partitions are not
// scheduled at all.
func (d *Dataset[V]) Take(n int) ([]Tuple[V], error) {
	c, err := d.compiled()
	if err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, nil
	}
	m := d.beginPhase()
	var out []Tuple[V]
	if c.visit != nil {
		out, err = c.ds.TakePartitions(c.visit, n)
	} else {
		out, err = c.ds.Take(n)
	}
	d.endPhase("take", m, int64(len(out)))
	return out, err
}

// First returns the first result record in partition order, ok=false
// when the result is empty. The pipeline stops at the very first
// record produced.
func (d *Dataset[V]) First() (Tuple[V], bool, error) {
	out, err := d.Take(1)
	if err != nil || len(out) == 0 {
		var zero Tuple[V]
		return zero, false, err
	}
	return out[0], true, nil
}

// Exists reports whether any result record satisfies pred. Partitions
// are scanned in parallel and every task stops mid-stream as soon as
// one finds a match; pruned partitions are never touched.
func (d *Dataset[V]) Exists(pred func(Tuple[V]) bool) (bool, error) {
	if pred == nil {
		return false, fmt.Errorf("stark: exists: nil predicate")
	}
	c, err := d.compiled()
	if err != nil {
		return false, err
	}
	if c.visit != nil {
		return c.ds.ExistsPartitions(c.visit, pred)
	}
	return c.ds.Exists(pred)
}

// Reduce combines all result records with f, streaming each partition
// through a local accumulator; ok is false when the result is empty.
// Pruned partitions are skipped. f must be associative and
// commutative.
func (d *Dataset[V]) Reduce(f func(a, b Tuple[V]) Tuple[V]) (Tuple[V], bool, error) {
	var zero Tuple[V]
	if f == nil {
		return zero, false, fmt.Errorf("stark: reduce: nil reducer")
	}
	c, err := d.compiled()
	if err != nil {
		return zero, false, err
	}
	if c.visit != nil {
		return c.ds.ReducePartitions(c.visit, f)
	}
	return c.ds.Reduce(f)
}

// Foreach runs fn on every result record, partition-parallel,
// streaming straight off the fused pipeline. Pruned partitions are
// skipped.
func (d *Dataset[V]) Foreach(fn func(Tuple[V])) error {
	if fn == nil {
		return fmt.Errorf("stark: foreach: nil fn")
	}
	c, err := d.compiled()
	if err != nil {
		return err
	}
	m := d.beginPhase()
	if c.visit != nil {
		err = c.ds.ForeachPartitions(c.visit, fn)
	} else {
		err = c.ds.Foreach(fn)
	}
	d.endPhase("foreach", m, 0)
	return err
}

// Stream drives every result record through fn sequentially, in
// partition order, without materialising the result; fn returning
// false stops the scan. Pruned partitions are skipped. This is the
// action behind streaming consumers such as the GeoJSON HTTP
// endpoint, which encodes rows onto the socket as they leave the
// pipeline.
func (d *Dataset[V]) Stream(fn func(Tuple[V]) bool) error {
	if fn == nil {
		return fmt.Errorf("stark: stream: nil consumer")
	}
	c, err := d.compiled()
	if err != nil {
		return err
	}
	m := d.beginPhase()
	var rows int64
	counted := func(kv Tuple[V]) bool {
		rows++
		return fn(kv)
	}
	if c.visit != nil {
		err = c.ds.StreamPartitions(c.visit, counted)
	} else {
		err = c.ds.Stream(counted)
	}
	d.endPhase("stream", m, rows)
	return err
}

// StreamParallel is Stream with partition-parallel compute: rows
// still reach fn sequentially in partition order, but the partition
// pipelines run as parallel jobs in bounded windows, buffering at
// most one window of partitions. Prefer it when the consumer is
// cheap relative to the scan (the GeoJSON endpoint encodes rows onto
// the socket this way); prefer Stream when nothing may be buffered.
func (d *Dataset[V]) StreamParallel(fn func(Tuple[V]) bool) error {
	if fn == nil {
		return fmt.Errorf("stark: streamParallel: nil consumer")
	}
	c, err := d.compiled()
	if err != nil {
		return err
	}
	m := d.beginPhase()
	var rows int64
	counted := func(kv Tuple[V]) bool {
		rows++
		return fn(kv)
	}
	if c.visit != nil {
		err = c.ds.StreamPartitionsParallel(c.visit, 0, counted)
	} else {
		err = c.ds.StreamParallel(counted)
	}
	d.endPhase("stream", m, rows)
	return err
}

// NumPartitions resolves the chain and returns the partition count.
func (d *Dataset[V]) NumPartitions() (int, error) {
	st, err := d.forceFlushed()
	if err != nil {
		return 0, err
	}
	return st.sds.NumPartitions(), nil
}

// Partitioner resolves the chain and returns the spatial partitioner,
// or nil when the data is not spatially partitioned.
func (d *Dataset[V]) Partitioner() (SpatialPartitioner, error) {
	st, err := d.forceFlushed()
	if err != nil {
		return nil, err
	}
	return st.sds.Partitioner(), nil
}

// CountBy counts the result records per key derived by key —
// partition-parallel, the DSL's GROUP ... COUNT.
func CountBy[V any, K comparable](d *Dataset[V], key func(Tuple[V]) K) (map[K]int64, error) {
	st, err := d.forceFlushed()
	if err != nil {
		return nil, err
	}
	pairs := engine.Map(st.sds.Dataset(), func(kv Tuple[V]) engine.Pair[K, int64] {
		return engine.NewPair(key(kv), int64(1))
	})
	counts, err := engine.CountByKey(pairs)
	if err != nil {
		return nil, fmt.Errorf("stark: countBy: %w", err)
	}
	return counts, nil
}

// Neighbor is one kNN result record with its distance to the query.
type Neighbor[V any] = core.NeighborResult[V]

// KNN returns the k records nearest to q, sorted by ascending
// distance, under the optional df (omitted = exact planar distance).
// With an index configured the partition trees answer the search;
// either way partitions provably farther than the current k-th
// neighbour are pruned.
func (d *Dataset[V]) KNN(q STObject, k int, df ...DistanceFunc) ([]Neighbor[V], error) {
	return d.KNNContext(context.Background(), q, k, df...)
}

// KNNContext is KNN with cooperative cancellation: per-partition
// scans (or index probes) run through the task pool in bounded
// rounds, and once ctx is done no further partition is scheduled and
// running scans abort mid-stream — the action behind the query
// service's kNN endpoint, which stops the search when the client
// hangs up.
func (d *Dataset[V]) KNNContext(ctx context.Context, q STObject, k int, df ...DistanceFunc) ([]Neighbor[V], error) {
	var dist DistanceFunc
	if len(df) > 0 {
		dist = df[0]
	}
	st, err := d.forceFlushed()
	if err != nil {
		return nil, err
	}
	m := d.beginPhase()
	var nbrs []Neighbor[V]
	if st.idx != nil {
		nbrs, err = st.idx.KNNContext(ctx, q, k, dist)
	} else {
		nbrs, err = st.sds.KNNContext(ctx, q, k, dist)
	}
	d.endPhase("knn", m, int64(len(nbrs)))
	if err != nil {
		return nil, fmt.Errorf("stark: kNN: %w", err)
	}
	return nbrs, nil
}

// ClusterOptions configures the Cluster action.
type ClusterOptions = core.ClusterOptions

// ClusteredRecord pairs an input record with its DBSCAN label
// (ClusterNoise for noise points).
type ClusteredRecord[V any] = core.ClusteredRecord[V]

// Cluster runs distributed DBSCAN over the query result and returns
// one labelled record per input record plus the number of clusters.
func (d *Dataset[V]) Cluster(opts ClusterOptions) ([]ClusteredRecord[V], int, error) {
	st, err := d.forceFlushed()
	if err != nil {
		return nil, 0, err
	}
	recs, n, err := st.sds.Cluster(opts)
	if err != nil {
		return nil, 0, fmt.Errorf("stark: cluster: %w", err)
	}
	return recs, n, nil
}
