// Command piglet runs a piglet script — STARK's Pig Latin derivative —
// against a generated (or CSV-provided) event dataset in the
// simulated DFS.
//
// Usage:
//
//	piglet -script query.pig                 # load 'data/events.csv' inside the script
//	piglet -script query.pig -events 50000   # generate 50k events at data/events.csv
//	echo "DUMP e;" | piglet -script - -events 100
//
// Generated events are seeded and deterministic; STOREd outputs are
// printed to stdout as "path (bytes)".
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"stark"
	"stark/internal/piglet"
	"stark/internal/workload"
)

func main() {
	var (
		script      = flag.String("script", "", "script file path ('-' for stdin)")
		events      = flag.Int("events", 10_000, "number of events generated at data/events.csv")
		seed        = flag.Int64("seed", 42, "event generation seed")
		parallelism = flag.Int("parallelism", 0, "simulated executors (0 = GOMAXPROCS)")
	)
	flag.Parse()
	if *script == "" {
		fmt.Fprintln(os.Stderr, "piglet: -script is required")
		flag.Usage()
		os.Exit(2)
	}

	var src []byte
	var err error
	if *script == "-" {
		src, err = io.ReadAll(os.Stdin)
	} else {
		src, err = os.ReadFile(*script)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "piglet: reading script: %v\n", err)
		os.Exit(1)
	}

	fs := stark.NewDFS(0, 0)
	evs := workload.Events(workload.Config{
		N: *events, Seed: *seed, Dist: workload.Skewed, Width: 1000, Height: 1000, TimeRange: 1_000_000,
	})
	if err := workload.WriteEventsCSV(fs, "data/events.csv", evs); err != nil {
		fmt.Fprintf(os.Stderr, "piglet: writing events: %v\n", err)
		os.Exit(1)
	}

	env := &piglet.Env{Ctx: stark.NewContext(*parallelism), FS: fs}
	out, err := piglet.Run(string(src), env)
	if err != nil {
		fmt.Fprintf(os.Stderr, "piglet: %v\n", err)
		os.Exit(1)
	}
	for _, text := range out.Explained {
		fmt.Println(text)
	}
	for _, line := range out.Dumped {
		fmt.Println(line)
	}
	for _, path := range out.Stored {
		size, err := fs.Size(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "piglet: stored file vanished: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("stored %s (%d bytes)\n", path, size)
	}
}
