// Command stark-bench regenerates the paper's evaluation artefacts.
//
// Usage:
//
//	stark-bench -experiment figure4 -n 1000000
//	stark-bench -experiment all -n 100000 -parallelism 8
//
// Experiments: figure4 (the paper's micro-benchmark), partitioning,
// indexing, stfilter, knn, dbscan, joins, localindex, persist, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"stark/internal/bench"
	"stark/internal/workload"
)

func main() {
	var (
		experiment  = flag.String("experiment", "figure4", "experiment to run: figure4|partitioning|indexing|stfilter|knn|dbscan|joins|localindex|persist|all")
		n           = flag.Int("n", 100_000, "dataset size (the paper uses 1,000,000)")
		parallelism = flag.Int("parallelism", 0, "simulated executors (0 = GOMAXPROCS)")
		seed        = flag.Int64("seed", 42, "data generation seed")
		eps         = flag.Float64("eps", 0, "self-join distance (0 = derived from n)")
		dist        = flag.String("dist", "skewed", "spatial distribution: uniform|skewed|diagonal")
	)
	flag.Parse()

	var d workload.Distribution
	switch strings.ToLower(*dist) {
	case "uniform":
		d = workload.Uniform
	case "skewed":
		d = workload.Skewed
	case "diagonal":
		d = workload.Diagonal
	default:
		fmt.Fprintf(os.Stderr, "unknown distribution %q\n", *dist)
		os.Exit(2)
	}
	cfg := bench.Config{N: *n, Parallelism: *parallelism, Seed: *seed, Eps: *eps, Dist: d}

	run := func(name string) error {
		switch name {
		case "figure4":
			fmt.Printf("== Figure 4: self join on %d points (eps derived/%g, %s data) ==\n", *n, *eps, d)
			rows, err := bench.Figure4(cfg)
			if err != nil {
				return err
			}
			fmt.Print(bench.FormatFigure4(rows))
		case "partitioning":
			fmt.Println("== E1: partitioner construction and balance ==")
			rows, err := bench.Partitioners(cfg)
			if err != nil {
				return err
			}
			fmt.Printf("%-10s %-10s %12s %12s %12s\n", "Partitioner", "Data", "Build [s]", "Partitions", "Imbalance")
			for _, r := range rows {
				fmt.Printf("%-10s %-10s %12.3f %12d %12.2f\n", r.Name, r.Dist, r.BuildSecs, r.Partitions, r.Imbalance)
			}
		case "indexing":
			fmt.Println("== E2: indexing modes (range filter) ==")
			rows, err := bench.IndexModes(cfg)
			if err != nil {
				return err
			}
			fmt.Printf("%-12s %12s %12s %12s\n", "Mode", "Selectivity", "Time [s]", "Results")
			for _, r := range rows {
				fmt.Printf("%-12s %12.4f %12.4f %12d\n", r.Mode, r.Selectivity, r.Seconds, r.Results)
			}
		case "stfilter":
			fmt.Println("== E3: spatial-only vs spatio-temporal filter ==")
			rows, err := bench.STFilter(cfg)
			if err != nil {
				return err
			}
			fmt.Printf("%-30s %12s %12s\n", "Query", "Time [s]", "Results")
			for _, r := range rows {
				fmt.Printf("%-30s %12.4f %12d\n", r.Query, r.Seconds, r.Results)
			}
		case "knn":
			fmt.Println("== E4: kNN strategies ==")
			rows, err := bench.KNN(cfg)
			if err != nil {
				return err
			}
			fmt.Printf("%-22s %6s %12s\n", "Strategy", "k", "Time [s]")
			for _, r := range rows {
				fmt.Printf("%-22s %6d %12.5f\n", r.Strategy, r.K, r.Seconds)
			}
		case "dbscan":
			fmt.Println("== E5: DBSCAN sequential vs distributed ==")
			rows, err := bench.DBSCAN(cfg)
			if err != nil {
				return err
			}
			fmt.Printf("%-20s %12s %12s\n", "Strategy", "Time [s]", "Clusters")
			for _, r := range rows {
				fmt.Printf("%-20s %12.3f %12d\n", r.Strategy, r.Seconds, r.Clusters)
			}
		case "joins":
			fmt.Println("== E6: join predicate sweep (regions × points) ==")
			rows, err := bench.JoinPredicates(cfg)
			if err != nil {
				return err
			}
			fmt.Printf("%-20s %12s %12s\n", "Predicate", "Time [s]", "Results")
			for _, r := range rows {
				fmt.Printf("%-20s %12.3f %12d\n", r.Predicate, r.Seconds, r.Results)
			}
		case "localindex":
			fmt.Println("== E7: partition-local index structures ==")
			rows, err := bench.LocalIndexes(cfg)
			if err != nil {
				return err
			}
			fmt.Printf("%-8s %-10s %12s %14s %12s\n", "Index", "Data", "Build [s]", "Query [s]", "Results")
			for _, r := range rows {
				fmt.Printf("%-8s %-10s %12.3f %14.6f %12d\n", r.Structure, r.Dist, r.BuildSecs, r.QuerySecs, r.Results)
			}
		case "persist":
			fmt.Println("== persistent index round trip ==")
			build, reloadDur, err := bench.PersistIndexRoundTrip(cfg)
			if err != nil {
				return err
			}
			fmt.Printf("build+persist: %.3fs   reload+query: %.3fs\n", build.Seconds(), reloadDur.Seconds())
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		fmt.Println()
		return nil
	}

	names := []string{*experiment}
	if *experiment == "all" {
		names = []string{"figure4", "partitioning", "indexing", "stfilter", "knn", "dbscan", "joins", "localindex", "persist"}
	}
	for _, name := range names {
		if err := run(name); err != nil {
			fmt.Fprintf(os.Stderr, "stark-bench: %v\n", err)
			os.Exit(1)
		}
	}
}
