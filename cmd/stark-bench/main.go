// Command stark-bench regenerates the paper's evaluation artefacts.
//
// Usage:
//
//	stark-bench -experiment figure4 -n 1000000
//	stark-bench -experiment all -n 100000 -parallelism 8
//	stark-bench -experiment indexing -n 10000 -json
//
// Experiments: figure4 (the paper's micro-benchmark), partitioning,
// indexing, stfilter, knn, dbscan, joins, join (physical join
// strategies: auto/pairs/broadcast/copartition × layout ×
// selectivity), localindex, persist, optimizer (cost-based planner
// vs naive execution), layout (row scan vs columnar kernels ×
// Hilbert sort × distribution × selectivity), service (query service
// latency and cache hit rate over HTTP), mutation (mutable live
// dataset: ingest throughput and snapshot query latency over HTTP),
// all.
//
// With -json, every experiment additionally writes a machine-readable
// BENCH_<experiment>.json (into -json-dir, default the working
// directory) holding the result rows, wall time, allocation counters
// and the summed engine metrics snapshot — the artefact CI archives
// to track the performance trajectory across PRs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"stark/internal/bench"
	"stark/internal/engine"
	"stark/internal/workload"
)

// jsonReport is the schema of a BENCH_<experiment>.json file.
type jsonReport struct {
	Experiment  string                 `json:"experiment"`
	Config      bench.Config           `json:"config"`
	Rows        interface{}            `json:"rows"`
	WallNs      int64                  `json:"ns_per_op"`     // one op = one experiment run
	Allocs      uint64                 `json:"allocs_per_op"` // heap allocations during the run
	AllocBytes  uint64                 `json:"alloc_bytes_per_op"`
	Metrics     engine.MetricsSnapshot `json:"metrics"` // summed over the run's contexts
	GoVersion   string                 `json:"go_version"`
	GOMAXPROCS  int                    `json:"gomaxprocs"`
	GeneratedAt time.Time              `json:"generated_at"`
}

// writeReport writes the report for one experiment, returning the
// file path.
func writeReport(dir string, rep jsonReport) (string, error) {
	path := filepath.Join(dir, fmt.Sprintf("BENCH_%s.json", rep.Experiment))
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return "", err
	}
	return path, os.WriteFile(path, append(data, '\n'), 0o644)
}

func main() {
	var (
		experiment  = flag.String("experiment", "figure4", "experiment to run: figure4|partitioning|indexing|stfilter|knn|dbscan|joins|join|localindex|persist|optimizer|layout|attr|service|mutation|durability|all")
		n           = flag.Int("n", 100_000, "dataset size (the paper uses 1,000,000)")
		parallelism = flag.Int("parallelism", 0, "simulated executors (0 = GOMAXPROCS)")
		seed        = flag.Int64("seed", 42, "data generation seed")
		eps         = flag.Float64("eps", 0, "self-join distance (0 = derived from n)")
		dist        = flag.String("dist", "skewed", "spatial distribution: uniform|skewed|diagonal")
		jsonOut     = flag.Bool("json", false, "write BENCH_<experiment>.json with rows, timings, allocs and metrics")
		jsonDir     = flag.String("json-dir", ".", "directory for -json output files")
	)
	flag.Parse()

	var d workload.Distribution
	switch strings.ToLower(*dist) {
	case "uniform":
		d = workload.Uniform
	case "skewed":
		d = workload.Skewed
	case "diagonal":
		d = workload.Diagonal
	default:
		fmt.Fprintf(os.Stderr, "unknown distribution %q\n", *dist)
		os.Exit(2)
	}
	cfg := bench.Config{N: *n, Parallelism: *parallelism, Seed: *seed, Eps: *eps, Dist: d}

	run := func(name string) error {
		var (
			result interface{}
			ctxs   []*engine.Context
		)
		if *jsonOut {
			cfg.Observe = func(c *engine.Context) { ctxs = append(ctxs, c) }
		}
		var m0 runtime.MemStats
		runtime.ReadMemStats(&m0)
		start := time.Now()
		switch name {
		case "figure4":
			fmt.Printf("== Figure 4: self join on %d points (eps derived/%g, %s data) ==\n", *n, *eps, d)
			rows, err := bench.Figure4(cfg)
			if err != nil {
				return err
			}
			fmt.Print(bench.FormatFigure4(rows))
			result = rows
		case "partitioning":
			fmt.Println("== E1: partitioner construction and balance ==")
			rows, err := bench.Partitioners(cfg)
			if err != nil {
				return err
			}
			fmt.Printf("%-10s %-10s %12s %12s %12s\n", "Partitioner", "Data", "Build [s]", "Partitions", "Imbalance")
			for _, r := range rows {
				fmt.Printf("%-10s %-10s %12.3f %12d %12.2f\n", r.Name, r.Dist, r.BuildSecs, r.Partitions, r.Imbalance)
			}
			result = rows
		case "indexing":
			fmt.Println("== E2: indexing modes (range filter) ==")
			rows, err := bench.IndexModes(cfg)
			if err != nil {
				return err
			}
			fmt.Printf("%-12s %12s %12s %12s\n", "Mode", "Selectivity", "Time [s]", "Results")
			for _, r := range rows {
				fmt.Printf("%-12s %12.4f %12.4f %12d\n", r.Mode, r.Selectivity, r.Seconds, r.Results)
			}
			result = rows
		case "stfilter":
			fmt.Println("== E3: spatial-only vs spatio-temporal filter ==")
			rows, err := bench.STFilter(cfg)
			if err != nil {
				return err
			}
			fmt.Printf("%-30s %12s %12s\n", "Query", "Time [s]", "Results")
			for _, r := range rows {
				fmt.Printf("%-30s %12.4f %12d\n", r.Query, r.Seconds, r.Results)
			}
			result = rows
		case "knn":
			fmt.Println("== E4: kNN strategies ==")
			rows, err := bench.KNN(cfg)
			if err != nil {
				return err
			}
			fmt.Printf("%-22s %6s %12s\n", "Strategy", "k", "Time [s]")
			for _, r := range rows {
				fmt.Printf("%-22s %6d %12.5f\n", r.Strategy, r.K, r.Seconds)
			}
			result = rows
		case "dbscan":
			fmt.Println("== E5: DBSCAN sequential vs distributed ==")
			rows, err := bench.DBSCAN(cfg)
			if err != nil {
				return err
			}
			fmt.Printf("%-20s %12s %12s\n", "Strategy", "Time [s]", "Clusters")
			for _, r := range rows {
				fmt.Printf("%-20s %12.3f %12d\n", r.Strategy, r.Seconds, r.Clusters)
			}
			result = rows
		case "joins":
			fmt.Println("== E6: join predicate sweep (regions × points) ==")
			rows, err := bench.JoinPredicates(cfg)
			if err != nil {
				return err
			}
			fmt.Printf("%-20s %12s %12s\n", "Predicate", "Time [s]", "Results")
			for _, r := range rows {
				fmt.Printf("%-20s %12.3f %12d\n", r.Predicate, r.Seconds, r.Results)
			}
			result = rows
		case "join":
			fmt.Println("== E10: join strategies (strategy × layout × selectivity) ==")
			rows, err := bench.JoinStrategies(cfg)
			if err != nil {
				return err
			}
			fmt.Print(bench.FormatJoinStrategies(rows))
			result = rows
		case "localindex":
			fmt.Println("== E7: partition-local index structures ==")
			rows, err := bench.LocalIndexes(cfg)
			if err != nil {
				return err
			}
			fmt.Printf("%-8s %-10s %12s %14s %12s\n", "Index", "Data", "Build [s]", "Query [s]", "Results")
			for _, r := range rows {
				fmt.Printf("%-8s %-10s %12.3f %14.6f %12d\n", r.Structure, r.Dist, r.BuildSecs, r.QuerySecs, r.Results)
			}
			result = rows
		case "mutation":
			fmt.Println("== E11: mutable live dataset — ingest throughput × snapshot query latency ==")
			rows, err := bench.Mutation(cfg)
			if err != nil {
				return err
			}
			fmt.Printf("%-14s %8s %10s %12s %10s %10s %10s %10s %6s %10s\n",
				"Phase", "Batches", "Mutations", "Ops/s", "bP50 [ms]", "bP99 [ms]", "qP50 [ms]", "qP99 [ms]", "Gen", "Live")
			for _, r := range rows {
				fmt.Printf("%-14s %8d %10d %12.0f %10.2f %10.2f %10.2f %10.2f %6d %10d\n",
					r.Phase, r.Batches, r.Mutations, r.OpsPerSec, r.BatchP50Ms, r.BatchP99Ms, r.QueryP50Ms, r.QueryP99Ms, r.Generation, r.LiveCount)
			}
			result = rows
		case "durability":
			fmt.Println("== E13: durability — WAL overhead per ingest batch, replay vs checkpoint recovery ==")
			rows, err := bench.Durability(cfg)
			if err != nil {
				return err
			}
			fmt.Printf("%-12s %8s %10s %12s %10s %10s %10s %12s %12s %10s\n",
				"Mode", "Batches", "Mutations", "Ops/s", "bP50 [ms]", "bP99 [ms]", "Ovhd [%]", "Bytes", "Recover[ms]", "Replayed")
			for _, r := range rows {
				fmt.Printf("%-12s %8d %10d %12.0f %10.2f %10.2f %10.1f %12d %12.1f %10d\n",
					r.Mode, r.Batches, r.Mutations, r.OpsPerSec, r.BatchP50Ms, r.BatchP99Ms, r.OverheadPct, r.WALBytes, r.RecoveryMs, r.ReplayedBatches)
			}
			result = rows
		case "service":
			fmt.Println("== E9: query service — latency and cache hit rate over HTTP ==")
			rows, err := bench.Service(cfg)
			if err != nil {
				return err
			}
			fmt.Printf("%-8s %10s %12s %10s %10s %10s %10s %10s %10s %10s\n",
				"Phase", "Requests", "Concurrency", "p50 [ms]", "p99 [ms]", "sP50 [ms]", "sP99 [ms]", "Hits", "Misses", "HitRate")
			for _, r := range rows {
				fmt.Printf("%-8s %10d %12d %10.2f %10.2f %10.2f %10.2f %10d %10d %10.2f\n",
					r.Phase, r.Requests, r.Concurrency, r.P50Ms, r.P99Ms, r.ServerP50Ms, r.ServerP99Ms, r.CacheHits, r.CacheMisses, r.HitRate)
			}
			result = rows
		case "layout":
			fmt.Println("== E12: scan layouts — row vs columnar kernels, Hilbert vs unsorted ==")
			rows, err := bench.Layout(cfg)
			if err != nil {
				return err
			}
			fmt.Print(bench.FormatLayout(rows))
			result = rows
		case "attr":
			fmt.Println("== E13: attribute predicates — secondary-index path vs full-scan closure ==")
			rows, err := bench.Attr(cfg)
			if err != nil {
				return err
			}
			fmt.Print(bench.FormatAttr(rows))
			result = rows
		case "optimizer":
			fmt.Println("== E8: cost-based planner vs naive execution ==")
			rows, err := bench.Optimizer(cfg)
			if err != nil {
				return err
			}
			fmt.Printf("%-10s %-8s %12s %12s %14s %12s\n", "Variant", "Indexed", "Time [s]", "Results", "Scanned", "Skipped")
			for _, r := range rows {
				fmt.Printf("%-10s %-8v %12.4f %12d %14d %12d\n", r.Variant, r.Indexed, r.Seconds, r.Results, r.ElementsScanned, r.TasksSkipped)
			}
			result = rows
		case "persist":
			fmt.Println("== persistent index round trip ==")
			build, reloadDur, err := bench.PersistIndexRoundTrip(cfg)
			if err != nil {
				return err
			}
			fmt.Printf("build+persist: %.3fs   reload+query: %.3fs\n", build.Seconds(), reloadDur.Seconds())
			result = map[string]float64{
				"buildPersistSecs": build.Seconds(),
				"reloadQuerySecs":  reloadDur.Seconds(),
			}
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		wall := time.Since(start)
		if *jsonOut {
			var m1 runtime.MemStats
			runtime.ReadMemStats(&m1)
			path, err := writeReport(*jsonDir, jsonReport{
				Experiment:  name,
				Config:      cfg,
				Rows:        result,
				WallNs:      wall.Nanoseconds(),
				Allocs:      m1.Mallocs - m0.Mallocs,
				AllocBytes:  m1.TotalAlloc - m0.TotalAlloc,
				Metrics:     engine.SumSnapshots(ctxs),
				GoVersion:   runtime.Version(),
				GOMAXPROCS:  runtime.GOMAXPROCS(0),
				GeneratedAt: time.Now().UTC(),
			})
			if err != nil {
				return fmt.Errorf("writing json report: %w", err)
			}
			fmt.Printf("wrote %s\n", path)
		}
		fmt.Println()
		return nil
	}

	names := []string{*experiment}
	if *experiment == "all" {
		names = []string{"figure4", "partitioning", "indexing", "stfilter", "knn", "dbscan", "joins", "join", "localindex", "persist", "optimizer", "layout", "attr", "service", "mutation", "durability"}
	}
	for _, name := range names {
		if err := run(name); err != nil {
			fmt.Fprintf(os.Stderr, "stark-bench: %v\n", err)
			os.Exit(1)
		}
	}
}
