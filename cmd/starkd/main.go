// Command starkd serves the STARK query service: a concurrent
// multi-dataset HTTP API with a plan-fingerprint result cache and
// admission control, plus the demonstration web UI over the "default"
// dataset (the paper's demo scenario, Section 4).
//
// Usage:
//
//	starkd -addr :8080 -events 100000
//	starkd -dataset "hotels:n=50000,seed=7,dist=uniform,index=live:8,part=grid:8" \
//	       -dataset "checkins:n=200000,dist=skewed" \
//	       -max-concurrent 8 -queue-depth 32 -cache-mb 128
//
// Then open http://localhost:8080 for the query interface, or use the
// JSON API directly:
//
//	curl -X POST localhost:8080/api/v1/query -d '{"dataset":"hotels","predicate":"intersects","wkt":"POLYGON ((0 0, 500 0, 500 500, 0 500, 0 0))"}'
//	curl localhost:8080/api/datasets
//	curl localhost:8080/api/service
package main

import (
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"os"
	"time"

	"stark"
	"stark/internal/server"
	"stark/internal/workload"
)

// datasetFlags collects repeated -dataset values.
type datasetFlags []string

func (d *datasetFlags) String() string { return fmt.Sprint(*d) }
func (d *datasetFlags) Set(s string) error {
	*d = append(*d, s)
	return nil
}

func main() {
	var datasets datasetFlags
	var (
		addr          = flag.String("addr", ":8080", "listen address")
		events        = flag.Int("events", 100_000, "size of the generated \"default\" dataset (0 disables it)")
		seed          = flag.Int64("seed", 42, "default dataset generation seed")
		parallelism   = flag.Int("parallelism", 0, "simulated executors (0 = GOMAXPROCS)")
		maxConcurrent = flag.Int("max-concurrent", 0, "concurrent query slots (0 = 2×parallelism)")
		queueDepth    = flag.Int("queue-depth", 0, "admission queue depth (0 = 4×slots)")
		queueTimeout  = flag.Duration("queue-timeout", 2*time.Second, "admission queue deadline")
		cacheMB       = flag.Int64("cache-mb", 64, "result cache budget in MiB")
		slowQueryMs   = flag.Int64("slow-query-ms", 0, "log queries slower than this many ms with fingerprint and trace summary (0 = off)")
		enablePprof   = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		verbose       = flag.Bool("v", false, "log every request (debug level), not just slow ones")
	)
	flag.Var(&datasets, "dataset", "preload a dataset: name:n=N[,seed=S,dist=D,width=W,height=H,timerange=T,index=I,part=P] (repeatable)")
	flag.Parse()

	level := slog.LevelInfo
	if *verbose {
		level = slog.LevelDebug
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	ctx := stark.NewContext(*parallelism)
	srv := server.NewService(ctx, server.Options{
		MaxConcurrent: *maxConcurrent,
		QueueDepth:    *queueDepth,
		QueueTimeout:  *queueTimeout,
		CacheBytes:    *cacheMB << 20,
		SlowQueryMs:   *slowQueryMs,
		EnablePprof:   *enablePprof,
		Logger:        logger,
	})

	if *events > 0 {
		evs := workload.Events(workload.Config{
			N: *events, Seed: *seed, Dist: workload.Skewed, Width: 1000, Height: 1000, TimeRange: 1_000_000,
		})
		if err := srv.RegisterEvents(server.DatasetSpec{Name: server.DefaultDataset}, evs); err != nil {
			log.Fatalf("starkd: default dataset: %v", err)
		}
		fmt.Printf("starkd: registered %q (%d events)\n", server.DefaultDataset, *events)
	}
	for _, spec := range datasets {
		parsed, err := server.ParseDatasetFlag(spec)
		if err != nil {
			log.Fatalf("starkd: %v", err)
		}
		if err := srv.Register(parsed); err != nil {
			log.Fatalf("starkd: dataset %q: %v", parsed.Name, err)
		}
		fmt.Printf("starkd: registered %q (%d events)\n", parsed.Name, parsed.N)
	}

	fmt.Printf("starkd: serving on %s\n", *addr)
	log.Fatal(http.ListenAndServe(*addr, srv))
}
