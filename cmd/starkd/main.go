// Command starkd serves the demonstration web front end: a
// spatio-temporal query UI over a generated event dataset, mirroring
// the paper's demo scenario (Section 4).
//
// Usage:
//
//	starkd -addr :8080 -events 100000
//
// Then open http://localhost:8080 for the query interface, or use the
// JSON API directly:
//
//	curl -X POST localhost:8080/api/query -d '{"predicate":"intersects","wkt":"POLYGON ((0 0, 500 0, 500 500, 0 500, 0 0))"}'
//	curl -X POST localhost:8080/api/knn   -d '{"wkt":"POINT (500 500)","k":5}'
//	curl localhost:8080/api/stats
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"stark"
	"stark/internal/server"
	"stark/internal/workload"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		events      = flag.Int("events", 100_000, "number of generated events")
		seed        = flag.Int64("seed", 42, "event generation seed")
		parallelism = flag.Int("parallelism", 0, "simulated executors (0 = GOMAXPROCS)")
	)
	flag.Parse()

	evs := workload.Events(workload.Config{
		N: *events, Seed: *seed, Dist: workload.Skewed, Width: 1000, Height: 1000, TimeRange: 1_000_000,
	})
	srv, err := server.New(stark.NewContext(*parallelism), evs)
	if err != nil {
		log.Fatalf("starkd: %v", err)
	}
	fmt.Printf("starkd: serving %d events on %s\n", *events, *addr)
	log.Fatal(http.ListenAndServe(*addr, srv))
}
