// Command starkd serves the STARK query service: a concurrent
// multi-dataset HTTP API with a plan-fingerprint result cache and
// admission control, plus the demonstration web UI over the "default"
// dataset (the paper's demo scenario, Section 4).
//
// Usage:
//
//	starkd -addr :8080 -events 100000
//	starkd -dataset "hotels:n=50000,seed=7,dist=uniform,index=live:8,part=grid:8" \
//	       -dataset "checkins:n=200000,dist=skewed" \
//	       -max-concurrent 8 -queue-depth 32 -cache-mb 128
//	starkd -data-dir /var/lib/stark -checkpoint-interval 60s
//
// Then open http://localhost:8080 for the query interface, or use the
// JSON API directly:
//
//	curl -X POST localhost:8080/api/v1/query -d '{"dataset":"hotels","predicate":"intersects","wkt":"POLYGON ((0 0, 500 0, 500 500, 0 500, 0 0))"}'
//	curl localhost:8080/api/datasets
//	curl localhost:8080/api/service
//
// With -data-dir the service is durable: every dataset registration,
// drop and ingest batch is write-ahead-logged (and fsync'd) before it
// is acknowledged, checkpoints snapshot the catalog periodically and
// at graceful shutdown, and the next boot recovers the exact
// acknowledged pre-crash state — catalog, record counts and mutation
// generations — even after kill -9.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"stark"
	"stark/internal/server"
)

// datasetFlags collects repeated -dataset values.
type datasetFlags []string

func (d *datasetFlags) String() string { return fmt.Sprint(*d) }
func (d *datasetFlags) Set(s string) error {
	*d = append(*d, s)
	return nil
}

func main() {
	var datasets datasetFlags
	var (
		addr          = flag.String("addr", ":8080", "listen address")
		events        = flag.Int("events", 100_000, "size of the generated \"default\" dataset (0 disables it)")
		seed          = flag.Int64("seed", 42, "default dataset generation seed")
		parallelism   = flag.Int("parallelism", 0, "simulated executors (0 = GOMAXPROCS)")
		maxConcurrent = flag.Int("max-concurrent", 0, "concurrent query slots (0 = 2×parallelism)")
		queueDepth    = flag.Int("queue-depth", 0, "admission queue depth (0 = 4×slots)")
		queueTimeout  = flag.Duration("queue-timeout", 2*time.Second, "admission queue deadline")
		cacheMB       = flag.Int64("cache-mb", 64, "result cache budget in MiB")
		slowQueryMs   = flag.Int64("slow-query-ms", 0, "log queries slower than this many ms with fingerprint and trace summary (0 = off)")
		enablePprof   = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		verbose       = flag.Bool("v", false, "log every request (debug level), not just slow ones")
		dataDir       = flag.String("data-dir", "", "durable data directory: WAL + checkpoints, recovered on boot (empty = in-memory only)")
		ckptInterval  = flag.Duration("checkpoint-interval", time.Minute, "periodic checkpoint interval under -data-dir (0 = only at shutdown)")
	)
	flag.Var(&datasets, "dataset", "preload a dataset: name:n=N[,seed=S,dist=D,width=W,height=H,timerange=T,index=I,part=P] (repeatable)")
	flag.Parse()

	level := slog.LevelInfo
	if *verbose {
		level = slog.LevelDebug
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	slog.SetDefault(logger)

	ctx := stark.NewContext(*parallelism)
	srv := server.NewService(ctx, server.Options{
		MaxConcurrent: *maxConcurrent,
		QueueDepth:    *queueDepth,
		QueueTimeout:  *queueTimeout,
		CacheBytes:    *cacheMB << 20,
		SlowQueryMs:   *slowQueryMs,
		EnablePprof:   *enablePprof,
		Logger:        logger,
	})

	// Recovery must run before preloading: datasets the WAL and
	// checkpoints already know come back from disk, and the preload
	// below skips them.
	if *dataDir != "" {
		info, err := srv.EnableDurability(*dataDir, *ckptInterval)
		if err != nil {
			log.Fatalf("starkd: durability: %v", err)
		}
		fmt.Printf("starkd: durable in %s (checkpoint %d, %d datasets restored, %d batches replayed, %d ms)\n",
			*dataDir, info.Checkpoint, info.Datasets, info.Batches, info.DurationMs)
	}

	// The default dataset is registered through the generator spec —
	// not pre-materialised events — so under durability its WAL record
	// is a few bytes of seeded-generator config rather than an inline
	// copy of every event.
	if *events > 0 && !srv.HasDataset(server.DefaultDataset) {
		spec := server.DatasetSpec{
			Name: server.DefaultDataset,
			N:    *events, Seed: *seed, Dist: "skewed",
			Width: 1000, Height: 1000, TimeRange: 1_000_000,
		}
		if err := srv.Register(spec); err != nil {
			log.Fatalf("starkd: default dataset: %v", err)
		}
		fmt.Printf("starkd: registered %q (%d events)\n", server.DefaultDataset, *events)
	}
	for _, spec := range datasets {
		parsed, err := server.ParseDatasetFlag(spec)
		if err != nil {
			log.Fatalf("starkd: %v", err)
		}
		if srv.HasDataset(parsed.Name) {
			fmt.Printf("starkd: %q recovered from %s, skipping preload\n", parsed.Name, *dataDir)
			continue
		}
		if err := srv.Register(parsed); err != nil {
			log.Fatalf("starkd: dataset %q: %v", parsed.Name, err)
		}
		fmt.Printf("starkd: registered %q (%d events)\n", parsed.Name, parsed.N)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv}
	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Printf("starkd: serving on %s\n", *addr)

	select {
	case err := <-errc:
		log.Fatalf("starkd: %v", err)
	case <-sigCtx.Done():
	}

	// Graceful shutdown: stop taking requests, then take a final
	// checkpoint and close the WAL so the next boot recovers from the
	// checkpoint alone.
	fmt.Println("starkd: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("starkd: shutdown: %v", err)
	}
	if err := srv.CloseDurability(); err != nil {
		log.Fatalf("starkd: final checkpoint: %v", err)
	}
}
