package stark

// Plan fingerprinting for result caches. A fingerprint identifies
// "this logical query over this physical dataset": it hashes the
// canonical plan lineage, the pending (not yet compiled) predicates,
// the optimizer and index settings, and the generation number of the
// resolved engine dataset. The generation number makes invalidation
// structural — re-building a dataset (re-registering it in a serving
// catalog) yields a fresh generation, so every fingerprint minted
// against the old data can never match again. The query service in
// internal/server keys its LRU result cache on it.

import (
	"context"
	"fmt"
	"strings"

	"stark/internal/plan"
)

// fingerprintOpaqueOps lists lineage operators that embed a caller
// closure the canonical plan form cannot identify: two chains through
// them may serialise identically yet compute different results, so
// fingerprinting refuses rather than risking a wrong cache hit.
var fingerprintOpaqueOps = map[string]bool{
	"FilterValues": true,
	"MapValues":    true,
	"ReKey":        true,
}

// Fingerprint resolves the chain and returns its plan fingerprint: 16
// hex digits identifying the logical query over the current
// generation of the underlying data. Two Dataset values share a
// fingerprint exactly when they were chained off the same resolved
// base with the same predicates and settings — so a repeated hot
// query fingerprints equal, while re-creating the base (a fresh
// Parallelize, a dataset re-registered in a catalog) changes every
// fingerprint by construction.
//
// Chains containing operators the planner cannot canonically describe
// — Where (custom predicates), FilterValues, MapValues, ReKey — are
// not fingerprintable and return an error: their closures are opaque,
// and a cache key that ignored them could alias two different
// queries.
func (d *Dataset[V]) Fingerprint() (string, error) {
	st, err := d.resolve()
	if err != nil {
		return "", err
	}
	// Position bookkeeping for refusal errors: the lineage tree's
	// deepest node is the first operator applied, pending predicates
	// follow it, so "step k of n" tells the caller which link of their
	// chain blocks caching.
	lineageLen := 0
	st.base.Walk(func(*plan.Node) { lineageLen++ })
	total := lineageLen + len(st.pending)
	var opaque string
	opaqueDepth := 0
	var scan func(n *plan.Node, depth int)
	scan = func(n *plan.Node, depth int) {
		if n == nil || opaque != "" {
			return
		}
		switch {
		case fingerprintOpaqueOps[n.Op]:
			opaque, opaqueDepth = n.Op, depth
		case n.Op == "Filter" && strings.HasPrefix(n.Detail, "custom"):
			// A custom Where predicate already folded into the lineage
			// (e.g. by Cache or a join) is just as opaque as a pending
			// one.
			opaque, opaqueDepth = "a custom Where predicate", depth
		}
		for _, c := range n.Children {
			scan(c, depth+1)
		}
	}
	scan(st.base, 0)
	if opaque != "" {
		return "", fmt.Errorf("stark: fingerprint: operator %d of %d in the chain is %s, whose closure cannot be fingerprinted",
			lineageLen-opaqueDepth, total, opaque)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "gen=%d|opt=%t|mode=%s|", st.sds.Dataset().ID(), !st.noOpt, st.mode)
	b.WriteString(st.base.Canonical())
	for i, p := range st.pending {
		if p.attr != nil {
			// Typed attribute predicates hash in canonical form (fields
			// named, constants typed, IN sets sorted), so logically equal
			// attribute filters share a cache key.
			fmt.Fprintf(&b, "|attr %s", p.attr.String())
			continue
		}
		if p.info.Kind == plan.Custom || p.opaque {
			return "", fmt.Errorf("stark: fingerprint: operator %d of %d in the chain (%s) is an opaque predicate (custom Where or distance function), which cannot be fingerprinted",
				lineageLen+i+1, total, p.name)
		}
		// Hash the full query object (exact WKT + time interval), not
		// just the planner's envelope summary: two geometries sharing
		// an envelope are different queries and must not share a cache
		// key.
		fmt.Fprintf(&b, "|%s %s dist=%g", p.info.Kind, p.q, p.info.Expand)
	}
	return plan.Fingerprint(b.String()), nil
}

// StreamParallelContext is StreamParallel with cooperative
// cancellation: once ctx is done no further partition window is
// computed and the stream returns ctx.Err(). This is the action
// behind the query service's NDJSON endpoint, which aborts the scan
// when the client hangs up or the request deadline fires.
func (d *Dataset[V]) StreamParallelContext(ctx context.Context, fn func(Tuple[V]) bool) error {
	if fn == nil {
		return fmt.Errorf("stark: streamParallelContext: nil consumer")
	}
	c, err := d.compiled()
	if err != nil {
		return err
	}
	visit := c.visit
	if visit == nil {
		visit = make([]int, c.ds.NumPartitions())
		for i := range visit {
			visit[i] = i
		}
	}
	m := d.beginPhase()
	var rows int64
	counted := func(kv Tuple[V]) bool {
		rows++
		return fn(kv)
	}
	err = c.ds.StreamPartitionsParallelContext(ctx, visit, 0, counted)
	d.endPhase("stream", m, rows)
	return err
}
