// Package wal implements the write-ahead log and the atomic-file
// primitives behind starkd's durability: an append-only, CRC32C-framed,
// fsync'd record log plus checksummed segment/manifest files, all on a
// real on-disk data directory.
//
// The log is a sequence of segment files wal-NNNNNNNN.log. Each record
// is framed as
//
//	uint32 LE  length of body (1 type byte + payload)
//	uint32 LE  CRC32C (Castagnoli) of body
//	body
//
// Appends go to the newest segment and are fsync'd before Append
// returns — an acknowledged record survives a crash. Replay walks the
// segments in sequence order and stops cleanly at the first torn or
// corrupt record in the NEWEST segment: a crash mid-write leaves at
// most one partial frame at the tail, and everything before it is
// trusted exactly as written (the CRC rejects both truncation inside
// a frame and bit rot within one). A damaged record anywhere else —
// in a non-newest segment, i.e. followed by records that were
// acknowledged after it — is not a crash signature but data loss, and
// Replay surfaces it as an error instead of silently discarding the
// tail. Checkpoints rotate the log to a fresh segment and delete the
// segments the checkpoint made redundant.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// castagnoli is the CRC32C table used for every checksum in this
// package (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the CRC32C of data.
func Checksum(data []byte) uint32 { return crc32.Checksum(data, castagnoli) }

const (
	// frameHeaderSize is the per-record framing overhead.
	frameHeaderSize = 8
	// MaxRecordBytes bounds one record body. An untrusted length
	// header past this is treated as a torn record rather than an
	// allocation request — replay never allocates more than the bytes
	// actually remaining in the segment anyway, but the cap keeps a
	// single record from legitimately growing without bound.
	MaxRecordBytes = 256 << 20
	// segmentPattern names segment files within the directory.
	segmentPattern = "wal-%08d.log"
)

// Record is one logged entry: a caller-defined type tag plus payload.
type Record struct {
	Type    byte
	Payload []byte
}

// Stats is a point-in-time snapshot of the log's write counters.
type Stats struct {
	Appends int64 // records appended
	Bytes   int64 // bytes written, including framing
	Syncs   int64 // fsync calls issued by Append
	Seq     int   // current segment sequence number
}

// Log is an append-only record log over segment files in one
// directory. Safe for concurrent use.
type Log struct {
	dir string

	mu   sync.Mutex
	f    *os.File
	seq  int
	size int64

	// failed poisons the log after a fsync failure: once a sync fails
	// the on-disk state of the tail is unknowable, so further appends
	// are refused rather than risking bookkeeping that diverges from
	// the file. The caller's recourse is to crash and recover.
	failed error

	// fsync performs the durability barrier of Append; nil selects
	// (*os.File).Sync. Tests inject failures through it.
	fsync func(f *os.File) error

	appends atomic.Int64
	bytes   atomic.Int64
	syncs   atomic.Int64

	// SyncObserver, when non-nil, receives the duration of every
	// Append fsync — the hook the server uses to feed its fsync
	// latency histogram without this package depending on the metrics
	// kernel. Set it before the first Append.
	SyncObserver func(time.Duration)
}

// segmentPath returns the path of segment seq.
func segmentPath(dir string, seq int) string {
	return filepath.Join(dir, fmt.Sprintf(segmentPattern, seq))
}

// listSegments returns the sequence numbers present in dir, ascending.
func listSegments(dir string) ([]int, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []int
	for _, e := range ents {
		var seq int
		if _, err := fmt.Sscanf(e.Name(), segmentPattern, &seq); err == nil {
			seqs = append(seqs, seq)
		}
	}
	sort.Ints(seqs)
	return seqs, nil
}

// Open opens (or creates) the log in dir. The newest segment is opened
// for appending; a torn record at its tail — the signature of a crash
// mid-Append — is truncated away so new records never follow garbage.
func Open(dir string) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: creating %s: %w", dir, err)
	}
	seqs, err := listSegments(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: listing %s: %w", dir, err)
	}
	seq := 1
	if len(seqs) > 0 {
		seq = seqs[len(seqs)-1]
	}
	path := segmentPath(dir, seq)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: opening %s: %w", path, err)
	}
	// Find the end of the valid prefix and truncate the torn tail.
	valid, err := validPrefixLen(f)
	if err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("wal: scanning %s: %w", path, err)
	}
	if err := f.Truncate(valid); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("wal: truncating torn tail of %s: %w", path, err)
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		_ = f.Close()
		return nil, err
	}
	l := &Log{dir: dir, f: f, seq: seq, size: valid}
	if len(seqs) == 0 {
		if err := syncDir(dir); err != nil {
			_ = f.Close()
			return nil, err
		}
	}
	return l, nil
}

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }

// Seq returns the current segment sequence number.
func (l *Log) Seq() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Stats returns the write counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	seq := l.seq
	l.mu.Unlock()
	return Stats{
		Appends: l.appends.Load(),
		Bytes:   l.bytes.Load(),
		Syncs:   l.syncs.Load(),
		Seq:     seq,
	}
}

// Append frames rec, writes it to the current segment and fsyncs the
// file. When Append returns nil the record is on stable storage; on
// error the caller must treat the write as not having happened (a
// torn frame at the tail is truncated away on the next Open). A
// failed fsync poisons the log: the kernel may have dropped the
// dirty pages, so nothing about the tail can be trusted afterwards,
// and every subsequent Append or Rotate fails until the process
// restarts and recovers.
func (l *Log) Append(rec Record) error {
	body := make([]byte, 1+len(rec.Payload))
	body[0] = rec.Type
	copy(body[1:], rec.Payload)
	if len(body) > MaxRecordBytes {
		return fmt.Errorf("wal: record of %d bytes exceeds MaxRecordBytes", len(body))
	}
	frame := make([]byte, frameHeaderSize+len(body))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(frame[4:8], Checksum(body))
	copy(frame[frameHeaderSize:], body)

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return errors.New("wal: log is closed")
	}
	if l.failed != nil {
		return fmt.Errorf("wal: log poisoned by earlier fsync failure: %w", l.failed)
	}
	if _, err := l.f.Write(frame); err != nil {
		// A short write leaves a torn frame; rewind the offset so a
		// retry does not interleave, and rely on CRC framing for
		// readers.
		_, _ = l.f.Seek(l.size, io.SeekStart)
		_ = l.f.Truncate(l.size)
		return fmt.Errorf("wal: appending record: %w", err)
	}
	start := time.Now()
	sync := l.fsync
	if sync == nil {
		sync = (*os.File).Sync
	}
	if err := sync(l.f); err != nil {
		// The frame's durability is unknown, but its CRC is valid — left
		// in place it would replay as acknowledged. Scrub it like the
		// short-write path, and poison the log so l.size can never fall
		// behind the real file offset (a later Truncate(l.size) off stale
		// bookkeeping would chop an acknowledged record).
		_, _ = l.f.Seek(l.size, io.SeekStart)
		_ = l.f.Truncate(l.size)
		l.failed = err
		return fmt.Errorf("wal: fsync: %w", err)
	}
	if l.SyncObserver != nil {
		l.SyncObserver(time.Since(start))
	}
	l.size += int64(len(frame))
	l.appends.Add(1)
	l.bytes.Add(int64(len(frame)))
	l.syncs.Add(1)
	return nil
}

// Rotate closes the current segment and starts the next one,
// returning the new sequence number. Records appended after Rotate go
// to the new segment; the old ones remain until RemoveBelow.
func (l *Log) Rotate() (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return 0, errors.New("wal: log is closed")
	}
	if l.failed != nil {
		return 0, fmt.Errorf("wal: log poisoned by earlier fsync failure: %w", l.failed)
	}
	if err := l.f.Sync(); err != nil {
		return 0, fmt.Errorf("wal: fsync before rotate: %w", err)
	}
	if err := l.f.Close(); err != nil {
		return 0, fmt.Errorf("wal: closing segment %d: %w", l.seq, err)
	}
	seq := l.seq + 1
	path := segmentPath(l.dir, seq)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return 0, fmt.Errorf("wal: creating segment %d: %w", seq, err)
	}
	if err := syncDir(l.dir); err != nil {
		_ = f.Close()
		return 0, err
	}
	l.f, l.seq, l.size = f, seq, 0
	return seq, nil
}

// RemoveBelow deletes every segment with sequence number < seq — the
// checkpoint's truncation step.
func (l *Log) RemoveBelow(seq int) error {
	seqs, err := listSegments(l.dir)
	if err != nil {
		return err
	}
	for _, s := range seqs {
		if s < seq {
			if err := os.Remove(segmentPath(l.dir, s)); err != nil {
				return fmt.Errorf("wal: removing segment %d: %w", s, err)
			}
		}
	}
	return syncDir(l.dir)
}

// Close fsyncs and closes the current segment.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}

// Replay walks the segments of dir with sequence number >= fromSeq in
// order, invoking fn for each intact record. A torn or corrupt record
// at the tail of the NEWEST segment is the expected signature of a
// crash mid-Append: replay stops cleanly there — no error — because
// everything before it is exactly the valid prefix the writer
// acknowledged. A damaged record in any OLDER segment is a different
// animal: records acknowledged after it exist on disk but can no
// longer be ordered against the lost one, so replay returns an error
// instead of silently booting without them. A non-nil error from fn
// aborts the replay and is returned.
func Replay(dir string, fromSeq int, fn func(seq int, rec Record) error) error {
	seqs, err := listSegments(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil
		}
		return err
	}
	newest := 0
	if len(seqs) > 0 {
		newest = seqs[len(seqs)-1]
	}
	for _, seq := range seqs {
		if seq < fromSeq {
			continue
		}
		data, err := os.ReadFile(segmentPath(dir, seq))
		if err != nil {
			return fmt.Errorf("wal: reading segment %d: %w", seq, err)
		}
		off := 0
		for {
			rec, n, ok := decodeFrame(data[off:])
			if !ok {
				if n < 0 {
					if seq != newest {
						return fmt.Errorf("wal: segment %d is damaged at offset %d but newer segments exist through %d: "+
							"acknowledged records past the damage cannot be replayed", seq, off, newest)
					}
					// Torn tail of the newest segment: the crash
					// signature Open repairs. Everything before it is
					// the acknowledged prefix.
					return nil
				}
				break // clean end of segment
			}
			if err := fn(seq, rec); err != nil {
				return err
			}
			off += n
		}
	}
	return nil
}

// decodeFrame decodes one record frame from b. Returns (rec, n, true)
// for an intact record of n bytes; (_, 0, false) at a clean end of
// input; (_, -1, false) for a torn or corrupt frame.
func decodeFrame(b []byte) (Record, int, bool) {
	if len(b) == 0 {
		return Record{}, 0, false
	}
	if len(b) < frameHeaderSize {
		return Record{}, -1, false
	}
	length := binary.LittleEndian.Uint32(b[0:4])
	crc := binary.LittleEndian.Uint32(b[4:8])
	// The length header is untrusted until the CRC passes: validate it
	// against the bytes actually present before touching the body, so
	// a corrupt length can never demand memory or read out of bounds.
	if length == 0 || length > MaxRecordBytes || int64(length) > int64(len(b)-frameHeaderSize) {
		return Record{}, -1, false
	}
	body := b[frameHeaderSize : frameHeaderSize+int(length)]
	if Checksum(body) != crc {
		return Record{}, -1, false
	}
	payload := make([]byte, len(body)-1)
	copy(payload, body[1:])
	return Record{Type: body[0], Payload: payload}, frameHeaderSize + int(length), true
}

// validPrefixLen scans an open segment file and returns the byte
// length of its valid record prefix.
func validPrefixLen(f *os.File) (int64, error) {
	data, err := io.ReadAll(f)
	if err != nil {
		return 0, err
	}
	off := 0
	for {
		_, n, ok := decodeFrame(data[off:])
		if !ok {
			return int64(off), nil
		}
		off += n
	}
}

// syncDir fsyncs a directory so renames and creations within it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: opening dir for sync: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("wal: syncing dir %s: %w", dir, err)
	}
	return nil
}
