package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// appendN appends n records with deterministic payloads and returns
// them.
func appendN(t *testing.T, l *Log, n int) []Record {
	t.Helper()
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{
			Type:    byte(i%3 + 1),
			Payload: []byte(fmt.Sprintf("record-%03d:%s", i, bytes.Repeat([]byte{byte(i)}, i%17))),
		}
		if err := l.Append(recs[i]); err != nil {
			t.Fatalf("Append(%d): %v", i, err)
		}
	}
	return recs
}

// replayAll collects every replayed record.
func replayAll(t *testing.T, dir string, fromSeq int) []Record {
	t.Helper()
	var got []Record
	if err := Replay(dir, fromSeq, func(_ int, rec Record) error {
		got = append(got, rec)
		return nil
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return got
}

func assertRecords(t *testing.T, got, want []Record) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Type != want[i].Type || !bytes.Equal(got[i].Payload, want[i].Payload) {
			t.Fatalf("record %d mismatch: got type=%d payload=%q, want type=%d payload=%q",
				i, got[i].Type, got[i].Payload, want[i].Type, want[i].Payload)
		}
	}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := appendN(t, l, 25)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	assertRecords(t, replayAll(t, dir, 0), want)

	if st := mustOpenStats(t, dir); st.Seq != 1 {
		t.Fatalf("segment seq = %d, want 1", st.Seq)
	}
}

func mustOpenStats(t *testing.T, dir string) Stats {
	t.Helper()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = l.Close() }()
	return l.Stats()
}

func TestRotateAndRemoveBelow(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	first := appendN(t, l, 5)
	seq, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if seq != 2 {
		t.Fatalf("Rotate returned seq %d, want 2", seq)
	}
	var second []Record
	for i := 0; i < 4; i++ {
		rec := Record{Type: 9, Payload: []byte(fmt.Sprintf("post-rotate-%d", i))}
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
		second = append(second, rec)
	}
	// Replay everything, then only the suffix, then truncate.
	assertRecords(t, replayAll(t, dir, 0), append(append([]Record{}, first...), second...))
	assertRecords(t, replayAll(t, dir, seq), second)
	if err := l.RemoveBelow(seq); err != nil {
		t.Fatal(err)
	}
	assertRecords(t, replayAll(t, dir, 0), second)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestTornWriteBattery is the core crash-safety property: truncating
// the log at EVERY byte boundary must replay exactly the records whose
// frames fit entirely in the prefix — never a panic, never a partial
// record, never a record past the damage point.
func TestTornWriteBattery(t *testing.T) {
	master := t.TempDir()
	l, err := Open(master)
	if err != nil {
		t.Fatal(err)
	}
	want := appendN(t, l, 12)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segPath := segmentPath(master, 1)
	data, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}

	// Frame boundaries: prefix length -> number of complete records.
	boundaries := make([]int, 0, len(want)+1)
	off := 0
	boundaries = append(boundaries, 0)
	for {
		_, n, ok := decodeFrame(data[off:])
		if !ok {
			break
		}
		off += n
		boundaries = append(boundaries, off)
	}
	if off != len(data) {
		t.Fatalf("segment has %d trailing bytes after %d records", len(data)-off, len(boundaries)-1)
	}
	completeBelow := func(cut int) int {
		n := 0
		for i := 1; i < len(boundaries); i++ {
			if boundaries[i] <= cut {
				n = i
			}
		}
		return n
	}

	dir := t.TempDir()
	target := segmentPath(dir, 1)
	for cut := 0; cut <= len(data); cut++ {
		if err := os.WriteFile(target, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got := replayAll(t, dir, 0)
		wantN := completeBelow(cut)
		if len(got) != wantN {
			t.Fatalf("cut at byte %d: replayed %d records, want %d", cut, len(got), wantN)
		}
		assertRecords(t, got, want[:wantN])

		// Re-opening for append must truncate the torn tail and keep
		// accepting records.
		l, err := Open(dir)
		if err != nil {
			t.Fatalf("cut at byte %d: Open: %v", cut, err)
		}
		if err := l.Append(Record{Type: 7, Payload: []byte("appended-after-crash")}); err != nil {
			t.Fatalf("cut at byte %d: Append after reopen: %v", cut, err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		got = replayAll(t, dir, 0)
		if len(got) != wantN+1 {
			t.Fatalf("cut at byte %d: after reopen+append replayed %d records, want %d", cut, len(got), wantN+1)
		}
	}
}

// TestBitFlipBattery flips one byte at every offset: replay must never
// panic and must only return records that are byte-identical to a
// prefix of what was written (a flip can only shorten the replayed
// prefix, never corrupt a surviving record).
func TestBitFlipBattery(t *testing.T) {
	master := t.TempDir()
	l, err := Open(master)
	if err != nil {
		t.Fatal(err)
	}
	want := appendN(t, l, 10)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(segmentPath(master, 1))
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	target := segmentPath(dir, 1)
	rng := rand.New(rand.NewSource(42))
	for off := 0; off < len(data); off++ {
		mutated := append([]byte(nil), data...)
		flip := byte(1 << rng.Intn(8))
		mutated[off] ^= flip
		if err := os.WriteFile(target, mutated, 0o644); err != nil {
			t.Fatal(err)
		}
		got := replayAll(t, dir, 0)
		if len(got) > len(want) {
			t.Fatalf("flip at byte %d: replayed %d records, wrote only %d", off, len(got), len(want))
		}
		for i, rec := range got {
			if rec.Type != want[i].Type || !bytes.Equal(rec.Payload, want[i].Payload) {
				t.Fatalf("flip at byte %d: record %d corrupted but passed CRC", off, i)
			}
		}
	}
}

// TestHugeLengthHeader plants an absurd length header: replay must
// treat it as torn, not allocate.
func TestHugeLengthHeader(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := appendN(t, l, 3)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := segmentPath(dir, 1)
	frame := make([]byte, frameHeaderSize)
	binary.LittleEndian.PutUint32(frame[0:4], 0xFFFFFFF0)
	binary.LittleEndian.PutUint32(frame[4:8], 0xDEADBEEF)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(frame); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	assertRecords(t, replayAll(t, dir, 0), want)
}

// TestMidLogCorruptionSurfaces: a damaged record in a non-newest
// segment is data loss, not a crash signature — acknowledged records
// exist after it. Replay must surface it as an error instead of
// silently booting without the tail.
func TestMidLogCorruptionSurfaces(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	first := appendN(t, l, 4)
	seq, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	var second []Record
	for i := 0; i < 3; i++ {
		rec := Record{Type: 8, Payload: []byte(fmt.Sprintf("post-rotate-%d", i))}
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
		second = append(second, rec)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip one byte mid-record in segment 1: a full replay must refuse.
	path1 := segmentPath(dir, 1)
	intact, err := os.ReadFile(path1)
	if err != nil {
		t.Fatal(err)
	}
	mutated := append([]byte(nil), intact...)
	mutated[len(mutated)/2] ^= 0x01
	if err := os.WriteFile(path1, mutated, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Replay(dir, 0, func(int, Record) error { return nil }); err == nil {
		t.Fatal("mid-log corruption replayed as a clean stop")
	}
	// A suffix replay that starts past the damaged segment (the
	// checkpoint recovery path) never reads it and stays clean.
	assertRecords(t, replayAll(t, dir, seq), second)

	// Restore segment 1 and instead tear the NEWEST segment's tail:
	// the expected crash-mid-Append signature — clean stop, no error.
	if err := os.WriteFile(path1, intact, 0o644); err != nil {
		t.Fatal(err)
	}
	path2 := segmentPath(dir, seq)
	tail, err := os.ReadFile(path2)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path2, tail[:len(tail)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	want := append(append([]Record{}, first...), second[:len(second)-1]...)
	assertRecords(t, replayAll(t, dir, 0), want)
}

// TestFsyncFailurePoisonsLog: a failed fsync must scrub the
// unacknowledged frame (so recovery cannot resurrect it) and poison
// the log (so bookkeeping can never diverge from the file).
func TestFsyncFailurePoisonsLog(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := appendN(t, l, 2)

	injected := errors.New("injected fsync failure")
	l.fsync = func(*os.File) error { return injected }
	if err := l.Append(Record{Type: 7, Payload: []byte("never-acknowledged")}); !errors.Is(err, injected) {
		t.Fatalf("Append through failing fsync: %v", err)
	}
	// The frame was scrubbed: on-disk length matches the bookkept size.
	fi, err := os.Stat(segmentPath(dir, 1))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != l.size {
		t.Fatalf("file is %d bytes, log accounts for %d", fi.Size(), l.size)
	}

	// Poisoned: appends and rotations fail even with fsync healthy again.
	l.fsync = nil
	if err := l.Append(Record{Type: 7, Payload: []byte("x")}); err == nil {
		t.Fatal("poisoned log accepted an append")
	}
	if _, err := l.Rotate(); err == nil {
		t.Fatal("poisoned log rotated")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery sees exactly the acknowledged records, and a fresh Open
	// (the restart) accepts appends again.
	assertRecords(t, replayAll(t, dir, 0), want)
	l2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.Append(Record{Type: 7, Payload: []byte("after-restart")}); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	if got := replayAll(t, dir, 0); len(got) != len(want)+1 {
		t.Fatalf("replayed %d records after restart, want %d", len(got), len(want)+1)
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Record{Type: 1, Payload: []byte("x")}); err == nil {
		t.Fatal("Append on closed log succeeded")
	}
}

func TestWriteFileAtomicReplaces(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "artifact")
	if err := WriteFileAtomic(path, []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("two")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "two" {
		t.Fatalf("read %q, want %q", got, "two")
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind: %v", err)
	}
}

func TestChecksummedRoundTripAndCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "blob")
	payload := []byte(`{"hello":"world","n":12345}`)
	if err := WriteChecksummed(path, payload); err != nil {
		t.Fatal(err)
	}
	got, err := ReadChecksummed(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload mismatch: %q", got)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Every single-byte flip and every truncation must be rejected.
	for off := 0; off < len(data); off++ {
		mutated := append([]byte(nil), data...)
		mutated[off] ^= 0x40
		if err := os.WriteFile(path, mutated, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadChecksummed(path); err == nil {
			t.Fatalf("flip at byte %d accepted", off)
		}
	}
	for cut := 0; cut < len(data); cut++ {
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadChecksummed(path); err == nil {
			t.Fatalf("truncation at byte %d accepted", cut)
		}
	}
}

func TestEmptyPayloadRecord(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Record{Type: 5}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, dir, 0)
	if len(got) != 1 || got[0].Type != 5 || len(got[0].Payload) != 0 {
		t.Fatalf("got %+v", got)
	}
}
