package wal

// Atomic and checksummed file primitives for checkpoint artefacts
// (segment files, manifests). The write contract everywhere is
// write-temp + fsync + rename + dir fsync: a crash at any instant
// leaves either the complete old file, the complete new file, or a
// stray .tmp that readers ignore — never a torn visible file.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// blobMagic marks a checksummed blob file ("STKB").
const blobMagic = uint32(0x53544B42)

// ErrCorrupt reports a checksummed file whose contents fail
// validation (bad magic, impossible length, CRC mismatch).
var ErrCorrupt = errors.New("wal: corrupt checksummed file")

// WriteFileAtomic writes data to path with crash-safe replace
// semantics: the bytes land in path.tmp first, are fsync'd, and only
// then renamed over path (followed by a directory fsync). A reader —
// or a rebooting recovery — sees the old contents or the new, never a
// prefix.
func WriteFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating %s: %w", tmp, err)
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return fmt.Errorf("wal: writing %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return fmt.Errorf("wal: syncing %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("wal: closing %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("wal: renaming %s: %w", tmp, err)
	}
	return syncDir(filepath.Dir(path))
}

// WriteChecksummed writes data to path atomically, wrapped in a
// checksummed container (magic + length + payload + CRC32C), so a
// reader can distinguish a complete artefact from any torn or
// bit-rotted survivor of a crash.
func WriteChecksummed(path string, data []byte) error {
	buf := make([]byte, 8+len(data)+4)
	binary.LittleEndian.PutUint32(buf[0:4], blobMagic)
	binary.LittleEndian.PutUint32(buf[4:8], uint32(len(data)))
	copy(buf[8:], data)
	binary.LittleEndian.PutUint32(buf[8+len(data):], Checksum(buf[:8+len(data)]))
	return WriteFileAtomic(path, buf)
}

// ReadChecksummed reads and validates a file written by
// WriteChecksummed, returning the payload. Any validation failure —
// truncation, trailing garbage, bit flips anywhere in the container —
// returns an error wrapping ErrCorrupt.
func ReadChecksummed(path string) ([]byte, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(buf) < 12 {
		return nil, fmt.Errorf("%w: %s: %d bytes is shorter than the container", ErrCorrupt, path, len(buf))
	}
	if binary.LittleEndian.Uint32(buf[0:4]) != blobMagic {
		return nil, fmt.Errorf("%w: %s: bad magic", ErrCorrupt, path)
	}
	length := binary.LittleEndian.Uint32(buf[4:8])
	// Validate the untrusted length against the bytes present before
	// using it: exact fit required, so truncation and garbage tails
	// are both rejected.
	if int64(length) != int64(len(buf)-12) {
		return nil, fmt.Errorf("%w: %s: header says %d payload bytes, file holds %d", ErrCorrupt, path, length, len(buf)-12)
	}
	want := binary.LittleEndian.Uint32(buf[8+length:])
	if Checksum(buf[:8+length]) != want {
		return nil, fmt.Errorf("%w: %s: checksum mismatch", ErrCorrupt, path)
	}
	return buf[8 : 8+length], nil
}
