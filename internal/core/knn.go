package core

import (
	"container/heap"
	"context"
	"fmt"
	"sort"

	"stark/internal/engine"
	"stark/internal/geom"
	"stark/internal/stobject"
)

// This file implements the k nearest neighbour operator. With a
// spatial partitioner the search probes partitions in order of their
// extent's distance to the query point and stops as soon as the next
// partition's extent is farther than the current k-th neighbour — the
// pruning that makes partitioned kNN sub-linear in the number of
// partitions. Without a partitioner every partition is scanned.
//
// Partitions are processed in rounds of at most Parallelism tasks
// through the engine's task pool: within a round the per-partition
// scans (or index probes) run concurrently, and between rounds the
// merged heap re-checks the distance bound, preserving the pruning
// guarantee. Both variants take a context and stop mid-scan once it
// is cancelled, so an abandoned /api query stops burning executors.

// knnCheckEvery is how many records a kNN partition scan processes
// between context cancellation checks.
const knnCheckEvery = 1024

// NeighborResult is one kNN result record with its distance.
type NeighborResult[V any] struct {
	Key      stobject.STObject
	Value    V
	Distance float64
}

// partDist orders partitions by a lower bound of their distance to
// the query point.
type partDist struct {
	idx  int
	dist float64
}

// knnOrder returns the non-empty partitions ordered ascending by the
// extent's distance to (x, y); with a nil extent func (no
// partitioner) every partition sorts at distance 0.
func knnOrder(extent func(i int) (geom.Envelope, bool), n int, x, y float64) []partDist {
	order := make([]partDist, 0, n)
	for i := 0; i < n; i++ {
		d := 0.0
		if extent != nil {
			ext, ok := extent(i)
			if !ok {
				continue // empty partition can never contribute
			}
			d = ext.DistanceToPoint(x, y)
		}
		order = append(order, partDist{idx: i, dist: d})
	}
	sort.Slice(order, func(i, j int) bool { return order[i].dist < order[j].dist })
	return order
}

// mergeNeighbors pushes nbrs through the bounded max-heap.
func mergeNeighbors[V any](h *maxHeap[V], k int, nbrs []NeighborResult[V]) {
	for _, nb := range nbrs {
		if h.Len() < k {
			heap.Push(h, nb)
		} else if nb.Distance < (*h)[0].Distance {
			(*h)[0] = nb
			heap.Fix(h, 0)
		}
	}
}

// drainHeap empties the heap into an ascending-distance slice.
func drainHeap[V any](h *maxHeap[V]) []NeighborResult[V] {
	out := make([]NeighborResult[V], h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(h).(NeighborResult[V])
	}
	return out
}

// knnRounds drives the shared round loop: partitions are taken from
// order in rounds of the context's parallelism, each round's
// partitions are scanned concurrently by scan (returning the
// partition's local candidate list), and results merge into the heap
// between rounds. canPrune reports whether pruning by the extent
// lower bound is valid (Euclidean metric with a partitioner).
func knnRounds[V any](ctx context.Context, ec *engine.Context, rec *engine.Recorder, order []partDist, k int,
	canPrune bool, scan func(p int) ([]NeighborResult[V], error)) ([]NeighborResult[V], error) {
	h := &maxHeap[V]{}
	heap.Init(h)
	width := ec.Parallelism()
	if width < 1 {
		width = 1
	}
	for start := 0; start < len(order); {
		// Stop when even the extent lower bound of the next-nearest
		// partition exceeds the current k-th distance: order is
		// ascending, so every remaining partition prunes too.
		if canPrune && h.Len() == k && order[start].dist > (*h)[0].Distance {
			rec.TasksSkipped(int64(len(order) - start))
			break
		}
		end := start + width
		if end > len(order) {
			end = len(order)
		}
		round := order[start:end]
		start = end

		locals := make([][]NeighborResult[V], len(round))
		idx := make([]int, len(round))
		for i := range idx {
			idx[i] = i
		}
		err := ec.RunJobRecorder(ctx, rec, idx, func(t int) error {
			nbrs, err := scan(round[t].idx)
			if err != nil {
				return err
			}
			locals[t] = nbrs
			return nil
		})
		if err != nil {
			return nil, err
		}
		for _, nbrs := range locals {
			mergeNeighbors(h, k, nbrs)
		}
	}
	return drainHeap(h), nil
}

// KNN returns the k records nearest to q under df (nil selects the
// planar distance between q's geometry and each record's geometry).
// Results are sorted by ascending distance. Fewer than k records are
// returned when the dataset is smaller than k.
func (s *SpatialDataset[V]) KNN(q stobject.STObject, k int, df geom.DistanceFunc) ([]NeighborResult[V], error) {
	return s.KNNContext(context.Background(), q, k, df)
}

// KNNContext is KNN with cooperative cancellation: per-partition
// scans run through the task pool, no further partition is scheduled
// once ctx is done, and running scans abort within knnCheckEvery
// records.
func (s *SpatialDataset[V]) KNNContext(ctx context.Context, q stobject.STObject, k int, df geom.DistanceFunc) ([]NeighborResult[V], error) {
	if k <= 0 {
		return nil, fmt.Errorf("core: kNN needs k >= 1, got %d", k)
	}
	qc := q.Centroid()
	var extent func(i int) (geom.Envelope, bool)
	if s.sp != nil {
		extent = func(i int) (geom.Envelope, bool) {
			ext := s.sp.Extent(i)
			return ext, !ext.IsEmpty()
		}
	}
	order := knnOrder(extent, s.ds.NumPartitions(), qc.X, qc.Y)
	rec := s.recorder()
	canPrune := s.sp != nil && df == nil
	return knnRounds(ctx, s.Context(), rec, order, k, canPrune, func(p int) ([]NeighborResult[V], error) {
		// Stream the partition through a local heap — the filter
		// chain upstream (if any) fuses into this scan.
		lh := &maxHeap[V]{}
		heap.Init(lh)
		var scanned int64
		var ctxErr error
		err := s.ds.EachPartition(p, func(kv Tuple[V]) bool {
			scanned++
			if scanned%knnCheckEvery == 0 {
				if ctxErr = ctx.Err(); ctxErr != nil {
					return false
				}
			}
			d := q.Distance(kv.Key, df)
			if lh.Len() < k {
				heap.Push(lh, NeighborResult[V]{Key: kv.Key, Value: kv.Value, Distance: d})
			} else if d < (*lh)[0].Distance {
				(*lh)[0] = NeighborResult[V]{Key: kv.Key, Value: kv.Value, Distance: d}
				heap.Fix(lh, 0)
			}
			return true
		})
		rec.ElementsScanned(scanned)
		if err == nil {
			err = ctxErr
		}
		if err != nil {
			return nil, err
		}
		return *lh, nil
	})
}

// KNN on an indexed dataset probes each relevant partition's R-tree
// with branch-and-bound and merges the per-partition results. The
// same extent-distance pruning as the scan version applies.
func (s *IndexedDataset[V]) KNN(q stobject.STObject, k int, df geom.DistanceFunc) ([]NeighborResult[V], error) {
	return s.KNNContext(context.Background(), q, k, df)
}

// KNNContext is KNN with cooperative cancellation and pooled
// per-partition index probes.
func (s *IndexedDataset[V]) KNNContext(ctx context.Context, q stobject.STObject, k int, df geom.DistanceFunc) ([]NeighborResult[V], error) {
	if k <= 0 {
		return nil, fmt.Errorf("core: kNN needs k >= 1, got %d", k)
	}
	qc := q.Centroid()
	var extent func(i int) (geom.Envelope, bool)
	if s.sp != nil {
		extent = func(i int) (geom.Envelope, bool) {
			ext := s.sp.Extent(i)
			return ext, !ext.IsEmpty()
		}
	}
	order := knnOrder(extent, s.parts.NumPartitions(), qc.X, qc.Y)
	rec := s.recorder()
	canPrune := s.sp != nil && df == nil
	return knnRounds(ctx, s.Context(), rec, order, k, canPrune, func(p int) ([]NeighborResult[V], error) {
		ips, err := s.parts.ComputePartition(p)
		if err != nil {
			return nil, err
		}
		lh := &maxHeap[V]{}
		heap.Init(lh)
		for _, ip := range ips {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			rec.IndexProbes(1)
			var nbrs []neighborRaw
			if df == nil {
				exact := func(id int32) float64 { return q.Distance(ip.Items[id].Key, nil) }
				for _, nb := range ip.Tree.KNN(qc.X, qc.Y, k, exact) {
					nbrs = append(nbrs, neighborRaw{id: nb.ID, dist: nb.Distance})
				}
			} else {
				// Custom metric: the tree's Euclidean bound is not
				// valid, fall back to scanning the partition items.
				for i, kv := range ip.Items {
					nbrs = append(nbrs, neighborRaw{id: int32(i), dist: q.Distance(kv.Key, df)})
				}
			}
			rec.CandidatesRefined(int64(len(nbrs)))
			for _, nb := range nbrs {
				kv := ip.Items[nb.id]
				if lh.Len() < k {
					heap.Push(lh, NeighborResult[V]{Key: kv.Key, Value: kv.Value, Distance: nb.dist})
				} else if nb.dist < (*lh)[0].Distance {
					(*lh)[0] = NeighborResult[V]{Key: kv.Key, Value: kv.Value, Distance: nb.dist}
					heap.Fix(lh, 0)
				}
			}
		}
		return *lh, nil
	})
}

type neighborRaw struct {
	id   int32
	dist float64
}

// maxHeap keeps the k smallest distances with the largest on top.
type maxHeap[V any] []NeighborResult[V]

func (h maxHeap[V]) Len() int            { return len(h) }
func (h maxHeap[V]) Less(i, j int) bool  { return h[i].Distance > h[j].Distance }
func (h maxHeap[V]) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *maxHeap[V]) Push(x interface{}) { *h = append(*h, x.(NeighborResult[V])) }
func (h *maxHeap[V]) Pop() interface{} {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}
