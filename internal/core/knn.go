package core

import (
	"container/heap"
	"fmt"
	"sort"

	"stark/internal/geom"
	"stark/internal/stobject"
)

// This file implements the k nearest neighbour operator. With a
// spatial partitioner the search probes partitions in order of their
// extent's distance to the query point and stops as soon as the next
// partition's extent is farther than the current k-th neighbour — the
// pruning that makes partitioned kNN sub-linear in the number of
// partitions. Without a partitioner every partition is scanned.

// NeighborResult is one kNN result record with its distance.
type NeighborResult[V any] struct {
	Key      stobject.STObject
	Value    V
	Distance float64
}

// KNN returns the k records nearest to q under df (nil selects the
// planar distance between q's geometry and each record's geometry).
// Results are sorted by ascending distance. Fewer than k records are
// returned when the dataset is smaller than k.
func (s *SpatialDataset[V]) KNN(q stobject.STObject, k int, df geom.DistanceFunc) ([]NeighborResult[V], error) {
	if k <= 0 {
		return nil, fmt.Errorf("core: kNN needs k >= 1, got %d", k)
	}
	qc := q.Centroid()

	// Order partitions by a lower bound of their distance to q.
	type partDist struct {
		idx  int
		dist float64
	}
	n := s.ds.NumPartitions()
	order := make([]partDist, 0, n)
	for i := 0; i < n; i++ {
		d := 0.0
		if s.sp != nil {
			ext := s.sp.Extent(i)
			if ext.IsEmpty() {
				continue // empty partition can never contribute
			}
			d = ext.DistanceToPoint(qc.X, qc.Y)
		}
		order = append(order, partDist{idx: i, dist: d})
	}
	sort.Slice(order, func(i, j int) bool { return order[i].dist < order[j].dist })

	h := &maxHeap[V]{}
	heap.Init(h)
	metrics := s.Context().Metrics()
	pruned := 0
	for _, pd := range order {
		// Stop when even the extent lower bound exceeds the current
		// k-th distance. Only valid when df is consistent with the
		// Euclidean lower bound; custom metrics scan everything.
		if s.sp != nil && df == nil && h.Len() == k && pd.dist > (*h)[0].Distance {
			pruned++
			continue
		}
		// Stream the partition through the heap — the filter chain
		// upstream (if any) fuses into this scan.
		var scanned int64
		err := s.ds.EachPartition(pd.idx, func(kv Tuple[V]) bool {
			scanned++
			d := q.Distance(kv.Key, df)
			if h.Len() < k {
				heap.Push(h, NeighborResult[V]{Key: kv.Key, Value: kv.Value, Distance: d})
			} else if d < (*h)[0].Distance {
				(*h)[0] = NeighborResult[V]{Key: kv.Key, Value: kv.Value, Distance: d}
				heap.Fix(h, 0)
			}
			return true
		})
		metrics.ElementsScanned.Add(scanned)
		if err != nil {
			return nil, err
		}
	}
	if pruned > 0 {
		metrics.TasksSkipped.Add(int64(pruned))
	}

	out := make([]NeighborResult[V], h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(h).(NeighborResult[V])
	}
	return out, nil
}

// KNN on an indexed dataset probes each relevant partition's R-tree
// with branch-and-bound and merges the per-partition results. The
// same extent-distance pruning as the scan version applies.
func (s *IndexedDataset[V]) KNN(q stobject.STObject, k int, df geom.DistanceFunc) ([]NeighborResult[V], error) {
	if k <= 0 {
		return nil, fmt.Errorf("core: kNN needs k >= 1, got %d", k)
	}
	qc := q.Centroid()

	type partDist struct {
		idx  int
		dist float64
	}
	n := s.parts.NumPartitions()
	order := make([]partDist, 0, n)
	for i := 0; i < n; i++ {
		d := 0.0
		if s.sp != nil {
			ext := s.sp.Extent(i)
			if ext.IsEmpty() {
				continue
			}
			d = ext.DistanceToPoint(qc.X, qc.Y)
		}
		order = append(order, partDist{idx: i, dist: d})
	}
	sort.Slice(order, func(i, j int) bool { return order[i].dist < order[j].dist })

	h := &maxHeap[V]{}
	heap.Init(h)
	metrics := s.Context().Metrics()
	for _, pd := range order {
		if s.sp != nil && df == nil && h.Len() == k && pd.dist > (*h)[0].Distance {
			metrics.TasksSkipped.Add(1)
			continue
		}
		ips, err := s.parts.ComputePartition(pd.idx)
		if err != nil {
			return nil, err
		}
		for _, ip := range ips {
			metrics.IndexProbes.Add(1)
			var nbrs []neighborRaw
			if df == nil {
				exact := func(id int32) float64 { return q.Distance(ip.Items[id].Key, nil) }
				for _, nb := range ip.Tree.KNN(qc.X, qc.Y, k, exact) {
					nbrs = append(nbrs, neighborRaw{id: nb.ID, dist: nb.Distance})
				}
			} else {
				// Custom metric: the tree's Euclidean bound is not
				// valid, fall back to scanning the partition items.
				for i, kv := range ip.Items {
					nbrs = append(nbrs, neighborRaw{id: int32(i), dist: q.Distance(kv.Key, df)})
				}
			}
			metrics.CandidatesRefined.Add(int64(len(nbrs)))
			for _, nb := range nbrs {
				kv := ip.Items[nb.id]
				if h.Len() < k {
					heap.Push(h, NeighborResult[V]{Key: kv.Key, Value: kv.Value, Distance: nb.dist})
				} else if nb.dist < (*h)[0].Distance {
					(*h)[0] = NeighborResult[V]{Key: kv.Key, Value: kv.Value, Distance: nb.dist}
					heap.Fix(h, 0)
				}
			}
		}
	}

	out := make([]NeighborResult[V], h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(h).(NeighborResult[V])
	}
	return out, nil
}

type neighborRaw struct {
	id   int32
	dist float64
}

// maxHeap keeps the k smallest distances with the largest on top.
type maxHeap[V any] []NeighborResult[V]

func (h maxHeap[V]) Len() int            { return len(h) }
func (h maxHeap[V]) Less(i, j int) bool  { return h[i].Distance > h[j].Distance }
func (h maxHeap[V]) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *maxHeap[V]) Push(x interface{}) { *h = append(*h, x.(NeighborResult[V])) }
func (h *maxHeap[V]) Pop() interface{} {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}
