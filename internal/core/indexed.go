package core

import (
	"fmt"

	"stark/internal/dfs"
	"stark/internal/engine"
	"stark/internal/geom"
	"stark/internal/index"
	"stark/internal/stobject"
)

// This file implements STARK's three indexing modes on top of the
// scan operators in filter.go:
//
//   - no indexing: the plain SpatialDataset operators;
//   - live indexing (liveIndex method in the DSL): when a partition is
//     processed, its content is first put into an R-tree, the tree is
//     queried with the query object, and the candidates are refined
//     with the exact spatio-temporal predicate;
//   - persistent indexing (index method in the DSL): the per-partition
//     trees are materialised so they are built at most once, and can
//     be saved to the simulated HDFS and re-attached in later runs.

// IndexedPartition is one partition of an IndexedDataset: the records
// plus an R-tree over their envelopes (entry ID = slice position).
type IndexedPartition[V any] struct {
	Items []Tuple[V]
	Tree  *index.RTree
}

// IndexedDataset is a SpatialDataset whose partitions carry R-trees.
type IndexedDataset[V any] struct {
	parts *engine.Dataset[IndexedPartition[V]]
	sp    sp
	order int
	// rec, when non-nil, routes metric attribution (see WithRecorder);
	// nil selects the context's root recorder.
	rec *engine.Recorder
}

// recorder returns the recorder operators on this dataset charge.
func (s *IndexedDataset[V]) recorder() *engine.Recorder {
	if s.rec != nil {
		return s.rec
	}
	return s.parts.Context().Recorder()
}

// WithRecorder returns a view of the indexed dataset whose probes and
// tasks are charged to rec — the same attribution overlay as
// SpatialDataset.WithRecorder. The partition trees are shared, not
// rebuilt. A nil rec returns the receiver unchanged.
func (s *IndexedDataset[V]) WithRecorder(rec *engine.Recorder) *IndexedDataset[V] {
	if rec == nil || s.rec == rec {
		return s
	}
	return &IndexedDataset[V]{parts: s.parts.WithRecorder(rec), sp: s.sp, order: s.order, rec: rec}
}

// sp aliases the partitioner interface locally to keep struct
// definitions short.
type sp = interface {
	NumPartitions() int
	PartitionFor(o stobject.STObject) int
	Bounds(i int) geom.Envelope
	Extent(i int) geom.Envelope
}

// LiveIndex returns an indexed view of the dataset with the given
// R-tree order. When p is non-nil the dataset is repartitioned by p
// first, mirroring liveIndex(order, partitioner). Trees are built
// lazily inside each partition task, on every job — the live mode
// trades index build time per query for zero memory retention.
func (s *SpatialDataset[V]) LiveIndex(order int, p sp) (*IndexedDataset[V], error) {
	base := s
	if p != nil {
		repartitioned, err := s.PartitionBy(p)
		if err != nil {
			return nil, err
		}
		base = repartitioned
	}
	parts := engine.MapPartitions(base.ds, func(_ int, in []Tuple[V]) ([]IndexedPartition[V], error) {
		return []IndexedPartition[V]{buildIndexedPartition(in, order)}, nil
	})
	return &IndexedDataset[V]{parts: parts, sp: base.sp, order: order, rec: base.rec}, nil
}

// Index returns an indexed view whose trees are materialised once and
// reused across queries — STARK's persistent indexing mode. When p is
// non-nil the dataset is repartitioned first.
func (s *SpatialDataset[V]) Index(order int, p sp) (*IndexedDataset[V], error) {
	idx, err := s.LiveIndex(order, p)
	if err != nil {
		return nil, err
	}
	idx.parts.Cache()
	// Force materialisation now so subsequent queries only probe.
	if _, err := idx.parts.Count(); err != nil {
		return nil, err
	}
	return idx, nil
}

func buildIndexedPartition[V any](in []Tuple[V], order int) IndexedPartition[V] {
	tree := index.New(order)
	for i, kv := range in {
		_ = tree.Insert(kv.Key.Envelope(), int32(i))
	}
	tree.Build()
	return IndexedPartition[V]{Items: in, Tree: tree}
}

// Partitioner returns the spatial partitioner, or nil.
func (s *IndexedDataset[V]) Partitioner() sp { return s.sp }

// Order returns the R-tree order used for the partition indexes.
func (s *IndexedDataset[V]) Order() int { return s.order }

// Context returns the engine context.
func (s *IndexedDataset[V]) Context() *engine.Context { return s.parts.Context() }

// NumPartitions returns the partition count.
func (s *IndexedDataset[V]) NumPartitions() int { return s.parts.NumPartitions() }

// relevantPartitions mirrors SpatialDataset.relevantPartitions.
func (s *IndexedDataset[V]) relevantPartitions(q geom.Envelope) []int {
	if s.sp == nil {
		parts := make([]int, s.parts.NumPartitions())
		for i := range parts {
			parts[i] = i
		}
		return parts
	}
	var visit []int
	for i := 0; i < s.sp.NumPartitions(); i++ {
		if s.sp.Extent(i).Intersects(q) {
			visit = append(visit, i)
		}
	}
	if pruned := s.parts.NumPartitions() - len(visit); pruned > 0 {
		s.recorder().TasksSkipped(int64(pruned))
	}
	return visit
}

// filterIndexed probes each relevant partition tree with the query
// envelope and refines the candidates with the exact predicate —
// including the temporal component, which is evaluated during the
// candidate pruning step exactly as the paper describes.
func (s *IndexedDataset[V]) filterIndexed(q stobject.STObject, pruneEnv geom.Envelope, pred stobject.Predicate) ([]Tuple[V], error) {
	return s.FilterPartitions(q, pruneEnv, pred, nil)
}

// FilterPartitions is Filter restricted to an explicit visit list —
// the entry point of the cost-based planner, which prunes partitions
// from collected statistics instead of partitioner extents. visit nil
// selects the partitioner-pruned default.
func (s *IndexedDataset[V]) FilterPartitions(q stobject.STObject, pruneEnv geom.Envelope, pred stobject.Predicate, visit []int) ([]Tuple[V], error) {
	return s.FilterPartitionsRows(q, pruneEnv, func(kv Tuple[V]) bool { return pred(kv.Key, q) }, visit)
}

// FilterPartitionsRows is FilterPartitions with a payload-aware
// candidate check: keep sees the whole record, so typed attribute
// predicates can refine index candidates inline alongside the exact
// spatial predicates.
func (s *IndexedDataset[V]) FilterPartitionsRows(q stobject.STObject, pruneEnv geom.Envelope, keep func(kv Tuple[V]) bool, visit []int) ([]Tuple[V], error) {
	rec := s.recorder()
	qEnv := q.Envelope()
	if !pruneEnv.IsEmpty() {
		qEnv = pruneEnv
	}
	results := engine.MapPartitions(s.parts, func(_ int, in []IndexedPartition[V]) ([]Tuple[V], error) {
		var out []Tuple[V]
		for _, ip := range in {
			rec.IndexProbes(1)
			candidates := ip.Tree.Query(qEnv, nil)
			rec.CandidatesRefined(int64(len(candidates)))
			for _, id := range candidates {
				kv := ip.Items[id]
				if keep(kv) {
					out = append(out, kv)
				}
			}
		}
		return out, nil
	})
	if visit == nil {
		visit = s.relevantPartitions(qEnv)
	}
	return results.CollectPartitions(visit)
}

// Filter probes the index with pruneEnv (or q's envelope when empty)
// and refines the candidates with an arbitrary spatio-temporal
// predicate — the generic entry point the named operators below
// specialise, exported so higher layers can dispatch uniformly.
func (s *IndexedDataset[V]) Filter(q stobject.STObject, pruneEnv geom.Envelope, pred stobject.Predicate) ([]Tuple[V], error) {
	return s.filterIndexed(q, pruneEnv, pred)
}

// Intersects returns the records intersecting q (index-accelerated).
func (s *IndexedDataset[V]) Intersects(q stobject.STObject) ([]Tuple[V], error) {
	return s.filterIndexed(q, geom.EmptyEnvelope(), stobject.Intersects)
}

// Contains returns the records containing q (index-accelerated).
func (s *IndexedDataset[V]) Contains(q stobject.STObject) ([]Tuple[V], error) {
	return s.filterIndexed(q, geom.EmptyEnvelope(), stobject.Contains)
}

// ContainedBy returns the records contained by q (index-accelerated).
func (s *IndexedDataset[V]) ContainedBy(q stobject.STObject) ([]Tuple[V], error) {
	return s.filterIndexed(q, geom.EmptyEnvelope(), stobject.ContainedBy)
}

// WithinDistance returns the records within maxDist of q. The index
// is probed with the query envelope expanded by maxDist, then
// candidates are refined with the exact distance predicate.
func (s *IndexedDataset[V]) WithinDistance(q stobject.STObject, maxDist float64, df geom.DistanceFunc) ([]Tuple[V], error) {
	return s.filterIndexed(q, q.Envelope().ExpandBy(maxDist),
		stobject.WithinDistancePredicate(maxDist, df))
}

// Flat returns the records as a lazily flattened engine dataset,
// preserving the partition structure — for actions that stream or
// stop early instead of materialising everything.
func (s *IndexedDataset[V]) Flat() *engine.Dataset[Tuple[V]] {
	return engine.FlatMap(s.parts, func(ip IndexedPartition[V]) []Tuple[V] { return ip.Items })
}

// Collect returns all records of the indexed dataset.
func (s *IndexedDataset[V]) Collect() ([]Tuple[V], error) {
	return s.Flat().Collect()
}

// Count returns the number of records. Partition lengths are summed
// inside the job — neither the records nor the trees travel to the
// driver.
func (s *IndexedDataset[V]) Count() (int64, error) {
	return engine.Aggregate(s.parts, int64(0),
		func(acc int64, ip IndexedPartition[V]) int64 { return acc + int64(len(ip.Items)) },
		func(a, b int64) int64 { return a + b })
}

// Persist writes every partition tree to the file system under
// pathPrefix ("<prefix>/part-<i>.idx"), replacing previous files —
// Spark's saveAsObjectFile analogue for STARK's persistent indexing.
// Only the trees (envelopes + slot IDs) are persisted; re-attaching
// requires the same data partitioned the same way, see LoadIndex.
func (s *IndexedDataset[V]) Persist(fs *dfs.FileSystem, pathPrefix string) error {
	parts, err := s.parts.Collect()
	if err != nil {
		return err
	}
	for i, ip := range parts {
		if err := ip.Tree.Save(fs, fmt.Sprintf("%s/part-%d.idx", pathPrefix, i)); err != nil {
			return err
		}
	}
	return nil
}

// LoadIndex re-attaches trees persisted with Persist to a dataset
// with the same partition layout, skipping the R-tree build. It
// validates that entry counts match the partition sizes.
func LoadIndex[V any](s *SpatialDataset[V], fs *dfs.FileSystem, pathPrefix string) (*IndexedDataset[V], error) {
	n := s.ds.NumPartitions()
	trees := make([]*index.RTree, n)
	loadTasks := make([]int, n)
	for i := range loadTasks {
		loadTasks[i] = i
	}
	err := s.Context().RunJob(loadTasks, func(i int) error {
		t, err := index.Load(fs, fmt.Sprintf("%s/part-%d.idx", pathPrefix, i))
		if err != nil {
			return fmt.Errorf("core: loading index partition %d: %w", i, err)
		}
		trees[i] = t
		return nil
	})
	if err != nil {
		return nil, err
	}
	order := index.DefaultOrder
	if n > 0 {
		order = trees[0].Order()
	}
	parts := engine.MapPartitions(s.ds, func(idx int, in []Tuple[V]) ([]IndexedPartition[V], error) {
		t := trees[idx]
		if t.Len() != len(in) {
			return nil, fmt.Errorf("core: persisted index partition %d holds %d entries, data has %d",
				idx, t.Len(), len(in))
		}
		return []IndexedPartition[V]{{Items: in, Tree: t}}, nil
	})
	parts.Cache()
	if _, err := parts.Count(); err != nil {
		return nil, err
	}
	return &IndexedDataset[V]{parts: parts, sp: s.sp, order: order, rec: s.rec}, nil
}
