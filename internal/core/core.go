// Package core implements the STARK API: spatio-temporal operators
// over partitioned datasets of (STObject, V) pairs.
//
// It is the Go equivalent of STARK's SpatialRDDFunctions DSL. Where
// the Scala original relies on an implicit conversion from
// RDD[(STObject, V)], Go code wraps explicitly:
//
//	events := core.Wrap(pairs)                  // RDD[(STObject, V)] → SpatialDataset
//	hits, _ := events.ContainedBy(query)        // spatio-temporal filter
//	idx, _ := events.LiveIndex(5, partitioner)  // live indexing, order 5
//	hits2, _ := idx.Intersects(query)
//
// Operators honour spatial partitioning when present: a filter first
// prunes partitions whose extent cannot overlap the query envelope
// and only schedules tasks for the remainder — the execution strategy
// the paper's Figure 4 measures.
package core

import (
	"fmt"
	"sync"

	"stark/internal/attr"
	"stark/internal/engine"
	"stark/internal/geom"
	"stark/internal/partition"
	"stark/internal/stats"
	"stark/internal/stobject"
)

// Tuple is the record type of all STARK datasets: the spatio-temporal
// key plus the user payload.
type Tuple[V any] = engine.Pair[stobject.STObject, V]

// SpatialDataset wraps an engine dataset of (STObject, V) records and
// provides the spatio-temporal operators. A SpatialDataset may carry
// a SpatialPartitioner, in which case partition i of the underlying
// dataset holds exactly the objects the partitioner assigns to i and
// queries can prune partitions by extent.
type SpatialDataset[V any] struct {
	ds *engine.Dataset[Tuple[V]]
	sp partition.SpatialPartitioner // nil when not spatially partitioned

	// rec, when non-nil, is the recorder the dataset's operators
	// charge their metrics to (see WithRecorder); nil selects the
	// context's root recorder.
	rec *engine.Recorder

	// aux holds the memoised per-instance caches. It is a separate
	// pointer so recorder views (WithRecorder) share the caches of the
	// dataset they overlay: attribution changes, memoised work does
	// not repeat.
	aux *spatialAux[V]
}

// spatialAux carries the caches bound to one logical SpatialDataset
// instance. Every transformation returns a fresh SpatialDataset with
// a fresh aux, so a summary or sidecar can never describe a stale
// layout: repartitioning or filtering invalidates by construction.
type spatialAux[V any] struct {
	// statsCache memoises planner statistics per grid resolution.
	// statsSeeded marks summaries handed in by SeedStats (mutable
	// snapshots): they lack per-field statistics but must never trigger
	// a rescan.
	statsMu     sync.Mutex
	statsCache  map[int]*stats.Summary
	statsSeeded bool

	// col is the columnar sidecar built by BuildColumnar.
	colMu sync.Mutex
	col   *columnarSidecar[V]

	// schema is the registered attribute schema; attrSide holds the
	// lazily built per-partition attribute postings (see attr.go).
	attrMu   sync.Mutex
	schema   *attr.Schema[V]
	attrSide *attrSidecar[V]
}

// newSpatial builds a SpatialDataset with a fresh aux.
func newSpatial[V any](ds *engine.Dataset[Tuple[V]], sp partition.SpatialPartitioner, rec *engine.Recorder) *SpatialDataset[V] {
	return &SpatialDataset[V]{ds: ds, sp: sp, rec: rec, aux: &spatialAux[V]{}}
}

// Wrap lifts a plain engine dataset into a SpatialDataset — the
// explicit counterpart of STARK's implicit RDD conversion. The data
// is assumed not to be spatially partitioned.
func Wrap[V any](ds *engine.Dataset[Tuple[V]]) *SpatialDataset[V] {
	return newSpatial(ds, nil, nil)
}

// WrapPartitioned lifts a dataset that is already partitioned by sp.
// The caller asserts that partition i holds exactly the records with
// sp.PartitionFor(key) == i.
func WrapPartitioned[V any](ds *engine.Dataset[Tuple[V]], sp partition.SpatialPartitioner) (*SpatialDataset[V], error) {
	if sp != nil && ds.NumPartitions() != sp.NumPartitions() {
		return nil, fmt.Errorf("core: dataset has %d partitions, partitioner %d",
			ds.NumPartitions(), sp.NumPartitions())
	}
	return newSpatial(ds, sp, nil), nil
}

// recorder returns the recorder operators on this dataset charge: the
// context's root recorder unless WithRecorder installed another.
func (s *SpatialDataset[V]) recorder() *engine.Recorder {
	if s.rec != nil {
		return s.rec
	}
	return s.ds.Context().Recorder()
}

// WithRecorder returns a view of the dataset whose operators charge
// their metrics (tasks, scanned elements, probes, kernel counters) to
// rec instead of the context's root recorder. The view shares the
// receiver's partitions, cache state, statistics and columnar sidecar
// — it is an attribution overlay, not a new dataset. A nil rec
// returns the receiver unchanged.
func (s *SpatialDataset[V]) WithRecorder(rec *engine.Recorder) *SpatialDataset[V] {
	if rec == nil || s.rec == rec {
		return s
	}
	return &SpatialDataset[V]{ds: s.ds.WithRecorder(rec), sp: s.sp, rec: rec, aux: s.aux}
}

// Dataset returns the underlying engine dataset.
func (s *SpatialDataset[V]) Dataset() *engine.Dataset[Tuple[V]] { return s.ds }

// Partitioner returns the spatial partitioner, or nil.
func (s *SpatialDataset[V]) Partitioner() partition.SpatialPartitioner { return s.sp }

// NumPartitions returns the partition count of the underlying data.
func (s *SpatialDataset[V]) NumPartitions() int { return s.ds.NumPartitions() }

// Context returns the engine context.
func (s *SpatialDataset[V]) Context() *engine.Context { return s.ds.Context() }

// Collect materialises all records.
func (s *SpatialDataset[V]) Collect() ([]Tuple[V], error) { return s.ds.Collect() }

// Count returns the number of records.
func (s *SpatialDataset[V]) Count() (int64, error) { return s.ds.Count() }

// Cache marks the underlying dataset for in-memory materialisation.
func (s *SpatialDataset[V]) Cache() *SpatialDataset[V] {
	s.ds.Cache()
	return s
}

// PartitionBy shuffles the dataset with the given spatial partitioner
// and returns a spatially partitioned SpatialDataset — the DSL's
// rdd.partitionBy(gridPartitioner) step.
func (s *SpatialDataset[V]) PartitionBy(sp partition.SpatialPartitioner) (*SpatialDataset[V], error) {
	if sp == nil {
		return nil, fmt.Errorf("core: nil partitioner")
	}
	shuffled, err := engine.PartitionBy(s.ds, engine.Partitioner[stobject.STObject](spAdapter{sp}))
	if err != nil {
		return nil, err
	}
	return newSpatial(shuffled, sp, s.rec), nil
}

// spAdapter adapts a SpatialPartitioner to engine.Partitioner.
type spAdapter struct{ sp partition.SpatialPartitioner }

func (a spAdapter) NumPartitions() int                   { return a.sp.NumPartitions() }
func (a spAdapter) PartitionFor(o stobject.STObject) int { return a.sp.PartitionFor(o) }

// Stats returns the planner statistics of the dataset — per-partition
// MBRs, counts, temporal extents and the spatial histogram — computed
// in one streaming pass on first use and cached on this dataset
// instance. gridN <= 0 selects stats.DefaultGridSize.
func (s *SpatialDataset[V]) Stats(gridN int) (*stats.Summary, error) {
	if gridN <= 0 {
		gridN = stats.DefaultGridSize
	}
	var fields []attr.Field[V]
	if sch := s.Schema(); sch != nil {
		fields = sch.Fields()
	}
	s.aux.statsMu.Lock()
	defer s.aux.statsMu.Unlock()
	if sum, ok := s.aux.statsCache[gridN]; ok {
		// A summary collected before the schema was registered lacks
		// per-field statistics; recollect so attribute predicates get
		// real selectivities — unless the summary was seeded (a mutable
		// snapshot's incrementally maintained stats must never trigger
		// a rescan; attr selectivities fall back to defaults there).
		if len(fields) == 0 || sum.Fields != nil || s.aux.statsSeeded {
			return sum, nil
		}
	}
	sum, err := stats.CollectFields(s.ds, gridN, fields)
	if err != nil {
		return nil, err
	}
	if s.aux.statsCache == nil {
		s.aux.statsCache = make(map[int]*stats.Summary, 1)
	}
	s.aux.statsCache[gridN] = sum
	return sum, nil
}

// SeedStats primes the statistics cache with a pre-computed summary
// (stored under the default grid resolution). Mutable datasets use it
// to hand their incrementally maintained statistics to the planner,
// so compiling a query against a snapshot never rescans the data.
func (s *SpatialDataset[V]) SeedStats(sum *stats.Summary) {
	if sum == nil {
		return
	}
	s.aux.statsMu.Lock()
	defer s.aux.statsMu.Unlock()
	if s.aux.statsCache == nil {
		s.aux.statsCache = make(map[int]*stats.Summary, 1)
	}
	s.aux.statsCache[stats.DefaultGridSize] = sum
	s.aux.statsSeeded = true
}

// SetSchema registers the attribute schema of the dataset's payloads:
// the typed field extractors the planner's per-field statistics, the
// attribute postings indexes and the typed filter paths all read
// through. Like the other aux state it binds to this dataset instance;
// transformations return fresh instances without a schema.
func (s *SpatialDataset[V]) SetSchema(sch *attr.Schema[V]) {
	s.aux.attrMu.Lock()
	s.aux.schema = sch
	s.aux.attrMu.Unlock()
}

// Schema returns the registered attribute schema, or nil.
func (s *SpatialDataset[V]) Schema() *attr.Schema[V] {
	s.aux.attrMu.Lock()
	defer s.aux.attrMu.Unlock()
	return s.aux.schema
}

// relevantPartitions returns the partitions a query with the given
// envelope must visit, counting pruned partitions in the metrics.
// Without a partitioner every partition is visited.
func (s *SpatialDataset[V]) relevantPartitions(q geom.Envelope) []int {
	if s.sp == nil {
		parts := make([]int, s.ds.NumPartitions())
		for i := range parts {
			parts[i] = i
		}
		return parts
	}
	visit := partition.PruneByEnvelope(s.sp, q)
	pruned := s.ds.NumPartitions() - len(visit)
	if pruned > 0 {
		s.recorder().TasksSkipped(int64(pruned))
	}
	return visit
}
