package core

import (
	"math"
	"sort"
	"testing"

	"stark/internal/engine"
	"stark/internal/partition"
)

func TestKNNJoinMatchesBruteForce(t *testing.T) {
	ctx := engine.NewContext(4)
	l, lt := makeDataset(t, ctx, 150, 3, 60)
	r, rt := makeDataset(t, ctx, 400, 4, 61)
	const k = 5
	rows, err := KNNJoin(l, r, k)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(lt)*k {
		t.Fatalf("rows = %d, want %d", len(rows), len(lt)*k)
	}
	// Group rows per left record.
	perLeft := make(map[int][]KNNJoinRow[int, int])
	for _, row := range rows {
		perLeft[row.LeftKey] = append(perLeft[row.LeftKey], row)
	}
	if len(perLeft) != len(lt) {
		t.Fatalf("left records covered: %d of %d", len(perLeft), len(lt))
	}
	// Validate a sample of left records against brute force.
	for li := 0; li < len(lt); li += 17 {
		lkv := lt[li]
		dists := make([]float64, len(rt))
		for i, rkv := range rt {
			dists[i] = lkv.Key.Distance(rkv.Key, nil)
		}
		sort.Float64s(dists)
		got := perLeft[lkv.Value]
		if len(got) != k {
			t.Fatalf("left %d has %d neighbours", lkv.Value, len(got))
		}
		for i, row := range got {
			if math.Abs(row.Distance-dists[i]) > 1e-9 {
				t.Fatalf("left %d neighbour %d: dist %v, want %v", lkv.Value, i, row.Distance, dists[i])
			}
			if i > 0 && got[i-1].Distance > row.Distance {
				t.Fatal("neighbours not ascending")
			}
		}
	}
}

func TestKNNJoinWithPartitionedRight(t *testing.T) {
	ctx := engine.NewContext(4)
	l, _ := makeDataset(t, ctx, 60, 2, 62)
	r, rt := makeDataset(t, ctx, 500, 4, 63)
	g, err := partition.NewGrid(4, keysOf(t, r))
	if err != nil {
		t.Fatal(err)
	}
	pr, err := r.PartitionBy(g)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := KNNJoin(l, pr, 3)
	if err != nil {
		t.Fatal(err)
	}
	rowsPlain, err := KNNJoin(l, r, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Same multiset of (left, distance) results.
	keyOf := func(rws []KNNJoinRow[int, int]) map[[2]int]int {
		m := make(map[[2]int]int)
		for _, row := range rws {
			m[[2]int{row.LeftKey, int(row.Distance * 1e9)}]++
		}
		return m
	}
	a, b := keyOf(rows), keyOf(rowsPlain)
	if len(a) != len(b) {
		t.Fatalf("result sets differ: %d vs %d", len(a), len(b))
	}
	for k2, c := range a {
		if b[k2] != c {
			t.Fatalf("mismatch at %v", k2)
		}
	}
	_ = rt
}

func TestKNNJoinSmallRightSide(t *testing.T) {
	ctx := engine.NewContext(2)
	l, _ := makeDataset(t, ctx, 10, 2, 64)
	r, _ := makeDataset(t, ctx, 3, 2, 65)
	rows, err := KNNJoin(l, r, 5) // k exceeds right size
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10*3 {
		t.Errorf("rows = %d, want 30", len(rows))
	}
}

func TestKNNJoinValidation(t *testing.T) {
	ctx := engine.NewContext(2)
	l, _ := makeDataset(t, ctx, 5, 1, 66)
	if _, err := KNNJoin(l, l, 0); err == nil {
		t.Error("k=0 must fail")
	}
}
