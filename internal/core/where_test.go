package core

import (
	"testing"

	"stark/internal/engine"
	"stark/internal/geom"
	"stark/internal/partition"
	"stark/internal/stobject"
)

func TestWhereMatchesEagerFilter(t *testing.T) {
	ctx := engine.NewContext(4)
	s, tuples := makeDataset(t, ctx, 800, 4, 70)
	q := queryPolygon(20, 20, 60, 70)
	lazy, err := s.WhereIntersects(q).Collect()
	if err != nil {
		t.Fatal(err)
	}
	want := bruteFilter(tuples, q, stobject.Intersects)
	if !sameIDs(gotIDs(lazy), want) {
		t.Fatalf("lazy %d vs brute %d", len(lazy), len(want))
	}
	// Chaining: two filters compose like a conjunction.
	q2 := queryPolygon(40, 40, 100, 100)
	chained, err := s.WhereIntersects(q).WhereIntersects(q2).Collect()
	if err != nil {
		t.Fatal(err)
	}
	both := 0
	for _, kv := range tuples {
		if kv.Key.Intersects(q) && kv.Key.Intersects(q2) {
			both++
		}
	}
	if len(chained) != both {
		t.Errorf("chained = %d, want %d", len(chained), both)
	}
	if both == 0 {
		t.Error("degenerate chain test")
	}
}

func TestWherePreservesPartitioner(t *testing.T) {
	ctx := engine.NewContext(4)
	s, _ := makeDataset(t, ctx, 1000, 4, 71)
	g, err := partition.NewGrid(3, keysOf(t, s))
	if err != nil {
		t.Fatal(err)
	}
	ps, err := s.PartitionBy(g)
	if err != nil {
		t.Fatal(err)
	}
	filtered := ps.WhereWithinDistance(stobject.MustFromWKT("POINT (50 50)"), 30, nil)
	if filtered.Partitioner() == nil {
		t.Fatal("filter must preserve the partitioner")
	}
	// Downstream pruned query still correct.
	ctx.Metrics().Reset()
	q := queryPolygon(40, 40, 60, 60)
	hits, err := filtered.Intersects(q)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: collect-then-check.
	all, _ := filtered.Collect()
	want := bruteFilter(all, q, stobject.Intersects)
	if !sameIDs(gotIDs(hits), want) {
		t.Errorf("pruned filter after Where: %d vs %d", len(hits), len(want))
	}
	if ctx.Metrics().Snapshot().TasksSkipped == 0 {
		t.Error("expected partition pruning after Where")
	}
}

func TestWhereContainedByAndCount(t *testing.T) {
	ctx := engine.NewContext(2)
	s, tuples := makeDataset(t, ctx, 500, 4, 72)
	q := queryPolygon(0, 0, 50, 50)
	n, err := s.WhereContainedBy(q).Count()
	if err != nil {
		t.Fatal(err)
	}
	want := bruteFilter(tuples, q, stobject.ContainedBy)
	if n != int64(len(want)) {
		t.Errorf("count = %d, want %d", n, len(want))
	}
}

func TestMapDatasetValues(t *testing.T) {
	ctx := engine.NewContext(2)
	s, _ := makeDataset(t, ctx, 100, 2, 73)
	doubled := MapDatasetValues(s, func(v int) int { return v * 2 })
	got, err := doubled.Collect()
	if err != nil {
		t.Fatal(err)
	}
	for _, kv := range got {
		if kv.Value%2 != 0 {
			t.Fatal("value not doubled")
		}
	}
	// Partitioner preserved.
	g, err := partition.NewGrid(2, keysOf(t, s))
	if err != nil {
		t.Fatal(err)
	}
	ps, _ := s.PartitionBy(g)
	if MapDatasetValues(ps, func(v int) int { return v }).Partitioner() == nil {
		t.Error("MapDatasetValues must preserve the partitioner")
	}
}

func TestReKeyDropsPartitioner(t *testing.T) {
	ctx := engine.NewContext(2)
	s, _ := makeDataset(t, ctx, 100, 2, 74)
	g, err := partition.NewGrid(2, keysOf(t, s))
	if err != nil {
		t.Fatal(err)
	}
	ps, _ := s.PartitionBy(g)
	rekeyed := ReKey(ps, func(k stobject.STObject, v int) stobject.STObject {
		c := k.Centroid()
		return stobject.New(geom.NewPoint(c.X+500, c.Y))
	})
	if rekeyed.Partitioner() != nil {
		t.Error("ReKey must drop the partitioner")
	}
	got, err := rekeyed.Collect()
	if err != nil {
		t.Fatal(err)
	}
	for _, kv := range got {
		if kv.Key.Centroid().X < 500 {
			t.Fatal("key not shifted")
		}
	}
}
