package core

import (
	"stark/internal/engine"
	"stark/internal/geom"
	"stark/internal/stobject"
)

// This file implements the scan-based (non-indexed) filter operators:
// every record of every relevant partition is checked against the
// full spatio-temporal predicate. The check is fused into the
// partition pipeline — records stream through the predicate without
// the partition ever being materialised — and partition pruning still
// applies when the dataset is spatially partitioned.

// scanFiltered builds the fused scanning-filter stage: a dataset that
// streams the records of s satisfying pred against q, charging every
// record that flows through the predicate to ElementsScanned (flushed
// once per partition, so the hot loop stays atomic-free).
func scanFiltered[V any](s *SpatialDataset[V], q stobject.STObject, pred stobject.Predicate) *engine.Dataset[Tuple[V]] {
	rec := s.recorder()
	ds := s.ds
	out := engine.NewStream(s.Context(), ds.Name()+".stScan", ds.NumPartitions(),
		func(p int, yield func(Tuple[V]) bool) error {
			var scanned int64
			err := ds.EachPartition(p, func(kv Tuple[V]) bool {
				scanned++
				if !pred(kv.Key, q) {
					return true
				}
				return yield(kv)
			})
			rec.ElementsScanned(scanned)
			return err
		})
	return out.WithRecorder(s.rec)
}

// filterScan runs pred(record.Key, q) over the partitions relevant
// for the query envelope and collects the matches.
func (s *SpatialDataset[V]) filterScan(q stobject.STObject, pred stobject.Predicate) ([]Tuple[V], error) {
	return scanFiltered(s, q, pred).CollectPartitions(s.relevantPartitions(q.Envelope()))
}

// Intersects returns the records whose key intersects q in the
// combined spatio-temporal semantics.
func (s *SpatialDataset[V]) Intersects(q stobject.STObject) ([]Tuple[V], error) {
	return s.filterScan(q, stobject.Intersects)
}

// Contains returns the records whose key completely contains q.
func (s *SpatialDataset[V]) Contains(q stobject.STObject) ([]Tuple[V], error) {
	return s.filterScan(q, stobject.Contains)
}

// ContainedBy returns the records whose key is completely contained
// by q — the paper's events.containedBy(qry) example.
func (s *SpatialDataset[V]) ContainedBy(q stobject.STObject) ([]Tuple[V], error) {
	return s.filterScan(q, stobject.ContainedBy)
}

// CoveredBy is ContainedBy with boundary tolerance.
func (s *SpatialDataset[V]) CoveredBy(q stobject.STObject) ([]Tuple[V], error) {
	return s.filterScan(q, stobject.CoveredBy)
}

// WithinDistance returns the records whose key lies within maxDist of
// q under the distance function df (nil selects the exact planar
// geometry distance). The paper highlights that df is pluggable.
func (s *SpatialDataset[V]) WithinDistance(q stobject.STObject, maxDist float64, df geom.DistanceFunc) ([]Tuple[V], error) {
	pred := stobject.WithinDistancePredicate(maxDist, df)
	// The pruning envelope must be grown by maxDist: an object
	// within distance of q can live in a partition whose extent does
	// not touch q itself.
	return scanFiltered(s, q, pred).CollectPartitions(s.relevantPartitions(q.Envelope().ExpandBy(maxDist)))
}

// Filter applies an arbitrary spatio-temporal predicate against q,
// visiting the partitions relevant for pruneEnv (pass the query
// envelope, expanded as needed for distance predicates).
func (s *SpatialDataset[V]) Filter(q stobject.STObject, pruneEnv geom.Envelope, pred stobject.Predicate) ([]Tuple[V], error) {
	filtered := scanFiltered(s, q, pred)
	if s.sp == nil || pruneEnv.IsEmpty() {
		return filtered.Collect()
	}
	return filtered.CollectPartitions(s.relevantPartitions(pruneEnv))
}
