package core

import (
	"stark/internal/colstore"
	"stark/internal/engine"
	"stark/internal/stobject"
)

// This file wires the colstore sidecar into the scan path. BuildColumnar
// extracts per-partition SoA envelope/interval columns (optionally
// Hilbert-sorting each partition's rows) alongside a reordered record
// slice; ColumnarFilter then streams a conjunctive predicate chain as a
// coarse batched kernel sweep per partition followed by exact
// refinement of the survivors only. The sidecar is bound to the
// SpatialDataset instance, so any transformation (which returns a new
// instance) drops it by construction and can never serve stale columns.

// columnarSidecar holds the per-partition columns plus the row slices
// they index, in kernel row order.
type columnarSidecar[V any] struct {
	parts   []*colstore.Partition
	rows    [][]Tuple[V]
	hilbert bool
}

// BuildColumnar materialises the columnar sidecar: one streaming pass
// over every partition extracting envelope and interval columns, with
// hilbert selecting the per-partition Hilbert row sort. Building is
// memoised per dataset instance (a second call with the same hilbert
// flag is a no-op; changing the flag rebuilds). The pass runs one task
// per partition through the engine's pool and charges the rows it
// copies to StatsRecords — it is a statistics-like auxiliary pass, not
// a query.
func (s *SpatialDataset[V]) BuildColumnar(hilbert bool) error {
	s.aux.colMu.Lock()
	if s.aux.col != nil && s.aux.col.hilbert == hilbert {
		s.aux.colMu.Unlock()
		return nil
	}
	s.aux.colMu.Unlock()

	n := s.ds.NumPartitions()
	side := &columnarSidecar[V]{
		parts:   make([]*colstore.Partition, n),
		rows:    make([][]Tuple[V], n),
		hilbert: hilbert,
	}
	metrics := s.Context().Metrics()
	tasks := make([]int, n)
	for i := range tasks {
		tasks[i] = i
	}
	err := s.Context().RunJob(tasks, func(p int) error {
		var rows []Tuple[V]
		b := colstore.NewBuilder(0)
		err := s.ds.EachPartitionChunks(p, colstore.ChunkRows, func(batch []Tuple[V]) bool {
			for _, kv := range batch {
				iv, timed := kv.Key.Time()
				b.Add(kv.Key.Envelope(), int64(iv.Start), int64(iv.End), timed)
			}
			rows = append(rows, batch...)
			return true
		})
		if err != nil {
			return err
		}
		cols, perm := b.Finish(hilbert)
		if perm != nil {
			sorted := make([]Tuple[V], len(rows))
			for newRow, oldRow := range perm {
				sorted[newRow] = rows[oldRow]
			}
			rows = sorted
		}
		side.parts[p] = cols
		side.rows[p] = rows
		metrics.StatsRecords.Add(int64(len(rows)))
		return nil
	})
	if err != nil {
		return err
	}
	s.aux.colMu.Lock()
	s.aux.col = side
	s.aux.colMu.Unlock()
	return nil
}

// HasColumnar reports whether the sidecar is built.
func (s *SpatialDataset[V]) HasColumnar() bool {
	s.aux.colMu.Lock()
	defer s.aux.colMu.Unlock()
	return s.aux.col != nil
}

// ColumnarHilbert reports whether the sidecar rows are Hilbert-sorted.
func (s *SpatialDataset[V]) ColumnarHilbert() bool {
	s.aux.colMu.Lock()
	defer s.aux.colMu.Unlock()
	return s.aux.col != nil && s.aux.col.hilbert
}

// KernelPred is one predicate of a conjunctive chain in the form the
// columnar scan needs: the compiled coarse kernel query plus the exact
// predicate and query object for refining survivors.
type KernelPred struct {
	Q     stobject.STObject
	Pred  stobject.Predicate
	Query colstore.Query
}

// KernelQueryFor compiles the coarse kernel form of a built-in
// predicate kind against query object q. The coarse spatial relation
// is the envelope necessary condition of the exact predicate; the
// temporal mode mirrors the combined-predicate semantics exactly
// (see stobject: Intersects/WithinDistance pair with interval overlap,
// Contains with record-contains-query, ContainedBy/CoveredBy with
// query-contains-record).
func KernelQueryFor(op colstore.Op, mode colstore.TimeMode, q stobject.STObject, dist float64) colstore.Query {
	env := q.Envelope()
	kq := colstore.Query{
		Op:   op,
		MinX: env.MinX, MinY: env.MinY, MaxX: env.MaxX, MaxY: env.MaxY,
		Dist: dist,
		Time: mode,
	}
	if iv, ok := q.Time(); ok {
		kq.HasTime = true
		kq.TBegin = int64(iv.Start)
		kq.TEnd = int64(iv.End)
	}
	return kq
}

// KernelPrune builds the generic coarse query for an opaque predicate:
// an envelope-intersects sweep against a precomputed pruning envelope
// (the same contract the R-tree path uses) with temporal mode as the
// caller can guarantee. Callers that cannot reason about the
// predicate's time semantics must pass colstore.TimeNone.
func KernelPrune(pruneMinX, pruneMinY, pruneMaxX, pruneMaxY float64, mode colstore.TimeMode, q stobject.STObject) colstore.Query {
	kq := colstore.Query{
		Op:   colstore.OpPrune,
		MinX: pruneMinX, MinY: pruneMinY, MaxX: pruneMaxX, MaxY: pruneMaxY,
		Time: mode,
	}
	if iv, ok := q.Time(); ok {
		kq.HasTime = true
		kq.TBegin = int64(iv.Start)
		kq.TEnd = int64(iv.End)
	}
	return kq
}

// ColumnarFilter builds the fused columnar scanning stage for a
// conjunctive predicate chain: per partition, every kernel query is
// swept over the columns into one survivor bitset, then only the
// surviving rows are refined with the exact predicates (in the given
// order) and yielded. Metrics: every row is charged to
// ElementsScanned (the kernels DID consider it — this keeps the
// counter comparable with the row scan), swept chunks to
// KernelBatches, and post-kernel rows to KernelSurvivors; survivors
// are additionally charged to CandidatesRefined, mirroring the index
// path's coarse/exact split. Returns nil when no sidecar is built.
func (s *SpatialDataset[V]) ColumnarFilter(preds []KernelPred) *engine.Dataset[Tuple[V]] {
	s.aux.colMu.Lock()
	side := s.aux.col
	s.aux.colMu.Unlock()
	if side == nil || len(preds) == 0 {
		return nil
	}
	rec := s.recorder()
	out := engine.NewStream(s.Context(), s.ds.Name()+".colScan", len(side.parts),
		func(p int, yield func(Tuple[V]) bool) error {
			cols := side.parts[p]
			rows := side.rows[p]
			n := cols.Len()
			if n == 0 {
				return nil
			}
			bs := colstore.GetBitset(n)
			var batches int64
			for _, kp := range preds {
				batches += int64(colstore.Filter(cols, kp.Query, bs))
			}
			survivors := int64(bs.Count())
			bs.Visit(func(row int) bool {
				kv := rows[row]
				for i := range preds {
					if !preds[i].Pred(kv.Key, preds[i].Q) {
						return true
					}
				}
				return yield(kv)
			})
			colstore.PutBitset(bs)
			rec.ElementsScanned(int64(n))
			rec.KernelBatches(batches)
			rec.KernelSurvivors(survivors)
			rec.CandidatesRefined(survivors)
			return nil
		})
	return out.WithRecorder(s.rec)
}
