package core

import (
	"sync"
	"sync/atomic"

	"stark/internal/index"
	"stark/internal/stobject"
)

// This file implements the spatio-temporal join. STARK's join takes
// two datasets of (STObject, V) records and a predicate; the result
// holds every pair of records whose keys satisfy it.
//
// Execution strategy: the join enumerates pairs of (left partition,
// right partition). When both sides are spatially partitioned, pairs
// whose extents are disjoint are skipped — this is the partition
// pruning that makes the partitioned STARK join in Figure 4 fast.
// Within a partition pair, the right side is put into a live R-tree
// and probed with each left record's envelope; candidates are refined
// with the exact predicate. The left side is never materialised:
// left records stream off their fused partition pipeline straight
// into the probe loop. Setting IndexOrder to 0 disables the tree and
// falls back to a nested loop (the behaviour of the SpatialSpark
// baseline).

// JoinedPair is one join result row.
type JoinedPair[V, W any] struct {
	LeftKey  stobject.STObject
	LeftVal  V
	RightKey stobject.STObject
	RightVal W
}

// JoinOptions configures a spatial join.
type JoinOptions struct {
	// Predicate is the spatio-temporal join predicate; nil selects
	// Intersects.
	Predicate stobject.Predicate
	// IndexOrder is the order of the live R-tree built on the right
	// side of every partition pair; 0 disables indexing (nested
	// loop), negative selects the default order.
	IndexOrder int
	// ProbeExpansion expands the left record's envelope before
	// probing — required for withinDistance joins, where matching
	// right records can lie outside the left envelope.
	ProbeExpansion float64
	// DisablePruning turns partition-pair pruning off even when both
	// sides are spatially partitioned (used by ablation benches).
	DisablePruning bool
}

// joinRun is the shared execution core of Join and JoinCount. It
// enumerates and prunes the partition-pair tasks, then runs them,
// streaming every matching (left, right) record pair into the
// per-task sink produced by makeSink(numTasks). Sinks are indexed by
// task, and each task is owned by exactly one goroutine, so sinks
// need no locking as long as they only touch their task's slot.
func joinRun[V, W any](l *SpatialDataset[V], r *SpatialDataset[W], opts JoinOptions,
	makeSink func(numTasks int) func(t int, lkv Tuple[V], rkv Tuple[W])) error {
	pred := opts.Predicate
	if pred == nil {
		pred = stobject.Intersects
	}
	order := opts.IndexOrder
	if order < 0 {
		order = index.DefaultOrder
	}

	type task struct{ li, ri int }
	var tasks []task
	prune := !opts.DisablePruning && l.sp != nil && r.sp != nil
	pruned := 0
	for li := 0; li < l.ds.NumPartitions(); li++ {
		for ri := 0; ri < r.ds.NumPartitions(); ri++ {
			if prune {
				le := l.sp.Extent(li).ExpandBy(opts.ProbeExpansion)
				if !le.Intersects(r.sp.Extent(ri)) {
					pruned++
					continue
				}
			}
			tasks = append(tasks, task{li, ri})
		}
	}
	ctx := l.Context()
	metrics := ctx.Metrics()
	if pruned > 0 {
		metrics.TasksSkipped.Add(int64(pruned))
	}
	sink := makeSink(len(tasks))

	// Cache right-side trees per right partition: several left
	// partitions may probe the same right partition.
	var (
		treeMu sync.Mutex
		trees  = make(map[int]*index.RTree)
	)
	rightTree := func(ri int, items []Tuple[W]) *index.RTree {
		treeMu.Lock()
		t, ok := trees[ri]
		treeMu.Unlock()
		if ok {
			return t
		}
		t = index.New(order)
		for i, kv := range items {
			t.Insert(kv.Key.Envelope(), int32(i))
		}
		t.Build()
		treeMu.Lock()
		trees[ri] = t
		treeMu.Unlock()
		return t
	}

	taskIdx := make([]int, len(tasks))
	for i := range taskIdx {
		taskIdx[i] = i
	}
	return ctx.RunJob(taskIdx, func(t int) error {
		li, ri := tasks[t].li, tasks[t].ri
		// The right side is materialised (the tree needs random
		// access); the left side streams.
		right, err := r.ds.ComputePartition(ri)
		if err != nil {
			return err
		}
		if len(right) == 0 {
			return nil
		}
		if order == 0 {
			// Nested loop: every pair is checked exactly.
			var nLeft int64
			err := l.ds.EachPartition(li, func(lkv Tuple[V]) bool {
				nLeft++
				for _, rkv := range right {
					if pred(lkv.Key, rkv.Key) {
						sink(t, lkv, rkv)
					}
				}
				return true
			})
			metrics.ElementsScanned.Add(nLeft * int64(len(right)))
			return err
		}
		// The tree is built lazily on the first probe, so a task whose
		// left stream turns out empty never pays the build.
		var (
			tree            *index.RTree
			candBuf         []int32
			probes, refined int64
		)
		err = l.ds.EachPartition(li, func(lkv Tuple[V]) bool {
			if tree == nil {
				tree = rightTree(ri, right)
			}
			probes++
			candBuf = tree.Query(lkv.Key.Envelope().ExpandBy(opts.ProbeExpansion), candBuf[:0])
			refined += int64(len(candBuf))
			for _, id := range candBuf {
				rkv := right[id]
				if pred(lkv.Key, rkv.Key) {
					sink(t, lkv, rkv)
				}
			}
			return true
		})
		metrics.IndexProbes.Add(probes)
		metrics.CandidatesRefined.Add(refined)
		return err
	})
}

// Join computes the spatio-temporal join of l and r.
func Join[V, W any](l *SpatialDataset[V], r *SpatialDataset[W], opts JoinOptions) ([]JoinedPair[V, W], error) {
	var results [][]JoinedPair[V, W]
	err := joinRun(l, r, opts, func(numTasks int) func(int, Tuple[V], Tuple[W]) {
		results = make([][]JoinedPair[V, W], numTasks)
		return func(t int, lkv Tuple[V], rkv Tuple[W]) {
			results[t] = append(results[t], JoinedPair[V, W]{
				LeftKey: lkv.Key, LeftVal: lkv.Value,
				RightKey: rkv.Key, RightVal: rkv.Value,
			})
		}
	})
	if err != nil {
		return nil, err
	}
	var all []JoinedPair[V, W]
	for _, r := range results {
		all = append(all, r...)
	}
	return all, nil
}

// SelfJoin joins the dataset with itself — the workload of the
// paper's Figure 4 micro-benchmark. The result includes the identity
// pairs (every record matches itself under Intersects), matching the
// semantics of rdd.join(rdd).
func SelfJoin[V any](s *SpatialDataset[V], opts JoinOptions) ([]JoinedPair[V, V], error) {
	return Join(s, s, opts)
}

// SelfJoinWithinDistanceCount counts the unordered within-eps pairs
// (including self pairs) of the dataset — the exact workload and
// result convention of the paper's Figure 4 micro-benchmark. Compared
// to SelfJoin it exploits the symmetry of the self join (only
// partition pairs li <= ri are processed), streams counts instead of
// materialising result rows, reuses one live R-tree per partition,
// and prunes partition pairs by extent when the dataset is spatially
// partitioned. order <= 0 selects the default R-tree order.
func SelfJoinWithinDistanceCount[V any](s *SpatialDataset[V], eps float64, order int) (int64, error) {
	if order <= 0 {
		order = index.DefaultOrder
	}
	n := s.ds.NumPartitions()
	type task struct{ li, ri int }
	var tasks []task
	pruned := 0
	for li := 0; li < n; li++ {
		for ri := li; ri < n; ri++ {
			if s.sp != nil {
				le := s.sp.Extent(li).ExpandBy(eps)
				if !le.Intersects(s.sp.Extent(ri)) {
					pruned++
					continue
				}
			}
			tasks = append(tasks, task{li, ri})
		}
	}
	ctx := s.Context()
	metrics := ctx.Metrics()
	if pruned > 0 {
		metrics.TasksSkipped.Add(int64(pruned))
	}

	var (
		treeMu sync.Mutex
		trees  = make(map[int]*index.RTree)
	)
	treeFor := func(ri int, items []Tuple[V]) *index.RTree {
		treeMu.Lock()
		t, ok := trees[ri]
		treeMu.Unlock()
		if ok {
			return t
		}
		t = index.New(order)
		for i, kv := range items {
			t.Insert(kv.Key.Envelope(), int32(i))
		}
		t.Build()
		treeMu.Lock()
		trees[ri] = t
		treeMu.Unlock()
		return t
	}

	var total atomic.Int64
	taskIdx := make([]int, len(tasks))
	for i := range taskIdx {
		taskIdx[i] = i
	}
	err := ctx.RunJob(taskIdx, func(t int) error {
		li, ri := tasks[t].li, tasks[t].ri
		right, err := s.ds.ComputePartition(ri)
		if err != nil {
			return err
		}
		if len(right) == 0 {
			return nil
		}
		// Built lazily on the first probe, so a cross-partition task
		// whose left stream is empty never pays the build.
		var tree *index.RTree
		same := li == ri
		var local int64
		var buf []int32
		var probes, refined int64
		probe := func(i int, lkv Tuple[V]) {
			if tree == nil {
				tree = treeFor(ri, right)
			}
			probes++
			buf = tree.Query(lkv.Key.Envelope().ExpandBy(eps), buf[:0])
			refined += int64(len(buf))
			for _, j := range buf {
				if same && int(j) < i {
					continue // count unordered pairs once
				}
				if lkv.Key.WithinDistance(right[j].Key, eps, nil) {
					local++
				}
			}
		}
		if same {
			// The left partition is the already-materialised right.
			for i, lkv := range right {
				probe(i, lkv)
			}
		} else {
			i := 0
			if err := s.ds.EachPartition(li, func(lkv Tuple[V]) bool {
				probe(i, lkv)
				i++
				return true
			}); err != nil {
				return err
			}
		}
		metrics.IndexProbes.Add(probes)
		metrics.CandidatesRefined.Add(refined)
		total.Add(local)
		return nil
	})
	return total.Load(), err
}

// JoinCount is Join restricted to counting: matching pairs stream
// into a per-task counter and no JoinedPair row is ever built — the
// benchmark action pays the probe and refinement cost only.
func JoinCount[V, W any](l *SpatialDataset[V], r *SpatialDataset[W], opts JoinOptions) (int64, error) {
	var counts []int64
	err := joinRun(l, r, opts, func(numTasks int) func(int, Tuple[V], Tuple[W]) {
		counts = make([]int64, numTasks)
		return func(t int, _ Tuple[V], _ Tuple[W]) {
			counts[t]++
		}
	})
	if err != nil {
		return 0, err
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	return total, nil
}
