package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"stark/internal/geom"
	"stark/internal/index"
	"stark/internal/partition"
	"stark/internal/plan"
	"stark/internal/stobject"
)

// This file implements the spatio-temporal join. STARK's join takes
// two datasets of (STObject, V) records and a predicate; the result
// holds every pair of records whose keys satisfy it.
//
// Execution runs one of three physical strategies, chosen by the
// cost model in internal/plan from internal/stats statistics (the
// default, JoinAuto) or forced via JoinOptions.Strategy:
//
//   - broadcast: the smaller side is materialised once into a single
//     live R-tree and the other side's fused partition pipelines
//     stream against it — no partition-pair enumeration at all;
//   - copartition: the smaller side is replicated onto the other
//     side's SpatialPartitioner via extent overlap (the Replicating
//     assignment), so each task joins exactly one aligned pair;
//   - pairs: the paper's partitioned join — (left, right) partition
//     pairs are enumerated, pairs with disjoint extents are pruned
//     (the strategy Figure 4 measures), and the right partition of
//     each surviving pair is indexed with a live R-tree.
//
// In every strategy the probe side is never materialised: records
// stream off their fused partition pipeline straight into the probe
// loop. Setting IndexOrder to 0 disables the trees and falls back to
// nested loops (the behaviour of the SpatialSpark baseline).

// JoinStrategy selects the physical join execution strategy; see
// plan.JoinStrategy for the semantics of each value.
type JoinStrategy = plan.JoinStrategy

// Join strategy values, re-exported from the planner.
const (
	JoinAuto        = plan.JoinAuto
	JoinPairs       = plan.JoinPairs
	JoinBroadcast   = plan.JoinBroadcast
	JoinCoPartition = plan.JoinCoPartition
)

// JoinedPair is one join result row.
type JoinedPair[V, W any] struct {
	LeftKey  stobject.STObject
	LeftVal  V
	RightKey stobject.STObject
	RightVal W
}

// JoinOptions configures a spatial join.
type JoinOptions struct {
	// Predicate is the spatio-temporal join predicate; nil selects
	// Intersects.
	Predicate stobject.Predicate
	// IndexOrder is the order of the live R-trees built on the join's
	// build side; 0 disables indexing (nested loop), negative selects
	// the default order.
	IndexOrder int
	// ProbeExpansion expands the probe record's envelope before
	// probing — required for withinDistance joins, where matching
	// records can lie outside the probe envelope.
	ProbeExpansion float64
	// DisablePruning turns partition-pair pruning off even when both
	// sides are spatially partitioned (used by ablation benches). It
	// also pins JoinAuto to the pairs strategy, so the ablation
	// measures the enumeration it claims to.
	DisablePruning bool
	// Strategy forces a physical strategy; JoinAuto (the zero value)
	// lets the cost model choose from dataset statistics. Only auto
	// consults sizes: a forced strategy builds the RIGHT input as
	// given (force JoinBroadcast with the side to materialise on the
	// right), and a forced JoinCoPartition without any spatial
	// partitioner on either side falls back to JoinPairs.
	Strategy JoinStrategy
	// BroadcastBudget caps the rows the auto strategy may broadcast;
	// <= 0 selects plan.DefaultBroadcastRows.
	BroadcastBudget int64
	// Report, when non-nil, receives the execution report: the chosen
	// strategy, the cost-model decision, and actual task/pair/tree
	// counters — the numbers EXPLAIN renders.
	Report *JoinReport
}

// JoinReport describes how a join actually executed.
type JoinReport struct {
	// Strategy is the strategy that ran (never JoinAuto).
	Strategy JoinStrategy
	// Decision is the cost model's verdict; nil when the strategy was
	// forced and no planning ran.
	Decision *plan.JoinDecision
	// Swapped reports that the executor swapped the inputs internally
	// (and swapped every result row back).
	Swapped bool
	// Tasks is the number of scheduled join tasks; TotalPairs the
	// size of the naive L×R enumeration the strategy avoided or
	// pruned.
	Tasks      int
	TotalPairs int
	// PairsPruned counts partition pairs skipped by extent pruning
	// (pairs strategy only).
	PairsPruned int
	// TreesBuilt counts live R-tree builds; with the once-per-
	// partition slot cache this is at most one per distinct build
	// partition.
	TreesBuilt int64
	// Shuffled counts records replicated by the copartition shuffle.
	Shuffled int64
	// BuildRows is the number of rows materialised on the build side
	// (broadcast and copartition).
	BuildRows int64
}

// Summary renders the actual execution counters on one line — the
// "actual:" EXPLAIN annotation.
func (r *JoinReport) Summary() string {
	return fmt.Sprintf("strategy=%s tasks=%d of %d enumerable pairs, pairs_pruned=%d trees_built=%d shuffled=%d build_rows=%d",
		r.Strategy, r.Tasks, r.TotalPairs, r.PairsPruned, r.TreesBuilt, r.Shuffled, r.BuildRows)
}

// joinRun is the shared execution core of Join and JoinCount: it
// resolves the strategy (consulting the cost model on JoinAuto),
// normalises the orientation so the build side is on the right, and
// dispatches to the strategy executor. Every matching (left, right)
// record pair streams into the per-task sink produced by
// makeSink(numTasks). Sinks are indexed by task, and each task is
// owned by exactly one goroutine, so sinks need no locking as long
// as they only touch their task's slot.
func joinRun[V, W any](l *SpatialDataset[V], r *SpatialDataset[W], opts JoinOptions,
	makeSink func(numTasks int) func(t int, lkv Tuple[V], rkv Tuple[W])) error {
	pred := opts.Predicate
	if pred == nil {
		pred = stobject.Intersects
	}
	order := opts.IndexOrder
	if order < 0 {
		order = index.DefaultOrder
	}

	rep := opts.Report
	if rep == nil {
		rep = &JoinReport{}
	}
	*rep = JoinReport{TotalPairs: l.ds.NumPartitions() * r.ds.NumPartitions()}

	strategy := opts.Strategy
	buildRight := true
	if strategy == JoinAuto && opts.DisablePruning {
		strategy = JoinPairs
	}
	if strategy == JoinAuto {
		ls, err := l.Stats(0)
		if err != nil {
			return fmt.Errorf("core: join stats (left): %w", err)
		}
		rs, err := r.Stats(0)
		if err != nil {
			return fmt.Errorf("core: join stats (right): %w", err)
		}
		dec := plan.PlanJoinStrategy(plan.JoinPlanInput{
			Left:            ls,
			Right:           rs,
			Expand:          opts.ProbeExpansion,
			LeftPartitioned: l.sp != nil,
			RightPartitioned: r.sp != nil,
			SamePartitioner: l.sp != nil && l.sp == r.sp,
			BroadcastBudget: opts.BroadcastBudget,
		})
		rep.Decision = &dec
		strategy = dec.Strategy
		buildRight = dec.BuildRight
	}
	// Co-partitioning needs a stationary partitioner on the stream
	// side; reorient towards one, or fall back to pairs.
	if strategy == JoinCoPartition {
		switch {
		case buildRight && l.sp == nil && r.sp != nil:
			buildRight = false
		case !buildRight && r.sp == nil && l.sp != nil:
			buildRight = true
		case l.sp == nil && r.sp == nil:
			strategy = JoinPairs
		}
	}
	rep.Strategy = strategy

	if buildRight {
		return joinExec(l, r, pred, order, opts, strategy, rep, makeSink)
	}
	// The build side is the left input: run the executor with the
	// inputs (and the predicate's operands) swapped, and swap every
	// emitted row back so the caller sees the original orientation.
	rep.Swapped = true
	conv := func(a, b stobject.STObject) bool { return pred(b, a) }
	return joinExec(r, l, conv, order, opts, strategy, rep,
		func(numTasks int) func(t int, a Tuple[W], b Tuple[V]) {
			sink := makeSink(numTasks)
			return func(t int, a Tuple[W], b Tuple[V]) { sink(t, b, a) }
		})
}

// joinExec dispatches to the strategy executor; the build side is
// always the right input here.
func joinExec[V, W any](l *SpatialDataset[V], r *SpatialDataset[W], pred stobject.Predicate,
	order int, opts JoinOptions, strategy JoinStrategy, rep *JoinReport,
	makeSink func(numTasks int) func(t int, lkv Tuple[V], rkv Tuple[W])) error {
	switch strategy {
	case JoinBroadcast:
		return joinBroadcast(l, r, pred, order, opts.ProbeExpansion, rep, makeSink)
	case JoinCoPartition:
		return joinCoPartition(l, r, pred, order, opts.ProbeExpansion, rep, makeSink)
	default:
		return joinPairs(l, r, pred, order, opts, rep, makeSink)
	}
}

// joinBroadcast materialises the right side once into a single
// R-tree and streams every left partition against it — one task per
// left partition, no pair enumeration. Left partitions whose extent
// cannot reach the broadcast envelope are pruned.
func joinBroadcast[V, W any](l *SpatialDataset[V], r *SpatialDataset[W], pred stobject.Predicate,
	order int, expand float64, rep *JoinReport,
	makeSink func(numTasks int) func(t int, lkv Tuple[V], rkv Tuple[W])) error {
	right, err := r.ds.Collect()
	if err != nil {
		return err
	}
	rep.BuildRows = int64(len(right))
	ctx := l.Context()
	rec := l.recorder()

	benv := geom.EmptyEnvelope()
	for _, kv := range right {
		benv = benv.ExpandToInclude(kv.Key.Envelope())
	}
	probeReach := benv.ExpandBy(expand)
	var tasks []int
	pruned := 0
	for li := 0; li < l.ds.NumPartitions(); li++ {
		if len(right) == 0 {
			pruned++
			continue
		}
		if l.sp != nil {
			ext := l.sp.Extent(li)
			if ext.IsEmpty() || !ext.Intersects(probeReach) {
				pruned++
				continue
			}
		}
		tasks = append(tasks, li)
	}
	if pruned > 0 {
		rec.TasksSkipped(int64(pruned))
	}
	rep.Tasks = len(tasks)
	sink := makeSink(len(tasks))
	if len(tasks) == 0 {
		return nil
	}

	var tree *index.RTree
	if order > 0 {
		tree = index.New(order)
		for i, kv := range right {
			_ = tree.Insert(kv.Key.Envelope(), int32(i))
		}
		tree.Build()
		rep.TreesBuilt = 1
	}

	taskIdx := make([]int, len(tasks))
	for i := range taskIdx {
		taskIdx[i] = i
	}
	return ctx.RunJobRecorder(nil, rec, taskIdx, func(t int) error {
		li := tasks[t]
		if tree == nil {
			// Nested loop against the broadcast slice.
			var nLeft int64
			err := l.ds.EachPartition(li, func(lkv Tuple[V]) bool {
				nLeft++
				for _, rkv := range right {
					if pred(lkv.Key, rkv.Key) {
						sink(t, lkv, rkv)
					}
				}
				return true
			})
			rec.ElementsScanned(nLeft * int64(len(right)))
			return err
		}
		var (
			candBuf         []int32
			probes, refined int64
		)
		err := l.ds.EachPartition(li, func(lkv Tuple[V]) bool {
			probes++
			candBuf = tree.Query(lkv.Key.Envelope().ExpandBy(expand), candBuf[:0])
			refined += int64(len(candBuf))
			for _, id := range candBuf {
				rkv := right[id]
				if pred(lkv.Key, rkv.Key) {
					sink(t, lkv, rkv)
				}
			}
			return true
		})
		rec.IndexProbes(probes)
		rec.CandidatesRefined(refined)
		return err
	})
}

// joinCoPartition replicates the right side onto the left side's
// spatial partitioner (extent-overlap assignment via the Replicating
// contract) and then joins each left partition against exactly its
// aligned bucket — one task per target partition holding any right
// records. The caller guarantees l.sp != nil.
func joinCoPartition[V, W any](l *SpatialDataset[V], r *SpatialDataset[W], pred stobject.Predicate,
	order int, expand float64, rep *JoinReport,
	makeSink func(numTasks int) func(t int, lkv Tuple[V], rkv Tuple[W])) error {
	ctx := l.Context()
	rec := l.recorder()
	n := l.ds.NumPartitions()

	right, err := r.ds.Collect()
	if err != nil {
		return err
	}
	rep.BuildRows = int64(len(right))

	// Overlap assignment is O(|right| × targets); run it as chunked
	// tasks on the pool with chunk-local buckets, merged below, so
	// the shuffle is not a sequential prefix of the join.
	assigner := partition.OverlapAssigner{SP: l.sp, Expand: expand}
	chunks := ctx.Parallelism()
	if chunks > len(right) {
		chunks = len(right)
	}
	partial := make([][][]Tuple[W], chunks)
	var shuffled atomic.Int64
	if chunks > 0 {
		chunkIdx := make([]int, chunks)
		for i := range chunkIdx {
			chunkIdx[i] = i
		}
		size := (len(right) + chunks - 1) / chunks
		if err := ctx.RunJobRecorder(nil, rec, chunkIdx, func(c int) error {
			lo := c * size
			hi := lo + size
			if hi > len(right) {
				hi = len(right)
			}
			local := make([][]Tuple[W], n)
			var moved int64
			for _, kv := range right[lo:hi] {
				for _, li := range assigner.PartitionsFor(kv.Key) {
					local[li] = append(local[li], kv)
					moved++
				}
			}
			partial[c] = local
			shuffled.Add(moved)
			return nil
		}); err != nil {
			return err
		}
	}
	buckets := make([][]Tuple[W], n)
	for li := 0; li < n; li++ {
		for _, local := range partial {
			buckets[li] = append(buckets[li], local[li]...)
		}
	}
	rec.ShuffledRecords(shuffled.Load())
	rep.Shuffled = shuffled.Load()

	var tasks []int
	pruned := 0
	for li := 0; li < n; li++ {
		if len(buckets[li]) == 0 {
			pruned++ // no aligned right records: nothing can match
			continue
		}
		tasks = append(tasks, li)
	}
	if pruned > 0 {
		rec.TasksSkipped(int64(pruned))
	}
	rep.Tasks = len(tasks)
	sink := makeSink(len(tasks))
	if len(tasks) == 0 {
		return nil
	}

	var treesBuilt atomic.Int64
	taskIdx := make([]int, len(tasks))
	for i := range taskIdx {
		taskIdx[i] = i
	}
	err = ctx.RunJobRecorder(nil, rec, taskIdx, func(t int) error {
		li := tasks[t]
		bucket := buckets[li]
		if order == 0 {
			var nLeft int64
			err := l.ds.EachPartition(li, func(lkv Tuple[V]) bool {
				nLeft++
				for _, rkv := range bucket {
					if pred(lkv.Key, rkv.Key) {
						sink(t, lkv, rkv)
					}
				}
				return true
			})
			rec.ElementsScanned(nLeft * int64(len(bucket)))
			return err
		}
		// The bucket tree is built lazily on the first probe, so a
		// task whose left stream turns out empty never pays the build.
		var (
			tree            *index.RTree
			candBuf         []int32
			probes, refined int64
		)
		err := l.ds.EachPartition(li, func(lkv Tuple[V]) bool {
			if tree == nil {
				tree = index.New(order)
				for i, kv := range bucket {
					_ = tree.Insert(kv.Key.Envelope(), int32(i))
				}
				tree.Build()
				treesBuilt.Add(1)
			}
			probes++
			candBuf = tree.Query(lkv.Key.Envelope().ExpandBy(expand), candBuf[:0])
			refined += int64(len(candBuf))
			for _, id := range candBuf {
				rkv := bucket[id]
				if pred(lkv.Key, rkv.Key) {
					sink(t, lkv, rkv)
				}
			}
			return true
		})
		rec.IndexProbes(probes)
		rec.CandidatesRefined(refined)
		return err
	})
	rep.TreesBuilt = treesBuilt.Load()
	return err
}

// rightSlot shares one right partition's materialised records and
// live R-tree between every pairs-strategy task that probes it. The
// sync.Once closes the check-then-act window that used to let two
// concurrently-missing tasks both build the same tree, and the
// refcount drops the records and tree as soon as the last task
// needing the partition completes — instead of retaining every tree
// until the join ends.
type rightSlot[W any] struct {
	once      sync.Once
	items     []Tuple[W]
	tree      *index.RTree
	err       error
	remaining atomic.Int32
}

// load materialises the partition and (order > 0, non-empty) builds
// its tree, exactly once.
func (s *rightSlot[W]) load(r *SpatialDataset[W], ri, order int, treesBuilt *atomic.Int64) ([]Tuple[W], *index.RTree, error) {
	s.once.Do(func() {
		s.items, s.err = r.ds.ComputePartition(ri)
		if s.err != nil || len(s.items) == 0 || order == 0 {
			return
		}
		t := index.New(order)
		for i, kv := range s.items {
			_ = t.Insert(kv.Key.Envelope(), int32(i))
		}
		t.Build()
		s.tree = t
		treesBuilt.Add(1)
	})
	return s.items, s.tree, s.err
}

// release drops the slot's data once no remaining task needs it. The
// atomic counter orders every reader's release before the final
// decrement, so the nil writes cannot race a read.
func (s *rightSlot[W]) release() {
	if s.remaining.Add(-1) == 0 {
		s.items, s.tree = nil, nil
	}
}

// joinPairs is the pruned partition-pair strategy: enumerate (left,
// right) partition pairs, skip pairs whose extents are disjoint, and
// within each surviving pair probe the right partition's shared live
// R-tree with the streaming left records. Pairs are enumerated
// right-major so tasks sharing a right partition run close together
// and the shared slot is released early.
func joinPairs[V, W any](l *SpatialDataset[V], r *SpatialDataset[W], pred stobject.Predicate,
	order int, opts JoinOptions, rep *JoinReport,
	makeSink func(numTasks int) func(t int, lkv Tuple[V], rkv Tuple[W])) error {
	type task struct{ li, ri int }
	var tasks []task
	prune := !opts.DisablePruning && l.sp != nil && r.sp != nil
	pruned := 0
	for ri := 0; ri < r.ds.NumPartitions(); ri++ {
		for li := 0; li < l.ds.NumPartitions(); li++ {
			if prune {
				le := l.sp.Extent(li).ExpandBy(opts.ProbeExpansion)
				if !le.Intersects(r.sp.Extent(ri)) {
					pruned++
					continue
				}
			}
			tasks = append(tasks, task{li, ri})
		}
	}
	ctx := l.Context()
	rec := l.recorder()
	if pruned > 0 {
		rec.TasksSkipped(int64(pruned))
	}
	rep.Tasks = len(tasks)
	rep.PairsPruned = pruned
	sink := makeSink(len(tasks))

	var treesBuilt atomic.Int64
	slots := make(map[int]*rightSlot[W])
	for _, tk := range tasks {
		s := slots[tk.ri]
		if s == nil {
			s = &rightSlot[W]{}
			slots[tk.ri] = s
		}
		s.remaining.Add(1)
	}

	taskIdx := make([]int, len(tasks))
	for i := range taskIdx {
		taskIdx[i] = i
	}
	err := ctx.RunJobRecorder(nil, rec, taskIdx, func(t int) error {
		li, ri := tasks[t].li, tasks[t].ri
		s := slots[ri]
		defer s.release()
		// The slot loads lazily on the first left record, so a task
		// whose left stream turns out empty never pays the
		// materialisation or the tree build.
		var (
			right           []Tuple[W]
			tree            *index.RTree
			loaded          bool
			loadErr         error
			candBuf         []int32
			probes, refined int64
			nLeft           int64
		)
		err := l.ds.EachPartition(li, func(lkv Tuple[V]) bool {
			if !loaded {
				loaded = true
				right, tree, loadErr = s.load(r, ri, order, &treesBuilt)
			}
			if loadErr != nil || len(right) == 0 {
				return false
			}
			if tree == nil {
				// Nested loop: every pair is checked exactly.
				nLeft++
				for _, rkv := range right {
					if pred(lkv.Key, rkv.Key) {
						sink(t, lkv, rkv)
					}
				}
				return true
			}
			probes++
			candBuf = tree.Query(lkv.Key.Envelope().ExpandBy(opts.ProbeExpansion), candBuf[:0])
			refined += int64(len(candBuf))
			for _, id := range candBuf {
				rkv := right[id]
				if pred(lkv.Key, rkv.Key) {
					sink(t, lkv, rkv)
				}
			}
			return true
		})
		if loadErr != nil {
			return loadErr
		}
		if err != nil {
			return err
		}
		if nLeft > 0 {
			rec.ElementsScanned(nLeft * int64(len(right)))
		}
		rec.IndexProbes(probes)
		rec.CandidatesRefined(refined)
		return nil
	})
	rep.TreesBuilt = treesBuilt.Load()
	return err
}

// Join computes the spatio-temporal join of l and r.
func Join[V, W any](l *SpatialDataset[V], r *SpatialDataset[W], opts JoinOptions) ([]JoinedPair[V, W], error) {
	var results [][]JoinedPair[V, W]
	err := joinRun(l, r, opts, func(numTasks int) func(int, Tuple[V], Tuple[W]) {
		results = make([][]JoinedPair[V, W], numTasks)
		return func(t int, lkv Tuple[V], rkv Tuple[W]) {
			results[t] = append(results[t], JoinedPair[V, W]{
				LeftKey: lkv.Key, LeftVal: lkv.Value,
				RightKey: rkv.Key, RightVal: rkv.Value,
			})
		}
	})
	if err != nil {
		return nil, err
	}
	var all []JoinedPair[V, W]
	for _, r := range results {
		all = append(all, r...)
	}
	return all, nil
}

// SelfJoin joins the dataset with itself — the workload of the
// paper's Figure 4 micro-benchmark. The result includes the identity
// pairs (every record matches itself under Intersects), matching the
// semantics of rdd.join(rdd).
func SelfJoin[V any](s *SpatialDataset[V], opts JoinOptions) ([]JoinedPair[V, V], error) {
	return Join(s, s, opts)
}

// SelfJoinWithinDistanceCount counts the unordered within-eps pairs
// (including self pairs) of the dataset — the exact workload and
// result convention of the paper's Figure 4 micro-benchmark. Compared
// to SelfJoin it exploits the symmetry of the self join (only
// partition pairs li <= ri are processed), streams counts instead of
// materialising result rows, reuses one live R-tree per partition,
// and prunes partition pairs by extent when the dataset is spatially
// partitioned. order <= 0 selects the default R-tree order.
func SelfJoinWithinDistanceCount[V any](s *SpatialDataset[V], eps float64, order int) (int64, error) {
	if order <= 0 {
		order = index.DefaultOrder
	}
	n := s.ds.NumPartitions()
	type task struct{ li, ri int }
	var tasks []task
	pruned := 0
	for li := 0; li < n; li++ {
		for ri := li; ri < n; ri++ {
			if s.sp != nil {
				le := s.sp.Extent(li).ExpandBy(eps)
				if !le.Intersects(s.sp.Extent(ri)) {
					pruned++
					continue
				}
			}
			tasks = append(tasks, task{li, ri})
		}
	}
	ctx := s.Context()
	rec := s.recorder()
	if pruned > 0 {
		rec.TasksSkipped(int64(pruned))
	}

	// Shared per-partition slots: materialisation and tree build run
	// once under sync.Once, and the refcount releases each partition
	// as soon as its last task completes.
	var treesBuilt atomic.Int64
	slots := make(map[int]*rightSlot[V])
	for _, tk := range tasks {
		sl := slots[tk.ri]
		if sl == nil {
			sl = &rightSlot[V]{}
			slots[tk.ri] = sl
		}
		sl.remaining.Add(1)
	}

	var total atomic.Int64
	taskIdx := make([]int, len(tasks))
	for i := range taskIdx {
		taskIdx[i] = i
	}
	err := ctx.RunJobRecorder(nil, rec, taskIdx, func(t int) error {
		li, ri := tasks[t].li, tasks[t].ri
		sl := slots[ri]
		defer sl.release()
		same := li == ri
		var (
			right           []Tuple[V]
			tree            *index.RTree
			loaded          bool
			loadErr         error
			local           int64
			buf             []int32
			probes, refined int64
		)
		load := func() bool {
			if !loaded {
				loaded = true
				right, tree, loadErr = sl.load(s, ri, order, &treesBuilt)
			}
			return loadErr == nil && len(right) > 0
		}
		probe := func(i int, lkv Tuple[V]) {
			probes++
			buf = tree.Query(lkv.Key.Envelope().ExpandBy(eps), buf[:0])
			refined += int64(len(buf))
			for _, j := range buf {
				if same && int(j) < i {
					continue // count unordered pairs once
				}
				if lkv.Key.WithinDistance(right[j].Key, eps, nil) {
					local++
				}
			}
		}
		if same {
			// The left partition is the already-materialised right.
			if !load() {
				return loadErr
			}
			for i, lkv := range right {
				probe(i, lkv)
			}
		} else {
			i := 0
			if err := s.ds.EachPartition(li, func(lkv Tuple[V]) bool {
				// Lazy load: a cross-partition task whose left stream
				// is empty never pays materialisation or build.
				if !load() {
					return false
				}
				probe(i, lkv)
				i++
				return true
			}); err != nil {
				return err
			}
			if loadErr != nil {
				return loadErr
			}
		}
		rec.IndexProbes(probes)
		rec.CandidatesRefined(refined)
		total.Add(local)
		return nil
	})
	return total.Load(), err
}

// JoinCount is Join restricted to counting: matching pairs stream
// into a per-task counter and no JoinedPair row is ever built — the
// benchmark action pays the probe and refinement cost only.
func JoinCount[V, W any](l *SpatialDataset[V], r *SpatialDataset[W], opts JoinOptions) (int64, error) {
	var counts []int64
	err := joinRun(l, r, opts, func(numTasks int) func(int, Tuple[V], Tuple[W]) {
		counts = make([]int64, numTasks)
		return func(t int, _ Tuple[V], _ Tuple[W]) {
			counts[t]++
		}
	})
	if err != nil {
		return 0, err
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	return total, nil
}
