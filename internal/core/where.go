package core

import (
	"stark/internal/engine"
	"stark/internal/geom"
	"stark/internal/stobject"
)

// This file provides the lazy, dataset-returning counterparts of the
// eager filter actions in filter.go. Where* methods return a new
// SpatialDataset whose partitions are filtered on compute, so
// pipelines can chain further operators (joins, clustering, kNN)
// without materialising intermediate results — the RDD style of the
// original DSL. The spatial partitioner is preserved: a filter never
// moves a record out of its partition, so partition extents remain
// valid over-approximations and downstream pruning still applies.

// Where keeps the records whose key satisfies pred against q,
// lazily. The predicate is fused into the partition pipeline:
// chaining several Where steps (or a Where under a Collect/Count)
// executes as one loop per partition with no intermediate slices.
func (s *SpatialDataset[V]) Where(q stobject.STObject, pred stobject.Predicate) *SpatialDataset[V] {
	return newSpatial(scanFiltered(s, q, pred), s.sp, s.rec)
}

// WhereRows keeps the records satisfying a payload-aware predicate,
// lazily and fused like Where. It is the inline execution form of
// typed attribute predicates: the compiled attribute checks run
// against each record's payload in the same partition loop as the
// spatial predicates, before any of them.
func (s *SpatialDataset[V]) WhereRows(keep func(key stobject.STObject, v V) bool) *SpatialDataset[V] {
	rec := s.recorder()
	ds := s.ds
	out := engine.NewStream(s.Context(), ds.Name()+".attrRowScan", ds.NumPartitions(),
		func(p int, yield func(Tuple[V]) bool) error {
			var scanned int64
			err := ds.EachPartition(p, func(kv Tuple[V]) bool {
				scanned++
				if !keep(kv.Key, kv.Value) {
					return true
				}
				return yield(kv)
			})
			rec.ElementsScanned(scanned)
			return err
		})
	return newSpatial(out.WithRecorder(s.rec), s.sp, s.rec)
}

// WhereIntersects is Where with the Intersects predicate.
func (s *SpatialDataset[V]) WhereIntersects(q stobject.STObject) *SpatialDataset[V] {
	return s.Where(q, stobject.Intersects)
}

// WhereContainedBy is Where with the ContainedBy predicate.
func (s *SpatialDataset[V]) WhereContainedBy(q stobject.STObject) *SpatialDataset[V] {
	return s.Where(q, stobject.ContainedBy)
}

// WhereWithinDistance is Where with a withinDistance predicate.
func (s *SpatialDataset[V]) WhereWithinDistance(q stobject.STObject, maxDist float64, df geom.DistanceFunc) *SpatialDataset[V] {
	return s.Where(q, stobject.WithinDistancePredicate(maxDist, df))
}

// MapValues transforms the payloads, preserving keys and
// partitioning.
func MapDatasetValues[V, W any](s *SpatialDataset[V], f func(V) W) *SpatialDataset[W] {
	mapped := engine.Map(s.ds, func(kv Tuple[V]) Tuple[W] {
		return engine.NewPair(kv.Key, f(kv.Value))
	})
	return newSpatial(mapped, s.sp, s.rec)
}

// ReKey replaces the spatio-temporal key of every record. The spatial
// partitioner is dropped because the new keys need not respect the
// old partitioning; repartition afterwards if needed.
func ReKey[V any](s *SpatialDataset[V], f func(key stobject.STObject, v V) stobject.STObject) *SpatialDataset[V] {
	mapped := engine.Map(s.ds, func(kv Tuple[V]) Tuple[V] {
		return engine.NewPair(f(kv.Key, kv.Value), kv.Value)
	})
	return newSpatial(mapped, nil, s.rec)
}
