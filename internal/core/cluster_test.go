package core

import (
	"math/rand"
	"testing"

	"stark/internal/cluster"
	"stark/internal/engine"
	"stark/internal/geom"
	"stark/internal/partition"
	"stark/internal/stobject"
)

func blobDataset(t *testing.T, ctx *engine.Context, perBlob int, seed int64) (*SpatialDataset[int], int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	centers := []geom.Point{{X: 10, Y: 10}, {X: 60, Y: 60}, {X: 90, Y: 20}}
	var tuples []Tuple[int]
	id := 0
	for _, c := range centers {
		for i := 0; i < perBlob; i++ {
			p := geom.NewPoint(c.X+rng.NormFloat64()*0.5, c.Y+rng.NormFloat64()*0.5)
			tuples = append(tuples, engine.NewPair(stobject.New(p), id))
			id++
		}
	}
	return Wrap(engine.Parallelize(ctx, tuples, 4)), len(centers)
}

func TestClusterFindsBlobs(t *testing.T) {
	ctx := engine.NewContext(4)
	s, wantClusters := blobDataset(t, ctx, 80, 50)
	recs, n, err := s.Cluster(ClusterOptions{Eps: 2, MinPts: 5})
	if err != nil {
		t.Fatal(err)
	}
	if n != wantClusters {
		t.Fatalf("clusters = %d, want %d", n, wantClusters)
	}
	noise := 0
	for _, r := range recs {
		if r.Cluster == cluster.Noise {
			noise++
		}
	}
	if noise != 0 {
		t.Errorf("noise = %d, want 0 for dense blobs", noise)
	}
}

func TestClusterReusesGridPartitioner(t *testing.T) {
	ctx := engine.NewContext(4)
	s, wantClusters := blobDataset(t, ctx, 60, 51)
	g, err := partition.NewGrid(2, keysOf(t, s))
	if err != nil {
		t.Fatal(err)
	}
	ps, err := s.PartitionBy(g)
	if err != nil {
		t.Fatal(err)
	}
	_, n, err := ps.Cluster(ClusterOptions{Eps: 2, MinPts: 5})
	if err != nil {
		t.Fatal(err)
	}
	if n != wantClusters {
		t.Errorf("clusters = %d, want %d", n, wantClusters)
	}
}

func TestClusterValidation(t *testing.T) {
	ctx := engine.NewContext(2)
	s, _ := blobDataset(t, ctx, 10, 52)
	if _, _, err := s.Cluster(ClusterOptions{Eps: 0, MinPts: 3}); err == nil {
		t.Error("eps=0 must fail")
	}
	if _, _, err := s.Cluster(ClusterOptions{Eps: 1, MinPts: 0}); err == nil {
		t.Error("minPts=0 must fail")
	}
	empty := Wrap(engine.Parallelize(ctx, []Tuple[int]{}, 1))
	recs, n, err := empty.Cluster(ClusterOptions{Eps: 1, MinPts: 1})
	if err != nil || n != 0 || len(recs) != 0 {
		t.Errorf("empty cluster: %d/%d err=%v", len(recs), n, err)
	}
}
