package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"stark/internal/engine"
	"stark/internal/geom"
	"stark/internal/partition"
	"stark/internal/stobject"
	"stark/internal/temporal"
)

// makeDataset builds a SpatialDataset of n uniform points in
// [0,100)² with IDs as values, split into numPart partitions.
func makeDataset(t testing.TB, ctx *engine.Context, n, numPart int, seed int64) (*SpatialDataset[int], []Tuple[int]) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	tuples := make([]Tuple[int], n)
	for i := range tuples {
		p := stobject.New(geom.NewPoint(rng.Float64()*100, rng.Float64()*100))
		tuples[i] = engine.NewPair(p, i)
	}
	return Wrap(engine.Parallelize(ctx, tuples, numPart)), tuples
}

// makeTimedDataset builds points carrying instants in [0, 1000).
func makeTimedDataset(t testing.TB, ctx *engine.Context, n, numPart int, seed int64) (*SpatialDataset[int], []Tuple[int]) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	tuples := make([]Tuple[int], n)
	for i := range tuples {
		p := stobject.NewWithTime(
			geom.NewPoint(rng.Float64()*100, rng.Float64()*100),
			temporal.Instant(rng.Int63n(1000)))
		tuples[i] = engine.NewPair(p, i)
	}
	return Wrap(engine.Parallelize(ctx, tuples, numPart)), tuples
}

func queryPolygon(minX, minY, maxX, maxY float64) stobject.STObject {
	return stobject.New(geom.NewEnvelope(minX, minY, maxX, maxY).ToPolygon())
}

// bruteFilter applies pred(key, q) to all tuples.
func bruteFilter(tuples []Tuple[int], q stobject.STObject, pred stobject.Predicate) []int {
	var ids []int
	for _, kv := range tuples {
		if pred(kv.Key, q) {
			ids = append(ids, kv.Value)
		}
	}
	sort.Ints(ids)
	return ids
}

func gotIDs(tuples []Tuple[int]) []int {
	ids := make([]int, len(tuples))
	for i, kv := range tuples {
		ids[i] = kv.Value
	}
	sort.Ints(ids)
	return ids
}

func sameIDs(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestWrapAndBasics(t *testing.T) {
	ctx := engine.NewContext(4)
	s, tuples := makeDataset(t, ctx, 100, 4, 1)
	if s.Partitioner() != nil {
		t.Error("fresh wrap must have no partitioner")
	}
	if s.NumPartitions() != 4 {
		t.Errorf("partitions = %d", s.NumPartitions())
	}
	n, err := s.Count()
	if err != nil || n != 100 {
		t.Fatalf("count = %d err=%v", n, err)
	}
	got, err := s.Collect()
	if err != nil || len(got) != len(tuples) {
		t.Fatalf("collect len = %d err=%v", len(got), err)
	}
	if s.Context() != ctx {
		t.Error("context mismatch")
	}
}

func TestWrapPartitionedValidation(t *testing.T) {
	ctx := engine.NewContext(2)
	s, _ := makeDataset(t, ctx, 50, 4, 2)
	objs := keysOf(t, s)
	g, err := partition.NewGrid(3, objs) // 9 partitions != 4
	if err != nil {
		t.Fatal(err)
	}
	if _, err := WrapPartitioned(s.Dataset(), g); err == nil {
		t.Error("mismatched partition count must fail")
	}
	if _, err := WrapPartitioned(s.Dataset(), nil); err != nil {
		t.Errorf("nil partitioner is allowed: %v", err)
	}
}

func keysOf(t *testing.T, s *SpatialDataset[int]) []stobject.STObject {
	t.Helper()
	tuples, err := s.Collect()
	if err != nil {
		t.Fatal(err)
	}
	objs := make([]stobject.STObject, len(tuples))
	for i, kv := range tuples {
		objs[i] = kv.Key
	}
	return objs
}

func TestPartitionByGrid(t *testing.T) {
	ctx := engine.NewContext(4)
	s, tuples := makeDataset(t, ctx, 500, 4, 3)
	g, err := partition.NewGrid(3, keysOf(t, s))
	if err != nil {
		t.Fatal(err)
	}
	ps, err := s.PartitionBy(g)
	if err != nil {
		t.Fatal(err)
	}
	if ps.NumPartitions() != 9 {
		t.Fatalf("partitions = %d", ps.NumPartitions())
	}
	if ps.Partitioner() == nil {
		t.Fatal("partitioner must be recorded")
	}
	// No data lost in the shuffle.
	n, _ := ps.Count()
	if n != 500 {
		t.Errorf("count after shuffle = %d", n)
	}
	// Every record is in the partition its key maps to.
	for p := 0; p < 9; p++ {
		part, err := ps.Dataset().ComputePartition(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, kv := range part {
			if g.PartitionFor(kv.Key) != p {
				t.Fatalf("record %d in wrong partition", kv.Value)
			}
		}
	}
	_ = tuples
	if _, err := s.PartitionBy(nil); err == nil {
		t.Error("nil partitioner must fail")
	}
}

func TestFilterScanMatchesBruteForce(t *testing.T) {
	ctx := engine.NewContext(4)
	s, tuples := makeDataset(t, ctx, 1000, 8, 4)
	q := queryPolygon(20, 20, 50, 60)

	for _, tc := range []struct {
		name string
		run  func() ([]Tuple[int], error)
		pred stobject.Predicate
	}{
		{"intersects", func() ([]Tuple[int], error) { return s.Intersects(q) }, stobject.Intersects},
		{"containedBy", func() ([]Tuple[int], error) { return s.ContainedBy(q) }, stobject.ContainedBy},
		{"coveredBy", func() ([]Tuple[int], error) { return s.CoveredBy(q) }, stobject.CoveredBy},
	} {
		got, err := tc.run()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		want := bruteFilter(tuples, q, tc.pred)
		if !sameIDs(gotIDs(got), want) {
			t.Errorf("%s: got %d ids, want %d", tc.name, len(got), len(want))
		}
		if len(want) == 0 {
			t.Errorf("%s: degenerate test, no matches", tc.name)
		}
	}
}

func TestContainsFilter(t *testing.T) {
	// Polygons containing a query point.
	ctx := engine.NewContext(2)
	tuples := []Tuple[int]{
		engine.NewPair(stobject.MustFromWKT("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))"), 1),
		engine.NewPair(stobject.MustFromWKT("POLYGON ((20 20, 30 20, 30 30, 20 30, 20 20))"), 2),
	}
	s := Wrap(engine.Parallelize(ctx, tuples, 2))
	q := stobject.MustFromWKT("POINT (5 5)")
	got, err := s.Contains(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Value != 1 {
		t.Errorf("got %v", gotIDs(got))
	}
}

func TestFilterWithPartitionPruning(t *testing.T) {
	ctx := engine.NewContext(4)
	s, tuples := makeDataset(t, ctx, 2000, 4, 5)
	g, err := partition.NewGrid(4, keysOf(t, s))
	if err != nil {
		t.Fatal(err)
	}
	ps, err := s.PartitionBy(g)
	if err != nil {
		t.Fatal(err)
	}
	ctx.Metrics().Reset()
	q := queryPolygon(10, 10, 20, 20) // small box → prune most of 16 cells
	got, err := ps.Intersects(q)
	if err != nil {
		t.Fatal(err)
	}
	want := bruteFilter(tuples, q, stobject.Intersects)
	if !sameIDs(gotIDs(got), want) {
		t.Fatalf("pruned filter: got %d, want %d", len(got), len(want))
	}
	snap := ctx.Metrics().Snapshot()
	if snap.TasksSkipped == 0 {
		t.Error("expected pruned partitions")
	}
	if snap.ElementsScanned >= 2000 {
		t.Errorf("scanned %d elements; pruning should cut this below the full 2000", snap.ElementsScanned)
	}
}

func TestWithinDistanceAcrossPartitionBorders(t *testing.T) {
	// A query near a partition border must still find neighbours in
	// the adjacent partition (pruning envelope expanded by maxDist).
	ctx := engine.NewContext(4)
	s, tuples := makeDataset(t, ctx, 2000, 4, 6)
	g, err := partition.NewGrid(4, keysOf(t, s))
	if err != nil {
		t.Fatal(err)
	}
	ps, err := s.PartitionBy(g)
	if err != nil {
		t.Fatal(err)
	}
	// Grid cells are 25 wide; query at a cell border.
	q := stobject.MustFromWKT("POINT (25 25)")
	got, err := ps.WithinDistance(q, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := bruteFilter(tuples, q, stobject.WithinDistancePredicate(5, nil))
	if !sameIDs(gotIDs(got), want) {
		t.Errorf("got %d, want %d", len(got), len(want))
	}
	if len(want) == 0 {
		t.Error("degenerate test")
	}
}

func TestWithinDistanceCustomFunction(t *testing.T) {
	ctx := engine.NewContext(2)
	tuples := []Tuple[int]{
		engine.NewPair(stobject.MustFromWKT("POINT (3 4)"), 1), // L2=5, L1=7
		engine.NewPair(stobject.MustFromWKT("POINT (6 8)"), 2), // L2=10
	}
	s := Wrap(engine.Parallelize(ctx, tuples, 1))
	q := stobject.MustFromWKT("POINT (0 0)")
	got, err := s.WithinDistance(q, 5, nil)
	if err != nil || len(got) != 1 {
		t.Fatalf("euclidean got %d err=%v", len(got), err)
	}
	got, err = s.WithinDistance(q, 6.5, geom.Manhattan)
	if err != nil || len(got) != 0 {
		t.Fatalf("manhattan(6.5) got %d err=%v", len(got), err)
	}
	got, err = s.WithinDistance(q, 7, geom.Manhattan)
	if err != nil || len(got) != 1 {
		t.Fatalf("manhattan(7) got %d err=%v", len(got), err)
	}
}

func TestSpatioTemporalFilter(t *testing.T) {
	ctx := engine.NewContext(4)
	s, tuples := makeTimedDataset(t, ctx, 1000, 4, 7)
	// Query window: spatial box + temporal interval, the paper's
	// events.containedBy(qry) example.
	q := stobject.NewWithInterval(
		geom.NewEnvelope(20, 20, 60, 60).ToPolygon(),
		temporal.MustInterval(100, 400))
	got, err := s.ContainedBy(q)
	if err != nil {
		t.Fatal(err)
	}
	want := bruteFilter(tuples, q, stobject.ContainedBy)
	if !sameIDs(gotIDs(got), want) {
		t.Fatalf("got %d, want %d", len(got), len(want))
	}
	if len(want) == 0 || len(want) == len(tuples) {
		t.Error("degenerate temporal test")
	}
	// The same spatial query without time matches nothing (mixed
	// semantics).
	qNoTime := queryPolygon(20, 20, 60, 60)
	got, err = s.ContainedBy(qNoTime)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("mixed-pair query returned %d results, want 0", len(got))
	}
}

func TestGenericFilter(t *testing.T) {
	ctx := engine.NewContext(2)
	s, tuples := makeDataset(t, ctx, 500, 4, 8)
	q := queryPolygon(0, 0, 30, 30)
	got, err := s.Filter(q, q.Envelope(), stobject.Intersects)
	if err != nil {
		t.Fatal(err)
	}
	want := bruteFilter(tuples, q, stobject.Intersects)
	if !sameIDs(gotIDs(got), want) {
		t.Errorf("got %d, want %d", len(got), len(want))
	}
	// Empty prune envelope → full scan, same results.
	got2, err := s.Filter(q, geom.EmptyEnvelope(), stobject.Intersects)
	if err != nil {
		t.Fatal(err)
	}
	if !sameIDs(gotIDs(got2), want) {
		t.Error("unpruned filter differs")
	}
}

func TestCacheChaining(t *testing.T) {
	ctx := engine.NewContext(2)
	s, _ := makeDataset(t, ctx, 100, 2, 9)
	if s.Cache() != s {
		t.Error("Cache must return receiver")
	}
}

func TestMetricsElementsScanned(t *testing.T) {
	ctx := engine.NewContext(2)
	s, _ := makeDataset(t, ctx, 300, 3, 10)
	ctx.Metrics().Reset()
	if _, err := s.Intersects(queryPolygon(0, 0, 100, 100)); err != nil {
		t.Fatal(err)
	}
	if got := ctx.Metrics().Snapshot().ElementsScanned; got != 300 {
		t.Errorf("scanned = %d, want 300 (no partitioner, full scan)", got)
	}
}

func ExampleWrap() {
	ctx := engine.NewContext(2)
	// The paper's running example: (id, category, time, wkt) records
	// keyed by STObject.
	events := []Tuple[string]{
		engine.NewPair(stobject.NewWithTime(geom.NewPoint(13.4, 52.5), 100), "concert"),
		engine.NewPair(stobject.NewWithTime(geom.NewPoint(11.6, 48.1), 400), "fair"),
	}
	ds := Wrap(engine.Parallelize(ctx, events, 2))
	qry := stobject.NewWithInterval(
		geom.NewEnvelope(10, 45, 15, 55).ToPolygon(),
		temporal.MustInterval(0, 200))
	hits, _ := ds.ContainedBy(qry)
	for _, h := range hits {
		fmt.Println(h.Value)
	}
	// Output: concert
}
