package core

import (
	"fmt"

	"stark/internal/cluster"
	"stark/internal/geom"
	"stark/internal/partition"
	"stark/internal/stobject"
)

// This file exposes STARK's density-based clustering operator on
// SpatialDataset, delegating to the MR-DBSCAN-style implementation in
// internal/cluster. Clustering operates on the centroids of the
// spatial components, as the paper's point-event use cases do.

// ClusterOptions configures SpatialDataset.Cluster.
type ClusterOptions struct {
	// Eps is the DBSCAN ε radius; must be > 0.
	Eps float64
	// MinPts is the density threshold (counting the point itself).
	MinPts int
	// MaxCost bounds the partition cost when the dataset is not
	// already partitioned by a region-based partitioner and a BSP
	// partitioner must be derived; <= 0 selects the dataset size / 2
	// ... capped sensibly by the implementation.
	MaxCost int
}

// ClusteredRecord pairs an input record with its cluster label
// (cluster.Noise for noise points).
type ClusteredRecord[V any] struct {
	Key     stobject.STObject
	Value   V
	Cluster int
}

// Cluster runs distributed DBSCAN over the dataset and returns one
// ClusteredRecord per input record plus the number of clusters found.
// The dataset's spatial partitioner is reused when it provides
// space-tiling bounds (grid or BSP); otherwise a BSP partitioner is
// derived from the data.
func (s *SpatialDataset[V]) Cluster(opts ClusterOptions) ([]ClusteredRecord[V], int, error) {
	if opts.Eps <= 0 {
		return nil, 0, fmt.Errorf("core: cluster eps must be > 0, got %v", opts.Eps)
	}
	if opts.MinPts < 1 {
		return nil, 0, fmt.Errorf("core: cluster minPts must be >= 1, got %d", opts.MinPts)
	}
	tuples, err := s.Collect()
	if err != nil {
		return nil, 0, err
	}
	if len(tuples) == 0 {
		return nil, 0, nil
	}
	points := make([]geom.Point, len(tuples))
	objs := make([]stobject.STObject, len(tuples))
	for i, kv := range tuples {
		points[i] = kv.Key.Centroid()
		objs[i] = kv.Key
	}

	// Pick a region-based partitioner.
	var regions partition.SpatialPartitioner
	switch p := s.sp.(type) {
	case *partition.Grid:
		regions = p
	case *partition.BSP:
		regions = p
	default:
		maxCost := opts.MaxCost
		if maxCost <= 0 {
			maxCost = len(tuples)/(2*s.Context().Parallelism()) + 1
		}
		bsp, err := partition.NewBSP(partition.BSPConfig{MaxCost: maxCost}, objs)
		if err != nil {
			return nil, 0, err
		}
		regions = bsp
	}
	home := make([]int, len(objs))
	for i, o := range objs {
		home[i] = regions.PartitionFor(o)
	}
	res, err := cluster.DBSCANDistributed(points, cluster.DistributedConfig{
		Eps:     opts.Eps,
		MinPts:  opts.MinPts,
		Regions: regions,
		Home:    home,
		Runner:  s.Context(),
	})
	if err != nil {
		return nil, 0, err
	}
	out := make([]ClusteredRecord[V], len(tuples))
	for i, kv := range tuples {
		out[i] = ClusteredRecord[V]{Key: kv.Key, Value: kv.Value, Cluster: res.Labels[i]}
	}
	return out, res.NumClusters, nil
}
