package core

import (
	"testing"

	"stark/internal/dfs"
	"stark/internal/engine"
	"stark/internal/geom"
	"stark/internal/partition"
	"stark/internal/stobject"
	"stark/internal/temporal"
)

func TestLiveIndexFilterMatchesScan(t *testing.T) {
	ctx := engine.NewContext(4)
	s, tuples := makeDataset(t, ctx, 1500, 6, 20)
	idx, err := s.LiveIndex(5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if idx.Order() != 5 {
		t.Errorf("order = %d", idx.Order())
	}
	q := queryPolygon(15, 25, 55, 65)
	got, err := idx.Intersects(q)
	if err != nil {
		t.Fatal(err)
	}
	want := bruteFilter(tuples, q, stobject.Intersects)
	if !sameIDs(gotIDs(got), want) {
		t.Fatalf("indexed intersects: got %d, want %d", len(got), len(want))
	}
	// All filter variants.
	got, err = idx.ContainedBy(q)
	if err != nil {
		t.Fatal(err)
	}
	if !sameIDs(gotIDs(got), bruteFilter(tuples, q, stobject.ContainedBy)) {
		t.Error("indexed containedBy mismatch")
	}
	got, err = idx.WithinDistance(stobject.MustFromWKT("POINT (50 50)"), 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !sameIDs(gotIDs(got), bruteFilter(tuples, stobject.MustFromWKT("POINT (50 50)"),
		stobject.WithinDistancePredicate(10, nil))) {
		t.Error("indexed withinDistance mismatch")
	}
}

func TestLiveIndexWithRepartitioning(t *testing.T) {
	ctx := engine.NewContext(4)
	s, tuples := makeDataset(t, ctx, 1000, 4, 21)
	g, err := partition.NewGrid(3, keysOf(t, s))
	if err != nil {
		t.Fatal(err)
	}
	// liveIndex(order, partitioner): repartition + index in one step.
	idx, err := s.LiveIndex(5, g)
	if err != nil {
		t.Fatal(err)
	}
	if idx.NumPartitions() != 9 {
		t.Errorf("partitions = %d", idx.NumPartitions())
	}
	if idx.Partitioner() == nil {
		t.Error("partitioner must be carried over")
	}
	q := queryPolygon(10, 10, 30, 30)
	ctx.Metrics().Reset()
	got, err := idx.Intersects(q)
	if err != nil {
		t.Fatal(err)
	}
	want := bruteFilter(tuples, q, stobject.Intersects)
	if !sameIDs(gotIDs(got), want) {
		t.Fatalf("got %d, want %d", len(got), len(want))
	}
	snap := ctx.Metrics().Snapshot()
	if snap.TasksSkipped == 0 {
		t.Error("partitioned indexed filter should prune partitions")
	}
	if snap.IndexProbes == 0 {
		t.Error("index probes not counted")
	}
}

func TestIndexCountAndCollect(t *testing.T) {
	ctx := engine.NewContext(4)
	s, tuples := makeDataset(t, ctx, 500, 4, 22)
	idx, err := s.Index(8, nil)
	if err != nil {
		t.Fatal(err)
	}
	n, err := idx.Count()
	if err != nil || n != 500 {
		t.Fatalf("count = %d err=%v", n, err)
	}
	all, err := idx.Collect()
	if err != nil || len(all) != len(tuples) {
		t.Fatalf("collect = %d err=%v", len(all), err)
	}
	if idx.Context() != ctx {
		t.Error("context mismatch")
	}
}

func TestPersistentIndexRoundTrip(t *testing.T) {
	ctx := engine.NewContext(4)
	s, tuples := makeDataset(t, ctx, 800, 4, 23)
	g, err := partition.NewGrid(2, keysOf(t, s))
	if err != nil {
		t.Fatal(err)
	}
	ps, err := s.PartitionBy(g)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := ps.Index(6, nil)
	if err != nil {
		t.Fatal(err)
	}
	fs := dfs.New(0, 0)
	if err := idx.Persist(fs, "/indexes/events"); err != nil {
		t.Fatal(err)
	}
	if got := len(fs.List("/indexes/events")); got != 4 {
		t.Fatalf("persisted %d files, want 4", got)
	}
	// "Another program": same data, same partitioning, load the index
	// instead of rebuilding.
	loaded, err := LoadIndex(ps, fs, "/indexes/events")
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Order() != 6 {
		t.Errorf("loaded order = %d", loaded.Order())
	}
	q := queryPolygon(30, 30, 70, 70)
	got, err := loaded.Intersects(q)
	if err != nil {
		t.Fatal(err)
	}
	want := bruteFilter(tuples, q, stobject.Intersects)
	if !sameIDs(gotIDs(got), want) {
		t.Fatalf("loaded index: got %d, want %d", len(got), len(want))
	}
}

func TestLoadIndexValidatesLayout(t *testing.T) {
	ctx := engine.NewContext(2)
	s, _ := makeDataset(t, ctx, 100, 2, 24)
	idx, err := s.Index(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	fs := dfs.New(0, 0)
	if err := idx.Persist(fs, "/idx"); err != nil {
		t.Fatal(err)
	}
	// Different dataset (different sizes) must be rejected.
	other, _ := makeDataset(t, ctx, 60, 2, 25)
	if _, err := LoadIndex(other, fs, "/idx"); err == nil {
		t.Error("mismatched layout must fail")
	}
	// Missing files must be reported.
	if _, err := LoadIndex(s, fs, "/nothing"); err == nil {
		t.Error("missing index must fail")
	}
}

func TestIndexedTemporalRefinement(t *testing.T) {
	// The R-tree only stores spatial envelopes; the temporal
	// predicate must be applied during candidate refinement.
	ctx := engine.NewContext(2)
	tuples := []Tuple[int]{
		engine.NewPair(stobject.NewWithTime(geom.NewPoint(5, 5), 100), 1),
		engine.NewPair(stobject.NewWithTime(geom.NewPoint(5, 5), 900), 2),
	}
	s := Wrap(engine.Parallelize(ctx, tuples, 1))
	idx, err := s.LiveIndex(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	q := stobject.NewWithInterval(
		geom.NewEnvelope(0, 0, 10, 10).ToPolygon(),
		temporal.MustInterval(0, 200))
	got, err := idx.ContainedBy(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Value != 1 {
		t.Errorf("got %v, want only record 1", gotIDs(got))
	}
}

func TestIndexReusedAcrossQueries(t *testing.T) {
	// Persistent mode: the tree is built once; further queries only
	// probe. We can't observe build counts directly, but the cached
	// dataset must return identical results across repeated queries.
	ctx := engine.NewContext(2)
	s, tuples := makeDataset(t, ctx, 400, 4, 26)
	idx, err := s.Index(5, nil)
	if err != nil {
		t.Fatal(err)
	}
	q := queryPolygon(10, 10, 90, 50)
	want := bruteFilter(tuples, q, stobject.Intersects)
	for i := 0; i < 3; i++ {
		got, err := idx.Intersects(q)
		if err != nil {
			t.Fatal(err)
		}
		if !sameIDs(gotIDs(got), want) {
			t.Fatalf("query %d mismatch", i)
		}
	}
}
