package core

import (
	"context"
	"errors"
	"sort"
	"testing"

	"stark/internal/engine"
	"stark/internal/geom"
	"stark/internal/partition"
	"stark/internal/stobject"
)

// bruteJoin returns the sorted (leftID, rightID) pairs satisfying
// pred.
func bruteJoin(l, r []Tuple[int], pred stobject.Predicate) [][2]int {
	var out [][2]int
	for _, lk := range l {
		for _, rk := range r {
			if pred(lk.Key, rk.Key) {
				out = append(out, [2]int{lk.Value, rk.Value})
			}
		}
	}
	sortPairs(out)
	return out
}

func sortPairs(p [][2]int) {
	sort.Slice(p, func(i, j int) bool {
		if p[i][0] != p[j][0] {
			return p[i][0] < p[j][0]
		}
		return p[i][1] < p[j][1]
	})
}

func joinedPairs(res []JoinedPair[int, int]) [][2]int {
	out := make([][2]int, len(res))
	for i, jp := range res {
		out[i] = [2]int{jp.LeftVal, jp.RightVal}
	}
	sortPairs(out)
	return out
}

func samePairs(a, b [][2]int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestWithinDistanceJoinUnpartitioned(t *testing.T) {
	ctx := engine.NewContext(4)
	l, lt := makeDataset(t, ctx, 300, 3, 30)
	r, rt := makeDataset(t, ctx, 200, 2, 31)
	pred := stobject.WithinDistancePredicate(3, nil)
	got, err := Join(l, r, JoinOptions{Predicate: pred, ProbeExpansion: 3, IndexOrder: -1})
	if err != nil {
		t.Fatal(err)
	}
	want := bruteJoin(lt, rt, pred)
	if !samePairs(joinedPairs(got), want) {
		t.Fatalf("got %d pairs, want %d", len(got), len(want))
	}
	if len(want) == 0 {
		t.Error("degenerate test")
	}
}

func TestJoinNestedLoopEqualsIndexed(t *testing.T) {
	ctx := engine.NewContext(4)
	l, _ := makeDataset(t, ctx, 250, 2, 32)
	r, _ := makeDataset(t, ctx, 250, 3, 33)
	pred := stobject.WithinDistancePredicate(2, nil)
	indexed, err := Join(l, r, JoinOptions{Predicate: pred, ProbeExpansion: 2, IndexOrder: -1})
	if err != nil {
		t.Fatal(err)
	}
	nested, err := Join(l, r, JoinOptions{Predicate: pred, ProbeExpansion: 2, IndexOrder: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !samePairs(joinedPairs(indexed), joinedPairs(nested)) {
		t.Errorf("indexed (%d) and nested-loop (%d) joins disagree", len(indexed), len(nested))
	}
}

func TestJoinWithPartitionPruning(t *testing.T) {
	ctx := engine.NewContext(4)
	l, lt := makeDataset(t, ctx, 600, 4, 34)
	r, rt := makeDataset(t, ctx, 400, 4, 35)
	gl, err := partition.NewGrid(3, keysOf(t, l))
	if err != nil {
		t.Fatal(err)
	}
	gr, err := partition.NewGrid(3, keysOf(t, r))
	if err != nil {
		t.Fatal(err)
	}
	pl, err := l.PartitionBy(gl)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := r.PartitionBy(gr)
	if err != nil {
		t.Fatal(err)
	}
	pred := stobject.WithinDistancePredicate(2, nil)
	ctx.Metrics().Reset()
	var rep JoinReport
	got, err := Join(pl, pr, JoinOptions{Predicate: pred, ProbeExpansion: 2, IndexOrder: -1,
		Strategy: JoinPairs, Report: &rep})
	if err != nil {
		t.Fatal(err)
	}
	want := bruteJoin(lt, rt, pred)
	if !samePairs(joinedPairs(got), want) {
		t.Fatalf("pruned join: got %d, want %d", len(got), len(want))
	}
	if ctx.Metrics().Snapshot().TasksSkipped == 0 {
		t.Error("expected pruned partition pairs")
	}
	if rep.PairsPruned == 0 || rep.Tasks+rep.PairsPruned != rep.TotalPairs {
		t.Errorf("report: tasks=%d pruned=%d total=%d", rep.Tasks, rep.PairsPruned, rep.TotalPairs)
	}
	// DisablePruning gives the same result with more work (and pins
	// JoinAuto to the pairs strategy, so ablations measure the full
	// enumeration).
	ctx.Metrics().Reset()
	got2, err := Join(pl, pr, JoinOptions{Predicate: pred, ProbeExpansion: 2, IndexOrder: -1, DisablePruning: true})
	if err != nil {
		t.Fatal(err)
	}
	if !samePairs(joinedPairs(got2), want) {
		t.Error("unpruned join differs")
	}
	if ctx.Metrics().Snapshot().TasksSkipped != 0 {
		t.Error("pruning should be disabled")
	}
}

func TestSelfJoinIncludesIdentity(t *testing.T) {
	ctx := engine.NewContext(2)
	s, tuples := makeDataset(t, ctx, 100, 2, 36)
	got, err := SelfJoin(s, JoinOptions{Predicate: stobject.Intersects, IndexOrder: -1})
	if err != nil {
		t.Fatal(err)
	}
	// With distinct uniform points, intersects-self-join ≈ identity
	// pairs only.
	if len(got) < len(tuples) {
		t.Errorf("self join returned %d < n=%d", len(got), len(tuples))
	}
	seen := make(map[int]bool)
	for _, jp := range got {
		if jp.LeftVal == jp.RightVal {
			seen[jp.LeftVal] = true
		}
	}
	if len(seen) != len(tuples) {
		t.Errorf("identity pairs: %d of %d", len(seen), len(tuples))
	}
}

func TestSelfJoinWithinDistancePartitioned(t *testing.T) {
	// The Figure 4 workload at test scale: self join with distance
	// predicate, partitioned vs not, results must agree.
	ctx := engine.NewContext(4)
	s, tuples := makeDataset(t, ctx, 500, 4, 37)
	pred := stobject.WithinDistancePredicate(2, nil)
	plain, err := SelfJoin(s, JoinOptions{Predicate: pred, ProbeExpansion: 2, IndexOrder: -1})
	if err != nil {
		t.Fatal(err)
	}
	bsp, err := partition.NewBSP(partition.BSPConfig{MaxCost: 100}, keysOf(t, s))
	if err != nil {
		t.Fatal(err)
	}
	ps, err := s.PartitionBy(bsp)
	if err != nil {
		t.Fatal(err)
	}
	parted, err := SelfJoin(ps, JoinOptions{Predicate: pred, ProbeExpansion: 2, IndexOrder: -1})
	if err != nil {
		t.Fatal(err)
	}
	if !samePairs(joinedPairs(plain), joinedPairs(parted)) {
		t.Errorf("partitioned self join (%d) differs from plain (%d)", len(parted), len(plain))
	}
	want := bruteJoin(tuples, tuples, pred)
	if !samePairs(joinedPairs(plain), want) {
		t.Errorf("self join vs brute force: %d vs %d", len(plain), len(want))
	}
}

func TestJoinContainsPredicate(t *testing.T) {
	// Regions (polygons) containing points.
	ctx := engine.NewContext(2)
	regions := []Tuple[int]{
		engine.NewPair(stobject.MustFromWKT("POLYGON ((0 0, 50 0, 50 50, 0 50, 0 0))"), 100),
		engine.NewPair(stobject.MustFromWKT("POLYGON ((50 50, 100 50, 100 100, 50 100, 50 50))"), 200),
	}
	l := Wrap(engine.Parallelize(ctx, regions, 2))
	r, rt := makeDataset(t, ctx, 200, 2, 38)
	got, err := Join(l, r, JoinOptions{Predicate: stobject.Contains, IndexOrder: -1})
	if err != nil {
		t.Fatal(err)
	}
	// Every returned pair must satisfy Contains; counts must match
	// brute force.
	count := 0
	for _, rk := range rt {
		for _, lk := range regions {
			if lk.Key.Contains(rk.Key) {
				count++
			}
		}
	}
	if len(got) != count {
		t.Errorf("got %d pairs, want %d", len(got), count)
	}
	for _, jp := range got {
		if !jp.LeftKey.Contains(jp.RightKey) {
			t.Fatal("join returned non-matching pair")
		}
	}
}

func TestJoinCount(t *testing.T) {
	ctx := engine.NewContext(2)
	l, _ := makeDataset(t, ctx, 100, 2, 39)
	n, err := JoinCount(l, l, JoinOptions{Predicate: stobject.Intersects, IndexOrder: -1})
	if err != nil {
		t.Fatal(err)
	}
	if n < 100 {
		t.Errorf("count = %d", n)
	}
}

func TestJoinEmptySides(t *testing.T) {
	ctx := engine.NewContext(2)
	empty := Wrap(engine.Parallelize(ctx, []Tuple[int]{}, 2))
	l, _ := makeDataset(t, ctx, 50, 2, 40)
	got, err := Join(l, empty, JoinOptions{IndexOrder: -1})
	if err != nil || len(got) != 0 {
		t.Errorf("join with empty right: %d err=%v", len(got), err)
	}
	got, err = Join(empty, l, JoinOptions{IndexOrder: -1})
	if err != nil || len(got) != 0 {
		t.Errorf("join with empty left: %d err=%v", len(got), err)
	}
}

func TestJoinDefaultPredicateIsIntersects(t *testing.T) {
	ctx := engine.NewContext(2)
	a := []Tuple[int]{engine.NewPair(stobject.MustFromWKT("POINT (1 1)"), 1)}
	b := []Tuple[int]{engine.NewPair(stobject.MustFromWKT("POINT (1 1)"), 2)}
	l := Wrap(engine.Parallelize(ctx, a, 1))
	r := Wrap(engine.Parallelize(ctx, b, 1))
	got, err := Join(l, r, JoinOptions{IndexOrder: -1})
	if err != nil || len(got) != 1 {
		t.Errorf("got %d err=%v", len(got), err)
	}
}

func TestKNNScanMatchesBruteForce(t *testing.T) {
	ctx := engine.NewContext(4)
	s, tuples := makeDataset(t, ctx, 1000, 4, 41)
	q := stobject.MustFromWKT("POINT (50 50)")
	for _, k := range []int{1, 5, 23} {
		got, err := s.KNN(q, k, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != k {
			t.Fatalf("k=%d: returned %d", k, len(got))
		}
		// Brute force distances.
		dists := make([]float64, len(tuples))
		for i, kv := range tuples {
			dists[i] = q.Distance(kv.Key, nil)
		}
		sort.Float64s(dists)
		for i, nb := range got {
			if nb.Distance != dists[i] {
				t.Fatalf("k=%d neighbor %d: dist %v, want %v", k, i, nb.Distance, dists[i])
			}
		}
	}
	if _, err := s.KNN(q, 0, nil); err == nil {
		t.Error("k=0 must fail")
	}
}

func TestKNNPartitionedPrunes(t *testing.T) {
	ctx := engine.NewContext(4)
	s, tuples := makeDataset(t, ctx, 3000, 4, 42)
	g, err := partition.NewGrid(6, keysOf(t, s))
	if err != nil {
		t.Fatal(err)
	}
	ps, err := s.PartitionBy(g)
	if err != nil {
		t.Fatal(err)
	}
	q := stobject.MustFromWKT("POINT (20 20)")
	ctx.Metrics().Reset()
	got, err := ps.KNN(q, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	dists := make([]float64, len(tuples))
	for i, kv := range tuples {
		dists[i] = q.Distance(kv.Key, nil)
	}
	sort.Float64s(dists)
	for i, nb := range got {
		if nb.Distance != dists[i] {
			t.Fatalf("neighbor %d: %v vs %v", i, nb.Distance, dists[i])
		}
	}
	snap := ctx.Metrics().Snapshot()
	if snap.TasksSkipped == 0 {
		t.Error("partitioned kNN should prune far partitions")
	}
	if snap.ElementsScanned >= 3000 {
		t.Errorf("scanned %d, want < 3000", snap.ElementsScanned)
	}
}

func TestKNNIndexedMatchesScan(t *testing.T) {
	ctx := engine.NewContext(4)
	s, _ := makeDataset(t, ctx, 1000, 4, 43)
	q := stobject.MustFromWKT("POINT (70 30)")
	scan, err := s.KNN(q, 15, nil)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := s.LiveIndex(6, nil)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := idx.KNN(q, 15, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(fast) != len(scan) {
		t.Fatalf("lengths: %d vs %d", len(fast), len(scan))
	}
	for i := range fast {
		if fast[i].Distance != scan[i].Distance {
			t.Fatalf("neighbor %d: %v vs %v", i, fast[i].Distance, scan[i].Distance)
		}
	}
	if _, err := idx.KNN(q, 0, nil); err == nil {
		t.Error("k=0 must fail")
	}
}

func TestKNNCustomDistance(t *testing.T) {
	ctx := engine.NewContext(2)
	tuples := []Tuple[int]{
		engine.NewPair(stobject.MustFromWKT("POINT (3 4)"), 1), // L2 5, L1 7
		engine.NewPair(stobject.MustFromWKT("POINT (0 6)"), 2), // L2 6, L1 6
	}
	s := Wrap(engine.Parallelize(ctx, tuples, 1))
	q := stobject.MustFromWKT("POINT (0 0)")
	got, err := s.KNN(q, 1, geom.Manhattan)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Value != 2 {
		t.Errorf("manhattan nearest = %d, want 2", got[0].Value)
	}
	got, err = s.KNN(q, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Value != 1 {
		t.Errorf("euclidean nearest = %d, want 1", got[0].Value)
	}
	// Indexed with custom metric falls back to scan but stays correct.
	idx, err := s.LiveIndex(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	gotIdx, err := idx.KNN(q, 1, geom.Manhattan)
	if err != nil {
		t.Fatal(err)
	}
	if gotIdx[0].Value != 2 {
		t.Errorf("indexed manhattan nearest = %d, want 2", gotIdx[0].Value)
	}
}

func TestKNNSmallerThanK(t *testing.T) {
	ctx := engine.NewContext(2)
	s, _ := makeDataset(t, ctx, 5, 2, 44)
	got, err := s.KNN(stobject.MustFromWKT("POINT (0 0)"), 50, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Errorf("len = %d, want 5", len(got))
	}
}

func TestKNNContextCancelled(t *testing.T) {
	ctx := engine.NewContext(2)
	s, _ := makeDataset(t, ctx, 2000, 8, 45)
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.KNNContext(cctx, stobject.MustFromWKT("POINT (50 50)"), 5, nil); !errors.Is(err, context.Canceled) {
		t.Errorf("scan kNN with cancelled ctx: err = %v", err)
	}
	idx, err := s.LiveIndex(6, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := idx.KNNContext(cctx, stobject.MustFromWKT("POINT (50 50)"), 5, nil); !errors.Is(err, context.Canceled) {
		t.Errorf("indexed kNN with cancelled ctx: err = %v", err)
	}
}
