package core

import (
	"fmt"

	"stark/internal/attr"
	"stark/internal/colstore"
	"stark/internal/engine"
)

// This file wires the attr package's typed predicates and postings
// indexes into the scan engine. The attribute sidecar is the third
// memoised aux member (after the statistics cache and the columnar
// sidecar): per-partition sorted postings indexes over the payload
// fields of the registered schema, built lazily per field on first
// use and bound to the dataset instance — any transformation returns
// a fresh instance, so stale postings can never be served.
//
// Two access paths execute here:
//
//   - AttrFilter: attribute-first. The most selective attribute
//     predicate's postings enumerate candidate rows directly, and the
//     remaining predicates (attribute and spatial) refine them — the
//     analogue of the R-tree probe with the roles of spatial and
//     attribute predicates swapped.
//   - ColumnarFilterIntersect: candidate-set intersection. The coarse
//     spatial kernels sweep the columnar sidecar into a survivor
//     bitset, each attribute predicate's postings are materialised as
//     a bitset over the same row order, and the conjunction is a
//     word-wise AND; only rows surviving every set are refined with
//     the exact spatial predicates (attribute postings are exact, so
//     they need no refinement).
//
// For the intersection to be sound the postings and the kernel bitset
// must index the same row order, so when the columnar sidecar exists
// the attribute indexes are built over its (possibly Hilbert-sorted)
// row slices and marked aligned; a sidecar built later invalidates
// unaligned postings, which silently rebuild on next use.

// attrSidecar holds the lazily built attribute postings: the row
// slices the postings index into (shared with the columnar sidecar
// when one exists) plus one per-partition index slice per field.
type attrSidecar[V any] struct {
	rows [][]Tuple[V]
	// aligned marks rows as the columnar sidecar's row order, making
	// postings bitsets AND-compatible with kernel survivor bitsets.
	aligned bool
	idx     map[string][]*attr.Index
}

// ensureAttrIndex returns the per-partition postings for the given
// fields (building missing ones) plus the row slices they index.
func (s *SpatialDataset[V]) ensureAttrIndex(fields []string) (map[string][]*attr.Index, [][]Tuple[V], error) {
	s.aux.colMu.Lock()
	col := s.aux.col
	s.aux.colMu.Unlock()

	s.aux.attrMu.Lock()
	defer s.aux.attrMu.Unlock()
	sch := s.aux.schema
	if sch == nil {
		return nil, nil, fmt.Errorf("core: no attribute schema registered")
	}
	side := s.aux.attrSide
	if side != nil && !side.aligned && col != nil {
		// A columnar sidecar appeared after the postings were built
		// over a plain collect: rebuild over the kernel row order so
		// intersection stays available.
		side = nil
	}
	if side == nil {
		side = &attrSidecar[V]{idx: make(map[string][]*attr.Index)}
		if col != nil {
			side.rows = col.rows
			side.aligned = true
		} else {
			rows, err := s.collectAttrRows()
			if err != nil {
				return nil, nil, err
			}
			side.rows = rows
		}
		s.aux.attrSide = side
	}
	metrics := s.Context().Metrics()
	for _, name := range fields {
		if _, ok := side.idx[name]; ok {
			continue
		}
		fld, ok := sch.Field(name)
		if !ok {
			return nil, nil, fmt.Errorf("core: no field %q in attribute schema", name)
		}
		ixs := make([]*attr.Index, len(side.rows))
		tasks := make([]int, len(side.rows))
		for i := range tasks {
			tasks[i] = i
		}
		err := s.Context().RunJob(tasks, func(p int) error {
			rows := side.rows[p]
			column := make([]attr.Value, len(rows))
			for i, kv := range rows {
				column[i] = fld.Get(kv.Value)
			}
			ixs[p] = attr.BuildIndex(fld.Name, fld.Kind, column)
			metrics.StatsRecords.Add(int64(len(column)))
			return nil
		})
		if err != nil {
			return nil, nil, err
		}
		side.idx[name] = ixs
	}
	return side.idx, side.rows, nil
}

// collectAttrRows materialises every partition's rows for postings to
// index — the fallback row order when no columnar sidecar exists. Like
// the other auxiliary passes it charges StatsRecords, not scan
// counters.
func (s *SpatialDataset[V]) collectAttrRows() ([][]Tuple[V], error) {
	n := s.ds.NumPartitions()
	rows := make([][]Tuple[V], n)
	metrics := s.Context().Metrics()
	tasks := make([]int, n)
	for i := range tasks {
		tasks[i] = i
	}
	err := s.Context().RunJob(tasks, func(p int) error {
		var out []Tuple[V]
		err := s.ds.EachPartition(p, func(kv Tuple[V]) bool {
			out = append(out, kv)
			return true
		})
		rows[p] = out
		metrics.StatsRecords.Add(int64(len(out)))
		return err
	})
	return rows, err
}

// HasAttrIndex reports whether postings for the field are already
// built — the planner's build-cost discriminator.
func (s *SpatialDataset[V]) HasAttrIndex(field string) bool {
	s.aux.attrMu.Lock()
	defer s.aux.attrMu.Unlock()
	if s.aux.attrSide == nil {
		return false
	}
	_, ok := s.aux.attrSide.idx[field]
	return ok
}

// BuildAttrIndex eagerly builds the per-partition postings for the
// named fields (all schema fields when none are given). The postings
// build lazily on first probe anyway; building them up front removes
// the build cost from the planner's attribute-index pricing, so
// repeated selective queries pick the postings probe instead of
// re-scanning inline — the knob a long-lived service turns once per
// hot field.
func (s *SpatialDataset[V]) BuildAttrIndex(fields ...string) error {
	if len(fields) == 0 {
		s.aux.attrMu.Lock()
		sch := s.aux.schema
		s.aux.attrMu.Unlock()
		if sch == nil {
			return fmt.Errorf("core: no attribute schema registered")
		}
		fields = sch.Names()
	}
	_, _, err := s.ensureAttrIndex(fields)
	return err
}

// AttrFilter builds the attribute-first scanning stage: per partition,
// the postings of first enumerate candidate rows, and keep (the fused
// remaining-predicate check — other attribute predicates plus the
// exact spatial ones) refines them. Rows are yielded in postings
// (value, then row) order, not partition row order. Metrics mirror the
// R-tree probe: one IndexProbes per partition, candidates charged to
// CandidatesRefined.
func (s *SpatialDataset[V]) AttrFilter(first attr.Pred, keep func(Tuple[V]) bool) (*engine.Dataset[Tuple[V]], error) {
	idxs, rows, err := s.ensureAttrIndex([]string{first.Field})
	if err != nil {
		return nil, err
	}
	ix := idxs[first.Field]
	rec := s.recorder()
	out := engine.NewStream(s.Context(), s.ds.Name()+".attrScan", len(rows),
		func(p int, yield func(Tuple[V]) bool) error {
			part := rows[p]
			if len(part) == 0 {
				return nil
			}
			rec.IndexProbes(1)
			var cands int64
			stop := false
			ix[p].Postings(first, func(row int32) {
				if stop {
					return
				}
				cands++
				kv := part[row]
				if !keep(kv) {
					return
				}
				if !yield(kv) {
					stop = true
				}
			})
			rec.CandidatesRefined(cands)
			return nil
		})
	return out.WithRecorder(s.rec), nil
}

// ColumnarFilterIntersect builds the candidate-set-intersection stage:
// the spatial kernel sweep and the attribute postings each produce a
// bitset over the partition's kernel row order, the bitsets are ANDed,
// and only rows surviving the conjunction are refined with the exact
// spatial predicates. Requires the columnar sidecar and postings built
// over its row order.
func (s *SpatialDataset[V]) ColumnarFilterIntersect(preds []KernelPred, attrPreds []attr.Pred) (*engine.Dataset[Tuple[V]], error) {
	fields := make([]string, 0, len(attrPreds))
	seen := make(map[string]bool, len(attrPreds))
	for _, ap := range attrPreds {
		if !seen[ap.Field] {
			seen[ap.Field] = true
			fields = append(fields, ap.Field)
		}
	}
	idxs, _, err := s.ensureAttrIndex(fields)
	if err != nil {
		return nil, err
	}
	s.aux.colMu.Lock()
	side := s.aux.col
	s.aux.colMu.Unlock()
	if side == nil {
		return nil, fmt.Errorf("core: columnar sidecar not built")
	}
	s.aux.attrMu.Lock()
	aligned := s.aux.attrSide != nil && s.aux.attrSide.aligned
	s.aux.attrMu.Unlock()
	if !aligned {
		return nil, fmt.Errorf("core: attribute postings not aligned with columnar row order")
	}
	rec := s.recorder()
	out := engine.NewStream(s.Context(), s.ds.Name()+".colAttrScan", len(side.parts),
		func(p int, yield func(Tuple[V]) bool) error {
			cols := side.parts[p]
			rows := side.rows[p]
			n := cols.Len()
			if n == 0 {
				return nil
			}
			bs := colstore.GetBitset(n)
			var batches int64
			for _, kp := range preds {
				batches += int64(colstore.Filter(cols, kp.Query, bs))
			}
			ab := colstore.GetBitset(n)
			for _, ap := range attrPreds {
				ab.ClearAll(n)
				idxs[ap.Field][p].Postings(ap, func(row int32) { ab.Set(int(row)) })
				rec.IndexProbes(1)
				bs.And(ab)
			}
			colstore.PutBitset(ab)
			survivors := int64(bs.Count())
			bs.Visit(func(row int) bool {
				kv := rows[row]
				// Attribute postings are exact; only the coarse spatial
				// kernels need exact refinement.
				for i := range preds {
					if !preds[i].Pred(kv.Key, preds[i].Q) {
						return true
					}
				}
				return yield(kv)
			})
			colstore.PutBitset(bs)
			rec.ElementsScanned(int64(n))
			rec.KernelBatches(batches)
			rec.KernelSurvivors(survivors)
			rec.CandidatesRefined(survivors)
			return nil
		})
	return out.WithRecorder(s.rec), nil
}
