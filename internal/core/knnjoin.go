package core

import (
	"container/heap"
	"fmt"
	"sort"

	"stark/internal/geom"
	"stark/internal/index"
)

// This file implements the k nearest neighbour join: for every record
// of the left dataset, the k nearest records of the right dataset.
// The right side is materialised once with one R-tree per partition;
// each left record then runs a bounded best-first search that visits
// right partitions in order of extent distance and stops as soon as
// the k-th neighbour is closer than the next partition's extent —
// the same pruning rule as the single-query kNN operator, amortised
// over the whole left side.

// KNNJoinRow is one result row: a left record, one of its neighbours,
// and their distance. Each left record yields up to k rows, ordered
// by ascending distance.
type KNNJoinRow[V, W any] struct {
	LeftKey  V
	RightKey W
	Distance float64
}

// KNNJoin computes, for every left record, its k nearest right
// records by planar distance between the spatial keys. Results are
// grouped per left record (k consecutive rows each) but the order of
// left records across partitions is unspecified.
func KNNJoin[V, W any](l *SpatialDataset[V], r *SpatialDataset[W], k int) ([]KNNJoinRow[V, W], error) {
	if k <= 0 {
		return nil, fmt.Errorf("core: kNN join needs k >= 1, got %d", k)
	}
	// Materialise the right side once: per-partition records + trees
	// + extents.
	type rightPart struct {
		items []Tuple[W]
		tree  *index.RTree
		ext   geom.Envelope
	}
	nr := r.ds.NumPartitions()
	rights := make([]rightPart, nr)
	rec := l.recorder()
	err := r.Context().RunJobRecorder(nil, rec, allParts(nr), func(p int) error {
		items, err := r.ds.ComputePartition(p)
		if err != nil {
			return err
		}
		tree := index.New(index.DefaultOrder)
		ext := geom.EmptyEnvelope()
		for i, kv := range items {
			env := kv.Key.Envelope()
			_ = tree.Insert(env, int32(i))
			ext = ext.ExpandToInclude(env)
		}
		tree.Build()
		rights[p] = rightPart{items: items, tree: tree, ext: ext}
		return nil
	})
	if err != nil {
		return nil, err
	}

	nl := l.ds.NumPartitions()
	results := make([][]KNNJoinRow[V, W], nl)
	err = l.Context().RunJobRecorder(nil, rec, allParts(nl), func(p int) error {
		left, err := l.ds.ComputePartition(p)
		if err != nil {
			return err
		}
		var out []KNNJoinRow[V, W]
		// Partition visit order is recomputed per record; for records
		// in the same area the sort is nearly free (small nr).
		type pd struct {
			idx  int
			dist float64
		}
		order := make([]pd, 0, nr)
		for _, lkv := range left {
			c := lkv.Key.Centroid()
			order = order[:0]
			for i := 0; i < nr; i++ {
				if rights[i].ext.IsEmpty() {
					continue
				}
				order = append(order, pd{idx: i, dist: rights[i].ext.DistanceToPoint(c.X, c.Y)})
			}
			sort.Slice(order, func(i, j int) bool { return order[i].dist < order[j].dist })

			h := &maxHeap[W]{}
			heap.Init(h)
			for _, cand := range order {
				if h.Len() == k && cand.dist > (*h)[0].Distance {
					rec.TasksSkipped(1)
					continue
				}
				rp := rights[cand.idx]
				rec.IndexProbes(1)
				exact := func(id int32) float64 { return lkv.Key.Distance(rp.items[id].Key, nil) }
				for _, nb := range rp.tree.KNN(c.X, c.Y, k, exact) {
					kv := rp.items[nb.ID]
					if h.Len() < k {
						heap.Push(h, NeighborResult[W]{Key: kv.Key, Value: kv.Value, Distance: nb.Distance})
					} else if nb.Distance < (*h)[0].Distance {
						(*h)[0] = NeighborResult[W]{Key: kv.Key, Value: kv.Value, Distance: nb.Distance}
						heap.Fix(h, 0)
					}
				}
			}
			// Emit ascending.
			tail := len(out)
			for h.Len() > 0 {
				nb := heap.Pop(h).(NeighborResult[W])
				out = append(out, KNNJoinRow[V, W]{LeftKey: lkv.Value, RightKey: nb.Value, Distance: nb.Distance})
			}
			reverseRows(out[tail:])
		}
		results[p] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	var all []KNNJoinRow[V, W]
	for _, rws := range results {
		all = append(all, rws...)
	}
	return all, nil
}

func reverseRows[V, W any](rows []KNNJoinRow[V, W]) {
	for i, j := 0, len(rows)-1; i < j; i, j = i+1, j-1 {
		rows[i], rows[j] = rows[j], rows[i]
	}
}

func allParts(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
