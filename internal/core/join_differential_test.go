package core

// Differential property tests for the join engine: every physical
// strategy (pairs, broadcast, copartition — indexed and nested-loop)
// must return exactly the result of the brute-force nested loop,
// element for element, over randomized datasets in every layout
// combination (unpartitioned / Grid / BSP on either side) under
// Intersects, Contains and WithinDistance. Plus a -race regression
// test for the shared right-partition tree cache.

import (
	"math/rand"
	"testing"

	"stark/internal/engine"
	"stark/internal/geom"
	"stark/internal/partition"
	"stark/internal/stobject"
)

// makeBoxDataset builds n random small boxes (axis-aligned
// rectangles), so Contains joins are non-degenerate.
func makeBoxDataset(t testing.TB, ctx *engine.Context, n, numPart int, seed int64) (*SpatialDataset[int], []Tuple[int]) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	tuples := make([]Tuple[int], n)
	for i := range tuples {
		x, y := rng.Float64()*90, rng.Float64()*90
		w, h := 2+rng.Float64()*8, 2+rng.Float64()*8
		env := geom.Envelope{MinX: x, MinY: y, MaxX: x + w, MaxY: y + h}
		tuples[i] = engine.NewPair(stobject.New(env.ToPolygon()), i)
	}
	return Wrap(engine.Parallelize(ctx, tuples, numPart)), tuples
}

// layoutName → a function re-partitioning a dataset into that layout.
var joinLayouts = []struct {
	name  string
	apply func(t *testing.T, s *SpatialDataset[int]) *SpatialDataset[int]
}{
	{"plain", func(t *testing.T, s *SpatialDataset[int]) *SpatialDataset[int] { return s }},
	{"grid", func(t *testing.T, s *SpatialDataset[int]) *SpatialDataset[int] {
		g, err := partition.NewGrid(3, keysOf(t, s))
		if err != nil {
			t.Fatal(err)
		}
		ps, err := s.PartitionBy(g)
		if err != nil {
			t.Fatal(err)
		}
		return ps
	}},
	{"bsp", func(t *testing.T, s *SpatialDataset[int]) *SpatialDataset[int] {
		b, err := partition.NewBSP(partition.BSPConfig{MaxCost: 60}, keysOf(t, s))
		if err != nil {
			t.Fatal(err)
		}
		ps, err := s.PartitionBy(b)
		if err != nil {
			t.Fatal(err)
		}
		return ps
	}},
}

func TestJoinStrategiesDifferential(t *testing.T) {
	ctx := engine.NewContext(4)
	preds := []struct {
		name   string
		pred   stobject.Predicate
		expand float64
		boxes  bool // left side uses boxes so the predicate can hold
	}{
		{"intersects", stobject.Intersects, 0, true},
		{"contains", stobject.Contains, 0, true},
		{"withindistance", stobject.WithinDistancePredicate(4, nil), 4, false},
	}
	strategies := []struct {
		name string
		opts JoinOptions
	}{
		{"pairs", JoinOptions{Strategy: JoinPairs, IndexOrder: -1}},
		{"broadcast", JoinOptions{Strategy: JoinBroadcast, IndexOrder: -1}},
		{"copartition", JoinOptions{Strategy: JoinCoPartition, IndexOrder: -1}},
		{"nestedloop", JoinOptions{Strategy: JoinPairs, IndexOrder: 0}},
		{"auto", JoinOptions{Strategy: JoinAuto, IndexOrder: -1}},
	}
	seed := int64(100)
	for _, pc := range preds {
		for _, ll := range joinLayouts {
			for _, rl := range joinLayouts {
				seed += 2
				name := pc.name + "/" + ll.name + "×" + rl.name
				t.Run(name, func(t *testing.T) {
					var l *SpatialDataset[int]
					var lt []Tuple[int]
					if pc.boxes {
						l, lt = makeBoxDataset(t, ctx, 220, 3, seed)
					} else {
						l, lt = makeDataset(t, ctx, 220, 3, seed)
					}
					r, rt := makeDataset(t, ctx, 150, 4, seed+1)
					l = ll.apply(t, l)
					r = rl.apply(t, r)
					want := bruteJoin(lt, rt, pc.pred)
					for _, sc := range strategies {
						opts := sc.opts
						opts.Predicate = pc.pred
						opts.ProbeExpansion = pc.expand
						var rep JoinReport
						opts.Report = &rep
						got, err := Join(l, r, opts)
						if err != nil {
							t.Fatalf("%s: %v", sc.name, err)
						}
						if !samePairs(joinedPairs(got), want) {
							t.Errorf("%s: got %d pairs, want %d", sc.name, len(got), len(want))
						}
						// A forced copartition with no partitioner on
						// either side must fall back to pairs; any
						// other forced strategy must run as forced.
						switch {
						case sc.opts.Strategy == JoinCoPartition &&
							ll.name == "plain" && rl.name == "plain":
							if rep.Strategy != JoinPairs {
								t.Errorf("copartition fallback ran %v", rep.Strategy)
							}
						case sc.opts.Strategy != JoinAuto:
							if rep.Strategy != sc.opts.Strategy {
								t.Errorf("%s: ran %v", sc.name, rep.Strategy)
							}
						default:
							if rep.Strategy == JoinAuto || rep.Decision == nil {
								t.Errorf("auto: strategy=%v decision=%v", rep.Strategy, rep.Decision)
							}
						}
					}
				})
			}
		}
	}
}

// TestJoinTreeCacheBuildsOncePerPartition is the -race regression
// test for the shared right-partition slot cache: a pairs join whose
// left partitions all probe the same right partitions must build
// each right tree exactly once, no matter how many tasks miss
// concurrently.
func TestJoinTreeCacheBuildsOncePerPartition(t *testing.T) {
	ctx := engine.NewContext(8)
	// Many left partitions (tasks), few right partitions: every right
	// partition is shared by ~16 concurrent tasks.
	l, _ := makeDataset(t, ctx, 2000, 16, 77)
	r, _ := makeDataset(t, ctx, 400, 2, 78)
	var rep JoinReport
	_, err := Join(l, r, JoinOptions{
		Predicate: stobject.WithinDistancePredicate(3, nil), ProbeExpansion: 3,
		IndexOrder: -1, Strategy: JoinPairs, Report: &rep,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tasks != 32 {
		t.Fatalf("tasks = %d, want 32", rep.Tasks)
	}
	if rep.TreesBuilt != 2 {
		t.Errorf("trees built = %d, want exactly one per right partition (2)", rep.TreesBuilt)
	}
}

// TestSelfJoinCountTreeCacheRace exercises the same slot cache on
// the Figure 4 counting path under -race.
func TestSelfJoinCountTreeCacheRace(t *testing.T) {
	ctx := engine.NewContext(8)
	s, tuples := makeDataset(t, ctx, 800, 8, 79)
	n, err := SelfJoinWithinDistanceCount(s, 2, -1)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(0)
	for i, a := range tuples {
		for j := i; j < len(tuples); j++ {
			if a.Key.WithinDistance(tuples[j].Key, 2, nil) {
				want++
			}
		}
	}
	if n != want {
		t.Errorf("count = %d, want %d", n, want)
	}
}

// TestJoinAutoBroadcastsSmallOverlappingSide proves the cost model
// broadcasts a small, fully-overlapping side — and that broadcast
// then schedules fewer tasks than the L×R pair enumeration.
func TestJoinAutoBroadcastsSmallOverlappingSide(t *testing.T) {
	ctx := engine.NewContext(4)
	// Both sides spread over the full space: pair pruning cannot help,
	// so broadcasting the small right side wins.
	l, _ := makeDataset(t, ctx, 600, 4, 80)
	g, err := partition.NewGrid(4, keysOf(t, l))
	if err != nil {
		t.Fatal(err)
	}
	pl, err := l.PartitionBy(g)
	if err != nil {
		t.Fatal(err)
	}
	r, _ := makeDataset(t, ctx, 60, 2, 81)
	var rep JoinReport
	_, err = Join(pl, r, JoinOptions{
		Predicate: stobject.WithinDistancePredicate(2, nil), ProbeExpansion: 2,
		IndexOrder: -1, Strategy: JoinAuto, Report: &rep,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Strategy != JoinBroadcast {
		t.Fatalf("auto picked %v, want broadcast (decision: %+v)", rep.Strategy, rep.Decision)
	}
	if rep.Tasks >= rep.TotalPairs {
		t.Errorf("broadcast scheduled %d tasks, not fewer than the %d-pair enumeration", rep.Tasks, rep.TotalPairs)
	}
	if rep.TreesBuilt != 1 {
		t.Errorf("broadcast built %d trees, want 1", rep.TreesBuilt)
	}
}

// TestJoinBroadcastPrunesStreamPartitions: stream-side partitions
// whose extent cannot reach the broadcast envelope are never
// scheduled.
func TestJoinBroadcastPrunesStreamPartitions(t *testing.T) {
	ctx := engine.NewContext(4)
	// Left spread over the full space and grid-partitioned; right
	// clustered in one corner, so most left partitions cannot match.
	l, _ := makeDataset(t, ctx, 600, 4, 82)
	g, err := partition.NewGrid(4, keysOf(t, l))
	if err != nil {
		t.Fatal(err)
	}
	pl, err := l.PartitionBy(g)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(83))
	var rts []Tuple[int]
	for i := 0; i < 50; i++ {
		p := stobject.New(geom.NewPoint(rng.Float64()*10, rng.Float64()*10))
		rts = append(rts, engine.NewPair(p, i))
	}
	r := Wrap(engine.Parallelize(ctx, rts, 2))
	var rep JoinReport
	_, err = Join(pl, r, JoinOptions{
		Predicate: stobject.WithinDistancePredicate(2, nil), ProbeExpansion: 2,
		IndexOrder: -1, Strategy: JoinBroadcast, Report: &rep,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tasks >= pl.NumPartitions() {
		t.Errorf("broadcast visited %d of %d stream partitions, expected corner pruning", rep.Tasks, pl.NumPartitions())
	}
}
