package index

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"stark/internal/dfs"
	"stark/internal/geom"
)

func randomEnvs(rng *rand.Rand, n int) []geom.Envelope {
	envs := make([]geom.Envelope, n)
	for i := range envs {
		x, y := rng.Float64()*1000, rng.Float64()*1000
		envs[i] = geom.NewEnvelope(x, y, x+rng.Float64()*5, y+rng.Float64()*5)
	}
	return envs
}

// bruteQuery returns the IDs of envelopes intersecting q.
func bruteQuery(envs []geom.Envelope, q geom.Envelope) []int32 {
	var out []int32
	for i, e := range envs {
		if e.Intersects(q) {
			out = append(out, int32(i))
		}
	}
	return out
}

func sortIDs(ids []int32) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

func TestEmptyTree(t *testing.T) {
	tr := New(5)
	tr.Build()
	if got := tr.Query(geom.NewEnvelope(0, 0, 10, 10), nil); len(got) != 0 {
		t.Errorf("empty query = %v", got)
	}
	if got := tr.KNN(0, 0, 3, nil); len(got) != 0 {
		t.Errorf("empty knn = %v", got)
	}
	if tr.Height() != 1 {
		t.Errorf("height = %d", tr.Height())
	}
	if err := tr.validate(); err != nil {
		t.Error(err)
	}
}

func TestSingleEntry(t *testing.T) {
	tr := New(5)
	tr.Insert(geom.NewEnvelope(1, 1, 2, 2), 42)
	tr.Build()
	got := tr.Query(geom.NewEnvelope(0, 0, 3, 3), nil)
	if len(got) != 1 || got[0] != 42 {
		t.Errorf("got %v", got)
	}
	if got := tr.Query(geom.NewEnvelope(5, 5, 6, 6), nil); len(got) != 0 {
		t.Errorf("miss query = %v", got)
	}
}

func TestBuildIdempotentAndGuards(t *testing.T) {
	tr := New(5)
	tr.Insert(geom.NewEnvelope(0, 0, 1, 1), 0)
	tr.Build()
	tr.Build() // second build is a no-op
	if !tr.Built() {
		t.Error("must be built")
	}
	if err := tr.Insert(geom.NewEnvelope(0, 0, 1, 1), 1); !errors.Is(err, ErrBuilt) {
		t.Errorf("Insert after Build = %v, want ErrBuilt", err)
	}
	if tr.Len() != 1 {
		t.Errorf("rejected Insert changed Len to %d", tr.Len())
	}
	// Round trip through the persist format after a rejected Insert:
	// the marshalled entry table must be unaffected.
	data, err := tr.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 1 {
		t.Errorf("round trip Len = %d, want 1", back.Len())
	}
	if err := back.Insert(geom.NewEnvelope(2, 2, 3, 3), 9); !errors.Is(err, ErrBuilt) {
		t.Errorf("Insert after Unmarshal = %v, want ErrBuilt", err)
	}
	unbuilt := New(5)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Query before Build must panic")
			}
		}()
		unbuilt.Query(geom.NewEnvelope(0, 0, 1, 1), nil)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("KNN before Build must panic")
			}
		}()
		unbuilt.KNN(0, 0, 1, nil)
	}()
}

func TestQueryMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	envs := randomEnvs(rng, 2000)
	tr := BuildFromEnvelopes(8, envs)
	if err := tr.validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		x, y := rng.Float64()*1000, rng.Float64()*1000
		q := geom.NewEnvelope(x, y, x+rng.Float64()*50, y+rng.Float64()*50)
		got := tr.Query(q, nil)
		want := bruteQuery(envs, q)
		sortIDs(got)
		sortIDs(want)
		if len(got) != len(want) {
			t.Fatalf("query %d: got %d hits, want %d", i, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("query %d: mismatch at %d", i, j)
			}
		}
	}
}

func TestKNNMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := make([]geom.Point, 1000)
	tr := New(6)
	for i := range pts {
		pts[i] = geom.NewPoint(rng.Float64()*100, rng.Float64()*100)
		tr.Insert(pts[i].Envelope(), int32(i))
	}
	tr.Build()
	for trial := 0; trial < 20; trial++ {
		qx, qy := rng.Float64()*100, rng.Float64()*100
		k := 1 + rng.Intn(20)
		got := tr.KNN(qx, qy, k, nil)
		if len(got) != k {
			t.Fatalf("knn returned %d, want %d", len(got), k)
		}
		// Brute force.
		dists := make([]float64, len(pts))
		for i, p := range pts {
			dists[i] = math.Hypot(p.X-qx, p.Y-qy)
		}
		sorted := append([]float64(nil), dists...)
		sort.Float64s(sorted)
		for i, nb := range got {
			if math.Abs(nb.Distance-sorted[i]) > 1e-9 {
				t.Fatalf("trial %d: neighbor %d distance %v, want %v", trial, i, nb.Distance, sorted[i])
			}
			if i > 0 && got[i-1].Distance > nb.Distance {
				t.Fatal("knn results not sorted")
			}
		}
	}
}

func TestKNNWithExactRefinement(t *testing.T) {
	// Envelope distance underestimates for non-point geometries; the
	// exact callback must reorder results.
	tr := New(4)
	// Entry 0: big box whose envelope is close but whose "exact"
	// distance is far.
	tr.Insert(geom.NewEnvelope(1, 0, 2, 1), 0)
	// Entry 1: envelope slightly farther but exact distance near.
	tr.Insert(geom.NewEnvelope(3, 0, 4, 1), 1)
	tr.Build()
	exact := func(id int32) float64 {
		if id == 0 {
			return 100
		}
		return 3
	}
	got := tr.KNN(0, 0, 2, exact)
	if len(got) != 2 || got[0].ID != 1 || got[1].ID != 0 {
		t.Errorf("got %v", got)
	}
	if got[0].Distance != 3 || got[1].Distance != 100 {
		t.Errorf("distances = %v", got)
	}
}

func TestKNNEdgeCases(t *testing.T) {
	tr := BuildFromEnvelopes(4, []geom.Envelope{geom.NewPoint(1, 1).Envelope()})
	if got := tr.KNN(0, 0, 0, nil); got != nil {
		t.Errorf("k=0 → %v", got)
	}
	got := tr.KNN(0, 0, 10, nil)
	if len(got) != 1 {
		t.Errorf("k beyond size → %d results", len(got))
	}
}

func TestTreeInvariantsAcrossSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{0, 1, 2, 5, 17, 100, 1234} {
		for _, order := range []int{2, 4, 16} {
			tr := BuildFromEnvelopes(order, randomEnvs(rng, n))
			if err := tr.validate(); err != nil {
				t.Errorf("n=%d order=%d: %v", n, order, err)
			}
			if tr.Len() != n {
				t.Errorf("n=%d: Len=%d", n, tr.Len())
			}
		}
	}
}

func TestHeightGrowsLogarithmically(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	small := BuildFromEnvelopes(10, randomEnvs(rng, 50))
	big := BuildFromEnvelopes(10, randomEnvs(rng, 5000))
	if small.Height() > big.Height() {
		t.Errorf("heights: small=%d big=%d", small.Height(), big.Height())
	}
	if big.Height() > 5 {
		t.Errorf("5000 entries at order 10 should give height ≤ 5, got %d", big.Height())
	}
}

func TestQueryAll(t *testing.T) {
	tr := BuildFromEnvelopes(4, randomEnvs(rand.New(rand.NewSource(5)), 10))
	ids := tr.QueryAll()
	if len(ids) != 10 {
		t.Errorf("len = %d", len(ids))
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	envs := randomEnvs(rng, 500)
	tr := BuildFromEnvelopes(7, envs)
	data, err := tr.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Order() != 7 || tr2.Len() != 500 {
		t.Fatalf("order=%d len=%d", tr2.Order(), tr2.Len())
	}
	if err := tr2.validate(); err != nil {
		t.Fatal(err)
	}
	q := geom.NewEnvelope(100, 100, 300, 300)
	got1 := tr.Query(q, nil)
	got2 := tr2.Query(q, nil)
	sortIDs(got1)
	sortIDs(got2)
	if len(got1) != len(got2) {
		t.Fatalf("results differ: %d vs %d", len(got1), len(got2))
	}
	for i := range got1 {
		if got1[i] != got2[i] {
			t.Fatal("result mismatch after round trip")
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal(nil); err == nil {
		t.Error("empty input must fail")
	}
	if _, err := Unmarshal([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}); err == nil {
		t.Error("bad magic must fail")
	}
	tr := BuildFromEnvelopes(4, []geom.Envelope{geom.NewPoint(1, 1).Envelope()})
	data, _ := tr.Marshal()
	// Truncated.
	if _, err := Unmarshal(data[:len(data)-4]); err == nil {
		t.Error("truncated input must fail")
	}
	// Trailing garbage.
	if _, err := Unmarshal(append(data, 0xFF)); err == nil {
		t.Error("trailing bytes must fail")
	}
}

func TestSaveLoadDFS(t *testing.T) {
	fs := dfs.New(128, 1)
	tr := BuildFromEnvelopes(5, randomEnvs(rand.New(rand.NewSource(7)), 100))
	if err := tr.Save(fs, "/indexes/part-0.idx"); err != nil {
		t.Fatal(err)
	}
	// Save twice: persistent indexes are replaced, not duplicated.
	if err := tr.Save(fs, "/indexes/part-0.idx"); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(fs, "/indexes/part-0.idx")
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 100 {
		t.Errorf("len = %d", loaded.Len())
	}
	if _, err := Load(fs, "/missing"); err == nil {
		t.Error("loading missing index must fail")
	}
}

func TestDefaultOrder(t *testing.T) {
	if New(0).Order() != DefaultOrder {
		t.Error("order 0 must select default")
	}
	if New(1).Order() != DefaultOrder {
		t.Error("order 1 must select default")
	}
}

func TestPropQueryCompleteness(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	f := func(seed int64, nRaw uint16) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw%300) + 1
		envs := randomEnvs(r, n)
		tr := BuildFromEnvelopes(2+r.Intn(10), envs)
		x, y := r.Float64()*1000, r.Float64()*1000
		q := geom.NewEnvelope(x, y, x+r.Float64()*200, y+r.Float64()*200)
		got := tr.Query(q, nil)
		want := bruteQuery(envs, q)
		if len(got) != len(want) {
			return false
		}
		sortIDs(got)
		sortIDs(want)
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	_ = rng
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPropMarshalLossless(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw % 200)
		tr := BuildFromEnvelopes(4, randomEnvs(r, n))
		data, err := tr.Marshal()
		if err != nil {
			return false
		}
		tr2, err := Unmarshal(data)
		if err != nil {
			return false
		}
		return tr2.Len() == n && tr2.validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
