// Package index implements the Sort-Tile-Recursive (STR) packed
// R-tree STARK uses for partition-local indexing — the from-scratch
// replacement for the JTS STRtree.
//
// The tree is bulk-loaded: items are collected with Insert and packed
// into a height-balanced tree by Build. Queries return candidate item
// IDs whose minimum bounding rectangles match; exact geometry
// refinement is the caller's job (the "candidate pruning step" the
// paper describes for live indexing). A branch-and-bound k nearest
// neighbour search is provided, and trees serialise to a compact
// binary format for persistent indexing.
package index

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"sort"

	"stark/internal/geom"
)

// DefaultOrder is the default tree order (node capacity); the paper's
// examples use small orders such as 5.
const DefaultOrder = 10

// Entry is one indexed item: an envelope plus the caller's item ID.
type Entry struct {
	Env geom.Envelope
	ID  int32
}

// RTree is an STR bulk-loaded R-tree over Entry values.
type RTree struct {
	order   int
	entries []Entry
	root    *node
	built   bool
}

type node struct {
	env      geom.Envelope
	children []*node // nil for leaves
	entries  []Entry // nil for internal nodes
}

// New returns an empty tree with the given order (node capacity);
// order < 2 selects DefaultOrder.
func New(order int) *RTree {
	if order < 2 {
		order = DefaultOrder
	}
	return &RTree{order: order}
}

// Order returns the node capacity.
func (t *RTree) Order() int { return t.order }

// Len returns the number of indexed entries.
func (t *RTree) Len() int { return len(t.entries) }

// Built reports whether Build has run.
func (t *RTree) Built() bool { return t.built }

// ErrBuilt reports an Insert on a tree that Build has already packed.
// The STR layout is computed from the complete entry set, so a packed
// tree cannot absorb additions; datasets that mutate after indexing
// belong in the concurrent live tree (internal/live).
var ErrBuilt = errors.New("index: Insert after Build (bulk-loaded STR trees are immutable; use internal/live for mutable data)")

// Insert adds an entry. It returns ErrBuilt when called after Build:
// the build-once STRtree contract is kept, but misuse is recoverable
// instead of panicking.
func (t *RTree) Insert(env geom.Envelope, id int32) error {
	if t.built {
		return ErrBuilt
	}
	t.entries = append(t.entries, Entry{Env: env, ID: id})
	return nil
}

// Build packs the inserted entries into the tree using the STR
// algorithm: sort by x-center, cut into ⌈√(n/order)⌉ vertical slices,
// sort each slice by y-center, pack runs of `order` entries into
// leaves, then recursively pack the leaves the same way.
func (t *RTree) Build() {
	if t.built {
		return
	}
	t.built = true
	if len(t.entries) == 0 {
		t.root = &node{env: geom.EmptyEnvelope()}
		return
	}
	leaves := packLeaves(t.entries, t.order)
	t.root = packUpwards(leaves, t.order)
}

func packLeaves(entries []Entry, order int) []*node {
	sorted := make([]Entry, len(entries))
	copy(sorted, entries)
	sort.Slice(sorted, func(i, j int) bool {
		return sorted[i].Env.Center().X < sorted[j].Env.Center().X
	})
	n := len(sorted)
	leafCount := (n + order - 1) / order
	sliceCount := int(math.Ceil(math.Sqrt(float64(leafCount))))
	sliceSize := sliceCount * order

	var leaves []*node
	for s := 0; s < n; s += sliceSize {
		end := s + sliceSize
		if end > n {
			end = n
		}
		slice := sorted[s:end]
		sort.Slice(slice, func(i, j int) bool {
			return slice[i].Env.Center().Y < slice[j].Env.Center().Y
		})
		for o := 0; o < len(slice); o += order {
			oe := o + order
			if oe > len(slice) {
				oe = len(slice)
			}
			leaf := &node{env: geom.EmptyEnvelope()}
			leaf.entries = append(leaf.entries, slice[o:oe]...)
			for _, e := range leaf.entries {
				leaf.env = leaf.env.ExpandToInclude(e.Env)
			}
			leaves = append(leaves, leaf)
		}
	}
	return leaves
}

func packUpwards(nodes []*node, order int) *node {
	for len(nodes) > 1 {
		sort.Slice(nodes, func(i, j int) bool {
			return nodes[i].env.Center().X < nodes[j].env.Center().X
		})
		n := len(nodes)
		parentCount := (n + order - 1) / order
		sliceCount := int(math.Ceil(math.Sqrt(float64(parentCount))))
		sliceSize := sliceCount * order

		var parents []*node
		for s := 0; s < n; s += sliceSize {
			end := s + sliceSize
			if end > n {
				end = n
			}
			slice := nodes[s:end]
			sort.Slice(slice, func(i, j int) bool {
				return slice[i].env.Center().Y < slice[j].env.Center().Y
			})
			for o := 0; o < len(slice); o += order {
				oe := o + order
				if oe > len(slice) {
					oe = len(slice)
				}
				parent := &node{env: geom.EmptyEnvelope()}
				parent.children = append(parent.children, slice[o:oe]...)
				for _, c := range parent.children {
					parent.env = parent.env.ExpandToInclude(c.env)
				}
				parents = append(parents, parent)
			}
		}
		nodes = parents
	}
	return nodes[0]
}

// Query appends to dst the IDs of all entries whose envelope
// intersects q and returns the extended slice. The result is a
// candidate set: callers must refine with the exact predicate.
func (t *RTree) Query(q geom.Envelope, dst []int32) []int32 {
	if !t.built {
		panic("index: Query before Build")
	}
	if t.root == nil || q.IsEmpty() {
		return dst
	}
	return queryNode(t.root, q, dst)
}

func queryNode(n *node, q geom.Envelope, dst []int32) []int32 {
	if !n.env.Intersects(q) {
		return dst
	}
	if n.children == nil {
		for _, e := range n.entries {
			if e.Env.Intersects(q) {
				dst = append(dst, e.ID)
			}
		}
		return dst
	}
	for _, c := range n.children {
		dst = queryNode(c, q, dst)
	}
	return dst
}

// QueryAll returns the IDs of every entry (in no particular order).
func (t *RTree) QueryAll() []int32 {
	ids := make([]int32, len(t.entries))
	for i, e := range t.entries {
		ids[i] = e.ID
	}
	return ids
}

// Neighbor is one kNN result: an entry ID and its distance.
type Neighbor struct {
	ID       int32
	Distance float64
}

// KNN returns the k entries nearest to (x, y) ordered by ascending
// distance, using best-first branch-and-bound over envelope minimum
// distances. exact, when non-nil, refines an entry's distance (for
// non-point geometries whose envelope distance underestimates);
// when nil the envelope distance is used directly, which is exact for
// point data.
func (t *RTree) KNN(x, y float64, k int, exact func(id int32) float64) []Neighbor {
	if !t.built {
		panic("index: KNN before Build")
	}
	if k <= 0 || t.root == nil || len(t.entries) == 0 {
		return nil
	}
	pq := &knnQueue{}
	heap.Init(pq)
	heap.Push(pq, knnCandidate{dist: t.root.env.DistanceToPoint(x, y), n: t.root})

	var out []Neighbor
	for pq.Len() > 0 && len(out) < k {
		c := heap.Pop(pq).(knnCandidate)
		switch {
		case c.n != nil && c.n.children != nil:
			for _, ch := range c.n.children {
				heap.Push(pq, knnCandidate{dist: ch.env.DistanceToPoint(x, y), n: ch})
			}
		case c.n != nil:
			for _, e := range c.n.entries {
				d := e.Env.DistanceToPoint(x, y)
				if exact != nil {
					// Enqueue with the envelope lower bound first, refine
					// lazily when the entry is popped.
					heap.Push(pq, knnCandidate{dist: d, entry: &e, needRefine: true})
				} else {
					heap.Push(pq, knnCandidate{dist: d, entry: &e})
				}
			}
		case c.needRefine:
			refined := exact(c.entry.ID)
			heap.Push(pq, knnCandidate{dist: refined, entry: c.entry})
		default:
			out = append(out, Neighbor{ID: c.entry.ID, Distance: c.dist})
		}
	}
	return out
}

type knnCandidate struct {
	dist       float64
	n          *node
	entry      *Entry
	needRefine bool
}

type knnQueue []knnCandidate

func (q knnQueue) Len() int            { return len(q) }
func (q knnQueue) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q knnQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *knnQueue) Push(x interface{}) { *q = append(*q, x.(knnCandidate)) }
func (q *knnQueue) Pop() interface{} {
	old := *q
	n := len(old)
	item := old[n-1]
	*q = old[:n-1]
	return item
}

// Height returns the tree height (0 for an empty tree).
func (t *RTree) Height() int {
	if !t.built || t.root == nil {
		return 0
	}
	h := 0
	for n := t.root; n != nil && n.children != nil; n = n.children[0] {
		h++
	}
	return h + 1
}

// validate checks structural invariants; used by tests.
func (t *RTree) validate() error {
	if !t.built {
		return errors.New("not built")
	}
	if len(t.entries) == 0 {
		return nil
	}
	count := 0
	var walk func(n *node, depth int) (int, error)
	leafDepth := -1
	walk = func(n *node, depth int) (int, error) {
		if n.children == nil {
			if leafDepth == -1 {
				leafDepth = depth
			} else if leafDepth != depth {
				return 0, fmt.Errorf("unbalanced: leaf at depth %d and %d", leafDepth, depth)
			}
			for _, e := range n.entries {
				if !n.env.ContainsEnvelope(e.Env) && !(e.Env.IsEmpty()) {
					return 0, fmt.Errorf("leaf env %v does not contain entry %v", n.env, e.Env)
				}
			}
			return len(n.entries), nil
		}
		if len(n.children) > t.order {
			return 0, fmt.Errorf("node fanout %d exceeds order %d", len(n.children), t.order)
		}
		sum := 0
		for _, c := range n.children {
			if !n.env.ContainsEnvelope(c.env) {
				return 0, fmt.Errorf("node env %v does not contain child %v", n.env, c.env)
			}
			s, err := walk(c, depth+1)
			if err != nil {
				return 0, err
			}
			sum += s
		}
		return sum, nil
	}
	var err error
	count, err = walk(t.root, 0)
	if err != nil {
		return err
	}
	if count != len(t.entries) {
		return fmt.Errorf("tree holds %d entries, inserted %d", count, len(t.entries))
	}
	return nil
}
