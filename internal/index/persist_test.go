package index

import (
	"encoding/binary"
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"stark/internal/geom"
)

// marshalV1 renders a tree in the legacy v1 layout (no checksum
// footer) so the compatibility path stays covered without keeping old
// writer code around.
func marshalV1(t *RTree) []byte {
	buf := make([]byte, 0, persistHeaderSize+len(t.entries)*persistEntrySize)
	buf = binary.LittleEndian.AppendUint32(buf, persistMagic)
	buf = binary.LittleEndian.AppendUint16(buf, persistVersionV1)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(t.order))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(t.entries)))
	for _, e := range t.entries {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(e.ID))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.Env.MinX))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.Env.MinY))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.Env.MaxX))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.Env.MaxY))
	}
	return buf
}

func TestUnmarshalReadsV1(t *testing.T) {
	tr := BuildFromEnvelopes(6, randomEnvs(rand.New(rand.NewSource(11)), 64))
	got, err := Unmarshal(marshalV1(tr))
	if err != nil {
		t.Fatalf("v1 input rejected: %v", err)
	}
	if got.Order() != 6 || got.Len() != 64 {
		t.Fatalf("order=%d len=%d, want 6/64", got.Order(), got.Len())
	}
	q := geom.NewEnvelope(0, 0, 1000, 1000)
	if len(got.Query(q, nil)) != len(tr.Query(q, nil)) {
		t.Fatal("v1 round trip lost entries")
	}
}

// TestUnmarshalRejectsEveryCorruptByte is the corrupted-byte table
// test: any single flipped byte in a v2 file — header, entry table or
// footer — must be rejected, never deserialised as garbage envelopes.
func TestUnmarshalRejectsEveryCorruptByte(t *testing.T) {
	tr := BuildFromEnvelopes(5, randomEnvs(rand.New(rand.NewSource(12)), 40))
	data, err := tr.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	for off := 0; off < len(data); off++ {
		mutated := append([]byte(nil), data...)
		mutated[off] ^= byte(1 << rng.Intn(8))
		if _, err := Unmarshal(mutated); err == nil {
			t.Fatalf("flip at byte %d accepted silently", off)
		}
	}
}

// TestUnmarshalCountValidation plants an untrusted entry count far
// beyond the bytes present: Unmarshal must reject it up front rather
// than preallocating gigabytes and failing on the first entry read.
func TestUnmarshalCountValidation(t *testing.T) {
	tr := BuildFromEnvelopes(4, randomEnvs(rand.New(rand.NewSource(14)), 8))
	data, err := tr.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	for _, count := range []uint32{9, 1 << 20, 0xFFFFFFFF} {
		mutated := append([]byte(nil), data...)
		binary.LittleEndian.PutUint32(mutated[8:12], count)
		if _, err := Unmarshal(mutated); err == nil {
			t.Fatalf("count=%d accepted with only 8 entries of payload", count)
		}
		// The same header lie in a v1 file (no checksum to catch it
		// first) must be caught by the length validation alone.
		v1 := marshalV1(tr)
		binary.LittleEndian.PutUint32(v1[8:12], count)
		if _, err := Unmarshal(v1); err == nil {
			t.Fatalf("v1 count=%d accepted with only 8 entries of payload", count)
		}
	}
	// Truncation mid-entry must fail in both formats.
	if _, err := Unmarshal(data[:len(data)-persistFooterSize-7]); err == nil {
		t.Fatal("truncated v2 entry table accepted")
	}
	v1 := marshalV1(tr)
	if _, err := Unmarshal(v1[:len(v1)-7]); err == nil {
		t.Fatal("truncated v1 entry table accepted")
	}
}

func TestSaveFileLoadFileRoundTrip(t *testing.T) {
	tr := BuildFromEnvelopes(5, randomEnvs(rand.New(rand.NewSource(15)), 100))
	path := filepath.Join(t.TempDir(), "part-0.idx")
	if err := tr.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	// Replacing an existing file must work (atomic rename semantics).
	if err := tr.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 100 {
		t.Fatalf("len = %d", got.Len())
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("loading a missing file must fail")
	}
}
