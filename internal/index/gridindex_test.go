package index

import (
	"math/rand"
	"testing"
	"testing/quick"

	"stark/internal/geom"
)

func TestGridIndexEmpty(t *testing.T) {
	g := NewGridIndex(4, nil)
	if g.Len() != 0 {
		t.Errorf("len = %d", g.Len())
	}
	if got := g.Query(geom.NewEnvelope(0, 0, 1, 1), nil); len(got) != 0 {
		t.Errorf("got %v", got)
	}
}

func TestGridIndexSingle(t *testing.T) {
	g := BuildGridFromEnvelopes(4, []geom.Envelope{geom.NewEnvelope(1, 1, 2, 2)})
	got := g.Query(geom.NewEnvelope(0, 0, 3, 3), nil)
	if len(got) != 1 || got[0] != 0 {
		t.Errorf("got %v", got)
	}
	if got := g.Query(geom.NewEnvelope(5, 5, 6, 6), nil); len(got) != 0 {
		t.Errorf("miss: %v", got)
	}
}

func TestGridIndexMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	envs := randomEnvs(rng, 1500)
	g := BuildGridFromEnvelopes(0, envs) // derived n
	for trial := 0; trial < 50; trial++ {
		x, y := rng.Float64()*1000, rng.Float64()*1000
		q := geom.NewEnvelope(x, y, x+rng.Float64()*80, y+rng.Float64()*80)
		got := g.Query(q, nil)
		want := bruteQuery(envs, q)
		sortIDs(got)
		sortIDs(want)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d hits, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: mismatch at %d", trial, i)
			}
		}
	}
}

func TestGridIndexDeduplicatesSpanningEntries(t *testing.T) {
	// A big envelope registered in many cells must be reported once.
	envs := []geom.Envelope{geom.NewEnvelope(0, 0, 100, 100)}
	g := BuildGridFromEnvelopes(8, envs)
	got := g.Query(geom.NewEnvelope(10, 10, 90, 90), nil)
	if len(got) != 1 {
		t.Errorf("got %d results, want 1 (deduplicated)", len(got))
	}
	// Across repeated queries too (stamp generation).
	for i := 0; i < 5; i++ {
		if got := g.Query(geom.NewEnvelope(0, 0, 100, 100), nil); len(got) != 1 {
			t.Fatalf("query %d: %d results", i, len(got))
		}
	}
}

func TestGridIndexAgreesWithRTree(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	envs := randomEnvs(rng, 800)
	g := BuildGridFromEnvelopes(16, envs)
	r := BuildFromEnvelopes(8, envs)
	for trial := 0; trial < 30; trial++ {
		x, y := rng.Float64()*1000, rng.Float64()*1000
		q := geom.NewEnvelope(x, y, x+50, y+50)
		a := g.Query(q, nil)
		b := r.Query(q, nil)
		sortIDs(a)
		sortIDs(b)
		if len(a) != len(b) {
			t.Fatalf("trial %d: grid %d vs rtree %d", trial, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatal("grid and rtree disagree")
			}
		}
	}
}

func TestPropGridIndexCompleteness(t *testing.T) {
	f := func(seed int64, nRaw uint16, cellsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%300) + 1
		cells := int(cellsRaw%20) + 1
		envs := randomEnvs(rng, n)
		g := BuildGridFromEnvelopes(cells, envs)
		x, y := rng.Float64()*1000, rng.Float64()*1000
		q := geom.NewEnvelope(x, y, x+rng.Float64()*300, y+rng.Float64()*300)
		got := g.Query(q, nil)
		want := bruteQuery(envs, q)
		if len(got) != len(want) {
			return false
		}
		sortIDs(got)
		sortIDs(want)
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
