package index

import (
	"math"

	"stark/internal/geom"
)

// GridIndex is a fixed-grid spatial hash over entry envelopes — the
// lightweight alternative to the STR R-tree for partition-local
// indexing. Entries are registered in every cell their envelope
// overlaps; queries collect the candidate entries of the cells the
// query envelope overlaps and deduplicate. Grid indexes build faster
// than R-trees (no sorting) but degrade on skewed data and on large
// objects spanning many cells, which is why STARK defaults to the
// R-tree; the indexing ablation can quantify the trade-off.
type GridIndex struct {
	env          geom.Envelope
	n            int // cells per dimension
	cellW, cellH float64
	cells        [][]Entry
	size         int
	stamp        []int32 // per-entry visit stamps for dedup
	stampGen     int32
}

// NewGridIndex builds a grid index over the entries with n cells per
// dimension; n < 1 derives ⌈√(len(entries))⌉ capped at 256. The
// entries slice is not retained.
func NewGridIndex(n int, entries []Entry) *GridIndex {
	env := geom.EmptyEnvelope()
	maxID := int32(-1)
	for _, e := range entries {
		env = env.ExpandToInclude(e.Env)
		if e.ID > maxID {
			maxID = e.ID
		}
	}
	if n < 1 {
		n = int(math.Ceil(math.Sqrt(float64(len(entries)))))
		if n < 1 {
			n = 1
		}
		if n > 256 {
			n = 256
		}
	}
	g := &GridIndex{
		env:   env,
		n:     n,
		cells: make([][]Entry, n*n),
		size:  len(entries),
		stamp: make([]int32, maxID+1),
	}
	if !env.IsEmpty() {
		g.cellW = env.Width() / float64(n)
		g.cellH = env.Height() / float64(n)
	}
	for _, e := range entries {
		c0, r0, c1, r1 := g.cellRange(e.Env)
		for r := r0; r <= r1; r++ {
			for c := c0; c <= c1; c++ {
				g.cells[r*n+c] = append(g.cells[r*n+c], e)
			}
		}
	}
	return g
}

// Len returns the number of indexed entries.
func (g *GridIndex) Len() int { return g.size }

// cellRange returns the inclusive cell rectangle an envelope
// overlaps, clamped to the grid.
func (g *GridIndex) cellRange(env geom.Envelope) (c0, r0, c1, r1 int) {
	clampCol := func(x float64) int {
		if g.cellW <= 0 {
			return 0
		}
		c := int((x - g.env.MinX) / g.cellW)
		if c < 0 {
			return 0
		}
		if c >= g.n {
			return g.n - 1
		}
		return c
	}
	clampRow := func(y float64) int {
		if g.cellH <= 0 {
			return 0
		}
		r := int((y - g.env.MinY) / g.cellH)
		if r < 0 {
			return 0
		}
		if r >= g.n {
			return g.n - 1
		}
		return r
	}
	return clampCol(env.MinX), clampRow(env.MinY), clampCol(env.MaxX), clampRow(env.MaxY)
}

// Query appends to dst the IDs of entries whose envelope intersects
// q, deduplicated, and returns the extended slice. Not safe for
// concurrent use (the visit stamps are shared); build one GridIndex
// per worker.
func (g *GridIndex) Query(q geom.Envelope, dst []int32) []int32 {
	if g.size == 0 || q.IsEmpty() || !g.env.Intersects(q) {
		return dst
	}
	g.stampGen++
	gen := g.stampGen
	c0, r0, c1, r1 := g.cellRange(q)
	for r := r0; r <= r1; r++ {
		for c := c0; c <= c1; c++ {
			for _, e := range g.cells[r*g.n+c] {
				if g.stamp[e.ID] == gen {
					continue
				}
				g.stamp[e.ID] = gen
				if e.Env.Intersects(q) {
					dst = append(dst, e.ID)
				}
			}
		}
	}
	return dst
}

// BuildGridFromEnvelopes mirrors BuildFromEnvelopes for grid indexes:
// slice position becomes the entry ID.
func BuildGridFromEnvelopes(n int, envs []geom.Envelope) *GridIndex {
	entries := make([]Entry, len(envs))
	for i, e := range envs {
		entries[i] = Entry{Env: e, ID: int32(i)}
	}
	return NewGridIndex(n, entries)
}
