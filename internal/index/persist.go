package index

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"stark/internal/dfs"
	"stark/internal/geom"
)

// This file implements persistent indexing: STARK's index() mode
// serialises the per-partition R-trees to HDFS so subsequent programs
// can reuse them without rebuilding. The format is a compact custom
// binary layout (magic, order, entry table); the tree structure is
// reconstructed by re-packing on load, which is deterministic for STR
// and avoids persisting pointers.

const (
	persistMagic   = uint32(0x5354524B) // "STRK"
	persistVersion = uint16(1)
)

// Marshal serialises the tree (built or not) to a byte slice.
func (t *RTree) Marshal() ([]byte, error) {
	var buf bytes.Buffer
	w := func(v interface{}) {
		// bytes.Buffer writes cannot fail.
		_ = binary.Write(&buf, binary.LittleEndian, v)
	}
	w(persistMagic)
	w(persistVersion)
	w(uint16(t.order))
	w(uint32(len(t.entries)))
	for _, e := range t.entries {
		w(e.ID)
		w(e.Env.MinX)
		w(e.Env.MinY)
		w(e.Env.MaxX)
		w(e.Env.MaxY)
	}
	return buf.Bytes(), nil
}

// Unmarshal reconstructs a tree from Marshal output and builds it.
func Unmarshal(data []byte) (*RTree, error) {
	r := bytes.NewReader(data)
	var (
		magic   uint32
		version uint16
		order   uint16
		count   uint32
	)
	if err := binary.Read(r, binary.LittleEndian, &magic); err != nil {
		return nil, fmt.Errorf("index: reading magic: %w", err)
	}
	if magic != persistMagic {
		return nil, fmt.Errorf("index: bad magic %#x", magic)
	}
	if err := binary.Read(r, binary.LittleEndian, &version); err != nil {
		return nil, fmt.Errorf("index: reading version: %w", err)
	}
	if version != persistVersion {
		return nil, fmt.Errorf("index: unsupported version %d", version)
	}
	if err := binary.Read(r, binary.LittleEndian, &order); err != nil {
		return nil, fmt.Errorf("index: reading order: %w", err)
	}
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("index: reading count: %w", err)
	}
	t := New(int(order))
	t.entries = make([]Entry, 0, count)
	for i := uint32(0); i < count; i++ {
		var (
			id                     int32
			minX, minY, maxX, maxY float64
		)
		if err := binary.Read(r, binary.LittleEndian, &id); err != nil {
			return nil, fmt.Errorf("index: reading entry %d: %w", i, err)
		}
		for _, dst := range []*float64{&minX, &minY, &maxX, &maxY} {
			if err := binary.Read(r, binary.LittleEndian, dst); err != nil {
				return nil, fmt.Errorf("index: reading entry %d: %w", i, err)
			}
		}
		if math.IsNaN(minX) || math.IsNaN(minY) || math.IsNaN(maxX) || math.IsNaN(maxY) {
			return nil, fmt.Errorf("index: entry %d has NaN bounds", i)
		}
		t.entries = append(t.entries, Entry{
			ID:  id,
			Env: geom.Envelope{MinX: minX, MinY: minY, MaxX: maxX, MaxY: maxY},
		})
	}
	if _, err := r.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("index: trailing bytes after %d entries", count)
	}
	t.Build()
	return t, nil
}

// Save writes the tree to path on the file system, replacing any
// previous index at that path.
func (t *RTree) Save(fs *dfs.FileSystem, path string) error {
	data, err := t.Marshal()
	if err != nil {
		return err
	}
	return fs.Overwrite(path, data)
}

// Load reads a tree persisted by Save.
func Load(fs *dfs.FileSystem, path string) (*RTree, error) {
	data, err := fs.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Unmarshal(data)
}

// BuildFromEnvelopes bulk-loads a tree over envs, using the slice
// index as entry ID — the "live indexing" constructor: a partition's
// contents are put into an R-tree before evaluating a predicate. Like
// Unmarshal it fills the entry table directly: the tree is fresh by
// construction, so Insert's post-Build error path cannot apply.
func BuildFromEnvelopes(order int, envs []geom.Envelope) *RTree {
	t := New(order)
	t.entries = make([]Entry, len(envs))
	for i, e := range envs {
		t.entries[i] = Entry{Env: e, ID: int32(i)}
	}
	t.Build()
	return t
}
