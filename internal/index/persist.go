package index

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"

	"stark/internal/dfs"
	"stark/internal/geom"
	"stark/internal/wal"
)

// This file implements persistent indexing: STARK's index() mode
// serialises the per-partition R-trees to HDFS so subsequent programs
// can reuse them without rebuilding. The format is a compact custom
// binary layout (magic, order, entry table); the tree structure is
// reconstructed by re-packing on load, which is deterministic for STR
// and avoids persisting pointers.
//
// Format v2 appends a CRC32C footer over everything before it, so a
// persisted index that rotted on disk — any flipped byte past the
// magic/version header — is rejected at load instead of deserialising
// into garbage envelopes that would then be served silently. v1 files
// (no footer) remain readable.

const (
	persistMagic     = uint32(0x5354524B) // "STRK"
	persistVersionV1 = uint16(1)
	persistVersion   = uint16(2)

	// persistHeaderSize is magic + version + order + count.
	persistHeaderSize = 4 + 2 + 2 + 4
	// persistEntrySize is one fixed-width entry: int32 ID plus four
	// float64 envelope bounds.
	persistEntrySize = 4 + 4*8
	// persistFooterSize is the v2 CRC32C footer.
	persistFooterSize = 4
)

// Marshal serialises the tree (built or not) to a byte slice in
// format v2: header, fixed 36-byte entries, CRC32C footer.
func (t *RTree) Marshal() ([]byte, error) {
	buf := make([]byte, 0, persistHeaderSize+len(t.entries)*persistEntrySize+persistFooterSize)
	buf = binary.LittleEndian.AppendUint32(buf, persistMagic)
	buf = binary.LittleEndian.AppendUint16(buf, persistVersion)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(t.order))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(t.entries)))
	for _, e := range t.entries {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(e.ID))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.Env.MinX))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.Env.MinY))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.Env.MaxX))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.Env.MaxY))
	}
	buf = binary.LittleEndian.AppendUint32(buf, wal.Checksum(buf))
	return buf, nil
}

// Unmarshal reconstructs a tree from Marshal output and builds it.
// v2 input is verified against its CRC32C footer before any entry is
// decoded; v1 input (no footer) is still accepted. In both formats
// the entry count from the header is validated against the bytes
// actually present before any allocation, so a truncated or corrupt
// file can never demand memory it does not carry.
func Unmarshal(data []byte) (*RTree, error) {
	if len(data) < persistHeaderSize {
		return nil, fmt.Errorf("index: %d bytes is shorter than the header", len(data))
	}
	magic := binary.LittleEndian.Uint32(data[0:4])
	if magic != persistMagic {
		return nil, fmt.Errorf("index: bad magic %#x", magic)
	}
	version := binary.LittleEndian.Uint16(data[4:6])
	order := binary.LittleEndian.Uint16(data[6:8])
	count := binary.LittleEndian.Uint32(data[8:12])

	body := data[persistHeaderSize:]
	switch version {
	case persistVersionV1:
		// No footer; the entry table must account for the remainder
		// exactly.
	case persistVersion:
		if len(body) < persistFooterSize {
			return nil, fmt.Errorf("index: v2 file is missing its checksum footer")
		}
		payload := data[:len(data)-persistFooterSize]
		want := binary.LittleEndian.Uint32(data[len(data)-persistFooterSize:])
		if got := wal.Checksum(payload); got != want {
			return nil, fmt.Errorf("index: checksum mismatch (file %#x, computed %#x): persisted index is corrupt", want, got)
		}
		body = body[:len(body)-persistFooterSize]
	default:
		return nil, fmt.Errorf("index: unsupported version %d", version)
	}

	// The count header is untrusted: it must match the remaining input
	// length exactly (fixed-width entries) before the entry table is
	// allocated.
	if int64(count)*persistEntrySize != int64(len(body)) {
		return nil, fmt.Errorf("index: header claims %d entries (%d bytes), file carries %d bytes",
			count, int64(count)*persistEntrySize, len(body))
	}

	t := New(int(order))
	t.entries = make([]Entry, 0, count)
	for i := uint32(0); i < count; i++ {
		e := body[i*persistEntrySize:]
		id := int32(binary.LittleEndian.Uint32(e[0:4]))
		minX := math.Float64frombits(binary.LittleEndian.Uint64(e[4:12]))
		minY := math.Float64frombits(binary.LittleEndian.Uint64(e[12:20]))
		maxX := math.Float64frombits(binary.LittleEndian.Uint64(e[20:28]))
		maxY := math.Float64frombits(binary.LittleEndian.Uint64(e[28:36]))
		if math.IsNaN(minX) || math.IsNaN(minY) || math.IsNaN(maxX) || math.IsNaN(maxY) {
			return nil, fmt.Errorf("index: entry %d has NaN bounds", i)
		}
		t.entries = append(t.entries, Entry{
			ID:  id,
			Env: geom.Envelope{MinX: minX, MinY: minY, MaxX: maxX, MaxY: maxY},
		})
	}
	t.Build()
	return t, nil
}

// Save writes the tree to path on the file system, replacing any
// previous index at that path. The replace is atomic (dfs.Overwrite's
// contract): a concurrent Load sees the old index or the new one,
// never an absent or partial file.
func (t *RTree) Save(fs *dfs.FileSystem, path string) error {
	data, err := t.Marshal()
	if err != nil {
		return err
	}
	return fs.Overwrite(path, data)
}

// Load reads a tree persisted by Save.
func Load(fs *dfs.FileSystem, path string) (*RTree, error) {
	data, err := fs.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Unmarshal(data)
}

// SaveFile writes the tree to an operating-system file with the
// crash-safe write-temp + fsync + rename contract — the on-disk
// counterpart of Save that checkpoint segments use.
func (t *RTree) SaveFile(path string) error {
	data, err := t.Marshal()
	if err != nil {
		return err
	}
	return wal.WriteFileAtomic(path, data)
}

// LoadFile reads a tree persisted by SaveFile.
func LoadFile(path string) (*RTree, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Unmarshal(data)
}

// BuildFromEnvelopes bulk-loads a tree over envs, using the slice
// index as entry ID — the "live indexing" constructor: a partition's
// contents are put into an R-tree before evaluating a predicate. Like
// Unmarshal it fills the entry table directly: the tree is fresh by
// construction, so Insert's post-Build error path cannot apply.
func BuildFromEnvelopes(order int, envs []geom.Envelope) *RTree {
	t := New(order)
	t.entries = make([]Entry, len(envs))
	for i, e := range envs {
		t.entries[i] = Entry{Env: e, ID: int32(i)}
	}
	t.Build()
	return t
}
