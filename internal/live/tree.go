// Package live implements mutable datasets: a concurrency-safe R-tree
// that absorbs inserts, upserts and deletes in batches while queries
// stream a consistent snapshot, plus the MutableDataset that wires the
// tree into the engine, the statistics layer and the planner.
//
// The tree adapts the B-link-tree technique of Lehman and Yao (and its
// R-tree variant by Kornacker and Banks) so that readers never block
// on — and never restart because of — node splits:
//
//   - every node carries a right-sibling pointer and a node sequence
//     number (NSN);
//   - a parent's reference to a child records the NSN the child had
//     when the reference was written;
//   - a split keeps the original node in place, moves the upper half
//     of its contents into a new right sibling, hands the sibling the
//     node's OLD sequence number and stamps the node itself with a
//     fresh one.
//
// A reader that followed a reference expecting sequence number E and
// finds a node stamped differently knows the node has split since the
// reference was written: the moved contents live somewhere to the
// right. It keeps walking right pointers, visiting each node once,
// and stops after the first node stamped E — because the old number
// propagates to the rightmost node of any split chain, that node is
// always the end of the moved run. Readers therefore hold at most one
// read latch at a time and never revisit or miss an entry, no matter
// how many splits land mid-flight.
//
// Visibility is decided per entry, not per node: every entry records
// the generation that added it and (once deleted) the generation that
// removed it, so a reader pinned to generation g filters to
// addGen <= g < delGen. Deletes are tombstones; space is reclaimed by
// rebuilding a partition's tree wholesale (see Dataset), never by
// mutating structure a snapshot may still be reading.
//
// Concurrency contract: any number of readers, ONE writer at a time
// (the Dataset serialises batches with a mutex). The writer descends
// latch-free — it is the only mutator — and takes a node's write
// latch only while changing that node, so readers are excluded
// exactly from the nodes being restructured.
package live

import (
	"sync"
	"sync/atomic"

	"stark/internal/geom"
	"stark/internal/stobject"
)

// DefaultOrder is the default node capacity of the live tree.
const DefaultOrder = 16

// Entry is one record version stored in the tree.
type Entry[V any] struct {
	ID    int64
	Key   stobject.STObject
	Value V

	env geom.Envelope // cached Key.Envelope()

	// addGen is the generation whose batch inserted the entry; delGen
	// is the generation that tombstoned it (0 while live). An entry is
	// visible at generation g iff addGen <= g && (delGen == 0 || delGen > g).
	addGen uint64
	delGen uint64
}

func (e *Entry[V]) visibleAt(gen uint64) bool {
	return e.addGen <= gen && (e.delGen == 0 || e.delGen > gen)
}

// childRef is a parent's latch-protected reference to a child: the
// pointer, the child's envelope, and the sequence number the child
// carried when the reference was last written. env and nsn are
// updated together under the parent's write latch, so a reader sees a
// consistent (possibly stale) pair and the nsn tells it how stale.
type childRef[V any] struct {
	ptr *node[V]
	env geom.Envelope
	nsn uint64
}

type node[V any] struct {
	mu  sync.RWMutex
	nsn uint64
	env geom.Envelope
	// right links a node to the sibling its last split created,
	// forming the chase chain readers follow. At the leaf level the
	// pointers additionally chain ALL leaves left to right, because
	// every leaf except the first is born from a split.
	right   *node[V]
	refs    []childRef[V] // internal nodes; nil for leaves
	entries []Entry[V]    // leaves; nil for internal nodes
}

func (n *node[V]) isLeaf() bool { return n.refs == nil }

// rootRef pairs the root pointer with its expected sequence number so
// readers enter the tree with the same (ptr, nsn) contract they use
// for every other node. Swapped atomically on root splits.
type rootRef[V any] struct {
	n   *node[V]
	nsn uint64
}

// tree is one partition's concurrent R-link tree. All exported-like
// mutating methods assume the caller holds the dataset writer mutex.
type tree[V any] struct {
	order int
	nsn   uint64 // writer-only sequence counter

	root     atomic.Pointer[rootRef[V]]
	leftLeaf *node[V] // head of the leaf chain; never changes

	// owners maps a live (non-tombstoned) entry ID to the leaf holding
	// it, so delete/upsert find their target without a tree descent.
	// Writer-only.
	owners map[int64]*node[V]

	live int // entries with delGen == 0
	dead int // tombstones awaiting vacuum
}

func newTree[V any](order int) *tree[V] {
	if order < 4 {
		order = DefaultOrder
	}
	t := &tree[V]{order: order, owners: make(map[int64]*node[V])}
	leaf := &node[V]{nsn: t.nextNSN(), env: geom.EmptyEnvelope()}
	t.leftLeaf = leaf
	t.root.Store(&rootRef[V]{n: leaf, nsn: leaf.nsn})
	return t
}

func (t *tree[V]) nextNSN() uint64 {
	t.nsn++
	return t.nsn
}

// ---- Reader side ----

// search streams every entry visible at gen whose envelope intersects
// q to yield, stopping early when yield returns false (the return
// value reports whether the walk ran to completion). all == true
// bypasses the envelope test and streams the whole partition. Entries
// are copied out of a leaf under its read latch and yielded after the
// latch is released, so yield may do arbitrary work.
func (t *tree[V]) search(q geom.Envelope, gen uint64, all bool, yield func(e Entry[V]) bool) bool {
	rr := t.root.Load()
	type frame struct {
		n   *node[V]
		nsn uint64
	}
	stack := []frame{{rr.n, rr.nsn}}
	var out []Entry[V]
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		cur, expected := f.n, f.nsn
		for cur != nil {
			cur.mu.RLock()
			// The stop decision and the node's contents are read under
			// the SAME latch hold: if the node splits after we release,
			// the entries that moved right were already seen here.
			last := cur.nsn == expected
			next := cur.right
			if cur.isLeaf() {
				for i := range cur.entries {
					e := &cur.entries[i]
					if !e.visibleAt(gen) {
						continue
					}
					if all || e.env.Intersects(q) {
						out = append(out, *e)
					}
				}
			} else {
				for i := range cur.refs {
					r := &cur.refs[i]
					if all || r.env.Intersects(q) {
						stack = append(stack, frame{r.ptr, r.nsn})
					}
				}
			}
			cur.mu.RUnlock()
			for i := range out {
				if !yield(out[i]) {
					return false
				}
			}
			out = out[:0]
			if last {
				break
			}
			cur = next
		}
	}
	return true
}

// ---- Writer side (caller holds the dataset writer mutex) ----

// insert adds an entry (addGen already stamped) and registers its
// owning leaf.
func (t *tree[V]) insert(e Entry[V]) {
	e.env = e.Key.Envelope()

	// Latch-free descent: this goroutine is the only mutator, so the
	// path it reads cannot change under it.
	n := t.root.Load().n
	var path []*node[V]
	for !n.isLeaf() {
		path = append(path, n)
		n = n.refs[t.chooseSubtree(n, e.env)].ptr
	}

	leaf := n
	leaf.mu.Lock()
	leaf.entries = append(leaf.entries, e)
	leaf.env = leaf.env.ExpandToInclude(e.env)
	var sib *node[V]
	if len(leaf.entries) > t.order {
		sib = t.splitLeaf(leaf)
	}
	leaf.mu.Unlock()

	t.owners[e.ID] = leaf
	if sib != nil {
		for i := range sib.entries {
			if sib.entries[i].delGen == 0 {
				t.owners[sib.entries[i].ID] = sib
			}
		}
	}
	t.live++
	t.adjustUp(path, leaf, sib)
}

// delete tombstones the live entry with the given ID at generation
// gen, returning the entry (for stat deltas). The second result is
// false when the ID is not live.
func (t *tree[V]) delete(id int64, gen uint64) (Entry[V], bool) {
	leaf, ok := t.owners[id]
	if !ok {
		return Entry[V]{}, false
	}
	var out Entry[V]
	leaf.mu.Lock()
	for i := range leaf.entries {
		e := &leaf.entries[i]
		if e.ID == id && e.delGen == 0 {
			e.delGen = gen
			out = *e
			break
		}
	}
	leaf.mu.Unlock()
	delete(t.owners, id)
	t.live--
	t.dead++
	return out, true
}

// chooseSubtree picks the child needing least area enlargement to
// absorb env (ties: smaller area, then first).
func (t *tree[V]) chooseSubtree(n *node[V], env geom.Envelope) int {
	best, bestEnl, bestArea := 0, -1.0, 0.0
	for i := range n.refs {
		ce := n.refs[i].env
		area := ce.Area()
		enl := ce.ExpandToInclude(env).Area() - area
		if bestEnl < 0 || enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = i, enl, area
		}
	}
	return best
}

// splitLeaf halves an overflowing leaf while the caller holds its
// write latch: the upper half (along the leaf envelope's longer axis)
// moves to a new right sibling, the sibling inherits the leaf's OLD
// sequence number and splices into the chain, and the leaf is stamped
// fresh. Readers chasing the old number find the sibling — the last
// node of the chain carrying it.
func (t *tree[V]) splitLeaf(n *node[V]) *node[V] {
	mid := splitPoint(len(n.entries))
	sortByAxis(n.entries, longerAxisX(n.env), func(e *Entry[V]) geom.Envelope { return e.env })
	sib := &node[V]{
		nsn:     n.nsn,
		right:   n.right,
		entries: append([]Entry[V](nil), n.entries[mid:]...),
		env:     geom.EmptyEnvelope(),
	}
	for i := range sib.entries {
		sib.env = sib.env.ExpandToInclude(sib.entries[i].env)
	}
	n.entries = n.entries[:mid:mid]
	n.env = geom.EmptyEnvelope()
	for i := range n.entries {
		n.env = n.env.ExpandToInclude(n.entries[i].env)
	}
	n.nsn = t.nextNSN()
	n.right = sib
	return sib
}

// splitInternal is splitLeaf for internal nodes; caller holds the
// node's write latch.
func (t *tree[V]) splitInternal(n *node[V]) *node[V] {
	mid := splitPoint(len(n.refs))
	sortByAxis(n.refs, longerAxisX(n.env), func(r *childRef[V]) geom.Envelope { return r.env })
	sib := &node[V]{
		nsn:   n.nsn,
		right: n.right,
		refs:  append([]childRef[V](nil), n.refs[mid:]...),
		env:   geom.EmptyEnvelope(),
	}
	for i := range sib.refs {
		sib.env = sib.env.ExpandToInclude(sib.refs[i].env)
	}
	n.refs = n.refs[:mid:mid]
	n.env = geom.EmptyEnvelope()
	for i := range n.refs {
		n.env = n.env.ExpandToInclude(n.refs[i].env)
	}
	n.nsn = t.nextNSN()
	n.right = sib
	return sib
}

// adjustUp walks the descent path bottom-up after an insert: refresh
// the parent's reference to the child (envelope and sequence number
// together, under the parent's write latch), splice in the reference
// to a new sibling, and cascade splits. A sibling left over at the
// top means the root split: a new root is built off to the side and
// swapped in atomically.
func (t *tree[V]) adjustUp(path []*node[V], child, sib *node[V]) {
	for i := len(path) - 1; i >= 0; i-- {
		parent := path[i]
		parent.mu.Lock()
		for j := range parent.refs {
			if parent.refs[j].ptr == child {
				parent.refs[j].env = child.env
				parent.refs[j].nsn = child.nsn
				if sib != nil {
					ref := childRef[V]{ptr: sib, env: sib.env, nsn: sib.nsn}
					parent.refs = append(parent.refs, childRef[V]{})
					copy(parent.refs[j+2:], parent.refs[j+1:])
					parent.refs[j+1] = ref
				}
				break
			}
		}
		parent.env = parent.env.ExpandToInclude(child.env)
		if sib != nil {
			parent.env = parent.env.ExpandToInclude(sib.env)
		}
		var parentSib *node[V]
		if len(parent.refs) > t.order {
			parentSib = t.splitInternal(parent)
		}
		parent.mu.Unlock()
		child, sib = parent, parentSib
	}
	if sib != nil {
		newRoot := &node[V]{
			nsn: t.nextNSN(),
			env: child.env.ExpandToInclude(sib.env),
			refs: []childRef[V]{
				{ptr: child, env: child.env, nsn: child.nsn},
				{ptr: sib, env: sib.env, nsn: sib.nsn},
			},
		}
		t.root.Store(&rootRef[V]{n: newRoot, nsn: newRoot.nsn})
	}
}

// rebuild returns a fresh tree holding only the live entries —
// tombstone reclamation by wholesale replacement. The old tree is
// never mutated again, so snapshots that captured it keep reading a
// frozen (and still correct) structure; every tombstone here has
// delGen <= the published generation, so no future snapshot can need
// one. Entries keep their addGen.
func (t *tree[V]) rebuild() *tree[V] {
	nt := newTree[V](t.order)
	for n := t.leftLeaf; n != nil; {
		n.mu.RLock()
		for i := range n.entries {
			if n.entries[i].delGen == 0 {
				e := n.entries[i]
				nt.insert(e)
			}
		}
		next := n.right
		n.mu.RUnlock()
		n = next
	}
	return nt
}

// ---- split helpers ----

func splitPoint(n int) int { return n / 2 }

func longerAxisX(env geom.Envelope) bool { return env.Width() >= env.Height() }

// sortByAxis orders items by envelope center along x (byX) or y —
// insertion sort, since slices are at most order+1 long.
func sortByAxis[T any](items []T, byX bool, env func(*T) geom.Envelope) {
	center := func(i int) float64 {
		c := env(&items[i]).Center()
		if byX {
			return c.X
		}
		return c.Y
	}
	for i := 1; i < len(items); i++ {
		for j := i; j > 0 && center(j) < center(j-1); j-- {
			items[j], items[j-1] = items[j-1], items[j]
		}
	}
}
