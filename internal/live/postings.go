package live

// Generation-tagged attribute postings for mutable datasets. Each
// partition keeps, per registered field, the distinct field values
// sorted ascending with the list of entries carrying each value —
// the mutable counterpart of attr.Index. Entries carry the same
// addGen/delGen tags as the tree entries, so a snapshot pinned at
// generation g probes exactly the records it would see scanning:
// inserts from later batches are invisible, deletes from later
// batches still show.
//
// Concurrency follows the tree's contract: one writer at a time
// (serialised by the dataset mutex) mutates in place — appends an
// entry, tombstones one — under the partition's write latch, readers
// probe under the read latch. Tombstone space is reclaimed by
// rebuilding a partition's postings wholesale and swapping the
// pointer into the writer's working set; published views keep the old
// object, so pinned snapshots never lose a tombstoned entry they can
// still see.

import (
	"fmt"
	"sort"
	"sync"

	"stark/internal/attr"
	"stark/internal/engine"
	"stark/internal/stobject"
)

// postEntry is one record's appearance in a field's postings list.
type postEntry[V any] struct {
	id     int64
	key    stobject.STObject
	val    V
	addGen uint64
	delGen uint64 // 0 while live
}

func (e *postEntry[V]) visibleAt(gen uint64) bool {
	return e.addGen <= gen && (e.delGen == 0 || e.delGen > gen)
}

// fieldPostings is one partition's postings over one field. byID is
// writer-only; everything else is read under the owning partAttrs
// latch.
type fieldPostings[V any] struct {
	field string
	get   func(V) attr.Value
	vals  []attr.Value        // distinct values, sorted ascending
	lists [][]*postEntry[V]   // lists[i] holds the entries valued vals[i]
	byID  map[int64]*postEntry[V]
	live  int
	dead  int
}

func newFieldPostings[V any](f attr.Field[V]) *fieldPostings[V] {
	return &fieldPostings[V]{field: f.Name, get: f.Get, byID: make(map[int64]*postEntry[V])}
}

func (fp *fieldPostings[V]) firstGE(v attr.Value) int {
	return sort.Search(len(fp.vals), func(i int) bool { return fp.vals[i].Compare(v) >= 0 })
}

func (fp *fieldPostings[V]) firstGT(v attr.Value) int {
	return sort.Search(len(fp.vals), func(i int) bool { return fp.vals[i].Compare(v) > 0 })
}

// insert files one record under its field value, creating the value's
// list when it is new.
func (fp *fieldPostings[V]) insert(id int64, key stobject.STObject, val V, gen uint64) {
	v := fp.get(val)
	e := &postEntry[V]{id: id, key: key, val: val, addGen: gen}
	i := fp.firstGE(v)
	if i < len(fp.vals) && fp.vals[i].Compare(v) == 0 {
		fp.lists[i] = append(fp.lists[i], e)
	} else {
		fp.vals = append(fp.vals, attr.Value{})
		copy(fp.vals[i+1:], fp.vals[i:])
		fp.vals[i] = v
		fp.lists = append(fp.lists, nil)
		copy(fp.lists[i+1:], fp.lists[i:])
		fp.lists[i] = []*postEntry[V]{e}
	}
	fp.byID[id] = e
	fp.live++
}

// tombstone marks the live entry with the given ID deleted at gen.
func (fp *fieldPostings[V]) tombstone(id int64, gen uint64) {
	e, ok := fp.byID[id]
	if !ok {
		return
	}
	e.delGen = gen
	delete(fp.byID, id)
	fp.live--
	fp.dead++
}

// spans resolves p to half-open ranges over the sorted distinct
// values, one per OpIn set member, at most one otherwise.
func (fp *fieldPostings[V]) spans(p attr.Pred) [][2]int {
	n := len(fp.vals)
	switch p.Op {
	case attr.OpEq:
		return [][2]int{{fp.firstGE(p.Lo), fp.firstGT(p.Lo)}}
	case attr.OpLt:
		return [][2]int{{0, fp.firstGE(p.Lo)}}
	case attr.OpLe:
		return [][2]int{{0, fp.firstGT(p.Lo)}}
	case attr.OpGt:
		return [][2]int{{fp.firstGT(p.Lo), n}}
	case attr.OpGe:
		return [][2]int{{fp.firstGE(p.Lo), n}}
	case attr.OpBetween:
		return [][2]int{{fp.firstGE(p.Lo), fp.firstGT(p.Hi)}}
	case attr.OpIn:
		spans := make([][2]int, 0, len(p.Set))
		for _, v := range p.Set {
			spans = append(spans, [2]int{fp.firstGE(v), fp.firstGT(v)})
		}
		return spans
	}
	return nil
}

// probe streams every entry matching p and visible at gen, returning
// the candidate count (before the visibility filter). The caller
// holds the partAttrs read latch.
func (fp *fieldPostings[V]) probe(p attr.Pred, gen uint64, yield func(e *postEntry[V]) bool) int {
	candidates := 0
	for _, sp := range fp.spans(p) {
		for _, list := range fp.lists[sp[0]:sp[1]] {
			candidates += len(list)
			for _, e := range list {
				if !e.visibleAt(gen) {
					continue
				}
				if !yield(e) {
					return candidates
				}
			}
		}
	}
	return candidates
}

// rebuild returns fresh postings holding only the live entries.
func (fp *fieldPostings[V]) rebuild(f attr.Field[V]) *fieldPostings[V] {
	nf := newFieldPostings(f)
	for _, list := range fp.lists {
		for _, e := range list {
			if e.delGen == 0 {
				nf.insert(e.id, e.key, e.val, e.addGen)
			}
		}
	}
	return nf
}

// partAttrs holds one partition's field postings behind a read-write
// latch. The single writer mutates under the write latch; snapshot
// probes read under the read latch; generation tags keep pinned reads
// repeatable despite the shared structure.
type partAttrs[V any] struct {
	mu     sync.RWMutex
	fields map[string]*fieldPostings[V]
}

// ---- Dataset writer side (caller holds d.mu) ----

// SetAttrFields registers the payload fields whose postings the
// dataset maintains across batches, backfilling them from the records
// already live. Calling it again replaces the field set (existing
// fields keep their postings; removed ones are dropped; new ones are
// backfilled). Snapshots taken before the call do not see the new
// fields — their probes fall back to scans.
func (d *Dataset[V]) SetAttrFields(fields []attr.Field[V]) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.attrFields = append([]attr.Field[V](nil), fields...)
	gen := d.view.Load().gen
	for p := range d.trees {
		old := d.attrs[p]
		pa := &partAttrs[V]{fields: make(map[string]*fieldPostings[V], len(fields))}
		for _, f := range fields {
			if old != nil {
				if fp, ok := old.fields[f.Name]; ok {
					pa.fields[f.Name] = fp
					continue
				}
			}
			fp := newFieldPostings(f)
			d.trees[p].search(everything, gen, true, func(e Entry[V]) bool {
				fp.insert(e.ID, e.Key, e.Value, e.addGen)
				return true
			})
			pa.fields[f.Name] = fp
		}
		d.attrs[p] = pa
	}
	d.publish(gen)
}

// attrInsert files rec into partition p's postings (no-op without
// registered fields).
func (d *Dataset[V]) attrInsert(p int, rec Record[V], gen uint64) {
	pa := d.attrs[p]
	if pa == nil {
		return
	}
	pa.mu.Lock()
	for _, fp := range pa.fields {
		fp.insert(rec.ID, rec.Key, rec.Value, gen)
	}
	pa.mu.Unlock()
}

// attrDelete tombstones id in partition p's postings.
func (d *Dataset[V]) attrDelete(p int, id int64, gen uint64) {
	pa := d.attrs[p]
	if pa == nil {
		return
	}
	pa.mu.Lock()
	for _, fp := range pa.fields {
		fp.tombstone(id, gen)
	}
	pa.mu.Unlock()
}

// attrVacuum rebuilds partitions whose postings carry more tombstones
// than live entries (past the shared floor), pointer-swapping the new
// object into the writer's working set so pinned snapshots keep the
// old one.
func (d *Dataset[V]) attrVacuum() {
	for p, pa := range d.attrs {
		if pa == nil {
			continue
		}
		needs := false
		for _, fp := range pa.fields {
			if fp.dead >= vacuumFloor && fp.dead > fp.live {
				needs = true
				break
			}
		}
		if !needs {
			continue
		}
		np := &partAttrs[V]{fields: make(map[string]*fieldPostings[V], len(pa.fields))}
		for _, f := range d.attrFields {
			if fp, ok := pa.fields[f.Name]; ok {
				np.fields[f.Name] = fp.rebuild(f)
			}
		}
		d.attrs[p] = np
	}
}

// ---- Snapshot reader side ----

// HasAttrField reports whether the pinned view maintains postings for
// the named field.
func (s *Snapshot[V]) HasAttrField(name string) bool {
	for _, pa := range s.v.attrs {
		if pa == nil {
			return false
		}
		pa.mu.RLock()
		_, ok := pa.fields[name]
		pa.mu.RUnlock()
		if !ok {
			return false
		}
	}
	return len(s.v.attrs) > 0
}

// AttrProbeRecorder probes the pinned view's postings for p over the
// visited partitions, refines each candidate with the payload-aware
// predicate, and returns the survivors per visited partition (aligned
// with visit). Probe metrics are charged to rec (nil selects the
// context's root recorder): one index probe per partition, the
// postings candidates as candidates refined.
func (s *Snapshot[V]) AttrProbeRecorder(
	rec *engine.Recorder,
	p attr.Pred,
	refine func(key stobject.STObject, value V) bool,
	visit []int,
) ([][]engine.Pair[stobject.STObject, V], error) {
	v := s.v
	rows := make([][]engine.Pair[stobject.STObject, V], len(visit))
	if rec == nil {
		rec = s.d.ctx.Recorder()
	}
	tasks := make([]int, len(visit))
	for i := range visit {
		tasks[i] = i
	}
	err := s.d.ctx.RunJobRecorder(nil, rec, tasks, func(i int) error {
		part := visit[i]
		pa := v.attrs[part]
		if pa == nil {
			return fmt.Errorf("live: no attribute postings for partition %d (SetAttrFields first)", part)
		}
		pa.mu.RLock()
		fp, ok := pa.fields[p.Field]
		if !ok {
			pa.mu.RUnlock()
			return fmt.Errorf("live: no attribute postings for field %q (SetAttrFields first)", p.Field)
		}
		// Candidates are copied out under the read latch; refinement
		// runs on the copies so arbitrary predicate work never holds
		// the latch.
		var cands []engine.Pair[stobject.STObject, V]
		candidates := fp.probe(p, v.gen, func(e *postEntry[V]) bool {
			cands = append(cands, engine.NewPair(e.key, e.val))
			return true
		})
		pa.mu.RUnlock()
		var out []engine.Pair[stobject.STObject, V]
		for _, kv := range cands {
			if refine(kv.Key, kv.Value) {
				out = append(out, kv)
			}
		}
		rec.IndexProbes(1)
		rec.CandidatesRefined(int64(candidates))
		rows[i] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}
