package live

import (
	"fmt"
	"sync"
	"sync/atomic"

	"stark/internal/attr"
	"stark/internal/engine"
	"stark/internal/geom"
	"stark/internal/partition"
	"stark/internal/stats"
	"stark/internal/stobject"
)

// vacuumFloor is the minimum tombstone count before a partition tree
// is considered for rebuilding.
const vacuumFloor = 64

// Record is one mutable-dataset record: a caller-chosen ID, the
// spatio-temporal key, and the payload.
type Record[V any] struct {
	ID    int64
	Key   stobject.STObject
	Value V
}

// OpKind selects what a mutation operation does.
type OpKind uint8

const (
	// OpInsert adds a record; the ID must not be live.
	OpInsert OpKind = iota + 1
	// OpUpsert replaces the record with the same ID, or inserts it.
	OpUpsert
	// OpDelete removes the record by ID; a missing ID is counted, not
	// an error.
	OpDelete
)

func (k OpKind) String() string {
	switch k {
	case OpInsert:
		return "insert"
	case OpUpsert:
		return "upsert"
	case OpDelete:
		return "delete"
	}
	return fmt.Sprintf("OpKind(%d)", uint8(k))
}

// Op is one mutation in a batch.
type Op[V any] struct {
	Kind OpKind
	Rec  Record[V]
}

// Insert builds an insert op.
func Insert[V any](id int64, key stobject.STObject, v V) Op[V] {
	return Op[V]{Kind: OpInsert, Rec: Record[V]{ID: id, Key: key, Value: v}}
}

// Upsert builds an upsert op.
func Upsert[V any](id int64, key stobject.STObject, v V) Op[V] {
	return Op[V]{Kind: OpUpsert, Rec: Record[V]{ID: id, Key: key, Value: v}}
}

// Delete builds a delete op.
func Delete[V any](id int64) Op[V] {
	return Op[V]{Kind: OpDelete, Rec: Record[V]{ID: id}}
}

// BatchResult reports what one Apply did. Gen is the generation the
// batch published; snapshots taken at Gen or later see every effect.
type BatchResult struct {
	Inserted int    `json:"inserted"`
	Replaced int    `json:"replaced"`
	Deleted  int    `json:"deleted"`
	Missing  int    `json:"missing"`
	Gen      uint64 `json:"generation"`
}

// viewState is the published, immutable snapshot state: the
// generation, the partition trees as of that generation, and the
// statistics summary. Swapped atomically as one value so a reader can
// never pair the generation of one batch with the trees or stats of
// another.
type viewState[V any] struct {
	gen   uint64
	trees []*tree[V]
	attrs []*partAttrs[V] // nil slots until SetAttrFields
	stats *stats.Summary
}

// Dataset is a mutable spatio-temporal dataset: records keyed by
// int64 ID, spatially partitioned, each partition indexed by a
// concurrent R-link tree. Mutations arrive in batches; each batch
// publishes a new generation atomically, and Snapshot pins a
// generation so readers stream a consistent view while later batches
// land.
type Dataset[V any] struct {
	name  string
	ctx   *engine.Context
	sp    partition.SpatialPartitioner // nil = single partition
	order int

	mu     sync.Mutex // serialises writer batches and vacuum
	trees  []*tree[V]
	partOf map[int64]int // live ID -> partition; writer-only
	inc    *stats.Incremental

	// attrFields and attrs are the maintained attribute postings (see
	// postings.go); attrs slots stay nil until SetAttrFields.
	attrFields []attr.Field[V]
	attrs      []*partAttrs[V]

	// onCommit, when set, runs inside Apply's critical section after
	// validation and before any mutation — the write-ahead point: an
	// error aborts the batch with nothing applied, so an acknowledged
	// batch is exactly one the hook accepted (and, when the hook is a
	// WAL append + fsync, one that is durable).
	onCommit func(gen uint64, ops []Op[V]) error

	view atomic.Pointer[viewState[V]]
}

// NewDataset returns an empty mutable dataset. sp selects the spatial
// layout (nil = one partition); order is the live-tree node capacity
// (<= 0 selects DefaultOrder).
func NewDataset[V any](ctx *engine.Context, name string, sp partition.SpatialPartitioner, order int) *Dataset[V] {
	if order <= 0 {
		order = DefaultOrder
	}
	n := 1
	if sp != nil {
		n = sp.NumPartitions()
	}
	d := &Dataset[V]{
		name:   name,
		ctx:    ctx,
		sp:     sp,
		order:  order,
		trees:  make([]*tree[V], n),
		attrs:  make([]*partAttrs[V], n),
		partOf: make(map[int64]int),
		inc:    stats.NewIncremental(n, 0),
	}
	for i := range d.trees {
		d.trees[i] = newTree[V](order)
	}
	d.view.Store(&viewState[V]{gen: 0, trees: append([]*tree[V](nil), d.trees...), stats: d.inc.Summary()})
	return d
}

// Name returns the dataset name.
func (d *Dataset[V]) Name() string { return d.name }

// Context returns the owning execution context.
func (d *Dataset[V]) Context() *engine.Context { return d.ctx }

// NumPartitions returns the partition count.
func (d *Dataset[V]) NumPartitions() int { return len(d.view.Load().trees) }

// Order returns the live-tree node capacity.
func (d *Dataset[V]) Order() int { return d.order }

// Generation returns the latest published generation.
func (d *Dataset[V]) Generation() uint64 { return d.view.Load().gen }

// Count returns the live record count at the latest generation.
func (d *Dataset[V]) Count() int64 { return d.view.Load().stats.Count }

func (d *Dataset[V]) partitionFor(key stobject.STObject) int {
	if d.sp == nil {
		return 0
	}
	return d.sp.PartitionFor(key)
}

// Apply validates and applies one mutation batch, publishing a new
// generation. The batch is atomic: validation runs BEFORE any
// mutation (so a rejected batch changes nothing), and the generation
// is published after every op landed (so concurrent snapshots see all
// of the batch or none of it). Returns what happened per op kind.
func (d *Dataset[V]) Apply(ops []Op[V]) (BatchResult, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.applyLocked(ops, true)
}

// OnCommit installs the commit hook (see the field comment). It must
// be set before the dataset takes writes; the hook must not call back
// into the dataset.
func (d *Dataset[V]) OnCommit(fn func(gen uint64, ops []Op[V]) error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.onCommit = fn
}

// applyLocked is Apply's body; the caller holds d.mu. hook selects
// whether the onCommit hook runs — replay paths skip it, because the
// batches they apply are by definition already durable.
func (d *Dataset[V]) applyLocked(ops []Op[V], hook bool) (BatchResult, error) {
	gen := d.view.Load().gen + 1
	res := BatchResult{Gen: gen}

	// Validation pass: after this loop the apply loop cannot fail, so
	// a batch can never be half-applied.
	seen := make(map[int64]struct{}, len(ops))
	for i, op := range ops {
		switch op.Kind {
		case OpInsert, OpUpsert:
			if op.Rec.Key.IsEmpty() {
				return BatchResult{}, fmt.Errorf("live: op %d (%s id=%d): empty geometry", i, op.Kind, op.Rec.ID)
			}
		case OpDelete:
		default:
			return BatchResult{}, fmt.Errorf("live: op %d: unknown kind %d", i, op.Kind)
		}
		if _, dup := seen[op.Rec.ID]; dup {
			return BatchResult{}, fmt.Errorf("live: op %d: duplicate id %d in batch", i, op.Rec.ID)
		}
		seen[op.Rec.ID] = struct{}{}
		if op.Kind == OpInsert {
			if _, exists := d.partOf[op.Rec.ID]; exists {
				return BatchResult{}, fmt.Errorf("live: op %d: insert of existing id %d (use upsert)", i, op.Rec.ID)
			}
		}
	}

	if hook && d.onCommit != nil {
		if err := d.onCommit(gen, ops); err != nil {
			return BatchResult{}, fmt.Errorf("live: commit hook for %q generation %d: %w", d.name, gen, err)
		}
	}

	for _, op := range ops {
		switch op.Kind {
		case OpInsert:
			d.applyInsert(op.Rec, gen)
			res.Inserted++
		case OpUpsert:
			if d.applyDelete(op.Rec.ID, gen) {
				res.Replaced++
			} else {
				res.Inserted++
			}
			d.applyInsert(op.Rec, gen)
		case OpDelete:
			if d.applyDelete(op.Rec.ID, gen) {
				res.Deleted++
			} else {
				res.Missing++
			}
		}
	}

	d.vacuum()
	d.publish(gen)

	m := d.ctx.Metrics()
	m.LiveBatches.Add(1)
	m.LiveMutations.Add(int64(len(ops)))
	return res, nil
}

func (d *Dataset[V]) applyInsert(rec Record[V], gen uint64) {
	p := d.partitionFor(rec.Key)
	d.trees[p].insert(Entry[V]{ID: rec.ID, Key: rec.Key, Value: rec.Value, addGen: gen})
	d.attrInsert(p, rec, gen)
	d.partOf[rec.ID] = p
	d.inc.ApplyInsert(p, rec.Key)
}

func (d *Dataset[V]) applyDelete(id int64, gen uint64) bool {
	p, ok := d.partOf[id]
	if !ok {
		return false
	}
	old, ok := d.trees[p].delete(id, gen)
	if ok {
		d.inc.ApplyDelete(p, old.Key)
	}
	d.attrDelete(p, id, gen)
	delete(d.partOf, id)
	return ok
}

// vacuum rebuilds partition trees whose tombstones outnumber their
// live entries (past a floor). The rebuilt tree replaces the old one
// only in the writer's working set and the NEXT published view; the
// old structure is never touched again, so snapshots holding it keep
// reading exactly what they pinned.
func (d *Dataset[V]) vacuum() {
	for p, t := range d.trees {
		if t.dead >= vacuumFloor && t.dead > t.live {
			d.trees[p] = t.rebuild()
		}
	}
	d.attrVacuum()
}

// publish swaps in the new view: generation, tree set, attribute
// postings and a deep-copied stats summary, as one atomic pointer
// store.
func (d *Dataset[V]) publish(gen uint64) {
	d.view.Store(&viewState[V]{
		gen:   gen,
		trees: append([]*tree[V](nil), d.trees...),
		attrs: append([]*partAttrs[V](nil), d.attrs...),
		stats: d.inc.Summary(),
	})
}

// ---- Recovery ----

// ReplayBatch re-applies one durably logged batch during recovery.
// gen is the generation the batch originally published. Replay is
// idempotent: a batch at or below the current generation is skipped
// (applied = false, no error) — it is already reflected in the
// checkpoint the dataset was restored from. A batch exactly one ahead
// is applied without invoking the commit hook. Anything further ahead
// is a gap — a missing log record — and returns an error rather than
// silently reconstructing a different history.
func (d *Dataset[V]) ReplayBatch(gen uint64, ops []Op[V]) (applied bool, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	cur := d.view.Load().gen
	switch {
	case gen <= cur:
		return false, nil
	case gen == cur+1:
		_, err := d.applyLocked(ops, false)
		return err == nil, err
	default:
		return false, fmt.Errorf("live: replay gap in %q: at generation %d, next log record is for %d", d.name, cur, gen)
	}
}

// Restore bulk-loads a checkpointed record set into an empty dataset
// and publishes it at gen, re-establishing generation continuity so
// subsequent ReplayBatch calls line up. It validates the whole set
// before touching the trees.
func (d *Dataset[V]) Restore(gen uint64, recs []Record[V]) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if v := d.view.Load(); v.gen != 0 || len(d.partOf) != 0 {
		return fmt.Errorf("live: Restore into non-empty dataset %q (generation %d)", d.name, v.gen)
	}
	seen := make(map[int64]struct{}, len(recs))
	for i, rec := range recs {
		if rec.Key.IsEmpty() {
			return fmt.Errorf("live: restore record %d (id=%d): empty geometry", i, rec.ID)
		}
		if _, dup := seen[rec.ID]; dup {
			return fmt.Errorf("live: restore record %d: duplicate id %d", i, rec.ID)
		}
		seen[rec.ID] = struct{}{}
	}
	for _, rec := range recs {
		d.applyInsert(rec, gen)
	}
	d.publish(gen)
	return nil
}

// ---- Snapshots ----

// Snapshot is a pinned, immutable view of the dataset at one
// generation. Reads through a snapshot are repeatable: batches
// published after the pin are invisible, including structural
// replacement by vacuum.
type Snapshot[V any] struct {
	d *Dataset[V]
	v *viewState[V]
}

// Snapshot pins the latest published generation.
func (d *Dataset[V]) Snapshot() *Snapshot[V] {
	return &Snapshot[V]{d: d, v: d.view.Load()}
}

// SnapshotBarrier pins the latest published generation after
// synchronising with the writer: it takes d.mu, so any batch whose
// commit hook already ran — i.e. was write-ahead logged — has
// finished publishing and is visible in the returned snapshot.
// Checkpointing depends on exactly that: after rotating the WAL it
// must not serialise a view that misses a batch logged to a
// pre-rotation segment, because those segments are deleted once the
// checkpoint commits. Plain Snapshot (a lock-free view load) has no
// such guarantee.
func (d *Dataset[V]) SnapshotBarrier() *Snapshot[V] {
	d.mu.Lock()
	defer d.mu.Unlock()
	return &Snapshot[V]{d: d, v: d.view.Load()}
}

// Gen returns the pinned generation.
func (s *Snapshot[V]) Gen() uint64 { return s.v.gen }

// Count returns the live record count at the pinned generation.
func (s *Snapshot[V]) Count() int64 { return s.v.stats.Count }

// NumPartitions returns the partition count.
func (s *Snapshot[V]) NumPartitions() int { return len(s.v.trees) }

// Stats returns the statistics summary as of the pinned generation.
// The summary is immutable once published; callers must not modify
// it.
func (s *Snapshot[V]) Stats() *stats.Summary { return s.v.stats }

// Each streams every record live at the pinned generation — ID, key
// and value — stopping early when fn returns false. Checkpointing
// uses it to serialise a dataset; unlike Tuples it exposes the record
// IDs, without which a restored dataset could not take deletes.
func (s *Snapshot[V]) Each(fn func(Record[V]) bool) {
	v := s.v
	for _, t := range v.trees {
		more := true
		t.search(everything, v.gen, true, func(e Entry[V]) bool {
			more = fn(Record[V]{ID: e.ID, Key: e.Key, Value: e.Value})
			return more
		})
		if !more {
			return
		}
	}
}

// everything is an envelope no finite envelope fails to intersect.
var everything = geom.Envelope{MinX: -1e308, MinY: -1e308, MaxX: 1e308, MaxY: 1e308}

// Tuples materialises the snapshot as a streaming engine dataset: one
// partition per tree, each scanned through the pinned generation
// filter. Every call creates a NEW engine dataset (fresh lineage ID),
// which is what turns generation bumps into plan-fingerprint changes;
// callers that want a stable fingerprint for an unchanged generation
// must memoise the result per generation (the public DSL does).
func (s *Snapshot[V]) Tuples() *engine.Dataset[engine.Pair[stobject.STObject, V]] {
	v := s.v
	name := fmt.Sprintf("%s@g%d", s.d.name, v.gen)
	return engine.NewStream(s.d.ctx, name, len(v.trees), func(p int, yield func(engine.Pair[stobject.STObject, V]) bool) error {
		v.trees[p].search(everything, v.gen, true, func(e Entry[V]) bool {
			return yield(engine.NewPair(e.Key, e.Value))
		})
		return nil
	})
}

// FilterPartitions probes the live trees of the given partitions with
// the prune envelope, refines candidates with the exact predicate,
// and returns the surviving tuples per visited partition (aligned
// with visit). It is the live counterpart of the persistent
// LiveIndex probe path and charges the same engine metrics.
func (s *Snapshot[V]) FilterPartitions(
	pruneEnv geom.Envelope,
	refine func(key stobject.STObject, value V) bool,
	visit []int,
) ([][]engine.Pair[stobject.STObject, V], error) {
	return s.FilterPartitionsRecorder(nil, pruneEnv, refine, visit)
}

// FilterPartitionsRecorder is FilterPartitions charging its probe
// metrics to rec instead of the context totals — the query service
// uses it to attribute live-tree probes to the requesting job. A nil
// rec selects the context's root recorder.
func (s *Snapshot[V]) FilterPartitionsRecorder(
	rec *engine.Recorder,
	pruneEnv geom.Envelope,
	refine func(key stobject.STObject, value V) bool,
	visit []int,
) ([][]engine.Pair[stobject.STObject, V], error) {
	v := s.v
	rows := make([][]engine.Pair[stobject.STObject, V], len(visit))
	if rec == nil {
		rec = s.d.ctx.Recorder()
	}
	tasks := make([]int, len(visit))
	for i := range visit {
		tasks[i] = i
	}
	err := s.d.ctx.RunJobRecorder(nil, rec, tasks, func(i int) error {
		p := visit[i]
		var out []engine.Pair[stobject.STObject, V]
		var probed, refined int64
		v.trees[p].search(pruneEnv, v.gen, false, func(e Entry[V]) bool {
			refined++
			if refine(e.Key, e.Value) {
				out = append(out, engine.NewPair(e.Key, e.Value))
			}
			return true
		})
		probed++
		rec.IndexProbes(probed)
		rec.CandidatesRefined(refined)
		rows[i] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}
