package live

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"stark/internal/engine"
	"stark/internal/geom"
	"stark/internal/partition"
	"stark/internal/stats"
	"stark/internal/stobject"
	"stark/internal/temporal"
)

// gridOver builds a ppd×ppd grid partitioner spanning [0,100)².
func gridOver(t testing.TB, ppd int) partition.SpatialPartitioner {
	t.Helper()
	sp, err := partition.NewGrid(ppd, []stobject.STObject{pt(0, 0), pt(100, 100)})
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

func collectTuples(t testing.TB, s *Snapshot[int]) map[int64]int {
	t.Helper()
	ds := s.Tuples()
	out := make(map[int64]int)
	for p := 0; p < ds.NumPartitions(); p++ {
		err := ds.EachPartition(p, func(kv engine.Pair[stobject.STObject, int]) bool {
			out[int64(kv.Value)]++
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return out
}

func TestApplyBatchSemantics(t *testing.T) {
	ctx := engine.NewContext(4)
	d := NewDataset[int](ctx, "t", gridOver(t, 2), 8)

	res, err := d.Apply([]Op[int]{
		Insert(1, pt(10, 10), 1),
		Insert(2, pt(90, 90), 2),
		Upsert(3, pt(50, 50), 3),
		Delete[int](99),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inserted != 3 || res.Replaced != 0 || res.Deleted != 0 || res.Missing != 1 || res.Gen != 1 {
		t.Fatalf("unexpected result %+v", res)
	}
	if d.Count() != 3 || d.Generation() != 1 {
		t.Fatalf("count=%d gen=%d, want 3/1", d.Count(), d.Generation())
	}

	res, err = d.Apply([]Op[int]{
		Upsert(1, pt(20, 20), 100),
		Delete[int](2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Replaced != 1 || res.Deleted != 1 || res.Gen != 2 {
		t.Fatalf("unexpected result %+v", res)
	}
	got := collectTuples(t, d.Snapshot())
	if len(got) != 2 || got[100] != 1 || got[3] != 1 {
		t.Fatalf("live set = %v, want values {100,3}", got)
	}

	if m := ctx.Metrics().Snapshot(); m.LiveBatches != 2 || m.LiveMutations != 6 {
		t.Fatalf("metrics batches/mutations = %d/%d, want 2/6", m.LiveBatches, m.LiveMutations)
	}
}

func TestApplyRejectsBadBatchesAtomically(t *testing.T) {
	ctx := engine.NewContext(2)
	d := NewDataset[int](ctx, "t", nil, 8)
	if _, err := d.Apply([]Op[int]{Insert(1, pt(1, 1), 1)}); err != nil {
		t.Fatal(err)
	}

	bad := [][]Op[int]{
		{Insert(2, pt(2, 2), 2), Insert(2, pt(3, 3), 3)},            // duplicate in batch
		{Insert(5, pt(5, 5), 5), Insert(1, pt(1, 1), 1)},            // insert of existing
		{Insert(6, stobject.STObject{}, 6)},                         // empty geometry
		{Upsert(7, pt(7, 7), 7), {Kind: OpKind(9)}},                 // unknown kind
		{Insert(8, pt(8, 8), 8), Delete[int](8)},                    // same id twice
	}
	for i, ops := range bad {
		if _, err := d.Apply(ops); err == nil {
			t.Fatalf("batch %d: expected error", i)
		}
	}
	// Nothing may have leaked from the rejected batches.
	if d.Generation() != 1 || d.Count() != 1 {
		t.Fatalf("gen=%d count=%d after rejected batches, want 1/1", d.Generation(), d.Count())
	}
	got := collectTuples(t, d.Snapshot())
	if len(got) != 1 || got[1] != 1 {
		t.Fatalf("live set = %v, want {1}", got)
	}
}

func TestSnapshotPinsGenerationAcrossVacuum(t *testing.T) {
	ctx := engine.NewContext(2)
	d := NewDataset[int](ctx, "t", nil, 8)

	var ops []Op[int]
	for i := 0; i < 300; i++ {
		ops = append(ops, Insert(int64(i), pt(float64(i%20), float64(i/20)), i))
	}
	if _, err := d.Apply(ops); err != nil {
		t.Fatal(err)
	}
	pinned := d.Snapshot()

	// Delete most records: tombstones exceed live, so vacuum rebuilds.
	ops = ops[:0]
	for i := 0; i < 250; i++ {
		ops = append(ops, Delete[int](int64(i)))
	}
	if _, err := d.Apply(ops); err != nil {
		t.Fatal(err)
	}
	if tr := d.view.Load().trees[0]; tr.dead != 0 {
		t.Fatalf("expected vacuum to rebuild (dead=%d live=%d)", tr.dead, tr.live)
	}

	if got := collectTuples(t, pinned); len(got) != 300 {
		t.Fatalf("pinned snapshot sees %d records after vacuum, want 300", len(got))
	}
	if got := collectTuples(t, d.Snapshot()); len(got) != 50 {
		t.Fatalf("fresh snapshot sees %d records, want 50", len(got))
	}
}

func TestIncrementalStatsMatchCollect(t *testing.T) {
	ctx := engine.NewContext(4)
	d := NewDataset[int](ctx, "t", gridOver(t, 3), 8)
	rng := rand.New(rand.NewSource(11))

	nextID := int64(0)
	liveIDs := make([]int64, 0)
	for batch := 0; batch < 20; batch++ {
		var ops []Op[int]
		for i := 0; i < 40; i++ {
			id := nextID
			nextID++
			key := stobject.NewWithTime(geom.NewPoint(rng.Float64()*100, rng.Float64()*100), temporal.Instant(rng.Int63n(1000)))
			ops = append(ops, Op[int]{Kind: OpInsert, Rec: Record[int]{ID: id, Key: key, Value: int(id)}})
			liveIDs = append(liveIDs, id)
		}
		for i := 0; i < 10 && len(liveIDs) > 0; i++ {
			j := rng.Intn(len(liveIDs))
			id := liveIDs[j]
			liveIDs = append(liveIDs[:j], liveIDs[j+1:]...)
			// Skip if the ID is already in this batch.
			dup := false
			for _, op := range ops {
				if op.Rec.ID == id {
					dup = true
				}
			}
			if dup {
				continue
			}
			ops = append(ops, Delete[int](id))
		}
		if _, err := d.Apply(ops); err != nil {
			t.Fatal(err)
		}
	}

	snap := d.Snapshot()
	inc := snap.Stats()
	exact, err := stats.Collect(snap.Tuples(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if inc.Count != exact.Count {
		t.Fatalf("incremental count %d != exact %d", inc.Count, exact.Count)
	}
	if inc.Timed != exact.Timed {
		t.Fatalf("incremental timed %d != exact %d", inc.Timed, exact.Timed)
	}
	if !inc.MBR.ContainsEnvelope(exact.MBR) {
		t.Fatalf("incremental MBR %v does not contain exact %v", inc.MBR, exact.MBR)
	}
	if inc.TimeMin > exact.TimeMin || inc.TimeMax < exact.TimeMax {
		t.Fatalf("incremental time extent [%d,%d] does not contain exact [%d,%d]",
			inc.TimeMin, inc.TimeMax, exact.TimeMin, exact.TimeMax)
	}
	for p := range inc.Parts {
		if inc.Parts[p].Count != exact.Parts[p].Count {
			t.Fatalf("partition %d: incremental count %d != exact %d", p, inc.Parts[p].Count, exact.Parts[p].Count)
		}
		if exact.Parts[p].Count > 0 && !inc.Parts[p].MBR.ContainsEnvelope(exact.Parts[p].MBR) {
			t.Fatalf("partition %d: incremental MBR does not contain exact MBR", p)
		}
	}
	if inc.Grid == nil {
		t.Fatal("incremental summary has no histogram")
	}
	if got, want := inc.Grid.Total, float64(exact.Count); got != want {
		t.Fatalf("histogram total %v != live count %v", got, want)
	}
}

func TestFilterPartitionsMatchesBruteForce(t *testing.T) {
	ctx := engine.NewContext(4)
	sp := gridOver(t, 3)
	d := NewDataset[int](ctx, "t", sp, 6)
	rng := rand.New(rand.NewSource(3))

	type rec struct{ x, y float64 }
	recs := make(map[int64]rec)
	var ops []Op[int]
	for i := 0; i < 1500; i++ {
		r := rec{rng.Float64() * 100, rng.Float64() * 100}
		recs[int64(i)] = r
		ops = append(ops, Insert(int64(i), pt(r.x, r.y), i))
	}
	if _, err := d.Apply(ops); err != nil {
		t.Fatal(err)
	}

	q := geom.NewEnvelope(20, 20, 70, 55)
	snap := d.Snapshot()
	visit := make([]int, snap.NumPartitions())
	for i := range visit {
		visit[i] = i
	}
	rows, err := snap.FilterPartitions(q, func(key stobject.STObject, _ int) bool {
		c := key.Centroid()
		return q.ContainsPoint(c.X, c.Y)
	}, visit)
	if err != nil {
		t.Fatal(err)
	}
	var got []int64
	for _, part := range rows {
		for _, kv := range part {
			got = append(got, int64(kv.Value))
		}
	}
	var want []int64
	for id, r := range recs {
		if q.ContainsPoint(r.x, r.y) {
			want = append(want, id)
		}
	}
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if len(got) != len(want) {
		t.Fatalf("probe found %d records, brute force %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("probe result diverges at %d: %d != %d", i, got[i], want[i])
		}
	}
}

// TestHammerSnapshotIsolation runs concurrent batch writers... no —
// ONE writer applying deterministic batches while many readers pin
// snapshots and assert batch atomicity: at any published generation g
// the visible set is exactly the deterministic state after g batches.
// Run with -race this is the subsystem's main concurrency gate.
func TestHammerSnapshotIsolation(t *testing.T) {
	const (
		batches   = 120
		batchSize = 25
	)
	ctx := engine.NewContext(8)
	d := NewDataset[int](ctx, "hammer", gridOver(t, 2), 5)

	// expectedCount(g) for the deterministic schedule below: batch k
	// (1-based) inserts batchSize records and deletes the first
	// batchSize/2 records of batch k-2.
	expectedCount := func(g uint64) int {
		n := int(g) * batchSize
		if g >= 3 {
			n -= (int(g) - 2) * (batchSize / 2)
		}
		return n
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errCh := make(chan error, 16)
	for r := 0; r < 6; r++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := d.Snapshot()
				g := snap.Gen()
				want := expectedCount(g)
				switch worker % 3 {
				case 0: // full stream
					got := 0
					ds := snap.Tuples()
					for p := 0; p < ds.NumPartitions(); p++ {
						err := ds.EachPartition(p, func(engine.Pair[stobject.STObject, int]) bool {
							got++
							return true
						})
						if err != nil {
							errCh <- err
							return
						}
					}
					if got != want {
						errCh <- fmt.Errorf("gen %d: streamed %d records, want %d (mixed generations?)", g, got, want)
						return
					}
				case 1: // stats view must agree with the pinned generation
					if c := snap.Count(); int(c) != want {
						errCh <- fmt.Errorf("gen %d: stats count %d, want %d", g, c, want)
						return
					}
				case 2: // index probe over everything
					visit := make([]int, snap.NumPartitions())
					for i := range visit {
						visit[i] = i
					}
					rows, err := snap.FilterPartitions(everything, func(stobject.STObject, int) bool { return true }, visit)
					if err != nil {
						errCh <- err
						return
					}
					got := 0
					for _, part := range rows {
						got += len(part)
					}
					if got != want {
						errCh <- fmt.Errorf("gen %d: probe saw %d records, want %d", g, got, want)
						return
					}
				}
			}
		}(r)
	}

	rng := rand.New(rand.NewSource(1))
	for k := 1; k <= batches; k++ {
		var ops []Op[int]
		base := int64((k - 1) * batchSize)
		for i := 0; i < batchSize; i++ {
			ops = append(ops, Insert(base+int64(i), pt(rng.Float64()*100, rng.Float64()*100), int(base)+i))
		}
		if k >= 3 {
			victim := int64((k - 3) * batchSize)
			for i := 0; i < batchSize/2; i++ {
				ops = append(ops, Delete[int](victim+int64(i)))
			}
		}
		res, err := d.Apply(ops)
		if err != nil {
			t.Fatal(err)
		}
		if res.Gen != uint64(k) {
			t.Fatalf("batch %d published gen %d", k, res.Gen)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	// Differential gate: the mutated dataset must equal a dataset
	// rebuilt from scratch from the surviving records.
	finalSnap := d.Snapshot()
	got := collectTuples(t, finalSnap)
	rebuilt := NewDataset[int](ctx, "rebuilt", gridOver(t, 2), 5)
	var ops []Op[int]
	rng = rand.New(rand.NewSource(1))
	for k := 1; k <= batches; k++ {
		base := int64((k - 1) * batchSize)
		for i := 0; i < batchSize; i++ {
			x, y := rng.Float64()*100, rng.Float64()*100
			deleted := false
			if k <= batches-2 && int64(i) < batchSize/2 {
				deleted = true // batch k+2 deleted it
			}
			if !deleted {
				ops = append(ops, Insert(base+int64(i), pt(x, y), int(base)+i))
			}
		}
	}
	if _, err := rebuilt.Apply(ops); err != nil {
		t.Fatal(err)
	}
	want := collectTuples(t, rebuilt.Snapshot())
	if len(got) != len(want) {
		t.Fatalf("mutated dataset has %d records, rebuilt-from-scratch %d", len(got), len(want))
	}
	for id := range want {
		if got[id] != 1 {
			t.Fatalf("mutated dataset misses record %d present in rebuild", id)
		}
	}
}

func TestOnCommitHookOrdering(t *testing.T) {
	ctx := engine.NewContext(2)
	d := NewDataset[int](ctx, "t", nil, 8)

	var hookGen uint64
	var hookOps int
	fail := false
	d.OnCommit(func(gen uint64, ops []Op[int]) error {
		hookGen = gen
		hookOps = len(ops)
		// The hook runs before mutation: nothing from this batch may be
		// visible yet.
		if d.Generation() >= gen {
			t.Errorf("hook at gen %d but %d already published", gen, d.Generation())
		}
		if fail {
			return fmt.Errorf("disk full")
		}
		return nil
	})

	if _, err := d.Apply([]Op[int]{Insert(1, pt(1, 1), 1)}); err != nil {
		t.Fatal(err)
	}
	if hookGen != 1 || hookOps != 1 {
		t.Fatalf("hook saw gen=%d ops=%d", hookGen, hookOps)
	}

	// A hook error must abort the batch with nothing applied.
	fail = true
	if _, err := d.Apply([]Op[int]{Insert(2, pt(2, 2), 2)}); err == nil {
		t.Fatal("hook error not propagated")
	}
	if d.Count() != 1 || d.Generation() != 1 {
		t.Fatalf("aborted batch leaked: count=%d gen=%d", d.Count(), d.Generation())
	}

	// An invalid batch must be rejected BEFORE the hook runs — nothing
	// unloggable may reach the log.
	hookGen = 0
	if _, err := d.Apply([]Op[int]{Insert(1, pt(3, 3), 3)}); err == nil {
		t.Fatal("duplicate insert accepted")
	}
	if hookGen != 0 {
		t.Fatal("hook ran for a batch that failed validation")
	}
}

// TestSnapshotBarrierIncludesCommittedBatch reproduces the checkpoint
// race: a writer whose commit hook already ran (the batch is in the
// WAL) but whose generation has not published yet must be waited for
// by SnapshotBarrier — a checkpoint snapshotting through the plain
// lock-free Snapshot would miss the batch while truncating the log
// segment that holds its only copy.
func TestSnapshotBarrierIncludesCommittedBatch(t *testing.T) {
	ctx := engine.NewContext(2)
	d := NewDataset[int](ctx, "t", nil, 8)

	entered := make(chan struct{})
	release := make(chan struct{})
	d.OnCommit(func(uint64, []Op[int]) error {
		close(entered) // the batch is now "logged"...
		<-release      // ...but publishing is stalled
		return nil
	})
	done := make(chan BatchResult, 1)
	go func() {
		res, err := d.Apply([]Op[int]{Insert(1, pt(10, 10), 1)})
		if err != nil {
			t.Error(err)
		}
		done <- res
	}()
	<-entered

	// The lock-free snapshot misses the in-flight batch — fine for
	// queries, fatal for checkpoints.
	if got := d.Snapshot().Gen(); got != 0 {
		t.Fatalf("lock-free snapshot pinned generation %d mid-commit", got)
	}

	snaps := make(chan *Snapshot[int], 1)
	go func() { snaps <- d.SnapshotBarrier() }()
	select {
	case s := <-snaps:
		t.Fatalf("SnapshotBarrier returned generation %d before the committed batch published", s.Gen())
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	res := <-done
	s := <-snaps
	if s.Gen() != res.Gen || s.Count() != 1 {
		t.Fatalf("barrier snapshot gen=%d count=%d, batch published gen %d", s.Gen(), s.Count(), res.Gen)
	}
}

func TestReplayBatchIdempotentAndGapDetecting(t *testing.T) {
	ctx := engine.NewContext(2)
	d := NewDataset[int](ctx, "t", gridOver(t, 2), 8)
	if _, err := d.Apply([]Op[int]{Insert(1, pt(10, 10), 1)}); err != nil {
		t.Fatal(err)
	}

	// Replaying the already-applied generation is a no-op.
	applied, err := d.ReplayBatch(1, []Op[int]{Insert(1, pt(10, 10), 1)})
	if err != nil || applied {
		t.Fatalf("replay of applied gen: applied=%v err=%v", applied, err)
	}
	if d.Count() != 1 {
		t.Fatalf("idempotent replay changed count to %d", d.Count())
	}

	// The next generation applies, and must not invoke the hook.
	d.OnCommit(func(uint64, []Op[int]) error { return fmt.Errorf("hook must not run on replay") })
	applied, err = d.ReplayBatch(2, []Op[int]{Insert(2, pt(20, 20), 2)})
	if err != nil || !applied {
		t.Fatalf("replay of next gen: applied=%v err=%v", applied, err)
	}
	if d.Count() != 2 || d.Generation() != 2 {
		t.Fatalf("count=%d gen=%d after replay", d.Count(), d.Generation())
	}

	// A generation gap is corruption, not something to paper over.
	if _, err := d.ReplayBatch(5, []Op[int]{Insert(9, pt(5, 5), 9)}); err == nil {
		t.Fatal("generation gap accepted")
	}
}

func TestRestoreReestablishesContinuity(t *testing.T) {
	ctx := engine.NewContext(2)
	d := NewDataset[int](ctx, "t", gridOver(t, 2), 8)
	recs := []Record[int]{
		{ID: 10, Key: pt(10, 10), Value: 100},
		{ID: 20, Key: pt(80, 80), Value: 200},
	}
	if err := d.Restore(7, recs); err != nil {
		t.Fatal(err)
	}
	if d.Generation() != 7 || d.Count() != 2 {
		t.Fatalf("gen=%d count=%d after restore", d.Generation(), d.Count())
	}
	// Log records at or below the checkpoint generation skip; the next
	// one applies.
	if applied, err := d.ReplayBatch(7, []Op[int]{Insert(10, pt(10, 10), 100)}); err != nil || applied {
		t.Fatalf("stale replay: applied=%v err=%v", applied, err)
	}
	if applied, err := d.ReplayBatch(8, []Op[int]{Delete[int](10)}); err != nil || !applied {
		t.Fatalf("suffix replay: applied=%v err=%v", applied, err)
	}
	if d.Count() != 1 {
		t.Fatalf("count=%d after replayed delete", d.Count())
	}

	// Restore refuses non-empty datasets and invalid record sets.
	if err := d.Restore(9, recs); err == nil {
		t.Fatal("Restore into non-empty dataset accepted")
	}
	d2 := NewDataset[int](ctx, "t2", nil, 8)
	if err := d2.Restore(1, []Record[int]{{ID: 1, Key: pt(1, 1)}, {ID: 1, Key: pt(2, 2)}}); err == nil {
		t.Fatal("duplicate IDs in restore set accepted")
	}
	if err := d2.Restore(1, []Record[int]{{ID: 1}}); err == nil {
		t.Fatal("empty geometry in restore set accepted")
	}
	if d2.Generation() != 0 || d2.Count() != 0 {
		t.Fatalf("failed restore mutated dataset: gen=%d count=%d", d2.Generation(), d2.Count())
	}
}

func TestSnapshotEach(t *testing.T) {
	ctx := engine.NewContext(2)
	d := NewDataset[int](ctx, "t", gridOver(t, 2), 8)
	if _, err := d.Apply([]Op[int]{
		Insert(1, pt(10, 10), 100),
		Insert(2, pt(90, 10), 200),
		Insert(3, pt(10, 90), 300),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Apply([]Op[int]{Delete[int](2)}); err != nil {
		t.Fatal(err)
	}
	snap := d.Snapshot()
	got := map[int64]int{}
	snap.Each(func(r Record[int]) bool {
		got[r.ID] = r.Value
		return true
	})
	if len(got) != 2 || got[1] != 100 || got[3] != 300 {
		t.Fatalf("Each saw %v", got)
	}
	// Early stop.
	n := 0
	snap.Each(func(Record[int]) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early stop visited %d records", n)
	}
}
