package live

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"stark/internal/geom"
	"stark/internal/stobject"
)

func pt(x, y float64) stobject.STObject { return stobject.New(geom.NewPoint(x, y)) }

// collectIDs streams a search into an ID multiset.
func collectIDs(t *tree[int], q geom.Envelope, gen uint64, all bool) map[int64]int {
	out := make(map[int64]int)
	t.search(q, gen, all, func(e Entry[int]) bool {
		out[e.ID]++
		return true
	})
	return out
}

func TestTreeSearchMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := newTree[int](5) // tiny order to force deep split cascades
	type rec struct {
		id   int64
		x, y float64
	}
	var recs []rec
	for i := 0; i < 2000; i++ {
		r := rec{id: int64(i), x: rng.Float64() * 100, y: rng.Float64() * 100}
		recs = append(recs, r)
		tr.insert(Entry[int]{ID: r.id, Key: pt(r.x, r.y), Value: i, addGen: 1})
	}
	if tr.live != 2000 {
		t.Fatalf("live = %d, want 2000", tr.live)
	}
	for trial := 0; trial < 50; trial++ {
		x1, y1 := rng.Float64()*100, rng.Float64()*100
		q := geom.NewEnvelope(x1, y1, x1+rng.Float64()*30, y1+rng.Float64()*30)
		want := make(map[int64]int)
		for _, r := range recs {
			if q.ContainsPoint(r.x, r.y) {
				want[r.id] = 1
			}
		}
		got := collectIDs(tr, q, 1, false)
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d ids, want %d", trial, len(got), len(want))
		}
		for id, n := range got {
			if n != 1 {
				t.Fatalf("trial %d: id %d returned %d times", trial, id, n)
			}
			if want[id] != 1 {
				t.Fatalf("trial %d: unexpected id %d", trial, id)
			}
		}
	}
}

func TestTreeTombstoneVisibility(t *testing.T) {
	tr := newTree[int](4)
	for i := 0; i < 100; i++ {
		tr.insert(Entry[int]{ID: int64(i), Key: pt(float64(i), 0), Value: i, addGen: 1})
	}
	// Tombstone the even IDs at generation 2.
	for i := 0; i < 100; i += 2 {
		if _, ok := tr.delete(int64(i), 2); !ok {
			t.Fatalf("delete(%d) missed", i)
		}
	}
	if _, ok := tr.delete(0, 3); ok {
		t.Fatal("double delete reported success")
	}
	at1 := collectIDs(tr, geom.Envelope{}, 1, true)
	if len(at1) != 100 {
		t.Fatalf("gen 1 sees %d entries, want 100 (delete at gen 2 must be invisible)", len(at1))
	}
	at2 := collectIDs(tr, geom.Envelope{}, 2, true)
	if len(at2) != 50 {
		t.Fatalf("gen 2 sees %d entries, want 50", len(at2))
	}
	for id := range at2 {
		if id%2 == 0 {
			t.Fatalf("gen 2 sees deleted id %d", id)
		}
	}
	if tr.live != 50 || tr.dead != 50 {
		t.Fatalf("live/dead = %d/%d, want 50/50", tr.live, tr.dead)
	}
}

func TestTreeRebuildDropsTombstones(t *testing.T) {
	tr := newTree[int](4)
	for i := 0; i < 200; i++ {
		tr.insert(Entry[int]{ID: int64(i), Key: pt(float64(i%20), float64(i/20)), Value: i, addGen: uint64(1 + i/50)})
	}
	for i := 0; i < 200; i += 3 {
		tr.delete(int64(i), 9)
	}
	nt := tr.rebuild()
	if nt.live != tr.live || nt.dead != 0 {
		t.Fatalf("rebuilt live/dead = %d/%d, want %d/0", nt.live, nt.dead, tr.live)
	}
	want := collectIDs(tr, geom.Envelope{}, 9, true)
	got := collectIDs(nt, geom.Envelope{}, 9, true)
	if len(got) != len(want) {
		t.Fatalf("rebuilt sees %d entries, want %d", len(got), len(want))
	}
	for id := range want {
		if got[id] != 1 {
			t.Fatalf("rebuilt lost id %d", id)
		}
	}
	// addGen must survive the rebuild: a historical generation reads
	// the same subset from both trees.
	oldAt2 := collectIDs(tr, geom.Envelope{}, 2, true)
	newAt2 := collectIDs(nt, geom.Envelope{}, 2, true)
	for id := range newAt2 {
		if id%3 == 0 {
			// Tombstoned at gen 9 <= published, dropped by rebuild:
			// the rebuilt tree serves generations >= 9 only, so the
			// old subset check below skips them.
			continue
		}
		if oldAt2[id] != 1 {
			t.Fatalf("rebuilt shows id %d at gen 2 that old tree does not", id)
		}
	}
	// Owners map of the new tree targets the new leaves.
	for id, leaf := range nt.owners {
		found := false
		leaf.mu.RLock()
		for i := range leaf.entries {
			if leaf.entries[i].ID == id && leaf.entries[i].delGen == 0 {
				found = true
			}
		}
		leaf.mu.RUnlock()
		if !found {
			t.Fatalf("owners[%d] points at a leaf without the live entry", id)
		}
	}
}

// TestTreeReadersNeverMissOrDouble is the R-link protocol gate: a
// writer inserts entries one generation at a time while readers pin a
// published generation mid-flight and full-scan. A reader must see
// EXACTLY the entries of its pinned generation — no entry missed
// because a split moved it, none seen twice because a chase
// re-visited it.
func TestTreeReadersNeverMissOrDouble(t *testing.T) {
	const total = 4000
	tr := newTree[int](5)
	var published atomic.Uint64

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan string, 8)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				gen := published.Load()
				got := make(map[int64]int)
				if rng.Intn(2) == 0 {
					tr.search(geom.Envelope{}, gen, true, func(e Entry[int]) bool {
						got[e.ID]++
						return true
					})
					if uint64(len(got)) != gen {
						errs <- "full scan at gen %d saw %d entries"
						return
					}
				} else {
					q := geom.NewEnvelope(10, 10, 60, 60)
					tr.search(q, gen, false, func(e Entry[int]) bool {
						got[e.ID]++
						return true
					})
				}
				for id, n := range got {
					if n != 1 {
						errs <- "duplicate visit"
						return
					}
					if uint64(id) >= gen {
						errs <- "saw entry from an unpublished generation"
						return
					}
				}
			}
		}(int64(r))
	}

	rng := rand.New(rand.NewSource(99))
	for i := 0; i < total; i++ {
		// Entry i becomes visible at generation i+1; IDs equal their
		// insertion index so readers can verify exact prefixes.
		tr.insert(Entry[int]{
			ID:     int64(i),
			Key:    pt(rng.Float64()*100, rng.Float64()*100),
			Value:  i,
			addGen: uint64(i + 1),
		})
		published.Store(uint64(i + 1))
	}
	close(stop)
	wg.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}

	got := collectIDs(tr, geom.Envelope{}, total, true)
	if len(got) != total {
		t.Fatalf("final scan sees %d entries, want %d", len(got), total)
	}
}
