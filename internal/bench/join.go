package bench

// The join-strategy experiment behind `stark-bench -experiment join`:
// every physical join strategy (auto, pairs, broadcast, copartition)
// is timed over every left-side layout (unpartitioned, Grid, BSP) at
// two predicate selectivities, joining N points against an N/10
// overlapping right side. The JSON rows carry the actual task, pair,
// tree and shuffle counters from the join report, so the artefact
// shows not just that broadcast beats pair enumeration on ns/op but
// *why* — fewer scheduled tasks than the L×R enumeration.

import (
	"fmt"

	"stark/internal/core"
	"stark/internal/engine"
	"stark/internal/partition"
	"stark/internal/stobject"
)

// JoinStrategyRow is one (layout, strategy, selectivity) cell of the
// join experiment.
type JoinStrategyRow struct {
	Layout      string  // none | grid | bsp
	Strategy    string  // requested strategy
	Ran         string  // strategy that actually executed
	Selectivity string  // low | high (the eps label)
	Eps         float64 // the withinDistance eps
	Seconds     float64
	NsPerOp     int64
	Results     int64
	Tasks       int
	TotalPairs  int
	PairsPruned int
	TreesBuilt  int64
	Shuffled    int64
}

// JoinStrategies runs the join experiment.
func JoinStrategies(cfg Config) ([]JoinStrategyRow, error) {
	cfg = cfg.withDefaults()
	ctx := engine.NewContext(cfg.Parallelism)
	if cfg.Observe != nil {
		cfg.Observe(ctx)
	}
	leftT := cfg.tuples()
	rightN := cfg.N / 10
	if rightN < 10 {
		rightN = 10
	}
	rightCfg := cfg
	rightCfg.N = rightN
	rightCfg.Seed = cfg.Seed + 1
	rightT := rightCfg.tuples()

	objs := make([]stobject.STObject, len(leftT))
	for i, kv := range leftT {
		objs[i] = kv.Key
	}
	layouts := []struct {
		name  string
		build func() (partition.SpatialPartitioner, error)
	}{
		{"none", func() (partition.SpatialPartitioner, error) { return nil, nil }},
		{"grid", func() (partition.SpatialPartitioner, error) { return partition.NewGrid(8, objs) }},
		{"bsp", func() (partition.SpatialPartitioner, error) {
			return partition.NewBSP(partition.BSPConfig{MaxCost: cfg.N/32 + 1}, objs)
		}},
	}
	strategies := []struct {
		name     string
		strategy core.JoinStrategy
	}{
		{"auto", core.JoinAuto},
		{"pairs", core.JoinPairs},
		{"broadcast", core.JoinBroadcast},
		{"copartition", core.JoinCoPartition},
	}
	selectivities := []struct {
		name string
		eps  float64
	}{
		{"low", cfg.Eps},
		{"high", cfg.Eps * 8},
	}

	right := core.Wrap(engine.Parallelize(ctx, rightT, ctx.Parallelism()))
	var rows []JoinStrategyRow
	for _, lay := range layouts {
		sp, err := lay.build()
		if err != nil {
			return nil, fmt.Errorf("bench: join layout %s: %w", lay.name, err)
		}
		left := core.Wrap(engine.Parallelize(ctx, leftT, ctx.Parallelism()))
		if sp != nil {
			left, err = left.PartitionBy(sp)
			if err != nil {
				return nil, fmt.Errorf("bench: join layout %s: %w", lay.name, err)
			}
		}
		left.Cache()
		if _, err := left.Count(); err != nil { // warm the cache once
			return nil, err
		}
		for _, sel := range selectivities {
			pred := stobject.WithinDistancePredicate(sel.eps, nil)
			for _, st := range strategies {
				var (
					rep core.JoinReport
					n   int64
				)
				dur, err := timed(func() error {
					var err error
					n, err = core.JoinCount(left, right, core.JoinOptions{
						Predicate:      pred,
						IndexOrder:     -1,
						ProbeExpansion: sel.eps,
						Strategy:       st.strategy,
						Report:         &rep,
					})
					return err
				})
				if err != nil {
					return nil, fmt.Errorf("bench: join %s/%s/%s: %w", lay.name, st.name, sel.name, err)
				}
				rows = append(rows, JoinStrategyRow{
					Layout:      lay.name,
					Strategy:    st.name,
					Ran:         rep.Strategy.String(),
					Selectivity: sel.name,
					Eps:         sel.eps,
					Seconds:     dur.Seconds(),
					NsPerOp:     dur.Nanoseconds(),
					Results:     n,
					Tasks:       rep.Tasks,
					TotalPairs:  rep.TotalPairs,
					PairsPruned: rep.PairsPruned,
					TreesBuilt:  rep.TreesBuilt,
					Shuffled:    rep.Shuffled,
				})
			}
		}
	}
	return rows, nil
}

// FormatJoinStrategies renders the join experiment as a table.
func FormatJoinStrategies(rows []JoinStrategyRow) string {
	out := fmt.Sprintf("%-6s %-12s %-12s %-5s %12s %10s %8s %8s %8s\n",
		"Layout", "Strategy", "Ran", "Sel", "Time [ms]", "Results", "Tasks", "Pairs", "Shuffle")
	for _, r := range rows {
		out += fmt.Sprintf("%-6s %-12s %-12s %-5s %12.2f %10d %8d %8d %8d\n",
			r.Layout, r.Strategy, r.Ran, r.Selectivity,
			r.Seconds*1000, r.Results, r.Tasks, r.TotalPairs, r.Shuffled)
	}
	return out
}
