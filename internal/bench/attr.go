package bench

import (
	"fmt"
	"math/rand"

	"stark"
	"stark/internal/engine"
)

// This file implements the `attr` experiment: the same attribute
// predicate executed through the typed attr path (per-partition
// secondary indexes, planner-chosen access path) versus an opaque
// full-scan closure, at low and high selectivity, with and without a
// spatial predicate in the chain. It quantifies what the typed
// predicates buy: the closure must test every row (and blinds the
// planner), while the typed form probes the sorted postings and only
// refines candidates.

// AttrRow is one measured (variant × selectivity × spatial) cell.
type AttrRow struct {
	Variant         string  // attr-index | closure
	Sel             string  // low | high selectivity class
	Spatial         string  // none | window
	Selectivity     float64 // measured: results / N
	NsPerOp         float64 // mean ns per query
	Results         int64
	ElementsScanned int64 // per query, from engine metrics
}

// attrBenchRec is the experiment's payload: a rare category for the
// selective cell, a broad numeric range for the unselective one.
type attrBenchRec struct {
	ID   int
	Cat  string
	Fare float64
}

var attrBenchCats = []string{"common-a", "common-b", "common-c", "common-d"}

func attrBenchSchema() *stark.AttrSchema[attrBenchRec] {
	return stark.NewAttrSchema[attrBenchRec]().
		Int64("id", func(r attrBenchRec) int64 { return int64(r.ID) }).
		String("cat", func(r attrBenchRec) string { return r.Cat }).
		Float64("fare", func(r attrBenchRec) float64 { return r.Fare })
}

// Attr runs the experiment. The attr-index variant prebuilds its
// postings outside the measured window (a long-lived service pays the
// build once per hot field — Dataset.AttrIndex), and result counts
// are cross-checked across variants per cell — a faster wrong answer
// fails the run.
func Attr(cfg Config) ([]AttrRow, error) {
	cfg = cfg.withDefaults()
	const reps = 5
	rng := rand.New(rand.NewSource(cfg.Seed))

	tuples := make([]stark.Tuple[attrBenchRec], cfg.N)
	for i := range tuples {
		r := attrBenchRec{ID: i, Cat: attrBenchCats[rng.Intn(len(attrBenchCats))], Fare: rng.Float64() * 100}
		if rng.Intn(100) == 0 { // ~1% carry the rare category
			r.Cat = "rare"
		}
		key := stark.NewSTObject(stark.NewPoint(rng.Float64()*1000, rng.Float64()*1000))
		tuples[i] = stark.NewTuple(key, r)
	}
	window := stark.NewSTObject(stark.NewEnvelope(200, 200, 800, 800).ToPolygon())
	schema := attrBenchSchema()

	type variant struct {
		name  string
		prep  func(d *stark.Dataset[attrBenchRec]) *stark.Dataset[attrBenchRec]
		chain func(d *stark.Dataset[attrBenchRec], sel string) *stark.Dataset[attrBenchRec]
	}
	variants := []variant{
		{"attr-index", func(d *stark.Dataset[attrBenchRec]) *stark.Dataset[attrBenchRec] {
			return d.WithSchema(schema).AttrIndex("cat", "fare")
		}, func(d *stark.Dataset[attrBenchRec], sel string) *stark.Dataset[attrBenchRec] {
			if sel == "low" {
				return d.FilterEq("cat", "rare")
			}
			return d.FilterRange("fare", 0.0, 90.0)
		}},
		{"closure", func(d *stark.Dataset[attrBenchRec]) *stark.Dataset[attrBenchRec] {
			return d
		}, func(d *stark.Dataset[attrBenchRec], sel string) *stark.Dataset[attrBenchRec] {
			if sel == "low" {
				return d.FilterValues(func(r attrBenchRec) bool { return r.Cat == "rare" })
			}
			return d.FilterValues(func(r attrBenchRec) bool { return r.Fare >= 0 && r.Fare <= 90 })
		}},
	}

	var rows []AttrRow
	want := map[string]int64{}
	for _, v := range variants {
		ctx := engine.NewContext(cfg.Parallelism)
		if cfg.Observe != nil {
			cfg.Observe(ctx)
		}
		base := v.prep(stark.Parallelize(ctx, tuples, 4*ctx.Parallelism()).PartitionBy(stark.Grid(4)))
		if err := base.Run(); err != nil {
			return nil, err
		}
		for _, sel := range []string{"low", "high"} {
			for _, sp := range []string{"none", "window"} {
				chain := base
				if sp == "window" {
					chain = chain.Intersects(window)
				}
				q := v.chain(chain, sel)
				// One unmeasured run warms the memoised plan.
				if _, err := q.Count(); err != nil {
					return nil, err
				}
				before := ctx.Metrics().Snapshot()
				var n int64
				dur, err := timed(func() error {
					for r := 0; r < reps; r++ {
						var err error
						n, err = q.Count()
						if err != nil {
							return err
						}
					}
					return nil
				})
				if err != nil {
					return nil, err
				}
				after := ctx.Metrics().Snapshot()
				key := sel + "/" + sp
				if prev, ok := want[key]; !ok {
					want[key] = n
				} else if n != prev {
					return nil, fmt.Errorf("bench: attr variant %s on %s returned %d results, want %d",
						v.name, key, n, prev)
				}
				rows = append(rows, AttrRow{
					Variant:         v.name,
					Sel:             sel,
					Spatial:         sp,
					Selectivity:     float64(n) / float64(cfg.N),
					NsPerOp:         float64(dur.Nanoseconds()) / reps,
					Results:         n,
					ElementsScanned: after.Sub(before).ElementsScanned / reps,
				})
			}
		}
	}
	return rows, nil
}

// FormatAttr renders the rows as the experiment's text table.
func FormatAttr(rows []AttrRow) string {
	out := fmt.Sprintf("%-12s %-6s %-8s %12s %14s %10s %12s\n",
		"Variant", "Sel", "Spatial", "Selectivity", "ns/op", "Results", "Scanned")
	for _, r := range rows {
		out += fmt.Sprintf("%-12s %-6s %-8s %12.4f %14.0f %10d %12d\n",
			r.Variant, r.Sel, r.Spatial, r.Selectivity, r.NsPerOp, r.Results, r.ElementsScanned)
	}
	return out
}
