package bench

import (
	"fmt"
	"math"
	"sort"

	"stark"
	"stark/internal/engine"
	"stark/internal/workload"
)

// This file implements the `optimizer` experiment: the same
// spatio-temporal filter executed naive (Optimize(false): caller
// order, no statistics, partitioner-extent pruning only) versus
// planned (the cost-based planner's stats-driven partition pruning,
// predicate ordering and index-mode selection), over unindexed and
// persistently indexed data. It quantifies the gap the planner buys
// on clustered data that no caller hand-tuned — the ROADMAP's
// "no tuning knobs per request" north star.

// OptimizerRow is one measured configuration.
type OptimizerRow struct {
	Variant         string  // naive | planned
	Indexed         bool    // persistent partition R-trees present
	Seconds         float64 // mean seconds per query
	Results         int64
	ElementsScanned int64 // per query, from engine metrics
	TasksSkipped    int64 // per query, from engine metrics
}

// Optimizer runs the experiment. The dataset is skewed (clustered)
// and sorted by coarse spatial cell before parallelisation, modelling
// ingest-order locality: contiguous-range partitions are spatially
// coherent, so stats-based pruning has structure to exploit — without
// any caller-specified partitioner.
func Optimizer(cfg Config) ([]OptimizerRow, error) {
	cfg = cfg.withDefaults()
	wc := workload.Config{
		N: cfg.N, Seed: cfg.Seed, Dist: workload.Skewed,
		Width: 1000, Height: 1000, Clusters: 8, Spread: 12,
	}
	tuples := workload.SpatialTuples(wc)
	sort.SliceStable(tuples, func(i, j int) bool {
		ci, cj := tuples[i].Key.Centroid(), tuples[j].Key.Centroid()
		xi, xj := math.Floor(ci.X/50), math.Floor(cj.X/50)
		if xi != xj {
			return xi < xj
		}
		return math.Floor(ci.Y/50) < math.Floor(cj.Y/50)
	})
	// Query window around the first cluster in sorted order: real
	// data to find, most partitions prunable.
	c := tuples[0].Key.Centroid()
	q := stark.NewSTObject(stark.NewEnvelope(c.X-30, c.Y-30, c.X+30, c.Y+30).ToPolygon())

	const reps = 3
	var rows []OptimizerRow
	var wantResults int64 = -1
	for _, indexed := range []bool{false, true} {
		for _, variant := range []string{"naive", "planned"} {
			ctx := engine.NewContext(cfg.Parallelism)
			if cfg.Observe != nil {
				cfg.Observe(ctx)
			}
			base := stark.Parallelize(ctx, tuples, 4*ctx.Parallelism())
			if indexed {
				base = base.Index(stark.Persistent(16))
				// Build the trees outside the measured window, like a
				// long-lived service would.
				if err := base.Run(); err != nil {
					return nil, err
				}
			}
			if variant == "naive" {
				base = base.Optimize(false)
			}
			before := ctx.Metrics().Snapshot()
			var n int64
			dur, err := timed(func() error {
				for r := 0; r < reps; r++ {
					var err error
					n, err = base.Intersects(q).Count()
					if err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			after := ctx.Metrics().Snapshot()
			d := after.Sub(before)
			if wantResults < 0 {
				wantResults = n
			} else if n != wantResults {
				return nil, fmt.Errorf("bench: optimizer variant %s/indexed=%v returned %d results, want %d",
					variant, indexed, n, wantResults)
			}
			rows = append(rows, OptimizerRow{
				Variant: variant, Indexed: indexed,
				Seconds:         dur.Seconds() / reps,
				Results:         n,
				ElementsScanned: d.ElementsScanned / reps,
				TasksSkipped:    d.TasksSkipped / reps,
			})
		}
	}
	return rows, nil
}
