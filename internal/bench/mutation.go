package bench

// The mutation experiment measures mutable live datasets end to end
// over HTTP: NDJSON batches against POST /api/v1/ingest, with
// concurrent queries reading snapshot-pinned generations. Three
// phases:
//
//   - ingest:       sequential insert batches into an empty mutable
//     dataset — the write path's baseline throughput (R-link tree
//     inserts + incremental stats + generation publish per batch).
//   - ingest+query: upsert batches land while concurrent clients
//     query the latest snapshot — the serving-shaped blend. Every
//     batch bumps the generation, so queries re-plan instead of
//     hitting the result cache; their latency prices the snapshot
//     machinery, not cached bytes.
//   - delete:       batch deletes of half the records — tombstoning
//     plus the vacuum rebuilds it triggers.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"time"

	"stark/internal/engine"
	"stark/internal/server"
	"stark/internal/workload"
)

// MutationRow is one phase of the mutation experiment.
type MutationRow struct {
	Phase     string  `json:"phase"`
	Batches   int     `json:"batches"`
	BatchSize int     `json:"batchSize"`
	Mutations int     `json:"mutations"`
	OpsPerSec float64 `json:"opsPerSec"`
	// Batch latency of the ingest requests.
	BatchP50Ms float64 `json:"batchP50Ms"`
	BatchP99Ms float64 `json:"batchP99Ms"`
	// Concurrent query latency (ingest+query phase only).
	Queries    int     `json:"queries,omitempty"`
	QueryP50Ms float64 `json:"queryP50Ms,omitempty"`
	QueryP99Ms float64 `json:"queryP99Ms,omitempty"`
	// Dataset state after the phase.
	Generation uint64 `json:"generation"`
	LiveCount  int64  `json:"liveCount"`
}

// mutationBatchNDJSON renders one ingest batch over events[lo:hi].
func mutationBatchNDJSON(events []workload.Event, lo, hi int, op string) []byte {
	var b bytes.Buffer
	for _, ev := range events[lo:hi] {
		line, _ := json.Marshal(map[string]interface{}{
			"op": op, "id": ev.ID, "category": ev.Category, "time": ev.Time, "wkt": ev.WKT,
		})
		b.Write(line)
		b.WriteByte('\n')
	}
	return b.Bytes()
}

// mutationDeleteNDJSON renders one delete batch for events[lo:hi].
func mutationDeleteNDJSON(events []workload.Event, lo, hi int) []byte {
	var b bytes.Buffer
	for _, ev := range events[lo:hi] {
		fmt.Fprintf(&b, `{"op":"delete","id":%d}`+"\n", ev.ID)
	}
	return b.Bytes()
}

type mutationIngestResult struct {
	Generation uint64 `json:"generation"`
	Count      int64  `json:"count"`
}

func postIngest(client *http.Client, base string, body []byte) (mutationIngestResult, error) {
	resp, err := client.Post(base+"/api/v1/ingest?dataset=live", "application/x-ndjson", bytes.NewReader(body))
	if err != nil {
		return mutationIngestResult{}, err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		return mutationIngestResult{}, fmt.Errorf("ingest status %d: %s", resp.StatusCode, msg)
	}
	var r mutationIngestResult
	if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
		return mutationIngestResult{}, err
	}
	return r, nil
}

// percentiles summarises a latency sample as (p50, p99).
func percentiles(ds []time.Duration) (p50, p99 float64) {
	if len(ds) == 0 {
		return 0, 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return ms(sorted[len(sorted)/2]), ms(sorted[len(sorted)*99/100])
}

// Mutation runs the mutable-dataset experiment and returns one row
// per phase.
func Mutation(cfg Config) ([]MutationRow, error) {
	cfg = cfg.withDefaults()
	ctx := engine.NewContext(cfg.Parallelism)
	if cfg.Observe != nil {
		cfg.Observe(ctx)
	}
	srv := server.NewService(ctx, server.Options{})
	if err := srv.Register(server.DatasetSpec{
		Name: "live", Mutable: true, Partitioner: "grid:8", Width: 1000, Height: 1000,
	}); err != nil {
		return nil, err
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	batchSize := 500
	if cfg.N < 4*batchSize {
		batchSize = cfg.N/4 + 1
	}
	batches := cfg.N / batchSize
	if batches < 2 {
		batches = 2
	}
	events := workload.Events(workload.Config{
		N: batches * batchSize, Seed: cfg.Seed, Dist: cfg.Dist,
		Width: 1000, Height: 1000, TimeRange: 1_000_000,
	})
	// Upsert payload: the same IDs at fresh positions, so the second
	// phase replaces every record it touches.
	moved := workload.Events(workload.Config{
		N: batches * batchSize, Seed: cfg.Seed + 1, Dist: cfg.Dist,
		Width: 1000, Height: 1000, TimeRange: 1_000_000,
	})
	for i := range moved {
		moved[i].ID = events[i].ID
	}

	var rows []MutationRow
	runBatches := func(phase string, bodies [][]byte) (MutationRow, error) {
		lat := make([]time.Duration, len(bodies))
		var last mutationIngestResult
		start := time.Now()
		for i, body := range bodies {
			t0 := time.Now()
			res, err := postIngest(client, ts.URL, body)
			if err != nil {
				return MutationRow{}, fmt.Errorf("%s batch %d: %w", phase, i, err)
			}
			lat[i] = time.Since(t0)
			last = res
		}
		wall := time.Since(start).Seconds()
		p50, p99 := percentiles(lat)
		muts := 0
		for _, b := range bodies {
			muts += bytes.Count(b, []byte("\n"))
		}
		return MutationRow{
			Phase: phase, Batches: len(bodies), BatchSize: batchSize,
			Mutations: muts, OpsPerSec: float64(muts) / wall,
			BatchP50Ms: p50, BatchP99Ms: p99,
			Generation: last.Generation, LiveCount: last.Count,
		}, nil
	}

	// Phase 1: sequential inserts into the empty dataset.
	bodies := make([][]byte, batches)
	for k := range bodies {
		bodies[k] = mutationBatchNDJSON(events, k*batchSize, (k+1)*batchSize, "insert")
	}
	row, err := runBatches("ingest", bodies)
	if err != nil {
		return nil, err
	}
	rows = append(rows, row)

	// Phase 2: upsert batches with concurrent snapshot queries.
	for k := range bodies {
		bodies[k] = mutationBatchNDJSON(moved, k*batchSize, (k+1)*batchSize, "upsert")
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 7))
	queryBodies := make([][]byte, 16)
	for i := range queryBodies {
		q := queryWindow(rng)
		q.Dataset = "live"
		b, err := json.Marshal(q)
		if err != nil {
			return nil, err
		}
		queryBodies[i] = b
	}
	var (
		done     bool
		doneMu   sync.Mutex
		qwg      sync.WaitGroup
		qmu      sync.Mutex
		qlat     []time.Duration
		firstErr error
	)
	readers := ctx.Parallelism()
	for r := 0; r < readers; r++ {
		qwg.Add(1)
		go func(r int) {
			defer qwg.Done()
			for i := r; ; i++ {
				doneMu.Lock()
				stop := done
				doneMu.Unlock()
				if stop {
					return
				}
				t0 := time.Now()
				resp, err := client.Post(ts.URL+"/api/v1/query", "application/json",
					bytes.NewReader(queryBodies[i%len(queryBodies)]))
				if err == nil {
					_, _ = io.Copy(io.Discard, resp.Body)
					_ = resp.Body.Close()
					if resp.StatusCode != http.StatusOK &&
						resp.StatusCode != http.StatusTooManyRequests &&
						resp.StatusCode != http.StatusServiceUnavailable {
						err = fmt.Errorf("query status %d", resp.StatusCode)
					}
				}
				qmu.Lock()
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
					qmu.Unlock()
					return
				}
				qlat = append(qlat, time.Since(t0))
				qmu.Unlock()
			}
		}(r)
	}
	row, err = runBatches("ingest+query", bodies)
	doneMu.Lock()
	done = true
	doneMu.Unlock()
	qwg.Wait()
	if err != nil {
		return nil, err
	}
	if firstErr != nil {
		return nil, firstErr
	}
	row.Queries = len(qlat)
	row.QueryP50Ms, row.QueryP99Ms = percentiles(qlat)
	rows = append(rows, row)

	// Phase 3: delete the first half, batch by batch (the dead/live
	// crossover triggers vacuum rebuilds along the way).
	half := batches / 2
	if half == 0 {
		half = 1
	}
	bodies = bodies[:0]
	for k := 0; k < half; k++ {
		bodies = append(bodies, mutationDeleteNDJSON(events, k*batchSize, (k+1)*batchSize))
	}
	row, err = runBatches("delete", bodies)
	if err != nil {
		return nil, err
	}
	rows = append(rows, row)
	return rows, nil
}
