package bench

import (
	"fmt"

	"stark"
	"stark/internal/engine"
	"stark/internal/workload"
)

// This file implements the `layout` experiment: the same range filter
// executed through the naive row scan (exact predicate on every
// record) versus the columnar sidecar (batched SoA envelope kernels,
// exact predicate only on survivors), with and without the Hilbert
// row sort, on clustered and uniform data at two selectivities. It
// quantifies the gap the columnar scan engine buys on exactly the
// workload the tentpole targets: unindexed clustered data under a
// selective window, where branch-free coarse kernels discard almost
// every row before the exact geometry test runs.

// LayoutRow is one measured (layout × distribution × window) cell.
type LayoutRow struct {
	Layout          string  // row | columnar | columnar-hilbert
	Dist            string  // clustered | uniform
	Window          string  // low | high selectivity class
	Selectivity     float64 // measured: results / N
	NsPerOp         float64 // mean ns per query
	Results         int64
	ElementsScanned int64 // per query, from engine metrics
	KernelBatches   int64 // per query; 0 for the row layout
	KernelSurvivors int64 // per query; 0 for the row layout
}

// Layout runs the experiment. Every variant gets a fresh engine
// context so metrics deltas are attributable, the sidecar is built
// outside the measured window (a long-lived service builds it once),
// and result counts are cross-checked across layouts per cell — a
// faster wrong answer fails the run.
func Layout(cfg Config) ([]LayoutRow, error) {
	cfg = cfg.withDefaults()
	const reps = 3
	var rows []LayoutRow

	type variant struct {
		name string
		prep func(d *stark.Dataset[int]) *stark.Dataset[int]
	}
	variants := []variant{
		{"row", func(d *stark.Dataset[int]) *stark.Dataset[int] { return d.Optimize(false) }},
		{"columnar", func(d *stark.Dataset[int]) *stark.Dataset[int] { return d.ColumnarLayout(false) }},
		{"columnar-hilbert", func(d *stark.Dataset[int]) *stark.Dataset[int] { return d.ColumnarLayout(true) }},
	}

	for _, dist := range []struct {
		name string
		wc   workload.Config
	}{
		{"clustered", workload.Config{
			N: cfg.N, Seed: cfg.Seed, Dist: workload.Skewed,
			Width: 1000, Height: 1000, Clusters: 8, Spread: 12,
		}},
		{"uniform", workload.Config{
			N: cfg.N, Seed: cfg.Seed, Dist: workload.Uniform, Width: 1000, Height: 1000,
		}},
	} {
		tuples := workload.SpatialTuples(dist.wc)
		// Low selectivity centres a tight window on a real record (so
		// clustered runs hit a cluster, not empty sea); high selectivity
		// covers most of the space.
		c := tuples[0].Key.Centroid()
		windows := []struct {
			name string
			q    stark.STObject
		}{
			{"low", stark.NewSTObject(stark.NewEnvelope(c.X-15, c.Y-15, c.X+15, c.Y+15).ToPolygon())},
			{"high", stark.NewSTObject(stark.NewEnvelope(100, 100, 900, 900).ToPolygon())},
		}
		want := map[string]int64{}
		for _, v := range variants {
			ctx := engine.NewContext(cfg.Parallelism)
			if cfg.Observe != nil {
				cfg.Observe(ctx)
			}
			base := v.prep(stark.Parallelize(ctx, tuples, 4*ctx.Parallelism()))
			// Materialise the layout (columnar sidecar build) outside
			// the measured window.
			if err := base.Run(); err != nil {
				return nil, err
			}
			for _, w := range windows {
				q := base.Intersects(w.q)
				before := ctx.Metrics().Snapshot()
				var n int64
				dur, err := timed(func() error {
					for r := 0; r < reps; r++ {
						var err error
						n, err = q.Count()
						if err != nil {
							return err
						}
					}
					return nil
				})
				if err != nil {
					return nil, err
				}
				after := ctx.Metrics().Snapshot()
				d := after.Sub(before)
				key := dist.name + "/" + w.name
				if prev, ok := want[key]; !ok {
					want[key] = n
				} else if n != prev {
					return nil, fmt.Errorf("bench: layout %s on %s returned %d results, want %d",
						v.name, key, n, prev)
				}
				rows = append(rows, LayoutRow{
					Layout:          v.name,
					Dist:            dist.name,
					Window:          w.name,
					Selectivity:     float64(n) / float64(cfg.N),
					NsPerOp:         float64(dur.Nanoseconds()) / reps,
					Results:         n,
					ElementsScanned: d.ElementsScanned / reps,
					KernelBatches:   d.KernelBatches / reps,
					KernelSurvivors: d.KernelSurvivors / reps,
				})
			}
		}
	}
	return rows, nil
}

// FormatLayout renders the rows as the experiment's text table.
func FormatLayout(rows []LayoutRow) string {
	out := fmt.Sprintf("%-18s %-10s %-6s %12s %14s %10s %12s %10s %10s\n",
		"Layout", "Data", "Window", "Sel", "ns/op", "Results", "Scanned", "Batches", "Survivors")
	for _, r := range rows {
		out += fmt.Sprintf("%-18s %-10s %-6s %12.4f %14.0f %10d %12d %10d %10d\n",
			r.Layout, r.Dist, r.Window, r.Selectivity, r.NsPerOp, r.Results,
			r.ElementsScanned, r.KernelBatches, r.KernelSurvivors)
	}
	return out
}
