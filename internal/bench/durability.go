package bench

// The durability experiment prices the write-ahead log: the same
// HTTP ingest workload runs against an in-memory service and a
// durable one (every batch fsync'd to the WAL before the ack), so the
// overhead column is the real cost of crash safety per batch. It then
// measures the two recovery paths a restart can take — full WAL
// replay from an empty directory, and checkpoint restore with an
// empty suffix — because the checkpoint interval is exactly the knob
// trading the first for the second.

import (
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"time"

	"stark/internal/engine"
	"stark/internal/server"
	"stark/internal/workload"
)

// DurabilityRow is one mode of the durability experiment.
type DurabilityRow struct {
	// Mode is "memory", "wal", "replay" or "checkpoint". The first two
	// are ingest runs; the last two time a recovery.
	Mode      string  `json:"mode"`
	Batches   int     `json:"batches,omitempty"`
	BatchSize int     `json:"batchSize,omitempty"`
	Mutations int     `json:"mutations,omitempty"`
	OpsPerSec float64 `json:"opsPerSec,omitempty"`
	// Batch latency of the acknowledged ingest requests.
	BatchP50Ms float64 `json:"batchP50Ms,omitempty"`
	BatchP99Ms float64 `json:"batchP99Ms,omitempty"`
	// OverheadPct is the wal-mode throughput loss vs memory mode.
	OverheadPct float64 `json:"overheadPct,omitempty"`
	// WALBytes is the on-disk log size the run produced.
	WALBytes int64 `json:"walBytes,omitempty"`
	// CheckpointMs times writing the checkpoint (checkpoint mode).
	CheckpointMs float64 `json:"checkpointMs,omitempty"`
	// RecoveryMs times EnableDurability on the crashed directory.
	RecoveryMs       float64 `json:"recoveryMs,omitempty"`
	ReplayedBatches  int     `json:"replayedBatches,omitempty"`
	RestoredDatasets int     `json:"restoredDatasets,omitempty"`
	// Recovered dataset state, as a correctness cross-check.
	Generation uint64 `json:"generation,omitempty"`
	LiveCount  int64  `json:"liveCount,omitempty"`
}

// dirBytes sums the sizes of the durability files under dir.
func dirBytes(dir string, patterns ...string) int64 {
	var total int64
	for _, pat := range patterns {
		matches, _ := filepath.Glob(filepath.Join(dir, pat))
		for _, m := range matches {
			if st, err := os.Stat(m); err == nil {
				total += st.Size()
			}
		}
	}
	return total
}

// Durability runs the WAL-overhead and recovery experiment.
func Durability(cfg Config) ([]DurabilityRow, error) {
	cfg = cfg.withDefaults()

	batchSize := 500
	if cfg.N < 4*batchSize {
		batchSize = cfg.N/4 + 1
	}
	batches := cfg.N / batchSize
	if batches < 2 {
		batches = 2
	}
	events := workload.Events(workload.Config{
		N: batches * batchSize, Seed: cfg.Seed, Dist: cfg.Dist,
		Width: 1000, Height: 1000, TimeRange: 1_000_000,
	})
	bodies := make([][]byte, batches)
	for k := range bodies {
		bodies[k] = mutationBatchNDJSON(events, k*batchSize, (k+1)*batchSize, "insert")
	}

	// ingest drives the full batch sequence over HTTP against srv and
	// returns the throughput row.
	ingest := func(mode string, srv *server.Server) (DurabilityRow, error) {
		ts := httptest.NewServer(srv)
		defer ts.Close()
		client := ts.Client()
		lat := make([]time.Duration, len(bodies))
		var last mutationIngestResult
		start := time.Now()
		for i, body := range bodies {
			t0 := time.Now()
			res, err := postIngest(client, ts.URL, body)
			if err != nil {
				return DurabilityRow{}, fmt.Errorf("%s batch %d: %w", mode, i, err)
			}
			lat[i] = time.Since(t0)
			last = res
		}
		wall := time.Since(start).Seconds()
		p50, p99 := percentiles(lat)
		muts := batches * batchSize
		return DurabilityRow{
			Mode: mode, Batches: batches, BatchSize: batchSize, Mutations: muts,
			OpsPerSec: float64(muts) / wall, BatchP50Ms: p50, BatchP99Ms: p99,
			Generation: last.Generation, LiveCount: last.Count,
		}, nil
	}
	register := func(srv *server.Server) error {
		return srv.Register(server.DatasetSpec{
			Name: "live", Mutable: true, Partitioner: "grid:8", Width: 1000, Height: 1000,
		})
	}
	newService := func() *server.Server {
		ctx := engine.NewContext(cfg.Parallelism)
		if cfg.Observe != nil {
			cfg.Observe(ctx)
		}
		return server.NewService(ctx, server.Options{})
	}

	// Mode 1: in-memory baseline.
	mem := newService()
	if err := register(mem); err != nil {
		return nil, err
	}
	memRow, err := ingest("memory", mem)
	if err != nil {
		return nil, err
	}

	// Mode 2: WAL on — every batch is fsync'd before its ack.
	dir, err := os.MkdirTemp("", "stark-bench-wal-")
	if err != nil {
		return nil, err
	}
	defer func() { _ = os.RemoveAll(dir) }()
	durable := newService()
	if _, err := durable.EnableDurability(dir, 0); err != nil {
		return nil, err
	}
	if err := register(durable); err != nil {
		return nil, err
	}
	walRow, err := ingest("wal", durable)
	if err != nil {
		return nil, err
	}
	walRow.WALBytes = dirBytes(dir, "wal-*.log")
	if memRow.OpsPerSec > 0 {
		walRow.OverheadPct = 100 * (1 - walRow.OpsPerSec/memRow.OpsPerSec)
	}

	// Mode 3: crash (the WAL handle is simply abandoned — every ack'd
	// batch is already on disk) and time a full-replay recovery.
	rec := newService()
	t0 := time.Now()
	info, err := rec.EnableDurability(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("replay recovery: %w", err)
	}
	replayRow := DurabilityRow{
		Mode:            "replay",
		RecoveryMs:      float64(time.Since(t0).Microseconds()) / 1000,
		ReplayedBatches: info.Batches,
	}
	if got, ok := rec.DatasetInfo("live"); ok {
		replayRow.Generation = got.LiveGeneration
		replayRow.LiveCount = got.Events
	}
	if replayRow.Generation != walRow.Generation || replayRow.LiveCount != walRow.LiveCount {
		return nil, fmt.Errorf("replay recovered gen=%d count=%d, ingested gen=%d count=%d",
			replayRow.Generation, replayRow.LiveCount, walRow.Generation, walRow.LiveCount)
	}

	// Mode 4: checkpoint the recovered state, then time the restore
	// path (checkpoint + empty WAL suffix).
	t0 = time.Now()
	if err := rec.Checkpoint(); err != nil {
		return nil, err
	}
	ckptMs := float64(time.Since(t0).Microseconds()) / 1000
	if err := rec.CloseDurability(); err != nil {
		return nil, err
	}
	rec2 := newService()
	t0 = time.Now()
	info2, err := rec2.EnableDurability(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("checkpoint recovery: %w", err)
	}
	ckptRow := DurabilityRow{
		Mode:             "checkpoint",
		CheckpointMs:     ckptMs,
		RecoveryMs:       float64(time.Since(t0).Microseconds()) / 1000,
		ReplayedBatches:  info2.Batches,
		RestoredDatasets: info2.Datasets,
		WALBytes:         dirBytes(dir, "ckpt-*", "manifest-*"),
	}
	if got, ok := rec2.DatasetInfo("live"); ok {
		ckptRow.Generation = got.LiveGeneration
		ckptRow.LiveCount = got.Events
	}
	if err := rec2.CloseDurability(); err != nil {
		return nil, err
	}
	if ckptRow.Generation != walRow.Generation || ckptRow.LiveCount != walRow.LiveCount {
		return nil, fmt.Errorf("checkpoint recovered gen=%d count=%d, ingested gen=%d count=%d",
			ckptRow.Generation, ckptRow.LiveCount, walRow.Generation, walRow.LiveCount)
	}

	return []DurabilityRow{memRow, walRow, replayRow, ckptRow}, nil
}
