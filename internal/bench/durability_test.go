package bench

import (
	"testing"

	"stark/internal/workload"
)

func TestDurabilitySmallRun(t *testing.T) {
	rows, err := Durability(Config{N: 1200, Parallelism: 2, Seed: 3, Dist: workload.Uniform})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	byMode := map[string]DurabilityRow{}
	for _, r := range rows {
		byMode[r.Mode] = r
	}
	mem, wal := byMode["memory"], byMode["wal"]
	if mem.Mutations == 0 || mem.Mutations != wal.Mutations {
		t.Fatalf("mutation counts: memory=%d wal=%d", mem.Mutations, wal.Mutations)
	}
	if wal.WALBytes == 0 {
		t.Fatal("wal mode wrote no log bytes")
	}
	replay := byMode["replay"]
	if replay.ReplayedBatches != wal.Batches {
		t.Fatalf("replay recovered %d batches, ingested %d", replay.ReplayedBatches, wal.Batches)
	}
	if replay.Generation != wal.Generation || replay.LiveCount != wal.LiveCount {
		t.Fatalf("replay state %d/%d, ingested %d/%d",
			replay.Generation, replay.LiveCount, wal.Generation, wal.LiveCount)
	}
	ckpt := byMode["checkpoint"]
	if ckpt.ReplayedBatches != 0 || ckpt.RestoredDatasets != 1 {
		t.Fatalf("checkpoint recovery replayed %d, restored %d datasets",
			ckpt.ReplayedBatches, ckpt.RestoredDatasets)
	}
	if ckpt.Generation != wal.Generation || ckpt.LiveCount != wal.LiveCount {
		t.Fatalf("checkpoint state %d/%d, ingested %d/%d",
			ckpt.Generation, ckpt.LiveCount, wal.Generation, wal.LiveCount)
	}
}
