package bench

import (
	"strings"
	"testing"

	"stark/internal/workload"
)

// The experiment runners are exercised end-to-end at a small N; the
// assertions check structure and result consistency, not timing.

func smallCfg() Config {
	return Config{N: 3000, Parallelism: 4, Seed: 1, Dist: workload.Skewed}
}

func TestFigure4SmallRun(t *testing.T) {
	rows, err := Figure4(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	// GeoSpark unpartitioned is N/A.
	if !rows[0].NA || rows[0].System != "GeoSpark" {
		t.Errorf("row 0 = %+v", rows[0])
	}
	// All supported runs agree on the result count.
	var want int64 = -1
	for _, r := range rows {
		if r.NA {
			continue
		}
		if want == -1 {
			want = r.Results
		} else if r.Results != want {
			t.Errorf("%s/%s returned %d results, others %d", r.System, r.Partitioner, r.Results, want)
		}
		if r.Seconds <= 0 {
			t.Errorf("%s/%s has non-positive duration", r.System, r.Partitioner)
		}
	}
	if want <= 0 {
		t.Error("no results at all — eps too small for test N")
	}
	text := FormatFigure4(rows)
	if !strings.Contains(text, "N/A") || !strings.Contains(text, "STARK") {
		t.Errorf("format output:\n%s", text)
	}
}

func TestPartitionersAblation(t *testing.T) {
	rows, err := Partitioners(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 { // 3 partitioners × 2 distributions
		t.Fatalf("rows = %d", len(rows))
	}
	// On skewed data, BSP must balance better than the grid.
	var gridSkew, bspSkew float64
	for _, r := range rows {
		if r.Dist == "skewed" {
			switch r.Name {
			case "grid":
				gridSkew = r.Imbalance
			case "bsp":
				bspSkew = r.Imbalance
			}
		}
	}
	if bspSkew >= gridSkew {
		t.Errorf("BSP imbalance %v should beat grid %v on skewed data", bspSkew, gridSkew)
	}
}

func TestIndexModesAblation(t *testing.T) {
	rows, err := IndexModes(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 { // 3 modes × 4 selectivities
		t.Fatalf("rows = %d", len(rows))
	}
	// All modes agree on result counts per selectivity.
	bySel := map[float64]map[string]int64{}
	for _, r := range rows {
		if bySel[r.Selectivity] == nil {
			bySel[r.Selectivity] = map[string]int64{}
		}
		bySel[r.Selectivity][r.Mode] = r.Results
	}
	for sel, modes := range bySel {
		if modes["none"] != modes["live"] || modes["none"] != modes["persistent"] {
			t.Errorf("selectivity %v: modes disagree: %v", sel, modes)
		}
	}
}

func TestSTFilterAblation(t *testing.T) {
	rows, err := STFilter(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The temporal window must shrink the result set.
	if rows[1].Results >= rows[0].Results {
		t.Errorf("temporal filter %d results >= spatial-only %d", rows[1].Results, rows[0].Results)
	}
	if rows[1].Results == 0 {
		t.Error("temporal filter selected nothing")
	}
}

func TestKNNAblation(t *testing.T) {
	rows, err := KNN(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 { // 3 strategies × 3 k values
		t.Fatalf("rows = %d", len(rows))
	}
}

func TestDBSCANAblation(t *testing.T) {
	rows, err := DBSCAN(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Clusters != rows[1].Clusters {
		t.Errorf("cluster counts differ: %d vs %d", rows[0].Clusters, rows[1].Clusters)
	}
	if rows[0].Clusters == 0 {
		t.Error("no clusters found on skewed data")
	}
}

func TestJoinPredicatesAblation(t *testing.T) {
	rows, err := JoinPredicates(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Results == 0 {
			t.Errorf("join %s found nothing", r.Predicate)
		}
	}
	// Contains ⊆ intersects for region-contains-point joins.
	if rows[1].Results > rows[0].Results {
		t.Errorf("contains (%d) must not exceed intersects (%d)", rows[1].Results, rows[0].Results)
	}
}

func TestLocalIndexesAblation(t *testing.T) {
	rows, err := LocalIndexes(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // 2 structures × 2 distributions
		t.Fatalf("rows = %d", len(rows))
	}
	// Both structures return the same candidate totals per
	// distribution (they answer the same envelope queries).
	byDist := map[string]map[string]int64{}
	for _, r := range rows {
		if byDist[r.Dist] == nil {
			byDist[r.Dist] = map[string]int64{}
		}
		byDist[r.Dist][r.Structure] = r.Results
	}
	for dist, m := range byDist {
		if m["rtree"] != m["grid"] {
			t.Errorf("%s: rtree %d vs grid %d results", dist, m["rtree"], m["grid"])
		}
	}
}

func TestPersistIndexRoundTrip(t *testing.T) {
	build, reload, err := PersistIndexRoundTrip(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if build <= 0 || reload <= 0 {
		t.Errorf("durations: build=%v reload=%v", build, reload)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.N != 100_000 || c.Eps <= 0 {
		t.Errorf("defaults = %+v", c)
	}
	// Explicit eps survives.
	c = Config{Eps: 7}.withDefaults()
	if c.Eps != 7 {
		t.Errorf("eps = %v", c.Eps)
	}
}

func TestJoinStrategiesExperiment(t *testing.T) {
	cfg := smallCfg()
	rows, err := JoinStrategies(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 3 layouts × 2 selectivities × 4 strategies.
	if len(rows) != 24 {
		t.Fatalf("rows = %d, want 24", len(rows))
	}
	// All strategies must agree on the result count within each
	// (layout, selectivity) cell — the bench doubles as a
	// differential check at experiment scale.
	counts := map[string]int64{}
	for _, r := range rows {
		key := r.Layout + "/" + r.Selectivity
		if want, ok := counts[key]; ok {
			if r.Results != want {
				t.Errorf("%s %s: results = %d, other strategies found %d", key, r.Strategy, r.Results, want)
			}
		} else {
			counts[key] = r.Results
		}
		if r.Results == 0 {
			t.Errorf("%s %s: degenerate cell, no results", key, r.Strategy)
		}
		switch r.Strategy {
		case "broadcast":
			if r.Ran != "broadcast" {
				t.Errorf("%s: forced broadcast ran %s", key, r.Ran)
			}
			if r.Tasks >= r.TotalPairs && r.TotalPairs > 1 {
				t.Errorf("%s broadcast: %d tasks not fewer than %d enumerable pairs", key, r.Tasks, r.TotalPairs)
			}
		case "copartition":
			if r.Layout == "none" {
				if r.Ran != "pairs" {
					t.Errorf("%s: copartition without partitioners ran %s", key, r.Ran)
				}
			} else if r.Ran != "copartition" {
				t.Errorf("%s: forced copartition ran %s", key, r.Ran)
			} else if r.Shuffled == 0 {
				t.Errorf("%s copartition: no records shuffled", key)
			}
		case "auto":
			if r.Ran == "auto" {
				t.Errorf("%s: auto did not resolve to a concrete strategy", key)
			}
		}
	}
	if s := FormatJoinStrategies(rows); !strings.Contains(s, "broadcast") {
		t.Errorf("format output missing strategies:\n%s", s)
	}
}
