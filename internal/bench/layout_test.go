package bench

import "testing"

func TestLayoutAblation(t *testing.T) {
	rows, err := Layout(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	// 3 layouts × 2 distributions × 2 windows.
	if len(rows) != 12 {
		t.Fatalf("rows = %d, want 12", len(rows))
	}
	want := map[string]int64{}
	for _, r := range rows {
		key := r.Dist + "/" + r.Window
		if prev, ok := want[key]; !ok {
			want[key] = r.Results
		} else if r.Results != prev {
			t.Errorf("%s on %s returned %d results, others %d", r.Layout, key, r.Results, prev)
		}
		if r.NsPerOp <= 0 {
			t.Errorf("%s on %s has non-positive ns/op", r.Layout, key)
		}
		if r.Layout == "row" && (r.KernelBatches != 0 || r.KernelSurvivors != 0) {
			t.Errorf("row layout on %s reports kernel metrics: %+v", key, r)
		}
		if r.Layout != "row" && r.KernelBatches == 0 {
			t.Errorf("%s on %s ran no kernel batches — columnar path not taken", r.Layout, key)
		}
	}
	// The low-selectivity cells must actually be selective, and every
	// cell must have found data (the windows are data-centred).
	for key, n := range want {
		if n == 0 {
			t.Errorf("window %s matched nothing", key)
		}
	}
	if out := FormatLayout(rows); len(out) == 0 {
		t.Error("FormatLayout returned empty output")
	}
}
