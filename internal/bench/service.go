package bench

// The service experiment measures the query service end to end over
// real HTTP: a multi-dataset server behind admission control, hammered
// by concurrent clients, reporting tail latency (p50/p99) and the
// plan-fingerprint cache hit rate per phase:
//
//   - cold:  every request is a distinct query — all misses, the
//     baseline cost of a planned scan through the full stack.
//   - hot:   requests draw from a small pool of repeated queries —
//     after the first round every request is a cache hit.
//   - mixed: 80% hot pool / 20% distinct, the serving-shaped blend.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"stark/internal/engine"
	"stark/internal/obs"
	"stark/internal/server"
	"stark/internal/workload"
)

// ServiceRow is one phase of the service experiment.
type ServiceRow struct {
	Phase       string  `json:"phase"`
	Requests    int     `json:"requests"`
	Concurrency int     `json:"concurrency"`
	P50Ms       float64 `json:"p50Ms"`
	P99Ms       float64 `json:"p99Ms"`
	MeanMs      float64 `json:"meanMs"`
	ServerP50Ms float64 `json:"serverP50Ms"` // from the service's own /metrics histogram
	ServerP99Ms float64 `json:"serverP99Ms"`
	CacheHits   int64   `json:"cacheHits"`
	CacheMisses int64   `json:"cacheMisses"`
	HitRate     float64 `json:"hitRate"`
	Rejected    int     `json:"rejected"` // 429 + 503 responses
}

// serviceQuery is the subset of the service request body the
// experiment sends.
type serviceQuery struct {
	Dataset   string  `json:"dataset"`
	Predicate string  `json:"predicate"`
	WKT       string  `json:"wkt"`
	HasTime   bool    `json:"hasTime"`
	Begin     int64   `json:"begin"`
	End       int64   `json:"end"`
	Distance  float64 `json:"distance,omitempty"`
}

// queryWindow renders a rectangle query; the generated events all
// carry timestamps, so a covering time window keeps matches flowing.
func queryWindow(rng *rand.Rand) serviceQuery {
	w := 40 + rng.Float64()*160
	h := 40 + rng.Float64()*160
	x := rng.Float64() * (1000 - w)
	y := rng.Float64() * (1000 - h)
	return serviceQuery{
		Dataset:   "bench",
		Predicate: "intersects",
		WKT: fmt.Sprintf("POLYGON ((%.3f %.3f, %.3f %.3f, %.3f %.3f, %.3f %.3f, %.3f %.3f))",
			x, y, x+w, y, x+w, y+h, x, y+h, x, y),
		HasTime: true, Begin: 0, End: 1_000_000,
	}
}

// Service runs the query-service experiment and returns one row per
// phase.
func Service(cfg Config) ([]ServiceRow, error) {
	cfg = cfg.withDefaults()
	ctx := engine.NewContext(cfg.Parallelism)
	if cfg.Observe != nil {
		cfg.Observe(ctx)
	}
	srv := server.NewService(ctx, server.Options{})
	events := workload.Events(workload.Config{
		N: cfg.N, Seed: cfg.Seed, Dist: cfg.Dist, Width: 1000, Height: 1000, TimeRange: 1_000_000,
	})
	if err := srv.RegisterEvents(server.DatasetSpec{Name: "bench", Partitioner: "grid:8"}, events); err != nil {
		return nil, err
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	concurrency := 2 * ctx.Parallelism()
	const requests = 240
	const hotPool = 8

	// Pre-render the query pools so generation cost stays out of the
	// latency measurements.
	rng := rand.New(rand.NewSource(cfg.Seed + 99))
	hot := make([][]byte, hotPool)
	for i := range hot {
		b, err := json.Marshal(queryWindow(rng))
		if err != nil {
			return nil, err
		}
		hot[i] = b
	}
	// Two distinct pools: the cold phase consumes the first, the mixed
	// phase the second — otherwise mixed's "distinct" queries would
	// already sit in the cache from the cold phase.
	distinct := make([][]byte, 2*requests)
	for i := range distinct {
		b, err := json.Marshal(queryWindow(rng))
		if err != nil {
			return nil, err
		}
		distinct[i] = b
	}

	phases := []struct {
		name string
		body func(i int) []byte
	}{
		{"cold", func(i int) []byte { return distinct[i] }},
		{"hot", func(i int) []byte { return hot[i%hotPool] }},
		{"mixed", func(i int) []byte {
			if i%5 == 4 {
				return distinct[requests+i]
			}
			return hot[i%hotPool]
		}},
	}

	var rows []ServiceRow
	for _, phase := range phases {
		statsBefore := srv.CacheStats()
		boundsBefore, cumBefore, err := scrapeDurationBuckets(client, ts.URL, "/api/v1/query")
		if err != nil {
			return nil, err
		}
		durations := make([]time.Duration, requests)
		rejected := make([]bool, requests)
		var wg sync.WaitGroup
		var firstErr error
		var errOnce sync.Once
		sem := make(chan struct{}, concurrency)
		for i := 0; i < requests; i++ {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int) {
				defer func() { <-sem; wg.Done() }()
				start := time.Now()
				resp, err := client.Post(ts.URL+"/api/v1/query", "application/json",
					bytes.NewReader(phase.body(i)))
				if err != nil {
					errOnce.Do(func() { firstErr = err })
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				_ = resp.Body.Close()
				durations[i] = time.Since(start)
				if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
					rejected[i] = true
				} else if resp.StatusCode != http.StatusOK {
					errOnce.Do(func() { firstErr = fmt.Errorf("service: %s status %d", phase.name, resp.StatusCode) })
				}
			}(i)
		}
		wg.Wait()
		if firstErr != nil {
			return nil, firstErr
		}
		statsAfter := srv.CacheStats()
		bounds, cumAfter, err := scrapeDurationBuckets(client, ts.URL, "/api/v1/query")
		if err != nil {
			return nil, err
		}
		// The histogram is cumulative since server start; the per-phase
		// distribution is the bucket-count delta across the phase. Before
		// the first phase the route's histogram does not exist yet, so an
		// empty "before" scrape means a zero baseline.
		var phaseCum []int64
		switch {
		case len(cumBefore) == 0:
			phaseCum = cumAfter
		case len(bounds) == len(boundsBefore) && len(cumAfter) == len(cumBefore):
			phaseCum = make([]int64, len(cumAfter))
			for i := range cumAfter {
				phaseCum[i] = cumAfter[i] - cumBefore[i]
			}
		}

		sorted := append([]time.Duration(nil), durations...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		var total time.Duration
		for _, d := range sorted {
			total += d
		}
		nRejected := 0
		for _, r := range rejected {
			if r {
				nRejected++
			}
		}
		hits := statsAfter.Hits - statsBefore.Hits
		misses := statsAfter.Misses - statsBefore.Misses
		row := ServiceRow{
			Phase:       phase.name,
			Requests:    requests,
			Concurrency: concurrency,
			P50Ms:       ms(sorted[len(sorted)/2]),
			P99Ms:       ms(sorted[len(sorted)*99/100]),
			MeanMs:      ms(total / time.Duration(len(sorted))),
			CacheHits:   hits,
			CacheMisses: misses,
			Rejected:    nRejected,
			ServerP50Ms: obs.QuantileFromCumulative(bounds, phaseCum, 0.50) * 1000,
			ServerP99Ms: obs.QuantileFromCumulative(bounds, phaseCum, 0.99) * 1000,
		}
		if hits+misses > 0 {
			row.HitRate = float64(hits) / float64(hits+misses)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// scrapeDurationBuckets fetches the service's own /metrics exposition
// and returns the request-latency histogram for one route as bucket
// bounds (seconds, finite) plus cumulative counts (the +Inf bucket
// last), ready for obs.QuantileFromCumulative. The server-observed
// quantiles exclude client and transport overhead, so comparing them
// to the client-side quantiles isolates where the latency lives.
func scrapeDurationBuckets(client *http.Client, base, route string) ([]float64, []int64, error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, nil, fmt.Errorf("bench: GET /metrics status %d", resp.StatusCode)
	}
	prefix := `stark_http_request_duration_seconds_bucket{route="` + route + `",le="`
	var bounds []float64
	var cum []int64
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		rest := line[len(prefix):]
		q := strings.Index(rest, `"`)
		sp := strings.LastIndex(rest, " ")
		if q < 0 || sp < q {
			continue
		}
		le, err := strconv.ParseFloat(rest[:q], 64)
		if err != nil {
			return nil, nil, fmt.Errorf("bench: parsing bucket bound %q: %w", rest[:q], err)
		}
		n, err := strconv.ParseInt(rest[sp+1:], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("bench: parsing bucket count %q: %w", rest[sp+1:], err)
		}
		if !strings.HasPrefix(rest[:q], "+Inf") {
			bounds = append(bounds, le)
		}
		cum = append(cum, n)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	return bounds, cum, nil
}
