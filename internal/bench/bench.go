// Package bench implements the benchmark harness that regenerates the
// paper's evaluation: the Figure 4 self-join micro-benchmark
// comparing STARK against the GeoSpark- and SpatialSpark-style
// baselines, plus the ablation experiments (E1–E6 in DESIGN.md)
// covering partitioning, indexing modes, spatio-temporal filtering,
// kNN, DBSCAN and join predicates.
//
// Every experiment is a pure function from a configuration to result
// rows, so the same runners back both the cmd/stark-bench CLI and the
// testing.B benchmarks in the repository root.
package bench

import (
	"fmt"
	"math"
	"time"

	"stark/internal/baselines"
	"stark/internal/cluster"
	"stark/internal/core"
	"stark/internal/dfs"
	"stark/internal/engine"
	"stark/internal/geom"
	"stark/internal/index"
	"stark/internal/partition"
	"stark/internal/stobject"
	"stark/internal/temporal"
	"stark/internal/workload"
)

// Config parameterises an experiment run.
type Config struct {
	// N is the dataset size (the paper uses 1,000,000 points).
	N int
	// Parallelism is the simulated executor count; 0 = GOMAXPROCS.
	Parallelism int
	// Seed drives data generation.
	Seed int64
	// Eps is the self-join distance for Figure 4; 0 derives a value
	// that yields a few matches per point at the configured N.
	Eps float64
	// Dist is the spatial distribution (Figure 4 uses Skewed, the
	// property that separates BSP from grid partitioning).
	Dist workload.Distribution
	// Observe, when non-nil, receives every engine context an
	// experiment creates, so callers can harvest metrics snapshots
	// after the run (the -json reporting path of cmd/stark-bench).
	Observe func(*engine.Context) `json:"-"`
}

func (c Config) withDefaults() Config {
	if c.N <= 0 {
		c.N = 100_000
	}
	if c.Eps <= 0 {
		// Scale ε so the expected number of neighbours per point in
		// the 1000×1000 space stays roughly constant across N.
		c.Eps = 1000.0 / float64(c.N) * 50
		if c.Eps < 0.05 {
			c.Eps = 0.05
		}
	}
	return c
}

// tuples builds the benchmark dataset. The skewed distribution uses
// few, tight clusters — the "events on land, empty sea" property
// whose straggler effect Figure 4's partitioner comparison hinges on.
func (c Config) tuples() []baselines.Tuple {
	wc := workload.Config{
		N: c.N, Seed: c.Seed, Dist: c.Dist, Width: 1000, Height: 1000,
	}
	if c.Dist == workload.Skewed {
		wc.Clusters = 5
		wc.Spread = 6
	}
	return workload.SpatialTuples(wc)
}

// timed runs f and returns its duration.
func timed(f func() error) (time.Duration, error) {
	start := time.Now()
	err := f()
	return time.Since(start), err
}

// ---- Figure 4 ----

// Figure4Row is one bar of the paper's Figure 4.
type Figure4Row struct {
	System      string // GeoSpark | SpatialSpark | STARK
	Partitioner string // none | voronoi | tile | bsp
	NA          bool   // true when the combination is unsupported
	Seconds     float64
	Results     int64 // unordered within-eps pairs (incl. self pairs)
}

// Figure4 reruns the paper's micro-benchmark: a self join
// (withinDistance ε) on N points, for each system with and without
// its best spatial partitioner:
//
//	GeoSpark     — N/A unpartitioned; Voronoi partitioner
//	SpatialSpark — unpartitioned; Tile partitioner
//	STARK        — unpartitioned; cost-based BSP partitioner
func Figure4(cfg Config) ([]Figure4Row, error) {
	cfg = cfg.withDefaults()
	ctx := engine.NewContext(cfg.Parallelism)
	if cfg.Observe != nil {
		cfg.Observe(ctx)
	}
	tuples := cfg.tuples()
	var rows []Figure4Row

	// GeoSpark, no partitioning: unsupported.
	rows = append(rows, Figure4Row{System: "GeoSpark", Partitioner: "none", NA: true})

	// GeoSpark, Voronoi.
	var count int64
	dur, err := timed(func() error {
		var err error
		count, err = baselines.GeoSparkSelfJoin(ctx, tuples, baselines.SelfJoinConfig{
			Eps:         cfg.Eps,
			Partitioner: baselines.VoronoiPartitioner,
			NumSeeds:    4 * ctx.Parallelism(),
			Seed:        cfg.Seed,
			Dedupe:      true,
		})
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("bench: GeoSpark/voronoi: %w", err)
	}
	rows = append(rows, Figure4Row{System: "GeoSpark", Partitioner: "voronoi", Seconds: dur.Seconds(), Results: count})

	// SpatialSpark, no partitioning.
	dur, err = timed(func() error {
		var err error
		count, err = baselines.SpatialSparkSelfJoin(ctx, tuples, baselines.SelfJoinConfig{
			Eps: cfg.Eps, Partitioner: baselines.NoPartitioner,
		})
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("bench: SpatialSpark/none: %w", err)
	}
	rows = append(rows, Figure4Row{System: "SpatialSpark", Partitioner: "none", Seconds: dur.Seconds(), Results: count})

	// SpatialSpark, Tile.
	dur, err = timed(func() error {
		var err error
		count, err = baselines.SpatialSparkSelfJoin(ctx, tuples, baselines.SelfJoinConfig{
			Eps: cfg.Eps, Partitioner: baselines.TilePartitioner, PPD: 8,
		})
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("bench: SpatialSpark/tile: %w", err)
	}
	rows = append(rows, Figure4Row{System: "SpatialSpark", Partitioner: "tile", Seconds: dur.Seconds(), Results: count})

	// STARK, no partitioning: partition-pair join with live indexes
	// and per-partition tree reuse, but no extents to prune with.
	dur, err = timed(func() error {
		var err error
		count, err = starkSelfJoin(ctx, tuples, cfg.Eps, nil)
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("bench: STARK/none: %w", err)
	}
	rows = append(rows, Figure4Row{System: "STARK", Partitioner: "none", Seconds: dur.Seconds(), Results: count})

	// STARK, BSP: spatial partitioning + extent pruning + live index.
	dur, err = timed(func() error {
		objs := make([]stobject.STObject, len(tuples))
		for i, kv := range tuples {
			objs[i] = kv.Key
		}
		bsp, err := partition.NewBSP(partition.BSPConfig{
			MaxCost: cfg.N/(4*ctx.Parallelism()) + 1,
		}, objs)
		if err != nil {
			return err
		}
		count, err = starkSelfJoin(ctx, tuples, cfg.Eps, bsp)
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("bench: STARK/bsp: %w", err)
	}
	rows = append(rows, Figure4Row{System: "STARK", Partitioner: "bsp", Seconds: dur.Seconds(), Results: count})

	return rows, nil
}

// starkSelfJoin runs the STARK self join and returns the unordered
// pair count (including self pairs) so results are comparable with
// the baselines.
func starkSelfJoin(ctx *engine.Context, tuples []baselines.Tuple, eps float64, sp partition.SpatialPartitioner) (int64, error) {
	ds := core.Wrap(engine.Parallelize(ctx, tuples, ctx.Parallelism()))
	if sp != nil {
		parted, err := ds.PartitionBy(sp)
		if err != nil {
			return 0, err
		}
		ds = parted
	}
	return core.SelfJoinWithinDistanceCount(ds, eps, -1)
}

// FormatFigure4 renders rows in the layout of the paper's figure.
func FormatFigure4(rows []Figure4Row) string {
	out := fmt.Sprintf("%-14s %-12s %12s %14s\n", "System", "Partitioner", "Time [s]", "Result pairs")
	for _, r := range rows {
		if r.NA {
			out += fmt.Sprintf("%-14s %-12s %12s %14s\n", r.System, r.Partitioner, "N/A", "-")
			continue
		}
		out += fmt.Sprintf("%-14s %-12s %12.2f %14d\n", r.System, r.Partitioner, r.Seconds, r.Results)
	}
	return out
}

// ---- E1: partitioning cost and balance ----

// PartitionerRow reports one partitioner's construction cost and
// balance.
type PartitionerRow struct {
	Name       string
	Dist       string
	BuildSecs  float64
	Partitions int
	Imbalance  float64 // max/mean partition size
}

// Partitioners measures grid, BSP and Voronoi construction time and
// partition balance on uniform and skewed data.
func Partitioners(cfg Config) ([]PartitionerRow, error) {
	cfg = cfg.withDefaults()
	var rows []PartitionerRow
	for _, dist := range []workload.Distribution{workload.Uniform, workload.Skewed} {
		objsT := workload.SpatialTuples(workload.Config{
			N: cfg.N, Seed: cfg.Seed, Dist: dist, Width: 1000, Height: 1000,
		})
		objs := make([]stobject.STObject, len(objsT))
		for i, kv := range objsT {
			objs[i] = kv.Key
		}
		type builder struct {
			name string
			mk   func() (partition.SpatialPartitioner, error)
		}
		ppd := 8
		builders := []builder{
			{"grid", func() (partition.SpatialPartitioner, error) { return partition.NewGrid(ppd, objs) }},
			{"bsp", func() (partition.SpatialPartitioner, error) {
				return partition.NewBSP(partition.BSPConfig{MaxCost: cfg.N / (ppd * ppd / 2)}, objs)
			}},
			{"voronoi", func() (partition.SpatialPartitioner, error) {
				return partition.NewVoronoi(ppd*ppd, cfg.Seed, objs)
			}},
		}
		for _, b := range builders {
			var sp partition.SpatialPartitioner
			dur, err := timed(func() error {
				var err error
				sp, err = b.mk()
				return err
			})
			if err != nil {
				return nil, fmt.Errorf("bench: partitioner %s on %s: %w", b.name, dist, err)
			}
			sizes := make([]int, sp.NumPartitions())
			for _, o := range objs {
				sizes[sp.PartitionFor(o)]++
			}
			rows = append(rows, PartitionerRow{
				Name:       b.name,
				Dist:       dist.String(),
				BuildSecs:  dur.Seconds(),
				Partitions: sp.NumPartitions(),
				Imbalance:  partition.Imbalance(sizes),
			})
		}
	}
	return rows, nil
}

// ---- E2: indexing modes ----

// IndexModeRow reports a range-filter time under one indexing mode
// and selectivity.
type IndexModeRow struct {
	Mode        string // none | live | persistent
	Selectivity float64
	Seconds     float64
	Results     int64
}

// IndexModes measures the three indexing modes over a selectivity
// sweep. Persistent mode excludes the one-off build (it measures the
// reuse case the paper motivates persistence with).
func IndexModes(cfg Config) ([]IndexModeRow, error) {
	cfg = cfg.withDefaults()
	ctx := engine.NewContext(cfg.Parallelism)
	if cfg.Observe != nil {
		cfg.Observe(ctx)
	}
	// Uniform data: the selectivity sweep assumes the query box at
	// the space centre matches sel·N records.
	tuples := workload.SpatialTuples(workload.Config{
		N: cfg.N, Seed: cfg.Seed, Dist: workload.Uniform, Width: 1000, Height: 1000,
	})
	ds := core.Wrap(engine.Parallelize(ctx, tuples, 4*ctx.Parallelism())).Cache()
	if _, err := ds.Count(); err != nil { // warm the cache
		return nil, err
	}
	persistent, err := ds.Index(16, nil)
	if err != nil {
		return nil, err
	}
	var rows []IndexModeRow
	for _, sel := range []float64{0.0001, 0.001, 0.01, 0.1} {
		side := 1000 * math.Sqrt(sel)
		q := stobject.New(geom.NewEnvelope(500-side/2, 500-side/2, 500+side/2, 500+side/2).ToPolygon())
		const reps = 3

		var n int64
		dur, err := timed(func() error {
			for r := 0; r < reps; r++ {
				hits, err := ds.Intersects(q)
				if err != nil {
					return err
				}
				n = int64(len(hits))
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, IndexModeRow{Mode: "none", Selectivity: sel, Seconds: dur.Seconds() / reps, Results: n})

		dur, err = timed(func() error {
			for r := 0; r < reps; r++ {
				live, err := ds.LiveIndex(16, nil)
				if err != nil {
					return err
				}
				hits, err := live.Intersects(q)
				if err != nil {
					return err
				}
				n = int64(len(hits))
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, IndexModeRow{Mode: "live", Selectivity: sel, Seconds: dur.Seconds() / reps, Results: n})

		dur, err = timed(func() error {
			for r := 0; r < reps; r++ {
				hits, err := persistent.Intersects(q)
				if err != nil {
					return err
				}
				n = int64(len(hits))
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, IndexModeRow{Mode: "persistent", Selectivity: sel, Seconds: dur.Seconds() / reps, Results: n})
	}
	return rows, nil
}

// ---- E3: spatio-temporal filter ----

// STFilterRow compares spatial-only and spatio-temporal filters.
type STFilterRow struct {
	Query   string
	Seconds float64
	Results int64
}

// STFilter measures a spatial-only filter against the same filter
// with a temporal window: the temporal predicate is evaluated during
// candidate refinement and shrinks the result.
func STFilter(cfg Config) ([]STFilterRow, error) {
	cfg = cfg.withDefaults()
	ctx := engine.NewContext(cfg.Parallelism)
	if cfg.Observe != nil {
		cfg.Observe(ctx)
	}
	tuples := workload.Tuples(workload.Config{
		N: cfg.N, Seed: cfg.Seed, Dist: cfg.Dist, Width: 1000, Height: 1000, TimeRange: 1_000_000,
	})
	ds := core.Wrap(engine.Parallelize(ctx, tuples, 4*ctx.Parallelism())).Cache()
	if _, err := ds.Count(); err != nil {
		return nil, err
	}
	spatialOnly := workload.SpatialTuples(workload.Config{
		N: cfg.N, Seed: cfg.Seed, Dist: cfg.Dist, Width: 1000, Height: 1000,
	})
	dsSpatial := core.Wrap(engine.Parallelize(ctx, spatialOnly, 4*ctx.Parallelism())).Cache()
	if _, err := dsSpatial.Count(); err != nil {
		return nil, err
	}
	box := geom.NewEnvelope(300, 300, 700, 700).ToPolygon()

	var rows []STFilterRow
	var n int64
	dur, err := timed(func() error {
		hits, err := dsSpatial.ContainedBy(stobject.New(box))
		if err != nil {
			return err
		}
		n = int64(len(hits))
		return nil
	})
	if err != nil {
		return nil, err
	}
	rows = append(rows, STFilterRow{Query: "spatial-only", Seconds: dur.Seconds(), Results: n})

	q := stobject.NewWithInterval(box, temporal.MustInterval(0, 250_000))
	dur, err = timed(func() error {
		hits, err := ds.ContainedBy(q)
		if err != nil {
			return err
		}
		n = int64(len(hits))
		return nil
	})
	if err != nil {
		return nil, err
	}
	rows = append(rows, STFilterRow{Query: "spatio-temporal (25% window)", Seconds: dur.Seconds(), Results: n})
	return rows, nil
}

// ---- E4: kNN ----

// KNNRow reports one kNN strategy/k combination.
type KNNRow struct {
	Strategy string
	K        int
	Seconds  float64
}

// KNN measures full-scan vs partitioned vs indexed kNN for several k.
func KNN(cfg Config) ([]KNNRow, error) {
	cfg = cfg.withDefaults()
	ctx := engine.NewContext(cfg.Parallelism)
	if cfg.Observe != nil {
		cfg.Observe(ctx)
	}
	tuples := cfg.tuples()
	ds := core.Wrap(engine.Parallelize(ctx, tuples, 4*ctx.Parallelism())).Cache()
	if _, err := ds.Count(); err != nil {
		return nil, err
	}
	objs := make([]stobject.STObject, len(tuples))
	for i, kv := range tuples {
		objs[i] = kv.Key
	}
	grid, err := partition.NewGrid(8, objs)
	if err != nil {
		return nil, err
	}
	parted, err := ds.PartitionBy(grid)
	if err != nil {
		return nil, err
	}
	parted.Cache()
	if _, err := parted.Count(); err != nil {
		return nil, err
	}
	idx, err := parted.Index(16, nil)
	if err != nil {
		return nil, err
	}
	q := stobject.New(geom.NewPoint(500, 500))
	const reps = 5

	var rows []KNNRow
	for _, k := range []int{1, 10, 100} {
		dur, err := timed(func() error {
			for r := 0; r < reps; r++ {
				if _, err := ds.KNN(q, k, nil); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, KNNRow{Strategy: "scan", K: k, Seconds: dur.Seconds() / reps})

		dur, err = timed(func() error {
			for r := 0; r < reps; r++ {
				if _, err := parted.KNN(q, k, nil); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, KNNRow{Strategy: "partitioned", K: k, Seconds: dur.Seconds() / reps})

		dur, err = timed(func() error {
			for r := 0; r < reps; r++ {
				if _, err := idx.KNN(q, k, nil); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, KNNRow{Strategy: "partitioned+indexed", K: k, Seconds: dur.Seconds() / reps})
	}
	return rows, nil
}

// ---- E5: DBSCAN ----

// DBSCANRow reports one clustering strategy.
type DBSCANRow struct {
	Strategy string
	Seconds  float64
	Clusters int
}

// DBSCAN compares sequential DBSCAN with the partitioned MR-DBSCAN
// implementation and verifies they agree.
func DBSCAN(cfg Config) ([]DBSCANRow, error) {
	cfg = cfg.withDefaults()
	n := cfg.N
	if n > 200_000 {
		n = 200_000 // DBSCAN ablation runs at a smaller scale
	}
	pts := workload.Points(workload.Config{
		N: n, Seed: cfg.Seed, Dist: workload.Skewed, Width: 1000, Height: 1000,
	})
	eps, minPts := 2.0, 5
	var rows []DBSCANRow

	var seq cluster.Result
	dur, err := timed(func() error {
		seq = cluster.DBSCAN(pts, eps, minPts)
		return nil
	})
	if err != nil {
		return nil, err
	}
	rows = append(rows, DBSCANRow{Strategy: "sequential", Seconds: dur.Seconds(), Clusters: seq.NumClusters})

	ctx := engine.NewContext(cfg.Parallelism)
	if cfg.Observe != nil {
		cfg.Observe(ctx)
	}
	objs := make([]stobject.STObject, len(pts))
	for i, p := range pts {
		objs[i] = stobject.New(p)
	}
	var distRes cluster.Result
	dur, err = timed(func() error {
		bsp, err := partition.NewBSP(partition.BSPConfig{MaxCost: n/(2*ctx.Parallelism()) + 1}, objs)
		if err != nil {
			return err
		}
		home := make([]int, len(objs))
		for i, o := range objs {
			home[i] = bsp.PartitionFor(o)
		}
		distRes, err = cluster.DBSCANDistributed(pts, cluster.DistributedConfig{
			Eps: eps, MinPts: minPts, Regions: bsp, Home: home, Runner: ctx,
		})
		return err
	})
	if err != nil {
		return nil, err
	}
	rows = append(rows, DBSCANRow{Strategy: "distributed (BSP)", Seconds: dur.Seconds(), Clusters: distRes.NumClusters})

	// Cluster count and noise count are order-independent DBSCAN
	// invariants; border-point assignment is not, so the ablation
	// validates on the former.
	if seq.NumClusters != distRes.NumClusters || seq.NoiseCount() != distRes.NoiseCount() {
		return nil, fmt.Errorf("bench: distributed DBSCAN differs from sequential (%d/%d clusters, %d/%d noise)",
			distRes.NumClusters, seq.NumClusters, distRes.NoiseCount(), seq.NoiseCount())
	}
	return rows, nil
}

// ---- E6: join predicates ----

// JoinPredicateRow reports one join predicate's cost.
type JoinPredicateRow struct {
	Predicate string
	Seconds   float64
	Results   int64
}

// JoinPredicates joins points with regions under each predicate.
func JoinPredicates(cfg Config) ([]JoinPredicateRow, error) {
	cfg = cfg.withDefaults()
	ctx := engine.NewContext(cfg.Parallelism)
	if cfg.Observe != nil {
		cfg.Observe(ctx)
	}
	pointsT := cfg.tuples()
	regions := workload.Regions(workload.Config{N: 0, Seed: cfg.Seed, Width: 1000, Height: 1000}, cfg.N/100+10)
	regionT := make([]core.Tuple[int], len(regions))
	for i, r := range regions {
		regionT[i] = engine.NewPair(r, i)
	}
	objs := make([]stobject.STObject, len(pointsT))
	for i, kv := range pointsT {
		objs[i] = kv.Key
	}
	grid, err := partition.NewGrid(8, objs)
	if err != nil {
		return nil, err
	}
	left, err := core.Wrap(engine.Parallelize(ctx, regionT, ctx.Parallelism())).PartitionBy(grid)
	if err != nil {
		return nil, err
	}
	right, err := core.Wrap(engine.Parallelize(ctx, pointsT, ctx.Parallelism())).PartitionBy(grid)
	if err != nil {
		return nil, err
	}

	type pc struct {
		name   string
		pred   stobject.Predicate
		expand float64
	}
	preds := []pc{
		{"intersects", stobject.Intersects, 0},
		{"contains", stobject.Contains, 0},
		{"withinDistance(1)", stobject.WithinDistancePredicate(1, nil), 1},
	}
	var rows []JoinPredicateRow
	for _, p := range preds {
		var n int64
		dur, err := timed(func() error {
			out, err := core.Join(left, right, core.JoinOptions{
				Predicate: p.pred, IndexOrder: -1, ProbeExpansion: p.expand,
			})
			if err != nil {
				return err
			}
			n = int64(len(out))
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("bench: join %s: %w", p.name, err)
		}
		rows = append(rows, JoinPredicateRow{Predicate: p.name, Seconds: dur.Seconds(), Results: n})
	}
	return rows, nil
}

// ---- E7: local index structure (R-tree vs grid) ----

// LocalIndexRow reports one index structure's build and query cost
// over a partition-sized slice of data.
type LocalIndexRow struct {
	Structure string
	Dist      string
	BuildSecs float64
	QuerySecs float64 // mean over the query batch
	Results   int64
}

// LocalIndexes compares the STR R-tree against the fixed-grid spatial
// hash as the partition-local index: build time plus a batch of range
// queries, on uniform and skewed data. The R-tree pays sorting at
// build time but stays robust under skew; the grid builds faster and
// degrades when objects concentrate in few cells.
func LocalIndexes(cfg Config) ([]LocalIndexRow, error) {
	cfg = cfg.withDefaults()
	var rows []LocalIndexRow
	const queries = 200
	for _, dist := range []workload.Distribution{workload.Uniform, workload.Skewed} {
		wc := workload.Config{N: cfg.N, Seed: cfg.Seed, Dist: dist, Width: 1000, Height: 1000}
		if dist == workload.Skewed {
			wc.Clusters = 5
			wc.Spread = 6
		}
		pts := workload.Points(wc)
		envs := make([]geom.Envelope, len(pts))
		for i, p := range pts {
			envs[i] = p.Envelope()
		}
		queryBoxes := make([]geom.Envelope, queries)
		for i := range queryBoxes {
			// Centre queries on data points so skewed runs hit data.
			c := pts[(i*7919)%len(pts)]
			queryBoxes[i] = geom.NewEnvelope(c.X-10, c.Y-10, c.X+10, c.Y+10)
		}

		var rtree *index.RTree
		buildDur, err := timed(func() error {
			rtree = index.BuildFromEnvelopes(16, envs)
			return nil
		})
		if err != nil {
			return nil, err
		}
		var total int64
		queryDur, err := timed(func() error {
			var buf []int32
			for _, q := range queryBoxes {
				buf = rtree.Query(q, buf[:0])
				total += int64(len(buf))
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, LocalIndexRow{
			Structure: "rtree", Dist: dist.String(),
			BuildSecs: buildDur.Seconds(), QuerySecs: queryDur.Seconds() / queries, Results: total,
		})

		var grid *index.GridIndex
		buildDur, err = timed(func() error {
			grid = index.BuildGridFromEnvelopes(0, envs)
			return nil
		})
		if err != nil {
			return nil, err
		}
		total = 0
		queryDur, err = timed(func() error {
			var buf []int32
			for _, q := range queryBoxes {
				buf = grid.Query(q, buf[:0])
				total += int64(len(buf))
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, LocalIndexRow{
			Structure: "grid", Dist: dist.String(),
			BuildSecs: buildDur.Seconds(), QuerySecs: queryDur.Seconds() / queries, Results: total,
		})
	}
	return rows, nil
}

// ---- persistence round trip used by the indexing experiment CLI ----

// PersistIndexRoundTrip builds, persists, reloads and queries an
// index through the simulated DFS, returning build and reload times —
// the measurement behind the persistent-indexing discussion.
func PersistIndexRoundTrip(cfg Config) (build, reload time.Duration, err error) {
	cfg = cfg.withDefaults()
	ctx := engine.NewContext(cfg.Parallelism)
	if cfg.Observe != nil {
		cfg.Observe(ctx)
	}
	tuples := cfg.tuples()
	ds := core.Wrap(engine.Parallelize(ctx, tuples, 4*ctx.Parallelism())).Cache()
	if _, err := ds.Count(); err != nil {
		return 0, 0, err
	}
	fs := dfs.New(1<<20, 1)
	var idx *core.IndexedDataset[int]
	build, err = timed(func() error {
		var err error
		idx, err = ds.Index(16, nil)
		if err != nil {
			return err
		}
		return idx.Persist(fs, "/indexes/bench")
	})
	if err != nil {
		return 0, 0, err
	}
	reload, err = timed(func() error {
		loaded, err := core.LoadIndex(ds, fs, "/indexes/bench")
		if err != nil {
			return err
		}
		_, err = loaded.Intersects(stobject.New(geom.NewEnvelope(400, 400, 600, 600).ToPolygon()))
		return err
	})
	return build, reload, err
}
