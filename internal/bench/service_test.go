package bench

import (
	"testing"

	"stark/internal/engine"
)

func TestServiceSmallRun(t *testing.T) {
	cfg := smallCfg()
	cfg.N = 1500
	var ctxs []*engine.Context
	cfg.Observe = func(c *engine.Context) { ctxs = append(ctxs, c) }
	rows, err := Service(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3 (cold, hot, mixed)", len(rows))
	}
	byPhase := map[string]ServiceRow{}
	for _, r := range rows {
		byPhase[r.Phase] = r
		if r.Requests == 0 || r.Concurrency == 0 {
			t.Errorf("%s: empty run: %+v", r.Phase, r)
		}
		if r.P50Ms <= 0 || r.P99Ms < r.P50Ms {
			t.Errorf("%s: implausible latencies: %+v", r.Phase, r)
		}
	}
	cold, hot, mixed := byPhase["cold"], byPhase["hot"], byPhase["mixed"]
	if cold.CacheHits != 0 || cold.HitRate != 0 {
		t.Errorf("cold phase hit the cache: %+v", cold)
	}
	// The hot pool repeats 8 queries 240 times: at least 90% must hit.
	if hot.HitRate < 0.9 {
		t.Errorf("hot phase hit rate %.2f, want >= 0.9", hot.HitRate)
	}
	// Mixed is 80/20 hot/distinct: the hit rate sits between the two.
	if mixed.HitRate <= cold.HitRate || mixed.HitRate >= hot.HitRate {
		t.Errorf("mixed hit rate %.2f not between cold %.2f and hot %.2f",
			mixed.HitRate, cold.HitRate, hot.HitRate)
	}
	if len(ctxs) == 0 {
		t.Error("Observe never saw the engine context")
	}
}
