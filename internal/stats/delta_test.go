package stats

import (
	"testing"

	"stark/internal/geom"
	"stark/internal/stobject"
	"stark/internal/temporal"
)

func dpt(x, y float64) stobject.STObject { return stobject.New(geom.NewPoint(x, y)) }

func TestIncrementalCountsAndExtents(t *testing.T) {
	inc := NewIncremental(2, 8)
	inc.ApplyInsert(0, dpt(1, 1))
	inc.ApplyInsert(0, stobject.NewWithTime(geom.NewPoint(2, 2), temporal.Instant(10)))
	inc.ApplyInsert(1, dpt(9, 9))
	inc.ApplyDelete(0, dpt(1, 1))

	s := inc.Summary()
	if s.Count != 2 || s.Parts[0].Count != 1 || s.Parts[1].Count != 1 {
		t.Fatalf("counts total=%d p0=%d p1=%d", s.Count, s.Parts[0].Count, s.Parts[1].Count)
	}
	if s.Timed != 1 || s.TimeMin != 10 || s.TimeMax != 10 {
		t.Fatalf("timed=%d range=[%d,%d]", s.Timed, s.TimeMin, s.TimeMax)
	}
	// MBR is grow-only: it still covers the deleted point.
	if !s.MBR.ContainsPoint(1, 1) || !s.MBR.ContainsPoint(9, 9) {
		t.Fatalf("MBR %v", s.MBR)
	}
	if s.Grid == nil || s.Grid.Total != 2 {
		t.Fatalf("grid %+v", s.Grid)
	}
}

func TestIncrementalGridMaterialisesAtCap(t *testing.T) {
	inc := NewIncremental(1, 4)
	for i := 0; i < gridSeedCap; i++ {
		inc.ApplyInsert(0, dpt(float64(i%50), float64(i%37)))
	}
	if inc.sum.Grid == nil {
		t.Fatal("grid not materialised at seed cap")
	}
	if inc.sum.Grid.Total != float64(gridSeedCap) {
		t.Fatalf("grid total %v, want %d", inc.sum.Grid.Total, gridSeedCap)
	}
	// Points outside the frozen bounds clamp instead of corrupting.
	inc.ApplyInsert(0, dpt(1e6, -1e6))
	inc.ApplyDelete(0, dpt(1e6, -1e6))
	if inc.sum.Grid.Total != float64(gridSeedCap) {
		t.Fatalf("grid total %v after clamped insert+delete", inc.sum.Grid.Total)
	}
	for _, c := range inc.sum.Grid.Cells {
		if c < 0 {
			t.Fatal("negative histogram cell")
		}
	}
}

func TestIncrementalSummaryIsDeepCopy(t *testing.T) {
	inc := NewIncremental(1, 4)
	inc.ApplyInsert(0, dpt(5, 5))
	s1 := inc.Summary()
	inc.ApplyInsert(0, dpt(6, 6))
	s2 := inc.Summary()
	if s1.Count != 1 || s2.Count != 2 {
		t.Fatalf("snapshots share state: s1=%d s2=%d", s1.Count, s2.Count)
	}
	if s1.Grid != nil && s2.Grid != nil && &s1.Grid.Cells[0] == &s2.Grid.Cells[0] {
		t.Fatal("histogram cells aliased between snapshots")
	}
	s1.Parts[0].Count = 99
	if inc.sum.Parts[0].Count == 99 {
		t.Fatal("mutating a snapshot leaked into the maintainer")
	}
}
