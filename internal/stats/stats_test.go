package stats

import (
	"math"
	"testing"

	"stark/internal/engine"
	"stark/internal/geom"
	"stark/internal/stobject"
	"stark/internal/temporal"
)

// grid4 builds 4 partitions of 100 points each, partition p occupying
// the square [100p, 100p+10]², with timestamps 1000p..1000p+99.
func grid4(ctx *engine.Context) *engine.Dataset[engine.Pair[stobject.STObject, int]] {
	parts := make([][]engine.Pair[stobject.STObject, int], 4)
	for p := 0; p < 4; p++ {
		for i := 0; i < 100; i++ {
			x := float64(100*p) + float64(i%10)
			y := float64(i / 10)
			t := temporal.Instant(1000*p + i)
			obj := stobject.NewWithTime(geom.Point{X: x, Y: y}, t)
			parts[p] = append(parts[p], engine.NewPair(obj, p*100+i))
		}
	}
	return engine.FromPartitions(ctx, parts)
}

func TestCollectSummary(t *testing.T) {
	ctx := engine.NewContext(4)
	sum, err := Collect(grid4(ctx), 16)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Count != 400 {
		t.Errorf("count = %d, want 400", sum.Count)
	}
	if len(sum.Parts) != 4 {
		t.Fatalf("parts = %d", len(sum.Parts))
	}
	for p, ps := range sum.Parts {
		if ps.Count != 100 {
			t.Errorf("partition %d count = %d", p, ps.Count)
		}
		wantMin := float64(100 * p)
		if ps.MBR.MinX != wantMin || ps.MBR.MaxX != wantMin+9 {
			t.Errorf("partition %d MBR X = [%v, %v], want [%v, %v]",
				p, ps.MBR.MinX, ps.MBR.MaxX, wantMin, wantMin+9)
		}
		if ps.Timed != 100 || ps.TimeMin != int64(1000*p) || ps.TimeMax != int64(1000*p+99) {
			t.Errorf("partition %d temporal = (%d, %d, %d)", p, ps.Timed, ps.TimeMin, ps.TimeMax)
		}
	}
	if sum.TimeMin != 0 || sum.TimeMax != 3099 {
		t.Errorf("global time = [%d, %d]", sum.TimeMin, sum.TimeMax)
	}
	if got := ctx.Metrics().Snapshot().StatsRecords; got != 400 {
		t.Errorf("StatsRecords = %d, want 400", got)
	}
	if snap := ctx.Metrics().Snapshot(); snap.ElementsScanned != 0 {
		t.Errorf("stats pass charged ElementsScanned = %d, want 0", snap.ElementsScanned)
	}
}

func TestHistogramEstimate(t *testing.T) {
	ctx := engine.NewContext(4)
	sum, err := Collect(grid4(ctx), 32)
	if err != nil {
		t.Fatal(err)
	}
	// A window over partition 0's square only: ~100 of 400 records.
	est := sum.Grid.EstimateRows(geom.NewEnvelope(-1, -1, 11, 11))
	if math.Abs(est-100) > 25 {
		t.Errorf("estimate over partition 0 = %v, want ~100", est)
	}
	// A window over empty space between the clusters.
	if est := sum.Grid.EstimateRows(geom.NewEnvelope(40, 40, 60, 60)); est > 5 {
		t.Errorf("estimate over empty space = %v, want ~0", est)
	}
	// Selectivity of the full extent is ~1.
	if sel := sum.Selectivity(sum.MBR); sel < 0.9 {
		t.Errorf("full-extent selectivity = %v", sel)
	}
}

func TestVisitPruning(t *testing.T) {
	ctx := engine.NewContext(4)
	sum, err := Collect(grid4(ctx), 16)
	if err != nil {
		t.Fatal(err)
	}
	// Spatial pruning: only partition 2 intersects.
	visit := sum.Visit([]geom.Envelope{geom.NewEnvelope(205, 2, 208, 5)}, nil)
	if len(visit) != 1 || visit[0] != 2 {
		t.Errorf("visit = %v, want [2]", visit)
	}
	// Temporal pruning: window [1500, 2500] overlaps only partition 2
	// (partition p spans [1000p, 1000p+99]).
	visit = sum.Visit(nil, []TimeFilter{{Begin: 1500, End: 2500}})
	if len(visit) != 1 || visit[0] != 2 {
		t.Errorf("temporal visit = %v, want [2]", visit)
	}
	// Combined: spatial hits partition 2, temporal only partition 1 →
	// nothing left.
	visit = sum.Visit([]geom.Envelope{geom.NewEnvelope(205, 2, 208, 5)},
		[]TimeFilter{{Begin: 1200, End: 1300}})
	if len(visit) != 0 {
		t.Errorf("combined visit = %v, want empty", visit)
	}
	if rows := sum.RowsIn([]int{1, 2}); rows != 200 {
		t.Errorf("RowsIn = %d", rows)
	}
}

func TestTemporalSelectivity(t *testing.T) {
	ctx := engine.NewContext(4)
	sum, err := Collect(grid4(ctx), 16)
	if err != nil {
		t.Fatal(err)
	}
	if sel := sum.TemporalSelectivity(10_000, 20_000); sel != 0 {
		t.Errorf("disjoint window selectivity = %v", sel)
	}
	full := sum.TemporalSelectivity(0, 3099)
	if math.Abs(full-1) > 1e-9 {
		t.Errorf("full window selectivity = %v, want 1", full)
	}
	half := sum.TemporalSelectivity(0, 1549)
	if half <= 0.3 || half >= 0.7 {
		t.Errorf("half window selectivity = %v, want ~0.5", half)
	}
}

func TestCollectEmpty(t *testing.T) {
	ctx := engine.NewContext(2)
	ds := engine.Parallelize(ctx, []engine.Pair[stobject.STObject, int]{}, 3)
	sum, err := Collect(ds, 8)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Count != 0 || sum.Grid != nil {
		t.Errorf("empty summary = %+v", sum)
	}
	if visit := sum.Visit([]geom.Envelope{geom.NewEnvelope(0, 0, 1, 1)}, nil); len(visit) != 0 {
		t.Errorf("visit on empty = %v", visit)
	}
}
