// Package stats collects dataset statistics for the cost-based query
// planner (internal/plan): per-partition minimum bounding rectangles,
// record counts, temporal extents, and a coarse spatial grid histogram
// estimating how records are distributed over the data space.
//
// Everything is gathered in ONE streaming pass over the fused
// partition pipeline — records flow through lightweight accumulators
// and only the summaries survive. The histogram is built from a
// bounded per-partition reservoir sample of record centroids, scaled
// back to the full partition counts, so the pass stays O(1) memory per
// partition regardless of dataset size.
//
// Summaries are cached by the owning dataset (core.SpatialDataset
// caches one per instance); because repartitioning and filtering
// produce new dataset instances, a summary can never outlive the
// layout it describes.
package stats

import (
	"fmt"
	"math/rand"
	"strings"

	"stark/internal/attr"
	"stark/internal/engine"
	"stark/internal/geom"
	"stark/internal/stobject"
)

// DefaultGridSize is the default resolution (cells per dimension) of
// the spatial histogram.
const DefaultGridSize = 32

// sampleCap bounds the per-partition centroid reservoir the histogram
// is estimated from.
const sampleCap = 1024

// PartitionStats summarises one partition.
type PartitionStats struct {
	// Count is the number of records in the partition.
	Count int64 `json:"count"`
	// MBR is the minimum bounding rectangle of the record envelopes;
	// empty when the partition holds no records.
	MBR geom.Envelope `json:"mbr"`
	// Timed counts the records carrying a temporal component.
	Timed int64 `json:"timed"`
	// TimeMin/TimeMax bound the validity intervals of the timed
	// records; meaningful only when Timed > 0.
	TimeMin int64 `json:"timeMin"`
	TimeMax int64 `json:"timeMax"`
}

// Histogram is a coarse N×N spatial grid over the data envelope. Cell
// values are estimated record counts (scaled from the centroid
// sample), row-major with (0,0) at (MinX, MinY).
type Histogram struct {
	Bounds geom.Envelope `json:"bounds"`
	N      int           `json:"n"`
	Cells  []float64     `json:"-"`
	Total  float64       `json:"total"`
}

// Summary is the full statistics bundle of one dataset.
type Summary struct {
	// Count is the total number of records.
	Count int64 `json:"count"`
	// MBR is the envelope of all record envelopes.
	MBR geom.Envelope `json:"mbr"`
	// Timed counts records with a temporal component; TimeMin/TimeMax
	// bound their intervals (meaningful only when Timed > 0).
	Timed   int64 `json:"timed"`
	TimeMin int64 `json:"timeMin"`
	TimeMax int64 `json:"timeMax"`
	// Parts holds the per-partition statistics, indexed by partition.
	Parts []PartitionStats `json:"partitions"`
	// Grid is the spatial histogram, nil for an empty dataset.
	Grid *Histogram `json:"grid,omitempty"`
	// Fields holds per-field attribute statistics (min/max/NDV/
	// histogram), keyed by field name. Populated only when the sweep
	// was given a schema's extractors (CollectFields); nil otherwise,
	// in which case attribute selectivities fall back to
	// attr.DefaultSelectivity.
	Fields map[string]*attr.FieldStats `json:"fields,omitempty"`
}

// FieldStats returns the statistics of one field, or nil.
func (s *Summary) FieldStats(name string) *attr.FieldStats {
	if s == nil {
		return nil
	}
	return s.Fields[name]
}

// Collect runs the single statistics pass over a dataset of
// (STObject, V) records. gridN <= 0 selects DefaultGridSize. Records
// seen by the pass are charged to the engine's StatsRecords metric,
// not to ElementsScanned: statistics collection is planner overhead,
// not predicate work.
func Collect[V any](ds *engine.Dataset[engine.Pair[stobject.STObject, V]], gridN int) (*Summary, error) {
	return CollectFields(ds, gridN, nil)
}

// CollectFields is Collect with attribute-field extractors threaded
// into the same one-pass sweep: each record's tagged fields feed
// per-field accumulators (min/max, bounded distinct set, numeric
// reservoir), merged across partitions into Summary.Fields.
func CollectFields[V any](ds *engine.Dataset[engine.Pair[stobject.STObject, V]], gridN int, fields []attr.Field[V]) (*Summary, error) {
	if gridN <= 0 {
		gridN = DefaultGridSize
	}
	n := ds.NumPartitions()
	type acc struct {
		ps     PartitionStats
		sample []geom.Point
		seen   int64
		fields []*attr.FieldAcc
	}
	accs := make([]acc, n)
	parts := make([]int, n)
	for i := range parts {
		parts[i] = i
	}
	metrics := ds.Context().Metrics()
	err := ds.Context().RunJob(parts, func(p int) error {
		a := acc{ps: PartitionStats{MBR: geom.EmptyEnvelope()}}
		if len(fields) > 0 {
			a.fields = make([]*attr.FieldAcc, len(fields))
			for i, f := range fields {
				a.fields[i] = attr.NewFieldAcc(f.Name, f.Kind, int64(p)*31+int64(i))
			}
		}
		// Deterministic reservoir so repeated collections (and the
		// histogram estimates derived from them) are reproducible.
		rng := rand.New(rand.NewSource(int64(p)*2654435761 + 1))
		err := ds.EachPartition(p, func(kv engine.Pair[stobject.STObject, V]) bool {
			a.ps.Count++
			a.ps.MBR = a.ps.MBR.ExpandToInclude(kv.Key.Envelope())
			if iv, ok := kv.Key.Time(); ok {
				if a.ps.Timed == 0 {
					a.ps.TimeMin, a.ps.TimeMax = int64(iv.Start), int64(iv.End)
				} else {
					if int64(iv.Start) < a.ps.TimeMin {
						a.ps.TimeMin = int64(iv.Start)
					}
					if int64(iv.End) > a.ps.TimeMax {
						a.ps.TimeMax = int64(iv.End)
					}
				}
				a.ps.Timed++
			}
			for i, f := range fields {
				a.fields[i].Add(f.Get(kv.Value))
			}
			c := kv.Key.Centroid()
			a.seen++
			if len(a.sample) < sampleCap {
				a.sample = append(a.sample, c)
			} else if j := rng.Int63n(a.seen); j < sampleCap {
				a.sample[j] = c
			}
			return true
		})
		if err != nil {
			return err
		}
		metrics.StatsRecords.Add(a.ps.Count)
		accs[p] = a
		return nil
	})
	if err != nil {
		return nil, err
	}

	sum := &Summary{MBR: geom.EmptyEnvelope(), Parts: make([]PartitionStats, n)}
	for p, a := range accs {
		sum.Parts[p] = a.ps
		sum.Count += a.ps.Count
		sum.MBR = sum.MBR.ExpandToInclude(a.ps.MBR)
		if a.ps.Timed > 0 {
			if sum.Timed == 0 {
				sum.TimeMin, sum.TimeMax = a.ps.TimeMin, a.ps.TimeMax
			} else {
				if a.ps.TimeMin < sum.TimeMin {
					sum.TimeMin = a.ps.TimeMin
				}
				if a.ps.TimeMax > sum.TimeMax {
					sum.TimeMax = a.ps.TimeMax
				}
			}
			sum.Timed += a.ps.Timed
		}
	}
	if len(fields) > 0 {
		sum.Fields = make(map[string]*attr.FieldStats, len(fields))
		for i, f := range fields {
			merged := attr.NewFieldAcc(f.Name, f.Kind, int64(i))
			for p := range accs {
				if accs[p].fields != nil {
					merged.Merge(accs[p].fields[i])
				}
			}
			sum.Fields[f.Name] = merged.Finish(DefaultGridSize)
		}
	}
	if sum.Count == 0 {
		return sum, nil
	}

	h := &Histogram{Bounds: sum.MBR, N: gridN, Cells: make([]float64, gridN*gridN)}
	for _, a := range accs {
		if len(a.sample) == 0 {
			continue
		}
		// Each sampled centroid stands for count/len(sample) records.
		w := float64(a.ps.Count) / float64(len(a.sample))
		for _, c := range a.sample {
			h.Cells[h.cellIndex(c.X, c.Y)] += w
		}
		h.Total += float64(a.ps.Count)
	}
	sum.Grid = h
	return sum, nil
}

// cellIndex maps a point to its row-major cell, clamping to the grid.
func (h *Histogram) cellIndex(x, y float64) int {
	cx := cellCoord(x, h.Bounds.MinX, h.Bounds.Width(), h.N)
	cy := cellCoord(y, h.Bounds.MinY, h.Bounds.Height(), h.N)
	return cy*h.N + cx
}

func cellCoord(v, min, span float64, n int) int {
	if span <= 0 {
		return 0
	}
	c := int((v - min) / span * float64(n))
	if c < 0 {
		c = 0
	}
	if c >= n {
		c = n - 1
	}
	return c
}

// EstimateRows estimates how many records have their centroid inside
// q, summing cell counts weighted by the fraction of each cell q
// covers.
func (h *Histogram) EstimateRows(q geom.Envelope) float64 {
	if h == nil || h.Total == 0 || q.IsEmpty() || !h.Bounds.Intersects(q) {
		return 0
	}
	cw := h.Bounds.Width() / float64(h.N)
	ch := h.Bounds.Height() / float64(h.N)
	lox := cellCoord(q.MinX, h.Bounds.MinX, h.Bounds.Width(), h.N)
	hix := cellCoord(q.MaxX, h.Bounds.MinX, h.Bounds.Width(), h.N)
	loy := cellCoord(q.MinY, h.Bounds.MinY, h.Bounds.Height(), h.N)
	hiy := cellCoord(q.MaxY, h.Bounds.MinY, h.Bounds.Height(), h.N)
	var est float64
	for cy := loy; cy <= hiy; cy++ {
		for cx := lox; cx <= hix; cx++ {
			cnt := h.Cells[cy*h.N+cx]
			if cnt == 0 {
				continue
			}
			cell := geom.Envelope{
				MinX: h.Bounds.MinX + float64(cx)*cw,
				MinY: h.Bounds.MinY + float64(cy)*ch,
				MaxX: h.Bounds.MinX + float64(cx+1)*cw,
				MaxY: h.Bounds.MinY + float64(cy+1)*ch,
			}
			est += cnt * overlapFraction(cell, q)
		}
	}
	if est > h.Total {
		est = h.Total
	}
	return est
}

// overlapFraction returns the fraction of cell covered by q, treating
// degenerate (zero-area) cells as fully covered when they intersect.
func overlapFraction(cell, q geom.Envelope) float64 {
	inter := cell.Intersection(q)
	if inter.IsEmpty() {
		return 0
	}
	fx, fy := 1.0, 1.0
	if cell.Width() > 0 {
		fx = inter.Width() / cell.Width()
	}
	if cell.Height() > 0 {
		fy = inter.Height() / cell.Height()
	}
	return fx * fy
}

// Selectivity estimates the fraction of records whose centroid falls
// inside q, in [0, 1].
func (s *Summary) Selectivity(q geom.Envelope) float64 {
	if s.Count == 0 {
		return 0
	}
	sel := s.Grid.EstimateRows(q) / float64(s.Count)
	if sel > 1 {
		sel = 1
	}
	return sel
}

// TemporalSelectivity estimates the fraction of records a temporal
// window [begin, end] can match under the combined semantics: records
// without a time component never match a timed query, and timed
// records match only when their interval can overlap the window.
func (s *Summary) TemporalSelectivity(begin, end int64) float64 {
	if s.Count == 0 || s.Timed == 0 {
		return 0
	}
	timedFrac := float64(s.Timed) / float64(s.Count)
	span := s.TimeMax - s.TimeMin
	if end < s.TimeMin || begin > s.TimeMax {
		return 0
	}
	if span <= 0 {
		return timedFrac
	}
	lo, hi := begin, end
	if lo < s.TimeMin {
		lo = s.TimeMin
	}
	if hi > s.TimeMax {
		hi = s.TimeMax
	}
	frac := float64(hi-lo) / float64(span)
	if frac > 1 {
		frac = 1
	}
	return timedFrac * frac
}

// TimeFilter describes a temporal pruning constraint.
type TimeFilter struct {
	Begin, End int64
}

// Visit returns the partitions a query must visit: those whose MBR
// intersects every envelope in envs and, when times are given, whose
// temporal extent can overlap every window. A timed query can skip
// partitions with no timed records at all (combined semantics: a
// record without time never matches a timed query). The result is
// sorted ascending; pruning is safe because MBRs and temporal extents
// are exact over-approximations of the partition contents.
func (s *Summary) Visit(envs []geom.Envelope, times []TimeFilter) []int {
	visit := make([]int, 0, len(s.Parts))
	for i, ps := range s.Parts {
		if ps.Count == 0 {
			continue
		}
		hit := true
		for _, env := range envs {
			if !ps.MBR.Intersects(env) {
				hit = false
				break
			}
		}
		if hit {
			for _, tf := range times {
				if ps.Timed == 0 || tf.End < ps.TimeMin || tf.Begin > ps.TimeMax {
					hit = false
					break
				}
			}
		}
		if hit {
			visit = append(visit, i)
		}
	}
	return visit
}

// RowsIn sums the record counts of the given partitions.
func (s *Summary) RowsIn(visit []int) int64 {
	var n int64
	for _, p := range visit {
		n += s.Parts[p].Count
	}
	return n
}

// String renders a one-line summary for diagnostics.
func (s *Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "stats{count=%d parts=%d mbr=%s", s.Count, len(s.Parts), s.MBR)
	if s.Timed > 0 {
		fmt.Fprintf(&b, " time=[%d,%d] timed=%d", s.TimeMin, s.TimeMax, s.Timed)
	}
	if s.Grid != nil {
		fmt.Fprintf(&b, " grid=%dx%d", s.Grid.N, s.Grid.N)
	}
	b.WriteString("}")
	return b.String()
}
