package stats

import (
	"stark/internal/attr"
	"stark/internal/geom"
	"stark/internal/stobject"
)

// This file maintains a Summary incrementally for mutable datasets:
// instead of re-running the Collect pass after every mutation batch,
// each insert and delete applies an O(1) delta. The maintained fields
// keep exactly the properties the planner relies on:
//
//   - Counts (total, per partition, timed) are exact, so partition
//     pruning by Count == 0 and row estimates stay truthful.
//   - MBRs and temporal extents are grow-only over-approximations:
//     deletes do not shrink them. Visit-style pruning only requires
//     that extents CONTAIN the live records, so pruning stays safe;
//     estimates merely lose some sharpness until a vacuum-triggered
//     reseed tightens them again.
//   - The histogram applies exact weight-1 updates at the record's
//     centroid cell. Its bounds are fixed once materialised (cells
//     cannot be rescaled in place), so centroids falling outside
//     later are clamped to edge cells — degrading estimate quality
//     gracefully, never correctness.
//
// For datasets that start empty the histogram bounds are unknown, so
// centroids are buffered until either enough points arrived or a
// Summary is requested, then the grid is materialised over the MBR
// seen so far plus headroom for future growth.

// gridSeedCap is how many centroids are buffered before the histogram
// bounds are frozen.
const gridSeedCap = 1024

// gridHeadroom is the fraction of each MBR span added on both sides
// when materialising histogram bounds, so early growth stays in
// range.
const gridHeadroom = 0.25

// Incremental maintains a Summary under single-writer mutation
// batches. It is NOT safe for concurrent use; the owning dataset
// serialises all calls (including Summary) behind its writer mutex.
type Incremental struct {
	sum     Summary
	gridN   int
	pending []geom.Point
}

// NewIncremental returns an empty maintainer for a dataset with the
// given partition count; gridN <= 0 selects DefaultGridSize.
func NewIncremental(parts, gridN int) *Incremental {
	if gridN <= 0 {
		gridN = DefaultGridSize
	}
	inc := &Incremental{gridN: gridN}
	inc.sum = Summary{MBR: geom.EmptyEnvelope(), Parts: make([]PartitionStats, parts)}
	for i := range inc.sum.Parts {
		inc.sum.Parts[i].MBR = geom.EmptyEnvelope()
	}
	return inc
}

// ApplyInsert folds one inserted record into the summary.
func (inc *Incremental) ApplyInsert(p int, key stobject.STObject) {
	env := key.Envelope()
	ps := &inc.sum.Parts[p]
	ps.Count++
	ps.MBR = ps.MBR.ExpandToInclude(env)
	inc.sum.Count++
	inc.sum.MBR = inc.sum.MBR.ExpandToInclude(env)
	if iv, ok := key.Time(); ok {
		growTime(&ps.Timed, &ps.TimeMin, &ps.TimeMax, int64(iv.Start), int64(iv.End))
		growTime(&inc.sum.Timed, &inc.sum.TimeMin, &inc.sum.TimeMax, int64(iv.Start), int64(iv.End))
	}
	c := key.Centroid()
	if inc.sum.Grid == nil {
		inc.pending = append(inc.pending, c)
		if len(inc.pending) >= gridSeedCap {
			inc.materialiseGrid()
		}
		return
	}
	inc.sum.Grid.addWeight(c, 1)
}

// ApplyDelete folds one deleted record out of the summary. key must
// be the record as stored (the tree returns it from the tombstoned
// entry), so the histogram delta lands on the same cell the insert
// charged.
func (inc *Incremental) ApplyDelete(p int, key stobject.STObject) {
	ps := &inc.sum.Parts[p]
	ps.Count--
	inc.sum.Count--
	if _, ok := key.Time(); ok {
		ps.Timed--
		inc.sum.Timed--
	}
	c := key.Centroid()
	if inc.sum.Grid == nil {
		for i := range inc.pending {
			if inc.pending[i] == c {
				inc.pending[i] = inc.pending[len(inc.pending)-1]
				inc.pending = inc.pending[:len(inc.pending)-1]
				break
			}
		}
		return
	}
	inc.sum.Grid.addWeight(c, -1)
}

// Summary materialises any buffered histogram points and returns a
// deep copy safe to publish to concurrent readers.
func (inc *Incremental) Summary() *Summary {
	if inc.sum.Grid == nil && len(inc.pending) > 0 {
		inc.materialiseGrid()
	}
	return inc.sum.Clone()
}

// materialiseGrid freezes histogram bounds over the MBR seen so far
// (expanded by headroom) and replays the buffered centroids.
func (inc *Incremental) materialiseGrid() {
	b := inc.sum.MBR
	hx, hy := b.Width()*gridHeadroom, b.Height()*gridHeadroom
	if hx <= 0 {
		hx = 1
	}
	if hy <= 0 {
		hy = 1
	}
	b = geom.NewEnvelope(b.MinX-hx, b.MinY-hy, b.MaxX+hx, b.MaxY+hy)
	h := &Histogram{Bounds: b, N: inc.gridN, Cells: make([]float64, inc.gridN*inc.gridN)}
	inc.sum.Grid = h
	for _, c := range inc.pending {
		h.addWeight(c, 1)
	}
	inc.pending = nil
}

// addWeight applies a ±1 centroid delta, flooring at zero so clamping
// asymmetries can never drive estimates negative.
func (h *Histogram) addWeight(c geom.Point, w float64) {
	i := h.cellIndex(c.X, c.Y)
	h.Cells[i] += w
	if h.Cells[i] < 0 {
		h.Cells[i] = 0
	}
	h.Total += w
	if h.Total < 0 {
		h.Total = 0
	}
}

func growTime(timed *int64, min, max *int64, start, end int64) {
	if *timed == 0 {
		*min, *max = start, end
	} else {
		if start < *min {
			*min = start
		}
		if end > *max {
			*max = end
		}
	}
	*timed++
}

// Clone returns a deep copy of the summary (partitions and histogram
// included), so a published snapshot cannot observe later deltas.
func (s *Summary) Clone() *Summary {
	out := *s
	out.Parts = append([]PartitionStats(nil), s.Parts...)
	if s.Grid != nil {
		g := *s.Grid
		g.Cells = append([]float64(nil), s.Grid.Cells...)
		out.Grid = &g
	}
	if s.Fields != nil {
		// FieldStats values are immutable once built; copying the map
		// header is enough to isolate the snapshot.
		out.Fields = make(map[string]*attr.FieldStats, len(s.Fields))
		for k, v := range s.Fields {
			out.Fields[k] = v
		}
	}
	return &out
}
