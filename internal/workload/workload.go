// Package workload generates the synthetic datasets the benchmark
// harness and examples run on — the stand-in for the paper's
// real-world event data (Wikipedia events and the 1,000,000-point set
// of the Figure 4 micro-benchmark), which is not published.
//
// All generators are seeded and deterministic. The skewed generator
// reproduces the data property the paper's partitioning discussion
// hinges on: events concentrate on "land" (dense clusters) while most
// of the space ("sea") stays empty, which breaks equal-grid
// partitioning and motivates cost-based BSP.
package workload

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"stark/internal/attr"
	"stark/internal/dfs"
	"stark/internal/engine"
	"stark/internal/geom"
	"stark/internal/stobject"
	"stark/internal/temporal"
)

// Event is the paper's running-example record: (id: Int, category:
// String, time: Long, wkt: String).
type Event struct {
	ID       int
	Category string
	Time     int64
	WKT      string
}

// Categories used by the event generator.
var Categories = []string{"politics", "sports", "culture", "disaster", "science"}

// EventSchema returns the attribute schema of Event: the typed field
// accessors the query service and benchmarks register so id, category
// and time are filterable with typed predicates.
func EventSchema() *attr.Schema[Event] {
	return attr.NewSchema[Event]().
		Int64("id", func(e Event) int64 { return int64(e.ID) }).
		String("category", func(e Event) string { return e.Category }).
		Int64("time", func(e Event) int64 { return e.Time })
}

// Distribution selects the spatial distribution of generated points.
type Distribution int

const (
	// Uniform spreads points uniformly over the space.
	Uniform Distribution = iota
	// Skewed concentrates points in a few Gaussian clusters
	// ("events on land"), leaving most of the space empty.
	Skewed
	// Diagonal concentrates points around the main diagonal,
	// a classic spatial-join stress distribution.
	Diagonal
)

// String names the distribution.
func (d Distribution) String() string {
	switch d {
	case Uniform:
		return "uniform"
	case Skewed:
		return "skewed"
	case Diagonal:
		return "diagonal"
	default:
		return fmt.Sprintf("distribution(%d)", int(d))
	}
}

// Config parameterises the generators.
type Config struct {
	// N is the number of points/events to generate.
	N int
	// Seed makes runs reproducible.
	Seed int64
	// Width and Height bound the data space ([0,Width)×[0,Height));
	// zero values default to 1000×1000.
	Width, Height float64
	// Dist selects the spatial distribution.
	Dist Distribution
	// Clusters is the number of Gaussian clusters for Skewed; zero
	// defaults to 12.
	Clusters int
	// Spread is the standard deviation of the Skewed clusters in
	// space units; zero defaults to Width/60. Small values produce
	// the heavy "events on land" concentration that breaks equal-grid
	// partitioning.
	Spread float64
	// TimeRange bounds the generated instants ([0, TimeRange)); zero
	// defaults to 1_000_000.
	TimeRange int64
}

func (c Config) withDefaults() Config {
	if c.Width <= 0 {
		c.Width = 1000
	}
	if c.Height <= 0 {
		c.Height = 1000
	}
	if c.Clusters <= 0 {
		c.Clusters = 12
	}
	if c.TimeRange <= 0 {
		c.TimeRange = 1_000_000
	}
	return c
}

// Points generates n spatial points under the configured
// distribution.
func Points(cfg Config) []geom.Point {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	pts := make([]geom.Point, cfg.N)
	switch cfg.Dist {
	case Skewed:
		centers := make([]geom.Point, cfg.Clusters)
		for i := range centers {
			centers[i] = geom.Point{X: rng.Float64() * cfg.Width, Y: rng.Float64() * cfg.Height}
		}
		sdX, sdY := cfg.Width/60, cfg.Height/60
		if cfg.Spread > 0 {
			sdX, sdY = cfg.Spread, cfg.Spread
		}
		for i := range pts {
			c := centers[rng.Intn(len(centers))]
			pts[i] = geom.Point{
				X: clamp(c.X+rng.NormFloat64()*sdX, 0, cfg.Width),
				Y: clamp(c.Y+rng.NormFloat64()*sdY, 0, cfg.Height),
			}
		}
	case Diagonal:
		sd := cfg.Height / 40
		for i := range pts {
			t := rng.Float64()
			pts[i] = geom.Point{
				X: clamp(t*cfg.Width+rng.NormFloat64()*sd, 0, cfg.Width),
				Y: clamp(t*cfg.Height+rng.NormFloat64()*sd, 0, cfg.Height),
			}
		}
	default:
		for i := range pts {
			pts[i] = geom.Point{X: rng.Float64() * cfg.Width, Y: rng.Float64() * cfg.Height}
		}
	}
	return pts
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// STPoints generates timestamped STObjects under the configuration.
func STPoints(cfg Config) []stobject.STObject {
	cfg = cfg.withDefaults()
	pts := Points(cfg)
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	out := make([]stobject.STObject, len(pts))
	for i, p := range pts {
		out[i] = stobject.NewWithTime(p, temporal.Instant(rng.Int63n(cfg.TimeRange)))
	}
	return out
}

// Tuples generates (STObject, int) pairs ready for core.Wrap; the
// value is the record index.
func Tuples(cfg Config) []engine.Pair[stobject.STObject, int] {
	objs := STPoints(cfg)
	out := make([]engine.Pair[stobject.STObject, int], len(objs))
	for i, o := range objs {
		out[i] = engine.NewPair(o, i)
	}
	return out
}

// SpatialTuples is Tuples without the temporal component — the
// Figure-4 self-join input.
func SpatialTuples(cfg Config) []engine.Pair[stobject.STObject, int] {
	pts := Points(cfg)
	out := make([]engine.Pair[stobject.STObject, int], len(pts))
	for i, p := range pts {
		out[i] = engine.NewPair(stobject.New(p), i)
	}
	return out
}

// Events generates the running-example event records.
func Events(cfg Config) []Event {
	cfg = cfg.withDefaults()
	pts := Points(cfg)
	rng := rand.New(rand.NewSource(cfg.Seed + 2))
	out := make([]Event, len(pts))
	for i, p := range pts {
		out[i] = Event{
			ID:       i,
			Category: Categories[rng.Intn(len(Categories))],
			Time:     rng.Int63n(cfg.TimeRange),
			WKT:      geom.Point{X: p.X, Y: p.Y}.WKT(),
		}
	}
	return out
}

// Regions generates m axis-aligned rectangular regions (as WKT
// polygons) for join workloads; side lengths are a fraction of the
// space.
func Regions(cfg Config, m int) []stobject.STObject {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed + 3))
	out := make([]stobject.STObject, m)
	for i := range out {
		w := (0.005 + rng.Float64()*0.02) * cfg.Width
		h := (0.005 + rng.Float64()*0.02) * cfg.Height
		x := rng.Float64() * (cfg.Width - w)
		y := rng.Float64() * (cfg.Height - h)
		out[i] = stobject.New(geom.NewEnvelope(x, y, x+w, y+h).ToPolygon())
	}
	return out
}

// ---- CSV round trip through the simulated HDFS ----

// EventsCSVHeader is the column list of WriteEventsCSV.
const EventsCSVHeader = "id,category,time,wkt"

// WriteEventsCSV stores events as CSV on the file system, modelling
// the paper's "load raw data from HDFS" step. The WKT field is
// written last and may contain commas, so it is not quoted but
// parsed positionally.
func WriteEventsCSV(fs *dfs.FileSystem, path string, events []Event) error {
	lines := make([]string, 0, len(events)+1)
	lines = append(lines, EventsCSVHeader)
	for _, e := range events {
		lines = append(lines, fmt.Sprintf("%d,%s,%d,%s", e.ID, e.Category, e.Time, e.WKT))
	}
	return fs.WriteLines(path, lines)
}

// ReadEventsCSV loads events written by WriteEventsCSV.
func ReadEventsCSV(fs *dfs.FileSystem, path string) ([]Event, error) {
	lines, err := fs.ReadLines(path)
	if err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("workload: %s is empty", path)
	}
	if lines[0] != EventsCSVHeader {
		return nil, fmt.Errorf("workload: %s has unexpected header %q", path, lines[0])
	}
	events := make([]Event, 0, len(lines)-1)
	for i, line := range lines[1:] {
		e, err := ParseEventLine(line)
		if err != nil {
			return nil, fmt.Errorf("workload: %s line %d: %w", path, i+2, err)
		}
		events = append(events, e)
	}
	return events, nil
}

// ParseEventLine parses one "id,category,time,wkt" line; the wkt
// field is everything after the third comma.
func ParseEventLine(line string) (Event, error) {
	parts := strings.SplitN(line, ",", 4)
	if len(parts) != 4 {
		return Event{}, fmt.Errorf("expected 4 fields, got %d", len(parts))
	}
	id, err := strconv.Atoi(strings.TrimSpace(parts[0]))
	if err != nil {
		return Event{}, fmt.Errorf("bad id %q", parts[0])
	}
	ts, err := strconv.ParseInt(strings.TrimSpace(parts[2]), 10, 64)
	if err != nil {
		return Event{}, fmt.Errorf("bad time %q", parts[2])
	}
	return Event{ID: id, Category: strings.TrimSpace(parts[1]), Time: ts, WKT: strings.TrimSpace(parts[3])}, nil
}

// ToSTObject converts an event to its spatio-temporal key, parsing
// the WKT — the pre-processing map step of the paper's example.
func (e Event) ToSTObject() (stobject.STObject, error) {
	return stobject.FromWKTWithTime(e.WKT, temporal.Instant(e.Time))
}

// EventTuples converts events to (STObject, Event) pairs, dropping
// records with invalid WKT (returned count reports drops).
func EventTuples(events []Event) ([]engine.Pair[stobject.STObject, Event], int) {
	out := make([]engine.Pair[stobject.STObject, Event], 0, len(events))
	dropped := 0
	for _, e := range events {
		o, err := e.ToSTObject()
		if err != nil {
			dropped++
			continue
		}
		out = append(out, engine.NewPair(o, e))
	}
	return out, dropped
}
