package workload

import (
	"testing"

	"stark/internal/geom"
	"stark/internal/temporal"
)

func TestTrajectoriesShape(t *testing.T) {
	reports := Trajectories(TrajectoryConfig{Objects: 5, Ticks: 20, Seed: 1})
	if len(reports) != 100 {
		t.Fatalf("reports = %d", len(reports))
	}
	// Ordered by object then sequence; all timed; inside the space.
	space := geom.NewEnvelope(0, 0, 1000, 1000)
	for i, kv := range reports {
		wantObj, wantSeq := i/20, i%20
		if kv.Value.ObjectID != wantObj || kv.Value.Seq != wantSeq {
			t.Fatalf("report %d = %+v", i, kv.Value)
		}
		iv, ok := kv.Key.Time()
		if !ok || iv.Start != temporal.Instant(wantSeq)*60 {
			t.Fatalf("report %d time = %v", i, iv)
		}
		c := kv.Key.Centroid()
		if !space.ContainsPoint(c.X, c.Y) {
			t.Fatalf("report %d escapes the space: %v", i, c)
		}
	}
}

func TestTrajectoriesDeterministicAndContinuous(t *testing.T) {
	a := Trajectories(TrajectoryConfig{Objects: 3, Ticks: 50, Seed: 2})
	b := Trajectories(TrajectoryConfig{Objects: 3, Ticks: 50, Seed: 2})
	for i := range a {
		if a[i].Key.Centroid() != b[i].Key.Centroid() {
			t.Fatal("same seed must give same trajectories")
		}
	}
	// Steps are bounded: consecutive reports of the same object stay
	// within ~2×(1.5×speed) even after a border bounce.
	cfg := TrajectoryConfig{Objects: 3, Ticks: 50, Seed: 2}.withDefaults()
	maxStep := 2 * 1.5 * cfg.Speed
	for i := 1; i < len(a); i++ {
		if a[i].Value.ObjectID != a[i-1].Value.ObjectID {
			continue
		}
		d := geom.Euclidean(a[i-1].Key.Centroid(), a[i].Key.Centroid())
		if d > maxStep {
			t.Fatalf("step %d jumps %v > %v", i, d, maxStep)
		}
	}
}

func TestTrajectoryLines(t *testing.T) {
	reports := Trajectories(TrajectoryConfig{Objects: 4, Ticks: 30, Seed: 3})
	lines := TrajectoryLines(reports)
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	for obj, ls := range lines {
		if ls.NumPoints() != 30 {
			t.Errorf("object %d line has %d points", obj, ls.NumPoints())
		}
		if ls.Length() <= 0 {
			t.Errorf("object %d has zero-length trajectory", obj)
		}
	}
	// Simplification shortens the vertex list but stays close.
	for _, ls := range lines {
		s := geom.Simplify(ls, 5)
		if s.NumPoints() > ls.NumPoints() {
			t.Error("simplify grew the line")
		}
	}
}
