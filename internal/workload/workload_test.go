package workload

import (
	"strings"
	"testing"

	"stark/internal/dfs"
	"stark/internal/geom"
	"stark/internal/partition"
	"stark/internal/stobject"
)

func TestPointsDeterministic(t *testing.T) {
	cfg := Config{N: 100, Seed: 7, Dist: Uniform}
	a := Points(cfg)
	b := Points(cfg)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give same points")
		}
	}
	c := Points(Config{N: 100, Seed: 8, Dist: Uniform})
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should differ")
	}
}

func TestPointsInBounds(t *testing.T) {
	for _, d := range []Distribution{Uniform, Skewed, Diagonal} {
		pts := Points(Config{N: 500, Seed: 1, Dist: d, Width: 100, Height: 50})
		for _, p := range pts {
			if p.X < 0 || p.X > 100 || p.Y < 0 || p.Y > 50 {
				t.Fatalf("%s: point %v out of bounds", d, p)
			}
		}
	}
}

func TestSkewedIsActuallySkewed(t *testing.T) {
	// Compare grid imbalance: skewed data must be much more
	// imbalanced than uniform under an equal grid.
	uniform := Points(Config{N: 5000, Seed: 2, Dist: Uniform})
	skewed := Points(Config{N: 5000, Seed: 2, Dist: Skewed})
	imbalanceOf := func(pts []geom.Point) float64 {
		objs := make([]stobject.STObject, len(pts))
		for i, p := range pts {
			objs[i] = stobject.New(p)
		}
		g, err := partition.NewGrid(8, objs)
		if err != nil {
			t.Fatal(err)
		}
		sizes := make([]int, g.NumPartitions())
		for _, o := range objs {
			sizes[g.PartitionFor(o)]++
		}
		return partition.Imbalance(sizes)
	}
	iu, is := imbalanceOf(uniform), imbalanceOf(skewed)
	if is < 3*iu {
		t.Errorf("skew imbalance %v not clearly above uniform %v", is, iu)
	}
}

func TestDistributionString(t *testing.T) {
	if Uniform.String() != "uniform" || Skewed.String() != "skewed" || Diagonal.String() != "diagonal" {
		t.Error("distribution names wrong")
	}
	if !strings.Contains(Distribution(99).String(), "99") {
		t.Error("unknown distribution should include number")
	}
}

func TestSTPointsCarryTime(t *testing.T) {
	objs := STPoints(Config{N: 50, Seed: 3, TimeRange: 1000})
	for _, o := range objs {
		iv, ok := o.Time()
		if !ok {
			t.Fatal("missing time")
		}
		if iv.Start < 0 || iv.Start >= 1000 {
			t.Fatalf("time %v out of range", iv.Start)
		}
	}
}

func TestTuplesIndexValues(t *testing.T) {
	tuples := Tuples(Config{N: 20, Seed: 4})
	for i, kv := range tuples {
		if kv.Value != i {
			t.Fatalf("tuple %d has value %d", i, kv.Value)
		}
	}
	sp := SpatialTuples(Config{N: 20, Seed: 4})
	for _, kv := range sp {
		if kv.Key.HasTime() {
			t.Fatal("spatial tuples must not carry time")
		}
	}
}

func TestEventsAndCSVRoundTrip(t *testing.T) {
	events := Events(Config{N: 100, Seed: 5})
	fs := dfs.New(0, 0)
	if err := WriteEventsCSV(fs, "/data/events.csv", events); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEventsCSV(fs, "/data/events.csv")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("len = %d, want %d", len(got), len(events))
	}
	for i := range got {
		if got[i] != events[i] {
			t.Fatalf("event %d: %+v != %+v", i, got[i], events[i])
		}
	}
}

func TestReadEventsCSVErrors(t *testing.T) {
	fs := dfs.New(0, 0)
	if _, err := ReadEventsCSV(fs, "/missing"); err == nil {
		t.Error("missing file must fail")
	}
	fs.WriteLines("/bad-header", []string{"nope"})
	if _, err := ReadEventsCSV(fs, "/bad-header"); err == nil {
		t.Error("bad header must fail")
	}
	fs.WriteLines("/bad-line", []string{EventsCSVHeader, "x,y"})
	if _, err := ReadEventsCSV(fs, "/bad-line"); err == nil {
		t.Error("bad line must fail")
	}
	fs.WriteFile("/empty", nil)
	if _, err := ReadEventsCSV(fs, "/empty"); err == nil {
		t.Error("empty file must fail")
	}
}

func TestParseEventLine(t *testing.T) {
	e, err := ParseEventLine("7,sports,123,POINT (1.5 2.5)")
	if err != nil {
		t.Fatal(err)
	}
	if e.ID != 7 || e.Category != "sports" || e.Time != 123 || e.WKT != "POINT (1.5 2.5)" {
		t.Errorf("parsed %+v", e)
	}
	// WKT containing commas (polygon) survives SplitN.
	e, err = ParseEventLine("1,x,2,POLYGON ((0 0, 1 0, 1 1, 0 0))")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(e.WKT, "POLYGON") || !strings.Contains(e.WKT, "1 1") {
		t.Errorf("wkt = %q", e.WKT)
	}
	for _, bad := range []string{"", "1,2,3", "a,b,1,POINT (0 0)", "1,b,x,POINT (0 0)"} {
		if _, err := ParseEventLine(bad); err == nil {
			t.Errorf("%q: expected error", bad)
		}
	}
}

func TestEventToSTObject(t *testing.T) {
	e := Event{ID: 1, Category: "x", Time: 55, WKT: "POINT (3 4)"}
	o, err := e.ToSTObject()
	if err != nil {
		t.Fatal(err)
	}
	iv, ok := o.Time()
	if !ok || iv.Start != 55 {
		t.Errorf("time = %v ok=%v", iv, ok)
	}
	if _, err := (Event{WKT: "JUNK"}).ToSTObject(); err == nil {
		t.Error("bad wkt must fail")
	}
}

func TestEventTuplesDropsBadWKT(t *testing.T) {
	events := []Event{
		{ID: 1, WKT: "POINT (0 0)"},
		{ID: 2, WKT: "NOT WKT"},
		{ID: 3, WKT: "POINT (1 1)"},
	}
	tuples, dropped := EventTuples(events)
	if len(tuples) != 2 || dropped != 1 {
		t.Errorf("tuples=%d dropped=%d", len(tuples), dropped)
	}
}

func TestRegions(t *testing.T) {
	regions := Regions(Config{N: 0, Seed: 6, Width: 100, Height: 100}, 20)
	if len(regions) != 20 {
		t.Fatalf("len = %d", len(regions))
	}
	space := geom.NewEnvelope(0, 0, 100, 100)
	for _, r := range regions {
		if !space.ContainsEnvelope(r.Envelope()) {
			t.Fatalf("region %v escapes the space", r.Envelope())
		}
		if r.Envelope().Area() <= 0 {
			t.Fatal("degenerate region")
		}
	}
}
