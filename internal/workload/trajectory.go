package workload

import (
	"math"
	"math/rand"

	"stark/internal/engine"
	"stark/internal/geom"
	"stark/internal/stobject"
	"stark/internal/temporal"
)

// This file generates moving-object data: the paper's introduction
// motivates spatio-temporal processing with "(mobile) location aware
// devices that periodically report their position". Each object
// performs a correlated random walk and emits one timestamped point
// per tick.

// TrajectoryPoint is one position report.
type TrajectoryPoint struct {
	// ObjectID identifies the moving object.
	ObjectID int
	// Seq is the report number within the object's trajectory.
	Seq int
}

// TrajectoryConfig parameterises Trajectories.
type TrajectoryConfig struct {
	// Objects is the number of moving objects.
	Objects int
	// Ticks is the number of reports per object.
	Ticks int
	// Seed makes runs reproducible.
	Seed int64
	// Width, Height bound the space; zero defaults to 1000×1000.
	Width, Height float64
	// Speed is the mean step length per tick; zero defaults to
	// Width/200.
	Speed float64
	// TickInterval is the time between reports; zero defaults to 60.
	TickInterval int64
}

func (c TrajectoryConfig) withDefaults() TrajectoryConfig {
	if c.Width <= 0 {
		c.Width = 1000
	}
	if c.Height <= 0 {
		c.Height = 1000
	}
	if c.Speed <= 0 {
		c.Speed = c.Width / 200
	}
	if c.TickInterval <= 0 {
		c.TickInterval = 60
	}
	return c
}

// Trajectories generates Objects×Ticks position reports as
// (STObject, TrajectoryPoint) pairs, ordered by object then sequence.
// Every report carries the instant of its tick, so spatio-temporal
// predicates apply directly.
func Trajectories(cfg TrajectoryConfig) []engine.Pair[stobject.STObject, TrajectoryPoint] {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := make([]engine.Pair[stobject.STObject, TrajectoryPoint], 0, cfg.Objects*cfg.Ticks)
	for obj := 0; obj < cfg.Objects; obj++ {
		x := rng.Float64() * cfg.Width
		y := rng.Float64() * cfg.Height
		heading := rng.Float64() * 2 * math.Pi
		for tick := 0; tick < cfg.Ticks; tick++ {
			key := stobject.NewWithTime(
				geom.NewPoint(x, y),
				temporal.Instant(int64(tick)*cfg.TickInterval))
			out = append(out, engine.NewPair(key, TrajectoryPoint{ObjectID: obj, Seq: tick}))

			// Correlated random walk: small heading changes, bounce at
			// the borders.
			heading += rng.NormFloat64() * 0.4
			step := cfg.Speed * (0.5 + rng.Float64())
			x += step * math.Cos(heading)
			y += step * math.Sin(heading)
			if x < 0 {
				x, heading = -x, math.Pi-heading
			}
			if x > cfg.Width {
				x, heading = 2*cfg.Width-x, math.Pi-heading
			}
			if y < 0 {
				y, heading = -y, -heading
			}
			if y > cfg.Height {
				y, heading = 2*cfg.Height-y, -heading
			}
		}
	}
	return out
}

// TrajectoryLines converts the reports of each object into a
// LineString (useful for simplification and rendering). Objects with
// fewer than two reports are skipped.
func TrajectoryLines(reports []engine.Pair[stobject.STObject, TrajectoryPoint]) map[int]geom.LineString {
	byObj := make(map[int][]geom.Point)
	for _, kv := range reports {
		byObj[kv.Value.ObjectID] = append(byObj[kv.Value.ObjectID], kv.Key.Centroid())
	}
	out := make(map[int]geom.LineString, len(byObj))
	for obj, pts := range byObj {
		if ls, err := geom.NewLineString(pts); err == nil {
			out[obj] = ls
		}
	}
	return out
}
