// Package temporal implements the temporal component of STARK's
// spatio-temporal data model: instants and intervals on an integer
// timeline (Unix epoch seconds or milliseconds; the package does not
// impose a unit), and the temporal predicates used by the combined
// spatio-temporal predicate semantics.
//
// Intervals are closed on both ends, matching STARK's query semantics
// where a query window [begin, end] includes both endpoints. An
// instant t is the degenerate interval [t, t].
package temporal

import (
	"fmt"
	"math"
)

// Instant is a point on the timeline.
type Instant int64

// MinInstant and MaxInstant bound the timeline.
const (
	MinInstant Instant = math.MinInt64
	MaxInstant Instant = math.MaxInt64
)

// Interval is a closed interval [Start, End] on the timeline.
// Start must be <= End.
type Interval struct {
	Start, End Instant
}

// NewInterval returns [start, end]; it returns an error when
// start > end.
func NewInterval(start, end Instant) (Interval, error) {
	if start > end {
		return Interval{}, fmt.Errorf("temporal: interval start %d after end %d", start, end)
	}
	return Interval{Start: start, End: end}, nil
}

// MustInterval is NewInterval but panics on error; for literals.
func MustInterval(start, end Instant) Interval {
	iv, err := NewInterval(start, end)
	if err != nil {
		panic(err)
	}
	return iv
}

// At returns the degenerate interval [t, t] representing an instant.
func At(t Instant) Interval { return Interval{Start: t, End: t} }

// IsInstant reports whether the interval is degenerate.
func (iv Interval) IsInstant() bool { return iv.Start == iv.End }

// Length returns End - Start.
func (iv Interval) Length() int64 { return int64(iv.End - iv.Start) }

// Intersects reports whether the two closed intervals share at least
// one instant.
func (iv Interval) Intersects(o Interval) bool {
	return iv.Start <= o.End && o.Start <= iv.End
}

// Contains reports whether o lies entirely within iv (endpoint
// contact allowed, matching closed-interval semantics).
func (iv Interval) Contains(o Interval) bool {
	return iv.Start <= o.Start && o.End <= iv.End
}

// ContainsInstant reports whether t lies within the closed interval.
func (iv Interval) ContainsInstant(t Instant) bool {
	return iv.Start <= t && t <= iv.End
}

// Before reports whether iv ends strictly before o begins.
func (iv Interval) Before(o Interval) bool { return iv.End < o.Start }

// After reports whether iv begins strictly after o ends.
func (iv Interval) After(o Interval) bool { return iv.Start > o.End }

// Meets reports whether iv ends exactly where o begins.
func (iv Interval) Meets(o Interval) bool { return iv.End == o.Start }

// Union returns the smallest interval covering both.
func (iv Interval) Union(o Interval) Interval {
	return Interval{Start: minInstant(iv.Start, o.Start), End: maxInstant(iv.End, o.End)}
}

// Intersection returns the overlap and whether it is non-empty.
func (iv Interval) Intersection(o Interval) (Interval, bool) {
	if !iv.Intersects(o) {
		return Interval{}, false
	}
	return Interval{Start: maxInstant(iv.Start, o.Start), End: minInstant(iv.End, o.End)}, true
}

// Distance returns the gap between the intervals; 0 when they
// intersect.
func (iv Interval) Distance(o Interval) int64 {
	switch {
	case iv.Before(o):
		return int64(o.Start - iv.End)
	case iv.After(o):
		return int64(iv.Start - o.End)
	default:
		return 0
	}
}

// String renders the interval for diagnostics.
func (iv Interval) String() string {
	if iv.IsInstant() {
		return fmt.Sprintf("@%d", int64(iv.Start))
	}
	return fmt.Sprintf("[%d, %d]", int64(iv.Start), int64(iv.End))
}

// Predicate is a binary predicate over temporal intervals, mirroring
// geometric predicates so the combined spatio-temporal semantics can
// pair them.
type Predicate func(a, b Interval) bool

// Intersects is the Predicate form of Interval.Intersects.
func Intersects(a, b Interval) bool { return a.Intersects(b) }

// Contains is the Predicate form of Interval.Contains.
func Contains(a, b Interval) bool { return a.Contains(b) }

// ContainedBy reports whether a lies entirely within b.
func ContainedBy(a, b Interval) bool { return b.Contains(a) }

func minInstant(a, b Instant) Instant {
	if a < b {
		return a
	}
	return b
}

func maxInstant(a, b Instant) Instant {
	if a > b {
		return a
	}
	return b
}
