package temporal

// This file implements Allen's interval algebra: the thirteen
// exhaustive, pairwise-disjoint relations between two intervals.
// STARK's temporal predicates (Intersects, Contains) are unions of
// Allen relations; exposing the full algebra lets users express
// precise temporal conditions (e.g. "events that started during the
// storm but outlasted it" = OverlappedBy).
//
// The definitions follow Allen (1983) on closed intervals. For
// degenerate (instant) intervals some relations collapse; the
// classification remains exhaustive and disjoint because it is
// decided purely by the ordering of the four endpoints.

// Relation is one of Allen's thirteen interval relations.
type Relation int

const (
	// RelBefore: a ends strictly before b starts (a.End < b.Start).
	RelBefore Relation = iota
	// RelMeets: a ends exactly where b starts (a.End == b.Start),
	// and neither interval is contained in the other.
	RelMeets
	// RelOverlaps: a starts first, they overlap, b ends last.
	RelOverlaps
	// RelStarts: same start, a ends first.
	RelStarts
	// RelDuring: a lies strictly inside b.
	RelDuring
	// RelFinishes: same end, a starts last.
	RelFinishes
	// RelEqual: identical intervals.
	RelEqual
	// RelFinishedBy: same end, a starts first (inverse of Finishes).
	RelFinishedBy
	// RelContains: b lies strictly inside a (inverse of During).
	RelContains
	// RelStartedBy: same start, b ends first (inverse of Starts).
	RelStartedBy
	// RelOverlappedBy: b starts first, they overlap, a ends last.
	RelOverlappedBy
	// RelMetBy: b ends exactly where a starts (inverse of Meets).
	RelMetBy
	// RelAfter: a starts strictly after b ends.
	RelAfter
)

// String names the relation.
func (r Relation) String() string {
	switch r {
	case RelBefore:
		return "before"
	case RelMeets:
		return "meets"
	case RelOverlaps:
		return "overlaps"
	case RelStarts:
		return "starts"
	case RelDuring:
		return "during"
	case RelFinishes:
		return "finishes"
	case RelEqual:
		return "equal"
	case RelFinishedBy:
		return "finishedBy"
	case RelContains:
		return "contains"
	case RelStartedBy:
		return "startedBy"
	case RelOverlappedBy:
		return "overlappedBy"
	case RelMetBy:
		return "metBy"
	case RelAfter:
		return "after"
	default:
		return "unknown"
	}
}

// Classify returns the Allen relation of a with respect to b.
func Classify(a, b Interval) Relation {
	switch {
	case a.Start == b.Start && a.End == b.End:
		return RelEqual
	case a.End < b.Start:
		return RelBefore
	case b.End < a.Start:
		return RelAfter
	case a.Start == b.Start:
		if a.End < b.End {
			return RelStarts
		}
		return RelStartedBy
	case a.End == b.End:
		if a.Start > b.Start {
			return RelFinishes
		}
		return RelFinishedBy
	case a.End == b.Start:
		return RelMeets
	case b.End == a.Start:
		return RelMetBy
	case a.Start > b.Start && a.End < b.End:
		return RelDuring
	case b.Start > a.Start && b.End < a.End:
		return RelContains
	case a.Start < b.Start:
		return RelOverlaps
	default:
		return RelOverlappedBy
	}
}

// Inverse returns the relation of b with respect to a given the
// relation of a with respect to b.
func (r Relation) Inverse() Relation {
	switch r {
	case RelBefore:
		return RelAfter
	case RelAfter:
		return RelBefore
	case RelMeets:
		return RelMetBy
	case RelMetBy:
		return RelMeets
	case RelOverlaps:
		return RelOverlappedBy
	case RelOverlappedBy:
		return RelOverlaps
	case RelStarts:
		return RelStartedBy
	case RelStartedBy:
		return RelStarts
	case RelDuring:
		return RelContains
	case RelContains:
		return RelDuring
	case RelFinishes:
		return RelFinishedBy
	case RelFinishedBy:
		return RelFinishes
	default:
		return RelEqual
	}
}

// RelationPredicate returns a Predicate that holds when Classify(a, b)
// is any of the given relations — the bridge from Allen relations to
// STARK's predicate-parameterised operators.
func RelationPredicate(rels ...Relation) Predicate {
	set := make(map[Relation]bool, len(rels))
	for _, r := range rels {
		set[r] = true
	}
	return func(a, b Interval) bool { return set[Classify(a, b)] }
}
