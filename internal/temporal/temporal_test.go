package temporal

import (
	"testing"
	"testing/quick"
)

func TestNewInterval(t *testing.T) {
	if _, err := NewInterval(5, 3); err == nil {
		t.Error("expected error for inverted interval")
	}
	iv, err := NewInterval(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Length() != 2 {
		t.Errorf("length = %d", iv.Length())
	}
}

func TestInstantInterval(t *testing.T) {
	iv := At(7)
	if !iv.IsInstant() {
		t.Error("At must be degenerate")
	}
	if iv.Length() != 0 {
		t.Errorf("instant length = %d", iv.Length())
	}
	if !iv.ContainsInstant(7) || iv.ContainsInstant(8) {
		t.Error("instant containment wrong")
	}
	if iv.String() != "@7" {
		t.Errorf("String = %q", iv.String())
	}
	if MustInterval(1, 2).String() != "[1, 2]" {
		t.Errorf("String = %q", MustInterval(1, 2).String())
	}
}

func TestIntersects(t *testing.T) {
	cases := []struct {
		a, b Interval
		want bool
	}{
		{MustInterval(0, 10), MustInterval(5, 15), true},
		{MustInterval(0, 10), MustInterval(10, 20), true}, // closed endpoint contact
		{MustInterval(0, 10), MustInterval(11, 20), false},
		{At(5), MustInterval(0, 10), true},
		{At(5), At(5), true},
		{At(5), At(6), false},
		{MustInterval(0, 100), MustInterval(40, 60), true},
	}
	for i, c := range cases {
		if got := c.a.Intersects(c.b); got != c.want {
			t.Errorf("case %d: %v ∩ %v = %v, want %v", i, c.a, c.b, got, c.want)
		}
		if got := c.b.Intersects(c.a); got != c.want {
			t.Errorf("case %d swapped: got %v", i, got)
		}
	}
}

func TestContains(t *testing.T) {
	outer := MustInterval(0, 100)
	if !outer.Contains(MustInterval(10, 20)) {
		t.Error("nested containment failed")
	}
	if !outer.Contains(outer) {
		t.Error("self containment failed")
	}
	if outer.Contains(MustInterval(50, 150)) {
		t.Error("overhang must not be contained")
	}
	if !outer.Contains(At(0)) || !outer.Contains(At(100)) {
		t.Error("endpoints must be contained (closed interval)")
	}
	if !ContainedBy(At(5), outer) {
		t.Error("ContainedBy failed")
	}
}

func TestBeforeAfterMeets(t *testing.T) {
	a := MustInterval(0, 5)
	b := MustInterval(6, 10)
	c := MustInterval(5, 10)
	if !a.Before(b) || b.Before(a) {
		t.Error("Before wrong")
	}
	if !b.After(a) {
		t.Error("After wrong")
	}
	if !a.Meets(c) {
		t.Error("Meets wrong")
	}
	if a.Before(c) {
		t.Error("meeting intervals are not Before (closed ends touch)")
	}
}

func TestUnionIntersection(t *testing.T) {
	a := MustInterval(0, 10)
	b := MustInterval(5, 20)
	u := a.Union(b)
	if u.Start != 0 || u.End != 20 {
		t.Errorf("union = %v", u)
	}
	inter, ok := a.Intersection(b)
	if !ok || inter.Start != 5 || inter.End != 10 {
		t.Errorf("intersection = %v ok=%v", inter, ok)
	}
	if _, ok := a.Intersection(MustInterval(50, 60)); ok {
		t.Error("disjoint intersection must be empty")
	}
}

func TestDistance(t *testing.T) {
	a := MustInterval(0, 5)
	if d := a.Distance(MustInterval(8, 10)); d != 3 {
		t.Errorf("gap = %d, want 3", d)
	}
	if d := MustInterval(8, 10).Distance(a); d != 3 {
		t.Errorf("gap reversed = %d, want 3", d)
	}
	if d := a.Distance(MustInterval(3, 10)); d != 0 {
		t.Errorf("overlap gap = %d", d)
	}
}

func normPair(x, y int32) Interval {
	a, b := int64(x), int64(y)
	if a > b {
		a, b = b, a
	}
	return Interval{Start: Instant(a), End: Instant(b)}
}

func TestPropIntersectsSymmetric(t *testing.T) {
	f := func(x1, y1, x2, y2 int32) bool {
		a, b := normPair(x1, y1), normPair(x2, y2)
		return a.Intersects(b) == b.Intersects(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropContainsImpliesIntersects(t *testing.T) {
	f := func(x1, y1, x2, y2 int32) bool {
		a, b := normPair(x1, y1), normPair(x2, y2)
		return !a.Contains(b) || a.Intersects(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropUnionCoversBoth(t *testing.T) {
	f := func(x1, y1, x2, y2 int32) bool {
		a, b := normPair(x1, y1), normPair(x2, y2)
		u := a.Union(b)
		return u.Contains(a) && u.Contains(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropIntersectionWithinBoth(t *testing.T) {
	f := func(x1, y1, x2, y2 int32) bool {
		a, b := normPair(x1, y1), normPair(x2, y2)
		inter, ok := a.Intersection(b)
		if !ok {
			return !a.Intersects(b)
		}
		return a.Contains(inter) && b.Contains(inter)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropDistanceZeroIffIntersects(t *testing.T) {
	f := func(x1, y1, x2, y2 int32) bool {
		a, b := normPair(x1, y1), normPair(x2, y2)
		return (a.Distance(b) == 0) == a.Intersects(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
