package temporal

import (
	"testing"
	"testing/quick"
)

func TestClassifyCanonicalCases(t *testing.T) {
	cases := []struct {
		a, b Interval
		want Relation
	}{
		{MustInterval(0, 2), MustInterval(5, 9), RelBefore},
		{MustInterval(5, 9), MustInterval(0, 2), RelAfter},
		{MustInterval(0, 5), MustInterval(5, 9), RelMeets},
		{MustInterval(5, 9), MustInterval(0, 5), RelMetBy},
		{MustInterval(0, 6), MustInterval(4, 9), RelOverlaps},
		{MustInterval(4, 9), MustInterval(0, 6), RelOverlappedBy},
		{MustInterval(0, 4), MustInterval(0, 9), RelStarts},
		{MustInterval(0, 9), MustInterval(0, 4), RelStartedBy},
		{MustInterval(3, 6), MustInterval(0, 9), RelDuring},
		{MustInterval(0, 9), MustInterval(3, 6), RelContains},
		{MustInterval(5, 9), MustInterval(0, 9), RelFinishes},
		{MustInterval(0, 9), MustInterval(5, 9), RelFinishedBy},
		{MustInterval(2, 7), MustInterval(2, 7), RelEqual},
	}
	for _, c := range cases {
		if got := Classify(c.a, c.b); got != c.want {
			t.Errorf("Classify(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestRelationString(t *testing.T) {
	names := map[Relation]string{
		RelBefore: "before", RelMeets: "meets", RelOverlaps: "overlaps",
		RelStarts: "starts", RelDuring: "during", RelFinishes: "finishes",
		RelEqual: "equal", RelFinishedBy: "finishedBy", RelContains: "contains",
		RelStartedBy: "startedBy", RelOverlappedBy: "overlappedBy",
		RelMetBy: "metBy", RelAfter: "after",
	}
	for r, want := range names {
		if r.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(r), r.String(), want)
		}
	}
	if Relation(99).String() != "unknown" {
		t.Error("unknown relation name")
	}
}

func TestPropClassifyInverse(t *testing.T) {
	f := func(x1, y1, x2, y2 int32) bool {
		a, b := normPair(x1, y1), normPair(x2, y2)
		return Classify(a, b).Inverse() == Classify(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropIntersectsIsUnionOfAllenRelations(t *testing.T) {
	// Intersects ⇔ not (before or after).
	f := func(x1, y1, x2, y2 int32) bool {
		a, b := normPair(x1, y1), normPair(x2, y2)
		r := Classify(a, b)
		return a.Intersects(b) == (r != RelBefore && r != RelAfter)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropContainsIsUnionOfAllenRelations(t *testing.T) {
	// a.Contains(b) ⇔ relation(b, a) ∈ {during, starts, finishes,
	// equal} ⇔ relation(a, b) ∈ {contains, startedBy, finishedBy,
	// equal}.
	f := func(x1, y1, x2, y2 int32) bool {
		a, b := normPair(x1, y1), normPair(x2, y2)
		r := Classify(a, b)
		want := r == RelContains || r == RelStartedBy || r == RelFinishedBy || r == RelEqual
		return a.Contains(b) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropExactlyOneRelationHolds(t *testing.T) {
	// Classification is deterministic and single-valued; check that
	// RelationPredicate over the full algebra always holds.
	all := RelationPredicate(
		RelBefore, RelMeets, RelOverlaps, RelStarts, RelDuring,
		RelFinishes, RelEqual, RelFinishedBy, RelContains,
		RelStartedBy, RelOverlappedBy, RelMetBy, RelAfter)
	f := func(x1, y1, x2, y2 int32) bool {
		a, b := normPair(x1, y1), normPair(x2, y2)
		return all(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRelationPredicate(t *testing.T) {
	overlapping := RelationPredicate(RelOverlaps, RelOverlappedBy)
	if !overlapping(MustInterval(0, 6), MustInterval(4, 9)) {
		t.Error("overlapping pair rejected")
	}
	if overlapping(MustInterval(0, 2), MustInterval(4, 9)) {
		t.Error("disjoint pair accepted")
	}
	if overlapping(MustInterval(2, 4), MustInterval(0, 9)) {
		t.Error("during pair accepted by overlaps-only predicate")
	}
}
