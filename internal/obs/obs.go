// Package obs is a dependency-free metrics kernel: counters, gauges,
// and log-bucketed latency histograms with quantile estimation, plus
// a registry that renders everything in the Prometheus text
// exposition format (version 0.0.4). The HTTP server mounts the
// registry at GET /metrics; the bench harness scrapes it to report
// server-observed latency quantiles next to client-observed ones.
//
// Everything is safe for concurrent use. Hot-path cost is one atomic
// add for counters and three for histograms — no locks, no maps.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing int64 metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 to keep the counter monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float64 metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta to the gauge value.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// DefBuckets are the default histogram bucket upper bounds: a
// geometric ladder from 100µs doubling up to ~52s (20 buckets), which
// covers HTTP request latencies from cache hits to cold scans with
// constant relative error (~2x per bucket, halved by interpolation).
var DefBuckets = func() []float64 {
	b := make([]float64, 20)
	v := 0.0001
	for i := range b {
		b[i] = v
		v *= 2
	}
	return b
}()

// Histogram is a fixed-bucket histogram of float64 observations
// (typically seconds). Buckets are cumulative in exposition, as
// Prometheus requires; Quantile estimates arbitrary quantiles by
// linear interpolation inside the bucket containing the rank.
type Histogram struct {
	bounds  []float64      // sorted upper bounds; observations > last go to +Inf
	counts  []atomic.Int64 // len(bounds)+1, last is the +Inf bucket
	count   atomic.Int64
	sumBits atomic.Uint64
}

// NewHistogram returns an unregistered histogram with the given
// bucket upper bounds (nil selects DefBuckets). Use Registry.Histogram
// for a registered one.
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v: the "le" bucket
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Cumulative returns the bucket upper bounds and the cumulative
// counts per bucket (the last entry is the +Inf bucket, equal to
// Count). The two slices feed QuantileFromCumulative.
func (h *Histogram) Cumulative() (bounds []float64, cum []int64) {
	cum = make([]int64, len(h.counts))
	var running int64
	for i := range h.counts {
		running += h.counts[i].Load()
		cum[i] = running
	}
	return h.bounds, cum
}

// Quantile estimates the q-quantile (0 <= q <= 1) of the observed
// distribution. Returns 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	bounds, cum := h.Cumulative()
	return QuantileFromCumulative(bounds, cum, q)
}

// QuantileFromCumulative estimates the q-quantile from cumulative
// bucket counts, as scraped from a Prometheus histogram exposition:
// bounds are the "le" upper bounds (excluding +Inf) and cum the
// cumulative counts per bucket with cum[len(bounds)] the +Inf bucket.
// The rank is located in its bucket and linearly interpolated between
// the bucket's bounds; ranks in the +Inf bucket return the last
// finite bound. Returns 0 on empty or malformed input.
func QuantileFromCumulative(bounds []float64, cum []int64, q float64) float64 {
	if len(cum) == 0 || len(cum) != len(bounds)+1 {
		return 0
	}
	total := cum[len(cum)-1]
	if total <= 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	i := sort.Search(len(cum), func(i int) bool { return float64(cum[i]) >= rank })
	if i >= len(bounds) {
		// Rank falls in the +Inf bucket: the best finite answer is the
		// largest finite bound.
		if len(bounds) == 0 {
			return 0
		}
		return bounds[len(bounds)-1]
	}
	lo := 0.0
	var below int64
	if i > 0 {
		lo = bounds[i-1]
		below = cum[i-1]
	}
	hi := bounds[i]
	inBucket := cum[i] - below
	if inBucket <= 0 {
		return hi
	}
	frac := (rank - float64(below)) / float64(inBucket)
	if frac < 0 {
		frac = 0
	}
	return lo + (hi-lo)*frac
}

// HistogramVec is a family of histograms partitioned by one label
// (e.g. per-route request latency). Children are created on first use
// and live forever — label cardinality must be bounded by the caller.
type HistogramVec struct {
	label  string
	bounds []float64

	mu       sync.Mutex
	children map[string]*Histogram
}

// With returns the child histogram for the label value, creating it
// on first use.
func (v *HistogramVec) With(value string) *Histogram {
	v.mu.Lock()
	defer v.mu.Unlock()
	h, ok := v.children[value]
	if !ok {
		h = NewHistogram(v.bounds)
		v.children[value] = h
	}
	return h
}

// snapshot returns the children sorted by label value.
func (v *HistogramVec) snapshot() (labels []string, hists []*Histogram) {
	v.mu.Lock()
	defer v.mu.Unlock()
	labels = make([]string, 0, len(v.children))
	for l := range v.children {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	hists = make([]*Histogram, len(labels))
	for i, l := range labels {
		hists[i] = v.children[l]
	}
	return labels, hists
}

// metric is one registered family: its metadata plus a writer that
// renders the current samples.
type metric struct {
	name  string
	help  string
	typ   string
	write func(w io.Writer, name string)
}

// Registry holds metric families and renders them in the Prometheus
// text exposition format. Families render sorted by name, so the
// output is deterministic regardless of registration order.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

func (r *Registry) register(m *metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.metrics[m.name]; dup {
		panic("obs: duplicate metric " + m.name)
	}
	r.metrics[m.name] = m
}

// Counter registers and returns a counter family with one sample.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(&metric{name: name, help: help, typ: "counter", write: func(w io.Writer, n string) {
		fmt.Fprintf(w, "%s %d\n", n, c.Value())
	}})
	return c
}

// CounterFunc registers a counter whose value is read from fn at
// scrape time — for counters another subsystem already maintains.
func (r *Registry) CounterFunc(name, help string, fn func() int64) {
	r.register(&metric{name: name, help: help, typ: "counter", write: func(w io.Writer, n string) {
		fmt.Fprintf(w, "%s %d\n", n, fn())
	}})
}

// Gauge registers and returns a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(&metric{name: name, help: help, typ: "gauge", write: func(w io.Writer, n string) {
		fmt.Fprintf(w, "%s %s\n", n, formatFloat(g.Value()))
	}})
	return g
}

// GaugeFunc registers a gauge read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&metric{name: name, help: help, typ: "gauge", write: func(w io.Writer, n string) {
		fmt.Fprintf(w, "%s %s\n", n, formatFloat(fn()))
	}})
}

// Histogram registers and returns a histogram (nil bounds selects
// DefBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	h := NewHistogram(bounds)
	r.register(&metric{name: name, help: help, typ: "histogram", write: func(w io.Writer, n string) {
		writeHistogram(w, n, "", "", h)
	}})
	return h
}

// HistogramVec registers and returns a histogram family partitioned
// by label (nil bounds selects DefBuckets).
func (r *Registry) HistogramVec(name, help, label string, bounds []float64) *HistogramVec {
	if bounds == nil {
		bounds = DefBuckets
	}
	v := &HistogramVec{label: label, bounds: bounds, children: make(map[string]*Histogram)}
	r.register(&metric{name: name, help: help, typ: "histogram", write: func(w io.Writer, n string) {
		labels, hists := v.snapshot()
		for i, l := range labels {
			writeHistogram(w, n, v.label, l, hists[i])
		}
	}})
	return v
}

// WritePrometheus renders every registered family, sorted by name.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	names := make([]string, 0, len(r.metrics))
	for n := range r.metrics {
		names = append(names, n)
	}
	sort.Strings(names)
	ms := make([]*metric, len(names))
	for i, n := range names {
		ms[i] = r.metrics[n]
	}
	r.mu.Unlock()

	for _, m := range ms {
		fmt.Fprintf(w, "# HELP %s %s\n", m.name, escapeHelp(m.help))
		fmt.Fprintf(w, "# TYPE %s %s\n", m.name, m.typ)
		m.write(w, m.name)
	}
}

func writeHistogram(w io.Writer, name, label, labelValue string, h *Histogram) {
	bounds, cum := h.Cumulative()
	for i, b := range bounds {
		fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", name, labelPrefix(label, labelValue), formatFloat(b), cum[i])
	}
	fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", name, labelPrefix(label, labelValue), cum[len(cum)-1])
	fmt.Fprintf(w, "%s_sum%s %s\n", name, labelSuffix(label, labelValue), formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, labelSuffix(label, labelValue), h.Count())
}

// labelPrefix renders `route="query",` for use before the le label.
func labelPrefix(label, value string) string {
	if label == "" {
		return ""
	}
	return label + "=\"" + escapeLabel(value) + "\","
}

// labelSuffix renders `{route="query"}` for _sum and _count lines.
func labelSuffix(label, value string) string {
	if label == "" {
		return ""
	}
	return "{" + label + "=\"" + escapeLabel(value) + "\"}"
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
