package obs

// Tests for the metrics kernel: histogram quantiles against known
// distributions (exact interpolation arithmetic, skewed loads,
// overflow), the cumulative-bucket quantile estimator fed scraped
// input, and the Prometheus text exposition validated line by line.

import (
	"bytes"
	"math"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("Counter = %d, want 5", got)
	}

	var g Gauge
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Errorf("Gauge = %v, want 1.5", got)
	}

	// The CAS loop must hold up under contention (run with -race).
	var wg sync.WaitGroup
	g.Set(0)
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 5000 {
		t.Errorf("concurrent Gauge = %v, want 5000", got)
	}
}

// TestHistogramQuantilesUniform observes the integers 1..100 against
// decade buckets, where the linear interpolation is exact: the
// distribution inside every bucket really is uniform, so the
// estimator must land on the true quantile precisely.
func TestHistogramQuantilesUniform(t *testing.T) {
	bounds := []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	h := NewHistogram(bounds)
	for v := 1; v <= 100; v++ {
		h.Observe(float64(v))
	}
	if got := h.Count(); got != 100 {
		t.Fatalf("Count = %d, want 100", got)
	}
	if got := h.Sum(); got != 5050 {
		t.Fatalf("Sum = %v, want 5050", got)
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.50, 50},
		{0.95, 95},
		{0.99, 99},
		{0.10, 10},
		{1.00, 100},
	} {
		if got := h.Quantile(tc.q); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
}

// TestHistogramQuantilesSkewed checks a serving-shaped bimodal load —
// 90% fast cache hits, 10% slow scans — against the default buckets:
// each quantile must land in the bucket that truly contains its rank.
func TestHistogramQuantilesSkewed(t *testing.T) {
	h := NewHistogram(nil) // DefBuckets: 0.0001 doubling × 20
	for i := 0; i < 90; i++ {
		h.Observe(0.001) // 1ms
	}
	for i := 0; i < 10; i++ {
		h.Observe(1.0) // 1s
	}
	p50 := h.Quantile(0.50)
	if p50 <= 0.0008 || p50 > 0.0016 {
		t.Errorf("p50 = %v, want inside the 1ms bucket (0.0008, 0.0016]", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 <= 0.8192 || p99 > 1.6384 {
		t.Errorf("p99 = %v, want inside the 1s bucket (0.8192, 1.6384]", p99)
	}
	if p50 >= p99 {
		t.Errorf("quantiles not monotonic: p50=%v >= p99=%v", p50, p99)
	}
}

// TestHistogramOverflowBucket: observations past the last bound land
// in +Inf, and quantiles there degrade to the last finite bound
// rather than inventing a value.
func TestHistogramOverflowBucket(t *testing.T) {
	bounds := []float64{1, 2}
	h := NewHistogram(bounds)
	h.Observe(100)
	h.Observe(200)
	if got := h.Quantile(0.99); got != 2 {
		t.Errorf("Quantile(0.99) with all mass in +Inf = %v, want last bound 2", got)
	}
	_, cum := h.Cumulative()
	if want := []int64{0, 0, 2}; len(cum) != 3 || cum[0] != want[0] || cum[1] != want[1] || cum[2] != want[2] {
		t.Errorf("Cumulative counts = %v, want %v", cum, want)
	}
	h.ObserveDuration(500 * time.Millisecond)
	if got := h.Count(); got != 3 {
		t.Errorf("Count = %d, want 3", got)
	}
}

func TestQuantileFromCumulativeMalformed(t *testing.T) {
	if got := QuantileFromCumulative(nil, nil, 0.5); got != 0 {
		t.Errorf("empty input: %v, want 0", got)
	}
	if got := QuantileFromCumulative([]float64{1, 2}, []int64{1, 2}, 0.5); got != 0 {
		t.Errorf("length mismatch: %v, want 0", got)
	}
	if got := QuantileFromCumulative([]float64{1}, []int64{0, 0}, 0.5); got != 0 {
		t.Errorf("zero total: %v, want 0", got)
	}
	// Out-of-range q clamps instead of extrapolating.
	if got := QuantileFromCumulative([]float64{1}, []int64{4, 4}, 7); got != 1 {
		t.Errorf("q>1: %v, want 1", got)
	}
}

var (
	testSampleLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9eE.+-]+|NaN)$`)
	testMetaLine   = regexp.MustCompile(`^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+$`)
)

// TestWritePrometheusExposition registers one family of each kind,
// renders the registry, and validates the exposition: parseable lines
// only, families sorted, histogram buckets cumulative with +Inf equal
// to _count, and label values escaped.
func TestWritePrometheusExposition(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_requests_total", "Requests.")
	g := reg.Gauge("test_temperature", "Degrees.")
	reg.GaugeFunc("test_func_gauge", "From a closure.", func() float64 { return 7 })
	hv := reg.HistogramVec("test_latency_seconds", "Latency.", "route", []float64{0.1, 1})

	c.Add(3)
	g.Set(-2.5)
	hv.With("/query").Observe(0.05)
	hv.With("/query").Observe(0.5)
	hv.With("/query").Observe(5)
	hv.With(`we"ird\route`).Observe(0.2)

	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	out := buf.String()

	var families []string
	counts := map[string]int64{}
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# TYPE "):
			if !testMetaLine.MatchString(line) {
				t.Errorf("malformed TYPE line %q", line)
			}
			families = append(families, strings.Fields(line)[2])
		case strings.HasPrefix(line, "# HELP "):
			if !testMetaLine.MatchString(line) {
				t.Errorf("malformed HELP line %q", line)
			}
		default:
			m := testSampleLine.FindStringSubmatch(line)
			if m == nil {
				t.Errorf("malformed sample line %q", line)
				continue
			}
			if n, err := strconv.ParseInt(m[3], 10, 64); err == nil {
				counts[m[1]+m[2]] = n
			}
		}
	}
	if !slicesIsSorted(families) {
		t.Errorf("families not sorted: %v", families)
	}

	// Buckets are cumulative and +Inf matches _count.
	b1 := counts[`test_latency_seconds_bucket{route="/query",le="0.1"}`]
	b2 := counts[`test_latency_seconds_bucket{route="/query",le="1"}`]
	bInf := counts[`test_latency_seconds_bucket{route="/query",le="+Inf"}`]
	if b1 != 1 || b2 != 2 || bInf != 3 {
		t.Errorf("cumulative buckets = %d, %d, %d; want 1, 2, 3", b1, b2, bInf)
	}
	if cnt := counts[`test_latency_seconds_count{route="/query"}`]; cnt != bInf {
		t.Errorf("_count = %d != +Inf bucket %d", cnt, bInf)
	}
	if !strings.Contains(out, `route="we\"ird\\route"`) {
		t.Errorf("label value not escaped:\n%s", out)
	}
	if !strings.Contains(out, "test_requests_total 3\n") {
		t.Errorf("counter sample missing:\n%s", out)
	}
	if !strings.Contains(out, "test_temperature -2.5\n") {
		t.Errorf("gauge sample missing:\n%s", out)
	}
}

func slicesIsSorted(s []string) bool {
	for i := 1; i < len(s); i++ {
		if s[i] < s[i-1] {
			return false
		}
	}
	return true
}

func TestRegistryDuplicatePanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("dup_total", "x")
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	reg.Counter("dup_total", "x")
}
