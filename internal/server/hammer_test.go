package server

// The -race hammer: many goroutines issuing a mixed workload —
// queries, EXPLAINs, registrations, drops, listings — against one
// service. The race detector checks the synchronisation; the
// assertions check the service never tears a response (every 200 body
// parses) and that the cache stays correct under churn (a hit still
// schedules zero engine work afterwards).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestServiceHammer(t *testing.T) {
	s, ctx := testService(t, 400, Options{
		MaxConcurrent: 4, QueueDepth: 64, QueueTimeout: 2 * time.Second,
	})
	// A couple of stable side datasets the workers query.
	for i := 0; i < 2; i++ {
		spec := DatasetSpec{Name: fmt.Sprintf("side%d", i), N: 200, Seed: int64(i), Dist: "uniform", Width: 100, Height: 100}
		if _, err := s.catalog.Register(ctx, spec); err != nil {
			t.Fatal(err)
		}
	}

	const workers = 8
	const iters = 30
	var wg sync.WaitGroup
	errs := make(chan error, workers*iters)
	report := func(format string, args ...interface{}) {
		select {
		case errs <- fmt.Errorf(format, args...):
		default:
		}
	}
	do := func(method, path string, body interface{}) *httptest.ResponseRecorder {
		var rd *bytes.Reader
		if body != nil {
			data, _ := json.Marshal(body)
			rd = bytes.NewReader(data)
		} else {
			rd = bytes.NewReader(nil)
		}
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest(method, path, rd))
		return rec
	}

	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tmp := fmt.Sprintf("tmp%d", g)
			for i := 0; i < iters; i++ {
				switch i % 6 {
				case 0: // hot cacheable query on the stable dataset
					rec := do(http.MethodPost, "/api/v1/query", windowQuery(""))
					switch rec.Code {
					case http.StatusOK:
						// Every line of a 200 body must parse: no torn writes.
						for _, line := range bytes.Split(bytes.TrimSpace(rec.Body.Bytes()), []byte("\n")) {
							var v map[string]interface{}
							if err := json.Unmarshal(line, &v); err != nil {
								report("worker %d: torn NDJSON line %q: %v", g, line, err)
							}
						}
					case http.StatusTooManyRequests, http.StatusServiceUnavailable:
					default:
						report("worker %d: query status %d: %s", g, rec.Code, rec.Body.String())
					}
				case 1: // query a side dataset
					rec := do(http.MethodPost, "/api/v1/query", windowQuery(fmt.Sprintf("side%d", g%2)))
					if rec.Code != http.StatusOK && rec.Code != http.StatusTooManyRequests && rec.Code != http.StatusServiceUnavailable {
						report("worker %d: side query status %d", g, rec.Code)
					}
				case 2: // explain
					rec := do(http.MethodPost, "/api/v1/explain", windowQuery(""))
					if rec.Code != http.StatusOK {
						report("worker %d: explain status %d", g, rec.Code)
					} else if !strings.Contains(rec.Body.String(), `"plan"`) {
						report("worker %d: explain body missing plan", g)
					}
				case 3: // register this worker's churn dataset
					spec := DatasetSpec{Name: tmp, N: 50, Seed: int64(i), Dist: "uniform", Width: 50, Height: 50}
					if rec := do(http.MethodPost, "/api/datasets", spec); rec.Code != http.StatusOK {
						report("worker %d: register status %d: %s", g, rec.Code, rec.Body.String())
					}
				case 4: // query-or-404 the churn dataset, then drop it
					rec := do(http.MethodPost, "/api/v1/query", windowQuery(tmp))
					if rec.Code != http.StatusOK && rec.Code != http.StatusNotFound &&
						rec.Code != http.StatusTooManyRequests && rec.Code != http.StatusServiceUnavailable {
						report("worker %d: churn query status %d", g, rec.Code)
					}
					do(http.MethodDelete, "/api/datasets/"+tmp, nil)
				case 5: // listings and service stats must always decode
					for _, path := range []string{"/api/datasets", "/api/service"} {
						rec := do(http.MethodGet, path, nil)
						var v map[string]interface{}
						if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
							report("worker %d: %s body does not parse: %v", g, path, err)
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// After the storm: the stable dataset still answers, and a cache
	// hit still schedules zero engine work.
	if rec := postV1Query(t, s, windowQuery("")); rec.Code != http.StatusOK {
		t.Fatalf("post-hammer warm query status = %d", rec.Code)
	}
	before := ctx.Metrics().Snapshot()
	rec := postV1Query(t, s, windowQuery(""))
	after := ctx.Metrics().Snapshot()
	if rec.Code != http.StatusOK {
		t.Fatalf("post-hammer hot query status = %d", rec.Code)
	}
	if _, sum := ndjsonResponse(t, rec.Body.Bytes()); sum.Cache != "hit" {
		t.Errorf("post-hammer hot query not cached: %+v", sum)
	}
	if d := after.ElementsScanned - before.ElementsScanned; d != 0 {
		t.Errorf("post-hammer cache hit scanned %d elements, want 0", d)
	}
}
