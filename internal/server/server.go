// Package server implements the web front end of the demonstration:
// an HTTP service that executes spatio-temporal queries over a loaded
// event dataset and returns GeoJSON, plus an embedded single-page UI
// mirroring the paper's query interface (spatial window, time window,
// predicate selection, kNN and clustering).
package server

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"

	"stark"
	"stark/internal/geom"
	"stark/internal/workload"
)

// Server serves queries over one event dataset, driving the public
// fluent DSL: handlers build a chain per request and surface the
// deferred error at the terminal action.
type Server struct {
	ctx *stark.Context
	ds  *stark.Dataset[workload.Event]
	mux *http.ServeMux
	// events and summary are computed once at construction — the data
	// is static, so /api/stats must never rescan it per request.
	events  int64
	summary *stark.DatasetStats
}

// New builds a server over the given events.
func New(ctx *stark.Context, events []workload.Event) (*Server, error) {
	tuples, dropped := workload.EventTuples(events)
	if dropped > 0 {
		return nil, fmt.Errorf("server: %d events with invalid WKT", dropped)
	}
	ds := stark.Parallelize(ctx, tuples).Cache()
	if err := ds.Run(); err != nil {
		return nil, fmt.Errorf("server: staging events: %w", err)
	}
	// One statistics pass warms the planner cache and yields the
	// count: the dataset is static, so both are computed exactly once
	// here instead of on every /api/stats request.
	summary, err := ds.Stats()
	if err != nil {
		return nil, fmt.Errorf("server: collecting stats: %w", err)
	}
	s := &Server{ctx: ctx, ds: ds, mux: http.NewServeMux(),
		events: summary.Count, summary: summary}
	s.mux.HandleFunc("/", s.handleIndex)
	s.mux.HandleFunc("/api/query", s.handleQuery)
	s.mux.HandleFunc("/api/knn", s.handleKNN)
	s.mux.HandleFunc("/api/cluster", s.handleCluster)
	s.mux.HandleFunc("/api/stats", s.handleStats)
	s.mux.HandleFunc("/api/explain", s.handleExplain)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// ---- request/response types ----

// QueryRequest selects events matching a predicate against a query
// window.
type QueryRequest struct {
	// Predicate is one of intersects, contains, containedby,
	// coveredby, withindistance.
	Predicate string `json:"predicate"`
	// WKT is the query geometry.
	WKT string `json:"wkt"`
	// Begin/End give the optional temporal window; both zero means
	// spatial-only.
	Begin int64 `json:"begin"`
	End   int64 `json:"end"`
	// HasTime marks the temporal window as present (so Begin=End=0 is
	// expressible).
	HasTime bool `json:"hasTime"`
	// Distance parameterises withindistance.
	Distance float64 `json:"distance"`
}

// KNNRequest finds the K events nearest to a point.
type KNNRequest struct {
	WKT string `json:"wkt"`
	K   int    `json:"k"`
}

// ClusterRequest runs DBSCAN over the dataset.
type ClusterRequest struct {
	Eps    float64 `json:"eps"`
	MinPts int     `json:"minPts"`
}

func httpError(w http.ResponseWriter, code int, format string, args ...interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write([]byte(indexHTML))
}

func (s *Server) queryObject(req QueryRequest) (stark.STObject, error) {
	g, err := stark.ParseWKT(req.WKT)
	if err != nil {
		return stark.STObject{}, err
	}
	if !req.HasTime {
		return stark.NewSTObject(g), nil
	}
	iv, err := stark.NewInterval(stark.Instant(req.Begin), stark.Instant(req.End))
	if err != nil {
		return stark.STObject{}, err
	}
	return stark.NewSTObjectWithInterval(g, iv), nil
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	filtered, err := s.buildFilter(req)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Compile the chain before committing the response status: chain
	// and planning errors (bad geometry, failed shuffle) surface here
	// and still map to an HTTP error code.
	if err := filtered.Run(); err != nil {
		httpError(w, http.StatusInternalServerError, "query failed: %v", err)
		return
	}
	streamFeatureCollection(w, filtered)
}

// buildFilter compiles a QueryRequest into a filter chain over the
// event dataset — shared by /api/query (which streams the result) and
// /api/explain (which renders the plan).
func (s *Server) buildFilter(req QueryRequest) (*stark.Dataset[workload.Event], error) {
	q, err := s.queryObject(req)
	if err != nil {
		return nil, fmt.Errorf("bad query: %v", err)
	}
	switch strings.ToLower(req.Predicate) {
	case "intersects", "":
		return s.ds.Intersects(q), nil
	case "contains":
		return s.ds.Contains(q), nil
	case "containedby":
		return s.ds.ContainedBy(q), nil
	case "coveredby":
		return s.ds.CoveredBy(q), nil
	case "withindistance":
		if req.Distance <= 0 {
			return nil, fmt.Errorf("withindistance needs distance > 0")
		}
		return s.ds.WithinDistance(q, req.Distance, nil), nil
	default:
		return nil, fmt.Errorf("unknown predicate %q", req.Predicate)
	}
}

// handleExplain compiles the same filter chain /api/query would run,
// executes it, and returns the planner's EXPLAIN tree — the chosen
// index mode, pruned partitions, predicate order, estimated vs actual
// cardinality — as JSON plus a rendered text form.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	filtered, err := s.buildFilter(req)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	node, err := filtered.ExplainNode()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "explain failed: %v", err)
		return
	}
	writeJSON(w, map[string]interface{}{
		"plan": node,
		"text": node.Render(),
	})
}

// streamFeatureCollection encodes the query result as a GeoJSON
// FeatureCollection, writing each feature as it leaves the fused
// partition pipeline — the result set is never materialised in
// memory. The status line is committed before the scan runs, so a
// mid-stream error can only be reported by logging it and leaving the
// JSON unterminated: the client sees a malformed document instead of
// a silently truncated result.
func streamFeatureCollection(w http.ResponseWriter, ds *stark.Dataset[workload.Event]) {
	w.Header().Set("Content-Type", "application/json")
	if _, err := io.WriteString(w, `{"type":"FeatureCollection","features":[`); err != nil {
		log.Printf("server: aborting GeoJSON stream: %v", err)
		return
	}
	count := 0
	var rowErr error
	// StreamParallel keeps partition-parallel predicate evaluation
	// while rows arrive here in partition order; a failed write (the
	// client hung up) stops the whole pipeline instead of scanning
	// into a dead socket.
	err := ds.StreamParallel(func(kv stark.Tuple[workload.Event]) bool {
		b, err := json.Marshal(feature(kv, nil, nil))
		if err != nil {
			rowErr = err
			return false
		}
		if count > 0 {
			if _, err := io.WriteString(w, ","); err != nil {
				rowErr = err
				return false
			}
		}
		if _, err := w.Write(b); err != nil {
			rowErr = err
			return false
		}
		count++
		return true
	})
	if err == nil {
		err = rowErr
	}
	if err != nil {
		log.Printf("server: aborting GeoJSON stream after %d features: %v", count, err)
		return
	}
	_, _ = fmt.Fprintf(w, `],"count":%d}`, count)
}

func (s *Server) handleKNN(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req KNNRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	q, err := stark.FromWKT(req.WKT)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad query: %v", err)
		return
	}
	if req.K <= 0 {
		httpError(w, http.StatusBadRequest, "k must be >= 1")
		return
	}
	nbrs, err := s.ds.KNN(q, req.K)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "knn failed: %v", err)
		return
	}
	hits := make([]stark.Tuple[workload.Event], len(nbrs))
	dists := make([]float64, len(nbrs))
	for i, nb := range nbrs {
		hits[i] = stark.NewTuple(nb.Key, nb.Value)
		dists[i] = nb.Distance
	}
	writeJSON(w, featureCollection(hits, dists, nil))
}

func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req ClusterRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	recs, n, err := s.ds.Cluster(stark.ClusterOptions{Eps: req.Eps, MinPts: req.MinPts})
	if err != nil {
		httpError(w, http.StatusBadRequest, "cluster failed: %v", err)
		return
	}
	hits := make([]stark.Tuple[workload.Event], len(recs))
	labels := make([]int, len(recs))
	for i, rec := range recs {
		hits[i] = stark.NewTuple(rec.Key, rec.Value)
		labels[i] = rec.Cluster
	}
	fc := featureCollection(hits, nil, labels)
	fc["numClusters"] = n
	writeJSON(w, fc)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	// The dataset is static: the count and planner statistics were
	// computed once at construction, so this handler never rescans.
	snap := s.ctx.Metrics().Snapshot()
	writeJSON(w, map[string]interface{}{
		"events":          s.events,
		"partitions":      len(s.summary.Parts),
		"parallelism":     s.ctx.Parallelism(),
		"tasksLaunched":   snap.TasksLaunched,
		"tasksSkipped":    snap.TasksSkipped,
		"elementsScanned": snap.ElementsScanned,
		"statsRecords":    snap.StatsRecords,
		"planner":         s.summary,
	})
}

// feature renders one event as a GeoJSON feature. dist and label
// optionally add distance / cluster properties.
func feature(kv stark.Tuple[workload.Event], dist *float64, label *int) map[string]interface{} {
	props := map[string]interface{}{
		"id":       kv.Value.ID,
		"category": kv.Value.Category,
		"time":     kv.Value.Time,
	}
	if dist != nil {
		props["distance"] = *dist
	}
	if label != nil {
		props["cluster"] = *label
	}
	return map[string]interface{}{
		"type":       "Feature",
		"geometry":   geometryJSON(kv.Key.Geo()),
		"properties": props,
	}
}

// featureCollection renders events as GeoJSON. dists and labels are
// optional parallel slices adding distance / cluster properties.
func featureCollection(hits []stark.Tuple[workload.Event], dists []float64, labels []int) map[string]interface{} {
	features := make([]map[string]interface{}, 0, len(hits))
	for i, kv := range hits {
		var dist *float64
		if dists != nil {
			dist = &dists[i]
		}
		var label *int
		if labels != nil {
			label = &labels[i]
		}
		features = append(features, feature(kv, dist, label))
	}
	return map[string]interface{}{
		"type":     "FeatureCollection",
		"features": features,
		"count":    len(hits),
	}
}

// geometryJSON converts a geometry to its GeoJSON representation.
func geometryJSON(g geom.Geometry) map[string]interface{} {
	switch t := g.(type) {
	case geom.Point:
		return map[string]interface{}{"type": "Point", "coordinates": []float64{t.X, t.Y}}
	case geom.MultiPoint:
		coords := make([][]float64, t.NumPoints())
		for i := 0; i < t.NumPoints(); i++ {
			p := t.PointAt(i)
			coords[i] = []float64{p.X, p.Y}
		}
		return map[string]interface{}{"type": "MultiPoint", "coordinates": coords}
	case geom.LineString:
		coords := make([][]float64, t.NumPoints())
		for i := 0; i < t.NumPoints(); i++ {
			p := t.PointAt(i)
			coords[i] = []float64{p.X, p.Y}
		}
		return map[string]interface{}{"type": "LineString", "coordinates": coords}
	case geom.Polygon:
		rings := make([][][]float64, 0, 1+t.NumHoles())
		shell := t.Shell()
		ring := make([][]float64, shell.NumPoints())
		for i := 0; i < shell.NumPoints(); i++ {
			p := shell.PointAt(i)
			ring[i] = []float64{p.X, p.Y}
		}
		rings = append(rings, ring)
		for h := 0; h < t.NumHoles(); h++ {
			hr := t.HoleAt(h)
			ring := make([][]float64, hr.NumPoints())
			for i := 0; i < hr.NumPoints(); i++ {
				p := hr.PointAt(i)
				ring[i] = []float64{p.X, p.Y}
			}
			rings = append(rings, ring)
		}
		return map[string]interface{}{"type": "Polygon", "coordinates": rings}
	default:
		return map[string]interface{}{"type": "GeometryCollection", "geometries": []interface{}{}}
	}
}

// indexHTML is the embedded demonstration UI: predicate form, time
// window pickers and a result pane, in the spirit of the paper's
// Figure 3 front end (map widgets replaced by WKT input, stdlib-only).
const indexHTML = `<!DOCTYPE html>
<html>
<head>
<meta charset="utf-8">
<title>STARK demo</title>
<style>
body { font-family: sans-serif; margin: 2rem; max-width: 60rem; }
fieldset { margin-bottom: 1rem; }
textarea, input, select { font-family: monospace; }
pre { background: #f4f4f4; padding: 1rem; overflow: auto; max-height: 24rem; }
</style>
</head>
<body>
<h1>STARK spatio-temporal query demo</h1>
<fieldset>
<legend>Filter</legend>
<label>Predicate
<select id="predicate">
<option>intersects</option><option>contains</option>
<option>containedby</option><option>coveredby</option>
<option>withindistance</option>
</select></label>
<label>Distance <input id="distance" value="10" size="6"></label><br>
<label>Query WKT<br>
<textarea id="wkt" rows="3" cols="70">POLYGON ((0 0, 100 0, 100 100, 0 100, 0 0))</textarea></label><br>
<label><input type="checkbox" id="hasTime"> Time window</label>
<label>begin <input id="begin" value="0" size="10"></label>
<label>end <input id="end" value="1000000" size="10"></label><br>
<button onclick="query()">Run filter</button>
<button onclick="explain()">Explain</button>
</fieldset>
<fieldset>
<legend>kNN</legend>
<label>Point WKT <input id="knnwkt" value="POINT (50 50)" size="30"></label>
<label>k <input id="k" value="5" size="4"></label>
<button onclick="knn()">Run kNN</button>
</fieldset>
<fieldset>
<legend>Clustering</legend>
<label>eps <input id="eps" value="5" size="6"></label>
<label>minPts <input id="minpts" value="4" size="4"></label>
<button onclick="clusterRun()">Run DBSCAN</button>
</fieldset>
<button onclick="stats()">Stats</button>
<h2>Result</h2>
<pre id="out">–</pre>
<script>
async function post(url, body) {
  const r = await fetch(url, {method: 'POST', body: JSON.stringify(body)});
  document.getElementById('out').textContent = JSON.stringify(await r.json(), null, 2);
}
function filterBody() {
  return {
    predicate: document.getElementById('predicate').value,
    wkt: document.getElementById('wkt').value,
    hasTime: document.getElementById('hasTime').checked,
    begin: parseInt(document.getElementById('begin').value),
    end: parseInt(document.getElementById('end').value),
    distance: parseFloat(document.getElementById('distance').value),
  };
}
async function explain() {
  const r = await fetch('/api/explain', {method: 'POST', body: JSON.stringify(filterBody())});
  const j = await r.json();
  document.getElementById('out').textContent = j.text || JSON.stringify(j, null, 2);
}
function query() {
  post('/api/query', {
    predicate: document.getElementById('predicate').value,
    wkt: document.getElementById('wkt').value,
    hasTime: document.getElementById('hasTime').checked,
    begin: parseInt(document.getElementById('begin').value),
    end: parseInt(document.getElementById('end').value),
    distance: parseFloat(document.getElementById('distance').value),
  });
}
function knn() {
  post('/api/knn', {
    wkt: document.getElementById('knnwkt').value,
    k: parseInt(document.getElementById('k').value),
  });
}
function clusterRun() {
  post('/api/cluster', {
    eps: parseFloat(document.getElementById('eps').value),
    minPts: parseInt(document.getElementById('minpts').value),
  });
}
async function stats() {
  const r = await fetch('/api/stats');
  document.getElementById('out').textContent = JSON.stringify(await r.json(), null, 2);
}
</script>
</body>
</html>
`
