// Package server implements STARK's query service: a concurrent
// multi-dataset HTTP front end over the fluent DSL. A dataset catalog
// registers, lists and drops named datasets (each with its own
// partitioner recipe, index mode and planner statistics); queries
// stream NDJSON straight off the engine's fused partition pipelines;
// repeated queries are served from a plan-fingerprint result cache;
// and an admission-controlled worker pool bounds concurrent engine
// work so the service degrades gracefully under load. The original
// demonstration endpoints (GeoJSON query, kNN, clustering, stats,
// EXPLAIN) remain, operating on the catalog's "default" dataset, and
// the embedded single-page UI mirrors the paper's query interface.
package server

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net/http"
	"strings"
	"time"

	"stark"
	"stark/internal/attr"
	"stark/internal/geom"
	"stark/internal/workload"
)

// Options tunes the query service. Zero values select sensible
// defaults.
type Options struct {
	// MaxConcurrent bounds the queries executing engine work at once
	// (cache hits do not count). Default: 2 × context parallelism.
	MaxConcurrent int
	// QueueDepth bounds how many requests may wait for a slot before
	// new ones are rejected with HTTP 429. Default: 4 × MaxConcurrent.
	QueueDepth int
	// QueueTimeout bounds how long a request waits for a slot before
	// HTTP 503. Default: 2s.
	QueueTimeout time.Duration
	// CacheBytes is the result cache's total byte budget; <= 0
	// selects 64 MiB. CacheEntryBytes bounds one entry; <= 0 selects
	// CacheBytes/8.
	CacheBytes      int64
	CacheEntryBytes int64
	// SlowQueryMs logs a structured warning (with fingerprint and
	// trace summary) for requests slower than this many milliseconds;
	// 0 disables slow-query logging.
	SlowQueryMs int64
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
	// Logger receives the structured request and slow-query log
	// records; nil selects slog.Default().
	Logger *slog.Logger
}

// Server is the multi-dataset query service: a catalog of named
// datasets, a plan-fingerprint result cache, and an admission gate in
// front of the engine. Handlers build a DSL chain per request and
// surface the deferred error at the terminal action.
type Server struct {
	ctx     *stark.Context
	catalog *Catalog
	cache   *ResultCache
	adm     *Admission
	mux     *http.ServeMux
	tel     *Telemetry
	dur     *Durability
}

// NewService builds an empty query service; register datasets via the
// catalog endpoints or Register.
func NewService(ctx *stark.Context, opts Options) *Server {
	if opts.MaxConcurrent <= 0 {
		opts.MaxConcurrent = 2 * ctx.Parallelism()
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 4 * opts.MaxConcurrent
	}
	s := &Server{
		ctx:     ctx,
		catalog: NewCatalog(),
		cache:   NewResultCache(opts.CacheBytes, opts.CacheEntryBytes),
		adm:     NewAdmission(opts.MaxConcurrent, opts.QueueDepth, opts.QueueTimeout),
		mux:     http.NewServeMux(),
	}
	s.mux.HandleFunc("/", s.handleIndex)
	s.mux.HandleFunc("/api/query", s.handleQuery)
	s.mux.HandleFunc("/api/knn", s.handleKNN)
	s.mux.HandleFunc("/api/cluster", s.handleCluster)
	s.mux.HandleFunc("/api/stats", s.handleStats)
	s.mux.HandleFunc("/api/explain", s.handleExplain)
	s.mux.HandleFunc("GET /api/datasets", s.handleDatasetsList)
	s.mux.HandleFunc("POST /api/datasets", s.handleDatasetsRegister)
	s.mux.HandleFunc("GET /api/datasets/{name}", s.handleDatasetGet)
	s.mux.HandleFunc("DELETE /api/datasets/{name}", s.handleDatasetDrop)
	s.mux.HandleFunc("POST /api/v1/query", s.handleQueryV1)
	s.mux.HandleFunc("POST /api/v1/explain", s.handleExplainV1)
	s.mux.HandleFunc("POST /api/v1/ingest", s.handleIngest)
	s.mux.HandleFunc("DELETE /api/v1/datasets/{name}/records/{id}", s.handleRecordDelete)
	s.mux.HandleFunc("GET /api/service", s.handleServiceStats)
	logger := opts.Logger
	if logger == nil {
		logger = slog.Default()
	}
	s.tel = newTelemetry(s, logger, opts.SlowQueryMs)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	if opts.EnablePprof {
		s.mountPprof()
	}
	return s
}

// Telemetry exposes the service's metric registry — tests and the
// bench harness read latency quantiles from it directly.
func (s *Server) Telemetry() *Telemetry { return s.tel }

// Register builds and publishes a dataset — the programmatic
// counterpart of POST /api/datasets, used by cmd/starkd to preload.
func (s *Server) Register(spec DatasetSpec) error {
	_, err := s.catalog.Register(s.ctx, spec)
	return err
}

// RegisterEvents publishes already-materialised events under
// spec.Name with spec's layout, skipping the generator.
func (s *Server) RegisterEvents(spec DatasetSpec, events []workload.Event) error {
	return s.catalog.RegisterEvents(s.ctx, spec, events)
}

// CacheStats returns a snapshot of the result cache counters — the
// hook the service benchmark reads hit rates from.
func (s *Server) CacheStats() CacheStats { return s.cache.Stats() }

// New builds a service pre-loaded with the given events as the
// "default" dataset — the single-dataset constructor the demo UI and
// the legacy endpoints rely on.
func New(ctx *stark.Context, events []workload.Event) (*Server, error) {
	s := NewService(ctx, Options{})
	if err := s.catalog.RegisterEvents(ctx, DatasetSpec{Name: DefaultDataset}, events); err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	return s, nil
}

// defaultEntry resolves the legacy endpoints' dataset, writing a 404
// when it has been dropped.
func (s *Server) defaultEntry(w http.ResponseWriter) (*catalogEntry, bool) {
	return s.resolveDataset(w, DefaultDataset)
}

// ServeHTTP implements http.Handler: every request flows through the
// observability middleware (request ID, access log, per-route latency
// histogram, slow-query log) into the route mux.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.instrument(w, r) }

// ---- request/response types ----

// QueryRequest selects events matching a predicate against a query
// window.
type QueryRequest struct {
	// Predicate is one of intersects, contains, containedby,
	// coveredby, withindistance.
	Predicate string `json:"predicate"`
	// WKT is the query geometry.
	WKT string `json:"wkt"`
	// Begin/End give the optional temporal window; both zero means
	// spatial-only.
	Begin int64 `json:"begin"`
	End   int64 `json:"end"`
	// HasTime marks the temporal window as present (so Begin=End=0 is
	// expressible).
	HasTime bool `json:"hasTime"`
	// Distance parameterises withindistance.
	Distance float64 `json:"distance"`
	// Where adds typed attribute predicates over the event fields (id,
	// category, time): a single clause object or an array of clauses,
	// ANDed with the spatial predicate. With Where present, WKT may be
	// omitted for a pure attribute query.
	Where WhereClauses `json:"where,omitempty"`
}

// WhereClause is one typed attribute comparison:
//
//	{"field": "category", "op": "eq", "value": "sports"}
//	{"field": "time", "op": "between", "value": 100, "value2": 200}
//	{"field": "id", "op": "in", "values": [1, 2, 3]}
//
// Ops: eq, lt, le, gt, ge (and symbol spellings), between
// (value..value2, both inclusive), in (values).
type WhereClause struct {
	Field  string `json:"field"`
	Op     string `json:"op"`
	Value  any    `json:"value,omitempty"`
	Value2 any    `json:"value2,omitempty"`
	Values []any  `json:"values,omitempty"`
}

// WhereClauses decodes from either a single clause object or an array
// of clauses.
type WhereClauses []WhereClause

func (w *WhereClauses) UnmarshalJSON(b []byte) error {
	trimmed := strings.TrimLeft(string(b), " \t\r\n")
	if strings.HasPrefix(trimmed, "{") {
		var one WhereClause
		if err := json.Unmarshal(b, &one); err != nil {
			return err
		}
		*w = WhereClauses{one}
		return nil
	}
	var many []WhereClause
	if err := json.Unmarshal(b, &many); err != nil {
		return err
	}
	*w = many
	return nil
}

// KNNRequest finds the K events nearest to a point.
type KNNRequest struct {
	WKT string `json:"wkt"`
	K   int    `json:"k"`
}

// ClusterRequest runs DBSCAN over the dataset.
type ClusterRequest struct {
	Eps    float64 `json:"eps"`
	MinPts int     `json:"minPts"`
}

func httpError(w http.ResponseWriter, code int, format string, args ...interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write([]byte(indexHTML))
}

func queryObject(req QueryRequest) (stark.STObject, error) {
	g, err := stark.ParseWKT(req.WKT)
	if err != nil {
		return stark.STObject{}, err
	}
	if !req.HasTime {
		return stark.NewSTObject(g), nil
	}
	iv, err := stark.NewInterval(stark.Instant(req.Begin), stark.Instant(req.End))
	if err != nil {
		return stark.STObject{}, err
	}
	return stark.NewSTObjectWithInterval(g, iv), nil
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	entry, ok := s.defaultEntry(w)
	if !ok {
		return
	}
	filtered, err := buildFilterOn(entry.dataset(), req)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Compile the chain before committing the response status: chain
	// and planning errors (bad geometry, failed shuffle) surface here
	// and still map to an HTTP error code.
	if err := filtered.Run(); err != nil {
		httpError(w, http.StatusInternalServerError, "query failed: %v", err)
		return
	}
	streamFeatureCollection(w, filtered)
}

// eventSchema is the shared attribute schema the where clauses
// compile against.
var eventSchema = workload.EventSchema()

// buildFilterOn compiles a QueryRequest into a filter chain over a
// dataset — shared by the legacy GeoJSON endpoint, the NDJSON
// service endpoint and both EXPLAIN handlers. Where clauses AND with
// the spatial predicate; with Where present and WKT empty, the query
// is attribute-only.
func buildFilterOn(ds *stark.Dataset[workload.Event], req QueryRequest) (*stark.Dataset[workload.Event], error) {
	if len(req.Where) > 0 {
		var err error
		ds, err = applyWhere(ds.WithSchema(eventSchema), req.Where)
		if err != nil {
			return nil, err
		}
		if req.WKT == "" {
			return ds, nil
		}
	}
	q, err := queryObject(req)
	if err != nil {
		return nil, fmt.Errorf("bad query: %v", err)
	}
	switch strings.ToLower(req.Predicate) {
	case "intersects", "":
		return ds.Intersects(q), nil
	case "contains":
		return ds.Contains(q), nil
	case "containedby":
		return ds.ContainedBy(q), nil
	case "coveredby":
		return ds.CoveredBy(q), nil
	case "withindistance":
		if req.Distance <= 0 {
			return nil, fmt.Errorf("withindistance needs distance > 0")
		}
		return ds.WithinDistance(q, req.Distance, nil), nil
	default:
		return nil, fmt.Errorf("unknown predicate %q", req.Predicate)
	}
}

// applyWhere validates each clause against the event schema (so a bad
// field or operand maps to 400, not a failed execution) and defers it
// onto the chain.
func applyWhere(ds *stark.Dataset[workload.Event], where []WhereClause) (*stark.Dataset[workload.Event], error) {
	for i, c := range where {
		if err := checkWhere(c); err != nil {
			return nil, fmt.Errorf("bad where clause %d: %v", i, err)
		}
		switch strings.ToLower(c.Op) {
		case "between":
			ds = ds.FilterRange(c.Field, c.Value, c.Value2)
		case "in":
			ds = ds.FilterIn(c.Field, c.Values...)
		default:
			ds = ds.FilterOp(c.Field, c.Op, c.Value)
		}
	}
	return ds, nil
}

// checkWhere type-checks one clause against the event schema without
// touching a chain.
func checkWhere(c WhereClause) error {
	op, err := attr.ParseOp(c.Op)
	if err != nil {
		return err
	}
	p := attr.Pred{Field: c.Field, Op: op}
	switch op {
	case attr.OpIn:
		if len(c.Values) == 0 {
			return fmt.Errorf("op in needs a non-empty values array")
		}
		for _, raw := range c.Values {
			v, err := attr.FromAny(raw)
			if err != nil {
				return err
			}
			p.Set = append(p.Set, v)
		}
	case attr.OpBetween:
		if c.Value == nil || c.Value2 == nil {
			return fmt.Errorf("op between needs value and value2")
		}
		if p.Lo, err = attr.FromAny(c.Value); err != nil {
			return err
		}
		if p.Hi, err = attr.FromAny(c.Value2); err != nil {
			return err
		}
	default:
		if c.Value == nil {
			return fmt.Errorf("op %s needs value", op)
		}
		if p.Lo, err = attr.FromAny(c.Value); err != nil {
			return err
		}
	}
	_, err = eventSchema.Check(p.Canonicalize())
	return err
}

// handleExplain compiles the same filter chain /api/query would run,
// executes it, and returns the planner's EXPLAIN tree — the chosen
// index mode, pruned partitions, predicate order, estimated vs actual
// cardinality — as JSON plus a rendered text form.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	entry, ok := s.defaultEntry(w)
	if !ok {
		return
	}
	filtered, err := buildFilterOn(entry.dataset(), req)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	node, err := filtered.ExplainNode()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "explain failed: %v", err)
		return
	}
	writeJSON(w, map[string]interface{}{
		"plan": node,
		"text": node.Render(),
	})
}

// streamFeatureCollection encodes the query result as a GeoJSON
// FeatureCollection, writing each feature as it leaves the fused
// partition pipeline — the result set is never materialised in
// memory. The status line is committed before the scan runs, so a
// mid-stream error can only be reported by logging it and leaving the
// JSON unterminated: the client sees a malformed document instead of
// a silently truncated result.
func streamFeatureCollection(w http.ResponseWriter, ds *stark.Dataset[workload.Event]) {
	w.Header().Set("Content-Type", "application/json")
	if _, err := io.WriteString(w, `{"type":"FeatureCollection","features":[`); err != nil {
		log.Printf("server: aborting GeoJSON stream: %v", err)
		return
	}
	count := 0
	var rowErr error
	// StreamParallel keeps partition-parallel predicate evaluation
	// while rows arrive here in partition order; a failed write (the
	// client hung up) stops the whole pipeline instead of scanning
	// into a dead socket.
	err := ds.StreamParallel(func(kv stark.Tuple[workload.Event]) bool {
		b, err := json.Marshal(feature(kv, nil, nil))
		if err != nil {
			rowErr = err
			return false
		}
		if count > 0 {
			if _, err := io.WriteString(w, ","); err != nil {
				rowErr = err
				return false
			}
		}
		if _, err := w.Write(b); err != nil {
			rowErr = err
			return false
		}
		count++
		return true
	})
	if err == nil {
		err = rowErr
	}
	if err != nil {
		log.Printf("server: aborting GeoJSON stream after %d features: %v", count, err)
		return
	}
	_, _ = fmt.Fprintf(w, `],"count":%d}`, count)
}

func (s *Server) handleKNN(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req KNNRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	q, err := stark.FromWKT(req.WKT)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad query: %v", err)
		return
	}
	if req.K <= 0 {
		httpError(w, http.StatusBadRequest, "k must be >= 1")
		return
	}
	entry, ok := s.defaultEntry(w)
	if !ok {
		return
	}
	nbrs, err := entry.dataset().KNNContext(r.Context(), q, req.K)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "knn failed: %v", err)
		return
	}
	hits := make([]stark.Tuple[workload.Event], len(nbrs))
	dists := make([]float64, len(nbrs))
	for i, nb := range nbrs {
		hits[i] = stark.NewTuple(nb.Key, nb.Value)
		dists[i] = nb.Distance
	}
	writeJSON(w, featureCollection(hits, dists, nil))
}

func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req ClusterRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	entry, ok := s.defaultEntry(w)
	if !ok {
		return
	}
	recs, n, err := entry.dataset().Cluster(stark.ClusterOptions{Eps: req.Eps, MinPts: req.MinPts})
	if err != nil {
		httpError(w, http.StatusBadRequest, "cluster failed: %v", err)
		return
	}
	hits := make([]stark.Tuple[workload.Event], len(recs))
	labels := make([]int, len(recs))
	for i, rec := range recs {
		hits[i] = stark.NewTuple(rec.Key, rec.Value)
		labels[i] = rec.Cluster
	}
	fc := featureCollection(hits, nil, labels)
	fc["numClusters"] = n
	writeJSON(w, fc)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	// Immutable datasets answer from the count and planner statistics
	// computed at registration; mutable ones recompute lazily off the
	// live generation (a copy of the incrementally maintained summary,
	// never a rescan), so this endpoint reflects every ingest batch.
	entry, ok := s.defaultEntry(w)
	if !ok {
		return
	}
	summary, events := entry.stats()
	snap := s.ctx.Metrics().Snapshot()
	writeJSON(w, map[string]interface{}{
		"events":          events,
		"partitions":      len(summary.Parts),
		"parallelism":     s.ctx.Parallelism(),
		"tasksLaunched":   snap.TasksLaunched,
		"tasksSkipped":    snap.TasksSkipped,
		"elementsScanned": snap.ElementsScanned,
		"statsRecords":    snap.StatsRecords,
		"planner":         summary,
		"cache":           s.cache.Stats(),
		"admission":       s.adm.Stats(),
	})
}

// feature renders one event as a GeoJSON feature. dist and label
// optionally add distance / cluster properties.
func feature(kv stark.Tuple[workload.Event], dist *float64, label *int) map[string]interface{} {
	props := map[string]interface{}{
		"id":       kv.Value.ID,
		"category": kv.Value.Category,
		"time":     kv.Value.Time,
	}
	if dist != nil {
		props["distance"] = *dist
	}
	if label != nil {
		props["cluster"] = *label
	}
	return map[string]interface{}{
		"type":       "Feature",
		"geometry":   geometryJSON(kv.Key.Geo()),
		"properties": props,
	}
}

// featureCollection renders events as GeoJSON. dists and labels are
// optional parallel slices adding distance / cluster properties.
func featureCollection(hits []stark.Tuple[workload.Event], dists []float64, labels []int) map[string]interface{} {
	features := make([]map[string]interface{}, 0, len(hits))
	for i, kv := range hits {
		var dist *float64
		if dists != nil {
			dist = &dists[i]
		}
		var label *int
		if labels != nil {
			label = &labels[i]
		}
		features = append(features, feature(kv, dist, label))
	}
	return map[string]interface{}{
		"type":     "FeatureCollection",
		"features": features,
		"count":    len(hits),
	}
}

// geometryJSON converts a geometry to its GeoJSON representation.
func geometryJSON(g geom.Geometry) map[string]interface{} {
	switch t := g.(type) {
	case geom.Point:
		return map[string]interface{}{"type": "Point", "coordinates": []float64{t.X, t.Y}}
	case geom.MultiPoint:
		coords := make([][]float64, t.NumPoints())
		for i := 0; i < t.NumPoints(); i++ {
			p := t.PointAt(i)
			coords[i] = []float64{p.X, p.Y}
		}
		return map[string]interface{}{"type": "MultiPoint", "coordinates": coords}
	case geom.LineString:
		coords := make([][]float64, t.NumPoints())
		for i := 0; i < t.NumPoints(); i++ {
			p := t.PointAt(i)
			coords[i] = []float64{p.X, p.Y}
		}
		return map[string]interface{}{"type": "LineString", "coordinates": coords}
	case geom.Polygon:
		rings := make([][][]float64, 0, 1+t.NumHoles())
		shell := t.Shell()
		ring := make([][]float64, shell.NumPoints())
		for i := 0; i < shell.NumPoints(); i++ {
			p := shell.PointAt(i)
			ring[i] = []float64{p.X, p.Y}
		}
		rings = append(rings, ring)
		for h := 0; h < t.NumHoles(); h++ {
			hr := t.HoleAt(h)
			ring := make([][]float64, hr.NumPoints())
			for i := 0; i < hr.NumPoints(); i++ {
				p := hr.PointAt(i)
				ring[i] = []float64{p.X, p.Y}
			}
			rings = append(rings, ring)
		}
		return map[string]interface{}{"type": "Polygon", "coordinates": rings}
	default:
		return map[string]interface{}{"type": "GeometryCollection", "geometries": []interface{}{}}
	}
}

// indexHTML is the embedded demonstration UI: predicate form, time
// window pickers and a result pane, in the spirit of the paper's
// Figure 3 front end (map widgets replaced by WKT input, stdlib-only).
const indexHTML = `<!DOCTYPE html>
<html>
<head>
<meta charset="utf-8">
<title>STARK demo</title>
<style>
body { font-family: sans-serif; margin: 2rem; max-width: 60rem; }
fieldset { margin-bottom: 1rem; }
textarea, input, select { font-family: monospace; }
pre { background: #f4f4f4; padding: 1rem; overflow: auto; max-height: 24rem; }
</style>
</head>
<body>
<h1>STARK spatio-temporal query demo</h1>
<fieldset>
<legend>Filter</legend>
<label>Predicate
<select id="predicate">
<option>intersects</option><option>contains</option>
<option>containedby</option><option>coveredby</option>
<option>withindistance</option>
</select></label>
<label>Distance <input id="distance" value="10" size="6"></label><br>
<label>Query WKT<br>
<textarea id="wkt" rows="3" cols="70">POLYGON ((0 0, 100 0, 100 100, 0 100, 0 0))</textarea></label><br>
<label><input type="checkbox" id="hasTime"> Time window</label>
<label>begin <input id="begin" value="0" size="10"></label>
<label>end <input id="end" value="1000000" size="10"></label><br>
<button onclick="query()">Run filter</button>
<button onclick="explain()">Explain</button>
</fieldset>
<fieldset>
<legend>kNN</legend>
<label>Point WKT <input id="knnwkt" value="POINT (50 50)" size="30"></label>
<label>k <input id="k" value="5" size="4"></label>
<button onclick="knn()">Run kNN</button>
</fieldset>
<fieldset>
<legend>Clustering</legend>
<label>eps <input id="eps" value="5" size="6"></label>
<label>minPts <input id="minpts" value="4" size="4"></label>
<button onclick="clusterRun()">Run DBSCAN</button>
</fieldset>
<button onclick="stats()">Stats</button>
<h2>Result</h2>
<pre id="out">–</pre>
<script>
async function post(url, body) {
  const r = await fetch(url, {method: 'POST', body: JSON.stringify(body)});
  document.getElementById('out').textContent = JSON.stringify(await r.json(), null, 2);
}
function filterBody() {
  return {
    predicate: document.getElementById('predicate').value,
    wkt: document.getElementById('wkt').value,
    hasTime: document.getElementById('hasTime').checked,
    begin: parseInt(document.getElementById('begin').value),
    end: parseInt(document.getElementById('end').value),
    distance: parseFloat(document.getElementById('distance').value),
  };
}
async function explain() {
  const r = await fetch('/api/explain', {method: 'POST', body: JSON.stringify(filterBody())});
  const j = await r.json();
  document.getElementById('out').textContent = j.text || JSON.stringify(j, null, 2);
}
function query() {
  post('/api/query', {
    predicate: document.getElementById('predicate').value,
    wkt: document.getElementById('wkt').value,
    hasTime: document.getElementById('hasTime').checked,
    begin: parseInt(document.getElementById('begin').value),
    end: parseInt(document.getElementById('end').value),
    distance: parseFloat(document.getElementById('distance').value),
  });
}
function knn() {
  post('/api/knn', {
    wkt: document.getElementById('knnwkt').value,
    k: parseInt(document.getElementById('k').value),
  });
}
function clusterRun() {
  post('/api/cluster', {
    eps: parseFloat(document.getElementById('eps').value),
    minPts: parseInt(document.getElementById('minpts').value),
  });
}
async function stats() {
  const r = await fetch('/api/stats');
  document.getElementById('out').textContent = JSON.stringify(await r.json(), null, 2);
}
</script>
</body>
</html>
`
