package server

// Admission control: a bounded pool of concurrent query slots with a
// bounded, deadline-limited wait queue, so the service degrades
// gracefully under load instead of stacking up unbounded goroutines.
// A request that cannot get a slot immediately waits in the queue; if
// the queue is full it is rejected at once (HTTP 429), and if the
// queue deadline passes first it times out (HTTP 503). Cache hits
// bypass admission entirely — they cost no engine work.

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// ErrQueueFull reports an immediately rejected request: every slot
// busy and the wait queue at capacity.
var ErrQueueFull = errors.New("server: admission queue full")

// ErrQueueTimeout reports a request that waited the full queue
// deadline without getting a slot.
var ErrQueueTimeout = errors.New("server: admission queue timeout")

// AdmissionStats is the observable state of an Admission controller.
type AdmissionStats struct {
	MaxConcurrent int   `json:"maxConcurrent"`
	QueueDepth    int   `json:"queueDepth"`
	InFlight      int64 `json:"inFlight"`
	Waiting       int64 `json:"waiting"`
	Admitted      int64 `json:"admitted"`
	RejectedFull  int64 `json:"rejectedFull"`
	TimedOut      int64 `json:"timedOut"`
}

// Admission is the worker-pool gate. All methods are safe for
// concurrent use.
type Admission struct {
	slots        chan struct{}
	queueDepth   int
	queueTimeout time.Duration

	inFlight atomic.Int64
	waiting  atomic.Int64
	admitted atomic.Int64
	full     atomic.Int64
	timedOut atomic.Int64
}

// NewAdmission returns a controller with maxConcurrent query slots, a
// wait queue of queueDepth, and a per-request queue deadline.
func NewAdmission(maxConcurrent, queueDepth int, queueTimeout time.Duration) *Admission {
	if maxConcurrent <= 0 {
		maxConcurrent = 4
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	if queueTimeout <= 0 {
		queueTimeout = 2 * time.Second
	}
	return &Admission{
		slots:        make(chan struct{}, maxConcurrent),
		queueDepth:   queueDepth,
		queueTimeout: queueTimeout,
	}
}

// Acquire blocks until a slot is free, the queue deadline fires
// (ErrQueueTimeout), the queue is already full (ErrQueueFull), or ctx
// is done. On nil return the caller owns a slot and must Release it.
func (a *Admission) Acquire(ctx context.Context) error {
	select {
	case a.slots <- struct{}{}:
		a.admitted.Add(1)
		a.inFlight.Add(1)
		return nil
	default:
	}
	// No free slot: join the queue if there is room. The waiting
	// counter is an optimistic reservation — increment first, back out
	// on overflow — so the depth bound holds under concurrency.
	if a.waiting.Add(1) > int64(a.queueDepth) {
		a.waiting.Add(-1)
		a.full.Add(1)
		return ErrQueueFull
	}
	defer a.waiting.Add(-1)
	timer := time.NewTimer(a.queueTimeout)
	defer timer.Stop()
	select {
	case a.slots <- struct{}{}:
		a.admitted.Add(1)
		a.inFlight.Add(1)
		return nil
	case <-timer.C:
		a.timedOut.Add(1)
		return ErrQueueTimeout
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Release returns a slot acquired with Acquire.
func (a *Admission) Release() {
	a.inFlight.Add(-1)
	<-a.slots
}

// Stats returns a snapshot of the admission counters.
func (a *Admission) Stats() AdmissionStats {
	return AdmissionStats{
		MaxConcurrent: cap(a.slots),
		QueueDepth:    a.queueDepth,
		InFlight:      a.inFlight.Load(),
		Waiting:       a.waiting.Load(),
		Admitted:      a.admitted.Load(),
		RejectedFull:  a.full.Load(),
		TimedOut:      a.timedOut.Load(),
	}
}
