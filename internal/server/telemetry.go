package server

// Request-scoped observability for the query service: a middleware
// that assigns request IDs, logs every request through log/slog,
// measures per-route latency into Prometheus-style histograms, and
// flags slow queries; plus the GET /metrics exposition wiring every
// subsystem's counters (cache, admission gate, engine, runtime) into
// one scrape.

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"stark/internal/engine"
	"stark/internal/obs"
)

// Telemetry carries the service's observability state: the metric
// registry behind GET /metrics, the per-route latency histograms, the
// structured logger, and the slow-query threshold.
type Telemetry struct {
	Registry *obs.Registry

	reqDur      *obs.HistogramVec
	inFlight    *obs.Gauge
	slowQueries *obs.Counter
	reqID       atomic.Int64

	logger *slog.Logger
	slowMs int64
	start  time.Time
}

// newTelemetry builds the registry and registers every metric family
// the service exports.
func newTelemetry(s *Server, logger *slog.Logger, slowMs int64) *Telemetry {
	reg := obs.NewRegistry()
	t := &Telemetry{
		Registry: reg,
		logger:   logger,
		slowMs:   slowMs,
		start:    time.Now(),
	}
	t.reqDur = reg.HistogramVec("stark_http_request_duration_seconds",
		"HTTP request latency by route.", "route", nil)
	t.inFlight = reg.Gauge("stark_http_requests_in_flight",
		"HTTP requests currently being served.")
	t.slowQueries = reg.Counter("stark_slow_queries_total",
		"Requests slower than the -slow-query-ms threshold.")
	reg.GaugeFunc("stark_uptime_seconds",
		"Seconds since the service started.",
		func() float64 { return time.Since(t.start).Seconds() })

	// Result cache.
	reg.CounterFunc("stark_cache_hits_total", "Result cache hits.",
		func() int64 { return s.cache.Stats().Hits })
	reg.CounterFunc("stark_cache_misses_total", "Result cache misses.",
		func() int64 { return s.cache.Stats().Misses })
	reg.CounterFunc("stark_cache_evictions_total", "Result cache LRU evictions.",
		func() int64 { return s.cache.Stats().Evictions })
	reg.CounterFunc("stark_cache_rejected_total", "Results too large for the per-entry cache budget.",
		func() int64 { return s.cache.Stats().Rejected })
	reg.GaugeFunc("stark_cache_bytes", "Bytes held by the result cache.",
		func() float64 { return float64(s.cache.Stats().Bytes) })
	reg.GaugeFunc("stark_cache_entries", "Entries held by the result cache.",
		func() float64 { return float64(s.cache.Stats().Entries) })

	// Admission gate.
	reg.CounterFunc("stark_admission_admitted_total", "Requests admitted to the engine pool.",
		func() int64 { return s.adm.Stats().Admitted })
	reg.CounterFunc("stark_admission_rejected_full_total", "Requests rejected because the admission queue was full (HTTP 429).",
		func() int64 { return s.adm.Stats().RejectedFull })
	reg.CounterFunc("stark_admission_timed_out_total", "Requests that timed out waiting for an engine slot (HTTP 503).",
		func() int64 { return s.adm.Stats().TimedOut })
	reg.GaugeFunc("stark_admission_in_flight", "Requests currently executing engine work.",
		func() float64 { return float64(s.adm.Stats().InFlight) })
	reg.GaugeFunc("stark_admission_waiting", "Requests currently queued for an engine slot.",
		func() float64 { return float64(s.adm.Stats().Waiting) })

	// Engine counters, including the live-ingest batch/mutation rates.
	engineCounters := []struct {
		name string
		get  func(engine.MetricsSnapshot) int64
	}{
		{"tasks_launched", func(m engine.MetricsSnapshot) int64 { return m.TasksLaunched }},
		{"tasks_skipped", func(m engine.MetricsSnapshot) int64 { return m.TasksSkipped }},
		{"elements_scanned", func(m engine.MetricsSnapshot) int64 { return m.ElementsScanned }},
		{"shuffled_records", func(m engine.MetricsSnapshot) int64 { return m.ShuffledRecords }},
		{"index_probes", func(m engine.MetricsSnapshot) int64 { return m.IndexProbes }},
		{"candidates_refined", func(m engine.MetricsSnapshot) int64 { return m.CandidatesRefined }},
		{"stats_records", func(m engine.MetricsSnapshot) int64 { return m.StatsRecords }},
		{"live_batches", func(m engine.MetricsSnapshot) int64 { return m.LiveBatches }},
		{"live_mutations", func(m engine.MetricsSnapshot) int64 { return m.LiveMutations }},
		{"kernel_batches", func(m engine.MetricsSnapshot) int64 { return m.KernelBatches }},
		{"kernel_survivors", func(m engine.MetricsSnapshot) int64 { return m.KernelSurvivors }},
	}
	for _, ec := range engineCounters {
		get := ec.get
		reg.CounterFunc("stark_engine_"+ec.name+"_total",
			"Engine counter "+ec.name+" (context totals across all jobs).",
			func() int64 { return get(s.ctx.Metrics().Snapshot()) })
	}

	// Go runtime.
	reg.GaugeFunc("stark_go_goroutines", "Live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("stark_go_heap_inuse_bytes", "Heap bytes in use.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapInuse)
		})
	return t
}

// handleMetrics serves the Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.tel.Registry.WritePrometheus(w)
}

// routeLabel normalises a request path to a bounded label set, so
// per-route histograms cannot explode on pathological paths.
func routeLabel(path string) string {
	switch path {
	case "/":
		return "/"
	case "/api/query", "/api/knn", "/api/cluster", "/api/stats", "/api/explain",
		"/api/service", "/api/datasets", "/metrics",
		"/api/v1/query", "/api/v1/explain", "/api/v1/ingest":
		return path
	}
	switch {
	case strings.HasPrefix(path, "/api/v1/datasets/"):
		return "/api/v1/datasets/{name}/records/{id}"
	case strings.HasPrefix(path, "/api/datasets/"):
		return "/api/datasets/{name}"
	case strings.HasPrefix(path, "/debug/pprof"):
		return "/debug/pprof"
	default:
		return "other"
	}
}

// reqInfo is the per-request annotation the query handlers fill in so
// the middleware's access and slow-query log lines can carry query
// identity (fingerprint) and execution shape (trace summary).
type reqInfo struct {
	mu          sync.Mutex
	fingerprint string
	trace       string
}

func (ri *reqInfo) set(fingerprint, trace string) {
	if ri == nil {
		return
	}
	ri.mu.Lock()
	if fingerprint != "" {
		ri.fingerprint = fingerprint
	}
	if trace != "" {
		ri.trace = trace
	}
	ri.mu.Unlock()
}

func (ri *reqInfo) get() (fingerprint, trace string) {
	if ri == nil {
		return "", ""
	}
	ri.mu.Lock()
	defer ri.mu.Unlock()
	return ri.fingerprint, ri.trace
}

type reqInfoKey struct{}

// contextWithReqInfo attaches the annotation slot to the request
// context for the handlers downstream.
func contextWithReqInfo(r *http.Request, ri *reqInfo) context.Context {
	return context.WithValue(r.Context(), reqInfoKey{}, ri)
}

// annotate attaches query identity to the in-flight request's log
// record. Safe to call with an un-instrumented request (no-op).
func annotate(r *http.Request, fingerprint, trace string) {
	if ri, ok := r.Context().Value(reqInfoKey{}).(*reqInfo); ok {
		ri.set(fingerprint, trace)
	}
}

// statusWriter records the response status code for the access log.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.code == 0 {
		sw.code = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if sw.code == 0 {
		sw.code = http.StatusOK
	}
	return sw.ResponseWriter.Write(b)
}

// Flush forwards to the wrapped writer so streaming responses keep
// flushing through the instrumentation.
func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// mountPprof gates net/http/pprof behind the -pprof flag by mounting
// its handlers on the service mux explicitly (the package's implicit
// DefaultServeMux registration is never served).
func (s *Server) mountPprof() {
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// instrument is the middleware around the whole mux: request ID,
// in-flight gauge, per-route latency histogram, structured access
// log, and the slow-query log.
func (s *Server) instrument(w http.ResponseWriter, r *http.Request) {
	t := s.tel
	id := t.reqID.Add(1)
	t.inFlight.Add(1)
	defer t.inFlight.Add(-1)

	ri := &reqInfo{}
	r = r.WithContext(contextWithReqInfo(r, ri))
	w.Header().Set("X-Request-Id", fmt.Sprintf("%d", id))
	sw := &statusWriter{ResponseWriter: w}

	route := routeLabel(r.URL.Path)
	start := time.Now()
	s.mux.ServeHTTP(sw, r)
	dur := time.Since(start)

	t.reqDur.With(route).ObserveDuration(dur)
	if sw.code == 0 {
		sw.code = http.StatusOK
	}
	fingerprint, trace := ri.get()
	attrs := []any{
		slog.Int64("req_id", id),
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.String("route", route),
		slog.Int("status", sw.code),
		slog.Duration("duration", dur),
	}
	if fingerprint != "" {
		attrs = append(attrs, slog.String("fingerprint", fingerprint))
	}
	t.logger.Debug("request", attrs...)
	if t.slowMs > 0 && dur >= time.Duration(t.slowMs)*time.Millisecond {
		t.slowQueries.Inc()
		if trace != "" {
			attrs = append(attrs, slog.String("trace", trace))
		}
		t.logger.Warn("slow query", attrs...)
	}
}
