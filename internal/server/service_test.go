package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"stark"
	"stark/internal/engine"
	"stark/internal/workload"
)

// testService builds a service with a "default" dataset of n events
// and returns it with its engine context.
func testService(t *testing.T, n int, opts Options) (*Server, *stark.Context) {
	t.Helper()
	ctx := engine.NewContext(4)
	s := NewService(ctx, opts)
	events := workload.Events(workload.Config{N: n, Seed: 11, Width: 100, Height: 100, TimeRange: 1000})
	if err := s.catalog.RegisterEvents(ctx, DatasetSpec{Name: DefaultDataset}, events); err != nil {
		t.Fatal(err)
	}
	return s, ctx
}

// ndjsonResponse splits an NDJSON body into feature lines and the
// summary, failing the test on malformed lines.
func ndjsonResponse(t *testing.T, body []byte) (features []map[string]interface{}, summary ndjsonSummary) {
	t.Helper()
	lines := bytes.Split(bytes.TrimSpace(body), []byte("\n"))
	if len(lines) == 0 {
		t.Fatal("empty NDJSON body")
	}
	var wrapped struct {
		Summary *ndjsonSummary `json:"summary"`
	}
	last := lines[len(lines)-1]
	if err := json.Unmarshal(last, &wrapped); err != nil || wrapped.Summary == nil {
		t.Fatalf("last NDJSON line is not a summary: %q (%v)", last, err)
	}
	summary = *wrapped.Summary
	for _, line := range lines[:len(lines)-1] {
		var f map[string]interface{}
		if err := json.Unmarshal(line, &f); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		features = append(features, f)
	}
	return features, summary
}

func postV1Query(t *testing.T, s *Server, req ServiceQueryRequest) *httptest.ResponseRecorder {
	t.Helper()
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/api/v1/query", bytes.NewReader(data)))
	return rec
}

func windowQuery(dataset string) ServiceQueryRequest {
	// The generated events all carry timestamps, and mixed timed vs
	// untimed pairs never satisfy a predicate — so the query needs a
	// covering time window to match spatially.
	return ServiceQueryRequest{
		Dataset: dataset,
		QueryRequest: QueryRequest{
			Predicate: "intersects",
			WKT:       "POLYGON ((10 10, 60 10, 60 60, 10 60, 10 10))",
			HasTime:   true,
			Begin:     0,
			End:       1000,
		},
	}
}

func TestQueryV1StreamsNDJSON(t *testing.T) {
	s, _ := testService(t, 500, Options{})
	rec := postV1Query(t, s, windowQuery(""))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	features, sum := ndjsonResponse(t, rec.Body.Bytes())
	if sum.Cache != "miss" || rec.Header().Get("X-Stark-Cache") != "miss" {
		t.Errorf("first query should miss, got summary=%q header=%q", sum.Cache, rec.Header().Get("X-Stark-Cache"))
	}
	if int64(len(features)) != sum.Count || sum.Count == 0 {
		t.Errorf("count mismatch: %d features, summary says %d", len(features), sum.Count)
	}
	if sum.Dataset != DefaultDataset || sum.Fingerprint == "" {
		t.Errorf("summary incomplete: %+v", sum)
	}
}

func TestQueryV1CacheHitSkipsEngineEntirely(t *testing.T) {
	s, ctx := testService(t, 500, Options{})
	q := windowQuery("")

	first := postV1Query(t, s, q)
	if first.Code != http.StatusOK {
		t.Fatalf("miss status = %d", first.Code)
	}
	firstFeatures, firstSum := ndjsonResponse(t, first.Body.Bytes())

	before := ctx.Metrics().Snapshot()
	second := postV1Query(t, s, q)
	after := ctx.Metrics().Snapshot()
	if second.Code != http.StatusOK {
		t.Fatalf("hit status = %d", second.Code)
	}
	secondFeatures, secondSum := ndjsonResponse(t, second.Body.Bytes())

	if secondSum.Cache != "hit" || second.Header().Get("X-Stark-Cache") != "hit" {
		t.Fatalf("repeated query not served from cache: %+v", secondSum)
	}
	// The acceptance bar: a cache hit schedules no engine work at all.
	if d := after.ElementsScanned - before.ElementsScanned; d != 0 {
		t.Errorf("cache hit scanned %d elements, want 0", d)
	}
	if d := after.TasksLaunched - before.TasksLaunched; d != 0 {
		t.Errorf("cache hit launched %d tasks, want 0", d)
	}
	// Cached results are byte-for-byte the uncached results.
	if len(firstFeatures) != len(secondFeatures) {
		t.Fatalf("cached result has %d features, uncached %d", len(secondFeatures), len(firstFeatures))
	}
	for i := range firstFeatures {
		a, _ := json.Marshal(firstFeatures[i])
		b, _ := json.Marshal(secondFeatures[i])
		if !bytes.Equal(a, b) {
			t.Fatalf("feature %d differs between cached and uncached result:\n%s\n%s", i, a, b)
		}
	}
	if firstSum.Fingerprint != secondSum.Fingerprint {
		t.Errorf("fingerprints differ: %s vs %s", firstSum.Fingerprint, secondSum.Fingerprint)
	}
	if st := s.cache.Stats(); st.Hits != 1 {
		t.Errorf("cache stats hits = %d, want 1", st.Hits)
	}
}

func TestQueryV1ReRegisterInvalidatesCache(t *testing.T) {
	s, ctx := testService(t, 500, Options{})
	q := windowQuery("")
	postV1Query(t, s, q) // warm
	_, hitSum := ndjsonResponse(t, postV1Query(t, s, q).Body.Bytes())
	if hitSum.Cache != "hit" {
		t.Fatalf("warm query did not hit: %+v", hitSum)
	}

	// Re-register the same logical dataset: a new generation.
	events := workload.Events(workload.Config{N: 500, Seed: 11, Width: 100, Height: 100, TimeRange: 1000})
	if err := s.catalog.RegisterEvents(ctx, DatasetSpec{Name: DefaultDataset}, events); err != nil {
		t.Fatal(err)
	}
	before := ctx.Metrics().Snapshot()
	_, sum := ndjsonResponse(t, postV1Query(t, s, q).Body.Bytes())
	after := ctx.Metrics().Snapshot()
	if sum.Cache != "miss" {
		t.Errorf("query after re-register served stale cache entry: %+v", sum)
	}
	if sum.Fingerprint == hitSum.Fingerprint {
		t.Error("fingerprint unchanged across re-registration")
	}
	if after.ElementsScanned == before.ElementsScanned {
		t.Error("query after re-register did not rescan")
	}
}

func TestQueryV1NamedDatasets(t *testing.T) {
	s, ctx := testService(t, 200, Options{})
	events := workload.Events(workload.Config{N: 100, Seed: 7, Width: 100, Height: 100, TimeRange: 1000})
	if err := s.catalog.RegisterEvents(ctx, DatasetSpec{Name: "other", Partitioner: "grid:4", Index: "live:8"}, events); err != nil {
		t.Fatal(err)
	}
	_, sumDefault := ndjsonResponse(t, postV1Query(t, s, windowQuery("")).Body.Bytes())
	rec := postV1Query(t, s, windowQuery("other"))
	if rec.Code != http.StatusOK {
		t.Fatalf("named dataset query status = %d: %s", rec.Code, rec.Body.String())
	}
	_, sumOther := ndjsonResponse(t, rec.Body.Bytes())
	if sumOther.Dataset != "other" {
		t.Errorf("summary dataset = %q", sumOther.Dataset)
	}
	if sumOther.Fingerprint == sumDefault.Fingerprint {
		t.Error("different datasets share a fingerprint")
	}
	if rec := postV1Query(t, s, windowQuery("nope")); rec.Code != http.StatusNotFound {
		t.Errorf("unknown dataset status = %d", rec.Code)
	}
}

// TestQueryV1DifferentialCachedVsUncached is the cache half of the
// differential oracle: for randomized queries, the cached response
// must equal the uncached response element for element.
func TestQueryV1DifferentialCachedVsUncached(t *testing.T) {
	s, _ := testService(t, 600, Options{})
	rng := rand.New(rand.NewSource(3))
	matched := 0
	for trial := 0; trial < 15; trial++ {
		w := 10 + rng.Float64()*50
		h := 10 + rng.Float64()*50
		x := rng.Float64() * (100 - w)
		y := rng.Float64() * (100 - h)
		begin := rng.Int63n(800)
		req := ServiceQueryRequest{QueryRequest: QueryRequest{
			Predicate: []string{"intersects", "containedby", "coveredby"}[rng.Intn(3)],
			WKT: fmt.Sprintf("POLYGON ((%f %f, %f %f, %f %f, %f %f, %f %f))",
				x, y, x+w, y, x+w, y+h, x, y+h, x, y),
			HasTime: true, Begin: begin, End: begin + rng.Int63n(1000-begin),
		}}
		uncached := postV1Query(t, s, req)
		if uncached.Code != http.StatusOK {
			t.Fatalf("trial %d: uncached status %d: %s", trial, uncached.Code, uncached.Body.String())
		}
		cached := postV1Query(t, s, req)
		if cached.Code != http.StatusOK {
			t.Fatalf("trial %d: cached status %d", trial, cached.Code)
		}
		uf, usum := ndjsonResponse(t, uncached.Body.Bytes())
		cf, csum := ndjsonResponse(t, cached.Body.Bytes())
		if usum.Cache != "miss" || csum.Cache != "hit" {
			t.Fatalf("trial %d: cache states %q/%q, want miss/hit", trial, usum.Cache, csum.Cache)
		}
		if len(uf) != len(cf) {
			t.Fatalf("trial %d: uncached %d features, cached %d", trial, len(uf), len(cf))
		}
		for i := range uf {
			a, _ := json.Marshal(uf[i])
			b, _ := json.Marshal(cf[i])
			if !bytes.Equal(a, b) {
				t.Fatalf("trial %d: feature %d differs:\n%s\n%s", trial, i, a, b)
			}
		}
		matched += len(uf)
	}
	if matched == 0 {
		t.Error("differential sweep never matched a row — queries are degenerate")
	}
}

func TestCatalogEndpoints(t *testing.T) {
	s, _ := testService(t, 100, Options{})

	// Register via HTTP with a generator spec.
	spec := `{"name":"gen","n":300,"seed":5,"dist":"uniform","width":50,"height":50,"index":"live:8","partitioner":"grid:4"}`
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/api/datasets", strings.NewReader(spec)))
	if rec.Code != http.StatusOK {
		t.Fatalf("register status = %d: %s", rec.Code, rec.Body.String())
	}
	var info DatasetInfo
	if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info.Name != "gen" || info.Events != 300 || info.Index != "live:8" {
		t.Errorf("register info = %+v", info)
	}

	// List shows both, sorted.
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/datasets", nil))
	var list struct {
		Datasets []DatasetInfo `json:"datasets"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Datasets) != 2 || list.Datasets[0].Name != "default" || list.Datasets[1].Name != "gen" {
		t.Errorf("list = %+v", list.Datasets)
	}

	// Get one.
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/datasets/gen", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"planner"`) {
		t.Errorf("get status = %d body = %s", rec.Code, rec.Body.String())
	}

	// Drop it; a second drop 404s.
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodDelete, "/api/datasets/gen", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("drop status = %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodDelete, "/api/datasets/gen", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("second drop status = %d", rec.Code)
	}

	// Bad registrations are 400s.
	for _, bad := range []string{
		`{"name":"","n":10}`,
		`{"name":"x"}`,
		`{"name":"x","n":10,"dist":"wat"}`,
		`{"name":"x","n":10,"index":"wat"}`,
		`{"name":"x","n":10,"partitioner":"wat:3"}`,
		`{not json`,
	} {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/api/datasets", strings.NewReader(bad)))
		if rec.Code != http.StatusBadRequest {
			t.Errorf("register %s status = %d, want 400", bad, rec.Code)
		}
	}
}

func TestAdmissionRejectsWhenSaturated(t *testing.T) {
	s, _ := testService(t, 200, Options{MaxConcurrent: 1, QueueDepth: 1, QueueTimeout: 50 * time.Millisecond})

	// Occupy the only slot directly.
	if err := s.adm.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer s.adm.Release()

	// One waiter fills the queue and times out with 503...
	done := make(chan *httptest.ResponseRecorder)
	go func() { done <- postV1Query(t, s, windowQuery("")) }()
	// ...and once it occupies the queue, further requests bounce 429.
	deadline := time.After(2 * time.Second)
	for s.adm.Stats().Waiting == 0 {
		select {
		case <-deadline:
			t.Fatal("waiter never queued")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	if rec := postV1Query(t, s, windowQuery("")); rec.Code != http.StatusTooManyRequests {
		t.Errorf("overflow request status = %d, want 429", rec.Code)
	}
	if rec := <-done; rec.Code != http.StatusServiceUnavailable {
		t.Errorf("queued request status = %d, want 503", rec.Code)
	}
	st := s.adm.Stats()
	if st.RejectedFull == 0 || st.TimedOut == 0 {
		t.Errorf("admission stats did not count rejections: %+v", st)
	}
}

func TestAdmissionBypassedOnCacheHit(t *testing.T) {
	s, _ := testService(t, 200, Options{MaxConcurrent: 1, QueueDepth: 1, QueueTimeout: 50 * time.Millisecond})
	q := windowQuery("")
	if rec := postV1Query(t, s, q); rec.Code != http.StatusOK {
		t.Fatalf("warm query status = %d", rec.Code)
	}
	// Saturate the pool; the hot query must still be answered.
	if err := s.adm.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer s.adm.Release()
	rec := postV1Query(t, s, q)
	if rec.Code != http.StatusOK {
		t.Fatalf("cache hit blocked by admission: status = %d", rec.Code)
	}
	if _, sum := ndjsonResponse(t, rec.Body.Bytes()); sum.Cache != "hit" {
		t.Errorf("expected hit, got %+v", sum)
	}
}

func TestExplainV1ReportsFingerprintAndCacheState(t *testing.T) {
	s, _ := testService(t, 300, Options{})
	body, _ := json.Marshal(windowQuery(""))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/api/v1/explain", bytes.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("explain status = %d: %s", rec.Code, rec.Body.String())
	}
	var out map[string]interface{}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	fp, _ := out["fingerprint"].(string)
	if len(fp) != 16 {
		t.Errorf("fingerprint = %v", out["fingerprint"])
	}
	if cached, _ := out["cached"].(bool); cached {
		t.Error("explain reports cached before any query ran")
	}
	// Run the query, then EXPLAIN again: now cached.
	postV1Query(t, s, windowQuery(""))
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/api/v1/explain", bytes.NewReader(body)))
	out = map[string]interface{}{}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if cached, _ := out["cached"].(bool); !cached {
		t.Error("explain does not see the cached entry")
	}
}

func TestServiceStatsEndpoint(t *testing.T) {
	s, _ := testService(t, 100, Options{})
	postV1Query(t, s, windowQuery(""))
	postV1Query(t, s, windowQuery(""))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/service", nil))
	var out struct {
		Cache     CacheStats     `json:"cache"`
		Admission AdmissionStats `json:"admission"`
		Datasets  int            `json:"datasets"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Cache.Hits != 1 || out.Cache.Misses == 0 || out.Cache.Entries != 1 {
		t.Errorf("cache stats = %+v", out.Cache)
	}
	if out.Admission.Admitted == 0 || out.Datasets != 1 {
		t.Errorf("service stats = %+v datasets=%d", out.Admission, out.Datasets)
	}
}

func TestResultCacheLRUEviction(t *testing.T) {
	c := NewResultCache(100, 60)
	c.Put("a", make([]byte, 40), 1)
	c.Put("b", make([]byte, 40), 1)
	if _, _, ok := c.Get("a"); !ok {
		t.Fatal("a evicted prematurely")
	}
	// c displaces b (LRU: a was just touched).
	c.Put("c", make([]byte, 40), 1)
	if _, _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	if _, _, ok := c.Get("a"); !ok {
		t.Error("a should have survived (recently used)")
	}
	// Oversized bodies are rejected outright.
	c.Put("big", make([]byte, 61), 1)
	if _, _, ok := c.Get("big"); ok {
		t.Error("oversized entry admitted")
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Rejected != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.Bytes > 100 {
		t.Errorf("cache over budget: %d", st.Bytes)
	}
}

func TestParseDatasetFlag(t *testing.T) {
	spec, err := ParseDatasetFlag("hotels:n=5000,seed=7,dist=uniform,width=200,height=100,timerange=500,index=live:8,part=grid:8")
	if err != nil {
		t.Fatal(err)
	}
	want := DatasetSpec{
		Name: "hotels", N: 5000, Seed: 7, Dist: "uniform",
		Width: 200, Height: 100, TimeRange: 500,
		Index: "live:8", Partitioner: "grid:8",
	}
	if spec.Name != want.Name || spec.N != want.N || spec.Seed != want.Seed ||
		spec.Dist != want.Dist || spec.Width != want.Width || spec.Height != want.Height ||
		spec.TimeRange != want.TimeRange || spec.Index != want.Index || spec.Partitioner != want.Partitioner {
		t.Errorf("spec = %+v, want %+v", spec, want)
	}
	for _, bad := range []string{"", "noname", ":n=5", "x:n=abc", "x:wat=1", "x:seed=1", "x:n=5,"} {
		if _, err := ParseDatasetFlag(bad); err == nil && bad != "x:n=5," {
			t.Errorf("flag %q parsed without error", bad)
		}
	}
	if _, err := ParseDatasetFlag("x:n=5,"); err != nil {
		t.Errorf("trailing comma rejected: %v", err)
	}
}

func TestJoinThroughQueryV1(t *testing.T) {
	s, _ := testService(t, 300, Options{})
	// Register two fresh sides with a degenerate time range (all
	// instants equal) so the combined spatio-temporal predicate is
	// decided spatially; the right side is small enough that the
	// cost model broadcasts it.
	left := workload.Events(workload.Config{N: 300, Seed: 13, Width: 100, Height: 100, TimeRange: 1})
	if err := s.catalog.RegisterEvents(s.ctx, DatasetSpec{Name: "left"}, left); err != nil {
		t.Fatal(err)
	}
	small := workload.Events(workload.Config{N: 40, Seed: 12, Width: 100, Height: 100, TimeRange: 1})
	if err := s.catalog.RegisterEvents(s.ctx, DatasetSpec{Name: "small"}, small); err != nil {
		t.Fatal(err)
	}
	req := ServiceQueryRequest{
		Dataset: "left",
		Join:    &JoinSpec{With: "small", Predicate: "withindistance", Distance: 5},
	}
	rec := postV1Query(t, s, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("join query status = %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-Stark-Cache"); got != "bypass" {
		t.Errorf("X-Stark-Cache = %q, want bypass", got)
	}
	features, sum := ndjsonResponse(t, rec.Body.Bytes())
	if sum.Cache != "bypass" || sum.Strategy == "" || sum.Strategy == "auto" {
		t.Errorf("summary = %+v", sum)
	}
	if int64(len(features)) != sum.Count {
		t.Errorf("streamed %d rows, summary says %d", len(features), sum.Count)
	}
	if len(features) == 0 {
		t.Fatal("degenerate test: join returned no rows")
	}
	// Every row must carry the folded right record.
	props, _ := features[0]["properties"].(map[string]interface{})
	if props == nil || props["right"] == nil {
		t.Errorf("join feature missing right record: %v", features[0])
	}

	// The same join through EXPLAIN renders the strategy decision.
	body, _ := json.Marshal(req)
	erec := httptest.NewRecorder()
	s.ServeHTTP(erec, httptest.NewRequest(http.MethodPost, "/api/v1/explain", bytes.NewReader(body)))
	if erec.Code != http.StatusOK {
		t.Fatalf("join explain status = %d: %s", erec.Code, erec.Body.String())
	}
	var out map[string]interface{}
	if err := json.Unmarshal(erec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	text, _ := out["text"].(string)
	if !strings.Contains(text, "Join[") {
		t.Errorf("explain text missing Join node:\n%s", text)
	}
	if out["strategy"] == "" || out["cache"] != "bypass" {
		t.Errorf("explain response = %v", out)
	}
}

func TestJoinQueryV1BadRequests(t *testing.T) {
	s, _ := testService(t, 50, Options{})
	for _, req := range []ServiceQueryRequest{
		{Join: &JoinSpec{With: "missing"}},
		{Join: &JoinSpec{Predicate: "bogus"}},
		{Join: &JoinSpec{Strategy: "bogus"}},
		{Join: &JoinSpec{Predicate: "withindistance"}}, // no distance
		// A temporal window without a geometry must be rejected (as
		// the non-join path rejects it), not silently dropped.
		{QueryRequest: QueryRequest{HasTime: true, End: 5}, Join: &JoinSpec{}},
	} {
		rec := postV1Query(t, s, req)
		if rec.Code != http.StatusBadRequest && rec.Code != http.StatusNotFound {
			t.Errorf("join %+v: status = %d", req.Join, rec.Code)
		}
	}
}
