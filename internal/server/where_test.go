package server

// Tests for the query endpoint's `where` clause: typed attribute
// predicates over the event fields, ANDed with the spatial predicate,
// admission-controlled and result-cached like any other query.

import (
	"net/http"
	"strings"
	"testing"

	"stark/internal/workload"
)

// whereQuery is the canonical mixed spatial+attribute request.
func whereQuery() ServiceQueryRequest {
	q := windowQuery("")
	q.Where = WhereClauses{{Field: "category", Op: "eq", Value: "sports"}}
	return q
}

func TestQueryV1WhereFiltersCategories(t *testing.T) {
	s, _ := testService(t, 500, Options{})

	spatialOnly := postV1Query(t, s, windowQuery(""))
	if spatialOnly.Code != http.StatusOK {
		t.Fatalf("spatial-only status = %d: %s", spatialOnly.Code, spatialOnly.Body.String())
	}
	_, spatialSum := ndjsonResponse(t, spatialOnly.Body.Bytes())

	rec := postV1Query(t, s, whereQuery())
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	features, sum := ndjsonResponse(t, rec.Body.Bytes())
	if sum.Count == 0 {
		t.Fatal("where query matched nothing — test is vacuous")
	}
	if sum.Count >= spatialSum.Count {
		t.Errorf("where clause did not narrow the result: %d vs %d spatial-only",
			sum.Count, spatialSum.Count)
	}
	for _, f := range features {
		props := f["properties"].(map[string]interface{})
		if cat := props["category"]; cat != "sports" {
			t.Fatalf("feature leaked through the where clause: category=%v", cat)
		}
	}
	if sum.Fingerprint == "" || sum.Fingerprint == spatialSum.Fingerprint {
		t.Errorf("where clause not part of the fingerprint: %q vs %q",
			sum.Fingerprint, spatialSum.Fingerprint)
	}
}

// TestQueryV1WhereCacheHit: the acceptance gate — a repeated mixed
// spatial+attribute query is served from the result cache, with the
// same fingerprint and no engine work.
func TestQueryV1WhereCacheHit(t *testing.T) {
	s, ctx := testService(t, 500, Options{})
	q := whereQuery()

	first := postV1Query(t, s, q)
	if first.Code != http.StatusOK {
		t.Fatalf("miss status = %d: %s", first.Code, first.Body.String())
	}
	firstFeatures, firstSum := ndjsonResponse(t, first.Body.Bytes())
	if firstSum.Cache != "miss" {
		t.Fatalf("first where query cache = %q, want miss", firstSum.Cache)
	}

	before := ctx.Metrics().Snapshot()
	second := postV1Query(t, s, q)
	after := ctx.Metrics().Snapshot()
	secondFeatures, secondSum := ndjsonResponse(t, second.Body.Bytes())
	if secondSum.Cache != "hit" || second.Header().Get("X-Stark-Cache") != "hit" {
		t.Fatalf("repeated where query not served from cache: %+v", secondSum)
	}
	if secondSum.Fingerprint != firstSum.Fingerprint {
		t.Errorf("fingerprint drifted across identical requests: %q vs %q",
			firstSum.Fingerprint, secondSum.Fingerprint)
	}
	if d := after.ElementsScanned - before.ElementsScanned; d != 0 {
		t.Errorf("cache hit scanned %d elements, want 0", d)
	}
	if len(secondFeatures) != len(firstFeatures) {
		t.Errorf("cached result has %d features, miss had %d", len(secondFeatures), len(firstFeatures))
	}

	// A different clause over the same window is its own cache entry.
	q2 := windowQuery("")
	q2.Where = WhereClauses{{Field: "time", Op: "ge", Value: 500}}
	third := postV1Query(t, s, q2)
	_, thirdSum := ndjsonResponse(t, third.Body.Bytes())
	if thirdSum.Cache != "miss" {
		t.Errorf("distinct where clause served from cache: %+v", thirdSum)
	}
}

// TestQueryV1WhereOnly: with a where clause present the spatial
// window may be omitted entirely — the query is attribute-only.
func TestQueryV1WhereOnly(t *testing.T) {
	s, _ := testService(t, 400, Options{})
	req := ServiceQueryRequest{
		QueryRequest: QueryRequest{
			Where: WhereClauses{
				{Field: "category", Op: "in", Values: []any{"sports", "culture"}},
				{Field: "time", Op: "between", Value: 100, Value2: 900},
			},
		},
	}
	rec := postV1Query(t, s, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	features, sum := ndjsonResponse(t, rec.Body.Bytes())
	want := 0
	for _, e := range workload.Events(workload.Config{N: 400, Seed: 11, Width: 100, Height: 100, TimeRange: 1000}) {
		if (e.Category == "sports" || e.Category == "culture") && e.Time >= 100 && e.Time <= 900 {
			want++
		}
	}
	if int(sum.Count) != want || len(features) != want {
		t.Errorf("attribute-only query matched %d (summary %d), want %d", len(features), sum.Count, want)
	}
}

// TestQueryV1WhereBadClause400: malformed clauses are rejected before
// any engine work, with the clause position in the message.
func TestQueryV1WhereBadClause400(t *testing.T) {
	s, _ := testService(t, 50, Options{})
	cases := []struct {
		name   string
		clause WhereClause
	}{
		{"unknown_field", WhereClause{Field: "tip", Op: "eq", Value: 1}},
		{"unknown_op", WhereClause{Field: "time", Op: "like", Value: 1}},
		{"type_mismatch", WhereClause{Field: "category", Op: "eq", Value: 3}},
		{"lossy_float", WhereClause{Field: "time", Op: "eq", Value: 1.5}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			q := windowQuery("")
			q.Where = WhereClauses{tc.clause}
			rec := postV1Query(t, s, q)
			if rec.Code != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400: %s", rec.Code, rec.Body.String())
			}
			if !strings.Contains(rec.Body.String(), "where clause 0") {
				t.Errorf("error does not locate the clause: %s", rec.Body.String())
			}
		})
	}
}
