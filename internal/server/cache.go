package server

// The plan-fingerprint result cache: encoded NDJSON result bodies
// keyed by stark.Dataset.Fingerprint(), held in an LRU bounded by a
// byte budget. A hit serves the stored bytes without touching the
// engine at all — zero partitions scheduled, zero elements scanned.
// Invalidation is structural rather than explicit: a fingerprint
// embeds the engine generation of the dataset it was minted against,
// so re-registering a dataset orphans its entries (they age out of
// the LRU, unreachable by any future query).

import (
	"container/list"
	"sync"
)

// CacheStats is the observable state of a ResultCache.
type CacheStats struct {
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	MaxBytes  int64 `json:"maxBytes"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	// Rejected counts results too large for the per-entry budget.
	Rejected int64 `json:"rejected"`
}

type cacheEntry struct {
	key  string
	body []byte
	rows int64
}

// ResultCache is a byte-budgeted LRU of encoded query results. All
// methods are safe for concurrent use.
type ResultCache struct {
	mu            sync.Mutex
	maxBytes      int64
	maxEntryBytes int64
	curBytes      int64
	ll            *list.List // front = most recently used
	items         map[string]*list.Element
	hits, misses  int64
	evictions     int64
	rejected      int64
}

// NewResultCache returns a cache bounded by maxBytes in total and
// maxEntryBytes per entry (<= 0 selects maxBytes/8).
func NewResultCache(maxBytes, maxEntryBytes int64) *ResultCache {
	if maxBytes <= 0 {
		maxBytes = 64 << 20
	}
	if maxEntryBytes <= 0 {
		maxEntryBytes = maxBytes / 8
	}
	return &ResultCache{
		maxBytes:      maxBytes,
		maxEntryBytes: maxEntryBytes,
		ll:            list.New(),
		items:         make(map[string]*list.Element),
	}
}

// MaxEntryBytes returns the per-entry budget, so producers can stop
// buffering a result that can never be admitted.
func (c *ResultCache) MaxEntryBytes() int64 { return c.maxEntryBytes }

// Get returns the cached body and row count for key, marking it most
// recently used. The returned slice must not be modified.
func (c *ResultCache) Get(key string) ([]byte, int64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, 0, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	e := el.Value.(*cacheEntry)
	return e.body, e.rows, true
}

// Put stores body under key, evicting least-recently-used entries
// until the byte budget holds. Bodies over the per-entry budget are
// rejected. The cache takes ownership of body.
func (c *ResultCache) Put(key string, body []byte, rows int64) {
	size := int64(len(body))
	c.mu.Lock()
	defer c.mu.Unlock()
	if size > c.maxEntryBytes {
		c.rejected++
		return
	}
	if el, ok := c.items[key]; ok {
		// Replace in place (an identical fingerprint means identical
		// results, but a concurrent miss may double-fill).
		e := el.Value.(*cacheEntry)
		c.curBytes += size - int64(len(e.body))
		e.body, e.rows = body, rows
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&cacheEntry{key: key, body: body, rows: rows})
		c.curBytes += size
	}
	for c.curBytes > c.maxBytes {
		back := c.ll.Back()
		if back == nil {
			break
		}
		e := back.Value.(*cacheEntry)
		c.ll.Remove(back)
		delete(c.items, e.key)
		c.curBytes -= int64(len(e.body))
		c.evictions++
	}
}

// Contains reports whether key is cached, without counting a hit or
// touching recency — the EXPLAIN endpoint's peek.
func (c *ResultCache) Contains(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.items[key]
	return ok
}

// Stats returns a snapshot of the cache counters.
func (c *ResultCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:   c.ll.Len(),
		Bytes:     c.curBytes,
		MaxBytes:  c.maxBytes,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Rejected:  c.rejected,
	}
}
