package server

// Durability: a write-ahead log plus periodic checkpoints under one
// on-disk data directory, giving the query service crash recovery
// with exactly-once batch semantics.
//
// Every catalog mutation (register, drop) and every ingest batch is
// appended to the WAL and fsync'd BEFORE it becomes visible — the
// HTTP acknowledgement implies the record is on disk. A checkpoint
// rotates the log, snapshots each dataset (mutable ones as a
// checksummed row file plus a persisted R-tree over the row
// envelopes, captured through a writer barrier so no WAL-logged batch
// is missed; immutable ones as their self-contained spec), writes an
// atomic checksummed manifest, and truncates the log segments the
// PREVIOUS checkpoint made redundant — the newest two checkpoints and
// the WAL suffix of the older stay on disk, so one rotted manifest
// degrades to recovering from the prior checkpoint. Boot recovery
// loads the newest valid manifest, restores the catalog at its
// recorded generations, and replays the WAL suffix: registers and
// drops re-execute, batches re-apply through the live dataset's
// generation-checked replay path (already-checkpointed generations
// skip, gaps error), so the recovered state is exactly the
// acknowledged pre-crash state.
//
// Layout of the data directory:
//
//	wal-%08d.log        WAL segments (internal/wal framing)
//	manifest-%08d.ckpt  checkpoint manifests (checksummed JSON)
//	ckpt-%08d-%03d.rows mutable dataset rows (checksummed JSON)
//	ckpt-%08d-%03d.idx  R-tree over the row envelopes (index format v2)

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"stark"
	"stark/internal/geom"
	"stark/internal/index"
	"stark/internal/wal"
	"stark/internal/workload"
)

// WAL record types.
const (
	walRegister byte = 1 // registerRecord: catalog registration
	walDrop     byte = 2 // dropRecord: catalog drop
	walBatch    byte = 3 // batchRecord: one applied ingest batch
)

// registerRecord logs one catalog registration. Spec is
// self-contained: inline payloads are embedded before logging, so
// replay rebuilds the dataset without any other source.
type registerRecord struct {
	Gen  int64       `json:"gen"`
	Spec DatasetSpec `json:"spec"`
}

// dropRecord logs one catalog drop.
type dropRecord struct {
	Name string `json:"name"`
}

// batchRecord logs one applied ingest batch: the dataset, the
// registration generation of the entry it applied to (so batches of
// a later re-registration are never replayed into an earlier one),
// the live generation the batch published, and the operations in
// wire form.
type batchRecord struct {
	Dataset  string         `json:"dataset"`
	EntryGen int64          `json:"entryGen"`
	Gen      uint64         `json:"gen"`
	Ops      []mutationLine `json:"ops"`
}

// manifest is one checkpoint: the WAL segment replay resumes from,
// the catalog registration counter, and the datasets in registration
// order.
type manifest struct {
	WALSeq     int               `json:"walSeq"`
	CatalogGen int64             `json:"catalogGen"`
	Datasets   []manifestDataset `json:"datasets"`
}

// manifestDataset is one dataset in a checkpoint. Immutable datasets
// carry only their (self-contained) spec; mutable ones add the live
// generation and the segment file names.
type manifestDataset struct {
	Gen     int64       `json:"gen"`
	Spec    DatasetSpec `json:"spec"`
	LiveGen uint64      `json:"liveGen,omitempty"`
	Count   int         `json:"count,omitempty"`
	Rows    string      `json:"rows,omitempty"`
	Index   string      `json:"index,omitempty"`
}

// segRecord is one checkpointed live record in the rows file.
type segRecord struct {
	ID       int64  `json:"id"`
	Category string `json:"category,omitempty"`
	Time     int64  `json:"time,omitempty"`
	WKT      string `json:"wkt"`
}

// RecoveryInfo summarises what boot recovery did.
type RecoveryInfo struct {
	// Checkpoint is the manifest sequence recovery loaded; 0 = none.
	Checkpoint int `json:"checkpoint"`
	// Datasets counts datasets restored from the checkpoint.
	Datasets int `json:"datasets"`
	// Registers/Drops/Batches count WAL suffix records re-executed.
	Registers int `json:"replayedRegisters"`
	Drops     int `json:"replayedDrops"`
	Batches   int `json:"replayedBatches"`
	// SkippedBatches counts suffix batches the checkpoint already
	// covered (idempotent replay) or whose entry was re-registered or
	// dropped later in the log.
	SkippedBatches int `json:"skippedBatches"`
	// DurationMs is wall time spent recovering.
	DurationMs int64 `json:"durationMs"`
}

// Durability is the WAL + checkpoint manager of one Server.
type Durability struct {
	s   *Server
	dir string
	log *wal.Log

	// recovering suppresses WAL logging while boot replay re-executes
	// catalog mutations through the normal code paths.
	recovering atomic.Bool

	// ckptMu serialises Checkpoint against Close.
	ckptMu sync.Mutex
	// ckptSeq is the newest manifest sequence written or recovered;
	// ckptWALSeq is the WAL segment that manifest resumes replay from
	// (0 = no checkpoint yet). The WAL suffix from ckptWALSeq on is
	// what the NEXT checkpoint may truncate: retention always covers
	// one full previous checkpoint, so a rotted newest manifest
	// degrades to recovering from the prior one instead of failing.
	ckptSeq    int
	ckptWALSeq int
	closed     bool

	checkpoints  atomic.Int64
	lastCkptUnix atomic.Int64

	recovered RecoveryInfo

	stopTicker chan struct{}
	tickerDone chan struct{}
}

func manifestPath(dir string, seq int) string {
	return filepath.Join(dir, fmt.Sprintf("manifest-%08d.ckpt", seq))
}

// EnableDurability turns the service durable: recovers catalog and
// datasets from dir (newest valid checkpoint + WAL suffix replay),
// then write-ahead-logs every subsequent catalog mutation and ingest
// batch, checkpointing every interval (0 disables the ticker;
// Checkpoint can still be called explicitly). Must be called before
// any registration, and at most once.
func (s *Server) EnableDurability(dir string, interval time.Duration) (*RecoveryInfo, error) {
	if s.dur != nil {
		return nil, errors.New("durability already enabled")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("creating data dir: %w", err)
	}
	d := &Durability{s: s, dir: dir}
	// The catalog must know the manager before recovery: replayed
	// registrations attach their commit hooks through it.
	s.catalog.setDurability(d)
	d.recovering.Store(true)
	start := time.Now()
	if err := d.recover(); err != nil {
		s.catalog.setDurability(nil)
		return nil, err
	}
	d.recovered.DurationMs = time.Since(start).Milliseconds()

	log, err := wal.Open(dir)
	if err != nil {
		s.catalog.setDurability(nil)
		return nil, fmt.Errorf("opening WAL: %w", err)
	}
	fsyncH := s.tel.Registry.Histogram("stark_wal_fsync_duration_seconds",
		"Duration of WAL fsync calls.",
		[]float64{.0001, .00025, .0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1})
	log.SyncObserver = fsyncH.ObserveDuration
	d.log = log
	d.recovering.Store(false)
	s.dur = d

	s.tel.Registry.CounterFunc("stark_wal_appends_total", "Records appended to the WAL.",
		func() int64 { return d.log.Stats().Appends })
	s.tel.Registry.CounterFunc("stark_wal_bytes_total", "Bytes written to the WAL, including framing.",
		func() int64 { return d.log.Stats().Bytes })
	s.tel.Registry.CounterFunc("stark_wal_fsyncs_total", "fsync calls issued by WAL appends.",
		func() int64 { return d.log.Stats().Syncs })
	s.tel.Registry.CounterFunc("stark_checkpoints_total", "Checkpoints completed.",
		d.checkpoints.Load)

	if interval > 0 {
		d.stopTicker = make(chan struct{})
		d.tickerDone = make(chan struct{})
		go d.tick(interval)
	}
	info := d.recovered
	return &info, nil
}

// CloseDurability takes a final checkpoint and closes the WAL — the
// graceful-shutdown path. The service must no longer be serving
// writes. A no-op when durability is not enabled.
func (s *Server) CloseDurability() error {
	d := s.dur
	if d == nil {
		return nil
	}
	if d.stopTicker != nil {
		close(d.stopTicker)
		<-d.tickerDone
	}
	ckptErr := d.Checkpoint()
	d.ckptMu.Lock()
	d.closed = true
	d.ckptMu.Unlock()
	if err := d.log.Close(); err != nil && ckptErr == nil {
		ckptErr = err
	}
	return ckptErr
}

// Checkpoint snapshots the catalog and truncates the WAL — callable
// any time while the service runs.
func (s *Server) Checkpoint() error {
	if s.dur == nil {
		return errors.New("durability not enabled")
	}
	return s.dur.Checkpoint()
}

// HasDataset reports whether name is registered — cmd/starkd uses it
// to skip preloading datasets recovery already restored.
func (s *Server) HasDataset(name string) bool {
	_, ok := s.catalog.Get(name)
	return ok
}

// DatasetInfo returns the catalog's view of one dataset, as the HTTP
// list endpoint would render it. The bench durability experiment uses
// it to cross-check recovered state against what it ingested.
func (s *Server) DatasetInfo(name string) (DatasetInfo, bool) {
	e, ok := s.catalog.Get(name)
	if !ok {
		return DatasetInfo{}, false
	}
	return e.info(), true
}

func (d *Durability) tick(interval time.Duration) {
	defer close(d.tickerDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if err := d.Checkpoint(); err != nil {
				slog.Error("checkpoint failed", "err", err)
			}
		case <-d.stopTicker:
			return
		}
	}
}

// ---- logging (called under the catalog / live-dataset writer locks) ----

func (d *Durability) append(typ byte, v interface{}) error {
	if d.recovering.Load() {
		return nil
	}
	payload, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return d.log.Append(wal.Record{Type: typ, Payload: payload})
}

func (d *Durability) logRegister(gen int64, spec DatasetSpec) error {
	return d.append(walRegister, registerRecord{Gen: gen, Spec: spec})
}

func (d *Durability) logDrop(name string) error {
	return d.append(walDrop, dropRecord{Name: name})
}

func (d *Durability) logBatch(dataset string, entryGen int64, gen uint64, ops []stark.LiveOp[workload.Event]) error {
	if d.recovering.Load() {
		return nil
	}
	lines := make([]mutationLine, len(ops))
	for i, op := range ops {
		lines[i] = opLine(op)
	}
	return d.append(walBatch, batchRecord{Dataset: dataset, EntryGen: entryGen, Gen: gen, Ops: lines})
}

// ---- checkpointing ----

// Checkpoint rotates the WAL, snapshots every dataset, writes an
// atomic checksummed manifest, and removes the WAL segments and
// checkpoint files the PREVIOUS checkpoint made redundant — the
// newest two checkpoints (manifest, segment files, and the WAL suffix
// from the older one's replay point) are always retained, so recovery
// survives a single rotted manifest by falling back one checkpoint
// and replaying the longer suffix. Writers keep running throughout:
// the per-dataset snapshot is a writer barrier (EachRecord), so every
// batch logged to a pre-rotation segment is in the snapshot, and
// batches that land mid-checkpoint are in the rotated suffix — replay
// is idempotent, so landing in both is harmless.
func (d *Durability) Checkpoint() error {
	d.ckptMu.Lock()
	defer d.ckptMu.Unlock()
	if d.closed {
		return errors.New("durability closed")
	}
	walSeq, err := d.log.Rotate()
	if err != nil {
		return fmt.Errorf("rotating WAL: %w", err)
	}
	entries, catGen := d.s.catalog.snapshot()
	seq := d.ckptSeq + 1
	m := manifest{WALSeq: walSeq, CatalogGen: catGen}
	for i, e := range entries {
		md := manifestDataset{Gen: e.gen, Spec: e.spec}
		if e.mds != nil {
			var recs []segRecord
			var envs []geom.Envelope
			liveGen := e.mds.EachRecord(func(r stark.LiveRecord[workload.Event]) bool {
				recs = append(recs, segRecord{ID: r.ID, Category: r.Value.Category, Time: r.Value.Time, WKT: r.Value.WKT})
				envs = append(envs, r.Key.Envelope())
				return true
			})
			rows, err := json.Marshal(recs)
			if err != nil {
				return fmt.Errorf("encoding rows of %q: %w", e.spec.Name, err)
			}
			// Segment files are named by checkpoint sequence and dataset
			// ordinal — never by the (untrusted) dataset name.
			md.Rows = fmt.Sprintf("ckpt-%08d-%03d.rows", seq, i)
			md.Index = fmt.Sprintf("ckpt-%08d-%03d.idx", seq, i)
			if err := wal.WriteChecksummed(filepath.Join(d.dir, md.Rows), rows); err != nil {
				return fmt.Errorf("writing %s: %w", md.Rows, err)
			}
			if err := index.BuildFromEnvelopes(0, envs).SaveFile(filepath.Join(d.dir, md.Index)); err != nil {
				return fmt.Errorf("writing %s: %w", md.Index, err)
			}
			md.LiveGen = liveGen
			md.Count = len(recs)
		}
		m.Datasets = append(m.Datasets, md)
	}
	buf, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("encoding manifest: %w", err)
	}
	// The manifest is the commit point: until this atomic write lands,
	// recovery uses the previous checkpoint and the full WAL.
	if err := wal.WriteChecksummed(manifestPath(d.dir, seq), buf); err != nil {
		return fmt.Errorf("writing manifest: %w", err)
	}
	prevSeq, prevWALSeq := d.ckptSeq, d.ckptWALSeq
	d.ckptSeq, d.ckptWALSeq = seq, walSeq
	// Truncate only what the PREVIOUS checkpoint covered: WAL segments
	// below its replay point. With no previous checkpoint the whole log
	// stays — the fallback recovery point is then "empty state + full
	// replay".
	if prevSeq > 0 {
		if err := d.log.RemoveBelow(prevWALSeq); err != nil {
			return fmt.Errorf("truncating WAL: %w", err)
		}
	}
	d.prune(seq, prevSeq)
	d.checkpoints.Add(1)
	d.lastCkptUnix.Store(time.Now().Unix())
	return nil
}

// prune removes manifests and checkpoint segment files of checkpoints
// other than the newest (keep) and the previous complete one
// (alsoKeep, 0 = none) — the fallback loadNewestManifest degrades to
// when keep's manifest rots. Best effort — stragglers are re-pruned
// by the next checkpoint.
func (d *Durability) prune(keep, alsoKeep int) {
	names, err := os.ReadDir(d.dir)
	if err != nil {
		return
	}
	retained := func(seq int) bool { return seq == keep || (alsoKeep > 0 && seq == alsoKeep) }
	for _, de := range names {
		n := de.Name()
		var seq int
		var stale bool
		switch {
		case strings.HasPrefix(n, "manifest-") && strings.HasSuffix(n, ".ckpt"):
			if c, _ := fmt.Sscanf(n, "manifest-%d.ckpt", &seq); c == 1 {
				stale = !retained(seq)
			}
		case strings.HasPrefix(n, "ckpt-"):
			if c, _ := fmt.Sscanf(n, "ckpt-%d-", &seq); c == 1 {
				stale = !retained(seq)
			}
		}
		if stale {
			_ = os.Remove(filepath.Join(d.dir, n))
		}
	}
}

// ---- recovery ----

// recover restores the catalog from the newest valid checkpoint (if
// any) and replays the WAL suffix through the normal catalog and
// live-dataset paths.
func (d *Durability) recover() error {
	m, seq, err := d.loadNewestManifest()
	if err != nil {
		return err
	}
	fromSeq := 0
	if m != nil {
		d.ckptSeq, d.ckptWALSeq = seq, m.WALSeq
		d.recovered.Checkpoint = seq
		if err := d.restoreCheckpoint(m); err != nil {
			return fmt.Errorf("restoring checkpoint %d: %w", seq, err)
		}
		fromSeq = m.WALSeq
	}
	if err := wal.Replay(d.dir, fromSeq, d.applyRecord); err != nil {
		return fmt.Errorf("replaying WAL: %w", err)
	}
	return nil
}

// loadNewestManifest returns the newest manifest that reads back
// valid, skipping (with a log line) any that rotted on disk.
func (d *Durability) loadNewestManifest() (*manifest, int, error) {
	des, err := os.ReadDir(d.dir)
	if err != nil {
		return nil, 0, err
	}
	var seqs []int
	for _, de := range des {
		var seq int
		if n, _ := fmt.Sscanf(de.Name(), "manifest-%d.ckpt", &seq); n == 1 {
			seqs = append(seqs, seq)
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(seqs)))
	for _, seq := range seqs {
		buf, err := wal.ReadChecksummed(manifestPath(d.dir, seq))
		if err != nil {
			slog.Warn("skipping unreadable checkpoint manifest", "seq", seq, "err", err)
			continue
		}
		var m manifest
		if err := json.Unmarshal(buf, &m); err != nil {
			slog.Warn("skipping undecodable checkpoint manifest", "seq", seq, "err", err)
			continue
		}
		return &m, seq, nil
	}
	return nil, 0, nil
}

// restoreCheckpoint rebuilds the catalog the manifest describes:
// immutable datasets re-stage from their self-contained specs,
// mutable ones bulk-load their checkpointed rows (validated against
// the checksummed container AND cross-checked against the persisted
// R-tree) at their recorded live generation.
func (d *Durability) restoreCheckpoint(m *manifest) error {
	for _, md := range m.Datasets {
		if md.Rows == "" {
			// Immutable (or never-snapshotted) dataset: deterministic
			// re-stage from the spec.
			if err := d.s.catalog.registerReplayed(d.s.ctx, md.Spec, md.Gen); err != nil {
				return fmt.Errorf("re-staging %q: %w", md.Spec.Name, err)
			}
			d.recovered.Datasets++
			continue
		}
		rows, err := wal.ReadChecksummed(filepath.Join(d.dir, md.Rows))
		if err != nil {
			return fmt.Errorf("reading %s: %w", md.Rows, err)
		}
		var recs []segRecord
		if err := json.Unmarshal(rows, &recs); err != nil {
			return fmt.Errorf("decoding %s: %w", md.Rows, err)
		}
		idx, err := index.LoadFile(filepath.Join(d.dir, md.Index))
		if err != nil {
			return fmt.Errorf("reading %s: %w", md.Index, err)
		}
		if idx.Len() != len(recs) || len(recs) != md.Count {
			return fmt.Errorf("%q: rows (%d), index (%d) and manifest (%d) disagree",
				md.Spec.Name, len(recs), idx.Len(), md.Count)
		}
		live := make([]stark.LiveRecord[workload.Event], len(recs))
		for i, r := range recs {
			ev := workload.Event{ID: int(r.ID), Category: r.Category, Time: r.Time, WKT: r.WKT}
			key, err := ev.ToSTObject()
			if err != nil {
				return fmt.Errorf("%q row %d: %w", md.Spec.Name, i, err)
			}
			live[i] = stark.LiveRecord[workload.Event]{ID: r.ID, Key: key, Value: ev}
		}
		if err := d.s.catalog.restoreMutable(d.s.ctx, md.Spec, md.Gen, md.LiveGen, live); err != nil {
			return fmt.Errorf("restoring %q: %w", md.Spec.Name, err)
		}
		d.recovered.Datasets++
	}
	d.s.catalog.setGen(m.CatalogGen)
	return nil
}

// applyRecord re-executes one WAL suffix record.
func (d *Durability) applyRecord(_ int, rec wal.Record) error {
	switch rec.Type {
	case walRegister:
		var r registerRecord
		if err := json.Unmarshal(rec.Payload, &r); err != nil {
			return fmt.Errorf("decoding register record: %w", err)
		}
		if err := d.s.catalog.registerReplayed(d.s.ctx, r.Spec, r.Gen); err != nil {
			return fmt.Errorf("replaying registration of %q: %w", r.Spec.Name, err)
		}
		d.recovered.Registers++
	case walDrop:
		var r dropRecord
		if err := json.Unmarshal(rec.Payload, &r); err != nil {
			return fmt.Errorf("decoding drop record: %w", err)
		}
		if _, err := d.s.catalog.Drop(r.Name); err != nil {
			return err
		}
		d.recovered.Drops++
	case walBatch:
		var r batchRecord
		if err := json.Unmarshal(rec.Payload, &r); err != nil {
			return fmt.Errorf("decoding batch record: %w", err)
		}
		entry, ok := d.s.catalog.Get(r.Dataset)
		if !ok || entry.mds == nil || entry.gen != r.EntryGen {
			// The entry this batch applied to was dropped or replaced
			// later in the log — the batch is history, not state.
			d.recovered.SkippedBatches++
			return nil
		}
		ops := make([]stark.LiveOp[workload.Event], len(r.Ops))
		for i, line := range r.Ops {
			op, err := line.toOp()
			if err != nil {
				return fmt.Errorf("batch for %q op %d: %w", r.Dataset, i, err)
			}
			ops[i] = op
		}
		applied, err := entry.mds.ReplayBatch(r.Gen, ops)
		if err != nil {
			return fmt.Errorf("replaying batch generation %d into %q: %w", r.Gen, r.Dataset, err)
		}
		if applied {
			d.recovered.Batches++
		} else {
			d.recovered.SkippedBatches++
		}
	default:
		return fmt.Errorf("unknown WAL record type %d", rec.Type)
	}
	return nil
}

// status renders the durability block of GET /api/service.
func (d *Durability) status() map[string]interface{} {
	st := d.log.Stats()
	out := map[string]interface{}{
		"enabled":     true,
		"dir":         d.dir,
		"walSeq":      st.Seq,
		"walAppends":  st.Appends,
		"walBytes":    st.Bytes,
		"walSyncs":    st.Syncs,
		"checkpoints": d.checkpoints.Load(),
		"recovered":   d.recovered,
	}
	if ts := d.lastCkptUnix.Load(); ts > 0 {
		out["lastCheckpoint"] = time.Unix(ts, 0).UTC().Format(time.RFC3339)
	}
	return out
}
