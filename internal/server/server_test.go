package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"stark/internal/engine"
	"stark/internal/geom"
	"stark/internal/workload"
)

func testServer(t *testing.T, n int) *Server {
	t.Helper()
	events := workload.Events(workload.Config{N: n, Seed: 11, Width: 100, Height: 100, TimeRange: 1000})
	s, err := New(engine.NewContext(4), events)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func postJSON(t *testing.T, s *Server, path string, body interface{}) (*httptest.ResponseRecorder, map[string]interface{}) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(data))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var out map[string]interface{}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("%s: bad JSON response %q: %v", path, rec.Body.String(), err)
	}
	return rec, out
}

func TestIndexPage(t *testing.T) {
	s := testServer(t, 10)
	req := httptest.NewRequest(http.MethodGet, "/", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "STARK") {
		t.Error("index page missing title")
	}
	// Unknown paths 404.
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/nope", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("unknown path status = %d", rec.Code)
	}
}

func TestQueryEndpointSpatioTemporal(t *testing.T) {
	s := testServer(t, 300)
	rec, out := postJSON(t, s, "/api/query", QueryRequest{
		Predicate: "containedby",
		WKT:       "POLYGON ((0 0, 100 0, 100 100, 0 100, 0 0))",
		HasTime:   true,
		Begin:     0,
		End:       500,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d body=%s", rec.Code, rec.Body.String())
	}
	count := int(out["count"].(float64))
	if count == 0 || count == 300 {
		t.Errorf("count = %d, want a proper temporal subset", count)
	}
	feats := out["features"].([]interface{})
	for _, f := range feats {
		props := f.(map[string]interface{})["properties"].(map[string]interface{})
		if props["time"].(float64) > 500 {
			t.Fatal("temporal window violated")
		}
	}
}

func TestQueryEndpointWithinDistance(t *testing.T) {
	s := testServer(t, 200)
	rec, out := postJSON(t, s, "/api/query", QueryRequest{
		Predicate: "withindistance",
		WKT:       "POINT (50 50)",
		HasTime:   true,
		Begin:     0, End: 1000,
		Distance: 30,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if int(out["count"].(float64)) == 0 {
		t.Error("no results within 30 of center")
	}
	// Missing distance errors.
	rec, _ = postJSON(t, s, "/api/query", QueryRequest{
		Predicate: "withindistance", WKT: "POINT (0 0)",
	})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("missing distance status = %d", rec.Code)
	}
}

func TestQueryEndpointErrors(t *testing.T) {
	s := testServer(t, 10)
	rec, _ := postJSON(t, s, "/api/query", QueryRequest{Predicate: "nope", WKT: "POINT (0 0)"})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad predicate status = %d", rec.Code)
	}
	rec, _ = postJSON(t, s, "/api/query", QueryRequest{WKT: "BAD"})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad wkt status = %d", rec.Code)
	}
	rec, _ = postJSON(t, s, "/api/query", QueryRequest{WKT: "POINT (0 0)", HasTime: true, Begin: 9, End: 1})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("inverted interval status = %d", rec.Code)
	}
	// GET not allowed.
	rec2 := httptest.NewRecorder()
	s.ServeHTTP(rec2, httptest.NewRequest(http.MethodGet, "/api/query", nil))
	if rec2.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET status = %d", rec2.Code)
	}
	// Malformed JSON.
	rec3 := httptest.NewRecorder()
	s.ServeHTTP(rec3, httptest.NewRequest(http.MethodPost, "/api/query", strings.NewReader("{")))
	if rec3.Code != http.StatusBadRequest {
		t.Errorf("bad json status = %d", rec3.Code)
	}
}

func TestKNNEndpoint(t *testing.T) {
	s := testServer(t, 200)
	rec, out := postJSON(t, s, "/api/knn", KNNRequest{WKT: "POINT (50 50)", K: 5})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	feats := out["features"].([]interface{})
	if len(feats) != 5 {
		t.Fatalf("features = %d", len(feats))
	}
	// Distances present and ascending.
	prev := -1.0
	for _, f := range feats {
		d := f.(map[string]interface{})["properties"].(map[string]interface{})["distance"].(float64)
		if d < prev {
			t.Fatal("distances not ascending")
		}
		prev = d
	}
	rec, _ = postJSON(t, s, "/api/knn", KNNRequest{WKT: "POINT (0 0)", K: 0})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("k=0 status = %d", rec.Code)
	}
	rec, _ = postJSON(t, s, "/api/knn", KNNRequest{WKT: "JUNK", K: 1})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad wkt status = %d", rec.Code)
	}
}

func TestClusterEndpoint(t *testing.T) {
	s := testServer(t, 300)
	rec, out := postJSON(t, s, "/api/cluster", ClusterRequest{Eps: 5, MinPts: 4})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d body=%s", rec.Code, rec.Body.String())
	}
	if _, ok := out["numClusters"]; !ok {
		t.Error("missing numClusters")
	}
	feats := out["features"].([]interface{})
	if len(feats) != 300 {
		t.Errorf("features = %d", len(feats))
	}
	props := feats[0].(map[string]interface{})["properties"].(map[string]interface{})
	if _, ok := props["cluster"]; !ok {
		t.Error("missing cluster label")
	}
	rec, _ = postJSON(t, s, "/api/cluster", ClusterRequest{Eps: -1, MinPts: 4})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad eps status = %d", rec.Code)
	}
}

func TestStatsEndpoint(t *testing.T) {
	s := testServer(t, 50)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var out map[string]interface{}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if int(out["events"].(float64)) != 50 {
		t.Errorf("events = %v", out["events"])
	}
}

func TestNewRejectsBadWKT(t *testing.T) {
	events := []workload.Event{{ID: 1, WKT: "NOT WKT"}}
	if _, err := New(engine.NewContext(2), events); err == nil {
		t.Error("bad events must fail")
	}
}

func TestGeometryJSONShapes(t *testing.T) {
	pt := geometryJSON(geom.NewPoint(1, 2))
	if pt["type"] != "Point" {
		t.Errorf("point type = %v", pt["type"])
	}
	ls := geometryJSON(geom.MustLineString(geom.NewPoint(0, 0), geom.NewPoint(1, 1)))
	if ls["type"] != "LineString" {
		t.Errorf("ls type = %v", ls["type"])
	}
	poly := geometryJSON(geom.MustPolygon(
		geom.NewPoint(0, 0), geom.NewPoint(1, 0), geom.NewPoint(1, 1)))
	if poly["type"] != "Polygon" {
		t.Errorf("poly type = %v", poly["type"])
	}
	rings := poly["coordinates"].([][][]float64)
	if len(rings) != 1 || len(rings[0]) != 4 {
		t.Errorf("rings = %v", rings)
	}
	mp := geometryJSON(geom.NewMultiPoint([]geom.Point{{X: 0, Y: 0}}))
	if mp["type"] != "MultiPoint" {
		t.Errorf("mp type = %v", mp["type"])
	}
}

// TestQueryEndpointStreamsValidGeoJSON pins the streaming encoder: the
// response must be one well-formed document whose trailing count
// matches the number of streamed features, including the empty-result
// edge (no features at all).
func TestQueryEndpointStreamsValidGeoJSON(t *testing.T) {
	s := testServer(t, 150)
	rec, out := postJSON(t, s, "/api/query", QueryRequest{
		Predicate: "intersects",
		WKT:       "POLYGON ((0 0, 100 0, 100 100, 0 100, 0 0))",
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	feats := out["features"].([]interface{})
	if int(out["count"].(float64)) != len(feats) {
		t.Errorf("count %v != %d streamed features", out["count"], len(feats))
	}
	if out["type"] != "FeatureCollection" {
		t.Errorf("type = %v", out["type"])
	}

	// Empty result: still valid JSON with count 0.
	rec, out = postJSON(t, s, "/api/query", QueryRequest{
		Predicate: "intersects",
		WKT:       "POLYGON ((900 900, 910 900, 910 910, 900 910, 900 900))",
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("empty-result status = %d", rec.Code)
	}
	if int(out["count"].(float64)) != 0 || len(out["features"].([]interface{})) != 0 {
		t.Errorf("empty result rendered as %v", out)
	}
}

func TestExplainEndpoint(t *testing.T) {
	s := testServer(t, 300)
	rec, out := postJSON(t, s, "/api/explain", QueryRequest{
		Predicate: "intersects",
		WKT:       "POLYGON ((10 10, 40 10, 40 40, 10 40, 10 10))",
		HasTime:   true,
		Begin:     0,
		End:       1000,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d body=%s", rec.Code, rec.Body.String())
	}
	text, ok := out["text"].(string)
	if !ok || !strings.Contains(text, "Filter[intersects") {
		t.Errorf("explain text = %q", text)
	}
	for _, want := range []string{"index=", "pruned ", "est_rows=", "act_rows="} {
		if !strings.Contains(text, want) {
			t.Errorf("explain text missing %q:\n%s", want, text)
		}
	}
	node, ok := out["plan"].(map[string]interface{})
	if !ok || node["op"] != "Filter" {
		t.Errorf("plan node = %v", out["plan"])
	}

	// GET is rejected; bad WKT maps to a 400.
	rec2 := httptest.NewRecorder()
	s.ServeHTTP(rec2, httptest.NewRequest(http.MethodGet, "/api/explain", nil))
	if rec2.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET status = %d", rec2.Code)
	}
	rec3, _ := postJSON(t, s, "/api/explain", QueryRequest{WKT: "NOT WKT"})
	if rec3.Code != http.StatusBadRequest {
		t.Errorf("bad WKT status = %d", rec3.Code)
	}
}

func TestStatsComputedOnce(t *testing.T) {
	s := testServer(t, 200)
	launched0 := s.ctx.Metrics().Snapshot().TasksLaunched
	var events float64
	for i := 0; i < 3; i++ {
		req := httptest.NewRequest(http.MethodGet, "/api/stats", nil)
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("status = %d", rec.Code)
		}
		var out map[string]interface{}
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatal(err)
		}
		events = out["events"].(float64)
		if events != 200 {
			t.Errorf("events = %v", events)
		}
		if _, ok := out["planner"].(map[string]interface{}); !ok {
			t.Error("stats response missing planner summary")
		}
	}
	// Serving stats launches no tasks: the count and summary were
	// computed at construction, not per request.
	if launched := s.ctx.Metrics().Snapshot().TasksLaunched; launched != launched0 {
		t.Errorf("stats requests launched %d tasks", launched-launched0)
	}
}
