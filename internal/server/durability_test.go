package server

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"stark/internal/engine"
	"stark/internal/wal"
)

// durableService builds an empty durable service over dir with no
// checkpoint ticker (tests checkpoint explicitly).
func durableService(t *testing.T, dir string) (*Server, *RecoveryInfo) {
	t.Helper()
	ctx := engine.NewContext(2)
	s := NewService(ctx, Options{})
	info, err := s.EnableDurability(dir, 0)
	if err != nil {
		t.Fatalf("EnableDurability: %v", err)
	}
	return s, info
}

// crash simulates a hard failure: the WAL handle closes without a
// final checkpoint, and the server is abandoned.
func crash(t *testing.T, s *Server) {
	t.Helper()
	if s.dur.stopTicker != nil {
		close(s.dur.stopTicker)
		<-s.dur.tickerDone
	}
	if err := s.dur.log.Close(); err != nil {
		t.Fatal(err)
	}
}

// listInfo fetches GET /api/datasets as DatasetInfo records.
func listInfo(t *testing.T, s *Server) map[string]DatasetInfo {
	t.Helper()
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/datasets", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /api/datasets: %d %s", rec.Code, rec.Body)
	}
	var doc struct {
		Datasets []DatasetInfo `json:"datasets"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	out := make(map[string]DatasetInfo, len(doc.Datasets))
	for _, in := range doc.Datasets {
		out[in.Name] = in
	}
	return out
}

func insertLine(id int) string {
	return fmt.Sprintf(`{"op":"insert","id":%d,"category":"live","time":%d,"wkt":"POINT (%d %d)"}`,
		id, id, id%100, (id*3)%100)
}

func TestDurableRoundTripAfterCrash(t *testing.T) {
	dir := t.TempDir()
	s, info := durableService(t, dir)
	if info.Checkpoint != 0 || info.Datasets != 0 {
		t.Fatalf("fresh dir recovered %+v", info)
	}

	// One immutable dataset from a generator spec, one mutable with
	// seed events, both through the public registration path.
	if err := s.Register(DatasetSpec{Name: "ref", N: 300, Seed: 7, Dist: "uniform", Index: "live:8", Partitioner: "grid:4"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Register(DatasetSpec{
		Name: "fleet", Mutable: true, Partitioner: "grid:4",
		Width: 100, Height: 100, Events: seedEvents(0, 20),
	}); err != nil {
		t.Fatal(err)
	}

	// Three acknowledged ingest batches: insert, upsert, delete.
	if rec := ingestNDJSON(t, s, "fleet", insertLine(100)+"\n"+insertLine(101)); rec.Code != http.StatusOK {
		t.Fatalf("ingest: %d %s", rec.Code, rec.Body)
	}
	if rec := ingestNDJSON(t, s, "fleet", `{"op":"upsert","id":100,"category":"moved","time":9,"wkt":"POINT (1 2)"}`); rec.Code != http.StatusOK {
		t.Fatalf("upsert: %d %s", rec.Code, rec.Body)
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodDelete, "/api/v1/datasets/fleet/records/5", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("record delete: %d %s", rec.Code, rec.Body)
	}
	before := listInfo(t, s)
	crash(t, s)

	s2, info2 := durableService(t, dir)
	if info2.Registers != 2 || info2.Batches != 3 {
		t.Fatalf("recovery replayed %+v", info2)
	}
	if !s2.HasDataset("fleet") || s2.HasDataset("nope") {
		t.Fatal("HasDataset after recovery")
	}
	if di, ok := s2.DatasetInfo("fleet"); !ok || di.LiveGeneration != 4 {
		t.Fatalf("DatasetInfo after recovery: %+v ok=%v", di, ok)
	}
	if _, ok := s2.DatasetInfo("nope"); ok {
		t.Fatal("DatasetInfo invented a dataset")
	}
	after := listInfo(t, s2)
	if len(after) != len(before) {
		t.Fatalf("datasets: before %v, after %v", before, after)
	}
	for name, b := range before {
		a := after[name]
		if a.Events != b.Events || a.Mutable != b.Mutable || a.LiveGeneration != b.LiveGeneration ||
			a.Index != b.Index || a.Partitioner != b.Partitioner || a.Generation != b.Generation {
			t.Fatalf("%s: before %+v, after %+v", name, b, a)
		}
	}
	if after["fleet"].LiveGeneration != 4 || after["fleet"].Events != 21 {
		t.Fatalf("fleet recovered as %+v", after["fleet"])
	}

	// The recovered dataset keeps taking (logged) writes.
	if rec := ingestNDJSON(t, s2, "fleet", insertLine(200)); rec.Code != http.StatusOK {
		t.Fatalf("post-recovery ingest: %d %s", rec.Code, rec.Body)
	}
	crash(t, s2)
	s3, _ := durableService(t, dir)
	if got := listInfo(t, s3)["fleet"]; got.LiveGeneration != 5 || got.Events != 22 {
		t.Fatalf("second recovery: %+v", got)
	}
	crash(t, s3)
}

func TestCheckpointTruncatesAndRecovers(t *testing.T) {
	dir := t.TempDir()
	s, _ := durableService(t, dir)
	if err := s.Register(DatasetSpec{Name: "fleet", Mutable: true, Partitioner: "grid:2", Width: 100, Height: 100}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if rec := ingestNDJSON(t, s, "fleet", insertLine(i)); rec.Code != http.StatusOK {
			t.Fatalf("ingest %d: %d %s", i, rec.Code, rec.Body)
		}
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Two more batches land after the checkpoint.
	for i := 5; i < 7; i++ {
		if rec := ingestNDJSON(t, s, "fleet", insertLine(i)); rec.Code != http.StatusOK {
			t.Fatalf("ingest %d: %d %s", i, rec.Code, rec.Body)
		}
	}
	crash(t, s)

	s2, info := durableService(t, dir)
	if info.Checkpoint == 0 || info.Datasets != 1 {
		t.Fatalf("recovery ignored the checkpoint: %+v", info)
	}
	if info.Batches != 2 {
		t.Fatalf("replayed %d batches, want 2 (the post-checkpoint suffix)", info.Batches)
	}
	got := listInfo(t, s2)["fleet"]
	if got.LiveGeneration != 7 || got.Events != 7 {
		t.Fatalf("recovered %+v", got)
	}

	// Graceful shutdown: the final checkpoint makes the next recovery
	// pure restore — zero replay.
	if err := s2.CloseDurability(); err != nil {
		t.Fatal(err)
	}
	s3, info3 := durableService(t, dir)
	if info3.Batches != 0 || info3.Registers != 0 || info3.Datasets != 1 {
		t.Fatalf("post-shutdown recovery still replayed: %+v", info3)
	}
	if got := listInfo(t, s3)["fleet"]; got.LiveGeneration != 7 || got.Events != 7 {
		t.Fatalf("post-shutdown recovery: %+v", got)
	}
	crash(t, s3)
}

func TestDropAndReregisterSurviveRecovery(t *testing.T) {
	dir := t.TempDir()
	s, _ := durableService(t, dir)
	if err := s.Register(DatasetSpec{Name: "a", Mutable: true, Width: 10, Height: 10}); err != nil {
		t.Fatal(err)
	}
	if rec := ingestNDJSON(t, s, "a", insertLine(1)+"\n"+insertLine(2)); rec.Code != http.StatusOK {
		t.Fatalf("ingest: %d %s", rec.Code, rec.Body)
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodDelete, "/api/datasets/a", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("drop: %d %s", rec.Code, rec.Body)
	}
	// Re-register the same name; only the new instance's batch must
	// survive recovery.
	if err := s.Register(DatasetSpec{Name: "a", Mutable: true, Width: 10, Height: 10}); err != nil {
		t.Fatal(err)
	}
	if rec := ingestNDJSON(t, s, "a", insertLine(9)); rec.Code != http.StatusOK {
		t.Fatalf("ingest: %d %s", rec.Code, rec.Body)
	}
	crash(t, s)

	s2, info := durableService(t, dir)
	if info.Drops != 1 || info.Registers != 2 {
		t.Fatalf("recovery: %+v", info)
	}
	// The dropped instance's 2-record batch replays into the first
	// instance and dies with it; only the re-registered instance's
	// single insert survives.
	got := listInfo(t, s2)["a"]
	if got.Events != 1 || got.LiveGeneration != 1 {
		t.Fatalf("re-registered dataset recovered as %+v", got)
	}

	// A stale suffix batch — one tagged with the dropped instance's
	// registration generation — must be skipped, not applied to the
	// replacement. (This shape only occurs when checkpoint truncation
	// leaves an old segment behind, so it is injected directly.)
	entry, ok := s2.catalog.Get("a")
	if !ok {
		t.Fatal("dataset a missing")
	}
	staleID := int64(77)
	stale, err := json.Marshal(batchRecord{
		Dataset:  "a",
		EntryGen: entry.gen - 1,
		Gen:      got.LiveGeneration + 1,
		Ops:      []mutationLine{{Op: "insert", ID: &staleID, WKT: "POINT (1 1)"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	before := s2.dur.recovered.SkippedBatches
	if err := s2.dur.applyRecord(0, wal.Record{Type: walBatch, Payload: stale}); err != nil {
		t.Fatalf("stale batch replay errored: %v", err)
	}
	if s2.dur.recovered.SkippedBatches != before+1 {
		t.Fatal("stale-generation batch was not skipped")
	}
	if got := listInfo(t, s2)["a"]; got.Events != 1 || got.LiveGeneration != 1 {
		t.Fatalf("stale batch mutated the replacement: %+v", got)
	}
	crash(t, s2)
}

// TestRecoveryTruncationBattery is the end-to-end torn-write sweep:
// the WAL is cut at EVERY byte boundary, and recovery must come back
// with exactly the state of the longest complete record prefix —
// never a panic, never a half-applied batch, never a batch past the
// damage. The workload is built so the expected state is a function
// of the prefix length: one register record, then one insert per
// batch, so after r complete records the dataset exists iff r >= 1,
// with liveGen == count == r-1.
func TestRecoveryTruncationBattery(t *testing.T) {
	master := t.TempDir()
	s, _ := durableService(t, master)
	if err := s.Register(DatasetSpec{Name: "fleet", Mutable: true, Partitioner: "grid:2", Width: 100, Height: 100}); err != nil {
		t.Fatal(err)
	}
	const batches = 6
	for i := 0; i < batches; i++ {
		if rec := ingestNDJSON(t, s, "fleet", insertLine(i)); rec.Code != http.StatusOK {
			t.Fatalf("ingest %d: %d %s", i, rec.Code, rec.Body)
		}
	}
	crash(t, s)

	segs, err := filepath.Glob(filepath.Join(master, "wal-*.log"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments %v err %v", segs, err)
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	segName := filepath.Base(segs[0])

	for cut := 0; cut <= len(data); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		// The number of complete records in the prefix, per the WAL's
		// own reader — the ground truth recovery must match.
		complete := 0
		if err := wal.Replay(dir, 0, func(int, wal.Record) error {
			complete++
			return nil
		}); err != nil {
			t.Fatalf("cut %d: Replay: %v", cut, err)
		}
		s2, info := durableService(t, dir)
		got := listInfo(t, s2)
		switch {
		case complete == 0:
			if len(got) != 0 {
				t.Fatalf("cut %d: no complete records but recovered %v", cut, got)
			}
		default:
			want := uint64(complete - 1)
			fl, ok := got["fleet"]
			if !ok {
				t.Fatalf("cut %d: register record complete but dataset missing", cut)
			}
			if fl.LiveGeneration != want || fl.Events != int64(want) {
				t.Fatalf("cut %d (%d complete records): gen=%d events=%d, want %d",
					cut, complete, fl.LiveGeneration, fl.Events, want)
			}
		}
		if info.Batches != max(0, complete-1) {
			t.Fatalf("cut %d: replayed %d batches, want %d", cut, info.Batches, complete-1)
		}
		crash(t, s2)
	}
}

// TestRecoveryBitFlipBattery flips one random bit at every byte
// offset of the WAL: recovery must never panic and must recover a
// clean prefix of the acknowledged history (the CRC turns any
// corruption into a clean stop).
func TestRecoveryBitFlipBattery(t *testing.T) {
	master := t.TempDir()
	s, _ := durableService(t, master)
	if err := s.Register(DatasetSpec{Name: "fleet", Mutable: true, Width: 100, Height: 100}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if rec := ingestNDJSON(t, s, "fleet", insertLine(i)); rec.Code != http.StatusOK {
			t.Fatalf("ingest %d: %d %s", i, rec.Code, rec.Body)
		}
	}
	crash(t, s)

	segs, _ := filepath.Glob(filepath.Join(master, "wal-*.log"))
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	segName := filepath.Base(segs[0])
	rng := rand.New(rand.NewSource(99))

	// Sample offsets across the whole file (every offset would make
	// the test minutes long: each recovery re-stages the catalog).
	for off := 0; off < len(data); off += 1 + rng.Intn(16) {
		mutated := append([]byte(nil), data...)
		mutated[off] ^= byte(1 << rng.Intn(8))
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName), mutated, 0o644); err != nil {
			t.Fatal(err)
		}
		complete := 0
		if err := wal.Replay(dir, 0, func(int, wal.Record) error {
			complete++
			return nil
		}); err != nil {
			t.Fatalf("offset %d: Replay: %v", off, err)
		}
		s2, info := durableService(t, dir)
		got := listInfo(t, s2)
		if complete == 0 && len(got) != 0 {
			t.Fatalf("offset %d: recovered %v from zero valid records", off, got)
		}
		if complete > 0 {
			fl := got["fleet"]
			if fl.LiveGeneration != uint64(complete-1) {
				t.Fatalf("offset %d: gen %d from %d valid records", off, fl.LiveGeneration, complete)
			}
		}
		if info.Batches > 4 {
			t.Fatalf("offset %d: replayed %d batches, wrote only 4", off, info.Batches)
		}
		crash(t, s2)
	}
}

func TestCorruptManifestFallsBackWithoutPanic(t *testing.T) {
	dir := t.TempDir()
	s, _ := durableService(t, dir)
	if err := s.Register(DatasetSpec{Name: "fleet", Mutable: true, Width: 10, Height: 10}); err != nil {
		t.Fatal(err)
	}
	if rec := ingestNDJSON(t, s, "fleet", insertLine(1)); rec.Code != http.StatusOK {
		t.Fatalf("ingest: %d %s", rec.Code, rec.Body)
	}
	if err := s.CloseDurability(); err != nil {
		t.Fatal(err)
	}
	manifests, _ := filepath.Glob(filepath.Join(dir, "manifest-*.ckpt"))
	if len(manifests) == 0 {
		t.Fatal("no manifest written")
	}
	raw, err := os.ReadFile(manifests[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF
	if err := os.WriteFile(manifests[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}
	// The corrupted manifest must be skipped, not trusted; with no
	// older manifest recovery starts from the (truncated) WAL and must
	// still come up serving.
	s2, info := durableService(t, dir)
	if info.Checkpoint != 0 {
		t.Fatalf("corrupt manifest was loaded: %+v", info)
	}
	crash(t, s2)
}

// TestFallbackToPreviousCheckpoint: when the newest manifest rots,
// recovery must degrade to the previous checkpoint plus the longer
// retained WAL suffix — losing nothing — rather than failing or
// coming up empty.
func TestFallbackToPreviousCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s, _ := durableService(t, dir)
	if err := s.Register(DatasetSpec{Name: "fleet", Mutable: true, Partitioner: "grid:2", Width: 100, Height: 100}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if rec := ingestNDJSON(t, s, "fleet", insertLine(i)); rec.Code != http.StatusOK {
			t.Fatalf("ingest %d: %d %s", i, rec.Code, rec.Body)
		}
	}
	if err := s.Checkpoint(); err != nil { // checkpoint 1: liveGen 2
		t.Fatal(err)
	}
	if rec := ingestNDJSON(t, s, "fleet", insertLine(2)); rec.Code != http.StatusOK {
		t.Fatalf("ingest 2: %d %s", rec.Code, rec.Body)
	}
	if err := s.Checkpoint(); err != nil { // checkpoint 2: liveGen 3
		t.Fatal(err)
	}
	if rec := ingestNDJSON(t, s, "fleet", insertLine(3)); rec.Code != http.StatusOK {
		t.Fatalf("ingest 3: %d %s", rec.Code, rec.Body)
	}
	crash(t, s)

	// Rot the newest manifest.
	raw, err := os.ReadFile(manifestPath(dir, 2))
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF
	if err := os.WriteFile(manifestPath(dir, 2), raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, info := durableService(t, dir)
	if info.Checkpoint != 1 {
		t.Fatalf("recovered from checkpoint %d, want fallback to 1 (%+v)", info.Checkpoint, info)
	}
	// The WAL suffix of checkpoint 1 was retained, so batches 3 and 4
	// both replay — the full acknowledged history survives.
	if info.Batches != 2 {
		t.Fatalf("replayed %d batches, want 2: %+v", info.Batches, info)
	}
	got := listInfo(t, s2)["fleet"]
	if got.LiveGeneration != 4 || got.Events != 4 {
		t.Fatalf("recovered %+v, want liveGen=4 events=4", got)
	}
	crash(t, s2)
}

// TestPruneRetainsTwoCheckpoints: after N checkpoints exactly the
// newest two manifests (and their segment files) remain, and the WAL
// keeps the suffix the OLDER retained checkpoint replays from.
func TestPruneRetainsTwoCheckpoints(t *testing.T) {
	dir := t.TempDir()
	s, _ := durableService(t, dir)
	if err := s.Register(DatasetSpec{Name: "fleet", Mutable: true, Width: 10, Height: 10}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if rec := ingestNDJSON(t, s, "fleet", insertLine(i)); rec.Code != http.StatusOK {
			t.Fatalf("ingest %d: %d %s", i, rec.Code, rec.Body)
		}
		if err := s.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	manifests, err := filepath.Glob(filepath.Join(dir, "manifest-*.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(manifests) != 2 {
		t.Fatalf("manifests on disk: %v, want exactly the newest two", manifests)
	}
	for _, m := range manifests {
		if base := filepath.Base(m); base != "manifest-00000002.ckpt" && base != "manifest-00000003.ckpt" {
			t.Fatalf("unexpected retained manifest %s", base)
		}
	}
	segs, err := filepath.Glob(filepath.Join(dir, "ckpt-00000001-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 0 {
		t.Fatalf("segment files of pruned checkpoint 1 remain: %v", segs)
	}
	for _, seq := range []int{2, 3} {
		if rows, _ := filepath.Glob(filepath.Join(dir, fmt.Sprintf("ckpt-%08d-*", seq))); len(rows) == 0 {
			t.Fatalf("retained checkpoint %d has no segment files", seq)
		}
	}
	crash(t, s)
}

// TestCheckpointConcurrentIngestLosesNothing hammers checkpoints
// against concurrent acknowledged ingests, then crashes and recovers:
// every acknowledged batch must be in the recovered state. (This is
// the writer-barrier property: a batch logged to a pre-rotation WAL
// segment must land in the checkpoint snapshot, because truncation
// deletes its log record.)
func TestCheckpointConcurrentIngestLosesNothing(t *testing.T) {
	dir := t.TempDir()
	s, _ := durableService(t, dir)
	if err := s.Register(DatasetSpec{Name: "fleet", Mutable: true, Partitioner: "grid:2", Width: 100, Height: 100}); err != nil {
		t.Fatal(err)
	}

	const workers = 4
	const perWorker = 25
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				id := w*perWorker + i
				rec := httptest.NewRecorder()
				req := httptest.NewRequest(http.MethodPost, "/api/v1/ingest?dataset=fleet", strings.NewReader(insertLine(id)))
				s.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					errs <- fmt.Errorf("worker %d ingest %d: %d %s", w, i, rec.Code, rec.Body)
					return
				}
			}
		}(w)
	}
	ckpts := make(chan struct{})
	go func() {
		defer close(ckpts)
		for i := 0; i < 8; i++ {
			if err := s.Checkpoint(); err != nil {
				errs <- fmt.Errorf("checkpoint %d: %v", i, err)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()
	wg.Wait()
	<-ckpts
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	crash(t, s)

	s2, _ := durableService(t, dir)
	got := listInfo(t, s2)["fleet"]
	const total = workers * perWorker
	if got.Events != total || got.LiveGeneration != total {
		t.Fatalf("recovered events=%d liveGen=%d, acknowledged %d single-insert batches",
			got.Events, got.LiveGeneration, total)
	}
	crash(t, s2)
}

func TestServiceStatsReportDurability(t *testing.T) {
	dir := t.TempDir()
	s, _ := durableService(t, dir)
	if err := s.Register(DatasetSpec{Name: "fleet", Mutable: true, Width: 10, Height: 10}); err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/service", nil))
	var doc struct {
		Durability struct {
			Enabled    bool   `json:"enabled"`
			Dir        string `json:"dir"`
			WALAppends int64  `json:"walAppends"`
		} `json:"durability"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if !doc.Durability.Enabled || doc.Durability.Dir != dir || doc.Durability.WALAppends == 0 {
		t.Fatalf("durability status: %+v body %s", doc.Durability, rec.Body)
	}

	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body := rec.Body.String()
	for _, m := range []string{"stark_wal_appends_total", "stark_wal_bytes_total", "stark_wal_fsync_duration_seconds", "stark_checkpoints_total"} {
		if !strings.Contains(body, m) {
			t.Fatalf("/metrics missing %s", m)
		}
	}
	crash(t, s)

	// Without durability the block reports disabled.
	s2 := NewService(engine.NewContext(1), Options{})
	rec = httptest.NewRecorder()
	s2.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/service", nil))
	if !strings.Contains(rec.Body.String(), `"enabled":false`) {
		t.Fatalf("service stats without durability: %s", rec.Body)
	}
}

func TestPeriodicCheckpointTicker(t *testing.T) {
	dir := t.TempDir()
	ctx := engine.NewContext(2)
	s := NewService(ctx, Options{})
	if _, err := s.EnableDurability(dir, 20*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := s.Register(DatasetSpec{Name: "fleet", Mutable: true, Width: 10, Height: 10}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.dur.checkpoints.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("ticker never checkpointed")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := s.CloseDurability(); err != nil {
		t.Fatal(err)
	}
}
