package server

// The multi-dataset query service endpoints (the /api/v1 and catalog
// surface):
//
//	GET    /api/datasets          list registered datasets
//	POST   /api/datasets          register (build + publish) a dataset
//	GET    /api/datasets/{name}   one dataset's summary
//	DELETE /api/datasets/{name}   drop a dataset
//	POST   /api/v1/query          filter query, streaming NDJSON
//	POST   /api/v1/explain        EXPLAIN with fingerprint/cache state
//	GET    /api/service           cache + admission statistics
//
// /api/v1/query responds with application/x-ndjson: one GeoJSON
// feature per line, pulled straight off the engine's fused partition
// pipelines, followed by a single summary line
//
//	{"summary":{"dataset":...,"count":N,"cache":"hit|miss","fingerprint":...}}
//
// Results are cached under the chain's plan fingerprint: a repeated
// identical query is served from the stored bytes without scheduling
// any engine work (the X-Stark-Cache header says which path served
// the response). Cache misses pass through admission control; hits
// bypass it.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"runtime"
	"strings"
	"time"

	"stark"
	"stark/internal/plan"
	"stark/internal/workload"
)

// DefaultDataset is the catalog name the single-dataset constructor
// and the legacy endpoints use.
const DefaultDataset = "default"

// ServiceQueryRequest is a QueryRequest addressed to a named catalog
// dataset ("" selects DefaultDataset). A non-nil Join turns the
// request into a spatio-temporal join: the (optionally filtered)
// dataset is joined against another catalog dataset and the matching
// pairs stream back as NDJSON.
type ServiceQueryRequest struct {
	Dataset string `json:"dataset"`
	QueryRequest
	Join *JoinSpec `json:"join,omitempty"`
	// Trace requests an execution trace: the summary line gains a
	// "trace" object (plan phases, wall times, per-query engine
	// counters). Traced requests bypass the result cache in both
	// directions, so the trace always describes a real execution.
	Trace bool `json:"trace,omitempty"`
}

// JoinSpec describes the join clause of a service query.
type JoinSpec struct {
	// With names the right-side catalog dataset ("" selects
	// DefaultDataset).
	With string `json:"with"`
	// Predicate is one of intersects (default), contains,
	// containedby, coveredby, withindistance.
	Predicate string `json:"predicate"`
	// Distance parameterises withindistance.
	Distance float64 `json:"distance"`
	// Strategy forces a physical join strategy: auto (default),
	// pairs, broadcast, copartition.
	Strategy string `json:"strategy"`
}

// joinRow is the record type of a service join result.
type joinRow = stark.JoinRow[workload.Event, workload.Event]

// buildJoinOn compiles a JoinSpec into a join chain over the two
// datasets, returning the chain and the report its execution fills.
func buildJoinOn(left *stark.Dataset[workload.Event], right *stark.Dataset[workload.Event], spec *JoinSpec) (*stark.Dataset[joinRow], *stark.JoinReport, error) {
	var (
		pred   stark.Predicate
		expand float64
	)
	switch strings.ToLower(spec.Predicate) {
	case "intersects", "":
		pred = stark.Intersects
	case "contains":
		pred = stark.Contains
	case "containedby":
		pred = stark.ContainedBy
	case "coveredby":
		pred = stark.CoveredBy
	case "withindistance":
		if spec.Distance <= 0 {
			return nil, nil, fmt.Errorf("join withindistance needs distance > 0")
		}
		pred = stark.WithinDistancePredicate(spec.Distance, nil)
		expand = spec.Distance
	default:
		return nil, nil, fmt.Errorf("unknown join predicate %q", spec.Predicate)
	}
	var strategy stark.JoinStrategy
	switch strings.ToLower(spec.Strategy) {
	case "auto", "":
		strategy = stark.JoinAuto
	case "pairs":
		strategy = stark.JoinPairs
	case "broadcast":
		strategy = stark.JoinBroadcast
	case "copartition":
		strategy = stark.JoinCoPartition
	default:
		return nil, nil, fmt.Errorf("unknown join strategy %q", spec.Strategy)
	}
	rep := &stark.JoinReport{}
	ds := stark.Join(left, right, stark.JoinOptions{
		Predicate:      pred,
		IndexOrder:     -1,
		ProbeExpansion: expand,
		Strategy:       strategy,
		Report:         rep,
	})
	return ds, rep, nil
}

// joinChain resolves both sides of a join request and builds the
// chain: the request's filter (when present) applies to the left
// side before the join.
func (s *Server) joinChain(w http.ResponseWriter, req ServiceQueryRequest) (*stark.Dataset[joinRow], *stark.JoinReport, *catalogEntry, bool) {
	entry, ok := s.resolveDataset(w, req.Dataset)
	if !ok {
		return nil, nil, nil, false
	}
	rightEntry, ok := s.resolveDataset(w, req.Join.With)
	if !ok {
		return nil, nil, nil, false
	}
	left := entry.dataset()
	// Apply the request's filter whenever any filter field is set —
	// a constraint the non-join path would reject (temporal window
	// without a geometry) must error here too, not be dropped.
	if req.WKT != "" || req.Predicate != "" || req.HasTime || req.Distance != 0 {
		var err error
		left, err = buildFilterOn(left, req.QueryRequest)
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return nil, nil, nil, false
		}
	}
	chain, rep, err := buildJoinOn(left, rightEntry.dataset(), req.Join)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return nil, nil, nil, false
	}
	return chain, rep, entry, true
}

// acquireAdmission passes the request through the admission-control
// worker pool, writing the overload response (429 saturated / 503
// queue deadline) on failure. On true the caller owns a slot and
// must s.adm.Release() it.
func (s *Server) acquireAdmission(w http.ResponseWriter, r *http.Request) bool {
	err := s.adm.Acquire(r.Context())
	if err == nil {
		return true
	}
	switch {
	case errors.Is(err, ErrQueueFull):
		httpError(w, http.StatusTooManyRequests, "server saturated: %v", err)
	case errors.Is(err, ErrQueueTimeout):
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, "queue deadline exceeded: %v", err)
	default:
		// Client went away while queued; nothing useful to write.
		log.Printf("server: admission aborted: %v", err)
	}
	return false
}

// handleJoinQuery executes the join clause of a service query and
// streams the matching pairs as NDJSON: one GeoJSON feature per line
// (the left record's geometry) with the right record folded into the
// properties. Join results are not result-cached — a join
// materialises a fresh result dataset per request, so its
// fingerprint could never hit. That materialisation also means the
// full pair set lives in memory before the first byte streams
// (unlike the filter path, which streams straight off the fused
// pipelines); admission control bounds how many such requests run
// at once.
func (s *Server) handleJoinQuery(w http.ResponseWriter, r *http.Request, req ServiceQueryRequest) {
	chain, rep, entry, ok := s.joinChain(w, req)
	if !ok {
		return
	}
	if !s.acquireAdmission(w, r) {
		return
	}
	defer s.adm.Release()

	if err := chain.Run(); err != nil {
		httpError(w, http.StatusInternalServerError, "join failed: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Stark-Cache", "bypass")
	var (
		count  int64
		rowErr error
	)
	err := chain.StreamParallelContext(r.Context(), func(kv stark.Tuple[joinRow]) bool {
		f := feature(stark.NewTuple(kv.Key, kv.Value.Left), nil, nil)
		f["properties"].(map[string]interface{})["right"] = map[string]interface{}{
			"id":       kv.Value.Right.ID,
			"category": kv.Value.Right.Category,
			"time":     kv.Value.Right.Time,
		}
		line, err := json.Marshal(f)
		if err != nil {
			rowErr = err
			return false
		}
		line = append(line, '\n')
		if _, err := w.Write(line); err != nil {
			rowErr = err
			return false
		}
		count++
		return true
	})
	if err == nil {
		err = rowErr
	}
	if err != nil {
		log.Printf("server: aborting join NDJSON stream after %d rows: %v", count, err)
		return
	}
	sum := ndjsonSummary{
		Dataset: entry.spec.Name, Count: count, Cache: "bypass",
		Strategy: rep.Strategy.String(),
	}
	trace := chain.Trace()
	annotate(r, "", traceSummary(trace))
	if req.Trace {
		sum.Trace = trace
	}
	writeSummaryLine(w, sum)
}

// resolveDataset returns the catalog entry a service request
// addresses, writing the HTTP error on failure.
func (s *Server) resolveDataset(w http.ResponseWriter, name string) (*catalogEntry, bool) {
	if name == "" {
		name = DefaultDataset
	}
	entry, ok := s.catalog.Get(name)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown dataset %q", name)
		return nil, false
	}
	return entry, true
}

// handleDatasets serves GET (list) and POST (register) on
// /api/datasets.
func (s *Server) handleDatasetsList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]interface{}{"datasets": s.catalog.List()})
}

func (s *Server) handleDatasetsRegister(w http.ResponseWriter, r *http.Request) {
	var spec DatasetSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	entry, err := s.catalog.Register(s.ctx, spec)
	if err != nil {
		httpError(w, http.StatusBadRequest, "register: %v", err)
		return
	}
	writeJSON(w, entry.info())
}

func (s *Server) handleDatasetGet(w http.ResponseWriter, r *http.Request) {
	entry, ok := s.resolveDataset(w, r.PathValue("name"))
	if !ok {
		return
	}
	summary, _ := entry.stats()
	writeJSON(w, map[string]interface{}{
		"dataset": entry.info(),
		"planner": summary,
	})
}

func (s *Server) handleDatasetDrop(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	existed, err := s.catalog.Drop(name)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "drop failed: %v", err)
		return
	}
	if !existed {
		httpError(w, http.StatusNotFound, "unknown dataset %q", name)
		return
	}
	writeJSON(w, map[string]string{"dropped": name})
}

// handleServiceStats reports the cache and admission state plus the
// engine counter totals and Go runtime health — one JSON document a
// probe can poll without scraping /metrics.
func (s *Server) handleServiceStats(w http.ResponseWriter, r *http.Request) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	durability := map[string]interface{}{"enabled": false}
	if s.dur != nil {
		durability = s.dur.status()
	}
	writeJSON(w, map[string]interface{}{
		"durability":   durability,
		"cache":          s.cache.Stats(),
		"admission":      s.adm.Stats(),
		"datasets":       len(s.catalog.List()),
		"engine":         s.ctx.Metrics().Snapshot(),
		"startTime":      s.tel.start.UTC().Format(time.RFC3339),
		"uptimeSeconds":  time.Since(s.tel.start).Seconds(),
		"goroutines":     runtime.NumGoroutine(),
		"heapInuseBytes": ms.HeapInuse,
	})
}

// handleQueryV1 executes a filter query against a named dataset and
// streams the result as NDJSON, serving repeated queries from the
// plan-fingerprint cache.
func (s *Server) handleQueryV1(w http.ResponseWriter, r *http.Request) {
	var req ServiceQueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	if req.Join != nil {
		s.handleJoinQuery(w, r, req)
		return
	}
	entry, ok := s.resolveDataset(w, req.Dataset)
	if !ok {
		return
	}
	chain, err := buildFilterOn(entry.dataset(), req.QueryRequest)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}

	fp, fpErr := chain.Fingerprint()
	if fpErr == nil {
		annotate(r, fp, "")
	}
	if fpErr == nil && !req.Trace {
		if body, rows, hit := s.cache.Get(fp); hit {
			s.writeNDJSON(w, body, ndjsonSummary{
				Dataset: entry.spec.Name, Count: rows, Cache: "hit", Fingerprint: fp,
			})
			return
		}
	}

	if !s.acquireAdmission(w, r) {
		return
	}
	defer s.adm.Release()

	// Compile before committing the response status, so chain and
	// planning errors still map to an HTTP error code.
	if err := chain.Run(); err != nil {
		httpError(w, http.StatusInternalServerError, "query failed: %v", err)
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Stark-Cache", "miss")
	var (
		buf       bytes.Buffer
		cacheable = fpErr == nil && !req.Trace
		count     int64
		rowErr    error
	)
	err = chain.StreamParallelContext(r.Context(), func(kv stark.Tuple[workload.Event]) bool {
		line, err := json.Marshal(feature(kv, nil, nil))
		if err != nil {
			rowErr = err
			return false
		}
		line = append(line, '\n')
		if _, err := w.Write(line); err != nil {
			rowErr = err
			return false
		}
		if cacheable {
			if int64(buf.Len()+len(line)) > s.cache.MaxEntryBytes() {
				cacheable = false
				buf = bytes.Buffer{}
			} else {
				buf.Write(line)
			}
		}
		count++
		return true
	})
	if err == nil {
		err = rowErr
	}
	if err != nil {
		// The status line is committed; an abort can only be reported
		// by logging and leaving the stream without a summary line.
		log.Printf("server: aborting NDJSON stream after %d rows: %v", count, err)
		return
	}
	sum := ndjsonSummary{
		Dataset: entry.spec.Name, Count: count, Cache: "miss", Fingerprint: fp,
	}
	trace := chain.Trace()
	annotate(r, fp, traceSummary(trace))
	if req.Trace {
		sum.Trace = trace
	}
	writeSummaryLine(w, sum)
	if cacheable {
		// buf is dead after this call; Put takes ownership.
		s.cache.Put(fp, buf.Bytes(), count)
	}
}

// traceSummary condenses a trace into the one-line form the
// slow-query log carries.
func traceSummary(t *plan.TraceNode) string {
	if t == nil {
		return ""
	}
	return fmt.Sprintf("wall_ms=%.2f rows=%d elements_scanned=%d index_probes=%d kernel_batches=%d",
		float64(t.WallNS)/1e6, t.Rows,
		t.Counter("elements_scanned"), t.Counter("index_probes"), t.Counter("kernel_batches"))
}

// ndjsonSummary is the trailing line of an NDJSON response.
type ndjsonSummary struct {
	Dataset     string `json:"dataset"`
	Count       int64  `json:"count"`
	Cache       string `json:"cache"`
	Fingerprint string `json:"fingerprint,omitempty"`
	// Strategy is the physical join strategy that ran (join queries
	// only).
	Strategy string `json:"strategy,omitempty"`
	// Trace is the execution trace (requests with "trace": true only).
	Trace *plan.TraceNode `json:"trace,omitempty"`
}

func writeSummaryLine(w io.Writer, sum ndjsonSummary) {
	b, _ := json.Marshal(map[string]ndjsonSummary{"summary": sum})
	_, _ = w.Write(append(b, '\n'))
}

// writeNDJSON serves a cached body plus a fresh summary line.
func (s *Server) writeNDJSON(w http.ResponseWriter, body []byte, sum ndjsonSummary) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Stark-Cache", sum.Cache)
	if _, err := w.Write(body); err != nil {
		log.Printf("server: aborting cached NDJSON stream: %v", err)
		return
	}
	writeSummaryLine(w, sum)
}

// handleExplainV1 renders the plan for a query against a named
// dataset, annotated with its fingerprint and cache state.
func (s *Server) handleExplainV1(w http.ResponseWriter, r *http.Request) {
	var req ServiceQueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	if req.Join != nil {
		chain, rep, entry, ok := s.joinChain(w, req)
		if !ok {
			return
		}
		// Explaining a join executes it (ExplainNode runs the chain
		// for the actual counters) — that work must pass through the
		// same admission gate as the query path, or the explain
		// endpoint becomes an unbounded side door to full joins.
		if !s.acquireAdmission(w, r) {
			return
		}
		defer s.adm.Release()
		node, err := chain.ExplainNode()
		if err != nil {
			httpError(w, http.StatusInternalServerError, "explain failed: %v", err)
			return
		}
		writeJSON(w, map[string]interface{}{
			"dataset":  entry.spec.Name,
			"plan":     node,
			"text":     node.Render(),
			"strategy": rep.Strategy.String(),
			"cache":    "bypass",
		})
		return
	}
	entry, ok := s.resolveDataset(w, req.Dataset)
	if !ok {
		return
	}
	chain, err := buildFilterOn(entry.dataset(), req.QueryRequest)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	fp, fpErr := chain.Fingerprint()
	node, err := chain.ExplainNode()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "explain failed: %v", err)
		return
	}
	resp := map[string]interface{}{
		"dataset": entry.spec.Name,
		"plan":    node,
		"text":    node.Render(),
	}
	if fpErr == nil {
		resp["fingerprint"] = fp
		resp["cached"] = s.cache.Contains(fp)
	} else {
		resp["fingerprintError"] = fpErr.Error()
	}
	writeJSON(w, resp)
}
