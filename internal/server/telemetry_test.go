package server

// Observability tests: per-query metric attribution stays exact under
// concurrency (the tentpole invariant), the /metrics exposition is
// well-formed Prometheus text, the admission-control rejection paths
// feed their counters, and the result cache's byte accounting stays
// consistent through evictions and rejections.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// traceQuery renders the i-th of a family of pairwise-distinct window
// queries, so no two of them can share a plan fingerprint.
func traceQuery(i int) ServiceQueryRequest {
	x := float64(2 + 3*i)
	y := float64(1 + 2*i)
	q := ServiceQueryRequest{
		QueryRequest: QueryRequest{
			Predicate: "intersects",
			WKT: fmt.Sprintf("POLYGON ((%.0f %.0f, %.0f %.0f, %.0f %.0f, %.0f %.0f, %.0f %.0f))",
				x, y, x+40, y, x+40, y+35, x, y+35, x, y),
			HasTime: true,
			Begin:   0,
			End:     1000,
		},
		Trace: true,
	}
	return q
}

// TestTraceAttributionExactUnderConcurrency is the attribution
// regression test: N distinct traced queries run solo on one server,
// then the same N run concurrently on a fresh identical server, and
// every concurrent trace must report exactly the counters its solo
// twin did. If any engine work leaked across job recorders — a shared
// dataset charging the wrong job, a racing partition double-counted —
// the per-query elements_scanned would drift. Run with -race.
func TestTraceAttributionExactUnderConcurrency(t *testing.T) {
	const n = 12

	type observed struct {
		rows     int64
		scanned  int64
		probes   int64
		launched int64
	}
	read := func(t *testing.T, rec *httptest.ResponseRecorder, i int) observed {
		t.Helper()
		if rec.Code != http.StatusOK {
			t.Fatalf("query %d: status %d: %s", i, rec.Code, rec.Body.String())
		}
		_, sum := ndjsonResponse(t, rec.Body.Bytes())
		if sum.Trace == nil {
			t.Fatalf("query %d: summary has no trace", i)
		}
		if sum.Cache == "hit" {
			t.Fatalf("query %d: traced request served from cache", i)
		}
		return observed{
			rows:     sum.Trace.Rows,
			scanned:  sum.Trace.Counter("elements_scanned"),
			launched: sum.Trace.Counter("tasks_launched"),
			probes:   sum.Trace.Counter("index_probes"),
		}
	}

	// Solo baseline: each query alone on its own quiet server.
	solo, _ := testService(t, 3000, Options{})
	var want [n]observed
	for i := 0; i < n; i++ {
		want[i] = read(t, postV1Query(t, solo, traceQuery(i)), i)
		if want[i].scanned == 0 && want[i].rows == 0 {
			t.Fatalf("query %d: solo run scanned nothing and matched nothing — window misses the data", i)
		}
	}

	// The same queries, all in flight at once on a fresh server.
	s, _ := testService(t, 3000, Options{})
	var wg sync.WaitGroup
	var got [n]observed
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					errs <- fmt.Errorf("query %d panicked: %v", i, r)
				}
			}()
			data, err := marshalQuery(traceQuery(i))
			if err != nil {
				errs <- err
				return
			}
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/api/v1/query", bytes.NewReader(data)))
			if rec.Code != http.StatusOK {
				errs <- fmt.Errorf("query %d: status %d: %s", i, rec.Code, rec.Body.String())
				return
			}
			_, sum := ndjsonParse(rec.Body.Bytes())
			if sum == nil || sum.Trace == nil {
				errs <- fmt.Errorf("query %d: missing trace in summary", i)
				return
			}
			got[i] = observed{
				rows:     sum.Trace.Rows,
				scanned:  sum.Trace.Counter("elements_scanned"),
				launched: sum.Trace.Counter("tasks_launched"),
				probes:   sum.Trace.Counter("index_probes"),
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	for i := 0; i < n; i++ {
		if got[i] != want[i] {
			t.Errorf("query %d: concurrent trace %+v != solo trace %+v", i, got[i], want[i])
		}
	}
}

// marshalQuery and ndjsonParse are goroutine-safe versions of the
// test helpers (no *testing.T, so they can run off the test
// goroutine).
func marshalQuery(q ServiceQueryRequest) ([]byte, error) {
	return json.Marshal(q)
}

func ndjsonParse(body []byte) (n int, summary *ndjsonSummary) {
	lines := bytes.Split(bytes.TrimSpace(body), []byte("\n"))
	if len(lines) == 0 {
		return 0, nil
	}
	var wrapped struct {
		Summary *ndjsonSummary `json:"summary"`
	}
	if err := json.Unmarshal(lines[len(lines)-1], &wrapped); err != nil {
		return 0, nil
	}
	return len(lines) - 1, wrapped.Summary
}

var (
	sampleLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9eE.+-]+|NaN)$`)
	helpLine   = regexp.MustCompile(`^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) .+$`)
	typeLine   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram)$`)
)

// TestMetricsExposition drives real traffic through the service and
// then validates GET /metrics line by line: every line is a HELP, a
// TYPE, or a sample; every sample belongs to a declared family; the
// expected families are present; and the route histogram actually
// observed the requests.
func TestMetricsExposition(t *testing.T) {
	s, _ := testService(t, 500, Options{})
	// One miss, one hit, one trace — so cache and engine counters move.
	postV1Query(t, s, windowQuery(""))
	postV1Query(t, s, windowQuery(""))
	postV1Query(t, s, traceQuery(0))

	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") || !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("GET /metrics Content-Type = %q, want text exposition 0.0.4", ct)
	}

	declared := map[string]string{} // family -> type
	samples := map[string]float64{} // full sample key (name+labels) -> value
	sc := bufio.NewScanner(bytes.NewReader(rec.Body.Bytes()))
	var lastFamily string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case helpLine.MatchString(line):
		case typeLine.MatchString(line):
			m := typeLine.FindStringSubmatch(line)
			if m[1] < lastFamily {
				t.Errorf("families out of order: %q after %q", m[1], lastFamily)
			}
			lastFamily = m[1]
			declared[m[1]] = m[2]
		case sampleLine.MatchString(line):
			m := sampleLine.FindStringSubmatch(line)
			base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(m[1], "_bucket"), "_sum"), "_count")
			if _, ok := declared[base]; !ok {
				if _, ok := declared[m[1]]; !ok {
					t.Errorf("sample %q has no preceding # TYPE", line)
				}
			}
			v, err := strconv.ParseFloat(m[3], 64)
			if err != nil {
				t.Errorf("unparseable sample value in %q: %v", line, err)
			}
			samples[m[1]+m[2]] = v
		default:
			t.Errorf("malformed exposition line: %q", line)
		}
	}

	for family, typ := range map[string]string{
		"stark_http_request_duration_seconds": "histogram",
		"stark_http_requests_in_flight":       "gauge",
		"stark_slow_queries_total":            "counter",
		"stark_cache_hits_total":              "counter",
		"stark_cache_misses_total":            "counter",
		"stark_admission_admitted_total":      "counter",
		"stark_engine_elements_scanned_total": "counter",
		"stark_engine_tasks_launched_total":   "counter",
		"stark_uptime_seconds":                "gauge",
		"stark_go_goroutines":                 "gauge",
	} {
		if got := declared[family]; got != typ {
			t.Errorf("family %s: type %q, want %q", family, got, typ)
		}
	}

	if v := samples[`stark_http_request_duration_seconds_count{route="/api/v1/query"}`]; v != 3 {
		t.Errorf("route histogram count = %v, want 3", v)
	}
	if v := samples["stark_cache_hits_total"]; v != 1 {
		t.Errorf("stark_cache_hits_total = %v, want 1", v)
	}
	if v := samples["stark_engine_elements_scanned_total"]; v <= 0 {
		t.Errorf("stark_engine_elements_scanned_total = %v, want > 0", v)
	}
	// In-flight is a point-in-time gauge: nothing runs during the scrape
	// except the scrape itself.
	if v := samples["stark_http_requests_in_flight"]; v != 1 {
		t.Errorf("stark_http_requests_in_flight = %v, want 1 (the scrape)", v)
	}
}

// scrapeCounter fetches one un-labelled sample value off /metrics.
func scrapeCounter(t *testing.T, s *Server, name string) float64 {
	t.Helper()
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	for _, line := range strings.Split(rec.Body.String(), "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("parsing %s sample %q: %v", name, line, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in /metrics", name)
	return 0
}

// TestAdmissionRejectionCounters exercises both rejection paths —
// queue full (429) and queue timeout (503) — and checks each feeds
// its counter in AdmissionStats and the /metrics exposition.
func TestAdmissionRejectionCounters(t *testing.T) {
	s, _ := testService(t, 200, Options{
		MaxConcurrent: 1, QueueDepth: 1, QueueTimeout: 150 * time.Millisecond,
	})

	// Occupy the only engine slot so every query has to queue.
	if err := s.adm.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}

	// First query takes the single waiting slot and eventually times
	// out against the held semaphore: 503.
	type result struct {
		code int
		body string
	}
	waiter := make(chan result, 1)
	go func() {
		data, _ := marshalQuery(windowQuery(""))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/api/v1/query", bytes.NewReader(data)))
		waiter <- result{rec.Code, rec.Body.String()}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.adm.Stats().Waiting == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first query never started waiting for a slot")
		}
		time.Sleep(time.Millisecond)
	}

	// Second query finds the queue full: immediate 429.
	rec := postV1Query(t, s, windowQuery(""))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("queue-full query status = %d, want 429: %s", rec.Code, rec.Body.String())
	}

	r := <-waiter
	if r.code != http.StatusServiceUnavailable {
		t.Fatalf("queued query status = %d, want 503: %s", r.code, r.body)
	}
	s.adm.Release()

	st := s.adm.Stats()
	if st.RejectedFull != 1 {
		t.Errorf("AdmissionStats.RejectedFull = %d, want 1", st.RejectedFull)
	}
	if st.TimedOut != 1 {
		t.Errorf("AdmissionStats.TimedOut = %d, want 1", st.TimedOut)
	}
	if v := scrapeCounter(t, s, "stark_admission_rejected_full_total"); v != 1 {
		t.Errorf("stark_admission_rejected_full_total = %v, want 1", v)
	}
	if v := scrapeCounter(t, s, "stark_admission_timed_out_total"); v != 1 {
		t.Errorf("stark_admission_timed_out_total = %v, want 1", v)
	}

	// The slot freed up: the service recovers.
	if rec := postV1Query(t, s, windowQuery("")); rec.Code != http.StatusOK {
		t.Fatalf("post-recovery query status = %d", rec.Code)
	}
}

// TestCacheEvictionByteAccounting fills a tiny cache past its budget
// and checks the byte accounting: bytes never exceed the budget,
// evictions are counted, surviving entries sum to the reported bytes,
// and an over-per-entry-budget Put is rejected without touching the
// accounting.
func TestCacheEvictionByteAccounting(t *testing.T) {
	c := NewResultCache(1000, 400)

	body := func(n int) []byte { return bytes.Repeat([]byte("x"), n) }
	for i := 0; i < 6; i++ {
		c.Put(fmt.Sprintf("k%d", i), body(300), 1)
	}
	st := c.Stats()
	if st.Bytes > st.MaxBytes {
		t.Errorf("cache over budget: %d > %d bytes", st.Bytes, st.MaxBytes)
	}
	if st.Entries != 3 || st.Bytes != 900 {
		t.Errorf("cache holds %d entries / %d bytes, want 3 / 900", st.Entries, st.Bytes)
	}
	if st.Evictions != 3 {
		t.Errorf("Evictions = %d, want 3", st.Evictions)
	}
	// The survivors are the most recently used: k3, k4, k5.
	for i := 0; i < 3; i++ {
		if c.Contains(fmt.Sprintf("k%d", i)) {
			t.Errorf("k%d survived eviction, want LRU order", i)
		}
	}
	for i := 3; i < 6; i++ {
		if !c.Contains(fmt.Sprintf("k%d", i)) {
			t.Errorf("k%d evicted, want it resident", i)
		}
	}

	// Over the per-entry budget: rejected, accounting untouched.
	before := c.Stats()
	c.Put("huge", body(401), 1)
	after := c.Stats()
	if after.Rejected != before.Rejected+1 {
		t.Errorf("Rejected = %d, want %d", after.Rejected, before.Rejected+1)
	}
	if after.Bytes != before.Bytes || after.Entries != before.Entries {
		t.Errorf("rejected Put changed accounting: %+v -> %+v", before, after)
	}
	if c.Contains("huge") {
		t.Error("over-budget entry was admitted")
	}

	// Replacing a key in place adjusts bytes by the size delta.
	c.Put("k5", body(100), 1)
	if st := c.Stats(); st.Bytes != 700 {
		t.Errorf("after in-place replace: %d bytes, want 700", st.Bytes)
	}
}
