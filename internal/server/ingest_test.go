package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"stark"
	"stark/internal/engine"
	"stark/internal/live"
	"stark/internal/workload"
)

// mutableService builds a service whose "default" dataset is mutable
// (grid layout over roughly [0,100]², seeded with n point events at
// (i mod 100, i mod 100) and time i mod 1000).
func mutableService(t *testing.T, n int, opts Options) (*Server, *stark.Context) {
	t.Helper()
	ctx := engine.NewContext(4)
	s := NewService(ctx, opts)
	spec := DatasetSpec{
		Name:        DefaultDataset,
		Mutable:     true,
		Partitioner: "grid:4",
		Width:       100,
		Height:      100,
		Events:      seedEvents(0, n),
	}
	if _, err := s.catalog.Register(ctx, spec); err != nil {
		t.Fatal(err)
	}
	return s, ctx
}

// seedEvents generates n inline point events with IDs [base, base+n).
func seedEvents(base, n int) []EventSpec {
	evs := make([]EventSpec, n)
	for i := range evs {
		id := base + i
		evs[i] = EventSpec{
			ID:       id,
			Category: "seed",
			Time:     int64(id % 1000),
			WKT:      fmt.Sprintf("POINT (%d %d)", id%100, (id*7)%100),
		}
	}
	return evs
}

func ingestNDJSON(t *testing.T, s *Server, dataset, body string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/api/v1/ingest?dataset="+dataset, strings.NewReader(body))
	s.ServeHTTP(rec, req)
	return rec
}

// allQuery matches every seeded/ingested event: full spatial window,
// covering time window (generated events always carry an instant, so
// a time window is required to match at all).
func allQuery(dataset string) ServiceQueryRequest {
	return ServiceQueryRequest{
		Dataset: dataset,
		QueryRequest: QueryRequest{
			Predicate: "intersects",
			WKT:       "POLYGON ((0 0, 100 0, 100 100, 0 100, 0 0))",
			HasTime:   true,
			Begin:     0,
			End:       1_000_000,
		},
	}
}

func TestIngestRoundTrip(t *testing.T) {
	s, _ := mutableService(t, 50, Options{})

	// One batch: 10 inserts, 5 upserts of seeds, 5 deletes of seeds.
	var b strings.Builder
	for i := 100; i < 110; i++ {
		fmt.Fprintf(&b, `{"op":"insert","id":%d,"category":"new","time":%d,"wkt":"POINT (%d %d)"}`+"\n", i, i, i%100, i%100)
	}
	for i := 0; i < 5; i++ {
		fmt.Fprintf(&b, `{"op":"upsert","id":%d,"category":"moved","time":%d,"wkt":"POINT (%d %d)"}`+"\n", i, i, (i+50)%100, (i+50)%100)
	}
	for i := 5; i < 10; i++ {
		fmt.Fprintf(&b, `{"op":"delete","id":%d}`+"\n", i)
	}
	rec := ingestNDJSON(t, s, "", b.String())
	if rec.Code != http.StatusOK {
		t.Fatalf("ingest status = %d: %s", rec.Code, rec.Body.String())
	}
	var resp struct {
		Dataset    string `json:"dataset"`
		Generation uint64 `json:"generation"`
		Inserted   int    `json:"inserted"`
		Replaced   int    `json:"replaced"`
		Deleted    int    `json:"deleted"`
		Missing    int    `json:"missing"`
		Count      int64  `json:"count"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Generation != 2 { // seed batch was generation 1
		t.Errorf("generation = %d, want 2", resp.Generation)
	}
	if resp.Inserted != 10 || resp.Replaced != 5 || resp.Deleted != 5 || resp.Missing != 0 {
		t.Errorf("batch result = %+v", resp)
	}
	if resp.Count != 55 { // 50 seeds + 10 inserts - 5 deletes
		t.Errorf("count = %d, want 55", resp.Count)
	}

	qrec := postV1Query(t, s, allQuery(""))
	if qrec.Code != http.StatusOK {
		t.Fatalf("query status = %d: %s", qrec.Code, qrec.Body.String())
	}
	features, sum := ndjsonResponse(t, qrec.Body.Bytes())
	if sum.Count != 55 || len(features) != 55 {
		t.Errorf("query after ingest returned %d rows (summary %d), want 55", len(features), sum.Count)
	}
}

func TestIngestRejectsAndLimits(t *testing.T) {
	s, _ := mutableService(t, 10, Options{})
	entry, _ := s.catalog.Get(DefaultDataset)
	genBefore := entry.mds.Generation()

	for name, tc := range map[string]struct {
		body string
		code int
	}{
		"malformed JSON":      {`{"op":"insert","id":1`, http.StatusBadRequest},
		"missing id":          {`{"op":"insert","wkt":"POINT (1 1)"}`, http.StatusBadRequest},
		"bad wkt":             {`{"op":"insert","id":99,"wkt":"POINT (a b)"}`, http.StatusBadRequest},
		"unknown op":          {`{"op":"replace","id":99,"wkt":"POINT (1 1)"}`, http.StatusBadRequest},
		"insert of live id":   {`{"op":"insert","id":0,"wkt":"POINT (1 1)"}`, http.StatusBadRequest},
		"duplicate in batch":  {"{\"id\":70,\"wkt\":\"POINT (1 1)\"}\n{\"id\":70,\"wkt\":\"POINT (2 2)\"}", http.StatusBadRequest},
		"delete with payload": {`{"op":"delete","id":0,"wkt":"POINT (1 1)"}`, http.StatusBadRequest},
		"empty batch":         {"\n\n", http.StatusBadRequest},
		"oversized line":      {`{"op":"insert","id":99,"category":"` + strings.Repeat("x", maxIngestLineBytes) + `"}`, http.StatusRequestEntityTooLarge},
	} {
		rec := ingestNDJSON(t, s, "", tc.body)
		if rec.Code != tc.code {
			t.Errorf("%s: status = %d, want %d (%s)", name, rec.Code, tc.code, rec.Body.String())
		}
	}
	if g := entry.mds.Generation(); g != genBefore {
		t.Errorf("rejected batches advanced the generation: %d -> %d", genBefore, g)
	}

	rec := ingestNDJSON(t, s, "nope", `{"id":1,"wkt":"POINT (1 1)"}`)
	if rec.Code != http.StatusNotFound {
		t.Errorf("unknown dataset: status = %d, want 404", rec.Code)
	}

	// An immutable dataset rejects ingestion with 409.
	events := workload.Events(workload.Config{N: 20, Seed: 3, Width: 100, Height: 100})
	if err := s.catalog.RegisterEvents(s.ctx, DatasetSpec{Name: "frozen"}, events); err != nil {
		t.Fatal(err)
	}
	rec = ingestNDJSON(t, s, "frozen", `{"id":1,"wkt":"POINT (1 1)"}`)
	if rec.Code != http.StatusConflict {
		t.Errorf("immutable dataset: status = %d, want 409 (%s)", rec.Code, rec.Body.String())
	}

	// "persistent" index recipes cannot back a mutable dataset.
	if _, err := s.catalog.Register(s.ctx, DatasetSpec{Name: "bad", Mutable: true, Index: "persistent:8"}); err == nil {
		t.Error("mutable registration with persistent index did not error")
	}
}

func TestRecordDeleteEndpoint(t *testing.T) {
	s, _ := mutableService(t, 10, Options{})
	del := func(dataset, id string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest(http.MethodDelete, "/api/v1/datasets/"+dataset+"/records/"+id, nil))
		return rec
	}
	rec := del("default", "3")
	if rec.Code != http.StatusOK {
		t.Fatalf("delete status = %d: %s", rec.Code, rec.Body.String())
	}
	var resp struct {
		Deleted int   `json:"deleted"`
		Count   int64 `json:"count"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Deleted != 1 || resp.Count != 9 {
		t.Errorf("delete response = %+v", resp)
	}
	if rec = del("default", "3"); rec.Code != http.StatusNotFound {
		t.Errorf("double delete: status = %d, want 404", rec.Code)
	}
	if rec = del("default", "x"); rec.Code != http.StatusBadRequest {
		t.Errorf("bad id: status = %d, want 400", rec.Code)
	}
}

// TestStatsReflectMutations is the stale-summary regression gate:
// /api/stats and the catalog listing must track ingestion instead of
// reporting registration-time values forever.
func TestStatsReflectMutations(t *testing.T) {
	s, _ := mutableService(t, 30, Options{})
	getStats := func() (events float64, planner map[string]interface{}) {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/stats", nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("stats status = %d", rec.Code)
		}
		var body map[string]interface{}
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatal(err)
		}
		return body["events"].(float64), body["planner"].(map[string]interface{})
	}

	events, _ := getStats()
	if events != 30 {
		t.Fatalf("events before ingest = %v, want 30", events)
	}

	var b strings.Builder
	for i := 100; i < 120; i++ {
		fmt.Fprintf(&b, `{"id":%d,"time":1,"wkt":"POINT (%d %d)"}`+"\n", i, i%100, i%100)
	}
	fmt.Fprintf(&b, `{"op":"delete","id":0}`+"\n")
	if rec := ingestNDJSON(t, s, "", b.String()); rec.Code != http.StatusOK {
		t.Fatalf("ingest failed: %s", rec.Body.String())
	}

	events, planner := getStats()
	if events != 49 { // 30 + 20 - 1
		t.Errorf("events after ingest = %v, want 49", events)
	}
	if cnt := planner["count"].(float64); cnt != 49 {
		t.Errorf("planner count after ingest = %v, want 49", cnt)
	}

	// The catalog listing carries the live generation too.
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/datasets/default", nil))
	var body struct {
		Dataset DatasetInfo `json:"dataset"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if !body.Dataset.Mutable || body.Dataset.LiveGeneration != 2 || body.Dataset.Events != 49 {
		t.Errorf("dataset info = %+v, want mutable gen=2 events=49", body.Dataset)
	}
}

// TestIngestInvalidatesResultCache is the no-stale-hits acceptance
// gate: a cached result must be served only while the generation that
// produced it is current — hit before the batch, miss (with the fresh
// row count) right after, hit again on the new generation.
func TestIngestInvalidatesResultCache(t *testing.T) {
	s, _ := mutableService(t, 40, Options{})
	q := allQuery("")

	run := func(wantCache string, wantCount int64) {
		t.Helper()
		rec := postV1Query(t, s, q)
		if rec.Code != http.StatusOK {
			t.Fatalf("query status = %d: %s", rec.Code, rec.Body.String())
		}
		_, sum := ndjsonResponse(t, rec.Body.Bytes())
		if sum.Cache != wantCache || rec.Header().Get("X-Stark-Cache") != wantCache {
			t.Fatalf("cache = %q (header %q), want %q", sum.Cache, rec.Header().Get("X-Stark-Cache"), wantCache)
		}
		if sum.Count != wantCount {
			t.Fatalf("count = %d on a %s, want %d (stale result served)", sum.Count, wantCache, wantCount)
		}
	}

	run("miss", 40)
	run("hit", 40)

	if rec := ingestNDJSON(t, s, "", `{"id":500,"time":1,"wkt":"POINT (50 50)"}`); rec.Code != http.StatusOK {
		t.Fatalf("ingest failed: %s", rec.Body.String())
	}

	run("miss", 41) // the old fingerprint died with its generation
	run("hit", 41)

	stats := s.CacheStats()
	if stats.Hits != 2 || stats.Misses != 2 {
		t.Errorf("cache stats = %+v, want 2 hits / 2 misses", stats)
	}
}

// TestIngestQueryHammer runs concurrent ingest batches, batch
// deletes, queries, EXPLAINs and stats reads against one mutable
// dataset. The writer keeps the live count a multiple of batchSize at
// every published generation (whole batches are inserted and deleted
// atomically), so any NDJSON response whose count is not a multiple
// of batchSize proves a torn read. Run under -race.
func TestIngestQueryHammer(t *testing.T) {
	const (
		batches   = 40
		batchSize = 10
	)
	s, _ := mutableService(t, 0, Options{})
	q := allQuery("")

	var (
		writerDone atomic.Bool
		wg         sync.WaitGroup
		mu         sync.Mutex
		firstErr   error
	)
	fail := func(format string, args ...interface{}) {
		mu.Lock()
		if firstErr == nil {
			firstErr = fmt.Errorf(format, args...)
		}
		mu.Unlock()
	}

	// Writer: insert batch k, then delete batch k-2 — both as whole
	// atomic requests, so every generation's count is a multiple of
	// batchSize.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer writerDone.Store(true)
		for k := 0; k < batches; k++ {
			var b strings.Builder
			for i := 0; i < batchSize; i++ {
				id := k*batchSize + i
				fmt.Fprintf(&b, `{"op":"insert","id":%d,"time":%d,"wkt":"POINT (%d %d)"}`+"\n", id, id%1000, id%100, (id*3)%100)
			}
			if rec := ingestNDJSON(t, s, "", b.String()); rec.Code != http.StatusOK {
				fail("insert batch %d: status %d: %s", k, rec.Code, rec.Body.String())
				return
			}
			if k >= 2 {
				var d strings.Builder
				for i := 0; i < batchSize; i++ {
					fmt.Fprintf(&d, `{"op":"delete","id":%d}`+"\n", (k-2)*batchSize+i)
				}
				if rec := ingestNDJSON(t, s, "", d.String()); rec.Code != http.StatusOK {
					fail("delete batch %d: status %d: %s", k-2, rec.Code, rec.Body.String())
					return
				}
			}
		}
	}()

	// Readers: snapshot isolation means every observed count is a
	// multiple of batchSize, no matter how the batches interleave.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !writerDone.Load() {
				rec := postV1Query(t, s, q)
				if rec.Code != http.StatusOK {
					fail("query status %d: %s", rec.Code, rec.Body.String())
					return
				}
				_, sum := ndjsonResponse(t, rec.Body.Bytes())
				if sum.Count%batchSize != 0 {
					fail("query count %d is not a multiple of %d: torn snapshot", sum.Count, batchSize)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		body, _ := json.Marshal(q)
		for !writerDone.Load() {
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/api/v1/explain", strings.NewReader(string(body))))
			if rec.Code != http.StatusOK {
				fail("explain status %d: %s", rec.Code, rec.Body.String())
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !writerDone.Load() {
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/stats", nil))
			if rec.Code != http.StatusOK {
				fail("stats status %d", rec.Code)
				return
			}
		}
	}()
	wg.Wait()
	if firstErr != nil {
		t.Fatal(firstErr)
	}

	// Differential gate: the survivors (the last two batches) must
	// match an immutable dataset rebuilt from scratch over the same
	// records.
	rec := postV1Query(t, s, q)
	features, sum := ndjsonResponse(t, rec.Body.Bytes())
	if sum.Count != 2*batchSize {
		t.Fatalf("final count = %d, want %d", sum.Count, 2*batchSize)
	}
	gotIDs := make(map[int]bool, len(features))
	for _, f := range features {
		gotIDs[int(f["properties"].(map[string]interface{})["id"].(float64))] = true
	}
	survivors := seedEventsRange((batches-2)*batchSize, batches*batchSize)
	if err := s.catalog.RegisterEvents(s.ctx, DatasetSpec{Name: "rebuilt", Partitioner: "grid:4"}, survivors); err != nil {
		t.Fatal(err)
	}
	rq := allQuery("rebuilt")
	rec = postV1Query(t, s, rq)
	rebuilt, rsum := ndjsonResponse(t, rec.Body.Bytes())
	if rsum.Count != sum.Count {
		t.Fatalf("mutated dataset matched %d, rebuilt-from-scratch %d", sum.Count, rsum.Count)
	}
	for _, f := range rebuilt {
		id := int(f["properties"].(map[string]interface{})["id"].(float64))
		if !gotIDs[id] {
			t.Fatalf("rebuilt dataset matched id %d the mutated one did not", id)
		}
	}
}

// seedEventsRange rebuilds the hammer writer's records for [lo, hi) —
// same geometry formula, so the differential rebuild sees identical
// data.
func seedEventsRange(lo, hi int) []workload.Event {
	evs := make([]workload.Event, 0, hi-lo)
	for id := lo; id < hi; id++ {
		evs = append(evs, workload.Event{
			ID:   id,
			Time: int64(id % 1000),
			WKT:  fmt.Sprintf("POINT (%d %d)", id%100, (id*3)%100),
		})
	}
	return evs
}

// FuzzDecodeMutation holds the ingest decoder to its contract: never
// panic on arbitrary input, and never emit a malformed op — a nil
// error means a well-formed kind, and a non-delete op carries a
// non-empty geometry.
func FuzzDecodeMutation(f *testing.F) {
	f.Add([]byte(`{"op":"insert","id":1,"category":"a","time":5,"wkt":"POINT (1 2)"}`))
	f.Add([]byte(`{"op":"upsert","id":-9223372036854775808,"wkt":"POINT (0 0)"}`))
	f.Add([]byte(`{"id":7,"wkt":"LINESTRING (0 0, 1 1)"}`))
	f.Add([]byte(`{"op":"delete","id":42}`))
	f.Add([]byte(`{"op":"replace","id":1}`))
	f.Add([]byte(`{"id":1,"wkt":"POLYGON (("}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	f.Add([]byte(`{"id":1e400}`))
	f.Add([]byte(`{"id":1,"wkt":"POINT (1 2)","extra":true}`))
	f.Fuzz(func(t *testing.T, line []byte) {
		op, err := decodeMutation(line)
		if err != nil {
			return
		}
		switch op.Kind {
		case live.OpDelete:
		case live.OpInsert, live.OpUpsert:
			if op.Rec.Key.IsEmpty() {
				t.Fatalf("decoded %s with empty geometry from %q", op.Kind, line)
			}
		default:
			t.Fatalf("decoded unknown op kind %d from %q", op.Kind, line)
		}
	})
}
