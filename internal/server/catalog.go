package server

// The dataset catalog turns the server from a single-dataset demo
// into a multi-tenant query service: named datasets are registered,
// listed and dropped over HTTP (or preloaded by cmd/starkd), each
// carrying its own staged data, planner statistics, index mode and
// partitioner recipe. Registration builds the dataset outside the
// catalog lock, so queries against other datasets keep flowing while
// a new one stages; the swap under the write lock is the only
// serialisation point. Queries that already hold an entry keep using
// it after a drop or re-register — entries are immutable once
// published, so there are no torn reads, and the result cache
// invalidates by construction because a re-registered dataset carries
// a fresh engine generation (see stark.Dataset.Fingerprint).

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"stark"
	"stark/internal/workload"
)

// DatasetSpec describes how to build a catalog dataset: either a
// seeded generator configuration (N > 0) or inline events, plus the
// physical layout (partitioner recipe and index mode).
type DatasetSpec struct {
	Name string `json:"name"`
	// Generator configuration, used when Events is empty.
	N         int     `json:"n,omitempty"`
	Seed      int64   `json:"seed,omitempty"`
	Dist      string  `json:"dist,omitempty"` // uniform|skewed|diagonal
	Width     float64 `json:"width,omitempty"`
	Height    float64 `json:"height,omitempty"`
	TimeRange int64   `json:"timeRange,omitempty"`
	// Events, when non-empty, is the inline payload (small datasets,
	// tests) and takes precedence over the generator.
	Events []EventSpec `json:"events,omitempty"`
	// Index is the index mode recipe: "none" (default), "live[:order]"
	// or "persistent[:order]".
	Index string `json:"index,omitempty"`
	// Partitioner is the partitioner recipe: "" (no spatial
	// partitioning), "grid:ppd", "bsp:maxCost" or "voronoi:seeds".
	Partitioner string `json:"partitioner,omitempty"`
	// Mutable registers a live dataset that accepts mutation batches
	// after registration (POST /api/v1/ingest). A mutable dataset may
	// start empty (N == 0, no events); any generator or inline events
	// become its first insert batch. The "persistent" index recipe is
	// rejected — bulk-loaded STR trees are immutable.
	Mutable bool `json:"mutable,omitempty"`
	// Columnar builds the Hilbert-sorted columnar scan sidecar: at
	// staging time for immutable datasets, lazily per snapshot
	// generation for mutable ones (the first query after each ingest
	// batch pays the rebuild).
	Columnar bool `json:"columnar,omitempty"`
}

// EventSpec is one inline event of a registration request.
type EventSpec struct {
	ID       int    `json:"id"`
	Category string `json:"category"`
	Time     int64  `json:"time"`
	WKT      string `json:"wkt"`
}

// DatasetInfo is the public summary of a catalog entry.
type DatasetInfo struct {
	Name        string `json:"name"`
	Events      int64  `json:"events"`
	Partitions  int    `json:"partitions"`
	Generation  int64  `json:"generation"`
	Index       string `json:"index"`
	Partitioner string `json:"partitioner"`
	// Mutable marks a live dataset; LiveGeneration is its latest
	// published mutation generation (0 = no batch applied yet).
	Mutable        bool   `json:"mutable,omitempty"`
	LiveGeneration uint64 `json:"liveGeneration,omitempty"`
	// Columnar marks entries carrying the columnar scan sidecar.
	Columnar bool `json:"columnar,omitempty"`
}

// catalogEntry is one published dataset. The identity of an entry is
// immutable after Register returns it — a re-registration publishes a
// new entry value, never mutates an old one — but a mutable entry's
// dataset accepts ingest batches, so its summary is recomputed lazily
// off the live generation rather than frozen at registration.
type catalogEntry struct {
	spec    DatasetSpec
	ds      *stark.Dataset[workload.Event]        // immutable entries
	mds     *stark.MutableDataset[workload.Event] // mutable entries
	events  int64
	summary *stark.DatasetStats
	gen     int64

	// sumMu guards the lazy summary cache of a mutable entry.
	sumMu     sync.Mutex
	sumGen    uint64
	sumCached *stark.DatasetStats
	sumEvents int64

	// colMu guards the per-generation columnar view of a mutable
	// columnar entry (immutable columnar entries bake the sidecar into
	// ds at staging time).
	colMu  sync.Mutex
	colGen uint64
	colDS  *stark.Dataset[workload.Event]
}

// dataset returns the queryable view of the entry: the staged dataset
// for immutable entries, the latest snapshot (pinned generation) for
// mutable ones. Snapshots of an unchanged generation are shared, so
// repeated queries keep identical plan fingerprints and the result
// cache keeps hitting until a mutation batch lands.
func (e *catalogEntry) dataset() *stark.Dataset[workload.Event] {
	if e.mds != nil {
		if e.spec.Columnar {
			return e.columnarSnapshot()
		}
		return e.mds.Snapshot()
	}
	return e.ds
}

// columnarSnapshot returns the latest snapshot with the columnar hint
// chained on, memoised per live generation: within a generation every
// query shares one view (so the sidecar is built once, lazily at the
// first action), and a mutation batch invalidates it by moving the
// generation.
func (e *catalogEntry) columnarSnapshot() *stark.Dataset[workload.Event] {
	e.colMu.Lock()
	defer e.colMu.Unlock()
	// Read the generation before taking the snapshot: if a batch lands
	// in between, a newer view is cached under an older label and the
	// next call refreshes again — never a stale view under a newer
	// generation (same discipline as the stats cache below).
	g := e.mds.Generation()
	if e.colDS == nil || g != e.colGen {
		e.colDS = e.mds.Snapshot().Columnar()
		e.colGen = g
	}
	return e.colDS
}

// stats returns the planner summary and the event count. Immutable
// entries answer from the values computed at registration; mutable
// entries recompute lazily when the live generation has moved — the
// incrementally maintained summary makes that a copy, not a rescan —
// so /api/stats and the catalog listing always reflect mutations.
func (e *catalogEntry) stats() (*stark.DatasetStats, int64) {
	if e.mds == nil {
		return e.summary, e.events
	}
	e.sumMu.Lock()
	defer e.sumMu.Unlock()
	// Read the generation before the summary: if a batch lands in
	// between, a newer summary is cached under an older label and the
	// next call refreshes again — never the other way around, so a
	// stale summary is never pinned under a newer generation.
	if g := e.mds.Generation(); e.sumCached == nil || g != e.sumGen {
		e.sumCached = e.mds.Stats()
		e.sumEvents = e.mds.Count()
		e.sumGen = g
	}
	return e.sumCached, e.sumEvents
}

func (e *catalogEntry) info() DatasetInfo {
	idx := e.spec.Index
	if idx == "" {
		idx = "none"
	}
	sum, events := e.stats()
	info := DatasetInfo{
		Name:        e.spec.Name,
		Events:      events,
		Partitions:  len(sum.Parts),
		Generation:  e.gen,
		Index:       idx,
		Partitioner: e.spec.Partitioner,
	}
	if e.mds != nil {
		info.Mutable = true
		info.LiveGeneration = e.mds.Generation()
	}
	info.Columnar = e.spec.Columnar
	return info
}

// Catalog is the concurrent registry of named datasets.
type Catalog struct {
	mu      sync.RWMutex
	entries map[string]*catalogEntry
	gen     int64 // registration counter, monotonic under mu

	// dur, when set, write-ahead-logs every catalog mutation and every
	// ingest batch before it becomes visible. Set once at boot (before
	// any registration) by Server.EnableDurability.
	dur *Durability
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{entries: make(map[string]*catalogEntry)}
}

// Get returns the published entry for name.
func (c *Catalog) Get(name string) (*catalogEntry, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.entries[name]
	return e, ok
}

// List returns the summaries of all entries, sorted by name.
func (c *Catalog) List() []DatasetInfo {
	c.mu.RLock()
	infos := make([]DatasetInfo, 0, len(c.entries))
	for _, e := range c.entries {
		infos = append(infos, e.info())
	}
	c.mu.RUnlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos
}

// Drop removes name from the catalog, reporting whether it existed.
// In-flight queries holding the entry finish against it undisturbed.
// Under durability the drop is write-ahead-logged and fsync'd before
// the entry disappears; a logging failure leaves the catalog
// unchanged, so a drop the client saw acknowledged can never
// resurrect on restart.
func (c *Catalog) Drop(name string) (bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[name]; !ok {
		return false, nil
	}
	if c.dur != nil {
		if err := c.dur.logDrop(name); err != nil {
			return true, fmt.Errorf("logging drop of %q: %w", name, err)
		}
	}
	delete(c.entries, name)
	return true, nil
}

// Register builds the dataset described by spec and publishes it
// under spec.Name, replacing any previous registration. The build
// (staging, shuffle, index, statistics) runs outside the catalog
// lock.
func (c *Catalog) Register(ctx *stark.Context, spec DatasetSpec) (*catalogEntry, error) {
	// A mutable dataset may start empty — its payload arrives through
	// POST /api/v1/ingest; anything the spec does provide becomes the
	// seed batch.
	if spec.Mutable && spec.N <= 0 && len(spec.Events) == 0 {
		return c.register(ctx, spec, nil, false)
	}
	events, err := spec.buildEvents()
	if err != nil {
		return nil, err
	}
	return c.register(ctx, spec, events, false)
}

// RegisterEvents is Register with an already-materialised payload —
// the programmatic preload path, which skips the generator.
func (c *Catalog) RegisterEvents(ctx *stark.Context, spec DatasetSpec, events []workload.Event) error {
	_, err := c.register(ctx, spec, events, true)
	return err
}

// register builds and publishes at the next catalog generation.
// inline marks events as pre-materialised by the caller (not
// derivable from spec) — under durability such payloads are embedded
// into the logged spec so recovery can rebuild the dataset.
func (c *Catalog) register(ctx *stark.Context, spec DatasetSpec, events []workload.Event, inline bool) (*catalogEntry, error) {
	return c.registerAt(ctx, spec, events, inline, 0)
}

// registerReplayed re-registers a dataset from a WAL register record
// during recovery, publishing at the recorded catalog generation. The
// spec is self-contained by construction (logRegister embeds inline
// payloads), so the rebuild is deterministic.
func (c *Catalog) registerReplayed(ctx *stark.Context, spec DatasetSpec, gen int64) error {
	if spec.Mutable && spec.N <= 0 && len(spec.Events) == 0 {
		_, err := c.registerAt(ctx, spec, nil, false, gen)
		return err
	}
	events, err := spec.buildEvents()
	if err != nil {
		return err
	}
	_, err = c.registerAt(ctx, spec, events, false, gen)
	return err
}

// registerAt is the shared registration body. gen > 0 forces the
// published catalog generation (recovery replay and checkpoint
// restore keep the recovered history's numbering); gen == 0 takes the
// next one. Under durability a live (non-replayed) registration is
// write-ahead-logged and fsync'd inside the lock, before the entry
// becomes visible — a registration the client saw acknowledged
// survives any crash after this returns.
func (c *Catalog) registerAt(ctx *stark.Context, spec DatasetSpec, events []workload.Event, inline bool, gen int64) (*catalogEntry, error) {
	if strings.TrimSpace(spec.Name) == "" {
		return nil, fmt.Errorf("dataset name must not be empty")
	}
	// Under durability an inline payload must ride along in the spec:
	// it is the only way recovery can rebuild the dataset. Embed it
	// before the entry is built so checkpoint manifests (which persist
	// e.spec) are self-contained too.
	c.mu.RLock()
	dur := c.dur
	c.mu.RUnlock()
	if dur != nil && inline && len(events) > 0 && len(spec.Events) == 0 {
		spec.Events = make([]EventSpec, len(events))
		for i, ev := range events {
			spec.Events[i] = EventSpec{ID: ev.ID, Category: ev.Category, Time: ev.Time, WKT: ev.WKT}
		}
	}
	var e *catalogEntry
	if spec.Mutable {
		mds, err := stageMutable(ctx, events, spec)
		if err != nil {
			return nil, err
		}
		e = &catalogEntry{spec: spec, mds: mds}
	} else {
		ds, err := stageDataset(ctx, events, spec)
		if err != nil {
			return nil, err
		}
		summary, err := ds.Stats()
		if err != nil {
			return nil, fmt.Errorf("collecting stats: %w", err)
		}
		e = &catalogEntry{spec: spec, ds: ds, events: summary.Count, summary: summary}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if gen > 0 {
		if gen > c.gen {
			c.gen = gen
		}
		e.gen = gen
	} else {
		c.gen++
		e.gen = c.gen
	}
	if c.dur != nil {
		if gen <= 0 {
			if err := c.dur.logRegister(e.gen, spec); err != nil {
				c.gen--
				return nil, fmt.Errorf("logging registration of %q: %w", spec.Name, err)
			}
		}
		// Post-recovery ingest batches on this dataset must hit the
		// log before they apply: the commit hook runs inside the live
		// dataset's writer lock, after validation and before mutation,
		// so the acknowledged batch is durable or not applied at all.
		// (The seed batch staged above predates the hook on purpose —
		// it is re-derived from the logged spec, not from the log.)
		if e.mds != nil {
			d, name, entryGen := c.dur, spec.Name, e.gen
			e.mds.OnCommit(func(g uint64, ops []stark.LiveOp[workload.Event]) error {
				return d.logBatch(name, entryGen, g, ops)
			})
		}
	}
	c.entries[spec.Name] = e
	return e, nil
}

// restoreMutable rebuilds a mutable entry from checkpointed records,
// publishing at the recorded catalog generation with the live
// generation re-established, so WAL suffix replay lines up. The
// spatial layout is rebuilt over the restored keys (or the declared
// data space when empty), mirroring what stageMutable did at original
// registration.
func (c *Catalog) restoreMutable(ctx *stark.Context, spec DatasetSpec, gen int64, liveGen uint64, recs []stark.LiveRecord[workload.Event]) error {
	order, err := parseLiveOrder(spec)
	if err != nil {
		return err
	}
	keys := make([]stark.STObject, len(recs))
	for i, r := range recs {
		keys[i] = r.Key
	}
	sp, err := buildLiveLayout(spec, keys)
	if err != nil {
		return err
	}
	mds := stark.NewMutableDataset[workload.Event](ctx, spec.Name, sp, order)
	mds.SetAttrFields(workload.EventSchema())
	if err := mds.Restore(liveGen, recs); err != nil {
		return err
	}
	e := &catalogEntry{spec: spec, mds: mds}
	c.mu.Lock()
	defer c.mu.Unlock()
	if gen > c.gen {
		c.gen = gen
	}
	e.gen = gen
	if c.dur != nil {
		d, name := c.dur, spec.Name
		e.mds.OnCommit(func(g uint64, ops []stark.LiveOp[workload.Event]) error {
			return d.logBatch(name, gen, g, ops)
		})
	}
	c.entries[spec.Name] = e
	return nil
}

// setDurability installs the write-ahead log. Must run before any
// registration the log is supposed to cover.
func (c *Catalog) setDurability(d *Durability) {
	c.mu.Lock()
	c.dur = d
	c.mu.Unlock()
}

// setGen forces the registration counter — recovery re-establishes
// the counter recorded in the checkpoint manifest before replaying
// the WAL suffix.
func (c *Catalog) setGen(g int64) {
	c.mu.Lock()
	if g > c.gen {
		c.gen = g
	}
	c.mu.Unlock()
}

// snapshot returns every entry (sorted by registration generation)
// and the current counter — the consistent catalog view a checkpoint
// serialises.
func (c *Catalog) snapshot() ([]*catalogEntry, int64) {
	c.mu.RLock()
	entries := make([]*catalogEntry, 0, len(c.entries))
	for _, e := range c.entries {
		entries = append(entries, e)
	}
	gen := c.gen
	c.mu.RUnlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].gen < entries[j].gen })
	return entries, gen
}

// buildEvents materialises the spec's payload: inline events when
// given, the seeded generator otherwise.
func (spec DatasetSpec) buildEvents() ([]workload.Event, error) {
	if len(spec.Events) > 0 {
		events := make([]workload.Event, len(spec.Events))
		for i, ev := range spec.Events {
			events[i] = workload.Event{ID: ev.ID, Category: ev.Category, Time: ev.Time, WKT: ev.WKT}
		}
		return events, nil
	}
	if spec.N <= 0 {
		return nil, fmt.Errorf("dataset %q: need n > 0 or inline events", spec.Name)
	}
	var dist workload.Distribution
	switch strings.ToLower(spec.Dist) {
	case "", "skewed":
		dist = workload.Skewed
	case "uniform":
		dist = workload.Uniform
	case "diagonal":
		dist = workload.Diagonal
	default:
		return nil, fmt.Errorf("dataset %q: unknown distribution %q", spec.Name, spec.Dist)
	}
	return workload.Events(workload.Config{
		N: spec.N, Seed: spec.Seed, Dist: dist,
		Width: spec.Width, Height: spec.Height, TimeRange: spec.TimeRange,
	}), nil
}

// stageDataset lifts events into a cached Dataset with the spec's
// partitioner recipe and index mode applied, and forces the chain so
// registration errors surface here rather than on the first query.
func stageDataset(ctx *stark.Context, events []workload.Event, spec DatasetSpec) (*stark.Dataset[workload.Event], error) {
	tuples, dropped := workload.EventTuples(events)
	if dropped > 0 {
		return nil, fmt.Errorf("%d events with invalid WKT", dropped)
	}
	ds := stark.Parallelize(ctx, tuples).Cache()
	if spec.Partitioner != "" {
		p, err := parsePartitioner(spec.Partitioner)
		if err != nil {
			return nil, err
		}
		ds = ds.PartitionBy(p)
	}
	mode, err := parseIndexMode(spec.Index)
	if err != nil {
		return nil, err
	}
	if mode != (stark.NoIndexing) {
		ds = ds.Index(mode)
	}
	if spec.Columnar {
		ds = ds.Columnar()
	}
	if err := ds.Run(); err != nil {
		return nil, fmt.Errorf("staging events: %w", err)
	}
	return ds, nil
}

// stageMutable builds a mutable catalog dataset. The spatial layout
// is fixed up front: the spec's partitioner recipe is built over the
// seed events' keys, or over the corners of the declared data space
// when the dataset starts empty (the generator's default 1000×1000
// when no width/height is given). Seed events, if any, land as one
// initial insert batch — generation 1 — using each event's ID as the
// live record ID, so they can be upserted and deleted over HTTP later.
func stageMutable(ctx *stark.Context, events []workload.Event, spec DatasetSpec) (*stark.MutableDataset[workload.Event], error) {
	order, err := parseLiveOrder(spec)
	if err != nil {
		return nil, err
	}
	tuples, dropped := workload.EventTuples(events)
	if dropped > 0 {
		return nil, fmt.Errorf("%d events with invalid WKT", dropped)
	}

	keys := make([]stark.STObject, 0, len(tuples))
	for _, kv := range tuples {
		keys = append(keys, kv.Key)
	}
	sp, err := buildLiveLayout(spec, keys)
	if err != nil {
		return nil, err
	}

	mds := stark.NewMutableDataset[workload.Event](ctx, spec.Name, sp, order)
	mds.SetAttrFields(workload.EventSchema())
	if len(tuples) > 0 {
		recs := make([]stark.LiveRecord[workload.Event], len(tuples))
		for i, kv := range tuples {
			recs[i] = stark.LiveRecord[workload.Event]{ID: int64(kv.Value.ID), Key: kv.Key, Value: kv.Value}
		}
		if _, err := mds.Insert(recs...); err != nil {
			return nil, fmt.Errorf("seeding events: %w", err)
		}
	}
	return mds, nil
}

// buildLiveLayout fixes a mutable dataset's spatial layout: the
// spec's partitioner recipe built over the given keys, or over the
// corners of the declared data space when there are none (the
// generator's default 1000×1000 when no width/height is given). A
// spec without a partitioner yields nil — a single partition.
func buildLiveLayout(spec DatasetSpec, keys []stark.STObject) (stark.SpatialPartitioner, error) {
	if spec.Partitioner == "" {
		return nil, nil
	}
	p, err := parsePartitioner(spec.Partitioner)
	if err != nil {
		return nil, err
	}
	if len(keys) == 0 {
		w, h := spec.Width, spec.Height
		if w <= 0 {
			w = 1000
		}
		if h <= 0 {
			h = 1000
		}
		keys = []stark.STObject{
			stark.NewSTObject(stark.NewPoint(0, 0)),
			stark.NewSTObject(stark.NewPoint(w, h)),
		}
	}
	sp, err := p.Build(keys)
	if err != nil {
		return nil, fmt.Errorf("building partitioner: %w", err)
	}
	return sp, nil
}

// parseLiveOrder extracts the concurrent-tree node order from a
// mutable dataset's index recipe. Only "" / "none" (default order)
// and "live[:order]" are valid: a mutable dataset's partition trees
// are always its live index, and "persistent" (bulk-loaded STR,
// immutable by construction) cannot back one.
func parseLiveOrder(spec DatasetSpec) (int, error) {
	kind, arg, _ := strings.Cut(strings.ToLower(strings.TrimSpace(spec.Index)), ":")
	switch kind {
	case "", "none", "live":
	case "persistent":
		return 0, fmt.Errorf("mutable dataset %q: persistent indexes are bulk-loaded and immutable; use live[:order]", spec.Name)
	default:
		return 0, fmt.Errorf("unknown index recipe %q (mutable datasets take none or live[:order])", spec.Index)
	}
	if arg == "" {
		return 0, nil
	}
	order, err := strconv.Atoi(arg)
	if err != nil || order <= 0 {
		return 0, fmt.Errorf("index recipe %q: bad order %q", spec.Index, arg)
	}
	return order, nil
}

// parseIndexMode parses an index recipe: "", "none", "live[:order]",
// "persistent[:order]".
func parseIndexMode(s string) (stark.IndexMode, error) {
	kind, arg, _ := strings.Cut(strings.ToLower(strings.TrimSpace(s)), ":")
	order := 0
	if arg != "" {
		v, err := strconv.Atoi(arg)
		if err != nil {
			return stark.NoIndexing, fmt.Errorf("index recipe %q: bad order %q", s, arg)
		}
		order = v
	}
	switch kind {
	case "", "none":
		return stark.NoIndexing, nil
	case "live":
		return stark.Live(order), nil
	case "persistent":
		return stark.Persistent(order), nil
	default:
		return stark.NoIndexing, fmt.Errorf("unknown index recipe %q (want none, live[:order] or persistent[:order])", s)
	}
}

// parsePartitioner parses a partitioner recipe: "grid:ppd",
// "bsp:maxCost", "voronoi:seeds".
func parsePartitioner(s string) (stark.Partitioner, error) {
	kind, arg, _ := strings.Cut(strings.ToLower(strings.TrimSpace(s)), ":")
	n := 0
	if arg != "" {
		v, err := strconv.Atoi(arg)
		if err != nil {
			return stark.Partitioner{}, fmt.Errorf("partitioner recipe %q: bad argument %q", s, arg)
		}
		n = v
	}
	switch kind {
	case "grid":
		if n <= 0 {
			n = 8
		}
		return stark.Grid(n), nil
	case "bsp":
		if n <= 0 {
			n = 1024
		}
		return stark.BSP(n), nil
	case "voronoi":
		if n <= 0 {
			n = 32
		}
		return stark.Voronoi(n, 42), nil
	default:
		return stark.Partitioner{}, fmt.Errorf("unknown partitioner recipe %q (want grid:ppd, bsp:maxCost or voronoi:seeds)", s)
	}
}

// ParseDatasetFlag parses the cmd/starkd -dataset flag syntax:
//
//	name:key=value,key=value,...
//
// with keys n, seed, dist, width, height, timerange, index, part,
// mutable, columnar. Example:
// "hotels:n=50000,seed=7,dist=uniform,index=live:8,part=grid:8";
// "fleet:mutable=true,part=grid:8" registers an empty mutable dataset
// fed over POST /api/v1/ingest.
func ParseDatasetFlag(s string) (DatasetSpec, error) {
	name, rest, ok := strings.Cut(s, ":")
	if !ok || strings.TrimSpace(name) == "" {
		return DatasetSpec{}, fmt.Errorf("dataset flag %q: want name:key=value,...", s)
	}
	spec := DatasetSpec{Name: strings.TrimSpace(name)}
	for _, kv := range strings.Split(rest, ",") {
		if strings.TrimSpace(kv) == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return DatasetSpec{}, fmt.Errorf("dataset flag %q: bad pair %q", s, kv)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		var err error
		switch strings.ToLower(key) {
		case "n":
			spec.N, err = strconv.Atoi(val)
		case "seed":
			spec.Seed, err = strconv.ParseInt(val, 10, 64)
		case "dist":
			spec.Dist = val
		case "width":
			spec.Width, err = strconv.ParseFloat(val, 64)
		case "height":
			spec.Height, err = strconv.ParseFloat(val, 64)
		case "timerange":
			spec.TimeRange, err = strconv.ParseInt(val, 10, 64)
		case "index":
			spec.Index = val
		case "part", "partitioner":
			spec.Partitioner = val
		case "mutable":
			spec.Mutable, err = strconv.ParseBool(val)
		case "columnar":
			spec.Columnar, err = strconv.ParseBool(val)
		default:
			return DatasetSpec{}, fmt.Errorf("dataset flag %q: unknown key %q", s, key)
		}
		if err != nil {
			return DatasetSpec{}, fmt.Errorf("dataset flag %q: bad value for %s: %v", s, key, err)
		}
	}
	if spec.N <= 0 && !spec.Mutable {
		return DatasetSpec{}, fmt.Errorf("dataset flag %q: need n=<count> (or mutable=true to start empty)", s)
	}
	return spec, nil
}
