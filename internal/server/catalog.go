package server

// The dataset catalog turns the server from a single-dataset demo
// into a multi-tenant query service: named datasets are registered,
// listed and dropped over HTTP (or preloaded by cmd/starkd), each
// carrying its own staged data, planner statistics, index mode and
// partitioner recipe. Registration builds the dataset outside the
// catalog lock, so queries against other datasets keep flowing while
// a new one stages; the swap under the write lock is the only
// serialisation point. Queries that already hold an entry keep using
// it after a drop or re-register — entries are immutable once
// published, so there are no torn reads, and the result cache
// invalidates by construction because a re-registered dataset carries
// a fresh engine generation (see stark.Dataset.Fingerprint).

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"stark"
	"stark/internal/workload"
)

// DatasetSpec describes how to build a catalog dataset: either a
// seeded generator configuration (N > 0) or inline events, plus the
// physical layout (partitioner recipe and index mode).
type DatasetSpec struct {
	Name string `json:"name"`
	// Generator configuration, used when Events is empty.
	N         int     `json:"n,omitempty"`
	Seed      int64   `json:"seed,omitempty"`
	Dist      string  `json:"dist,omitempty"` // uniform|skewed|diagonal
	Width     float64 `json:"width,omitempty"`
	Height    float64 `json:"height,omitempty"`
	TimeRange int64   `json:"timeRange,omitempty"`
	// Events, when non-empty, is the inline payload (small datasets,
	// tests) and takes precedence over the generator.
	Events []EventSpec `json:"events,omitempty"`
	// Index is the index mode recipe: "none" (default), "live[:order]"
	// or "persistent[:order]".
	Index string `json:"index,omitempty"`
	// Partitioner is the partitioner recipe: "" (no spatial
	// partitioning), "grid:ppd", "bsp:maxCost" or "voronoi:seeds".
	Partitioner string `json:"partitioner,omitempty"`
}

// EventSpec is one inline event of a registration request.
type EventSpec struct {
	ID       int    `json:"id"`
	Category string `json:"category"`
	Time     int64  `json:"time"`
	WKT      string `json:"wkt"`
}

// DatasetInfo is the public summary of a catalog entry.
type DatasetInfo struct {
	Name        string `json:"name"`
	Events      int64  `json:"events"`
	Partitions  int    `json:"partitions"`
	Generation  int64  `json:"generation"`
	Index       string `json:"index"`
	Partitioner string `json:"partitioner"`
}

// catalogEntry is one published dataset. Entries are immutable after
// Register returns them: a re-registration publishes a new entry
// value, never mutates an old one.
type catalogEntry struct {
	spec    DatasetSpec
	ds      *stark.Dataset[workload.Event]
	events  int64
	summary *stark.DatasetStats
	gen     int64
}

func (e *catalogEntry) info() DatasetInfo {
	idx := e.spec.Index
	if idx == "" {
		idx = "none"
	}
	return DatasetInfo{
		Name:        e.spec.Name,
		Events:      e.events,
		Partitions:  len(e.summary.Parts),
		Generation:  e.gen,
		Index:       idx,
		Partitioner: e.spec.Partitioner,
	}
}

// Catalog is the concurrent registry of named datasets.
type Catalog struct {
	mu      sync.RWMutex
	entries map[string]*catalogEntry
	gen     int64 // registration counter, monotonic under mu
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{entries: make(map[string]*catalogEntry)}
}

// Get returns the published entry for name.
func (c *Catalog) Get(name string) (*catalogEntry, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.entries[name]
	return e, ok
}

// List returns the summaries of all entries, sorted by name.
func (c *Catalog) List() []DatasetInfo {
	c.mu.RLock()
	infos := make([]DatasetInfo, 0, len(c.entries))
	for _, e := range c.entries {
		infos = append(infos, e.info())
	}
	c.mu.RUnlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos
}

// Drop removes name from the catalog, reporting whether it existed.
// In-flight queries holding the entry finish against it undisturbed.
func (c *Catalog) Drop(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[name]
	delete(c.entries, name)
	return ok
}

// Register builds the dataset described by spec and publishes it
// under spec.Name, replacing any previous registration. The build
// (staging, shuffle, index, statistics) runs outside the catalog
// lock.
func (c *Catalog) Register(ctx *stark.Context, spec DatasetSpec) (*catalogEntry, error) {
	events, err := spec.buildEvents()
	if err != nil {
		return nil, err
	}
	return c.register(ctx, spec, events)
}

// RegisterEvents is Register with an already-materialised payload —
// the programmatic preload path, which skips the generator.
func (c *Catalog) RegisterEvents(ctx *stark.Context, spec DatasetSpec, events []workload.Event) error {
	_, err := c.register(ctx, spec, events)
	return err
}

func (c *Catalog) register(ctx *stark.Context, spec DatasetSpec, events []workload.Event) (*catalogEntry, error) {
	if strings.TrimSpace(spec.Name) == "" {
		return nil, fmt.Errorf("dataset name must not be empty")
	}
	ds, err := stageDataset(ctx, events, spec)
	if err != nil {
		return nil, err
	}
	summary, err := ds.Stats()
	if err != nil {
		return nil, fmt.Errorf("collecting stats: %w", err)
	}
	e := &catalogEntry{spec: spec, ds: ds, events: summary.Count, summary: summary}
	c.mu.Lock()
	c.gen++
	e.gen = c.gen
	c.entries[spec.Name] = e
	c.mu.Unlock()
	return e, nil
}

// buildEvents materialises the spec's payload: inline events when
// given, the seeded generator otherwise.
func (spec DatasetSpec) buildEvents() ([]workload.Event, error) {
	if len(spec.Events) > 0 {
		events := make([]workload.Event, len(spec.Events))
		for i, ev := range spec.Events {
			events[i] = workload.Event{ID: ev.ID, Category: ev.Category, Time: ev.Time, WKT: ev.WKT}
		}
		return events, nil
	}
	if spec.N <= 0 {
		return nil, fmt.Errorf("dataset %q: need n > 0 or inline events", spec.Name)
	}
	var dist workload.Distribution
	switch strings.ToLower(spec.Dist) {
	case "", "skewed":
		dist = workload.Skewed
	case "uniform":
		dist = workload.Uniform
	case "diagonal":
		dist = workload.Diagonal
	default:
		return nil, fmt.Errorf("dataset %q: unknown distribution %q", spec.Name, spec.Dist)
	}
	return workload.Events(workload.Config{
		N: spec.N, Seed: spec.Seed, Dist: dist,
		Width: spec.Width, Height: spec.Height, TimeRange: spec.TimeRange,
	}), nil
}

// stageDataset lifts events into a cached Dataset with the spec's
// partitioner recipe and index mode applied, and forces the chain so
// registration errors surface here rather than on the first query.
func stageDataset(ctx *stark.Context, events []workload.Event, spec DatasetSpec) (*stark.Dataset[workload.Event], error) {
	tuples, dropped := workload.EventTuples(events)
	if dropped > 0 {
		return nil, fmt.Errorf("%d events with invalid WKT", dropped)
	}
	ds := stark.Parallelize(ctx, tuples).Cache()
	if spec.Partitioner != "" {
		p, err := parsePartitioner(spec.Partitioner)
		if err != nil {
			return nil, err
		}
		ds = ds.PartitionBy(p)
	}
	mode, err := parseIndexMode(spec.Index)
	if err != nil {
		return nil, err
	}
	if mode != (stark.NoIndexing) {
		ds = ds.Index(mode)
	}
	if err := ds.Run(); err != nil {
		return nil, fmt.Errorf("staging events: %w", err)
	}
	return ds, nil
}

// parseIndexMode parses an index recipe: "", "none", "live[:order]",
// "persistent[:order]".
func parseIndexMode(s string) (stark.IndexMode, error) {
	kind, arg, _ := strings.Cut(strings.ToLower(strings.TrimSpace(s)), ":")
	order := 0
	if arg != "" {
		v, err := strconv.Atoi(arg)
		if err != nil {
			return stark.NoIndexing, fmt.Errorf("index recipe %q: bad order %q", s, arg)
		}
		order = v
	}
	switch kind {
	case "", "none":
		return stark.NoIndexing, nil
	case "live":
		return stark.Live(order), nil
	case "persistent":
		return stark.Persistent(order), nil
	default:
		return stark.NoIndexing, fmt.Errorf("unknown index recipe %q (want none, live[:order] or persistent[:order])", s)
	}
}

// parsePartitioner parses a partitioner recipe: "grid:ppd",
// "bsp:maxCost", "voronoi:seeds".
func parsePartitioner(s string) (stark.Partitioner, error) {
	kind, arg, _ := strings.Cut(strings.ToLower(strings.TrimSpace(s)), ":")
	n := 0
	if arg != "" {
		v, err := strconv.Atoi(arg)
		if err != nil {
			return stark.Partitioner{}, fmt.Errorf("partitioner recipe %q: bad argument %q", s, arg)
		}
		n = v
	}
	switch kind {
	case "grid":
		if n <= 0 {
			n = 8
		}
		return stark.Grid(n), nil
	case "bsp":
		if n <= 0 {
			n = 1024
		}
		return stark.BSP(n), nil
	case "voronoi":
		if n <= 0 {
			n = 32
		}
		return stark.Voronoi(n, 42), nil
	default:
		return stark.Partitioner{}, fmt.Errorf("unknown partitioner recipe %q (want grid:ppd, bsp:maxCost or voronoi:seeds)", s)
	}
}

// ParseDatasetFlag parses the cmd/starkd -dataset flag syntax:
//
//	name:key=value,key=value,...
//
// with keys n, seed, dist, width, height, timerange, index, part.
// Example: "hotels:n=50000,seed=7,dist=uniform,index=live:8,part=grid:8".
func ParseDatasetFlag(s string) (DatasetSpec, error) {
	name, rest, ok := strings.Cut(s, ":")
	if !ok || strings.TrimSpace(name) == "" {
		return DatasetSpec{}, fmt.Errorf("dataset flag %q: want name:key=value,...", s)
	}
	spec := DatasetSpec{Name: strings.TrimSpace(name)}
	for _, kv := range strings.Split(rest, ",") {
		if strings.TrimSpace(kv) == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return DatasetSpec{}, fmt.Errorf("dataset flag %q: bad pair %q", s, kv)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		var err error
		switch strings.ToLower(key) {
		case "n":
			spec.N, err = strconv.Atoi(val)
		case "seed":
			spec.Seed, err = strconv.ParseInt(val, 10, 64)
		case "dist":
			spec.Dist = val
		case "width":
			spec.Width, err = strconv.ParseFloat(val, 64)
		case "height":
			spec.Height, err = strconv.ParseFloat(val, 64)
		case "timerange":
			spec.TimeRange, err = strconv.ParseInt(val, 10, 64)
		case "index":
			spec.Index = val
		case "part", "partitioner":
			spec.Partitioner = val
		default:
			return DatasetSpec{}, fmt.Errorf("dataset flag %q: unknown key %q", s, key)
		}
		if err != nil {
			return DatasetSpec{}, fmt.Errorf("dataset flag %q: bad value for %s: %v", s, key, err)
		}
	}
	if spec.N <= 0 {
		return DatasetSpec{}, fmt.Errorf("dataset flag %q: need n=<count>", s)
	}
	return spec, nil
}
