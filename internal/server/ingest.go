package server

// HTTP ingestion for mutable catalog datasets:
//
//	POST   /api/v1/ingest?dataset=name          NDJSON mutation batch
//	DELETE /api/v1/datasets/{name}/records/{id} delete one record
//
// The ingest body is NDJSON, one mutation per line:
//
//	{"op":"insert","id":1,"category":"taxi","time":42,"wkt":"POINT (3 4)"}
//	{"op":"upsert","id":1,"category":"taxi","time":43,"wkt":"POINT (5 6)"}
//	{"op":"delete","id":1}
//
// op defaults to upsert. The whole request is ONE atomic batch: it
// either publishes one new generation with every line applied, or —
// on the first malformed line, or any batch-level violation (duplicate
// IDs, insert of a live ID) — rejects with HTTP 400 and changes
// nothing. Batches pass through the same admission gate as queries,
// so a burst of writers cannot starve readers of engine slots.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"stark"
	"stark/internal/live"
	"stark/internal/workload"
)

const (
	// maxIngestLineBytes bounds one NDJSON mutation line.
	maxIngestLineBytes = 1 << 20
	// maxIngestBatchOps bounds the operations of one request. One
	// request is one atomic batch — one writer-lock hold, one
	// generation — so an unbounded request could stall the dataset's
	// writer arbitrarily long.
	maxIngestBatchOps = 100_000
)

// mutationLine is the wire form of one ingest operation.
type mutationLine struct {
	Op       string `json:"op"`
	ID       *int64 `json:"id"`
	Category string `json:"category"`
	Time     int64  `json:"time"`
	WKT      string `json:"wkt"`
}

// decodeMutation parses one NDJSON line into a live mutation op. It
// is the ingest decoder's trust boundary — everything after it deals
// in validated ops — and the fuzz target FuzzDecodeMutation holds it
// to: never panic, and never emit an op with an empty geometry unless
// the op is a delete.
func decodeMutation(line []byte) (stark.LiveOp[workload.Event], error) {
	var zero stark.LiveOp[workload.Event]
	var m mutationLine
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return zero, fmt.Errorf("bad JSON: %v", err)
	}
	return m.toOp()
}

// toOp validates a decoded mutation line and lifts it to a live op —
// shared between the HTTP ingest decoder and WAL batch replay (which
// logs batches as []mutationLine).
func (m mutationLine) toOp() (stark.LiveOp[workload.Event], error) {
	var zero stark.LiveOp[workload.Event]
	if m.ID == nil {
		return zero, errors.New("missing id")
	}
	switch strings.ToLower(m.Op) {
	case "delete":
		if m.WKT != "" || m.Category != "" || m.Time != 0 {
			return zero, errors.New("delete takes only id")
		}
		return stark.LiveDelete[workload.Event](*m.ID), nil
	case "insert", "upsert", "":
	default:
		return zero, fmt.Errorf("unknown op %q (want insert, upsert or delete)", m.Op)
	}
	ev := workload.Event{ID: int(*m.ID), Category: m.Category, Time: m.Time, WKT: m.WKT}
	key, err := ev.ToSTObject()
	if err != nil {
		return zero, fmt.Errorf("bad wkt: %v", err)
	}
	if strings.EqualFold(m.Op, "insert") {
		return stark.LiveInsert(*m.ID, key, ev), nil
	}
	return stark.LiveUpsert(*m.ID, key, ev), nil
}

// opLine renders a validated live op back to its wire form — how WAL
// batch records serialise a batch. The round trip through toOp is
// lossless: the op's payload event carries the original WKT.
func opLine(op stark.LiveOp[workload.Event]) mutationLine {
	id := op.Rec.ID
	switch op.Kind {
	case live.OpDelete:
		return mutationLine{Op: "delete", ID: &id}
	case live.OpInsert:
		return mutationLine{Op: "insert", ID: &id, Category: op.Rec.Value.Category, Time: op.Rec.Value.Time, WKT: op.Rec.Value.WKT}
	default:
		return mutationLine{Op: "upsert", ID: &id, Category: op.Rec.Value.Category, Time: op.Rec.Value.Time, WKT: op.Rec.Value.WKT}
	}
}

// mutableEntry resolves a dataset name to its catalog entry and
// insists it is mutable, writing the HTTP error otherwise.
func (s *Server) mutableEntry(w http.ResponseWriter, name string) (*catalogEntry, bool) {
	entry, ok := s.resolveDataset(w, name)
	if !ok {
		return nil, false
	}
	if entry.mds == nil {
		httpError(w, http.StatusConflict,
			"dataset %q is immutable (register with \"mutable\": true to ingest)", entry.spec.Name)
		return nil, false
	}
	return entry, true
}

// handleIngest applies one NDJSON mutation batch to a mutable catalog
// dataset and reports what the batch did plus the generation it
// published. Queries running concurrently keep reading their pinned
// snapshots; queries issued after the response see the new generation
// — and, because plan fingerprints embed it, never a stale cache
// entry.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	entry, ok := s.mutableEntry(w, r.URL.Query().Get("dataset"))
	if !ok {
		return
	}
	if !s.acquireAdmission(w, r) {
		return
	}
	defer s.adm.Release()

	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 64*1024), maxIngestLineBytes)
	var ops []stark.LiveOp[workload.Event]
	lineNo := 0
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		lineNo++
		if len(line) == 0 {
			continue
		}
		if len(ops) == maxIngestBatchOps {
			httpError(w, http.StatusRequestEntityTooLarge,
				"batch exceeds %d operations; split the request", maxIngestBatchOps)
			return
		}
		op, err := decodeMutation(line)
		if err != nil {
			httpError(w, http.StatusBadRequest, "line %d: %v (batch rejected, nothing applied)", lineNo, err)
			return
		}
		ops = append(ops, op)
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			httpError(w, http.StatusRequestEntityTooLarge, "line %d exceeds %d bytes", lineNo+1, maxIngestLineBytes)
			return
		}
		httpError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	if len(ops) == 0 {
		httpError(w, http.StatusBadRequest, "empty batch")
		return
	}

	res, err := entry.mds.Apply(ops)
	if err != nil {
		httpError(w, http.StatusBadRequest, "batch rejected, nothing applied: %v", err)
		return
	}
	writeJSON(w, ingestResponse(entry, res))
}

// handleRecordDelete deletes one record by ID — the single-record
// convenience form of an ingest batch with one delete line. Deleting
// an ID that is not live answers 404 (the generation still advances:
// every applied batch publishes).
func (s *Server) handleRecordDelete(w http.ResponseWriter, r *http.Request) {
	entry, ok := s.mutableEntry(w, r.PathValue("name"))
	if !ok {
		return
	}
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad record id %q", r.PathValue("id"))
		return
	}
	if !s.acquireAdmission(w, r) {
		return
	}
	defer s.adm.Release()
	res, err := entry.mds.Delete(id)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "delete failed: %v", err)
		return
	}
	if res.Deleted == 0 {
		httpError(w, http.StatusNotFound, "record %d not live in dataset %q", id, entry.spec.Name)
		return
	}
	writeJSON(w, ingestResponse(entry, res))
}

// ingestResponse is the JSON body of a successful mutation request.
func ingestResponse(entry *catalogEntry, res stark.BatchResult) map[string]interface{} {
	return map[string]interface{}{
		"dataset":    entry.spec.Name,
		"generation": res.Gen,
		"inserted":   res.Inserted,
		"replaced":   res.Replaced,
		"deleted":    res.Deleted,
		"missing":    res.Missing,
		"count":      entry.mds.Count(),
	}
}
