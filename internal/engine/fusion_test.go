package engine

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
)

// This file asserts that the fused streaming pipelines are
// semantically identical to the seed slice-per-step execution model:
// same elements, same partition order, with and without cache
// barriers, under concurrency, and with early-terminating actions.

// ---- reference (seed-style) implementations ----
// These replicate the pre-fusion transformations, materialising a
// fresh slice at every step, and serve both as the correctness oracle
// and as the allocation baseline.

func seedMap[T, U any](d *Dataset[T], f func(T) U) *Dataset[U] {
	return newDataset(d.ctx, d.name+".seedMap", d.numPart, func(p int) ([]U, error) {
		in, err := d.ComputePartition(p)
		if err != nil {
			return nil, err
		}
		out := make([]U, len(in))
		for i, v := range in {
			out[i] = f(v)
		}
		return out, nil
	})
}

func seedFilter[T any](d *Dataset[T], pred func(T) bool) *Dataset[T] {
	return newDataset(d.ctx, d.name+".seedFilter", d.numPart, func(p int) ([]T, error) {
		in, err := d.ComputePartition(p)
		if err != nil {
			return nil, err
		}
		var out []T
		for _, v := range in {
			if pred(v) {
				out = append(out, v)
			}
		}
		return out, nil
	})
}

func seedFlatMap[T, U any](d *Dataset[T], f func(T) []U) *Dataset[U] {
	return newDataset(d.ctx, d.name+".seedFlatMap", d.numPart, func(p int) ([]U, error) {
		in, err := d.ComputePartition(p)
		if err != nil {
			return nil, err
		}
		var out []U
		for _, v := range in {
			out = append(out, f(v)...)
		}
		return out, nil
	})
}

// chain applies the canonical 3-step narrow chain used throughout
// these tests: map(×2) ∘ filter(%3≠0) ∘ flatMap(v → [v, v+1]).
var (
	chainMapF     = func(v int) int { return v * 2 }
	chainFilterF  = func(v int) bool { return v%3 != 0 }
	chainFlatMapF = func(v int) []int { return []int{v, v + 1} }
)

func fusedChain(d *Dataset[int]) *Dataset[int] {
	return FlatMap(Map(d, chainMapF).Filter(chainFilterF), chainFlatMapF)
}

func seedChain(d *Dataset[int]) *Dataset[int] {
	return seedFlatMap(seedFilter(seedMap(d, chainMapF), chainFilterF), chainFlatMapF)
}

// TestFusionMatchesSeedSemantics drives randomised datasets through
// the fused chain and the seed slice-per-step chain and requires
// byte-identical results — same elements, same partition order.
func TestFusionMatchesSeedSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(2000)
		parts := 1 + rng.Intn(8)
		data := make([]int, n)
		for i := range data {
			data[i] = rng.Intn(10000) - 5000
		}
		ctx := NewContext(4)
		fused, err := fusedChain(Parallelize(ctx, data, parts)).Collect()
		if err != nil {
			t.Fatal(err)
		}
		seed, err := seedChain(Parallelize(ctx, data, parts)).Collect()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(fused, seed) {
			t.Fatalf("trial %d (n=%d parts=%d): fused %v != seed %v", trial, n, parts, fused, seed)
		}
		// Partition-level equality, not just the concatenation.
		fd := fusedChain(Parallelize(ctx, data, parts))
		sd := seedChain(Parallelize(ctx, data, parts))
		for p := 0; p < parts; p++ {
			fp, err := fd.ComputePartition(p)
			if err != nil {
				t.Fatal(err)
			}
			sp, err := sd.ComputePartition(p)
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(fp) != fmt.Sprint(sp) {
				t.Fatalf("trial %d partition %d: %v != %v", trial, p, fp, sp)
			}
		}
	}
}

// TestFusionWithCacheBarrier inserts Cache() mid-chain and checks the
// results stay identical to the seed semantics while the cached stage
// computes each partition exactly once.
func TestFusionWithCacheBarrier(t *testing.T) {
	ctx := NewContext(4)
	data := intRange(1000)

	var upstreamRuns atomic.Int64
	source := NewStream(ctx, "counting", 4, func(p int, yield func(int) bool) error {
		upstreamRuns.Add(1)
		lo, hi := p*250, (p+1)*250
		for v := lo; v < hi; v++ {
			if !yield(data[v]) {
				return nil
			}
		}
		return nil
	})

	mid := Map(source, chainMapF).Filter(chainFilterF).Cache()
	tail := FlatMap(mid, chainFlatMapF)

	want, err := seedChain(Parallelize(ctx, data, 4)).Collect()
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 3; run++ {
		got, err := tail.Collect()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("run %d: fused+cache differs from seed semantics", run)
		}
	}
	// The upstream of the cache barrier ran once per partition, not
	// once per action.
	if got := upstreamRuns.Load(); got != 4 {
		t.Errorf("upstream computed %d times, want 4 (once per partition)", got)
	}
}

// TestFusionUnpersistRace races Unpersist/Cache toggles against
// actions on a fused chain; run with -race. Results must stay correct
// whether a given partition is served from cache or recomputed.
func TestFusionUnpersistRace(t *testing.T) {
	ctx := NewContext(4)
	data := intRange(4000)
	mid := Map(Parallelize(ctx, data, 8), chainMapF).Filter(chainFilterF)
	tail := FlatMap(mid, chainFlatMapF)

	want, err := seedChain(Parallelize(ctx, data, 8)).Collect()
	if err != nil {
		t.Fatal(err)
	}

	// Bounded work on both sides so the test cannot starve under
	// package-parallel test runs: workers run a fixed number of
	// actions while a toggler flips the cache underneath them.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				got, err := tail.Collect()
				if err != nil {
					t.Error(err)
					return
				}
				if !reflect.DeepEqual(got, want) {
					t.Error("fused chain produced wrong result under cache toggling")
					return
				}
				if _, err := tail.Take(17); err != nil {
					t.Error(err)
					return
				}
				if n, err := tail.Count(); err != nil || n != int64(len(want)) {
					t.Errorf("count = %d err=%v, want %d", n, err, len(want))
					return
				}
			}
		}()
	}
	var togglerWG sync.WaitGroup
	togglerWG.Add(1)
	go func() {
		defer togglerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			mid.Cache()
			mid.Unpersist()
		}
	}()
	wg.Wait()
	close(stop)
	togglerWG.Wait()
}

// countingSource returns a dataset over [0, n) in parts partitions
// that counts every element actually pulled through the pipeline.
func countingSource(ctx *Context, n, parts int) (*Dataset[int], *atomic.Int64) {
	var pulled atomic.Int64
	d := NewStream(ctx, "countingSource", parts, func(p int, yield func(int) bool) error {
		lo := p * n / parts
		hi := (p + 1) * n / parts
		for v := lo; v < hi; v++ {
			pulled.Add(1)
			if !yield(v) {
				return nil
			}
		}
		return nil
	})
	return d, &pulled
}

// TestTakeStopsConsuming verifies the acceptance criterion: Take(n)
// stops pulling from a partition's iterator after n elements.
func TestTakeStopsConsuming(t *testing.T) {
	ctx := NewContext(2)
	d, pulled := countingSource(ctx, 100_000, 4)

	got, err := d.Take(5)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[0 1 2 3 4]" {
		t.Fatalf("take = %v", got)
	}
	if n := pulled.Load(); n != 5 {
		t.Errorf("take(5) pulled %d elements from the source, want exactly 5", n)
	}

	// Through a fused filter chain: only as many source elements are
	// pulled as needed to let n survivors through — not the partition.
	d2, pulled2 := countingSource(ctx, 100_000, 4)
	got2, err := d2.Filter(func(v int) bool { return v%10 == 0 }).Take(3)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got2) != "[0 10 20]" {
		t.Fatalf("filtered take = %v", got2)
	}
	if n := pulled2.Load(); n != 21 {
		t.Errorf("filtered take(3) pulled %d source elements, want 21 (0..20)", n)
	}
}

// TestFirstAndExistsShortCircuit checks the other early-terminating
// actions against the counting source.
func TestFirstAndExistsShortCircuit(t *testing.T) {
	ctx := NewContext(2)
	d, pulled := countingSource(ctx, 100_000, 4)
	v, ok, err := Map(d, chainMapF).First()
	if err != nil || !ok || v != 0 {
		t.Fatalf("first = %v ok=%v err=%v", v, ok, err)
	}
	if n := pulled.Load(); n != 1 {
		t.Errorf("first pulled %d elements, want 1", n)
	}

	// A single partition makes the early-exit count deterministic:
	// the scan must stop right after the match, at 4 pulls.
	d2, pulled2 := countingSource(ctx, 100_000, 1)
	found, err := d2.Exists(func(v int) bool { return v == 3 })
	if err != nil || !found {
		t.Fatalf("exists = %v err=%v", found, err)
	}
	if n := pulled2.Load(); n != 4 {
		t.Errorf("exists pulled %d elements, want exactly 4", n)
	}

	d3, _ := countingSource(ctx, 1000, 4)
	found, err = d3.Exists(func(v int) bool { return v < 0 })
	if err != nil || found {
		t.Fatalf("exists(impossible) = %v err=%v", found, err)
	}
}

// TestTakeRacesConcurrentActions runs early-terminating Take against
// concurrent full actions on the same cached chain; run with -race.
// An early-terminated task must never poison the shared cache.
func TestTakeRacesConcurrentActions(t *testing.T) {
	ctx := NewContext(4)
	data := intRange(8000)
	base := Parallelize(ctx, data, 8)
	mid := Map(base, chainMapF).Filter(chainFilterF).Cache()
	tail := FlatMap(mid, chainFlatMapF)

	wantCount, err := seedChain(Parallelize(ctx, data, 8)).Count()
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				switch w % 2 {
				case 0:
					out, err := tail.Take(7)
					if err != nil {
						t.Error(err)
						return
					}
					if len(out) != 7 {
						t.Errorf("take = %d rows, want 7", len(out))
						return
					}
				case 1:
					n, err := tail.Count()
					if err != nil {
						t.Error(err)
						return
					}
					if n != wantCount {
						t.Errorf("count = %d, want %d", n, wantCount)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestStreamOrderAndStop checks the ordered streaming action: strict
// partition order, early stop respected across partitions.
func TestStreamOrderAndStop(t *testing.T) {
	ctx := NewContext(4)
	d := Parallelize(ctx, intRange(100), 5)
	var got []int
	if err := d.Stream(func(v int) bool {
		got = append(got, v)
		return len(got) < 42
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 42 {
		t.Fatalf("streamed %d elements, want 42", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("stream out of order at %d: %d", i, v)
		}
	}

	// Restricted to chosen partitions, in the given order.
	var fromParts []int
	if err := d.StreamPartitions([]int{3, 1}, func(v int) bool {
		fromParts = append(fromParts, v)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	want := append(intRange(100)[60:80], intRange(100)[20:40]...)
	if !reflect.DeepEqual(fromParts, want) {
		t.Fatalf("streamPartitions = %v, want %v", fromParts, want)
	}
}

// TestSinglePartitionJobRecoversPanic pins the runJob fast-path fix:
// a job with exactly one task must report a panicking task as an
// error exactly like the pooled N-task path, not crash the process.
func TestSinglePartitionJobRecoversPanic(t *testing.T) {
	ctx := NewContext(2)
	for _, parts := range []int{1, 4} {
		d := newDataset(ctx, "panicking", parts, func(p int) ([]int, error) {
			panic("kaboom")
		})
		if _, err := d.Collect(); err == nil {
			t.Errorf("%d-partition job: panic must surface as error", parts)
		}
		// CollectPartitions with a single listed task exercises the
		// inline fast path even on a multi-partition dataset.
		if _, err := d.CollectPartitions([]int{0}); err == nil {
			t.Errorf("%d-partition dataset, 1-task job: panic must surface as error", parts)
		}
	}
}

// allocChain is the 3-step narrow chain used for allocation
// measurements: map(×2) ∘ filter(%3≠0) ∘ map(+1). It deliberately
// avoids flatMap, whose per-element result slices allocate
// identically under both execution models and would mask the
// pipeline's own allocation behaviour.
var allocMapF2 = func(v int) int { return v + 1 }

func fusedAllocChain(d *Dataset[int]) *Dataset[int] {
	return Map(Map(d, chainMapF).Filter(chainFilterF), allocMapF2)
}

func seedAllocChain(d *Dataset[int]) *Dataset[int] {
	return seedMap(seedFilter(seedMap(d, chainMapF), chainFilterF), allocMapF2)
}

// TestFusedChainAllocations is the acceptance gate: on a 100k-element
// dataset, running the fused 3-step narrow chain must cost at most
// half the allocations of the seed slice-per-step implementation.
func TestFusedChainAllocations(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement on 100k elements")
	}
	ctx := NewContext(2)
	data := intRange(100_000)
	base := Parallelize(ctx, data, 4)

	// Semantics check before measuring.
	fusedOut, err := fusedAllocChain(base).Collect()
	if err != nil {
		t.Fatal(err)
	}
	seedOut, err := seedAllocChain(base).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fusedOut, seedOut) {
		t.Fatal("alloc chains disagree")
	}

	fusedCount := testing.AllocsPerRun(5, func() {
		if _, err := fusedAllocChain(base).Count(); err != nil {
			t.Fatal(err)
		}
	})
	seedCount := testing.AllocsPerRun(5, func() {
		if _, err := seedAllocChain(base).Count(); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("Count allocs/op: fused=%.0f seed=%.0f", fusedCount, seedCount)
	if fusedCount > seedCount/2 {
		t.Errorf("fused Count allocates %.0f, want <= half of seed's %.0f", fusedCount, seedCount)
	}

	// Collect must materialise its result either way, but the fused
	// plan skips every intermediate slice and preallocates the output
	// from the size hint.
	fusedCollect := testing.AllocsPerRun(5, func() {
		if _, err := fusedAllocChain(base).Collect(); err != nil {
			t.Fatal(err)
		}
	})
	seedCollect := testing.AllocsPerRun(5, func() {
		if _, err := seedAllocChain(base).Collect(); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("Collect allocs/op: fused=%.0f seed=%.0f", fusedCollect, seedCollect)
	if fusedCollect > seedCollect/2 {
		t.Errorf("fused Collect allocates %.0f, want <= half of seed's %.0f", fusedCollect, seedCollect)
	}
}

// TestStreamPartitionsParallel checks the windowed-parallel ordered
// stream: same rows and order as the sequential Stream, early stop
// honoured, later windows never computed.
func TestStreamPartitionsParallel(t *testing.T) {
	ctx := NewContext(3)
	d := fusedChain(Parallelize(ctx, intRange(500), 10))

	var seq, par []int
	if err := d.Stream(func(v int) bool { seq = append(seq, v); return true }); err != nil {
		t.Fatal(err)
	}
	if err := d.StreamPartitionsParallel(allPartitions(d.NumPartitions()), 0, func(v int) bool {
		par = append(par, v)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("parallel stream differs from sequential (%d vs %d rows)", len(par), len(seq))
	}

	// Early stop: windows past the consumer's stop are never computed.
	src, pulled := countingSource(ctx, 1000, 10) // 10 partitions of 100
	n := 0
	if err := src.StreamPartitionsParallel(allPartitions(10), 2, func(int) bool {
		n++
		return n < 50
	}); err != nil {
		t.Fatal(err)
	}
	if n != 50 {
		t.Fatalf("streamed %d rows, want 50", n)
	}
	// Only the first window (2 partitions × 100 elements) was pulled.
	if got := pulled.Load(); got != 200 {
		t.Errorf("pulled %d source elements, want 200 (one window)", got)
	}
}
