package engine

import (
	"fmt"
	"sync"
)

// This file adds the second tier of RDD operations: distinct,
// aggregation, zipping and sampling helpers used by analysis
// pipelines on top of the core transformations in dataset.go.

// Distinct returns the unique elements of a comparable dataset. Like
// Spark's distinct it shuffles by hash so duplicates meet in the same
// partition.
func Distinct[T comparable](d *Dataset[T], hash func(T) int) (*Dataset[T], error) {
	n := d.numPart
	if n == 0 {
		n = 1
	}
	pairs := Map(d, func(v T) Pair[T, struct{}] { return Pair[T, struct{}]{Key: v} })
	shuffled, err := PartitionBy(pairs, FuncPartitioner[T]{N: n, Fn: func(k T) int {
		h := hash(k) % n
		if h < 0 {
			h += n
		}
		return h
	}})
	if err != nil {
		return nil, err
	}
	return MapPartitions(shuffled, func(_ int, in []Pair[T, struct{}]) ([]T, error) {
		seen := make(map[T]struct{}, len(in))
		var out []T
		for _, kv := range in {
			if _, ok := seen[kv.Key]; !ok {
				seen[kv.Key] = struct{}{}
				out = append(out, kv.Key)
			}
		}
		return out, nil
	}), nil
}

// Aggregate folds every partition with seqOp starting from zero, then
// merges the per-partition results with combOp — Spark's aggregate
// action. zero must be a neutral element for combOp. Elements stream
// through the fused pipeline into the fold; no partition is
// materialised.
func Aggregate[T, A any](d *Dataset[T], zero A, seqOp func(A, T) A, combOp func(A, A) A) (A, error) {
	var (
		mu  sync.Mutex
		acc = zero
	)
	err := d.ctx.runJob(d.recorder(), allPartitions(d.numPart), func(p int) error {
		local := zero
		if err := d.EachPartition(p, func(v T) bool {
			local = seqOp(local, v)
			return true
		}); err != nil {
			return err
		}
		mu.Lock()
		acc = combOp(acc, local)
		mu.Unlock()
		return nil
	})
	return acc, err
}

// Zip pairs the i-th element of a with the i-th element of b. Both
// datasets must have the same partition count and equal per-partition
// sizes, as in RDD.zip.
func Zip[A, B any](a *Dataset[A], b *Dataset[B]) (*Dataset[Pair[A, B]], error) {
	if a.numPart != b.numPart {
		return nil, fmt.Errorf("engine: zip needs equal partition counts (%d vs %d)", a.numPart, b.numPart)
	}
	// Zip is a materialisation point: pairing the i-th elements needs
	// both partitions as slices.
	return newStream(a.ctx, a.name+".zip", a.numPart, func(p int, yield func(Pair[A, B]) bool) error {
		pa, err := a.ComputePartition(p)
		if err != nil {
			return err
		}
		pb, err := b.ComputePartition(p)
		if err != nil {
			return err
		}
		if len(pa) != len(pb) {
			return fmt.Errorf("engine: zip partition %d size mismatch (%d vs %d)", p, len(pa), len(pb))
		}
		for i := range pa {
			if !yield(Pair[A, B]{Key: pa[i], Value: pb[i]}) {
				return nil
			}
		}
		return nil
	}), nil
}

// ZipWithIndex pairs every element with its global index in partition
// order, materialising partition sizes first (like RDD.zipWithIndex,
// which also needs an extra job).
func ZipWithIndex[T any](d *Dataset[T]) (*Dataset[Pair[T, int64]], error) {
	sizes, err := d.PartitionSizes()
	if err != nil {
		return nil, err
	}
	offsets := make([]int64, len(sizes)+1)
	for i, s := range sizes {
		offsets[i+1] = offsets[i] + int64(s)
	}
	return newStream(d.ctx, d.name+".zipWithIndex", d.numPart, func(p int, yield func(Pair[T, int64]) bool) error {
		i := offsets[p]
		return d.EachPartition(p, func(v T) bool {
			ok := yield(Pair[T, int64]{Key: v, Value: i})
			i++
			return ok
		})
	}), nil
}

// MinBy returns the element minimising key; false when empty.
func MinBy[T any](d *Dataset[T], key func(T) float64) (T, bool, error) {
	return d.Reduce(func(a, b T) T {
		if key(b) < key(a) {
			return b
		}
		return a
	})
}

// MaxBy returns the element maximising key; false when empty.
func MaxBy[T any](d *Dataset[T], key func(T) float64) (T, bool, error) {
	return d.Reduce(func(a, b T) T {
		if key(b) > key(a) {
			return b
		}
		return a
	})
}

// SumBy returns the sum of key over all elements.
func SumBy[T any](d *Dataset[T], key func(T) float64) (float64, error) {
	return Aggregate(d, 0.0,
		func(acc float64, v T) float64 { return acc + key(v) },
		func(a, b float64) float64 { return a + b })
}

// Stats holds summary statistics of a numeric projection.
type Stats struct {
	Count          int64
	Sum, Min, Max  float64
	Mean, Variance float64
}

// StatsBy computes count/sum/min/max/mean/variance of key over the
// dataset in one pass (Chan et al. parallel variance merge).
func StatsBy[T any](d *Dataset[T], key func(T) float64) (Stats, error) {
	type acc struct {
		n        int64
		mean, m2 float64
		sum      float64
		min, max float64
		has      bool
	}
	merge := func(a, b acc) acc {
		if !a.has {
			return b
		}
		if !b.has {
			return a
		}
		n := a.n + b.n
		delta := b.mean - a.mean
		out := acc{
			n:    n,
			mean: a.mean + delta*float64(b.n)/float64(n),
			m2:   a.m2 + b.m2 + delta*delta*float64(a.n)*float64(b.n)/float64(n),
			sum:  a.sum + b.sum,
			min:  a.min, max: a.max, has: true,
		}
		if b.min < out.min {
			out.min = b.min
		}
		if b.max > out.max {
			out.max = b.max
		}
		return out
	}
	total, err := Aggregate(d, acc{},
		func(a acc, v T) acc {
			x := key(v)
			if !a.has {
				return acc{n: 1, mean: x, sum: x, min: x, max: x, has: true}
			}
			a.n++
			delta := x - a.mean
			a.mean += delta / float64(a.n)
			a.m2 += delta * (x - a.mean)
			a.sum += x
			if x < a.min {
				a.min = x
			}
			if x > a.max {
				a.max = x
			}
			return a
		}, merge)
	if err != nil {
		return Stats{}, err
	}
	if !total.has {
		return Stats{}, nil
	}
	variance := 0.0
	if total.n > 1 {
		variance = total.m2 / float64(total.n)
	}
	return Stats{
		Count: total.n, Sum: total.sum, Min: total.min, Max: total.max,
		Mean: total.mean, Variance: variance,
	}, nil
}
