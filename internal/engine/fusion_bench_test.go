package engine

import (
	"testing"
)

// Benchmarks comparing the fused streaming pipeline against the seed
// slice-per-step execution model on the canonical 3-step narrow
// chain (map ∘ filter ∘ map) over 100k elements. Run with
//
//	go test -bench Chain -benchmem ./internal/engine/
//
// The interesting columns are allocs/op and B/op: fusion removes
// every intermediate per-step slice, and streaming actions (Count,
// Reduce) avoid materialising anything at all.

func benchData() ([]int, *Context) {
	return intRange(100_000), NewContext(4)
}

func BenchmarkChainCountFused(b *testing.B) {
	data, ctx := benchData()
	base := Parallelize(ctx, data, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fusedAllocChain(base).Count(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChainCountSeedStyle(b *testing.B) {
	data, ctx := benchData()
	base := Parallelize(ctx, data, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := seedAllocChain(base).Count(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChainCollectFused(b *testing.B) {
	data, ctx := benchData()
	base := Parallelize(ctx, data, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fusedAllocChain(base).Collect(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChainCollectSeedStyle(b *testing.B) {
	data, ctx := benchData()
	base := Parallelize(ctx, data, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := seedAllocChain(base).Collect(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChainReduceFused(b *testing.B) {
	data, ctx := benchData()
	base := Parallelize(ctx, data, 4)
	sum := func(a, v int) int { return a + v }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := fusedAllocChain(base).Reduce(sum); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChainTakeFused(b *testing.B) {
	data, ctx := benchData()
	base := Parallelize(ctx, data, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := fusedAllocChain(base).Take(10)
		if err != nil {
			b.Fatal(err)
		}
		if len(out) != 10 {
			b.Fatalf("take = %d rows", len(out))
		}
	}
}

func BenchmarkChainTakeSeedStyle(b *testing.B) {
	data, ctx := benchData()
	base := Parallelize(ctx, data, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := seedAllocChain(base).Take(10)
		if err != nil {
			b.Fatal(err)
		}
		if len(out) != 10 {
			b.Fatalf("take = %d rows", len(out))
		}
	}
}
