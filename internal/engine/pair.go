package engine

import (
	"sync"
)

// Pair is a key-value record. STARK datasets are Pair[STObject, V]:
// the spatio-temporal key plus an arbitrary payload, mirroring
// Spark's RDD[(K, V)].
type Pair[K, V any] struct {
	Key   K
	Value V
}

// NewPair builds a Pair.
func NewPair[K, V any](k K, v V) Pair[K, V] { return Pair[K, V]{Key: k, Value: v} }

// Partitioner assigns keys to partitions, mirroring Spark's
// org.apache.spark.Partitioner. STARK's spatial partitioners
// implement this interface over STObject keys.
type Partitioner[K any] interface {
	// NumPartitions returns the number of target partitions.
	NumPartitions() int
	// PartitionFor maps a key to its partition index in
	// [0, NumPartitions()).
	PartitionFor(key K) int
}

// FuncPartitioner adapts a function to the Partitioner interface.
type FuncPartitioner[K any] struct {
	N  int
	Fn func(key K) int
}

// NumPartitions implements Partitioner.
func (f FuncPartitioner[K]) NumPartitions() int { return f.N }

// PartitionFor implements Partitioner.
func (f FuncPartitioner[K]) PartitionFor(key K) int { return f.Fn(key) }

// PartitionBy shuffles the dataset so that every record lands in the
// partition its key maps to — the engine's wide transformation. The
// returned dataset is materialised eagerly (shuffles are barriers in
// Spark too) and therefore behaves as if cached.
func PartitionBy[K, V any](d *Dataset[Pair[K, V]], part Partitioner[K]) (*Dataset[Pair[K, V]], error) {
	n := part.NumPartitions()
	buckets := make([][]Pair[K, V], n)
	var mu sync.Mutex

	err := d.ctx.runJob(d.recorder(), allPartitions(d.numPart), func(p int) error {
		// Route straight off the fused pipeline into local buckets
		// (no input slice), then merge under one lock per source task.
		local := make([][]Pair[K, V], n)
		var routed int64
		if err := d.EachPartition(p, func(kv Pair[K, V]) bool {
			t := part.PartitionFor(kv.Key)
			if t < 0 {
				t = 0
			} else if t >= n {
				t = n - 1
			}
			local[t] = append(local[t], kv)
			routed++
			return true
		}); err != nil {
			return err
		}
		d.recorder().ShuffledRecords(routed)
		mu.Lock()
		for t := 0; t < n; t++ {
			if len(local[t]) > 0 {
				buckets[t] = append(buckets[t], local[t]...)
			}
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return FromPartitions(d.ctx, buckets), nil
}

// FlatMapToPair re-keys a dataset; a convenience composing FlatMap
// over pair construction.
func FlatMapToPair[T, K, V any](d *Dataset[T], f func(T) []Pair[K, V]) *Dataset[Pair[K, V]] {
	return FlatMap(d, f)
}

// Keys projects the keys of a pair dataset.
func Keys[K, V any](d *Dataset[Pair[K, V]]) *Dataset[K] {
	return Map(d, func(p Pair[K, V]) K { return p.Key })
}

// Values projects the values of a pair dataset.
func Values[K, V any](d *Dataset[Pair[K, V]]) *Dataset[V] {
	return Map(d, func(p Pair[K, V]) V { return p.Value })
}

// MapValues transforms only the values, preserving keys and
// partitioning.
func MapValues[K, V, W any](d *Dataset[Pair[K, V]], f func(V) W) *Dataset[Pair[K, W]] {
	return Map(d, func(p Pair[K, V]) Pair[K, W] {
		return Pair[K, W]{Key: p.Key, Value: f(p.Value)}
	})
}

// GroupByKey gathers all values per comparable key. It shuffles by
// key hash into the same number of partitions as the input.
func GroupByKey[K comparable, V any](d *Dataset[Pair[K, V]], hash func(K) int) (*Dataset[Pair[K, []V]], error) {
	n := d.numPart
	if n == 0 {
		n = 1
	}
	shuffled, err := PartitionBy(d, FuncPartitioner[K]{N: n, Fn: func(k K) int {
		h := hash(k) % n
		if h < 0 {
			h += n
		}
		return h
	}})
	if err != nil {
		return nil, err
	}
	return MapPartitions(shuffled, func(_ int, in []Pair[K, V]) ([]Pair[K, []V], error) {
		groups := make(map[K][]V)
		var order []K
		for _, kv := range in {
			if _, ok := groups[kv.Key]; !ok {
				order = append(order, kv.Key)
			}
			groups[kv.Key] = append(groups[kv.Key], kv.Value)
		}
		out := make([]Pair[K, []V], 0, len(order))
		for _, k := range order {
			out = append(out, Pair[K, []V]{Key: k, Value: groups[k]})
		}
		return out, nil
	}), nil
}

// ReduceByKey combines values per comparable key with f.
func ReduceByKey[K comparable, V any](d *Dataset[Pair[K, V]], hash func(K) int, f func(a, b V) V) (*Dataset[Pair[K, V]], error) {
	grouped, err := GroupByKey(d, hash)
	if err != nil {
		return nil, err
	}
	return Map(grouped, func(p Pair[K, []V]) Pair[K, V] {
		acc := p.Value[0]
		for _, v := range p.Value[1:] {
			acc = f(acc, v)
		}
		return Pair[K, V]{Key: p.Key, Value: acc}
	}), nil
}

// CountByKey returns the number of records per key.
func CountByKey[K comparable, V any](d *Dataset[Pair[K, V]]) (map[K]int64, error) {
	var mu sync.Mutex
	counts := make(map[K]int64)
	err := d.ctx.runJob(d.recorder(), allPartitions(d.numPart), func(p int) error {
		local := make(map[K]int64)
		if err := d.EachPartition(p, func(kv Pair[K, V]) bool {
			local[kv.Key]++
			return true
		}); err != nil {
			return err
		}
		mu.Lock()
		for k, c := range local {
			counts[k] += c
		}
		mu.Unlock()
		return nil
	})
	return counts, err
}

// CartesianPartitions runs fn over every pair of partitions of a and
// b — the building block for the naive (broadcast nested loop) join
// baselines. fn receives both partition slices and returns the join
// outputs for that partition pair; the results of all pairs are
// concatenated in an unspecified order.
func CartesianPartitions[A, B, R any](a *Dataset[A], b *Dataset[B], fn func(pa []A, pb []B) []R) ([]R, error) {
	type pairIdx struct{ i, j int }
	tasks := make([]pairIdx, 0, a.numPart*b.numPart)
	for i := 0; i < a.numPart; i++ {
		for j := 0; j < b.numPart; j++ {
			tasks = append(tasks, pairIdx{i, j})
		}
	}
	results := make([][]R, len(tasks))
	idxs := allPartitions(len(tasks))
	err := a.ctx.runJob(a.recorder(), idxs, func(t int) error {
		pa, err := a.ComputePartition(tasks[t].i)
		if err != nil {
			return err
		}
		pb, err := b.ComputePartition(tasks[t].j)
		if err != nil {
			return err
		}
		results[t] = fn(pa, pb)
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []R
	for _, r := range results {
		out = append(out, r...)
	}
	return out, nil
}
