package engine

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
)

// Dataset is an immutable, lazily evaluated, partitioned collection —
// the engine's RDD. A Dataset records how to compute each of its
// partitions from its parents (its lineage); nothing is materialised
// until an action (Collect, Count, Reduce, Foreach) runs a job.
//
// The lineage is a pull-based streaming plan: each(p, yield) drives
// every element of partition p through yield, one at a time. A chain
// of narrow transformations (Map, Filter, FlatMap, Sample) therefore
// compiles into a single fused loop per partition with no intermediate
// slices — the per-partition pipeline execution Spark gives STARK for
// free. Fusion breaks only at explicit materialisation points: Cache,
// shuffles (PartitionBy), and MapPartitions, which needs the whole
// partition as a slice. yield returning false stops the stream
// mid-partition, so actions like Take, First and Exists terminate
// early without computing elements they will never consume.
//
// Transformations that change the element type are package functions
// (Map, FlatMap, MapPartitions) because Go methods cannot introduce
// type parameters; same-type transformations (Filter, Union, Sample)
// are methods.
type Dataset[T any] struct {
	ctx     *Context
	name    string
	numPart int
	// id is the lineage node's generation number, unique across the
	// process (see Dataset.ID).
	id int64

	// each streams partition p through yield; it returns early (nil)
	// when yield returns false.
	each func(p int, yield func(T) bool) error
	// source, when non-nil, materialises partition p without running
	// the streaming plan — set for datasets that already hold their
	// partitions as slices (Parallelize, FromPartitions), so
	// ComputePartition on them stays zero-copy.
	source func(p int) ([]T, error)
	// hint, when non-nil, returns an upper bound on the element count
	// of partition p (or a negative value when unknown). Narrow
	// count-preserving or shrinking transformations propagate it so
	// materialisation can preallocate instead of growing by appends.
	hint func(p int) int

	// rec, when non-nil, is the recorder the dataset's actions charge
	// their tasks to (see WithRecorder); nil selects the context's
	// root recorder. Narrow transformations propagate it.
	rec *Recorder

	// cacheOn may be read by ComputePartition/EachPartition without
	// holding cacheMu (the hot path of every task), so it is atomic;
	// the cached/cachedOK slices are only touched under cacheMu.
	cacheMu  sync.Mutex
	cacheOn  atomic.Bool
	cached   [][]T
	cachedOK []bool
}

// datasetGen issues process-wide unique lineage node IDs. The counter
// never resets, so a dataset built later always has a larger ID: the
// ID doubles as a generation number for consumers that key caches on
// dataset identity (re-building a source invalidates by construction).
var datasetGen atomic.Int64

// newStream wires a lineage node from a streaming plan.
func newStream[T any](ctx *Context, name string, numPart int, each func(p int, yield func(T) bool) error) *Dataset[T] {
	return &Dataset[T]{ctx: ctx, name: name, numPart: numPart, id: datasetGen.Add(1), each: each}
}

// NewStream builds a dataset directly from a streaming partition plan
// — the extension point operators outside the engine use to splice
// custom fused stages (counting scans, probe pipelines) into a
// lineage. each must stream partition p through yield and stop as
// soon as yield returns false.
func NewStream[T any](ctx *Context, name string, numPart int, each func(p int, yield func(T) bool) error) *Dataset[T] {
	return newStream(ctx, name, numPart, each)
}

// newDataset wires a lineage node from a slice-producing compute
// function — the pre-fusion representation, kept for sources and
// tests that naturally produce whole partitions.
func newDataset[T any](ctx *Context, name string, numPart int, compute func(p int) ([]T, error)) *Dataset[T] {
	return newSource(ctx, name, numPart, compute)
}

// newSource wires a lineage node whose partitions already exist as
// slices; the streaming plan iterates them.
func newSource[T any](ctx *Context, name string, numPart int, source func(p int) ([]T, error)) *Dataset[T] {
	d := &Dataset[T]{ctx: ctx, name: name, numPart: numPart, id: datasetGen.Add(1), source: source}
	d.each = func(p int, yield func(T) bool) error {
		in, err := source(p)
		if err != nil {
			return err
		}
		for _, v := range in {
			if !yield(v) {
				return nil
			}
		}
		return nil
	}
	return d
}

// Parallelize distributes data across numPartitions partitions as
// contiguous index ranges — Spark's default slicing — so element
// order and locality are preserved within each partition.
func Parallelize[T any](ctx *Context, data []T, numPartitions int) *Dataset[T] {
	if numPartitions <= 0 {
		numPartitions = ctx.parallelism
	}
	n := len(data)
	np := numPartitions
	d := newSource(ctx, "parallelize", np, func(p int) ([]T, error) {
		lo := p * n / np
		hi := (p + 1) * n / np
		return data[lo:hi], nil
	})
	d.hint = func(p int) int { return (p+1)*n/np - p*n/np }
	return d
}

// FromPartitions builds a dataset whose partitions are exactly the
// given slices. The slices are not copied.
func FromPartitions[T any](ctx *Context, parts [][]T) *Dataset[T] {
	d := newSource(ctx, "fromPartitions", len(parts), func(p int) ([]T, error) {
		return parts[p], nil
	})
	d.hint = func(p int) int { return len(parts[p]) }
	return d
}

// Context returns the owning context.
func (d *Dataset[T]) Context() *Context { return d.ctx }

// Name returns the lineage node name, for diagnostics.
func (d *Dataset[T]) Name() string { return d.name }

// ID returns the process-wide unique generation number of this
// lineage node. Two Dataset values share an ID only when they are the
// same node; re-creating a logically identical dataset yields a fresh
// ID. Result caches key on it so re-registering a dataset invalidates
// every cached entry by construction.
func (d *Dataset[T]) ID() int64 { return d.id }

// NumPartitions returns the partition count.
func (d *Dataset[T]) NumPartitions() int { return d.numPart }

// recorder returns the recorder actions on this dataset charge, the
// context's root recorder unless WithRecorder installed another.
func (d *Dataset[T]) recorder() *Recorder {
	if d.rec != nil {
		return d.rec
	}
	return &d.ctx.rootRec
}

// WithRecorder returns a view of the dataset whose actions charge
// their tasks to rec instead of the context's root recorder. The view
// shares the receiver's lineage ID and — by delegating through the
// parent's accessor methods — its cache state and zero-copy source,
// so it is purely an attribution overlay: same partitions, same
// compute-once semantics, different ledger. A nil rec returns the
// receiver unchanged.
func (d *Dataset[T]) WithRecorder(rec *Recorder) *Dataset[T] {
	if rec == nil || d.rec == rec {
		return d
	}
	v := &Dataset[T]{
		ctx:     d.ctx,
		name:    d.name,
		numPart: d.numPart,
		id:      d.id,
		rec:     rec,
		each:    d.EachPartition,
		hint:    d.partitionHint,
	}
	if d.source != nil {
		// Preserve the zero-copy materialisation path (and the chunked
		// window iteration it enables) through the parent's cache.
		v.source = d.ComputePartition
	}
	return v
}

// maxMaterialiseHint caps how much capacity a size hint may
// preallocate, bounding transient overcommit when a highly selective
// filter reports its parent's size as the upper bound.
const maxMaterialiseHint = 1 << 16

// partitionHint returns the upper-bound size of partition p, or -1
// when unknown.
func (d *Dataset[T]) partitionHint(p int) int {
	if d.hint == nil {
		return -1
	}
	return d.hint(p)
}

// materialise runs the partition into a slice, preferring the
// zero-copy source when the dataset holds its partitions already.
func (d *Dataset[T]) materialise(p int) ([]T, error) {
	if d.source != nil {
		return d.source(p)
	}
	var out []T
	if h := d.partitionHint(p); h > 0 {
		if h > maxMaterialiseHint {
			h = maxMaterialiseHint
		}
		out = make([]T, 0, h)
	}
	err := d.each(p, func(v T) bool {
		out = append(out, v)
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ComputePartition materialises one partition, honouring the cache.
// For a chain of narrow transformations this runs the whole fused
// pipeline into a single output slice — no intermediates.
func (d *Dataset[T]) ComputePartition(p int) ([]T, error) {
	if p < 0 || p >= d.numPart {
		return nil, fmt.Errorf("engine: partition %d out of range [0, %d)", p, d.numPart)
	}
	if !d.cacheOn.Load() {
		return d.materialise(p)
	}
	d.cacheMu.Lock()
	if d.cachedOK == nil {
		// Unpersist raced with the flag read; behave as uncached.
		d.cacheMu.Unlock()
		return d.materialise(p)
	}
	if d.cachedOK[p] {
		out := d.cached[p]
		d.cacheMu.Unlock()
		return out, nil
	}
	d.cacheMu.Unlock()
	out, err := d.materialise(p)
	if err != nil {
		return nil, err
	}
	d.cacheMu.Lock()
	if d.cachedOK != nil {
		d.cached[p] = out
		d.cachedOK[p] = true
	}
	d.cacheMu.Unlock()
	return out, nil
}

// EachPartition streams partition p through yield, stopping as soon
// as yield returns false. On an uncached dataset this pulls elements
// straight through the fused pipeline; on a cached one the partition
// is materialised (at most once) and the cached slice is replayed, so
// caching keeps its compute-once guarantee and remains a fusion
// barrier.
func (d *Dataset[T]) EachPartition(p int, yield func(T) bool) error {
	if p < 0 || p >= d.numPart {
		return fmt.Errorf("engine: partition %d out of range [0, %d)", p, d.numPart)
	}
	if !d.cacheOn.Load() {
		return d.each(p, yield)
	}
	out, err := d.ComputePartition(p)
	if err != nil {
		return err
	}
	for _, v := range out {
		if !yield(v) {
			return nil
		}
	}
	return nil
}

// EachPartitionChunks streams partition p through yield in slices of
// at most chunk elements, stopping when yield returns false. Sourced
// and cached datasets hand out zero-copy windows of their backing
// slice — callers must treat chunks as read-only and valid only until
// the next yield; other datasets fall back to accumulating chunk-sized
// buffers from the fused element stream. Batch consumers (the columnar
// scan kernels) use this to sweep columns without a per-element call.
func (d *Dataset[T]) EachPartitionChunks(p int, chunk int, yield func([]T) bool) error {
	if p < 0 || p >= d.numPart {
		return fmt.Errorf("engine: partition %d out of range [0, %d)", p, d.numPart)
	}
	if chunk <= 0 {
		chunk = 1 << 12
	}
	if d.source != nil || d.cacheOn.Load() {
		out, err := d.ComputePartition(p)
		if err != nil {
			return err
		}
		for len(out) > 0 {
			n := chunk
			if n > len(out) {
				n = len(out)
			}
			if !yield(out[:n]) {
				return nil
			}
			out = out[n:]
		}
		return nil
	}
	buf := make([]T, 0, chunk)
	stopped := false
	err := d.each(p, func(v T) bool {
		buf = append(buf, v)
		if len(buf) == chunk {
			if !yield(buf) {
				stopped = true
				return false
			}
			buf = buf[:0]
		}
		return true
	})
	if err != nil {
		return err
	}
	if !stopped && len(buf) > 0 {
		yield(buf)
	}
	return nil
}

// Cache marks the dataset for materialisation: each partition is
// computed at most once and retained in memory, mirroring
// RDD.cache(). It returns the receiver for chaining. Cache is a
// fusion barrier: downstream pipelines stream from the cached slices
// instead of re-running the upstream plan.
func (d *Dataset[T]) Cache() *Dataset[T] {
	d.cacheMu.Lock()
	defer d.cacheMu.Unlock()
	if !d.cacheOn.Load() {
		d.cached = make([][]T, d.numPart)
		d.cachedOK = make([]bool, d.numPart)
		d.cacheOn.Store(true)
	}
	return d
}

// Unpersist drops cached partitions and disables caching.
func (d *Dataset[T]) Unpersist() {
	d.cacheMu.Lock()
	defer d.cacheMu.Unlock()
	d.cacheOn.Store(false)
	d.cached = nil
	d.cachedOK = nil
}

// ---- Narrow transformations ----
// Each one wraps the parent's streaming plan: chains fuse into one
// loop per partition.

// Map applies f to every element.
func Map[T, U any](d *Dataset[T], f func(T) U) *Dataset[U] {
	m := newStream(d.ctx, d.name+".map", d.numPart, func(p int, yield func(U) bool) error {
		return d.EachPartition(p, func(v T) bool {
			return yield(f(v))
		})
	})
	m.hint = d.partitionHint // count-preserving
	m.rec = d.rec
	return m
}

// FlatMap applies f to every element and concatenates the results.
func FlatMap[T, U any](d *Dataset[T], f func(T) []U) *Dataset[U] {
	m := newStream(d.ctx, d.name+".flatMap", d.numPart, func(p int, yield func(U) bool) error {
		return d.EachPartition(p, func(v T) bool {
			for _, u := range f(v) {
				if !yield(u) {
					return false
				}
			}
			return true
		})
	})
	m.rec = d.rec
	return m
}

// MapPartitions transforms whole partitions at once; idx is the
// partition index (Spark's mapPartitionsWithIndex). It is a
// materialisation point: the parent partition is computed into a
// slice before f runs (f needs random access), and fusion restarts
// downstream of the result.
func MapPartitions[T, U any](d *Dataset[T], f func(idx int, in []T) ([]U, error)) *Dataset[U] {
	m := newStream(d.ctx, d.name+".mapPartitions", d.numPart, func(p int, yield func(U) bool) error {
		in, err := d.ComputePartition(p)
		if err != nil {
			return err
		}
		out, err := f(p, in)
		if err != nil {
			return err
		}
		for _, v := range out {
			if !yield(v) {
				return nil
			}
		}
		return nil
	})
	m.rec = d.rec
	return m
}

// Filter keeps the elements for which pred is true.
func (d *Dataset[T]) Filter(pred func(T) bool) *Dataset[T] {
	f := newStream(d.ctx, d.name+".filter", d.numPart, func(p int, yield func(T) bool) error {
		return d.EachPartition(p, func(v T) bool {
			if !pred(v) {
				return true
			}
			return yield(v)
		})
	})
	f.hint = d.partitionHint // parent size stays an upper bound
	f.rec = d.rec
	return f
}

// Union concatenates two datasets partition-wise (their partitions
// are kept side by side, as in RDD.union).
func (d *Dataset[T]) Union(o *Dataset[T]) *Dataset[T] {
	n1 := d.numPart
	u := newStream(d.ctx, d.name+".union", n1+o.numPart, func(p int, yield func(T) bool) error {
		if p < n1 {
			return d.EachPartition(p, yield)
		}
		return o.EachPartition(p-n1, yield)
	})
	u.hint = func(p int) int {
		if p < n1 {
			return d.partitionHint(p)
		}
		return o.partitionHint(p - n1)
	}
	u.rec = d.rec
	return u
}

// Sample returns a dataset keeping each element with probability
// fraction, deterministically derived from seed and the partition
// index.
func (d *Dataset[T]) Sample(fraction float64, seed int64) *Dataset[T] {
	s := newStream(d.ctx, d.name+".sample", d.numPart, func(p int, yield func(T) bool) error {
		rng := rand.New(rand.NewSource(seed + int64(p)*2654435761))
		return d.EachPartition(p, func(v T) bool {
			if rng.Float64() >= fraction {
				return true
			}
			return yield(v)
		})
	})
	s.hint = d.partitionHint // parent size stays an upper bound
	s.rec = d.rec
	return s
}

// Coalesce reduces the partition count to n without a shuffle by
// concatenating ranges of parent partitions.
func (d *Dataset[T]) Coalesce(n int) *Dataset[T] {
	if n <= 0 || n >= d.numPart {
		return d
	}
	old := d.numPart
	c := newStream(d.ctx, d.name+".coalesce", n, func(p int, yield func(T) bool) error {
		lo := p * old / n
		hi := (p + 1) * old / n
		for i := lo; i < hi; i++ {
			stopped := false
			err := d.EachPartition(i, func(v T) bool {
				if !yield(v) {
					stopped = true
					return false
				}
				return true
			})
			if err != nil || stopped {
				return err
			}
		}
		return nil
	})
	c.rec = d.rec
	return c
}

// ---- Actions ----

// Collect materialises every partition (in parallel) and returns the
// concatenated elements in partition order.
func (d *Dataset[T]) Collect() ([]T, error) {
	return d.CollectPartitions(allPartitions(d.numPart))
}

// CollectPartitions materialises only the listed partitions. Spatial
// operators use this to execute partition-pruned queries: partitions
// whose bounds cannot match are never scheduled.
func (d *Dataset[T]) CollectPartitions(parts []int) ([]T, error) {
	results := make([][]T, d.numPart)
	err := d.ctx.runJob(d.recorder(), parts, func(p int) error {
		out, err := d.ComputePartition(p)
		if err != nil {
			return err
		}
		results[p] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	total := 0
	for _, r := range results {
		total += len(r)
	}
	if total == 0 {
		return nil, nil
	}
	all := make([]T, 0, total)
	for _, r := range results {
		all = append(all, r...)
	}
	return all, nil
}

// Count returns the number of elements. No partition is materialised:
// elements stream through the fused pipeline and only a counter
// survives.
func (d *Dataset[T]) Count() (int64, error) {
	return d.CountPartitions(allPartitions(d.numPart))
}

// CountPartitions counts the elements of only the listed partitions —
// the counting counterpart of CollectPartitions, used by
// partition-pruned queries.
func (d *Dataset[T]) CountPartitions(parts []int) (int64, error) {
	var total atomic.Int64
	err := d.ctx.runJob(d.recorder(), parts, func(p int) error {
		var local int64
		if err := d.EachPartition(p, func(T) bool {
			local++
			return true
		}); err != nil {
			return err
		}
		total.Add(local)
		return nil
	})
	return total.Load(), err
}

// Reduce combines all elements with f, streaming each partition
// through a local accumulator; it returns false when the dataset is
// empty. f must be associative and commutative, as in Spark.
func (d *Dataset[T]) Reduce(f func(a, b T) T) (T, bool, error) {
	return d.ReducePartitions(allPartitions(d.numPart), f)
}

// ReducePartitions is Reduce restricted to the listed partitions —
// the reducing counterpart of CollectPartitions for partition-pruned
// queries.
func (d *Dataset[T]) ReducePartitions(parts []int, f func(a, b T) T) (T, bool, error) {
	var (
		mu   sync.Mutex
		acc  T
		have bool
	)
	err := d.ctx.runJob(d.recorder(), parts, func(p int) error {
		var (
			local     T
			haveLocal bool
		)
		if err := d.EachPartition(p, func(v T) bool {
			if haveLocal {
				local = f(local, v)
			} else {
				local, haveLocal = v, true
			}
			return true
		}); err != nil {
			return err
		}
		if !haveLocal {
			return nil
		}
		mu.Lock()
		if have {
			acc = f(acc, local)
		} else {
			acc, have = local, true
		}
		mu.Unlock()
		return nil
	})
	return acc, have, err
}

// Foreach runs fn on every element, partition-parallel, streaming —
// no partition is materialised.
func (d *Dataset[T]) Foreach(fn func(T)) error {
	return d.ForeachPartitions(allPartitions(d.numPart), fn)
}

// ForeachPartitions is Foreach restricted to the listed partitions —
// the side-effecting counterpart of CollectPartitions for
// partition-pruned queries.
func (d *Dataset[T]) ForeachPartitions(parts []int, fn func(T)) error {
	return d.ctx.runJob(d.recorder(), parts, func(p int) error {
		return d.EachPartition(p, func(v T) bool {
			fn(v)
			return true
		})
	})
}

// Take returns up to n elements, scanning partitions in order. The
// scan short-circuits: as soon as n elements are gathered the current
// partition's pipeline stops mid-stream and no further partition is
// touched.
func (d *Dataset[T]) Take(n int) ([]T, error) {
	return d.TakePartitions(allPartitions(d.numPart), n)
}

// TakePartitions is Take restricted to the listed partitions, in the
// order given — the short-circuiting counterpart of CollectPartitions
// for partition-pruned queries.
func (d *Dataset[T]) TakePartitions(parts []int, n int) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	// n is caller-controlled ("take a lot" may mean "everything"), so
	// cap the speculative preallocation like materialise does.
	capHint := n
	if capHint > maxMaterialiseHint {
		capHint = maxMaterialiseHint
	}
	out := make([]T, 0, capHint)
	for _, p := range parts {
		if err := d.EachPartition(p, func(v T) bool {
			out = append(out, v)
			return len(out) < n
		}); err != nil {
			return nil, err
		}
		if len(out) >= n {
			break
		}
	}
	return out, nil
}

// First returns the first element in partition order, streaming and
// stopping at the very first element produced; ok is false when the
// dataset is empty.
func (d *Dataset[T]) First() (T, bool, error) {
	var (
		first T
		found bool
	)
	for p := 0; p < d.numPart && !found; p++ {
		if err := d.EachPartition(p, func(v T) bool {
			first, found = v, true
			return false
		}); err != nil {
			var zero T
			return zero, false, err
		}
	}
	return first, found, nil
}

// Exists reports whether any element satisfies pred. Partitions are
// scanned in parallel; every task stops mid-stream as soon as one
// finds a match.
func (d *Dataset[T]) Exists(pred func(T) bool) (bool, error) {
	return d.ExistsPartitions(allPartitions(d.numPart), pred)
}

// ExistsPartitions is Exists restricted to the listed partitions,
// keeping the parallel short-circuiting scan for partition-pruned
// queries.
func (d *Dataset[T]) ExistsPartitions(parts []int, pred func(T) bool) (bool, error) {
	var found atomic.Bool
	err := d.ctx.runJob(d.recorder(), parts, func(p int) error {
		return d.EachPartition(p, func(v T) bool {
			if found.Load() {
				return false
			}
			if pred(v) {
				found.Store(true)
				return false
			}
			return true
		})
	})
	return found.Load(), err
}

// Stream drives every element through fn sequentially, in partition
// order, without materialising anything; fn returning false stops the
// whole scan. This is the entry point for consumers that need ordered
// streaming output (e.g. encoding rows onto a network socket).
func (d *Dataset[T]) Stream(fn func(T) bool) error {
	return d.StreamPartitions(allPartitions(d.numPart), fn)
}

// StreamPartitions is Stream restricted to the listed partitions, in
// the order given — the streaming counterpart of CollectPartitions
// for partition-pruned queries.
func (d *Dataset[T]) StreamPartitions(parts []int, fn func(T) bool) error {
	stopped := false
	for _, p := range parts {
		if err := d.EachPartition(p, func(v T) bool {
			if !fn(v) {
				stopped = true
				return false
			}
			return true
		}); err != nil {
			return err
		}
		if stopped {
			return nil
		}
	}
	return nil
}

// StreamParallel is StreamPartitionsParallel over every partition
// with the default window width.
func (d *Dataset[T]) StreamParallel(fn func(T) bool) error {
	return d.StreamPartitionsParallel(allPartitions(d.numPart), 0, fn)
}

// StreamPartitionsParallel delivers the rows of the listed partitions
// to fn sequentially, in the given partition order, while computing
// the partitions in parallel: partitions are processed in windows of
// `width` (<= 0 selects the context parallelism), each window's
// pipelines run as one parallel job, and the buffered results are
// replayed in order. Compared to StreamPartitions this trades bounded
// buffering (at most one window of partitions) for partition-parallel
// compute — the right default for network consumers whose per-row
// cost is small relative to the scan. fn returning false stops the
// stream; windows past the current one are never computed.
func (d *Dataset[T]) StreamPartitionsParallel(parts []int, width int, fn func(T) bool) error {
	return d.StreamPartitionsParallelContext(nil, parts, width, fn)
}

// StreamPartitionsParallelContext is StreamPartitionsParallel with
// cooperative cancellation: once ctx is done no further window is
// computed, no further row is delivered, and the stream returns
// ctx.Err() — the hook a server uses to stop a scan when the client
// hangs up or a deadline fires. A nil ctx streams to completion.
func (d *Dataset[T]) StreamPartitionsParallelContext(ctx context.Context, parts []int, width int, fn func(T) bool) error {
	if width <= 0 {
		width = d.ctx.parallelism
	}
	for start := 0; start < len(parts); start += width {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		end := start + width
		if end > len(parts) {
			end = len(parts)
		}
		window := parts[start:end]
		results := make([][]T, len(window))
		idxs := make([]int, len(window))
		for i := range idxs {
			idxs[i] = i
		}
		err := d.ctx.RunJobRecorder(ctx, d.recorder(), idxs, func(i int) error {
			out, err := d.ComputePartition(window[i])
			if err != nil {
				return err
			}
			results[i] = out
			return nil
		})
		if err != nil {
			return err
		}
		for _, rows := range results {
			if ctx != nil {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			for _, v := range rows {
				if !fn(v) {
					return nil
				}
			}
		}
	}
	return nil
}

// PartitionSizes returns the element count of every partition,
// streaming — the balance statistic the partitioning ablation
// reports.
func (d *Dataset[T]) PartitionSizes() ([]int, error) {
	sizes := make([]int, d.numPart)
	err := d.ctx.runJob(d.recorder(), allPartitions(d.numPart), func(p int) error {
		n := 0
		if err := d.EachPartition(p, func(T) bool {
			n++
			return true
		}); err != nil {
			return err
		}
		sizes[p] = n
		return nil
	})
	return sizes, err
}

// SortedCollect is Collect followed by a stable sort with less; a
// convenience for deterministic test assertions.
func (d *Dataset[T]) SortedCollect(less func(a, b T) bool) ([]T, error) {
	out, err := d.Collect()
	if err != nil {
		return nil, err
	}
	sort.SliceStable(out, func(i, j int) bool { return less(out[i], out[j]) })
	return out, nil
}
