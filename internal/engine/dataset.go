package engine

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
)

// Dataset is an immutable, lazily evaluated, partitioned collection —
// the engine's RDD. A Dataset records how to compute each of its
// partitions from its parents (its lineage); nothing is materialised
// until an action (Collect, Count, Reduce, Foreach) runs a job.
//
// Transformations that change the element type are package functions
// (Map, FlatMap, MapPartitions) because Go methods cannot introduce
// type parameters; same-type transformations (Filter, Union, Sample)
// are methods.
type Dataset[T any] struct {
	ctx     *Context
	name    string
	numPart int
	compute func(p int) ([]T, error)

	// cacheOn may be read by ComputePartition without holding
	// cacheMu (the hot path of every task), so it is atomic; the
	// cached/cachedOK slices are only touched under cacheMu.
	cacheMu  sync.Mutex
	cacheOn  atomic.Bool
	cached   [][]T
	cachedOK []bool
}

// newDataset wires a lineage node.
func newDataset[T any](ctx *Context, name string, numPart int, compute func(p int) ([]T, error)) *Dataset[T] {
	return &Dataset[T]{ctx: ctx, name: name, numPart: numPart, compute: compute}
}

// Parallelize distributes data across numPartitions partitions as
// contiguous index ranges — Spark's default slicing — so element
// order and locality are preserved within each partition.
func Parallelize[T any](ctx *Context, data []T, numPartitions int) *Dataset[T] {
	if numPartitions <= 0 {
		numPartitions = ctx.parallelism
	}
	n := len(data)
	return newDataset(ctx, "parallelize", numPartitions, func(p int) ([]T, error) {
		lo := p * n / numPartitions
		hi := (p + 1) * n / numPartitions
		return data[lo:hi], nil
	})
}

// FromPartitions builds a dataset whose partitions are exactly the
// given slices. The slices are not copied.
func FromPartitions[T any](ctx *Context, parts [][]T) *Dataset[T] {
	return newDataset(ctx, "fromPartitions", len(parts), func(p int) ([]T, error) {
		return parts[p], nil
	})
}

// Context returns the owning context.
func (d *Dataset[T]) Context() *Context { return d.ctx }

// Name returns the lineage node name, for diagnostics.
func (d *Dataset[T]) Name() string { return d.name }

// NumPartitions returns the partition count.
func (d *Dataset[T]) NumPartitions() int { return d.numPart }

// ComputePartition materialises one partition, honouring the cache.
func (d *Dataset[T]) ComputePartition(p int) ([]T, error) {
	if p < 0 || p >= d.numPart {
		return nil, fmt.Errorf("engine: partition %d out of range [0, %d)", p, d.numPart)
	}
	if !d.cacheOn.Load() {
		return d.compute(p)
	}
	d.cacheMu.Lock()
	if d.cachedOK == nil {
		// Unpersist raced with the flag read; behave as uncached.
		d.cacheMu.Unlock()
		return d.compute(p)
	}
	if d.cachedOK[p] {
		out := d.cached[p]
		d.cacheMu.Unlock()
		return out, nil
	}
	d.cacheMu.Unlock()
	out, err := d.compute(p)
	if err != nil {
		return nil, err
	}
	d.cacheMu.Lock()
	if d.cachedOK != nil {
		d.cached[p] = out
		d.cachedOK[p] = true
	}
	d.cacheMu.Unlock()
	return out, nil
}

// Cache marks the dataset for materialisation: each partition is
// computed at most once and retained in memory, mirroring
// RDD.cache(). It returns the receiver for chaining.
func (d *Dataset[T]) Cache() *Dataset[T] {
	d.cacheMu.Lock()
	defer d.cacheMu.Unlock()
	if !d.cacheOn.Load() {
		d.cached = make([][]T, d.numPart)
		d.cachedOK = make([]bool, d.numPart)
		d.cacheOn.Store(true)
	}
	return d
}

// Unpersist drops cached partitions and disables caching.
func (d *Dataset[T]) Unpersist() {
	d.cacheMu.Lock()
	defer d.cacheMu.Unlock()
	d.cacheOn.Store(false)
	d.cached = nil
	d.cachedOK = nil
}

// ---- Narrow transformations ----

// Map applies f to every element.
func Map[T, U any](d *Dataset[T], f func(T) U) *Dataset[U] {
	return newDataset(d.ctx, d.name+".map", d.numPart, func(p int) ([]U, error) {
		in, err := d.ComputePartition(p)
		if err != nil {
			return nil, err
		}
		out := make([]U, len(in))
		for i, v := range in {
			out[i] = f(v)
		}
		return out, nil
	})
}

// FlatMap applies f to every element and concatenates the results.
func FlatMap[T, U any](d *Dataset[T], f func(T) []U) *Dataset[U] {
	return newDataset(d.ctx, d.name+".flatMap", d.numPart, func(p int) ([]U, error) {
		in, err := d.ComputePartition(p)
		if err != nil {
			return nil, err
		}
		var out []U
		for _, v := range in {
			out = append(out, f(v)...)
		}
		return out, nil
	})
}

// MapPartitions transforms whole partitions at once; idx is the
// partition index (Spark's mapPartitionsWithIndex).
func MapPartitions[T, U any](d *Dataset[T], f func(idx int, in []T) ([]U, error)) *Dataset[U] {
	return newDataset(d.ctx, d.name+".mapPartitions", d.numPart, func(p int) ([]U, error) {
		in, err := d.ComputePartition(p)
		if err != nil {
			return nil, err
		}
		return f(p, in)
	})
}

// Filter keeps the elements for which pred is true.
func (d *Dataset[T]) Filter(pred func(T) bool) *Dataset[T] {
	return newDataset(d.ctx, d.name+".filter", d.numPart, func(p int) ([]T, error) {
		in, err := d.ComputePartition(p)
		if err != nil {
			return nil, err
		}
		var out []T
		for _, v := range in {
			if pred(v) {
				out = append(out, v)
			}
		}
		return out, nil
	})
}

// Union concatenates two datasets partition-wise (their partitions
// are kept side by side, as in RDD.union).
func (d *Dataset[T]) Union(o *Dataset[T]) *Dataset[T] {
	n1 := d.numPart
	return newDataset(d.ctx, d.name+".union", n1+o.numPart, func(p int) ([]T, error) {
		if p < n1 {
			return d.ComputePartition(p)
		}
		return o.ComputePartition(p - n1)
	})
}

// Sample returns a dataset keeping each element with probability
// fraction, deterministically derived from seed and the partition
// index.
func (d *Dataset[T]) Sample(fraction float64, seed int64) *Dataset[T] {
	return newDataset(d.ctx, d.name+".sample", d.numPart, func(p int) ([]T, error) {
		in, err := d.ComputePartition(p)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(seed + int64(p)*2654435761))
		var out []T
		for _, v := range in {
			if rng.Float64() < fraction {
				out = append(out, v)
			}
		}
		return out, nil
	})
}

// Coalesce reduces the partition count to n without a shuffle by
// concatenating ranges of parent partitions.
func (d *Dataset[T]) Coalesce(n int) *Dataset[T] {
	if n <= 0 || n >= d.numPart {
		return d
	}
	old := d.numPart
	return newDataset(d.ctx, d.name+".coalesce", n, func(p int) ([]T, error) {
		lo := p * old / n
		hi := (p + 1) * old / n
		var out []T
		for i := lo; i < hi; i++ {
			part, err := d.ComputePartition(i)
			if err != nil {
				return nil, err
			}
			out = append(out, part...)
		}
		return out, nil
	})
}

// ---- Actions ----

// Collect materialises every partition (in parallel) and returns the
// concatenated elements in partition order.
func (d *Dataset[T]) Collect() ([]T, error) {
	return d.CollectPartitions(allPartitions(d.numPart))
}

// CollectPartitions materialises only the listed partitions. Spatial
// operators use this to execute partition-pruned queries: partitions
// whose bounds cannot match are never scheduled.
func (d *Dataset[T]) CollectPartitions(parts []int) ([]T, error) {
	results := make([][]T, d.numPart)
	err := d.ctx.runJob(parts, func(p int) error {
		out, err := d.ComputePartition(p)
		if err != nil {
			return err
		}
		results[p] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	var all []T
	for _, r := range results {
		all = append(all, r...)
	}
	return all, nil
}

// Count returns the number of elements.
func (d *Dataset[T]) Count() (int64, error) {
	return d.CountPartitions(allPartitions(d.numPart))
}

// CountPartitions counts the elements of only the listed partitions —
// the counting counterpart of CollectPartitions, used by
// partition-pruned queries.
func (d *Dataset[T]) CountPartitions(parts []int) (int64, error) {
	var total int64
	var mu sync.Mutex
	err := d.ctx.runJob(parts, func(p int) error {
		out, err := d.ComputePartition(p)
		if err != nil {
			return err
		}
		mu.Lock()
		total += int64(len(out))
		mu.Unlock()
		return nil
	})
	return total, err
}

// Reduce combines all elements with f; it returns false when the
// dataset is empty. f must be associative and commutative, as in
// Spark.
func (d *Dataset[T]) Reduce(f func(a, b T) T) (T, bool, error) {
	var (
		mu    sync.Mutex
		acc   T
		have  bool
		parts = allPartitions(d.numPart)
	)
	err := d.ctx.runJob(parts, func(p int) error {
		out, err := d.ComputePartition(p)
		if err != nil {
			return err
		}
		if len(out) == 0 {
			return nil
		}
		local := out[0]
		for _, v := range out[1:] {
			local = f(local, v)
		}
		mu.Lock()
		if have {
			acc = f(acc, local)
		} else {
			acc, have = local, true
		}
		mu.Unlock()
		return nil
	})
	return acc, have, err
}

// Foreach runs fn on every element, partition-parallel.
func (d *Dataset[T]) Foreach(fn func(T)) error {
	return d.ctx.runJob(allPartitions(d.numPart), func(p int) error {
		out, err := d.ComputePartition(p)
		if err != nil {
			return err
		}
		for _, v := range out {
			fn(v)
		}
		return nil
	})
}

// Take returns up to n elements, scanning partitions in order.
func (d *Dataset[T]) Take(n int) ([]T, error) {
	var out []T
	for p := 0; p < d.numPart && len(out) < n; p++ {
		part, err := d.ComputePartition(p)
		if err != nil {
			return nil, err
		}
		need := n - len(out)
		if need > len(part) {
			need = len(part)
		}
		out = append(out, part[:need]...)
	}
	return out, nil
}

// PartitionSizes materialises all partitions and returns their
// element counts — the balance statistic the partitioning ablation
// reports.
func (d *Dataset[T]) PartitionSizes() ([]int, error) {
	sizes := make([]int, d.numPart)
	err := d.ctx.runJob(allPartitions(d.numPart), func(p int) error {
		out, err := d.ComputePartition(p)
		if err != nil {
			return err
		}
		sizes[p] = len(out)
		return nil
	})
	return sizes, err
}

// SortedCollect is Collect followed by a stable sort with less; a
// convenience for deterministic test assertions.
func (d *Dataset[T]) SortedCollect(less func(a, b T) bool) ([]T, error) {
	out, err := d.Collect()
	if err != nil {
		return nil, err
	}
	sort.SliceStable(out, func(i, j int) bool { return less(out[i], out[j]) })
	return out, nil
}
