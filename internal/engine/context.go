// Package engine implements the distributed-dataflow substrate STARK
// runs on. It is a from-scratch, in-process stand-in for the Apache
// Spark core the paper builds on: immutable, lazily evaluated,
// partitioned datasets with lineage; narrow transformations (map,
// filter, flatMap, mapPartitions) that run partition-local; a wide
// PartitionBy transformation that shuffles records between partitions
// according to a Partitioner; and a task scheduler that executes one
// task per partition on a pool of simulated executors (goroutines).
//
// The engine is deliberately faithful to the parts of Spark that the
// STARK evaluation exercises: partition-parallel execution, shuffle
// cost when repartitioning, the Partitioner extension point that
// spatial partitioners plug into, and the ability to skip (prune)
// partitions entirely when their bounds cannot contribute to a query.
package engine

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Context coordinates job execution. It plays the role of the
// SparkContext: it owns the executor pool and collects metrics.
type Context struct {
	parallelism int
	sem         chan struct{}
	metrics     Metrics
	// rootRec is the context's root recorder: it writes straight into
	// metrics with no job-local attribution. Jobs that need per-query
	// actuals run under a NewJobRecorder instead.
	rootRec Recorder
}

// Metrics aggregates counters across all jobs run on a context. All
// fields are updated atomically and may be read while jobs run.
type Metrics struct {
	TasksLaunched     atomic.Int64 // partition tasks scheduled
	TasksSkipped      atomic.Int64 // partitions pruned before scheduling
	ElementsScanned   atomic.Int64 // records passed through predicate evaluation
	ShuffledRecords   atomic.Int64 // records moved by PartitionBy
	IndexProbes       atomic.Int64 // R-tree queries issued
	CandidatesRefined atomic.Int64 // index candidates checked exactly
	StatsRecords      atomic.Int64 // records summarised by planner statistics passes
	LiveBatches       atomic.Int64 // mutation batches applied to live datasets
	LiveMutations     atomic.Int64 // individual insert/upsert/delete operations applied
	KernelBatches     atomic.Int64 // column chunks swept by columnar scan kernels
	KernelSurvivors   atomic.Int64 // rows surviving coarse kernels into exact refinement
}

// Snapshot returns a plain-struct copy of the counters.
func (m *Metrics) Snapshot() MetricsSnapshot {
	return MetricsSnapshot{
		TasksLaunched:     m.TasksLaunched.Load(),
		TasksSkipped:      m.TasksSkipped.Load(),
		ElementsScanned:   m.ElementsScanned.Load(),
		ShuffledRecords:   m.ShuffledRecords.Load(),
		IndexProbes:       m.IndexProbes.Load(),
		CandidatesRefined: m.CandidatesRefined.Load(),
		StatsRecords:      m.StatsRecords.Load(),
		LiveBatches:       m.LiveBatches.Load(),
		LiveMutations:     m.LiveMutations.Load(),
		KernelBatches:     m.KernelBatches.Load(),
		KernelSurvivors:   m.KernelSurvivors.Load(),
	}
}

// Reset zeroes all counters.
func (m *Metrics) Reset() {
	m.TasksLaunched.Store(0)
	m.TasksSkipped.Store(0)
	m.ElementsScanned.Store(0)
	m.ShuffledRecords.Store(0)
	m.IndexProbes.Store(0)
	m.CandidatesRefined.Store(0)
	m.StatsRecords.Store(0)
	m.LiveBatches.Store(0)
	m.LiveMutations.Store(0)
	m.KernelBatches.Store(0)
	m.KernelSurvivors.Store(0)
}

// MetricsSnapshot is a point-in-time copy of Metrics.
type MetricsSnapshot struct {
	TasksLaunched     int64
	TasksSkipped      int64
	ElementsScanned   int64
	ShuffledRecords   int64
	IndexProbes       int64
	CandidatesRefined int64
	StatsRecords      int64
	LiveBatches       int64
	LiveMutations     int64
	KernelBatches     int64
	KernelSurvivors   int64
}

// NewContext returns a context with the given executor parallelism;
// parallelism <= 0 selects runtime.GOMAXPROCS(0).
func NewContext(parallelism int) *Context {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	c := &Context{
		parallelism: parallelism,
		sem:         make(chan struct{}, parallelism),
	}
	c.rootRec = Recorder{glob: &c.metrics}
	return c
}

// Parallelism returns the number of simulated executors.
func (c *Context) Parallelism() int { return c.parallelism }

// Metrics returns the live metrics of the context.
func (c *Context) Metrics() *Metrics { return &c.metrics }

// Recorder returns the context's root recorder: counter writes land
// only in the context totals, with no per-job attribution.
func (c *Context) Recorder() *Recorder { return &c.rootRec }

// NewJobRecorder returns a recorder with fresh job-local counters in
// front of the context totals. Everything a job charges through it is
// visible both in the recorder's Snapshot (this job only) and in the
// context's Metrics (all jobs), so per-query actuals and global
// dashboards coexist without double bookkeeping at the call sites.
func (c *Context) NewJobRecorder() *Recorder {
	return &Recorder{job: &Metrics{}, glob: &c.metrics}
}

// RunJob executes task(i) for every i in tasks, at most Parallelism
// at a time, and returns the first error. It is the public entry
// point operators use to schedule custom task sets (e.g. partition
// pairs of a spatial join).
func (c *Context) RunJob(tasks []int, task func(t int) error) error {
	return c.runJob(&c.rootRec, tasks, task)
}

// RunJobContext is RunJob with cooperative cancellation: once ctx is
// done, no further task is scheduled and the job returns ctx.Err().
// Tasks already running are not interrupted — like Spark, the engine
// cancels at stage-task granularity — so task bodies that loop over
// large partitions should consult ctx themselves if finer-grained
// abort matters.
func (c *Context) RunJobContext(ctx context.Context, tasks []int, task func(t int) error) error {
	return c.RunJobRecorder(ctx, &c.rootRec, tasks, task)
}

// RunJobRecorder is RunJobContext with explicit metric attribution:
// the scheduled tasks are charged to rec (nil selects the root
// recorder), so operators running on behalf of one query account its
// tasks to that query's recorder. A nil ctx runs to completion.
func (c *Context) RunJobRecorder(ctx context.Context, rec *Recorder, tasks []int, task func(t int) error) error {
	if rec == nil {
		rec = &c.rootRec
	}
	if ctx == nil {
		return c.runJob(rec, tasks, task)
	}
	err := c.runJob(rec, tasks, func(t int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		return task(t)
	})
	// Prefer the context's own error so callers see a plain
	// context.Canceled/DeadlineExceeded rather than a task wrapper.
	if cerr := ctx.Err(); cerr != nil {
		return cerr
	}
	return err
}

// runJob executes task(i) for every i in parts, at most
// c.parallelism at a time, and returns the first error encountered.
// It is the engine's DAG-less equivalent of a Spark stage: every
// element of parts is one task, charged to rec.
func (c *Context) runJob(rec *Recorder, parts []int, task func(p int) error) error {
	if rec == nil {
		rec = &c.rootRec
	}
	if len(parts) == 0 {
		return nil
	}
	if len(parts) == 1 {
		// Fast path: run in the calling goroutine — with the same
		// panic recovery as the pooled path, so a 1-partition job
		// reports a panicking task as an error instead of killing the
		// process.
		rec.TasksLaunched(1)
		return runTask(parts[0], task)
	}
	var (
		wg       sync.WaitGroup
		firstErr error
		errOnce  sync.Once
	)
	for _, p := range parts {
		rec.TasksLaunched(1)
		wg.Add(1)
		c.sem <- struct{}{}
		go func(p int) {
			defer func() {
				<-c.sem
				wg.Done()
			}()
			if err := runTask(p, task); err != nil {
				errOnce.Do(func() { firstErr = err })
			}
		}(p)
	}
	wg.Wait()
	return firstErr
}

// runTask executes one task, converting a panic into an error — the
// engine's stand-in for Spark's task failure handling, applied
// uniformly whether the task runs inline or on the pool.
func runTask(p int, task func(p int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("engine: task %d panicked: %v", p, r)
		}
	}()
	return task(p)
}

// allPartitions returns [0, 1, ..., n-1].
func allPartitions(n int) []int {
	parts := make([]int, n)
	for i := range parts {
		parts[i] = i
	}
	return parts
}
