package engine

import (
	"sync"
	"testing"
)

// TestCacheToggleConcurrentCompute exercises the cacheOn flag from
// concurrent readers (ComputePartition, as every task does) while
// Cache/Unpersist toggle it — the access pattern that used to race.
// Run with -race to verify the synchronisation.
func TestCacheToggleConcurrentCompute(t *testing.T) {
	ctx := NewContext(4)
	data := make([]int, 1024)
	for i := range data {
		data[i] = i
	}
	d := Parallelize(ctx, data, 8)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for p := 0; p < d.NumPartitions(); p++ {
					out, err := d.ComputePartition(p)
					if err != nil {
						t.Error(err)
						return
					}
					if len(out) != 128 {
						t.Errorf("partition %d: %d elements, want 128", p, len(out))
						return
					}
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		d.Cache()
		if _, err := d.Collect(); err != nil {
			t.Fatal(err)
		}
		d.Unpersist()
	}
	close(stop)
	wg.Wait()
}
