package engine

// Recorder attributes engine counters to one job (typically one
// query) while still rolling every increment up into the owning
// context's global totals. A context's root recorder writes only the
// globals; NewJobRecorder returns a recorder with a private job-local
// Metrics in front, so concurrent queries on a shared context each
// read exact per-query actuals from their own recorder while
// dashboards keep reading the context totals. Every write is a pair
// of atomic adds — recorders are safe for concurrent use.
type Recorder struct {
	job  *Metrics // per-job counters; nil on the root recorder
	glob *Metrics // the context totals; never nil
}

// Root reports whether this is the context's root recorder (no
// job-local counters).
func (r *Recorder) Root() bool { return r.job == nil }

// Snapshot returns the job-scoped counters; on the root recorder it
// returns the context totals (the only counters the root has).
func (r *Recorder) Snapshot() MetricsSnapshot {
	if r.job != nil {
		return r.job.Snapshot()
	}
	return r.glob.Snapshot()
}

// TasksLaunched charges n scheduled partition tasks.
func (r *Recorder) TasksLaunched(n int64) {
	if r.job != nil {
		r.job.TasksLaunched.Add(n)
	}
	r.glob.TasksLaunched.Add(n)
}

// TasksSkipped charges n partitions pruned before scheduling.
func (r *Recorder) TasksSkipped(n int64) {
	if r.job != nil {
		r.job.TasksSkipped.Add(n)
	}
	r.glob.TasksSkipped.Add(n)
}

// ElementsScanned charges n records passed through predicate
// evaluation.
func (r *Recorder) ElementsScanned(n int64) {
	if r.job != nil {
		r.job.ElementsScanned.Add(n)
	}
	r.glob.ElementsScanned.Add(n)
}

// ShuffledRecords charges n records moved by PartitionBy.
func (r *Recorder) ShuffledRecords(n int64) {
	if r.job != nil {
		r.job.ShuffledRecords.Add(n)
	}
	r.glob.ShuffledRecords.Add(n)
}

// IndexProbes charges n R-tree queries.
func (r *Recorder) IndexProbes(n int64) {
	if r.job != nil {
		r.job.IndexProbes.Add(n)
	}
	r.glob.IndexProbes.Add(n)
}

// CandidatesRefined charges n index candidates checked exactly.
func (r *Recorder) CandidatesRefined(n int64) {
	if r.job != nil {
		r.job.CandidatesRefined.Add(n)
	}
	r.glob.CandidatesRefined.Add(n)
}

// StatsRecords charges n records summarised by statistics passes.
func (r *Recorder) StatsRecords(n int64) {
	if r.job != nil {
		r.job.StatsRecords.Add(n)
	}
	r.glob.StatsRecords.Add(n)
}

// LiveBatches charges n mutation batches applied to live datasets.
func (r *Recorder) LiveBatches(n int64) {
	if r.job != nil {
		r.job.LiveBatches.Add(n)
	}
	r.glob.LiveBatches.Add(n)
}

// LiveMutations charges n individual live mutation operations.
func (r *Recorder) LiveMutations(n int64) {
	if r.job != nil {
		r.job.LiveMutations.Add(n)
	}
	r.glob.LiveMutations.Add(n)
}

// KernelBatches charges n column chunks swept by columnar kernels.
func (r *Recorder) KernelBatches(n int64) {
	if r.job != nil {
		r.job.KernelBatches.Add(n)
	}
	r.glob.KernelBatches.Add(n)
}

// KernelSurvivors charges n rows surviving coarse kernels into exact
// refinement.
func (r *Recorder) KernelSurvivors(n int64) {
	if r.job != nil {
		r.job.KernelSurvivors.Add(n)
	}
	r.glob.KernelSurvivors.Add(n)
}

// Add returns the field-wise sum of two snapshots.
func (s MetricsSnapshot) Add(o MetricsSnapshot) MetricsSnapshot {
	return MetricsSnapshot{
		TasksLaunched:     s.TasksLaunched + o.TasksLaunched,
		TasksSkipped:      s.TasksSkipped + o.TasksSkipped,
		ElementsScanned:   s.ElementsScanned + o.ElementsScanned,
		ShuffledRecords:   s.ShuffledRecords + o.ShuffledRecords,
		IndexProbes:       s.IndexProbes + o.IndexProbes,
		CandidatesRefined: s.CandidatesRefined + o.CandidatesRefined,
		StatsRecords:      s.StatsRecords + o.StatsRecords,
		LiveBatches:       s.LiveBatches + o.LiveBatches,
		LiveMutations:     s.LiveMutations + o.LiveMutations,
		KernelBatches:     s.KernelBatches + o.KernelBatches,
		KernelSurvivors:   s.KernelSurvivors + o.KernelSurvivors,
	}
}

// Sub returns the field-wise difference s - o; the canonical way to
// turn two snapshots of the same counters into a delta.
func (s MetricsSnapshot) Sub(o MetricsSnapshot) MetricsSnapshot {
	return MetricsSnapshot{
		TasksLaunched:     s.TasksLaunched - o.TasksLaunched,
		TasksSkipped:      s.TasksSkipped - o.TasksSkipped,
		ElementsScanned:   s.ElementsScanned - o.ElementsScanned,
		ShuffledRecords:   s.ShuffledRecords - o.ShuffledRecords,
		IndexProbes:       s.IndexProbes - o.IndexProbes,
		CandidatesRefined: s.CandidatesRefined - o.CandidatesRefined,
		StatsRecords:      s.StatsRecords - o.StatsRecords,
		LiveBatches:       s.LiveBatches - o.LiveBatches,
		LiveMutations:     s.LiveMutations - o.LiveMutations,
		KernelBatches:     s.KernelBatches - o.KernelBatches,
		KernelSurvivors:   s.KernelSurvivors - o.KernelSurvivors,
	}
}

// SumSnapshots sums the metric snapshots of several contexts — the
// aggregation benchmark harnesses report when an experiment runs each
// configuration on its own context.
func SumSnapshots(ctxs []*Context) MetricsSnapshot {
	var total MetricsSnapshot
	for _, c := range ctxs {
		total = total.Add(c.Metrics().Snapshot())
	}
	return total
}

// CounterMap returns the snapshot's non-zero counters keyed by their
// canonical snake_case names — the form execution traces and the
// Prometheus exporter use. A zero snapshot returns nil.
func (s MetricsSnapshot) CounterMap() map[string]int64 {
	pairs := [...]struct {
		name string
		v    int64
	}{
		{"tasks_launched", s.TasksLaunched},
		{"tasks_skipped", s.TasksSkipped},
		{"elements_scanned", s.ElementsScanned},
		{"shuffled_records", s.ShuffledRecords},
		{"index_probes", s.IndexProbes},
		{"candidates_refined", s.CandidatesRefined},
		{"stats_records", s.StatsRecords},
		{"live_batches", s.LiveBatches},
		{"live_mutations", s.LiveMutations},
		{"kernel_batches", s.KernelBatches},
		{"kernel_survivors", s.KernelSurvivors},
	}
	var m map[string]int64
	for _, p := range pairs {
		if p.v != 0 {
			if m == nil {
				m = make(map[string]int64, len(pairs))
			}
			m[p.name] = p.v
		}
	}
	return m
}
